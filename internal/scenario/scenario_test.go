package scenario

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/trace"
)

var update = flag.Bool("update", false, "rewrite the golden files with the current output")

// smallConfig returns a fast two-pack, two-policy grid.
func smallConfig(t *testing.T) MatrixConfig {
	t.Helper()
	params := trace.FamilyParams{Machines: 30, HorizonSec: 2 * 3600, Tasks: 150, Seed: 42}
	var packs []Pack
	for _, name := range []string{"diurnal", "flashcrowd"} {
		tr, err := trace.GenerateFamily(name, params)
		if err != nil {
			t.Fatal(err)
		}
		packs = append(packs, Pack{Name: name, Trace: tr})
	}
	return MatrixConfig{
		Packs:         packs,
		Policies:      []string{"reactive", "ewma"},
		ChaosScenario: "light",
		ChaosSeed:     7,
		Workers:       2,
	}
}

func TestMatrixGridOrderAndLookup(t *testing.T) {
	cfg := smallConfig(t)
	m, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Cells) != 4 {
		t.Fatalf("%d cells, want 4", len(m.Cells))
	}
	i := 0
	for _, pack := range cfg.Packs {
		for _, pol := range cfg.Policies {
			c := m.Cells[i]
			if c.Scenario != pack.Name || c.Policy != pol {
				t.Fatalf("cell %d = %s/%s, want %s/%s", i, c.Scenario, c.Policy, pack.Name, pol)
			}
			if c.Report.Trace != pack.Trace.Name {
				t.Errorf("cell %d ran trace %q, want %q", i, c.Report.Trace, pack.Trace.Name)
			}
			if c.Report.Scenario != "light" {
				t.Errorf("cell %d chaos %q, want light", i, c.Report.Scenario)
			}
			got, ok := m.Cell(pack.Name, pol)
			if !ok || got.Report != c.Report {
				t.Errorf("Cell(%s, %s) lookup failed", pack.Name, pol)
			}
			i++
		}
	}
	if _, ok := m.Cell("nope", "reactive"); ok {
		t.Error("lookup of a missing cell succeeded")
	}
}

// TestMatrixDeterministicAcrossWorkers pins the acceptance criterion: the
// rendered artifact is bit-identical across runs and across worker counts.
func TestMatrixDeterministicAcrossWorkers(t *testing.T) {
	var first string
	for _, workers := range []int{1, 3, 16} {
		cfg := smallConfig(t)
		cfg.Workers = workers
		m, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		got := m.Render()
		if first == "" {
			first = got
			continue
		}
		if got != first {
			t.Fatalf("matrix with %d workers differs from 1 worker:\n%s\n--- vs ---\n%s", workers, got, first)
		}
	}
	// And across repeated runs with the same config.
	m, err := Run(smallConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	if m.Render() != first {
		t.Fatal("matrix differs across runs with the identical config")
	}
}

// TestGoldenMatrix pins the default policy×scenario artifact byte for byte.
func TestGoldenMatrix(t *testing.T) {
	cfg, err := DefaultMatrixConfig()
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 4
	m, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	got := []byte(m.Render())
	golden := filepath.Join("testdata", "matrix.golden")
	if *update {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (bless the golden file with: go test ./internal/scenario -run Golden -update)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("matrix drifted from %s (re-bless with -update after checking the diff):\n--- got ---\n%s", golden, got)
	}
}

func TestMatrixValidation(t *testing.T) {
	for i, mutate := range []func(*MatrixConfig){
		func(c *MatrixConfig) { c.Packs = nil },
		func(c *MatrixConfig) { c.Packs[0].Name = "" },
		func(c *MatrixConfig) { c.Packs[1].Name = c.Packs[0].Name },
		func(c *MatrixConfig) { c.Packs[0].Trace = nil },
		func(c *MatrixConfig) { c.Packs[0].Trace = &trace.Trace{Name: "broken"} },
		func(c *MatrixConfig) { c.Policies = nil },
		func(c *MatrixConfig) { c.Policies = []string{"nope"} },
		func(c *MatrixConfig) { c.Planner = "nope" },
		func(c *MatrixConfig) { c.ChaosScenario = "nope" },
	} {
		cfg := smallConfig(t)
		mutate(&cfg)
		if _, err := Run(cfg); err == nil {
			t.Errorf("mutation %d: expected an error", i)
		}
	}
	// The unknown-policy error names the valid roster.
	cfg := smallConfig(t)
	cfg.Policies = []string{"nope"}
	_, err := Run(cfg)
	if err == nil || !strings.Contains(err.Error(), "valid:") {
		t.Errorf("unknown-policy error %v should list the roster", err)
	}
}

func TestFamilyPacks(t *testing.T) {
	params := trace.FamilyParams{Machines: 10, HorizonSec: 3600, Tasks: 50, Seed: 1}
	packs, err := FamilyPacks(params)
	if err != nil {
		t.Fatal(err)
	}
	if len(packs) != len(trace.Families()) {
		t.Fatalf("%d packs, want %d", len(packs), len(trace.Families()))
	}
	for _, p := range packs {
		if err := p.Trace.Validate(); err != nil {
			t.Errorf("pack %s: %v", p.Name, err)
		}
	}
	params.Tasks = 0
	if _, err := FamilyPacks(params); err == nil {
		t.Error("invalid params accepted")
	}
}
