// Package scenario crosses the workload-family engine with the online
// policy roster: every scenario pack (a trace built by a family or imported
// from disk) is replayed through autopilot.RunChaos against every policy,
// yielding one chaos.Report per cell — oracle bound, fault-free online
// saving, regret, faulted saving, resilience — the policy×scenario matrix
// the paper's two-trace evaluation never had. Cells land in grid order
// regardless of scheduling, so the rendered artifact is bit-identical across
// runs and worker counts and can be pinned as a golden file.
package scenario

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/autopilot"
	"repro/internal/chaos"
	"repro/internal/consolidation"
	"repro/internal/energy"
	"repro/internal/metrics"
	"repro/internal/trace"
)

// Pack is one scenario column: a named, ready-to-replay workload.
type Pack struct {
	// Name labels the matrix row group (usually the family name).
	Name string
	// Trace is the workload, already validated.
	Trace *trace.Trace
}

// FamilyPacks builds one pack per bundled workload family, all sharing the
// same envelope — the canonical scenario axis.
func FamilyPacks(p trace.FamilyParams) ([]Pack, error) {
	var packs []Pack
	for _, f := range trace.Families() {
		tr, err := f.Generate(p)
		if err != nil {
			return nil, err
		}
		packs = append(packs, Pack{Name: f.Name(), Trace: tr})
	}
	return packs, nil
}

// MatrixConfig describes a policy×scenario matrix run.
type MatrixConfig struct {
	// Packs are the scenario columns, replayed in order.
	Packs []Pack
	// Policies are online policy names ("reactive", "hysteresis", "ewma");
	// a fresh instance is built per cell, so no state leaks across cells.
	Policies []string
	// Planner is the base consolidation planner under every policy ("neat"
	// by default).
	Planner string
	// Machine is the power profile of every server (the HP testbed machine
	// by default).
	Machine *energy.MachineProfile
	// ServerSpec is the capacity of every server (default spec when zero).
	ServerSpec consolidation.ServerSpec
	// TickSec is the control loop's re-planning period (300 s by default).
	TickSec int64
	// ChaosScenario is the fault preset every cell is stressed under
	// ("off", "light", "heavy"; "light" by default) and ChaosSeed its seed.
	ChaosScenario string
	ChaosSeed     int64
	// Workers bounds how many cells run concurrently; 1 by default. Any
	// value produces the identical matrix.
	Workers int
}

// DefaultMatrixConfig crosses all five families (a small, fast envelope)
// with the full policy roster under light chaos — the golden-artifact grid.
func DefaultMatrixConfig() (MatrixConfig, error) {
	packs, err := FamilyPacks(trace.FamilyParams{
		Machines: 40, HorizonSec: 4 * 3600, Tasks: 300, Seed: 42,
	})
	if err != nil {
		return MatrixConfig{}, err
	}
	return MatrixConfig{
		Packs:         packs,
		Policies:      []string{"reactive", "hysteresis", "ewma"},
		ChaosScenario: "light",
		ChaosSeed:     42,
	}, nil
}

// validate rejects an empty or inconsistent grid upfront.
func (c *MatrixConfig) validate() error {
	if len(c.Packs) == 0 {
		return fmt.Errorf("scenario: matrix needs at least one pack")
	}
	seen := make(map[string]bool, len(c.Packs))
	for i, p := range c.Packs {
		if p.Name == "" {
			return fmt.Errorf("scenario: pack %d has no name", i)
		}
		if seen[p.Name] {
			return fmt.Errorf("scenario: duplicate pack name %q", p.Name)
		}
		seen[p.Name] = true
		if p.Trace == nil {
			return fmt.Errorf("scenario: pack %q has no trace", p.Name)
		}
		if err := p.Trace.Validate(); err != nil {
			return fmt.Errorf("scenario: pack %q: %w", p.Name, err)
		}
	}
	if len(c.Policies) == 0 {
		return fmt.Errorf("scenario: matrix needs at least one policy")
	}
	return nil
}

// policyFor builds a fresh online policy instance by name over a fresh base
// planner — per cell, because the bundled policies hold forecasting state.
func (c *MatrixConfig) policyFor(name string) (autopilot.Policy, error) {
	plannerName := c.Planner
	if plannerName == "" {
		plannerName = "neat"
	}
	base, err := consolidation.PolicyByName(plannerName)
	if err != nil {
		return nil, err
	}
	var valid []string
	for _, p := range autopilot.Policies(base) {
		if p.Name() == name {
			return p, nil
		}
		valid = append(valid, p.Name())
	}
	return nil, fmt.Errorf("scenario: unknown policy %q (valid: %s)", name, strings.Join(valid, ", "))
}

// Cell is one matrix entry: one pack replayed under one policy.
type Cell struct {
	// Scenario is the pack name, Policy the online policy name.
	Scenario string
	Policy   string
	// Report is the full chaos run: fault-free twin, oracle bounds, faulted
	// run and the resilience metrics derived from them.
	Report chaos.Report
}

// Matrix is the full grid, in grid order (packs outermost, then policies).
type Matrix struct {
	Cells []Cell
	// ChaosScenario and ChaosSeed echo the fault preset the grid ran under.
	ChaosScenario string
	ChaosSeed     int64
}

// Run executes the policy×scenario grid on Workers goroutines. Cells land in
// grid order regardless of scheduling, every cell builds its own policy and
// fault plan, and the result is a pure function of the config — the same
// grid is bit-identical across runs and worker counts.
func Run(cfg MatrixConfig) (*Matrix, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	chaosName := cfg.ChaosScenario
	if chaosName == "" {
		chaosName = "light"
	}
	machine := cfg.Machine
	if machine == nil {
		machine = energy.Profiles()[0]
	}
	spec := cfg.ServerSpec
	if spec == (consolidation.ServerSpec{}) {
		spec = consolidation.DefaultServerSpec()
	}
	tick := cfg.TickSec
	if tick == 0 {
		tick = 300
	}

	m := &Matrix{
		Cells:         make([]Cell, 0, len(cfg.Packs)*len(cfg.Policies)),
		ChaosScenario: chaosName,
		ChaosSeed:     cfg.ChaosSeed,
	}
	for _, pack := range cfg.Packs {
		for _, polName := range cfg.Policies {
			m.Cells = append(m.Cells, Cell{Scenario: pack.Name, Policy: polName})
		}
	}
	// Pre-flight every cell's policy name so an unknown policy fails before
	// any simulation work.
	for _, polName := range cfg.Policies {
		if _, err := cfg.policyFor(polName); err != nil {
			return nil, err
		}
	}

	packFor := make(map[string]Pack, len(cfg.Packs))
	for _, pack := range cfg.Packs {
		packFor[pack.Name] = pack
	}
	runCell := func(cell *Cell) error {
		pack := packFor[cell.Scenario]
		policy, err := cfg.policyFor(cell.Policy)
		if err != nil {
			return err
		}
		plan, err := chaos.Scenario(chaosName, pack.Trace.HorizonSec, pack.Trace.Machines, cfg.ChaosSeed)
		if err != nil {
			return err
		}
		report, err := autopilot.RunChaos(autopilot.Config{
			Trace:      pack.Trace,
			Policy:     policy,
			Machine:    machine,
			ServerSpec: spec,
			TickSec:    tick,
		}, plan)
		if err != nil {
			return fmt.Errorf("scenario: cell %s/%s: %w", cell.Scenario, cell.Policy, err)
		}
		cell.Report = report
		return nil
	}

	workers := cfg.Workers
	if workers < 1 {
		workers = 1
	}
	if workers > len(m.Cells) {
		workers = len(m.Cells)
	}
	errs := make([]error, len(m.Cells))
	work := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				errs[i] = runCell(&m.Cells[i])
			}
		}()
	}
	for i := range m.Cells {
		work <- i
	}
	close(work)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return m, nil
}

// Cell returns one matrix entry by scenario and policy name.
func (m *Matrix) Cell(scenario, policy string) (Cell, bool) {
	for _, c := range m.Cells {
		if c.Scenario == scenario && c.Policy == policy {
			return c, true
		}
	}
	return Cell{}, false
}

// Render formats the matrix as the golden artifact: one row per cell with
// the offline oracle bound, the fault-free online saving, the regret between
// them, the faulted saving, and the resilience metrics. Pure function of the
// matrix, so a fixed config reproduces it bit for bit.
func (m *Matrix) Render() string {
	t := metrics.NewTable(
		fmt.Sprintf("Policy × scenario matrix — %q chaos, seed %d", m.ChaosScenario, m.ChaosSeed),
		"scenario", "policy", "oracle-%", "online-%", "regret-%", "faulted-%", "retained-%", "resil-regret-%", "slo", "wakes")
	for _, c := range m.Cells {
		r := c.Report
		t.AddRow(c.Scenario, c.Policy,
			metrics.FormatFloat(r.OracleSavingPercent),
			metrics.FormatFloat(r.FaultFreeSavingPercent),
			metrics.FormatFloat(r.OracleSavingPercent-r.FaultFreeSavingPercent),
			metrics.FormatFloat(r.SavingPercent),
			metrics.FormatFloat(r.SavingsRetainedPercent),
			metrics.FormatFloat(r.ResilienceRegretPercent),
			fmt.Sprintf("%d", r.SLOViolations),
			fmt.Sprintf("%d", r.EmergencyWakes))
	}
	return t.String()
}
