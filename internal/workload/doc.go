// Package workload generates the guest page-access streams used by the
// paper's evaluation (Section 6.1):
//
//   - the micro-benchmark: an application that iterates and performs
//     read/write operations on the entries of an array, each entry being a
//     4 KiB page — the worst-case access pattern;
//   - Data Caching (Memcached driven by a Twitter trace, from CloudSuite);
//   - Elasticsearch (the NYC-taxi nightly benchmark);
//   - Spark SQL (BigBench query 23 on a 100 GB data set).
//
// The paper runs the real applications; this repository substitutes
// deterministic synthetic access streams whose locality profiles are fitted
// to each application's measured sensitivity to remote memory (Table 1). The
// relevant property for every experiment is the fraction of accesses that
// fall outside a given local-memory fraction, which is exactly what the
// profile encodes.
package workload
