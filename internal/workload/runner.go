package workload

import (
	"fmt"

	"repro/internal/hypervisor"
	"repro/internal/pagepolicy"
	"repro/internal/swapdev"
	"repro/internal/vm"
)

// Accessor is the common surface of the two paging contexts (RAM Ext and
// Explicit SD): the runner only needs to replay accesses and read stats.
type Accessor interface {
	Access(page int, write bool) (float64, error)
	Stats() hypervisor.Stats
}

// Result summarises one workload execution.
type Result struct {
	Workload Kind
	// LocalFraction is the fraction of the VM's reserved memory that was
	// backed by local host memory.
	LocalFraction float64
	// ExecTimeNs is the simulated execution time.
	ExecTimeNs float64
	// BaselineNs is the execution time of the same stream with 100% local
	// memory.
	BaselineNs float64
	// PenaltyPercent is how much longer the execution took than the baseline,
	// in percent (the unit of Tables 1 and 2).
	PenaltyPercent float64
	// MajorFaults is the number of policy-induced page faults.
	MajorFaults uint64
	// PolicyCyclesPerFault is the mean replacement-policy cost per fault.
	PolicyCyclesPerFault float64
	// SwapTraffic is the number of pages moved to/from the backing store.
	SwapTraffic uint64
}

// Runner replays workload streams against paging configurations and reports
// penalties relative to an all-local baseline.
type Runner struct {
	// Cost is the hypervisor CPU cost model shared by all configurations.
	Cost hypervisor.CostModel
	// Seed makes runs reproducible.
	Seed int64
	// Iterations is the number of passes over the VM's pages per run.
	Iterations int
}

// NewRunner returns a runner with the default cost model, seed 1 and two
// iterations per run.
func NewRunner() *Runner {
	return &Runner{Cost: hypervisor.DefaultCostModel(), Seed: 1, Iterations: 2}
}

// scaledPages converts a VM reservation to a tractable simulated page count.
// Experiments run with thousands of simulated pages instead of millions; the
// local fraction, the access distribution and therefore the penalty shape are
// preserved.
func scaledPages(machine vm.VM, maxPages int) int {
	p := machine.ReservedPages()
	if p > maxPages {
		return maxPages
	}
	if p < 64 {
		return 64
	}
	return p
}

// DefaultSimPages is the page count used to simulate a multi-GiB VM.
const DefaultSimPages = 4096

// RunRAMExt replays the workload against a RAM Ext configuration where
// localFraction of the VM's reserved memory is local and the rest is remote.
func (r *Runner) RunRAMExt(kind Kind, machine vm.VM, localFraction float64, policy pagepolicy.Policy, store hypervisor.RemoteStore) (Result, error) {
	if localFraction <= 0 || localFraction > 1 {
		return Result{}, fmt.Errorf("workload: local fraction %v outside (0,1]", localFraction)
	}
	pages := scaledPages(machine, DefaultSimPages)
	localFrames := int(float64(pages) * localFraction)
	if localFrames < 1 {
		localFrames = 1
	}
	if store == nil {
		store = hypervisor.NewInfinibandStore(pages)
	}
	if policy == nil {
		policy = pagepolicy.NewMixed(pagepolicy.DefaultCost(), pagepolicy.DefaultMixedWindow)
	}
	ram, err := hypervisor.NewRAMExt(hypervisor.Config{
		Pages:       pages,
		LocalFrames: localFrames,
		Policy:      policy,
		Remote:      store,
		Cost:        r.Cost,
	})
	if err != nil {
		return Result{}, err
	}
	return r.replay(kind, pages, localFraction, ram)
}

// RunExplicitSD replays the workload against an Explicit SD configuration:
// the guest sees localFraction of its reservation as RAM and swaps the rest
// to the given device kind.
func (r *Runner) RunExplicitSD(kind Kind, machine vm.VM, localFraction float64, device swapdev.Kind) (Result, error) {
	if localFraction <= 0 || localFraction > 1 {
		return Result{}, fmt.Errorf("workload: local fraction %v outside (0,1]", localFraction)
	}
	pages := scaledPages(machine, DefaultSimPages)
	localFrames := int(float64(pages) * localFraction)
	if localFrames < 1 {
		localFrames = 1
	}
	dev, err := swapdev.New(device, pages)
	if err != nil {
		return Result{}, err
	}
	esd, err := hypervisor.NewExplicitSD(hypervisor.ExplicitConfig{
		Pages:       pages,
		LocalFrames: localFrames,
		Device:      dev,
		Cost:        r.Cost,
	})
	if err != nil {
		return Result{}, err
	}
	return r.replay(kind, pages, localFraction, esd)
}

// replay runs the stream against the accessor and against an all-local
// baseline, returning the penalty.
func (r *Runner) replay(kind Kind, pages int, localFraction float64, target Accessor) (Result, error) {
	iters := r.Iterations
	if iters <= 0 {
		iters = 1
	}
	profile := ProfileOf(kind)

	baseline, err := hypervisor.NewRAMExt(hypervisor.Config{Pages: pages, LocalFrames: pages, Cost: r.Cost})
	if err != nil {
		return Result{}, err
	}

	// Replay the identical stream against both configurations.
	stream, err := NewStream(profile, pages, iters, r.Seed)
	if err != nil {
		return Result{}, err
	}
	var targetNs, baseNs float64
	for {
		a, ok := stream.Next()
		if !ok {
			break
		}
		ns, err := target.Access(a.Page, a.Write)
		if err != nil {
			return Result{}, fmt.Errorf("workload %s: %w", kind, err)
		}
		targetNs += ns
		bns, err := baseline.Access(a.Page, a.Write)
		if err != nil {
			return Result{}, err
		}
		baseNs += bns
	}

	st := target.Stats()
	res := Result{
		Workload:             kind,
		LocalFraction:        localFraction,
		ExecTimeNs:           targetNs,
		BaselineNs:           baseNs,
		MajorFaults:          st.MajorFaults,
		PolicyCyclesPerFault: st.PolicyCyclesPerFault(),
		SwapTraffic:          st.Demotions + st.Promotions,
	}
	if baseNs > 0 {
		res.PenaltyPercent = (targetNs - baseNs) / baseNs * 100
	}
	if res.PenaltyPercent < 0 {
		res.PenaltyPercent = 0
	}
	return res, nil
}

// PaperVM returns the VM configuration of the paper's Section 6.2/6.3
// experiments: 7 GiB reserved memory, 6 GiB working set, 8 vCPUs.
func PaperVM() vm.VM {
	return vm.New("bench-vm", 7<<30, 6<<30)
}

// LocalFractions returns the local-memory fractions evaluated in Tables 1
// and 2 (20%..80%).
func LocalFractions() []float64 {
	return []float64{0.2, 0.4, 0.5, 0.6, 0.8}
}
