package workload

import (
	"testing"
	"testing/quick"

	"repro/internal/pagepolicy"
	"repro/internal/swapdev"
	"repro/internal/vm"
)

func TestKindStrings(t *testing.T) {
	for _, k := range AllKinds() {
		if k.String() == "" {
			t.Errorf("kind %d has no name", int(k))
		}
	}
	if Kind(42).String() == "" {
		t.Error("unknown kind should render")
	}
	if len(AllKinds()) != 4 {
		t.Error("the paper evaluates 4 workloads")
	}
}

func TestProfiles(t *testing.T) {
	for _, k := range AllKinds() {
		p := ProfileOf(k)
		if p.Kind != k {
			t.Errorf("%s: profile kind mismatch", k)
		}
		if p.HotFraction <= 0 || p.HotFraction >= 1 {
			t.Errorf("%s: hot fraction %v outside (0,1)", k, p.HotFraction)
		}
		if p.HotHitRate <= 0.5 || p.HotHitRate > 1 {
			t.Errorf("%s: hit rate %v implausible", k, p.HotHitRate)
		}
		if p.Description == "" {
			t.Errorf("%s: profile needs a description", k)
		}
	}
	// The micro-benchmark is the worst case: biggest hot fraction among the
	// profiles that also sweep (lowest effective locality below 50%).
	if ProfileOf(MicroBench).HotFraction <= ProfileOf(DataCaching).HotFraction {
		t.Error("micro-benchmark should have a larger hot set than data caching")
	}
	// Unknown kind still returns something usable.
	if p := ProfileOf(Kind(42)); p.HotFraction <= 0 {
		t.Error("default profile should be usable")
	}
}

func TestStreamDeterminism(t *testing.T) {
	p := ProfileOf(Elasticsearch)
	s1, err := NewStream(p, 256, 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	s2, _ := NewStream(p, 256, 2, 7)
	a1 := s1.Collect()
	a2 := s2.Collect()
	if len(a1) != len(a2) || len(a1) != s1.Len() {
		t.Fatalf("lengths differ: %d %d %d", len(a1), len(a2), s1.Len())
	}
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatalf("streams diverge at %d: %+v vs %+v", i, a1[i], a2[i])
		}
	}
	// A different seed gives a different stream.
	s3, _ := NewStream(p, 256, 2, 8)
	a3 := s3.Collect()
	same := true
	for i := range a1 {
		if a1[i] != a3[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds should produce different streams")
	}
}

func TestStreamValidation(t *testing.T) {
	if _, err := NewStream(ProfileOf(MicroBench), 0, 1, 1); err == nil {
		t.Error("zero pages should fail")
	}
	s, err := NewStream(ProfileOf(MicroBench), 10, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() == 0 {
		t.Error("zero iterations should clamp to one")
	}
	// Accesses stay within the page range.
	for {
		a, ok := s.Next()
		if !ok {
			break
		}
		if a.Page < 0 || a.Page >= 10 {
			t.Fatalf("access outside range: %+v", a)
		}
	}
	if s.Remaining() != 0 {
		t.Error("stream should be exhausted")
	}
	if _, ok := s.Next(); ok {
		t.Error("exhausted stream should not emit")
	}
}

func TestStreamLocality(t *testing.T) {
	// The hot set must absorb roughly HotHitRate of the accesses.
	p := ProfileOf(DataCaching)
	s, _ := NewStream(p, 1000, 4, 3)
	hotLimit := int(float64(1000) * p.HotFraction)
	hot, total := 0, 0
	for {
		a, ok := s.Next()
		if !ok {
			break
		}
		total++
		if a.Page < hotLimit {
			hot++
		}
	}
	frac := float64(hot) / float64(total)
	if frac < p.HotHitRate-0.05 || frac > 1 {
		t.Errorf("hot fraction of accesses = %.3f, want ~%.3f", frac, p.HotHitRate)
	}
}

func TestRunnerPenaltyDecreasesWithLocalMemory(t *testing.T) {
	// The core Table 1 shape, for every workload.
	r := NewRunner()
	machine := vm.New("t", 64<<20, 48<<20) // small VM keeps the test quick
	for _, k := range AllKinds() {
		var prev float64 = -1
		for i, frac := range []float64{0.2, 0.5, 0.8} {
			res, err := r.RunRAMExt(k, machine, frac, nil, nil)
			if err != nil {
				t.Fatalf("%s at %v: %v", k, frac, err)
			}
			if res.PenaltyPercent < 0 {
				t.Errorf("%s: negative penalty %v", k, res.PenaltyPercent)
			}
			if i > 0 && res.PenaltyPercent > prev+1e-9 {
				t.Errorf("%s: penalty should not increase with local memory (%.2f%% -> %.2f%%)", k, prev, res.PenaltyPercent)
			}
			prev = res.PenaltyPercent
		}
	}
}

func TestRunnerMicroBenchCliff(t *testing.T) {
	// The micro-benchmark's defining feature: catastrophic below 50% local,
	// acceptable (small tens of percent at this simulation scale) at >= 50%.
	r := NewRunner()
	machine := vm.New("t", 64<<20, 48<<20)
	at20, err := r.RunRAMExt(MicroBench, machine, 0.2, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	at50, err := r.RunRAMExt(MicroBench, machine, 0.5, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	at80, err := r.RunRAMExt(MicroBench, machine, 0.8, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if at20.PenaltyPercent < 5*at50.PenaltyPercent {
		t.Errorf("20%% local (%.1f%%) should be dramatically worse than 50%% local (%.1f%%)",
			at20.PenaltyPercent, at50.PenaltyPercent)
	}
	if at80.PenaltyPercent > at50.PenaltyPercent {
		t.Errorf("80%% local (%.1f%%) should beat 50%% local (%.1f%%)", at80.PenaltyPercent, at50.PenaltyPercent)
	}
}

func TestRunnerExplicitSDWorseThanRAMExt(t *testing.T) {
	// Table 2, column v1-RE vs v2-ESD: at the same local fraction, RAM Ext
	// beats the guest-visible swap device.
	r := NewRunner()
	machine := vm.New("t", 64<<20, 48<<20)
	for _, k := range []Kind{Elasticsearch, SparkSQL} {
		re, err := r.RunRAMExt(k, machine, 0.5, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		esd, err := r.RunExplicitSD(k, machine, 0.5, swapdev.RemoteRAM)
		if err != nil {
			t.Fatal(err)
		}
		if esd.PenaltyPercent <= re.PenaltyPercent {
			t.Errorf("%s: explicit SD (%.2f%%) should be worse than RAM Ext (%.2f%%)",
				k, esd.PenaltyPercent, re.PenaltyPercent)
		}
		if esd.SwapTraffic <= re.SwapTraffic {
			t.Errorf("%s: explicit SD should generate more swap traffic (%d vs %d)",
				k, esd.SwapTraffic, re.SwapTraffic)
		}
	}
}

func TestRunnerSwapTechnologyOrdering(t *testing.T) {
	// Table 2 columns: remote RAM < local SSD < local HDD.
	r := NewRunner()
	machine := vm.New("t", 32<<20, 24<<20)
	rram, err := r.RunExplicitSD(Elasticsearch, machine, 0.5, swapdev.RemoteRAM)
	if err != nil {
		t.Fatal(err)
	}
	ssd, err := r.RunExplicitSD(Elasticsearch, machine, 0.5, swapdev.LocalSSD)
	if err != nil {
		t.Fatal(err)
	}
	hdd, err := r.RunExplicitSD(Elasticsearch, machine, 0.5, swapdev.LocalHDD)
	if err != nil {
		t.Fatal(err)
	}
	if !(rram.PenaltyPercent < ssd.PenaltyPercent && ssd.PenaltyPercent < hdd.PenaltyPercent) {
		t.Errorf("swap ordering violated: remote=%.1f%% ssd=%.1f%% hdd=%.1f%%",
			rram.PenaltyPercent, ssd.PenaltyPercent, hdd.PenaltyPercent)
	}
}

func TestRunnerValidation(t *testing.T) {
	r := NewRunner()
	machine := vm.New("t", 32<<20, 16<<20)
	if _, err := r.RunRAMExt(MicroBench, machine, 0, nil, nil); err == nil {
		t.Error("zero local fraction should fail")
	}
	if _, err := r.RunRAMExt(MicroBench, machine, 1.5, nil, nil); err == nil {
		t.Error("local fraction above 1 should fail")
	}
	if _, err := r.RunExplicitSD(MicroBench, machine, -0.1, swapdev.RemoteRAM); err == nil {
		t.Error("negative fraction should fail")
	}
	// Explicit policy is honoured.
	res, err := r.RunRAMExt(MicroBench, machine, 0.5, pagepolicy.NewFIFO(pagepolicy.DefaultCost()), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.MajorFaults == 0 {
		t.Error("a 50% local run should fault")
	}
}

func TestPaperVMAndFractions(t *testing.T) {
	v := PaperVM()
	if v.ReservedBytes != 7<<30 || v.WSSBytes != 6<<30 {
		t.Errorf("paper VM misconfigured: %+v", v)
	}
	fr := LocalFractions()
	if len(fr) != 5 || fr[0] != 0.2 || fr[len(fr)-1] != 0.8 {
		t.Errorf("local fractions = %v", fr)
	}
}

func TestScaledPages(t *testing.T) {
	small := vm.New("s", 64<<10, 32<<10)
	if got := scaledPages(small, DefaultSimPages); got != 64 {
		t.Errorf("tiny VM should clamp up to 64 pages, got %d", got)
	}
	big := PaperVM()
	if got := scaledPages(big, DefaultSimPages); got != DefaultSimPages {
		t.Errorf("big VM should clamp down to %d pages, got %d", DefaultSimPages, got)
	}
	mid := vm.New("m", 1<<20, 1<<20) // 256 pages
	if got := scaledPages(mid, DefaultSimPages); got != 256 {
		t.Errorf("mid VM = %d pages, want 256", got)
	}
}

// Property: streams always stay within the page range and produce the
// advertised number of accesses.
func TestPropertyStreamBounds(t *testing.T) {
	prop := func(pagesRaw uint8, seed int64, kindRaw uint8) bool {
		pages := 1 + int(pagesRaw)%512
		kinds := AllKinds()
		k := kinds[int(kindRaw)%len(kinds)]
		s, err := NewStream(ProfileOf(k), pages, 1, seed)
		if err != nil {
			return false
		}
		count := 0
		for {
			a, ok := s.Next()
			if !ok {
				break
			}
			if a.Page < 0 || a.Page >= pages {
				return false
			}
			count++
		}
		return count == s.Len()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
