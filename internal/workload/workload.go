package workload

import (
	"fmt"
	"math/rand"
)

// Kind identifies one of the evaluated workloads.
type Kind int

// The evaluated workloads.
const (
	MicroBench Kind = iota
	DataCaching
	Elasticsearch
	SparkSQL
)

// String names the workload like the paper's tables do.
func (k Kind) String() string {
	switch k {
	case MicroBench:
		return "micro-benchmark"
	case DataCaching:
		return "data-caching"
	case Elasticsearch:
		return "elasticsearch"
	case SparkSQL:
		return "spark-sql"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// AllKinds returns the workloads in the paper's presentation order.
func AllKinds() []Kind {
	return []Kind{MicroBench, Elasticsearch, DataCaching, SparkSQL}
}

// Profile describes the locality structure of a workload's memory accesses.
type Profile struct {
	// Kind identifies the workload.
	Kind Kind
	// HotFraction is the fraction of the VM's reserved pages that form the
	// hot set (re-accessed constantly).
	HotFraction float64
	// HotHitRate is the probability that an access falls in the hot set.
	HotHitRate float64
	// WritesFraction is the probability that an access is a write.
	WritesFraction float64
	// OpsPerPage is the number of accesses generated per reserved page per
	// iteration (controls stream length relative to the VM size).
	OpsPerPage int
	// Description summarises what the profile stands for.
	Description string
}

// ProfileOf returns the canonical locality profile of a workload. The hot-set
// fractions and hit rates are fitted so that the RAM Ext penalty curves
// reproduce the shape of Table 1: the micro-benchmark collapses below 50%
// local memory, Spark SQL is the most sensitive macro workload, Data Caching
// the least.
func ProfileOf(k Kind) Profile {
	switch k {
	case MicroBench:
		// The worst case: the benchmark sweeps its whole working set, but the
		// actively re-iterated region is just under half of the reservation,
		// which is what produces the paper's cliff between 40% and 50% local.
		return Profile{
			Kind:           k,
			HotFraction:    0.45,
			HotHitRate:     0.99,
			WritesFraction: 0.5,
			OpsPerPage:     4,
			Description:    "array sweep over 4 KiB entries, re-iterating a ~45% hot region",
		}
	case DataCaching:
		// Memcached with a Twitter workload: highly skewed key popularity.
		return Profile{
			Kind:           k,
			HotFraction:    0.18,
			HotHitRate:     0.985,
			WritesFraction: 0.1,
			OpsPerPage:     4,
			Description:    "skewed key-value GET/SET traffic (CloudSuite Data Caching)",
		}
	case Elasticsearch:
		// Structured-data queries over the NYC taxi index: moderate locality,
		// index pages hot, shard data colder.
		return Profile{
			Kind:           k,
			HotFraction:    0.30,
			HotHitRate:     0.96,
			WritesFraction: 0.15,
			OpsPerPage:     4,
			Description:    "index-heavy query traffic (Elasticsearch NYC taxi benchmark)",
		}
	case SparkSQL:
		// BigBench Q23 scans large partitions: the weakest locality of the
		// macro workloads, hence the highest penalties in Table 1.
		return Profile{
			Kind:           k,
			HotFraction:    0.40,
			HotHitRate:     0.93,
			WritesFraction: 0.3,
			OpsPerPage:     4,
			Description:    "scan-heavy analytics (Spark SQL BigBench query 23)",
		}
	default:
		return Profile{Kind: k, HotFraction: 0.5, HotHitRate: 0.9, WritesFraction: 0.3, OpsPerPage: 2}
	}
}

// Access is one guest memory access.
type Access struct {
	// Page is the pseudo-physical page touched.
	Page int
	// Write reports whether the access is a write.
	Write bool
}

// Stream is a deterministic, replayable sequence of page accesses.
type Stream struct {
	profile Profile
	pages   int
	rng     *rand.Rand
	emitted int
	length  int
	hotSize int
}

// NewStream builds a stream over a VM of the given size in pages, running the
// profile for iterations passes. The same (profile, pages, iterations, seed)
// always produces the same stream.
func NewStream(p Profile, pages, iterations int, seed int64) (*Stream, error) {
	if pages <= 0 {
		return nil, fmt.Errorf("workload: stream needs a positive page count")
	}
	if iterations <= 0 {
		iterations = 1
	}
	if p.OpsPerPage <= 0 {
		p.OpsPerPage = 1
	}
	hot := int(float64(pages) * p.HotFraction)
	if hot < 1 {
		hot = 1
	}
	return &Stream{
		profile: p,
		pages:   pages,
		rng:     rand.New(rand.NewSource(seed)),
		length:  pages * p.OpsPerPage * iterations,
		hotSize: hot,
	}, nil
}

// Len returns the total number of accesses the stream will emit.
func (s *Stream) Len() int { return s.length }

// Remaining returns how many accesses are left.
func (s *Stream) Remaining() int { return s.length - s.emitted }

// Next returns the next access; ok is false when the stream is exhausted.
func (s *Stream) Next() (Access, bool) {
	if s.emitted >= s.length {
		return Access{}, false
	}
	s.emitted++
	var page int
	if s.rng.Float64() < s.profile.HotHitRate {
		// Hot pages are hit with a skewed (Zipf-like) popularity; even the
		// micro-benchmark's array sweep re-visits the low entries more often
		// because the iteration restarts there.
		page = s.zipfHot()
	} else {
		// Cold accesses are uniform over the rest of the reservation.
		coldSpan := s.pages - s.hotSize
		if coldSpan <= 0 {
			page = s.rng.Intn(s.pages)
		} else {
			page = s.hotSize + s.rng.Intn(coldSpan)
		}
	}
	return Access{Page: page, Write: s.rng.Float64() < s.profile.WritesFraction}, true
}

// zipfHot picks a hot page with a heavy-tailed popularity (approximated by
// squaring a uniform variate, which concentrates mass on low page numbers
// without the setup cost of a full Zipf generator).
func (s *Stream) zipfHot() int {
	u := s.rng.Float64()
	return int(u * u * float64(s.hotSize))
}

// Collect materialises the whole stream (useful for benchmarks that want to
// replay an identical sequence against several configurations).
func (s *Stream) Collect() []Access {
	out := make([]Access, 0, s.Remaining())
	for {
		a, ok := s.Next()
		if !ok {
			return out
		}
		out = append(out, a)
	}
}
