package memctl

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/rdma"
)

const testBufSize = 1 << 20 // 1 MiB buffers keep tests fast

// testRack wires a controller, a fabric and a few agents together.
type testRack struct {
	ctr     *GlobalController
	sec     *SecondaryController
	fabric  *rdma.Fabric
	devices map[ServerID]*rdma.Device
	agents  map[ServerID]*Agent
}

func newTestRack(t *testing.T, servers ...ServerID) *testRack {
	t.Helper()
	r := &testRack{
		sec:     NewSecondaryController(),
		fabric:  rdma.NewFabric(rdma.DefaultCostModel()),
		devices: make(map[ServerID]*rdma.Device),
		agents:  make(map[ServerID]*Agent),
	}
	r.ctr = NewGlobalController(WithBufferSize(testBufSize), WithMirror(r.sec))
	for _, id := range servers {
		dev, err := r.fabric.AttachDevice(string(id))
		if err != nil {
			t.Fatal(err)
		}
		r.devices[id] = dev
	}
	resolve := func(id ServerID) *rdma.Device { return r.devices[id] }
	for _, id := range servers {
		a, err := NewAgent(AgentConfig{
			ID:            id,
			Controller:    r.ctr,
			Device:        r.devices[id],
			TotalMem:      16 * testBufSize,
			ReservedMem:   4 * testBufSize,
			ResolveDevice: resolve,
		})
		if err != nil {
			t.Fatal(err)
		}
		r.agents[id] = a
	}
	return r
}

func TestBuffersFor(t *testing.T) {
	cases := []struct {
		mem, buf int64
		want     int
	}{
		{0, 100, 0},
		{1, 100, 1},
		{100, 100, 1},
		{101, 100, 2},
		{1000, 100, 10},
		{-5, 100, 0},
		{100, 0, 0},
	}
	for _, c := range cases {
		if got := buffersFor(c.mem, c.buf); got != c.want {
			t.Errorf("buffersFor(%d,%d) = %d, want %d", c.mem, c.buf, got, c.want)
		}
	}
}

func TestRegisterServerValidation(t *testing.T) {
	g := NewGlobalController()
	if err := g.RegisterServer("a", 0, nil, nil); err == nil {
		t.Error("zero memory should be rejected")
	}
	if err := g.RegisterServer("a", 1<<30, nil, nil); err != nil {
		t.Fatal(err)
	}
	if err := g.RegisterServer("a", 1<<30, nil, nil); err == nil {
		t.Error("duplicate registration should be rejected")
	}
	if _, err := g.Role("missing"); !errors.Is(err, ErrUnknownServer) {
		t.Error("unknown server role lookup should fail")
	}
	role, err := g.Role("a")
	if err != nil || role != RoleActive {
		t.Errorf("new server role = %v (%v), want active", role, err)
	}
	if len(g.Servers()) != 1 {
		t.Error("Servers() should list the registered server")
	}
}

func TestGotoZombieAndAllocation(t *testing.T) {
	r := newTestRack(t, "server-A", "server-B", "server-C")

	// server-C becomes a zombie, lending its 12 MiB of free memory.
	n, err := r.agents["server-C"].DelegateAndGoZombie()
	if err != nil {
		t.Fatal(err)
	}
	if n != 12 {
		t.Fatalf("zombie lent %d buffers, want 12", n)
	}
	if role, _ := r.ctr.Role("server-C"); role != RoleZombie {
		t.Errorf("server-C role = %v, want zombie", role)
	}
	if got := r.ctr.FreeMemory(); got != 12*testBufSize {
		t.Errorf("free memory = %d, want %d", got, 12*testBufSize)
	}
	if zs := r.ctr.Zombies(); len(zs) != 1 || zs[0] != "server-C" {
		t.Errorf("zombies = %v", zs)
	}

	// server-A requests a guaranteed RAM Extension of 4 MiB.
	handles, err := r.agents["server-A"].RequestExt(4 * testBufSize)
	if err != nil {
		t.Fatal(err)
	}
	if len(handles) != 4 {
		t.Fatalf("allocated %d buffers, want 4", len(handles))
	}
	for _, h := range handles {
		if h.Host != "server-C" {
			t.Errorf("buffer %d served by %s, want the zombie server", h.ID, h.Host)
		}
		if h.Type != ZombieBuffer {
			t.Errorf("buffer %d type = %v, want zombie", h.ID, h.Type)
		}
	}
	if r.agents["server-A"].UsedBuffers() != 4 {
		t.Error("agent should track 4 used buffers")
	}
	if err := r.ctr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	st := r.ctr.Stats()
	if st.GotoZombieCalls != 1 || st.AllocExtCalls != 1 || st.BuffersLent != 4 {
		t.Errorf("unexpected stats %+v", st)
	}
}

func TestRemoteBufferReadWrite(t *testing.T) {
	r := newTestRack(t, "user", "zombie")
	if _, err := r.agents["zombie"].DelegateAndGoZombie(); err != nil {
		t.Fatal(err)
	}
	// The zombie host's NIC initiator goes down but keeps serving (the rack
	// manager does this on Sz entry).
	r.devices["zombie"].SetUp(false)
	r.devices["zombie"].SetServing(true)

	handles, err := r.agents["user"].RequestExt(2 * testBufSize)
	if err != nil {
		t.Fatal(err)
	}
	page := bytes.Repeat([]byte{0xAB}, 4096)
	lat, err := handles[0].WriteRemote(8192, page)
	if err != nil {
		t.Fatalf("WriteRemote: %v", err)
	}
	if lat <= 0 {
		t.Error("remote write latency should be positive")
	}
	back := make([]byte, 4096)
	if _, err := handles[0].ReadRemote(8192, back); err != nil {
		t.Fatalf("ReadRemote: %v", err)
	}
	if !bytes.Equal(page, back) {
		t.Fatal("remote page corrupted")
	}
	// Bounds are enforced.
	if _, err := handles[0].WriteRemote(testBufSize-1, page); err == nil {
		t.Error("out-of-bounds remote write should fail")
	}
	if _, err := handles[0].ReadRemote(-1, back); err == nil {
		t.Error("negative offset read should fail")
	}
	// Every remote write is mirrored locally for fault tolerance.
	if r.agents["user"].MirrorWrites() == 0 {
		t.Error("remote writes must be mirrored to local storage")
	}
}

func TestZombieMemoryPriority(t *testing.T) {
	r := newTestRack(t, "user", "zombie", "active-server")
	// The active server lends 4 buffers while staying active; the zombie
	// lends 12.
	if _, err := r.agents["active-server"].DelegateWhileActive(8 * testBufSize); err != nil {
		t.Fatal(err)
	}
	if _, err := r.agents["zombie"].DelegateAndGoZombie(); err != nil {
		t.Fatal(err)
	}
	// A 6-buffer allocation must be served from zombie memory first.
	handles, err := r.agents["user"].RequestExt(6 * testBufSize)
	if err != nil {
		t.Fatal(err)
	}
	zombieCount := 0
	for _, h := range handles {
		if h.Host == "zombie" {
			zombieCount++
		}
	}
	if zombieCount != 6 {
		t.Errorf("only %d of 6 buffers came from the zombie server", zombieCount)
	}
}

func TestAllocSwapBestEffort(t *testing.T) {
	r := newTestRack(t, "user", "zombie")
	if _, err := r.agents["zombie"].DelegateAndGoZombie(); err != nil {
		t.Fatal(err)
	}
	// Ask for far more swap than the rack can provide: best effort returns
	// what exists without failing.
	handles, err := r.agents["user"].RequestSwap(100 * testBufSize)
	if err != nil {
		t.Fatal(err)
	}
	if len(handles) == 0 || len(handles) > 12 {
		t.Fatalf("swap allocation returned %d buffers, want 1..12", len(handles))
	}
	// A guaranteed ext allocation of the same size must fail instead.
	if _, err := r.agents["user"].RequestExt(100 * testBufSize); err == nil {
		t.Fatal("oversized guaranteed allocation should fail")
	}
}

func TestReclaimPrefersUnallocatedBuffers(t *testing.T) {
	r := newTestRack(t, "user", "zombie")
	if _, err := r.agents["zombie"].DelegateAndGoZombie(); err != nil {
		t.Fatal(err)
	}
	// user takes 4 of the 12 buffers.
	if _, err := r.agents["user"].RequestExt(4 * testBufSize); err != nil {
		t.Fatal(err)
	}
	// The zombie wakes and reclaims 8 buffers: all must come from the free
	// pool, so the user agent sees no reclaim notification.
	n, err := r.agents["zombie"].WakeAndReclaim(8)
	if err != nil {
		t.Fatal(err)
	}
	if n != 8 {
		t.Fatalf("reclaimed %d, want 8", n)
	}
	if r.agents["user"].ReclaimsSeen() != 0 {
		t.Error("no user reclaim should have been needed")
	}
	if role, _ := r.ctr.Role("zombie"); role != RoleActive {
		t.Error("server should be active after reclaiming")
	}
	if err := r.ctr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestReclaimNotifiesUsers(t *testing.T) {
	r := newTestRack(t, "user", "zombie")
	if _, err := r.agents["zombie"].DelegateAndGoZombie(); err != nil {
		t.Fatal(err)
	}
	if _, err := r.agents["user"].RequestExt(10 * testBufSize); err != nil {
		t.Fatal(err)
	}
	before := r.agents["user"].UsedBuffers()
	// Reclaim everything: 2 free buffers are not enough, so 8 allocated ones
	// must be taken back from the user.
	n, err := r.agents["zombie"].WakeAndReclaim(-1)
	if err != nil {
		t.Fatal(err)
	}
	if n != 12 {
		t.Fatalf("reclaimed %d, want 12", n)
	}
	if r.agents["user"].ReclaimsSeen() == 0 {
		t.Error("user agent should have been notified")
	}
	if after := r.agents["user"].UsedBuffers(); after >= before {
		t.Errorf("user buffers should shrink, before=%d after=%d", before, after)
	}
	if err := r.ctr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestReleaseBuffers(t *testing.T) {
	r := newTestRack(t, "user", "zombie")
	if _, err := r.agents["zombie"].DelegateAndGoZombie(); err != nil {
		t.Fatal(err)
	}
	handles, err := r.agents["user"].RequestExt(3 * testBufSize)
	if err != nil {
		t.Fatal(err)
	}
	freeBefore := r.ctr.FreeMemory()
	if err := r.agents["user"].ReleaseBuffers(handles); err != nil {
		t.Fatal(err)
	}
	if got := r.ctr.FreeMemory(); got != freeBefore+3*testBufSize {
		t.Errorf("free memory after release = %d, want %d", got, freeBefore+3*testBufSize)
	}
	if r.agents["user"].UsedBuffers() != 0 {
		t.Error("agent should no longer track released buffers")
	}
	// Releasing someone else's buffer is rejected.
	other, _ := r.agents["user"].RequestExt(testBufSize)
	if err := r.ctr.Release("zombie", []BufferID{other[0].ID}); err == nil {
		t.Error("releasing a buffer owned by another server must fail")
	}
}

func TestLRUZombie(t *testing.T) {
	r := newTestRack(t, "user", "z1", "z2")
	if _, err := r.agents["z1"].DelegateAndGoZombie(); err != nil {
		t.Fatal(err)
	}
	if _, err := r.agents["z2"].DelegateAndGoZombie(); err != nil {
		t.Fatal(err)
	}
	// Allocate enough to consume all of z1 and part of z2 (allocation is by
	// ascending buffer ID, so z1's buffers go first).
	if _, err := r.agents["user"].RequestExt(14 * testBufSize); err != nil {
		t.Fatal(err)
	}
	lru, err := r.ctr.LRUZombie()
	if err != nil {
		t.Fatal(err)
	}
	if lru != "z2" {
		t.Errorf("LRU zombie = %s, want z2 (fewest allocated buffers)", lru)
	}
	// Wake both; no zombie remains.
	if _, err := r.agents["z1"].WakeAndReclaim(-1); err != nil {
		t.Fatal(err)
	}
	if _, err := r.agents["z2"].WakeAndReclaim(-1); err != nil {
		t.Fatal(err)
	}
	if _, err := r.ctr.LRUZombie(); !errors.Is(err, ErrNoZombie) {
		t.Errorf("expected ErrNoZombie, got %v", err)
	}
}

func TestScavengeActiveServers(t *testing.T) {
	r := newTestRack(t, "user", "helper")
	// No zombie at all: a guaranteed allocation triggers AS_get_free_mem on
	// the active helper, which offers half of its 12 MiB free memory.
	handles, err := r.agents["user"].RequestExt(4 * testBufSize)
	if err != nil {
		t.Fatalf("guaranteed allocation should scavenge active servers: %v", err)
	}
	if len(handles) != 4 {
		t.Fatalf("got %d buffers, want 4", len(handles))
	}
	for _, h := range handles {
		if h.Type != ActiveBuffer {
			t.Errorf("buffer type = %v, want active", h.Type)
		}
	}
}

func TestMirroringAndFailover(t *testing.T) {
	r := newTestRack(t, "user", "zombie")
	if _, err := r.agents["zombie"].DelegateAndGoZombie(); err != nil {
		t.Fatal(err)
	}
	if _, err := r.agents["user"].RequestExt(2 * testBufSize); err != nil {
		t.Fatal(err)
	}
	if r.sec.Operations() == 0 {
		t.Fatal("secondary should have mirrored operations")
	}
	if r.sec.LastSeq() == 0 {
		t.Error("sequence numbers should advance")
	}

	// Heartbeats keep the secondary passive.
	r.sec.Heartbeat(0)
	if r.sec.Tick(1_000_000_000) {
		t.Fatal("secondary must not promote while heartbeats are fresh")
	}
	// Silence beyond the timeout promotes it.
	if !r.sec.Tick(10_000_000_000) {
		t.Fatal("secondary should promote after missed heartbeats")
	}
	if !r.sec.Promoted() {
		t.Error("Promoted() should report true")
	}

	// The rebuilt controller knows the servers and the zombie's lent memory.
	rebuilt := r.sec.Rebuild(WithBufferSize(testBufSize))
	if len(rebuilt.Servers()) != 2 {
		t.Errorf("rebuilt controller has %d servers, want 2", len(rebuilt.Servers()))
	}
	if role, _ := rebuilt.Role("zombie"); role != RoleZombie {
		t.Errorf("rebuilt role of zombie = %v, want zombie", role)
	}
	if rebuilt.FreeMemory() == 0 {
		t.Error("rebuilt controller should know about the lent memory")
	}
	if err := rebuilt.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestUnregisterServerReclaimsBuffers(t *testing.T) {
	r := newTestRack(t, "user", "zombie")
	if _, err := r.agents["zombie"].DelegateAndGoZombie(); err != nil {
		t.Fatal(err)
	}
	if _, err := r.agents["user"].RequestExt(3 * testBufSize); err != nil {
		t.Fatal(err)
	}
	if err := r.ctr.UnregisterServer("zombie"); err != nil {
		t.Fatal(err)
	}
	if r.agents["user"].ReclaimsSeen() == 0 {
		t.Error("user should be notified when the serving host disappears")
	}
	if r.ctr.FreeMemory() != 0 {
		t.Error("no free memory should remain after the only zombie left")
	}
	if err := r.ctr.UnregisterServer("zombie"); !errors.Is(err, ErrUnknownServer) {
		t.Error("double unregister should fail")
	}
	if err := r.ctr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestAgentConfigValidation(t *testing.T) {
	ctr := NewGlobalController()
	if _, err := NewAgent(AgentConfig{ID: "x", Controller: nil, TotalMem: 1}); err == nil {
		t.Error("nil controller should be rejected")
	}
	if _, err := NewAgent(AgentConfig{ID: "x", Controller: ctr, TotalMem: 0}); err == nil {
		t.Error("zero memory should be rejected")
	}
	if _, err := NewAgent(AgentConfig{ID: "x", Controller: ctr, TotalMem: 100, ReservedMem: 200}); err == nil {
		t.Error("reserved > total should be rejected")
	}
	a, err := NewAgent(AgentConfig{ID: "x", Controller: ctr, TotalMem: 100, ReservedMem: 10})
	if err != nil {
		t.Fatal(err)
	}
	if a.FreeMemory() != 90 {
		t.Errorf("free memory = %d, want 90", a.FreeMemory())
	}
	if err := a.SetReservedMemory(200); err == nil {
		t.Error("oversized reservation should be rejected")
	}
	if err := a.SetReservedMemory(50); err != nil {
		t.Fatal(err)
	}
	if a.FreeMemory() != 50 {
		t.Errorf("free memory after reservation change = %d, want 50", a.FreeMemory())
	}
}

// Property: after any sequence of delegate / allocate / release / reclaim
// operations the buffer database invariants hold and no memory is ever
// double-allocated.
func TestPropertyBufferDatabaseInvariants(t *testing.T) {
	prop := func(ops, sizes []uint8) bool {
		ctr := NewGlobalController(WithBufferSize(testBufSize))
		_ = ctr.RegisterServer("host", 64*testBufSize, nil, nil)
		_ = ctr.RegisterServer("user", 64*testBufSize, nil, nil)
		var allocated []BufferID
		for i, op := range ops {
			size := uint8(3)
			if i < len(sizes) {
				size = sizes[i]
			}
			switch op % 4 {
			case 0:
				specs := make([]BufferSpec, int(size%8))
				for j := range specs {
					specs[j] = BufferSpec{Offset: int64(j) * testBufSize, Size: testBufSize}
				}
				_, _ = ctr.GotoZombie("host", specs)
			case 1:
				bufs, _ := ctr.AllocSwap("user", int64(size%16)*testBufSize)
				for _, b := range bufs {
					allocated = append(allocated, b.ID)
				}
			case 2:
				if len(allocated) > 0 {
					n := int(size) % len(allocated)
					_ = ctr.Release("user", allocated[:n])
					allocated = allocated[n:]
				}
			case 3:
				_, _ = ctr.Reclaim("host", int(size%8))
				allocated = nil // conservative: some may have been reclaimed
			}
			if err := ctr.CheckInvariants(); err != nil {
				t.Logf("invariant violated: %v", err)
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 60}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

// Property: free memory never exceeds the total memory delegated to the
// controller.
func TestPropertyFreeMemoryBounded(t *testing.T) {
	prop := func(lend, take uint8) bool {
		ctr := NewGlobalController(WithBufferSize(testBufSize))
		_ = ctr.RegisterServer("z", 1<<40, nil, nil)
		_ = ctr.RegisterServer("u", 1<<40, nil, nil)
		specs := make([]BufferSpec, int(lend%32))
		for i := range specs {
			specs[i] = BufferSpec{Offset: int64(i) * testBufSize, Size: testBufSize}
		}
		_, _ = ctr.GotoZombie("z", specs)
		total := int64(len(specs)) * testBufSize
		_, _ = ctr.AllocSwap("u", int64(take)*testBufSize)
		free := ctr.FreeMemory()
		return free >= 0 && free <= total
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestBufferTypeString(t *testing.T) {
	if ZombieBuffer.String() != "zombie" || ActiveBuffer.String() != "active" {
		t.Error("buffer type names wrong")
	}
	if RoleActive.String() != "active" || RoleZombie.String() != "zombie" || RoleDown.String() != "down" {
		t.Error("role names wrong")
	}
}
