package memctl

import (
	"encoding/json"
	"fmt"

	"repro/internal/rdma"
)

// marshal and unmarshal isolate the wire encoding (JSON control messages).
func marshal(v interface{}) ([]byte, error)      { return json.Marshal(v) }
func unmarshal(data []byte, v interface{}) error { return json.Unmarshal(data, v) }

// This file implements the wire protocol of Section 4.1: the global memory
// controller exposes its functions as RPC over RDMA, and remote callers (the
// per-server remote memory managers, the cloud manager, monitoring tools)
// invoke them through a ProtocolClient. Requests and responses travel as
// small JSON control messages written into registered request/response slots
// with one-sided RDMA writes; bulk data never goes through the RPC path — it
// moves through the one-sided verbs of the RemoteBuffer handles.
//
// Method names follow the paper:
//
//	GS_goto_zombie   lend buffers and transition to Sz
//	GS_reclaim       take lent buffers back
//	GS_alloc_ext     guaranteed RAM Extension allocation
//	GS_alloc_swap    best-effort swap allocation
//	GS_release       return allocated buffers
//	GS_get_lru_zombie zombie with the fewest allocated buffers
//	GS_free_mem      free remote memory in the rack
//	GS_register      add a server to the rack
//	GS_transfer      move buffer ownership between servers (migration)

// Wire message types. Field names are kept short: these are control messages
// on the critical path of suspend/resume and allocation.

type wireBufferSpec struct {
	Offset int64  `json:"off"`
	Size   int64  `json:"size"`
	RKey   uint32 `json:"rkey"`
}

type wireBuffer struct {
	ID     uint64 `json:"id"`
	Host   string `json:"host"`
	Offset int64  `json:"off"`
	Size   int64  `json:"size"`
	Type   int    `json:"type"`
	RKey   uint32 `json:"rkey"`
}

func toWireBuffer(b Buffer) wireBuffer {
	return wireBuffer{ID: uint64(b.ID), Host: string(b.Host), Offset: b.Offset, Size: b.Size, Type: int(b.Type), RKey: b.RKey}
}

func fromWireBuffer(w wireBuffer) Buffer {
	return Buffer{ID: BufferID(w.ID), Host: ServerID(w.Host), Offset: w.Offset, Size: w.Size, Type: BufferType(w.Type), RKey: w.RKey}
}

type registerRequest struct {
	Server   string `json:"server"`
	TotalMem int64  `json:"total_mem"`
}

type gotoZombieRequest struct {
	Server  string           `json:"server"`
	Buffers []wireBufferSpec `json:"buffers"`
}

type gotoZombieResponse struct {
	IDs []uint64 `json:"ids"`
}

type reclaimRequest struct {
	Server    string `json:"server"`
	NbBuffers int    `json:"nb_buffers"`
}

type reclaimResponse struct {
	IDs []uint64 `json:"ids"`
}

type allocRequest struct {
	Server  string `json:"server"`
	MemSize int64  `json:"mem_size"`
}

type allocResponse struct {
	Buffers []wireBuffer `json:"buffers"`
}

type releaseRequest struct {
	Server string   `json:"server"`
	IDs    []uint64 `json:"ids"`
}

type lruZombieResponse struct {
	Server string `json:"server"`
}

type freeMemResponse struct {
	Bytes int64 `json:"bytes"`
}

type transferRequest struct {
	From string   `json:"from"`
	To   string   `json:"to"`
	IDs  []uint64 `json:"ids"`
}

// ProtocolServer exposes a GlobalController over RPC-on-RDMA. It runs on the
// global-mem-ctr host (which must stay in S0: its CPU executes the handlers).
type ProtocolServer struct {
	controller *GlobalController
	rpc        *rdma.RPCServer
}

// NewProtocolServer binds the controller to an RPC server on the given RDMA
// device and registers every protocol method.
func NewProtocolServer(name string, device *rdma.Device, controller *GlobalController) (*ProtocolServer, error) {
	if device == nil || controller == nil {
		return nil, fmt.Errorf("memctl: protocol server needs a device and a controller")
	}
	s := &ProtocolServer{controller: controller, rpc: rdma.NewRPCServer(name, device)}
	s.register()
	return s, nil
}

// RPCServer returns the underlying RPC server (clients connect to it).
func (s *ProtocolServer) RPCServer() *rdma.RPCServer { return s.rpc }

// Calls returns the number of protocol calls served.
func (s *ProtocolServer) Calls() uint64 { return s.rpc.Calls() }

// register installs one handler per protocol method.
func (s *ProtocolServer) register() {
	s.rpc.Handle("GS_register", jsonHandler(func(req registerRequest) (struct{}, error) {
		return struct{}{}, s.controller.RegisterServer(ServerID(req.Server), req.TotalMem, nil, nil)
	}))
	s.rpc.Handle("GS_goto_zombie", jsonHandler(func(req gotoZombieRequest) (gotoZombieResponse, error) {
		specs := make([]BufferSpec, len(req.Buffers))
		for i, b := range req.Buffers {
			specs[i] = BufferSpec{Offset: b.Offset, Size: b.Size, RKey: b.RKey}
		}
		ids, err := s.controller.GotoZombie(ServerID(req.Server), specs)
		if err != nil {
			return gotoZombieResponse{}, err
		}
		return gotoZombieResponse{IDs: toUint64s(ids)}, nil
	}))
	s.rpc.Handle("GS_reclaim", jsonHandler(func(req reclaimRequest) (reclaimResponse, error) {
		ids, err := s.controller.Reclaim(ServerID(req.Server), req.NbBuffers)
		if err != nil {
			return reclaimResponse{}, err
		}
		return reclaimResponse{IDs: toUint64s(ids)}, nil
	}))
	s.rpc.Handle("GS_alloc_ext", jsonHandler(func(req allocRequest) (allocResponse, error) {
		bufs, err := s.controller.AllocExt(ServerID(req.Server), req.MemSize)
		if err != nil {
			return allocResponse{}, err
		}
		return allocResponse{Buffers: toWireBuffers(bufs)}, nil
	}))
	s.rpc.Handle("GS_alloc_swap", jsonHandler(func(req allocRequest) (allocResponse, error) {
		bufs, err := s.controller.AllocSwap(ServerID(req.Server), req.MemSize)
		if err != nil {
			return allocResponse{}, err
		}
		return allocResponse{Buffers: toWireBuffers(bufs)}, nil
	}))
	s.rpc.Handle("GS_release", jsonHandler(func(req releaseRequest) (struct{}, error) {
		return struct{}{}, s.controller.Release(ServerID(req.Server), toBufferIDs(req.IDs))
	}))
	s.rpc.Handle("GS_get_lru_zombie", jsonHandler(func(_ struct{}) (lruZombieResponse, error) {
		id, err := s.controller.LRUZombie()
		if err != nil {
			return lruZombieResponse{}, err
		}
		return lruZombieResponse{Server: string(id)}, nil
	}))
	s.rpc.Handle("GS_free_mem", jsonHandler(func(_ struct{}) (freeMemResponse, error) {
		return freeMemResponse{Bytes: s.controller.FreeMemory()}, nil
	}))
	s.rpc.Handle("GS_transfer", jsonHandler(func(req transferRequest) (struct{}, error) {
		return struct{}{}, s.controller.TransferBuffers(ServerID(req.From), ServerID(req.To), toBufferIDs(req.IDs))
	}))
}

// jsonHandler adapts a typed request/response function to the raw rdma
// handler signature, with JSON (de)serialisation at both ends.
func jsonHandler[Req any, Resp any](fn func(Req) (Resp, error)) rdma.HandlerFunc {
	return func(args []byte) ([]byte, error) {
		var req Req
		if len(args) > 0 {
			if err := unmarshal(args, &req); err != nil {
				return nil, fmt.Errorf("memctl: decode request: %w", err)
			}
		}
		resp, err := fn(req)
		if err != nil {
			return nil, err
		}
		return marshal(resp)
	}
}

// ProtocolClient is the caller side of the protocol: it wraps an RPC client
// with the typed GS_* methods.
type ProtocolClient struct {
	server ServerID
	rpc    *rdma.RPCClient

	// totalLatencyNs accumulates the simulated round-trip time of every call,
	// so the rack-level experiments can charge protocol overhead.
	totalLatencyNs int64
}

// NewProtocolClient connects a caller on the given device to a protocol
// server. The server ID identifies the calling server in every request.
func NewProtocolClient(server ServerID, device *rdma.Device, target *ProtocolServer) (*ProtocolClient, error) {
	if target == nil {
		return nil, fmt.Errorf("memctl: protocol client needs a server")
	}
	cli, err := rdma.NewRPCClient(string(server), device, target.RPCServer())
	if err != nil {
		return nil, err
	}
	return &ProtocolClient{server: server, rpc: cli}, nil
}

// Close releases the client's RPC resources.
func (c *ProtocolClient) Close() { c.rpc.Close() }

// TotalLatencyNs returns the accumulated simulated protocol latency.
func (c *ProtocolClient) TotalLatencyNs() int64 { return c.totalLatencyNs }

// call performs one RPC, accumulating latency.
func (c *ProtocolClient) call(method string, req, resp interface{}) error {
	lat, err := c.rpc.Call(method, req, resp)
	c.totalLatencyNs += lat
	return err
}

// Register adds the calling server to the rack.
func (c *ProtocolClient) Register(totalMem int64) error {
	return c.call("GS_register", registerRequest{Server: string(c.server), TotalMem: totalMem}, nil)
}

// GotoZombie lends buffers and marks the calling server as a zombie.
func (c *ProtocolClient) GotoZombie(buffers []BufferSpec) ([]BufferID, error) {
	req := gotoZombieRequest{Server: string(c.server)}
	for _, b := range buffers {
		req.Buffers = append(req.Buffers, wireBufferSpec{Offset: b.Offset, Size: b.Size, RKey: b.RKey})
	}
	var resp gotoZombieResponse
	if err := c.call("GS_goto_zombie", req, &resp); err != nil {
		return nil, err
	}
	return toBufferIDs(resp.IDs), nil
}

// Reclaim takes back nbBuffers of the calling server's lent memory.
func (c *ProtocolClient) Reclaim(nbBuffers int) ([]BufferID, error) {
	var resp reclaimResponse
	if err := c.call("GS_reclaim", reclaimRequest{Server: string(c.server), NbBuffers: nbBuffers}, &resp); err != nil {
		return nil, err
	}
	return toBufferIDs(resp.IDs), nil
}

// AllocExt requests a guaranteed RAM Extension allocation.
func (c *ProtocolClient) AllocExt(memSize int64) ([]Buffer, error) {
	var resp allocResponse
	if err := c.call("GS_alloc_ext", allocRequest{Server: string(c.server), MemSize: memSize}, &resp); err != nil {
		return nil, err
	}
	return fromWireBuffers(resp.Buffers), nil
}

// AllocSwap requests a best-effort swap allocation.
func (c *ProtocolClient) AllocSwap(memSize int64) ([]Buffer, error) {
	var resp allocResponse
	if err := c.call("GS_alloc_swap", allocRequest{Server: string(c.server), MemSize: memSize}, &resp); err != nil {
		return nil, err
	}
	return fromWireBuffers(resp.Buffers), nil
}

// Release returns buffers the calling server no longer uses.
func (c *ProtocolClient) Release(ids []BufferID) error {
	return c.call("GS_release", releaseRequest{Server: string(c.server), IDs: toUint64s(ids)}, nil)
}

// LRUZombie returns the zombie server with the fewest allocated buffers.
func (c *ProtocolClient) LRUZombie() (ServerID, error) {
	var resp lruZombieResponse
	if err := c.call("GS_get_lru_zombie", struct{}{}, &resp); err != nil {
		return "", err
	}
	return ServerID(resp.Server), nil
}

// FreeMemory returns the rack's unallocated remote memory.
func (c *ProtocolClient) FreeMemory() (int64, error) {
	var resp freeMemResponse
	if err := c.call("GS_free_mem", struct{}{}, &resp); err != nil {
		return 0, err
	}
	return resp.Bytes, nil
}

// Transfer moves ownership of buffers from one user server to another (the
// migration protocol's ownership-pointer update).
func (c *ProtocolClient) Transfer(from, to ServerID, ids []BufferID) error {
	return c.call("GS_transfer", transferRequest{From: string(from), To: string(to), IDs: toUint64s(ids)}, nil)
}

// --- small conversion helpers ------------------------------------------------

func toUint64s(ids []BufferID) []uint64 {
	out := make([]uint64, len(ids))
	for i, id := range ids {
		out[i] = uint64(id)
	}
	return out
}

func toBufferIDs(ids []uint64) []BufferID {
	out := make([]BufferID, len(ids))
	for i, id := range ids {
		out[i] = BufferID(id)
	}
	return out
}

func toWireBuffers(bufs []Buffer) []wireBuffer {
	out := make([]wireBuffer, len(bufs))
	for i, b := range bufs {
		out[i] = toWireBuffer(b)
	}
	return out
}

func fromWireBuffers(ws []wireBuffer) []Buffer {
	out := make([]Buffer, len(ws))
	for i, w := range ws {
		out[i] = fromWireBuffer(w)
	}
	return out
}
