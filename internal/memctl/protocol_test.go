package memctl

import (
	"errors"
	"testing"

	"repro/internal/rdma"
)

// protocolRig wires a controller, a protocol server and two protocol clients
// over a simulated fabric.
type protocolRig struct {
	ctr    *GlobalController
	fabric *rdma.Fabric
	server *ProtocolServer
	zombie *ProtocolClient
	user   *ProtocolClient
}

func newProtocolRig(t *testing.T) *protocolRig {
	t.Helper()
	r := &protocolRig{
		ctr:    NewGlobalController(WithBufferSize(testBufSize)),
		fabric: rdma.NewFabric(rdma.DefaultCostModel()),
	}
	ctrDev, err := r.fabric.AttachDevice("global-mem-ctr")
	if err != nil {
		t.Fatal(err)
	}
	r.server, err = NewProtocolServer("global-mem-ctr", ctrDev, r.ctr)
	if err != nil {
		t.Fatal(err)
	}
	zombieDev, _ := r.fabric.AttachDevice("zombie-host")
	userDev, _ := r.fabric.AttachDevice("user-host")
	r.zombie, err = NewProtocolClient("zombie-host", zombieDev, r.server)
	if err != nil {
		t.Fatal(err)
	}
	r.user, err = NewProtocolClient("user-host", userDev, r.server)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestProtocolServerValidation(t *testing.T) {
	if _, err := NewProtocolServer("x", nil, NewGlobalController()); err == nil {
		t.Error("nil device should be rejected")
	}
	f := rdma.NewFabric(rdma.DefaultCostModel())
	dev, _ := f.AttachDevice("d")
	if _, err := NewProtocolServer("x", dev, nil); err == nil {
		t.Error("nil controller should be rejected")
	}
	if _, err := NewProtocolClient("c", dev, nil); err == nil {
		t.Error("nil protocol server should be rejected")
	}
}

func TestProtocolEndToEnd(t *testing.T) {
	r := newProtocolRig(t)
	defer r.zombie.Close()
	defer r.user.Close()

	// Register both servers over the wire.
	if err := r.zombie.Register(16 * testBufSize); err != nil {
		t.Fatal(err)
	}
	if err := r.user.Register(16 * testBufSize); err != nil {
		t.Fatal(err)
	}
	if len(r.ctr.Servers()) != 2 {
		t.Fatalf("servers = %v", r.ctr.Servers())
	}

	// The zombie host lends 8 buffers and transitions to Sz.
	specs := make([]BufferSpec, 8)
	for i := range specs {
		specs[i] = BufferSpec{Offset: int64(i) * testBufSize, Size: testBufSize, RKey: uint32(100 + i)}
	}
	ids, err := r.zombie.GotoZombie(specs)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 8 {
		t.Fatalf("lent %d buffers", len(ids))
	}
	if role, _ := r.ctr.Role("zombie-host"); role != RoleZombie {
		t.Errorf("role = %v", role)
	}

	// The user host queries free memory and allocates.
	free, err := r.user.FreeMemory()
	if err != nil {
		t.Fatal(err)
	}
	if free != 8*testBufSize {
		t.Errorf("free = %d", free)
	}
	bufs, err := r.user.AllocExt(3 * testBufSize)
	if err != nil {
		t.Fatal(err)
	}
	if len(bufs) != 3 {
		t.Fatalf("allocated %d buffers", len(bufs))
	}
	for _, b := range bufs {
		if b.Host != "zombie-host" || b.RKey == 0 {
			t.Errorf("buffer %+v should come from the zombie with its rkey", b)
		}
	}

	// Best-effort swap allocation over the wire.
	swap, err := r.user.AllocSwap(100 * testBufSize)
	if err != nil {
		t.Fatal(err)
	}
	if len(swap) == 0 || len(swap) > 5 {
		t.Errorf("swap allocation = %d buffers", len(swap))
	}

	// LRU zombie lookup.
	lru, err := r.user.LRUZombie()
	if err != nil || lru != "zombie-host" {
		t.Errorf("lru = %q (%v)", lru, err)
	}

	// Release and reclaim over the wire.
	relIDs := []BufferID{bufs[0].ID}
	if err := r.user.Release(relIDs); err != nil {
		t.Fatal(err)
	}
	reclaimed, err := r.zombie.Reclaim(4)
	if err != nil {
		t.Fatal(err)
	}
	if len(reclaimed) != 4 {
		t.Errorf("reclaimed %d", len(reclaimed))
	}
	if err := r.ctr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}

	// Every call travelled through the fabric with a simulated latency.
	if r.user.TotalLatencyNs() <= 0 || r.zombie.TotalLatencyNs() <= 0 {
		t.Error("protocol latency should be accounted")
	}
	if r.server.Calls() < 8 {
		t.Errorf("server should have served at least 8 calls, got %d", r.server.Calls())
	}
	if r.fabric.Stats().Writes == 0 {
		t.Error("the protocol should ride on one-sided RDMA writes")
	}
}

func TestProtocolErrorsPropagate(t *testing.T) {
	r := newProtocolRig(t)
	// Allocating for an unregistered server fails across the wire.
	if _, err := r.user.AllocExt(testBufSize); err == nil {
		t.Error("allocation before registration should fail")
	}
	if err := r.user.Register(16 * testBufSize); err != nil {
		t.Fatal(err)
	}
	// A guaranteed allocation beyond the rack's memory fails.
	if _, err := r.user.AllocExt(1 << 40); err == nil {
		t.Error("oversized guaranteed allocation should fail")
	}
	// No zombie yet.
	if _, err := r.user.LRUZombie(); err == nil {
		t.Error("LRU zombie with no zombie should fail")
	}
	// Double registration is rejected by the controller and surfaces.
	if err := r.user.Register(16 * testBufSize); err == nil {
		t.Error("double registration should fail")
	}
}

func TestTransferBuffers(t *testing.T) {
	r := newTestRack(t, "user-a", "user-b", "zombie")
	if _, err := r.agents["zombie"].DelegateAndGoZombie(); err != nil {
		t.Fatal(err)
	}
	handles, err := r.agents["user-a"].RequestExt(4 * testBufSize)
	if err != nil {
		t.Fatal(err)
	}
	ids := make([]BufferID, len(handles))
	for i, h := range handles {
		ids[i] = h.ID
	}

	// Transfer ownership to user-b (the migration ownership-pointer update).
	if err := r.ctr.TransferBuffers("user-a", "user-b", ids); err != nil {
		t.Fatal(err)
	}
	if got := len(r.ctr.BuffersOf("user-b")); got != 4 {
		t.Errorf("user-b owns %d buffers, want 4", got)
	}
	if got := len(r.ctr.BuffersOf("user-a")); got != 0 {
		t.Errorf("user-a still owns %d buffers", got)
	}
	if err := r.ctr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}

	// Error paths: unknown destination, wrong current owner, unknown buffer.
	if err := r.ctr.TransferBuffers("user-b", "ghost", ids); !errors.Is(err, ErrUnknownServer) {
		t.Errorf("transfer to unknown server: %v", err)
	}
	if err := r.ctr.TransferBuffers("user-a", "user-b", ids); err == nil {
		t.Error("transfer from the wrong owner should fail")
	}
	if err := r.ctr.TransferBuffers("user-b", "user-a", []BufferID{9999}); err == nil {
		t.Error("transfer of an unknown buffer should fail")
	}
	// Failed transfers must not have moved anything.
	if got := len(r.ctr.BuffersOf("user-b")); got != 4 {
		t.Errorf("failed transfers must be atomic, user-b owns %d", got)
	}
}

func TestTransferOverProtocol(t *testing.T) {
	r := newProtocolRig(t)
	if err := r.zombie.Register(16 * testBufSize); err != nil {
		t.Fatal(err)
	}
	if err := r.user.Register(16 * testBufSize); err != nil {
		t.Fatal(err)
	}
	specs := []BufferSpec{{Offset: 0, Size: testBufSize}}
	if _, err := r.zombie.GotoZombie(specs); err != nil {
		t.Fatal(err)
	}
	bufs, err := r.user.AllocExt(testBufSize)
	if err != nil {
		t.Fatal(err)
	}
	// Register a third server and transfer the buffer to it over the wire.
	if err := r.ctr.RegisterServer("dest-host", 16*testBufSize, nil, nil); err != nil {
		t.Fatal(err)
	}
	if err := r.user.Transfer("user-host", "dest-host", []BufferID{bufs[0].ID}); err != nil {
		t.Fatal(err)
	}
	if got := len(r.ctr.BuffersOf("dest-host")); got != 1 {
		t.Errorf("dest-host owns %d buffers, want 1", got)
	}
}
