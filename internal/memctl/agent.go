package memctl

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/rdma"
)

// Agent is the remote memory manager (remote-mem-mgr) running on every
// server. It interacts with the global controller to lend its own memory
// (when the server is pushed into Sz, or opportunistically while active) and
// to obtain remote memory for its local consumers (the hypervisor's RAM Ext
// paging and explicit swap devices).
//
// The agent owns:
//   - the server's lendable-memory accounting,
//   - the RDMA memory regions backing the buffers it serves,
//   - the queue pairs and handles for the remote buffers it uses.
//
// Lock discipline: the controller may call back into agents (USReclaim,
// ASGetFreeMem) while holding its own mutex, so an agent must NEVER hold
// a.mu across a controller call — the order is always controller.mu before
// agent.mu (and agent.mu before the fabric lock). Methods that both read the
// lendable accounting and talk to the controller pre-reserve the bytes under
// a.mu, drop the lock for the controller round-trip, and roll the
// reservation back on failure.
type Agent struct {
	mu sync.Mutex

	id         ServerID
	controller *GlobalController
	device     *rdma.Device

	totalMem    int64
	reservedMem int64 // memory pinned for local use (VMs + host overhead)

	// served maps the controller's buffer IDs to the local regions backing
	// the memory this server lends.
	served map[BufferID]*rdma.MemoryRegion
	// scavenged holds the regions lent through AS_get_free_mem, keyed by
	// rkey: the controller assigns buffer IDs only after the callback
	// returns, so the rkey is the one name both sides share.
	scavenged map[uint32]*rdma.MemoryRegion
	// pendingReclaim tombstones buffer IDs the controller reclaimed while
	// their delegation was still in flight (announced but not yet recorded
	// in served); delegate drops them instead of recording stale entries.
	pendingReclaim map[BufferID]struct{}
	// specs remembers the spec of every served buffer (for re-registration).
	servedBytes int64

	// used maps buffer IDs to handles for the remote buffers this server
	// consumes.
	used map[BufferID]*RemoteBuffer

	// qps caches one queue pair per remote host.
	qps map[ServerID]*rdma.QueuePair
	cq  *rdma.CompletionQueue

	// mirrorWrites counts asynchronous local-storage mirror writes (fault
	// tolerance for reclaim; Section 4.3 footnote 3).
	mirrorWrites uint64
	reclaimsSeen uint64

	// resolve maps a host ID to its RDMA device (set through the Rack wiring).
	resolve func(ServerID) *rdma.Device

	nextWR uint64
}

// RemoteBuffer is a usable handle on a remote memory buffer: the user server
// reads and writes it with one-sided verbs through the agent.
type RemoteBuffer struct {
	Buffer
	agent *Agent
	// gen is the generation of the controller that issued the buffer. A
	// rebuilt controller restarts ID numbering, so a release is only safe
	// when the generations still match.
	gen uint64
}

// AgentConfig configures an Agent.
type AgentConfig struct {
	ID         ServerID
	Controller *GlobalController
	Device     *rdma.Device
	TotalMem   int64
	// ReservedMem is kept for local consumption and never lent.
	ReservedMem int64
	// ResolveDevice maps a server ID to its RDMA device so the agent can
	// connect queue pairs to remote hosts.
	ResolveDevice func(ServerID) *rdma.Device
}

// NewAgent creates and registers an agent with the global controller.
func NewAgent(cfg AgentConfig) (*Agent, error) {
	if cfg.Controller == nil {
		return nil, fmt.Errorf("memctl: agent %s needs a controller", cfg.ID)
	}
	if cfg.TotalMem <= 0 {
		return nil, fmt.Errorf("memctl: agent %s needs positive memory", cfg.ID)
	}
	if cfg.ReservedMem < 0 || cfg.ReservedMem > cfg.TotalMem {
		return nil, fmt.Errorf("memctl: agent %s reserved memory %d outside [0,%d]", cfg.ID, cfg.ReservedMem, cfg.TotalMem)
	}
	a := &Agent{
		id:             cfg.ID,
		controller:     cfg.Controller,
		device:         cfg.Device,
		totalMem:       cfg.TotalMem,
		reservedMem:    cfg.ReservedMem,
		served:         make(map[BufferID]*rdma.MemoryRegion),
		scavenged:      make(map[uint32]*rdma.MemoryRegion),
		pendingReclaim: make(map[BufferID]struct{}),
		used:           make(map[BufferID]*RemoteBuffer),
		qps:            make(map[ServerID]*rdma.QueuePair),
		cq:             rdma.NewCompletionQueue(),
		resolve:        cfg.ResolveDevice,
	}
	if err := cfg.Controller.RegisterServer(cfg.ID, cfg.TotalMem, a, a); err != nil {
		return nil, err
	}
	return a, nil
}

// ID returns the server ID the agent runs on.
func (a *Agent) ID() ServerID { return a.id }

// ControllerBufferSize returns the rack-wide buffer size the agent's
// controller hands out (consumers size grant requests with it).
func (a *Agent) ControllerBufferSize() int64 { return a.controller.BufferSize() }

// FreeMemory returns the memory the agent could lend right now.
func (a *Agent) FreeMemory() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.freeMemoryLocked()
}

func (a *Agent) freeMemoryLocked() int64 {
	return a.totalMem - a.reservedMem - a.servedBytes
}

// SetReservedMemory updates the memory pinned for local consumption.
func (a *Agent) SetReservedMemory(bytes int64) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if bytes < 0 || bytes > a.totalMem {
		return fmt.Errorf("memctl: reserved memory %d outside [0,%d]", bytes, a.totalMem)
	}
	a.reservedMem = bytes
	return nil
}

// ServedBuffers returns the number of buffers this server is lending.
func (a *Agent) ServedBuffers() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.served)
}

// UsedBuffers returns the number of remote buffers this server is using.
func (a *Agent) UsedBuffers() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.used)
}

// MirrorWrites returns the number of asynchronous local-storage mirror writes.
func (a *Agent) MirrorWrites() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.mirrorWrites
}

// ReclaimsSeen returns how many US_reclaim notifications the agent handled.
func (a *Agent) ReclaimsSeen() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.reclaimsSeen
}

// buildSpecs slices n uniform buffers out of the agent's memory and
// registers an RDMA region for each, returning the specs to send to the
// controller and the regions (indexed in the same order). It takes no locks
// beyond the fabric's own, so callers may invoke it with or without a.mu.
func (a *Agent) buildSpecs(n int64) ([]BufferSpec, []*rdma.MemoryRegion, error) {
	bufSize := a.controller.BufferSize()
	specs := make([]BufferSpec, 0, n)
	regions := make([]*rdma.MemoryRegion, 0, n)
	for i := int64(0); i < n; i++ {
		var rkey uint32
		var mr *rdma.MemoryRegion
		if a.device != nil {
			var err error
			mr, err = a.device.RegisterMemory(int(bufSize), rdma.AccessFlags{RemoteRead: true, RemoteWrite: true})
			if err != nil {
				a.dropRegions(regions)
				return nil, nil, err
			}
			rkey = mr.RKey()
		}
		specs = append(specs, BufferSpec{Offset: i * bufSize, Size: bufSize, RKey: rkey})
		regions = append(regions, mr)
	}
	return specs, regions, nil
}

// dropRegions deregisters regions built for a delegation that failed.
func (a *Agent) dropRegions(regions []*rdma.MemoryRegion) {
	if a.device == nil {
		return
	}
	for _, mr := range regions {
		if mr != nil {
			a.device.DeregisterMemory(mr)
		}
	}
}

// reserveLend carves up to wantBytes of free memory into whole buffers and
// reserves them in the served accounting, returning the buffer count. The
// reservation keeps a concurrent scavenge (ASGetFreeMem) from lending the
// same bytes while the delegation round-trips to the controller.
func (a *Agent) reserveLend(wantBytes int64) int64 {
	bufSize := a.controller.BufferSize()
	a.mu.Lock()
	defer a.mu.Unlock()
	free := a.freeMemoryLocked()
	if wantBytes > free {
		wantBytes = free
	}
	n := wantBytes / bufSize
	if n < 0 {
		n = 0
	}
	a.servedBytes += n * bufSize
	return n
}

// unreserveLend rolls back a reservation made by reserveLend.
func (a *Agent) unreserveLend(n int64) {
	bufSize := a.controller.BufferSize()
	a.mu.Lock()
	defer a.mu.Unlock()
	a.servedBytes -= n * bufSize
	if a.servedBytes < 0 {
		a.servedBytes = 0
	}
}

// delegate reserves, registers and announces up to wantBytes of free memory
// through the given controller entry point (GotoZombie or DelegateActive).
func (a *Agent) delegate(wantBytes int64, announce func([]BufferSpec) ([]BufferID, error)) (int, error) {
	n := a.reserveLend(wantBytes)
	if n == 0 {
		return 0, nil
	}
	specs, regions, err := a.buildSpecs(n)
	if err != nil {
		a.unreserveLend(n)
		return 0, err
	}
	ids, err := announce(specs)
	if err != nil {
		a.dropRegions(regions)
		a.unreserveLend(n)
		return 0, err
	}
	a.mu.Lock()
	for i, id := range ids {
		var mr *rdma.MemoryRegion
		if i < len(regions) {
			mr = regions[i]
		}
		if _, gone := a.pendingReclaim[id]; gone {
			// A concurrent WakeAndReclaim already took this buffer back from
			// the controller; recording it now would leave a stale served
			// entry and leak its region.
			delete(a.pendingReclaim, id)
			if a.device != nil && mr != nil {
				a.device.DeregisterMemory(mr)
			}
			continue
		}
		a.served[id] = mr
	}
	a.mu.Unlock()
	// Every spec has a positive size, so the controller accepted all of them
	// and the reservation made in reserveLend is exact.
	return len(ids), nil
}

// DelegateAndGoZombie computes the server's free memory, organises it into
// buffers, registers them with the RDMA device and announces the transition
// to Sz via GS_goto_zombie. It returns the number of buffers lent.
func (a *Agent) DelegateAndGoZombie() (int, error) {
	a.mu.Lock()
	free := a.freeMemoryLocked()
	a.mu.Unlock()
	n, err := a.delegate(free, func(specs []BufferSpec) ([]BufferID, error) {
		return a.controller.GotoZombie(a.id, specs)
	})
	if err != nil {
		return n, err
	}
	if n == 0 {
		// Nothing to lend (tiny or fully-reserved server): still announce the
		// Sz transition so the controller tracks the role.
		if _, err := a.controller.GotoZombie(a.id, nil); err != nil {
			return 0, err
		}
	}
	return n, nil
}

// DelegateWhileActive lends free memory while the server stays active.
// keepBytes of free memory are held back for local headroom.
func (a *Agent) DelegateWhileActive(keepBytes int64) (int, error) {
	a.mu.Lock()
	lendable := a.freeMemoryLocked() - keepBytes
	a.mu.Unlock()
	if lendable <= 0 {
		return 0, nil
	}
	return a.delegate(lendable, func(specs []BufferSpec) ([]BufferID, error) {
		return a.controller.DelegateActive(a.id, specs)
	})
}

// WakeAndReclaim reclaims nbBuffers of the memory this server had lent (all
// of them when nbBuffers is negative — including buffers the controller
// scavenged from it while active, which the agent does not track itself).
// The controller notifies any user servers first; on return the memory is
// local again.
func (a *Agent) WakeAndReclaim(nbBuffers int) (int, error) {
	bufs, err := a.controller.ReclaimBuffers(a.id, nbBuffers)
	if err != nil {
		return 0, err
	}

	a.mu.Lock()
	defer a.mu.Unlock()
	bufSize := a.controller.BufferSize()
	for _, b := range bufs {
		if mr, ok := a.served[b.ID]; ok {
			if a.device != nil && mr != nil {
				a.device.DeregisterMemory(mr)
			}
			delete(a.served, b.ID)
		} else if mr, ok := a.scavenged[b.RKey]; ok {
			// Lent through AS_get_free_mem: the region was never filed under
			// a buffer ID, only under its rkey.
			if a.device != nil && mr != nil {
				a.device.DeregisterMemory(mr)
			}
			delete(a.scavenged, b.RKey)
		} else {
			// A delegation announced this buffer but has not recorded it yet;
			// tombstone the ID so delegate drops it instead of resurrecting a
			// buffer the controller no longer knows.
			a.pendingReclaim[b.ID] = struct{}{}
		}
		a.servedBytes -= bufSize
	}
	if a.servedBytes < 0 {
		a.servedBytes = 0
	}
	return len(bufs), nil
}

// USReclaim implements ReclaimNotifier: the controller reclaims buffers this
// server was using. The agent "transfers the backup copy of the data to other
// remote locations" — modelled as mirror writes — and drops the handles.
func (a *Agent) USReclaim(ids []BufferID) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.reclaimsSeen++
	for _, id := range ids {
		if _, ok := a.used[id]; ok {
			// The data is recovered from the asynchronous local mirror; count
			// one mirror read-back per buffer.
			a.mirrorWrites++
			delete(a.used, id)
		}
	}
	return nil
}

// ASGetFreeMem implements FreeMemoryProvider: an active server offers half of
// its free memory when the controller scavenges for a guaranteed allocation.
// It is invoked by the controller with the controller's lock held, so it only
// takes a.mu (see the lock discipline note on Agent).
func (a *Agent) ASGetFreeMem() []BufferSpec {
	a.mu.Lock()
	defer a.mu.Unlock()
	bufSize := a.controller.BufferSize()
	n := (a.freeMemoryLocked() / 2) / bufSize
	specs, regions, err := a.buildSpecs(n)
	if err != nil {
		return nil
	}
	// Track them as served immediately; the controller will add them to its
	// database as active buffers. The controller assigns IDs only after this
	// callback returns, so the regions are filed by rkey for WakeAndReclaim
	// to find.
	a.servedBytes += int64(len(specs)) * bufSize
	for i := range specs {
		if regions[i] != nil {
			a.scavenged[specs[i].RKey] = regions[i]
		}
	}
	return specs
}

// RequestExt requests a guaranteed RAM Extension allocation of memSize bytes
// and returns handles for the allocated remote buffers.
func (a *Agent) RequestExt(memSize int64) ([]*RemoteBuffer, error) {
	bufs, err := a.controller.AllocExt(a.id, memSize)
	if err != nil {
		return nil, err
	}
	return a.adopt(bufs), nil
}

// RequestSwap requests a best-effort swap allocation of memSize bytes. The
// returned handles may cover less than memSize.
func (a *Agent) RequestSwap(memSize int64) ([]*RemoteBuffer, error) {
	bufs, err := a.controller.AllocSwap(a.id, memSize)
	if err != nil {
		return nil, err
	}
	return a.adopt(bufs), nil
}

// Retarget points the agent at a rebuilt controller after a fail-over and
// re-attaches its reclaim/scavenge callbacks to the rebuilt server record
// (Rebuild replays the membership log with nil callbacks). The caller must
// quiesce the agent first: Retarget is part of the promotion sequence, not a
// concurrent operation.
func (a *Agent) Retarget(g *GlobalController) error {
	if g == nil {
		return fmt.Errorf("memctl: agent %s cannot retarget to a nil controller", a.id)
	}
	if err := g.AttachCallbacks(a.id, a, a); err != nil {
		return fmt.Errorf("memctl: agent %s retarget: %w", a.id, err)
	}
	a.mu.Lock()
	a.controller = g
	a.mu.Unlock()
	return nil
}

// ReleaseHandles returns remote buffers that may belong to several different
// agents — e.g. a VM whose remote memory mixes home-rack buffers with
// cross-rack borrows — grouping them by owning agent in first-seen order.
func ReleaseHandles(handles []*RemoteBuffer) error {
	var order []*Agent
	groups := make(map[*Agent][]*RemoteBuffer)
	for _, h := range handles {
		if h == nil || h.agent == nil {
			continue
		}
		if _, seen := groups[h.agent]; !seen {
			order = append(order, h.agent)
		}
		groups[h.agent] = append(groups[h.agent], h)
	}
	for _, a := range order {
		if err := a.ReleaseBuffers(groups[a]); err != nil {
			return err
		}
	}
	return nil
}

// ReleaseBuffers returns remote buffers to the controller. Handles issued by
// a controller that has since failed over are dropped instead of released:
// the rebuilt database reconstructed the lent memory as free and restarted
// ID numbering, so a stale handle's ID may name someone else's allocation.
func (a *Agent) ReleaseBuffers(handles []*RemoteBuffer) error {
	ids := make([]BufferID, 0, len(handles))
	a.mu.Lock()
	ctrl := a.controller
	gen := ctrl.Generation()
	for _, h := range handles {
		delete(a.used, h.ID)
		if h.gen != 0 && h.gen != gen {
			continue
		}
		ids = append(ids, h.ID)
	}
	a.mu.Unlock()
	if len(ids) == 0 {
		return nil
	}
	return ctrl.Release(a.id, ids)
}

// adopt wraps allocated buffers into handles and records them as used.
func (a *Agent) adopt(bufs []Buffer) []*RemoteBuffer {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]*RemoteBuffer, 0, len(bufs))
	for _, b := range bufs {
		h := &RemoteBuffer{Buffer: b, agent: a, gen: a.controller.Generation()}
		a.used[b.ID] = h
		out = append(out, h)
	}
	return out
}

// UsedBufferHandles returns the handles of all remote buffers in use, sorted
// by buffer ID.
func (a *Agent) UsedBufferHandles() []*RemoteBuffer {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]*RemoteBuffer, 0, len(a.used))
	for _, h := range a.used {
		out = append(out, h)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// qpFor returns (creating if needed) a connected queue pair to the host.
func (a *Agent) qpFor(host ServerID) (*rdma.QueuePair, error) {
	if a.device == nil || a.resolve == nil {
		return nil, fmt.Errorf("memctl: agent %s has no RDMA wiring", a.id)
	}
	if qp, ok := a.qps[host]; ok {
		return qp, nil
	}
	remote := a.resolve(host)
	if remote == nil {
		return nil, fmt.Errorf("memctl: cannot resolve RDMA device of %s", host)
	}
	qp := a.device.CreateQueuePair(a.cq)
	peer := remote.CreateQueuePair(rdma.NewCompletionQueue())
	if err := rdma.Connect(qp, peer); err != nil {
		return nil, err
	}
	a.qps[host] = qp
	return qp, nil
}

// WriteRemote writes data into the remote buffer at the given offset using a
// one-sided RDMA WRITE, returning the simulated latency. Every remote write
// is also mirrored asynchronously to local storage for fault tolerance.
func (rb *RemoteBuffer) WriteRemote(offset int64, data []byte) (int64, error) {
	a := rb.agent
	a.mu.Lock()
	qp, err := a.qpFor(rb.Host)
	if err != nil {
		a.mu.Unlock()
		return 0, err
	}
	a.nextWR++
	wr := a.nextWR
	a.mirrorWrites++ // asynchronous local mirror (does not add latency)
	a.mu.Unlock()
	if offset < 0 || offset+int64(len(data)) > rb.Size {
		return 0, fmt.Errorf("memctl: write outside buffer %d bounds", rb.ID)
	}
	return qp.Write(wr, data, rb.RKey, int(offset))
}

// ReadRemote reads length bytes from the remote buffer at offset into dst.
func (rb *RemoteBuffer) ReadRemote(offset int64, dst []byte) (int64, error) {
	a := rb.agent
	a.mu.Lock()
	qp, err := a.qpFor(rb.Host)
	if err != nil {
		a.mu.Unlock()
		return 0, err
	}
	a.nextWR++
	wr := a.nextWR
	a.mu.Unlock()
	if offset < 0 || offset+int64(len(dst)) > rb.Size {
		return 0, fmt.Errorf("memctl: read outside buffer %d bounds", rb.ID)
	}
	return qp.Read(wr, dst, rb.RKey, int(offset), len(dst))
}
