package memctl

import (
	"errors"
	"fmt"
	"sort"
)

// DefaultBufferSize is the rack-wide BUFF_SIZE: 64 MiB, a compromise between
// allocation bookkeeping overhead and fragmentation (ablated in the bench
// suite).
const DefaultBufferSize int64 = 64 << 20

// ServerID identifies a server in the rack.
type ServerID string

// BufferID identifies one remote memory buffer.
type BufferID uint64

// BufferType distinguishes memory served by a zombie server from memory
// served by an active server. Zombie memory always has allocation priority.
type BufferType int

// Buffer types.
const (
	ZombieBuffer BufferType = iota
	ActiveBuffer
)

// String names the buffer type.
func (t BufferType) String() string {
	if t == ZombieBuffer {
		return "zombie"
	}
	return "active"
}

// Buffer is one entry of the controller's in-memory database, as described in
// Section 4.3: identifier, offset, size, type, serving host and current user.
type Buffer struct {
	ID     BufferID
	Host   ServerID
	User   ServerID // empty when unallocated
	Offset int64
	Size   int64
	Type   BufferType
	// RKey is the RDMA remote key a user server needs to address the buffer
	// with one-sided verbs.
	RKey uint32
}

// Allocated reports whether the buffer is currently lent to a user server.
func (b Buffer) Allocated() bool { return b.User != "" }

// bufferDB is the controller's buffer database. It is not safe for concurrent
// use; the owning controller serialises access.
type bufferDB struct {
	nextID  BufferID
	byID    map[BufferID]*Buffer
	byHost  map[ServerID][]BufferID
	byUser  map[ServerID][]BufferID
	freeIDs map[BufferID]struct{}
}

func newBufferDB() *bufferDB {
	return &bufferDB{
		byID:    make(map[BufferID]*Buffer),
		byHost:  make(map[ServerID][]BufferID),
		byUser:  make(map[ServerID][]BufferID),
		freeIDs: make(map[BufferID]struct{}),
	}
}

// add inserts a new unallocated buffer served by host and returns it.
func (db *bufferDB) add(host ServerID, offset, size int64, typ BufferType, rkey uint32) *Buffer {
	db.nextID++
	b := &Buffer{ID: db.nextID, Host: host, Offset: offset, Size: size, Type: typ, RKey: rkey}
	db.byID[b.ID] = b
	db.byHost[host] = append(db.byHost[host], b.ID)
	db.freeIDs[b.ID] = struct{}{}
	return b
}

// get returns the buffer with the given id.
func (db *bufferDB) get(id BufferID) (*Buffer, bool) {
	b, ok := db.byID[id]
	return b, ok
}

// remove deletes a buffer entirely (its host reclaimed the memory).
func (db *bufferDB) remove(id BufferID) {
	b, ok := db.byID[id]
	if !ok {
		return
	}
	delete(db.byID, id)
	delete(db.freeIDs, id)
	db.byHost[b.Host] = removeID(db.byHost[b.Host], id)
	if b.User != "" {
		db.byUser[b.User] = removeID(db.byUser[b.User], id)
	}
}

// allocate marks the buffer as used by user.
func (db *bufferDB) allocate(id BufferID, user ServerID) error {
	b, ok := db.byID[id]
	if !ok {
		return fmt.Errorf("memctl: buffer %d does not exist", id)
	}
	if b.User != "" {
		return fmt.Errorf("memctl: buffer %d already allocated to %s", id, b.User)
	}
	b.User = user
	delete(db.freeIDs, id)
	db.byUser[user] = append(db.byUser[user], id)
	return nil
}

// release returns the buffer to the free pool.
func (db *bufferDB) release(id BufferID) error {
	b, ok := db.byID[id]
	if !ok {
		return fmt.Errorf("memctl: buffer %d does not exist", id)
	}
	if b.User == "" {
		return fmt.Errorf("memctl: buffer %d is not allocated", id)
	}
	db.byUser[b.User] = removeID(db.byUser[b.User], id)
	b.User = ""
	db.freeIDs[id] = struct{}{}
	return nil
}

// retype changes the buffer type of every buffer served by host (when the
// host transitions between zombie and active).
func (db *bufferDB) retype(host ServerID, typ BufferType) {
	for _, id := range db.byHost[host] {
		db.byID[id].Type = typ
	}
}

// freeByType returns the IDs of unallocated buffers of the given type, in
// ascending ID order for determinism.
func (db *bufferDB) freeByType(typ BufferType) []BufferID {
	var out []BufferID
	for id := range db.freeIDs {
		if db.byID[id].Type == typ {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// hostBuffers returns the IDs of buffers served by host, ascending.
func (db *bufferDB) hostBuffers(host ServerID) []BufferID {
	out := append([]BufferID(nil), db.byHost[host]...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// userBuffers returns the IDs of buffers used by user, ascending.
func (db *bufferDB) userBuffers(user ServerID) []BufferID {
	out := append([]BufferID(nil), db.byUser[user]...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// allocatedCount returns the number of allocated buffers served by host.
func (db *bufferDB) allocatedCount(host ServerID) int {
	n := 0
	for _, id := range db.byHost[host] {
		if db.byID[id].User != "" {
			n++
		}
	}
	return n
}

// totalFreeBytes returns the free (unallocated) remote memory.
func (db *bufferDB) totalFreeBytes() int64 {
	var total int64
	for id := range db.freeIDs {
		total += db.byID[id].Size
	}
	return total
}

// checkInvariants validates the cross-index consistency of the database. It
// is exercised by the property-based tests.
func (db *bufferDB) checkInvariants() error {
	for id, b := range db.byID {
		if b.ID != id {
			return fmt.Errorf("memctl: buffer %d stored under id %d", b.ID, id)
		}
		if b.Size <= 0 {
			return fmt.Errorf("memctl: buffer %d has non-positive size", id)
		}
		if _, free := db.freeIDs[id]; free == (b.User != "") {
			return fmt.Errorf("memctl: buffer %d free-set membership inconsistent with user %q", id, b.User)
		}
		if !containsID(db.byHost[b.Host], id) {
			return fmt.Errorf("memctl: buffer %d missing from host index", id)
		}
		if b.User != "" && !containsID(db.byUser[b.User], id) {
			return fmt.Errorf("memctl: buffer %d missing from user index", id)
		}
	}
	for host, ids := range db.byHost {
		for _, id := range ids {
			b, ok := db.byID[id]
			if !ok {
				return fmt.Errorf("memctl: host %s indexes unknown buffer %d", host, id)
			}
			if b.Host != host {
				return fmt.Errorf("memctl: buffer %d indexed under wrong host", id)
			}
		}
	}
	for user, ids := range db.byUser {
		for _, id := range ids {
			b, ok := db.byID[id]
			if !ok {
				return fmt.Errorf("memctl: user %s indexes unknown buffer %d", user, id)
			}
			if b.User != user {
				return fmt.Errorf("memctl: buffer %d indexed under wrong user", id)
			}
		}
	}
	return nil
}

func removeID(ids []BufferID, id BufferID) []BufferID {
	for i, v := range ids {
		if v == id {
			return append(ids[:i], ids[i+1:]...)
		}
	}
	return ids
}

func containsID(ids []BufferID, id BufferID) bool {
	for _, v := range ids {
		if v == id {
			return true
		}
	}
	return false
}

// Errors returned by the controller.
var (
	ErrUnknownServer    = errors.New("memctl: unknown server")
	ErrNotEnoughMemory  = errors.New("memctl: not enough remote memory to satisfy a guaranteed allocation")
	ErrNoZombie         = errors.New("memctl: no zombie server available")
	ErrAdmissionControl = errors.New("memctl: allocation rejected by rack-level admission control")
)
