// Package memctl implements the rack-level remote memory management protocol
// of Section 4: the global memory controller (global-mem-ctr), its mirrored
// secondary controller (secondary-ctr), and the per-server remote memory
// manager agents (remote-mem-mgr).
//
// Memory is delegated, allocated and reclaimed at buffer granularity. Buffers
// have a uniform size across the rack (BUFF_SIZE in the paper, BufferSize
// here). The controller keeps an in-memory database of every buffer: which
// host serves it, whether that host is a zombie or an active server, and
// which user server (if any) currently uses it.
//
// The protocol functions follow the paper's naming:
//
//	GS_goto_zombie(buffers)  -> GlobalController.GotoZombie
//	GS_reclaim(nbBuffers)    -> GlobalController.Reclaim
//	GS_alloc_ext(memSize)    -> GlobalController.AllocExt
//	GS_alloc_swap(memSize)   -> GlobalController.AllocSwap
//	GS_get_lru_zombie()      -> GlobalController.LRUZombie
//	US_reclaim(buff_IDs)     -> ReclaimNotifier.USReclaim (agent callback)
//	AS_get_free_mem()        -> FreeMemoryProvider.ASGetFreeMem (agent callback)
package memctl
