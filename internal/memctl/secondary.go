package memctl

import (
	"sync"
)

// SecondaryController is the secondary-ctr of Section 4.1: it monitors the
// global controller's heartbeats and synchronously mirrors every operation so
// that it can take over transparently when the primary fails.
type SecondaryController struct {
	mu sync.Mutex

	// ops is the mirrored operation log, in sequence order.
	ops []Operation
	// lastSeq is the highest sequence number applied.
	lastSeq uint64

	// Heartbeat monitoring.
	heartbeatTimeoutNs int64
	lastHeartbeatNs    int64
	nowNs              int64
	promoted           bool
	missedHeartbeats   int
}

// DefaultHeartbeatTimeoutNs is the failure-detection timeout (2 seconds).
const DefaultHeartbeatTimeoutNs int64 = 2_000_000_000

// NewSecondaryController creates a secondary controller with the default
// heartbeat timeout.
func NewSecondaryController() *SecondaryController {
	return &SecondaryController{heartbeatTimeoutNs: DefaultHeartbeatTimeoutNs}
}

// SetHeartbeatTimeout overrides the failure-detection timeout.
func (s *SecondaryController) SetHeartbeatTimeout(ns int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if ns > 0 {
		s.heartbeatTimeoutNs = ns
	}
}

// Apply implements Mirror: the primary streams every operation here
// synchronously.
func (s *SecondaryController) Apply(op Operation) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ops = append(s.ops, op)
	if op.Seq > s.lastSeq {
		s.lastSeq = op.Seq
	}
}

// Operations returns the number of mirrored operations.
func (s *SecondaryController) Operations() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.ops)
}

// LastSeq returns the last mirrored sequence number.
func (s *SecondaryController) LastSeq() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastSeq
}

// Log returns a copy of the mirrored operation log.
func (s *SecondaryController) Log() []Operation {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Operation(nil), s.ops...)
}

// Heartbeat records a heartbeat from the primary at the given simulated time.
func (s *SecondaryController) Heartbeat(nowNs int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if nowNs > s.nowNs {
		s.nowNs = nowNs
	}
	s.lastHeartbeatNs = nowNs
	s.missedHeartbeats = 0
}

// Tick advances the secondary's clock and checks the heartbeat deadline. It
// returns true when the primary is considered failed and the secondary has
// promoted itself.
func (s *SecondaryController) Tick(nowNs int64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if nowNs > s.nowNs {
		s.nowNs = nowNs
	}
	if s.promoted {
		return true
	}
	if s.nowNs-s.lastHeartbeatNs > s.heartbeatTimeoutNs {
		s.missedHeartbeats++
		s.promoted = true
	}
	return s.promoted
}

// Promoted reports whether the secondary has taken over.
func (s *SecondaryController) Promoted() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.promoted
}

// Rebuild constructs a fresh GlobalController from the mirrored operation
// log. Buffer IDs are not guaranteed to be identical to the failed primary's
// (agents re-establish their channels after a failover), but the set of
// servers, their roles and the lent memory are reconstructed. The secondary
// uses this when it promotes itself.
func (s *SecondaryController) Rebuild(opts ...Option) *GlobalController {
	s.mu.Lock()
	ops := append([]Operation(nil), s.ops...)
	s.mu.Unlock()

	g := NewGlobalController(opts...)
	// Replay only the server-membership and delegation operations; live
	// allocations are re-established by the agents after failover (the data
	// itself is unaffected: it lives in the zombie servers' DRAM).
	for _, op := range ops {
		switch op.Kind {
		case "register":
			_ = g.RegisterServer(op.Server, op.Bytes, nil, nil)
		case "unregister":
			_ = g.UnregisterServer(op.Server)
		case "goto_zombie":
			specs := make([]BufferSpec, len(op.IDs))
			for i := range specs {
				specs[i] = BufferSpec{Offset: int64(i) * g.BufferSize(), Size: g.BufferSize()}
			}
			_, _ = g.GotoZombie(op.Server, specs)
		case "delegate_active":
			specs := make([]BufferSpec, len(op.IDs))
			for i := range specs {
				specs[i] = BufferSpec{Offset: int64(i) * g.BufferSize(), Size: g.BufferSize()}
			}
			_, _ = g.DelegateActive(op.Server, specs)
		case "reclaim":
			_, _ = g.Reclaim(op.Server, len(op.IDs))
		}
	}
	return g
}
