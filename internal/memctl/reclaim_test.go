package memctl

import (
	"sync"
	"testing"
)

// TestWakeAndReclaimReleasesScavengedRegions pins a region leak on the
// scavenge path: AS_get_free_mem registers RDMA regions for the buffers an
// active server offers, but the controller assigns their IDs only after the
// callback returns, so the agent cannot file them under served[id]. A later
// WakeAndReclaim must still find and deregister them (by rkey), otherwise
// every scavenge leaks its regions for the lifetime of the device.
func TestWakeAndReclaimReleasesScavengedRegions(t *testing.T) {
	r := newTestRack(t, "user", "helper")
	// No zombies: the guaranteed allocation scavenges the active helper.
	handles, err := r.agents["user"].RequestExt(4 * testBufSize)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.devices["helper"].Regions(); got == 0 {
		t.Fatal("scavenge should have registered regions on the helper")
	}
	// Return the buffers so the reclaim below is the quiet, no-notify path.
	if err := ReleaseHandles(handles); err != nil {
		t.Fatal(err)
	}
	if _, err := r.agents["helper"].WakeAndReclaim(-1); err != nil {
		t.Fatal(err)
	}
	if got := r.devices["helper"].Regions(); got != 0 {
		t.Fatalf("helper still holds %d regions after reclaiming everything (scavenged-region leak)", got)
	}
	if got, want := r.agents["helper"].FreeMemory(), int64(12*testBufSize); got != want {
		t.Fatalf("helper free memory = %d, want %d", got, want)
	}
}

// TestReclaimRacingDelegate hammers the window between a delegation's
// controller announcement and the agent recording the granted IDs: a
// concurrent WakeAndReclaim can reclaim those very IDs first. The agent must
// not end up with stale served entries or leaked regions — after a final
// full reclaim the server is exactly as it started.
func TestReclaimRacingDelegate(t *testing.T) {
	r := newTestRack(t, "user", "helper")
	helper := r.agents["helper"]

	const rounds = 200
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			if _, err := helper.DelegateWhileActive(0); err != nil {
				t.Errorf("delegate: %v", err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			if _, err := helper.WakeAndReclaim(-1); err != nil {
				t.Errorf("reclaim: %v", err)
				return
			}
		}
	}()
	wg.Wait()

	// Quiesce: reclaim whatever the last delegation round left behind.
	if _, err := helper.WakeAndReclaim(-1); err != nil {
		t.Fatal(err)
	}
	if got := helper.ServedBuffers(); got != 0 {
		t.Fatalf("%d stale served entries after full reclaim", got)
	}
	if got := r.devices["helper"].Regions(); got != 0 {
		t.Fatalf("%d leaked regions after full reclaim", got)
	}
	if got, want := helper.FreeMemory(), int64(12*testBufSize); got != want {
		t.Fatalf("helper free memory = %d, want %d", got, want)
	}
	if err := r.ctr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestStaleHandleReleaseAfterFailover pins the fail-over collision fix: a
// rebuilt controller restarts buffer-ID numbering, so a handle issued by the
// dead primary can carry the same ID as a fresh allocation made by another
// server after the take-over. Releasing the stale handle must be a no-op —
// not an error, and above all not a release of the other server's buffer.
func TestStaleHandleReleaseAfterFailover(t *testing.T) {
	r := newTestRack(t, "user-a", "user-b", "zombie")
	if _, err := r.agents["zombie"].DelegateAndGoZombie(); err != nil {
		t.Fatal(err)
	}
	stale, err := r.agents["user-a"].RequestExt(2 * testBufSize)
	if err != nil {
		t.Fatal(err)
	}

	// The primary dies; every agent retargets to the rebuilt controller.
	if !r.sec.Tick(10_000_000_000) {
		t.Fatal("secondary should promote after missed heartbeats")
	}
	rebuilt := r.sec.Rebuild(WithBufferSize(testBufSize))
	for _, id := range []ServerID{"user-a", "user-b", "zombie"} {
		if err := r.agents[id].Retarget(rebuilt); err != nil {
			t.Fatal(err)
		}
	}

	// Another server allocates from the rebuilt pool; with ID numbering
	// restarted its buffers collide with the stale handles' IDs.
	fresh, err := r.agents["user-b"].RequestExt(2 * testBufSize)
	if err != nil {
		t.Fatal(err)
	}
	collision := false
	for _, s := range stale {
		for _, f := range fresh {
			if s.ID == f.ID {
				collision = true
			}
		}
	}
	if !collision {
		t.Fatalf("test needs colliding IDs to bite: stale %v vs fresh %v", stale, fresh)
	}

	// Releasing the stale handles must not error and must not free user-b's
	// allocation out from under it.
	if err := r.agents["user-a"].ReleaseBuffers(stale); err != nil {
		t.Fatalf("stale release after fail-over: %v", err)
	}
	held := rebuilt.BuffersOf("user-b")
	if len(held) != len(fresh) {
		t.Fatalf("user-b holds %d buffers after the stale release, want %d", len(held), len(fresh))
	}
	// Fresh handles still release cleanly.
	if err := r.agents["user-b"].ReleaseBuffers(fresh); err != nil {
		t.Fatal(err)
	}
	if err := rebuilt.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
