package memctl

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// ReclaimNotifier is implemented by remote memory manager agents. The
// controller calls USReclaim when buffers a user server depends on are being
// taken back by their owner; the agent must relocate the affected data (it
// keeps an asynchronously-mirrored copy on local storage) before the call
// returns.
type ReclaimNotifier interface {
	// USReclaim informs the agent that the listed buffers are no longer
	// available. This is the paper's US_reclaim(buff_IDs).
	USReclaim(ids []BufferID) error
}

// FreeMemoryProvider is implemented by agents of active servers; the
// controller uses it to scavenge additional remote memory from active servers
// when the zombie pool is exhausted. This is the paper's AS_get_free_mem().
type FreeMemoryProvider interface {
	// ASGetFreeMem returns buffer descriptors for memory the active server is
	// willing to lend right now (may be empty).
	ASGetFreeMem() []BufferSpec
}

// BufferSpec describes a buffer a server offers to lend.
type BufferSpec struct {
	Offset int64
	Size   int64
	RKey   uint32
}

// ServerRole is the controller's view of a server's power role.
type ServerRole int

// Server roles as the controller tracks them.
const (
	RoleActive ServerRole = iota // S0, may use and serve memory
	RoleZombie                   // Sz, serves memory only
	RoleDown                     // S3/S4/S5, serves nothing
)

// String names the role.
func (r ServerRole) String() string {
	switch r {
	case RoleActive:
		return "active"
	case RoleZombie:
		return "zombie"
	default:
		return "down"
	}
}

// serverRecord is the controller's per-server state.
type serverRecord struct {
	id       ServerID
	role     ServerRole
	totalMem int64
	agent    ReclaimNotifier
	provider FreeMemoryProvider
}

// Operation is one mirrored state-changing operation, streamed to the
// secondary controller for transparent high availability.
type Operation struct {
	Seq    uint64
	Kind   string
	Server ServerID
	IDs    []BufferID
	Bytes  int64
}

// Mirror receives the synchronous operation stream of the controller. The
// secondary controller implements it; tests may substitute their own.
type Mirror interface {
	Apply(op Operation)
}

// GlobalController is the rack's global memory controller (global-mem-ctr).
// It owns the buffer database and implements the allocation protocol.
type GlobalController struct {
	mu sync.Mutex

	bufferSize int64
	db         *bufferDB
	servers    map[ServerID]*serverRecord
	mirror     Mirror
	seq        uint64
	// gen identifies this controller instance. A rebuilt controller (after a
	// fail-over) restarts buffer-ID numbering, so handles issued by a dead
	// primary can collide with the rebuilt database; agents compare the
	// handle's generation against their controller's to drop such stale
	// handles instead of releasing someone else's allocation.
	gen uint64

	// extAllocated tracks guaranteed (RAM Ext) bytes per user for admission
	// control: the sum of guarantees can never exceed the delegatable memory
	// of the rack.
	extAllocated map[ServerID]int64

	stats ControllerStats
}

// ControllerStats aggregates protocol activity counters.
type ControllerStats struct {
	GotoZombieCalls uint64
	ReclaimCalls    uint64
	AllocExtCalls   uint64
	AllocSwapCalls  uint64
	USReclaims      uint64
	BuffersLent     uint64
	BuffersReturned uint64
}

// Option configures a GlobalController.
type Option func(*GlobalController)

// WithBufferSize overrides the rack-wide buffer size.
func WithBufferSize(size int64) Option {
	return func(g *GlobalController) {
		if size > 0 {
			g.bufferSize = size
		}
	}
}

// WithMirror attaches a mirror (normally the secondary controller).
func WithMirror(m Mirror) Option {
	return func(g *GlobalController) { g.mirror = m }
}

// NewGlobalController creates a controller with an empty buffer database.
func NewGlobalController(opts ...Option) *GlobalController {
	g := &GlobalController{
		bufferSize:   DefaultBufferSize,
		db:           newBufferDB(),
		servers:      make(map[ServerID]*serverRecord),
		extAllocated: make(map[ServerID]int64),
		gen:          controllerGen.Add(1),
	}
	for _, o := range opts {
		o(g)
	}
	return g
}

// controllerGen hands every controller instance a distinct generation.
var controllerGen atomic.Uint64

// Generation returns the controller instance's generation. Buffer handles
// remember the generation that issued them; a mismatch means the issuing
// primary died and the handle's ID may name a different allocation in the
// rebuilt database.
func (g *GlobalController) Generation() uint64 { return g.gen }

// BufferSize returns the rack-wide buffer size.
func (g *GlobalController) BufferSize() int64 { return g.bufferSize }

// Stats returns a snapshot of the protocol counters.
func (g *GlobalController) Stats() ControllerStats {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.stats
}

// RegisterServer adds a server to the rack. Initially every server is active
// (Section 4.2: "Initially all servers are designated active").
func (g *GlobalController) RegisterServer(id ServerID, totalMem int64, agent ReclaimNotifier, provider FreeMemoryProvider) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if _, ok := g.servers[id]; ok {
		return fmt.Errorf("memctl: server %s already registered", id)
	}
	if totalMem <= 0 {
		return fmt.Errorf("memctl: server %s needs positive memory", id)
	}
	g.servers[id] = &serverRecord{id: id, role: RoleActive, totalMem: totalMem, agent: agent, provider: provider}
	g.record(Operation{Kind: "register", Server: id, Bytes: totalMem})
	return nil
}

// AttachCallbacks re-attaches a server's reclaim notifier and free-memory
// provider to its record. A controller rebuilt from the secondary's operation
// log knows the membership but not the live agent objects; each agent calls
// this (through Agent.Retarget) when it re-establishes its channel after a
// fail-over.
func (g *GlobalController) AttachCallbacks(id ServerID, agent ReclaimNotifier, provider FreeMemoryProvider) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	rec, ok := g.servers[id]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownServer, id)
	}
	rec.agent = agent
	rec.provider = provider
	return nil
}

// UnregisterServer removes a server and every buffer it serves. Buffers in
// use by other servers are reclaimed first (their agents are notified).
func (g *GlobalController) UnregisterServer(id ServerID) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if _, ok := g.servers[id]; !ok {
		return ErrUnknownServer
	}
	ids := g.db.hostBuffers(id)
	g.notifyUsersLocked(ids)
	for _, bid := range ids {
		g.db.remove(bid)
	}
	delete(g.servers, id)
	delete(g.extAllocated, id)
	g.record(Operation{Kind: "unregister", Server: id, IDs: ids})
	return nil
}

// Role returns the controller's view of a server's role.
func (g *GlobalController) Role(id ServerID) (ServerRole, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	rec, ok := g.servers[id]
	if !ok {
		return RoleDown, ErrUnknownServer
	}
	return rec.role, nil
}

// Servers returns all registered server IDs, sorted.
func (g *GlobalController) Servers() []ServerID {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]ServerID, 0, len(g.servers))
	for id := range g.servers {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Zombies returns the IDs of servers currently in the zombie role, sorted.
func (g *GlobalController) Zombies() []ServerID {
	g.mu.Lock()
	defer g.mu.Unlock()
	var out []ServerID
	for id, rec := range g.servers {
		if rec.role == RoleZombie {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// GotoZombie is GS_goto_zombie(buffers): the server's agent announces its
// transition to Sz and lends the listed memory buffers. The controller
// records them as zombie buffers.
func (g *GlobalController) GotoZombie(host ServerID, buffers []BufferSpec) ([]BufferID, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	rec, ok := g.servers[host]
	if !ok {
		return nil, ErrUnknownServer
	}
	g.stats.GotoZombieCalls++
	rec.role = RoleZombie
	// Any buffer the host was already serving as an active server becomes a
	// zombie buffer (higher allocation priority).
	g.db.retype(host, ZombieBuffer)
	ids := make([]BufferID, 0, len(buffers))
	for _, spec := range buffers {
		if spec.Size <= 0 {
			continue
		}
		b := g.db.add(host, spec.Offset, spec.Size, ZombieBuffer, spec.RKey)
		ids = append(ids, b.ID)
	}
	g.record(Operation{Kind: "goto_zombie", Server: host, IDs: ids})
	return ids, nil
}

// DelegateActive records buffers lent by a server that stays active (the
// implementation "also allows for serving and using remote memory from other
// active servers").
func (g *GlobalController) DelegateActive(host ServerID, buffers []BufferSpec) ([]BufferID, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if _, ok := g.servers[host]; !ok {
		return nil, ErrUnknownServer
	}
	ids := make([]BufferID, 0, len(buffers))
	for _, spec := range buffers {
		if spec.Size <= 0 {
			continue
		}
		b := g.db.add(host, spec.Offset, spec.Size, ActiveBuffer, spec.RKey)
		ids = append(ids, b.ID)
	}
	g.record(Operation{Kind: "delegate_active", Server: host, IDs: ids})
	return ids, nil
}

// Reclaim is GS_reclaim(nbBuffers): a server waking from Sz reclaims
// nbBuffers of the memory it had lent (everything it serves when nbBuffers
// is negative, including buffers scavenged while it was active). Unallocated
// buffers are returned first; if more are needed, buffers allocated to other
// servers are reclaimed with US_reclaim. The reclaimed buffer IDs are removed
// from the database and returned to the caller.
func (g *GlobalController) Reclaim(host ServerID, nbBuffers int) ([]BufferID, error) {
	bufs, err := g.ReclaimBuffers(host, nbBuffers)
	if err != nil {
		return nil, err
	}
	ids := make([]BufferID, len(bufs))
	for i, b := range bufs {
		ids[i] = b.ID
	}
	return ids, nil
}

// ReclaimBuffers is Reclaim returning the full buffer records instead of bare
// IDs. Agents need the rkeys: buffers lent through AS_get_free_mem get their
// IDs assigned by the controller after the callback returns, so the rkey is
// the only key under which the lending agent can file (and later deregister)
// the backing RDMA region.
func (g *GlobalController) ReclaimBuffers(host ServerID, nbBuffers int) ([]Buffer, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	rec, ok := g.servers[host]
	if !ok {
		return nil, ErrUnknownServer
	}
	g.stats.ReclaimCalls++
	all := g.db.hostBuffers(host)
	if nbBuffers < 0 || nbBuffers > len(all) {
		nbBuffers = len(all)
	}
	// Unallocated first.
	var chosen []BufferID
	var bufs []Buffer
	take := func(b *Buffer) {
		chosen = append(chosen, b.ID)
		bufs = append(bufs, *b)
	}
	for _, id := range all {
		if len(chosen) >= nbBuffers {
			break
		}
		if b, _ := g.db.get(id); !b.Allocated() {
			take(b)
		}
	}
	// Then allocated ones, notifying their users.
	var toNotify []BufferID
	for _, id := range all {
		if len(chosen) >= nbBuffers {
			break
		}
		if b, _ := g.db.get(id); b.Allocated() && !containsID(chosen, id) {
			take(b)
			toNotify = append(toNotify, id)
		}
	}
	g.notifyUsersLocked(toNotify)
	for _, id := range chosen {
		g.db.remove(id)
	}
	// The host becomes active again once it reclaims memory.
	rec.role = RoleActive
	g.db.retype(host, ActiveBuffer)
	g.stats.BuffersReturned += uint64(len(chosen))
	g.record(Operation{Kind: "reclaim", Server: host, IDs: chosen})
	return bufs, nil
}

// notifyUsersLocked groups the buffers by user and invokes each user agent's
// USReclaim callback.
func (g *GlobalController) notifyUsersLocked(ids []BufferID) {
	byUser := make(map[ServerID][]BufferID)
	for _, id := range ids {
		b, ok := g.db.get(id)
		if !ok || !b.Allocated() {
			continue
		}
		byUser[b.User] = append(byUser[b.User], id)
	}
	users := make([]ServerID, 0, len(byUser))
	for u := range byUser {
		users = append(users, u)
	}
	sort.Slice(users, func(i, j int) bool { return users[i] < users[j] })
	for _, u := range users {
		g.stats.USReclaims++
		if rec, ok := g.servers[u]; ok && rec.agent != nil {
			// The agent relocates its data (from the local mirror) before we
			// drop the buffer.
			_ = rec.agent.USReclaim(byUser[u])
		}
	}
}

// delegatableBytes returns the total size of all buffers currently in the
// database (the rack's lendable memory), used by admission control.
func (g *GlobalController) delegatableBytes() int64 {
	var total int64
	for id := range g.db.byID {
		total += g.db.byID[id].Size
	}
	return total
}

// AllocExt is GS_alloc_ext(memSize): a guaranteed RAM Extension allocation.
// Admission control ensures the sum of guarantees never exceeds the rack's
// delegated memory; within that envelope the allocation must be fulfilled,
// scavenging active servers if needed. Zombie buffers are preferred. The
// returned buffers may come from multiple servers (failure containment).
func (g *GlobalController) AllocExt(user ServerID, memSize int64) ([]Buffer, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if _, ok := g.servers[user]; !ok {
		return nil, ErrUnknownServer
	}
	g.stats.AllocExtCalls++
	need := buffersFor(memSize, g.bufferSize)
	if need == 0 {
		return nil, nil
	}
	// Admission control: guaranteed allocations must fit in the delegated pool.
	var guaranteed int64
	for _, v := range g.extAllocated {
		guaranteed += v
	}
	if guaranteed+int64(need)*g.bufferSize > g.delegatableBytes() {
		// Try to scavenge more memory from active servers before rejecting.
		g.scavengeActiveLocked(int64(need)*g.bufferSize-(g.delegatableBytes()-guaranteed), user)
		if guaranteed+int64(need)*g.bufferSize > g.delegatableBytes() {
			return nil, ErrAdmissionControl
		}
	}
	got, err := g.allocateLocked(user, need, true)
	if err != nil {
		return nil, err
	}
	g.extAllocated[user] += int64(len(got)) * g.bufferSize
	g.record(Operation{Kind: "alloc_ext", Server: user, IDs: bufferIDs(got), Bytes: memSize})
	return got, nil
}

// AllocSwap is GS_alloc_swap(memSize): a best-effort allocation backing an
// explicit swap device. The returned memory may be less than requested.
func (g *GlobalController) AllocSwap(user ServerID, memSize int64) ([]Buffer, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if _, ok := g.servers[user]; !ok {
		return nil, ErrUnknownServer
	}
	g.stats.AllocSwapCalls++
	need := buffersFor(memSize, g.bufferSize)
	got, _ := g.allocateLocked(user, need, false)
	g.record(Operation{Kind: "alloc_swap", Server: user, IDs: bufferIDs(got), Bytes: memSize})
	return got, nil
}

// allocateLocked hands out up to need free buffers to user, zombie buffers
// first. When guaranteed is true and the free pool is short, it scavenges
// active servers (never the requester itself); if the allocation still cannot
// be fulfilled it fails without allocating anything. Best-effort (swap)
// allocations only consume what is already free: fast swap is not part of the
// VM's SLA, so the controller does not disturb active servers for it.
func (g *GlobalController) allocateLocked(user ServerID, need int, guaranteed bool) ([]Buffer, error) {
	pick := func() []BufferID {
		ids := g.db.freeByType(ZombieBuffer)
		ids = append(ids, g.db.freeByType(ActiveBuffer)...)
		return ids
	}
	free := pick()
	if guaranteed && len(free) < need {
		g.scavengeActiveLocked(int64(need-len(free))*g.bufferSize, user)
		free = pick()
	}
	if guaranteed && len(free) < need {
		return nil, ErrNotEnoughMemory
	}
	n := need
	if n > len(free) {
		n = len(free)
	}
	out := make([]Buffer, 0, n)
	for _, id := range free[:n] {
		if err := g.db.allocate(id, user); err != nil {
			return nil, err
		}
		b, _ := g.db.get(id)
		out = append(out, *b)
		g.stats.BuffersLent++
	}
	return out, nil
}

// scavengeActiveLocked asks active servers (other than exclude) for
// additional lendable memory until at least wantBytes of new buffers have
// been added (or providers run out). This is the AS_get_free_mem() path.
func (g *GlobalController) scavengeActiveLocked(wantBytes int64, exclude ServerID) {
	if wantBytes <= 0 {
		return
	}
	ids := make([]ServerID, 0, len(g.servers))
	for id := range g.servers {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	var added int64
	for _, id := range ids {
		if added >= wantBytes {
			return
		}
		rec := g.servers[id]
		if id == exclude || rec.role != RoleActive || rec.provider == nil {
			continue
		}
		for _, spec := range rec.provider.ASGetFreeMem() {
			if spec.Size <= 0 {
				continue
			}
			g.db.add(id, spec.Offset, spec.Size, ActiveBuffer, spec.RKey)
			added += spec.Size
		}
	}
}

// Release returns buffers a user no longer needs to the free pool.
func (g *GlobalController) Release(user ServerID, ids []BufferID) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	for _, id := range ids {
		b, ok := g.db.get(id)
		if !ok {
			continue
		}
		if !b.Allocated() {
			// A stale handle — e.g. from an allocation made before a
			// controller fail-over — maps to a buffer that is already free;
			// releasing it again is a no-op.
			continue
		}
		if b.User != user {
			return fmt.Errorf("memctl: server %s cannot release buffer %d owned by %s", user, id, b.User)
		}
		if err := g.db.release(id); err != nil {
			return err
		}
		g.stats.BuffersReturned++
	}
	if ext, ok := g.extAllocated[user]; ok {
		released := int64(len(ids)) * g.bufferSize
		if released > ext {
			released = ext
		}
		g.extAllocated[user] = ext - released
	}
	g.record(Operation{Kind: "release", Server: user, IDs: ids})
	return nil
}

// TransferBuffers moves the ownership of allocated buffers from one user
// server to another without touching the data. This is the ownership-pointer
// update of the ZombieStack migration protocol (Section 5.3): the VM's remote
// memory does not move; only the record of which server uses it changes.
func (g *GlobalController) TransferBuffers(from, to ServerID, ids []BufferID) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if _, ok := g.servers[to]; !ok {
		return fmt.Errorf("%w: %s", ErrUnknownServer, to)
	}
	for _, id := range ids {
		b, ok := g.db.get(id)
		if !ok {
			return fmt.Errorf("memctl: buffer %d does not exist", id)
		}
		if b.User != from {
			return fmt.Errorf("memctl: buffer %d is used by %s, not %s", id, b.User, from)
		}
	}
	for _, id := range ids {
		b, _ := g.db.get(id)
		g.db.byUser[from] = removeID(g.db.byUser[from], id)
		b.User = to
		g.db.byUser[to] = append(g.db.byUser[to], id)
	}
	// Guaranteed-allocation accounting follows the buffers.
	moved := int64(len(ids)) * g.bufferSize
	if ext := g.extAllocated[from]; ext > 0 {
		if moved > ext {
			moved = ext
		}
		g.extAllocated[from] -= moved
		g.extAllocated[to] += moved
	}
	g.record(Operation{Kind: "transfer", Server: to, IDs: ids})
	return nil
}

// LRUZombie is GS_get_lru_zombie(): the zombie server with the minimum number
// of allocated buffers, i.e. the cheapest one to wake up because the least
// zombie memory has to be reclaimed.
func (g *GlobalController) LRUZombie() (ServerID, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	best := ServerID("")
	bestCount := -1
	ids := make([]ServerID, 0, len(g.servers))
	for id := range g.servers {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		if g.servers[id].role != RoleZombie {
			continue
		}
		c := g.db.allocatedCount(id)
		if bestCount == -1 || c < bestCount {
			best, bestCount = id, c
		}
	}
	if best == "" {
		return "", ErrNoZombie
	}
	return best, nil
}

// FreeMemory returns the unallocated remote memory in bytes.
func (g *GlobalController) FreeMemory() int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.db.totalFreeBytes()
}

// BuffersOf returns copies of the buffers currently used by a server.
func (g *GlobalController) BuffersOf(user ServerID) []Buffer {
	g.mu.Lock()
	defer g.mu.Unlock()
	ids := g.db.userBuffers(user)
	out := make([]Buffer, 0, len(ids))
	for _, id := range ids {
		b, _ := g.db.get(id)
		out = append(out, *b)
	}
	return out
}

// BuffersServedBy returns copies of the buffers served by a host.
func (g *GlobalController) BuffersServedBy(host ServerID) []Buffer {
	g.mu.Lock()
	defer g.mu.Unlock()
	ids := g.db.hostBuffers(host)
	out := make([]Buffer, 0, len(ids))
	for _, id := range ids {
		b, _ := g.db.get(id)
		out = append(out, *b)
	}
	return out
}

// CheckInvariants validates the buffer database (used by tests).
func (g *GlobalController) CheckInvariants() error {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.db.checkInvariants()
}

// record assigns a sequence number and mirrors the operation.
func (g *GlobalController) record(op Operation) {
	g.seq++
	op.Seq = g.seq
	if g.mirror != nil {
		g.mirror.Apply(op)
	}
}

// buffersFor returns how many buffers of size bufSize cover memSize bytes.
func buffersFor(memSize, bufSize int64) int {
	if memSize <= 0 || bufSize <= 0 {
		return 0
	}
	n := memSize / bufSize
	if memSize%bufSize != 0 {
		n++
	}
	return int(n)
}

func bufferIDs(bufs []Buffer) []BufferID {
	out := make([]BufferID, len(bufs))
	for i, b := range bufs {
		out[i] = b.ID
	}
	return out
}
