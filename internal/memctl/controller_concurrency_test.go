package memctl

import (
	"fmt"
	"sync"
	"testing"
)

// TestControllerConcurrentAgents hammers one GlobalController from many
// agents at once — delegations, guaranteed and best-effort allocations,
// releases, zombie transitions and reclaims all racing — so the -race CI job
// exercises the controller's mutex discipline and the agent-side rule that
// a.mu is never held across a controller call (the controller calls back
// into agents under its own lock, so holding a.mu across the round-trip
// would be an ABBA deadlock). The buffer database invariants must hold at
// every quiet point.
func TestControllerConcurrentAgents(t *testing.T) {
	const (
		agents     = 8
		iterations = 40
		memPerSrv  = int64(1 << 30)
		bufSize    = int64(32 << 20)
	)
	g := NewGlobalController(WithBufferSize(bufSize), WithMirror(NewSecondaryController()))

	as := make([]*Agent, agents)
	for i := range as {
		a, err := NewAgent(AgentConfig{
			ID:          ServerID(fmt.Sprintf("server-%02d", i)),
			Controller:  g,
			TotalMem:    memPerSrv,
			ReservedMem: memPerSrv / 4,
		})
		if err != nil {
			t.Fatal(err)
		}
		as[i] = a
	}

	var wg sync.WaitGroup
	for i, a := range as {
		wg.Add(1)
		go func(i int, a *Agent) {
			defer wg.Done()
			for it := 0; it < iterations; it++ {
				switch (i + it) % 4 {
				case 0:
					// Lend while active, then take everything back.
					if _, err := a.DelegateWhileActive(memPerSrv / 8); err != nil {
						t.Error(err)
						return
					}
					if _, err := a.WakeAndReclaim(-1); err != nil {
						t.Error(err)
						return
					}
				case 1:
					// Full zombie round-trip.
					if _, err := a.DelegateAndGoZombie(); err != nil {
						t.Error(err)
						return
					}
					if _, err := a.WakeAndReclaim(-1); err != nil {
						t.Error(err)
						return
					}
				case 2:
					// Guaranteed allocation; admission rejections are fine
					// under contention, success must hand back real buffers.
					bufs, err := a.RequestExt(2 * bufSize)
					if err == nil {
						if err := a.ReleaseBuffers(bufs); err != nil {
							t.Error(err)
							return
						}
					}
				default:
					// Best-effort swap allocation may come back short.
					bufs, err := a.RequestSwap(bufSize)
					if err != nil {
						t.Error(err)
						return
					}
					if err := a.ReleaseBuffers(bufs); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(i, a)
	}

	// A reader goroutine keeps the query surface racing with the mutators.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < agents*iterations; i++ {
			g.FreeMemory()
			g.Zombies()
			g.Stats()
			_, _ = g.LRUZombie()
		}
	}()
	wg.Wait()
	<-done

	if err := g.CheckInvariants(); err != nil {
		t.Fatalf("buffer database invariants violated after the hammer: %v", err)
	}
	// Quiesce: wake everyone, release every handle, and verify the pool
	// drains back to empty.
	for _, a := range as {
		if _, err := a.WakeAndReclaim(-1); err != nil {
			t.Fatal(err)
		}
		if err := a.ReleaseBuffers(a.UsedBufferHandles()); err != nil {
			t.Fatal(err)
		}
	}
	for _, a := range as {
		if _, err := a.WakeAndReclaim(-1); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if free, zombies := g.FreeMemory(), g.Zombies(); free != 0 || len(zombies) != 0 {
		t.Fatalf("pool should drain after reclaim: free=%d zombies=%v", free, zombies)
	}
}
