package gateway

import (
	"encoding/json"
	"fmt"
	"net/http"

	"repro/internal/autopilot"
	"repro/internal/chaos"
	"repro/internal/consolidation"
	"repro/internal/energy"
	"repro/internal/obs"
	"repro/internal/trace"
)

// Default shape of a gateway autopilot run: small enough to finish in well
// under a second, big enough for the policies to differentiate.
const (
	defaultAPMachines = 100
	defaultAPTasks    = 800
	defaultAPHours    = 6.0
	defaultAPSeed     = 42
	defaultAPTick     = 300
)

// chaosRequest arms the session with a fault scenario: every subsequent
// autopilot run replays under a plan rebuilt from this scenario and seed for
// the run's own horizon and fleet size. The response tallies a preview plan
// built for the given (or default) shape.
type chaosRequest struct {
	Scenario   string `json:"scenario"`
	Seed       int64  `json:"seed"`
	Machines   int    `json:"machines"`
	HorizonSec int64  `json:"horizon_sec"`
}

type chaosResponse struct {
	Scenario string    `json:"scenario"`
	Seed     int64     `json:"seed"`
	Faults   tallyJSON `json:"faults"`
}

type tallyJSON struct {
	Crashes            int `json:"crashes"`
	WakeFailures       int `json:"wake_failures"`
	ControllerLosses   int `json:"controller_losses"`
	FabricDegradations int `json:"fabric_degradations"`
	TraceBursts        int `json:"trace_bursts"`
	Total              int `json:"total"`
}

func (s *Server) handleChaos(w http.ResponseWriter, r *http.Request) {
	sess := s.session(w, r)
	if sess == nil {
		return
	}
	req := chaosRequest{Scenario: "light", Seed: defaultAPSeed, Machines: defaultAPMachines,
		HorizonSec: int64(defaultAPHours * 3600)}
	if !decodeJSON(w, r, &req) {
		return
	}
	if req.Machines < 1 || req.HorizonSec < 1 {
		writeError(w, http.StatusBadRequest, "machines and horizon_sec must be >= 1")
		return
	}
	plan, err := chaos.Scenario(req.Scenario, req.HorizonSec, req.Machines, req.Seed)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	sess.mu.Lock()
	sess.chaosName = req.Scenario
	sess.chaosSeed = req.Seed
	sess.chaosPreview = plan
	sess.mu.Unlock()
	t := plan.Tally()
	writeJSON(w, http.StatusOK, chaosResponse{
		Scenario: req.Scenario,
		Seed:     req.Seed,
		Faults: tallyJSON{
			Crashes:            t.Crashes,
			WakeFailures:       t.WakeFailures,
			ControllerLosses:   t.ControllerLosses,
			FabricDegradations: t.FabricDegradations,
			TraceBursts:        t.TraceBursts,
			Total:              t.Total(),
		},
	})
}

// autopilotRequest starts one online control-plane run in the background;
// its tick telemetry streams on GET .../autopilot/events.
type autopilotRequest struct {
	Machines int     `json:"machines"`
	Tasks    int     `json:"tasks"`
	Hours    float64 `json:"hours"`
	Seed     int64   `json:"seed"`
	TickSec  int64   `json:"tick_sec"`
	Policy   string  `json:"policy"`
	Planner  string  `json:"planner"`
	Machine  string  `json:"machine"`
	Modified bool    `json:"modified"`
}

// policyByName builds a fresh online policy over the base planner.
func policyByName(name string, base consolidation.Policy) (autopilot.Policy, error) {
	switch name {
	case "reactive":
		return autopilot.NewReactive(base), nil
	case "hysteresis":
		return autopilot.NewHysteresis(base), nil
	case "ewma":
		return autopilot.NewPredictiveEWMA(base), nil
	}
	return nil, fmt.Errorf("unknown policy %q (valid: reactive, hysteresis, ewma)", name)
}

func machineByName(name string) (*energy.MachineProfile, error) {
	switch name {
	case "hp":
		return energy.HPProfile(), nil
	case "dell":
		return energy.DellProfile(), nil
	}
	return nil, fmt.Errorf("unknown machine %q (valid: hp, dell)", name)
}

func (s *Server) handleAutopilotStart(w http.ResponseWriter, r *http.Request) {
	sess := s.session(w, r)
	if sess == nil {
		return
	}
	req := autopilotRequest{Machines: defaultAPMachines, Tasks: defaultAPTasks, Hours: defaultAPHours,
		Seed: defaultAPSeed, TickSec: defaultAPTick, Policy: "hysteresis", Planner: "zombiestack", Machine: "hp"}
	if !decodeJSON(w, r, &req) {
		return
	}
	switch {
	case req.Machines < 1 || req.Tasks < 1:
		writeError(w, http.StatusBadRequest, "machines and tasks must be >= 1")
		return
	case req.Hours <= 0:
		writeError(w, http.StatusBadRequest, fmt.Sprintf("hours %g out of range (need > 0)", req.Hours))
		return
	case req.TickSec < 1:
		writeError(w, http.StatusBadRequest, fmt.Sprintf("tick_sec %d out of range (need >= 1)", req.TickSec))
		return
	}
	base, err := consolidation.PolicyByName(req.Planner)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	policy, err := policyByName(req.Policy, base)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	profile, err := machineByName(req.Machine)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}

	gc := trace.DefaultConfig()
	if req.Modified {
		gc = trace.ModifiedConfig()
	}
	gc.Machines = req.Machines
	gc.Tasks = req.Tasks
	gc.HorizonSec = int64(req.Hours * 3600)
	gc.Seed = req.Seed
	tr, err := trace.Generate(gc)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}

	sess.mu.Lock()
	if sess.run != nil {
		sess.run.mu.Lock()
		running := !sess.run.done
		sess.run.mu.Unlock()
		if running {
			sess.mu.Unlock()
			writeError(w, http.StatusConflict, "an autopilot run is already in progress")
			return
		}
	}
	var plan *chaos.Plan
	if sess.chaosName != "" {
		plan, err = chaos.Scenario(sess.chaosName, gc.HorizonSec, gc.Machines, sess.chaosSeed)
		if err != nil {
			sess.mu.Unlock()
			writeError(w, http.StatusInternalServerError, err.Error())
			return
		}
	}
	run := newAutopilotRun(req.Policy, req.Planner, !plan.Empty())
	sess.run = run
	sess.mu.Unlock()

	cfg := autopilot.Config{
		Trace:      tr,
		Policy:     policy,
		Machine:    profile,
		ServerSpec: consolidation.DefaultServerSpec(),
		TickSec:    req.TickSec,
		OnTick:     run.append,
	}
	go func() {
		if plan != nil {
			chaosR, err := autopilot.RunChaos(cfg, plan)
			run.finish(autopilot.Report{}, chaosR, err)
			return
		}
		report, err := autopilot.Regret(cfg)
		run.finish(report, chaos.Report{}, err)
	}()

	writeJSON(w, http.StatusAccepted, map[string]any{
		"status":   "started",
		"policy":   req.Policy,
		"planner":  req.Planner,
		"machines": req.Machines,
		"tasks":    req.Tasks,
		"chaos":    run.chaotic,
	})
}

// tickJSON is one NDJSON line of the event stream.
type tickJSON struct {
	Type           string  `json:"type"`
	AtSec          int64   `json:"at_sec"`
	Tick           int     `json:"tick"`
	ActiveHosts    int     `json:"active_hosts"`
	ZombieHosts    int     `json:"zombie_hosts"`
	MemoryServers  int     `json:"memory_servers"`
	SleepHosts     int     `json:"sleep_hosts"`
	RemoteGiB      float64 `json:"remote_gib"`
	Running        int     `json:"running"`
	Arrivals       int     `json:"arrivals"`
	Admitted       int     `json:"admitted"`
	Rejected       int     `json:"rejected"`
	EmergencyWakes int     `json:"emergency_wakes"`
	EnergyJoules   float64 `json:"energy_j"`
	BaselineJoules float64 `json:"baseline_j"`
}

func tickLine(ev autopilot.TickEvent) tickJSON {
	return tickJSON{
		Type:           "tick",
		AtSec:          ev.AtSec,
		Tick:           ev.Tick,
		ActiveHosts:    ev.ActiveHosts,
		ZombieHosts:    ev.ZombieHosts,
		MemoryServers:  ev.MemoryServers,
		SleepHosts:     ev.SleepHosts,
		RemoteGiB:      ev.RemoteMemoryGiB,
		Running:        ev.Running,
		Arrivals:       ev.Arrivals,
		Admitted:       ev.Admitted,
		Rejected:       ev.Rejected,
		EmergencyWakes: ev.EmergencyWakes,
		EnergyJoules:   ev.EnergyJoules,
		BaselineJoules: ev.BaselineJoules,
	}
}

// handleAutopilotEvents streams the run's tick telemetry as NDJSON: the
// buffered events first (a late subscriber replays the whole run), then live
// events as the loop produces them, then one terminal "done" or "error"
// line. Any number of subscribers can follow one run.
func (s *Server) handleAutopilotEvents(w http.ResponseWriter, r *http.Request) {
	sess := s.session(w, r)
	if sess == nil {
		return
	}
	sess.mu.Lock()
	run := sess.run
	sess.mu.Unlock()
	if run == nil {
		writeError(w, http.StatusNotFound, "no autopilot run on this fleet (POST .../autopilot first)")
		return
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w) // Encode appends the NDJSON newline

	next := 0
	for {
		evs, done, wait := run.snapshot(next)
		for _, ev := range evs {
			if err := enc.Encode(tickLine(ev)); err != nil {
				return // subscriber went away
			}
		}
		next += len(evs)
		if flusher != nil && len(evs) > 0 {
			flusher.Flush()
		}
		if done {
			_ = enc.Encode(doneLine(run))
			if flusher != nil {
				flusher.Flush()
			}
			return
		}
		select {
		case <-wait:
		case <-r.Context().Done():
			return
		}
	}
}

// doneLine is the stream's terminal line: the regret summary (fault-free
// runs), the resilience summary (chaos runs), or the error.
func doneLine(run *autopilotRun) map[string]any {
	run.mu.Lock()
	defer run.mu.Unlock()
	if run.err != nil {
		return map[string]any{"type": "error", "error": run.err.Error()}
	}
	if run.chaotic {
		cr := run.chaosR
		return map[string]any{
			"type":                      "done",
			"policy":                    cr.Policy,
			"scenario":                  cr.Scenario,
			"saving_percent":            cr.SavingPercent,
			"fault_free_saving_percent": cr.FaultFreeSavingPercent,
			"savings_retained_percent":  cr.SavingsRetainedPercent,
			"resilience_regret_percent": cr.ResilienceRegretPercent,
			"slo_violations":            cr.SLOViolations,
		}
	}
	rep := run.report
	return map[string]any{
		"type":                  "done",
		"policy":                rep.Policy,
		"planner":               rep.Planner,
		"ticks":                 rep.Online.Ticks,
		"online_saving_percent": rep.Online.SavingPercent,
		"oracle_saving_percent": rep.Oracle.SavingPercent,
		"regret_percent":        rep.RegretPercent,
	}
}

// reportResponse is the GET report body: the live fleet's state plus the
// last autopilot run's savings/regret (and resilience, when chaotic), and a
// point-in-time metrics snapshot of the whole gateway.
type reportResponse struct {
	Fleet     fleetReportJSON      `json:"fleet"`
	Autopilot *autopilotReportJSON `json:"autopilot,omitempty"`
	Chaos     *chaosReportJSON     `json:"chaos,omitempty"`
	Metrics   obs.Snapshot         `json:"metrics"`
}

type fleetReportJSON struct {
	Racks        int     `json:"racks"`
	Servers      int     `json:"servers"`
	VMs          int     `json:"vms"`
	RemoteGiB    float64 `json:"remote_gib"`
	EnergyJoules float64 `json:"energy_j"`
	Borrows      int     `json:"borrows"`
}

type autopilotReportJSON struct {
	Running             bool    `json:"running"`
	Policy              string  `json:"policy"`
	Planner             string  `json:"planner"`
	Ticks               int     `json:"ticks,omitempty"`
	OnlineSavingPercent float64 `json:"online_saving_percent,omitempty"`
	OracleSavingPercent float64 `json:"oracle_saving_percent,omitempty"`
	RegretPercent       float64 `json:"regret_percent,omitempty"`
	EmergencyWakes      int     `json:"emergency_wakes,omitempty"`
	Error               string  `json:"error,omitempty"`
}

type chaosReportJSON struct {
	Scenario                string  `json:"scenario"`
	SavingPercent           float64 `json:"saving_percent"`
	FaultFreeSavingPercent  float64 `json:"fault_free_saving_percent"`
	SavingsRetainedPercent  float64 `json:"savings_retained_percent"`
	ResilienceRegretPercent float64 `json:"resilience_regret_percent"`
	SLOViolations           int     `json:"slo_violations"`
	WastedTransitions       int     `json:"wasted_transitions"`
}

func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	sess := s.session(w, r)
	if sess == nil {
		return
	}
	sess.mu.Lock()
	f := sess.fleet
	racks, servers, vms := sess.racks, sess.servers, sess.placed
	run := sess.run
	sess.mu.Unlock()

	resp := reportResponse{Fleet: fleetReportJSON{
		Racks:        racks,
		Servers:      servers,
		VMs:          vms,
		RemoteGiB:    float64(f.FreeRemoteMemory()) / float64(1<<30),
		EnergyJoules: f.TotalEnergyJoules(),
		Borrows:      len(f.BorrowLedger()),
	}}
	if run != nil {
		run.mu.Lock()
		ap := &autopilotReportJSON{Running: !run.done, Policy: run.policy, Planner: run.planner}
		if run.done {
			if run.err != nil {
				ap.Error = run.err.Error()
			} else if run.chaotic {
				cr := run.chaosR
				resp.Chaos = &chaosReportJSON{
					Scenario:                cr.Scenario,
					SavingPercent:           cr.SavingPercent,
					FaultFreeSavingPercent:  cr.FaultFreeSavingPercent,
					SavingsRetainedPercent:  cr.SavingsRetainedPercent,
					ResilienceRegretPercent: cr.ResilienceRegretPercent,
					SLOViolations:           cr.SLOViolations,
					WastedTransitions:       cr.WastedTransitions,
				}
				ap.EmergencyWakes = cr.EmergencyWakes
			} else {
				rep := run.report
				ap.Ticks = rep.Online.Ticks
				ap.OnlineSavingPercent = rep.Online.SavingPercent
				ap.OracleSavingPercent = rep.Oracle.SavingPercent
				ap.RegretPercent = rep.RegretPercent
				ap.EmergencyWakes = rep.Online.EmergencyWakes
			}
		}
		run.mu.Unlock()
		resp.Autopilot = ap
	}
	resp.Metrics = s.reg.Snapshot()
	writeJSON(w, http.StatusOK, resp)
}
