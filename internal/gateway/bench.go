package gateway

import "time"

// QuotaBench exposes the quota cache's lock-free fast path to the repo's
// benchmark harness (cmd/benchfleet): it builds a limiter with an
// effectively unlimited per-window quota, pre-warms one tenant bucket (the
// only allocation the fast path ever makes), and returns a function that
// performs a single allow() check. The returned op must stay
// allocation-free — BENCH_fleet.json records its allocs_per_op and the CI
// diff gate fails on any growth, mirroring TestQuotaCacheFastPathAllocs.
func QuotaBench() func() bool {
	q := newQuotaCache(1<<30, time.Second, nil)
	q.allow("bench-tenant")
	return func() bool { return q.allow("bench-tenant") }
}
