package gateway

import (
	"sync"
	"testing"
	"time"
)

// fakeClock is a mutex-guarded settable clock for quota/eviction tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock(at time.Time) *fakeClock { return &fakeClock{t: at} }

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// TestQuotaCacheWindow pins the fixed-window semantics: limit admissions per
// window per tenant, independent tenants, and a fresh budget after rollover.
func TestQuotaCacheWindow(t *testing.T) {
	clock := newFakeClock(time.Unix(5000, 0))
	q := newQuotaCache(3, time.Second, clock.Now)

	for i := 0; i < 3; i++ {
		if !q.allow("alice") {
			t.Fatalf("alice request %d rejected inside the budget", i)
		}
	}
	if q.allow("alice") {
		t.Fatal("alice request 4 admitted beyond the budget")
	}
	// Another tenant has its own bucket.
	if !q.allow("bob") {
		t.Fatal("bob's first request rejected by alice's exhausted bucket")
	}
	// Rolling the window resets the tenant budget.
	clock.Advance(time.Second)
	if !q.allow("alice") {
		t.Fatal("alice rejected after the window rolled over")
	}
	// Partial advance inside the same window does not reset.
	for i := 0; i < 2; i++ {
		q.allow("alice")
	}
	clock.Advance(200 * time.Millisecond)
	if q.allow("alice") {
		t.Fatal("mid-window advance refreshed the budget")
	}
}

// TestQuotaCacheDisabled pins that a non-positive limit turns the limiter off.
func TestQuotaCacheDisabled(t *testing.T) {
	q := newQuotaCache(0, time.Second, nil)
	for i := 0; i < 1000; i++ {
		if !q.allow("anyone") {
			t.Fatal("disabled limiter rejected a request")
		}
	}
}

// TestQuotaCacheRetryAfter pins the Retry-After hint: whole seconds, >= 1.
func TestQuotaCacheRetryAfter(t *testing.T) {
	clock := newFakeClock(time.Unix(5000, 0).Add(300 * time.Millisecond))
	q := newQuotaCache(1, time.Second, clock.Now)
	if got := q.retryAfter(); got < time.Second {
		t.Fatalf("retryAfter = %v, want >= 1s", got)
	}
}

// TestQuotaCacheConcurrent hammers one bucket from many goroutines and checks
// the CAS loop admits exactly the budget.
func TestQuotaCacheConcurrent(t *testing.T) {
	const limit = 100
	clock := newFakeClock(time.Unix(5000, 0))
	q := newQuotaCache(limit, time.Hour, clock.Now)

	var wg sync.WaitGroup
	counts := make([]int, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if q.allow("shared") {
					counts[g]++
				}
			}
		}(g)
	}
	wg.Wait()
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != limit {
		t.Fatalf("admitted %d requests, want exactly %d", total, limit)
	}
}

// TestQuotaCacheFastPathAllocs pins the hot path: once a tenant's bucket
// exists, allow is allocation-free. Skipped under the race detector, whose
// instrumentation changes allocation behaviour.
func TestQuotaCacheFastPathAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is not stable under -race")
	}
	q := newQuotaCache(1<<30, time.Hour, nil)
	q.allow("tenant") // warm: the one bucket allocation
	allocs := testing.AllocsPerRun(1000, func() {
		if !q.allow("tenant") {
			t.Fatal("warm tenant rejected inside a huge budget")
		}
	})
	if allocs != 0 {
		t.Fatalf("allow allocated %.1f objects/op on the warm path, want 0", allocs)
	}
}
