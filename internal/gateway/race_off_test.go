//go:build !race

package gateway

// raceEnabled reports whether the race detector instruments this build; the
// allocation-count test skips itself when it does.
const raceEnabled = false
