package gateway

import (
	"net/http"
	"strconv"
	"time"

	"repro/internal/obs"
)

// gwMetrics bundles the gateway's serving metrics: per-route/per-status
// request counters, per-route latency histograms and per-tenant
// quota-denial counters. All methods are nil-safe so the middleware helpers
// stay testable without a registry.
type gwMetrics struct {
	requests *obs.CounterVec2
	latency  *obs.HistogramVec
	denials  *obs.CounterVec
}

// newGWMetrics registers the serving metrics on reg.
func newGWMetrics(reg *obs.Registry) *gwMetrics {
	return &gwMetrics{
		requests: reg.CounterVec2("fleetd_http_requests_total",
			"HTTP requests served, by route pattern and status code", "route", "status"),
		latency: reg.HistogramVec("fleetd_http_request_duration_ns",
			"HTTP request latency in nanoseconds, by route pattern", "route"),
		denials: reg.CounterVec("fleetd_quota_denials_total",
			"requests rejected with 429 by the per-tenant quota", "tenant"),
	}
}

// record counts one finished request. The route is the mux pattern that
// served it ("POST /v1/fleets"); requests rejected before routing (401,
// 429) carry the "unrouted" label.
func (m *gwMetrics) record(route string, status int, d time.Duration) {
	if m == nil {
		return
	}
	m.requests.With(route, statusLabel(status)).Inc()
	m.latency.With(route).Observe(int64(d))
}

// denied counts one quota rejection for a tenant.
func (m *gwMetrics) denied(tenant string) {
	if m == nil {
		return
	}
	m.denials.With(tenant).Inc()
}

// statusLabel renders a status code as its metric label without allocating
// for the codes the gateway actually serves.
func statusLabel(code int) string {
	switch code {
	case http.StatusOK:
		return "200"
	case http.StatusCreated:
		return "201"
	case http.StatusNoContent:
		return "204"
	case http.StatusBadRequest:
		return "400"
	case http.StatusUnauthorized:
		return "401"
	case http.StatusNotFound:
		return "404"
	case http.StatusConflict:
		return "409"
	case http.StatusTooManyRequests:
		return "429"
	case http.StatusInternalServerError:
		return "500"
	}
	return strconv.Itoa(code)
}

// registerSessionGauges exposes the live per-session aggregates — session
// count, placed VMs, running autopilot loops and the fleet-wide remote
// memory pool — as scrape-time gauges over the manager.
func registerSessionGauges(reg *obs.Registry, m *Manager) {
	reg.GaugeFunc("fleetd_sessions", "live gateway sessions", func() float64 {
		t := m.Totals()
		return float64(t.Sessions)
	})
	reg.GaugeFunc("fleetd_vms_placed", "VMs placed across live sessions", func() float64 {
		t := m.Totals()
		return float64(t.PlacedVMs)
	})
	reg.GaugeFunc("fleetd_autopilot_runs_active", "autopilot runs currently in flight", func() float64 {
		t := m.Totals()
		return float64(t.AutopilotActive)
	})
	reg.GaugeFunc("fleetd_remote_memory_gib", "free remote (zombie) memory across live fleets in GiB", func() float64 {
		t := m.Totals()
		return float64(t.RemoteBytes) / float64(1<<30)
	})
}

// handleMetrics serves GET /metrics as Prometheus text exposition.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.reg.WritePrometheus(w)
}
