package gateway

import (
	"crypto/subtle"
	"fmt"
	"log"
	"net/http"
	"runtime/debug"
	"strings"
	"time"
)

// middleware is one layer of the stack; the router composes them outermost
// first: logging(recovery(auth(quota(mux)))).
type middleware func(http.Handler) http.Handler

// statusWriter captures the response status for the request log while
// passing Flush through, so streaming handlers behind the stack still flush
// chunk by chunk.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// withLogging writes one line per request: method, path, status, duration.
// A nil logger keeps the wrapper (the statusWriter feeds recovery too) but
// discards the line.
func withLogging(logger *log.Logger, now func() time.Time) middleware {
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			sw := &statusWriter{ResponseWriter: w}
			start := now()
			next.ServeHTTP(sw, r)
			if logger != nil {
				logger.Printf("%s %s %d %s", r.Method, r.URL.Path, sw.status, now().Sub(start))
			}
		})
	}
}

// withRecovery turns a handler panic into a 500 instead of killing the
// server; the stack goes to the logger.
func withRecovery(logger *log.Logger) middleware {
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			defer func() {
				if rec := recover(); rec != nil {
					if logger != nil {
						logger.Printf("panic serving %s %s: %v\n%s", r.Method, r.URL.Path, rec, debug.Stack())
					}
					writeError(w, http.StatusInternalServerError, fmt.Sprintf("internal error: %v", rec))
				}
			}()
			next.ServeHTTP(w, r)
		})
	}
}

// withAuth demands the bearer token on every route but /healthz. An empty
// configured token disables auth.
func withAuth(token string) middleware {
	return func(next http.Handler) http.Handler {
		if token == "" {
			return next
		}
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path == "/healthz" {
				next.ServeHTTP(w, r)
				return
			}
			got, ok := strings.CutPrefix(r.Header.Get("Authorization"), "Bearer ")
			if !ok || subtle.ConstantTimeCompare([]byte(got), []byte(token)) != 1 {
				w.Header().Set("WWW-Authenticate", `Bearer realm="fleetd"`)
				writeError(w, http.StatusUnauthorized, "missing or invalid bearer token")
				return
			}
			next.ServeHTTP(w, r)
		})
	}
}

// withQuota enforces the per-tenant rate limit on every route but /healthz.
// The tenant key is the presented bearer token (clients of a shared token
// share a budget), or the remote host when auth is off.
func withQuota(q *quotaCache) middleware {
	return func(next http.Handler) http.Handler {
		if q == nil || q.limit == 0 {
			return next
		}
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path == "/healthz" {
				next.ServeHTTP(w, r)
				return
			}
			tenant, ok := strings.CutPrefix(r.Header.Get("Authorization"), "Bearer ")
			if !ok || tenant == "" {
				tenant = r.RemoteAddr
			}
			if !q.allow(tenant) {
				w.Header().Set("Retry-After", fmt.Sprintf("%d", int(q.retryAfter().Seconds())))
				writeError(w, http.StatusTooManyRequests, "tenant quota exceeded")
				return
			}
			next.ServeHTTP(w, r)
		})
	}
}

// chain composes the middleware stack around a handler, first wrapper
// outermost.
func chain(h http.Handler, mws ...middleware) http.Handler {
	for i := len(mws) - 1; i >= 0; i-- {
		h = mws[i](h)
	}
	return h
}
