package gateway

import (
	"crypto/subtle"
	"fmt"
	"log/slog"
	"net/http"
	"runtime/debug"
	"strings"
	"time"
)

// middleware is one layer of the stack; the router composes them outermost
// first: logging(recovery(metrics(auth(quota(mux))))).
type middleware func(http.Handler) http.Handler

// statusWriter captures the response status for the request log while
// passing Flush through, so streaming handlers behind the stack still flush
// chunk by chunk.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// withLogging writes one structured record per request: method, path,
// status, duration. The logger wraps whatever slog.Handler the operator
// injected; the discard handler keeps the wrapper (the statusWriter feeds
// recovery too) but drops the record.
func withLogging(logger *slog.Logger, now func() time.Time) middleware {
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			sw := &statusWriter{ResponseWriter: w}
			start := now()
			next.ServeHTTP(sw, r)
			logger.LogAttrs(r.Context(), slog.LevelInfo, "request",
				slog.String("method", r.Method),
				slog.String("path", r.URL.Path),
				slog.Int("status", sw.status),
				slog.Duration("duration", now().Sub(start)))
		})
	}
}

// withRecovery turns a handler panic into a 500 instead of killing the
// server; the stack goes to the structured log.
func withRecovery(logger *slog.Logger) middleware {
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			defer func() {
				if rec := recover(); rec != nil {
					logger.LogAttrs(r.Context(), slog.LevelError, "panic",
						slog.String("method", r.Method),
						slog.String("path", r.URL.Path),
						slog.String("panic", fmt.Sprint(rec)),
						slog.String("stack", string(debug.Stack())))
					writeError(w, http.StatusInternalServerError, fmt.Sprintf("internal error: %v", rec))
				}
			}()
			next.ServeHTTP(w, r)
		})
	}
}

// withMetrics records every finished request — including auth and quota
// rejections from the inner layers — into the per-route counters and
// latency histograms. The route label is the mux pattern that served the
// request (r.Pattern is populated once the mux matches); rejections that
// never reach the mux are labelled "unrouted". The deferred record also
// catches panics on their way up to recovery, counting them as 500s.
func withMetrics(m *gwMetrics, now func() time.Time) middleware {
	return func(next http.Handler) http.Handler {
		if m == nil {
			return next
		}
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			sw := &statusWriter{ResponseWriter: w}
			start := now()
			defer func() {
				status := sw.status
				if status == 0 {
					status = http.StatusInternalServerError // panic before any write
				}
				route := r.Pattern
				if route == "" {
					route = "unrouted"
				}
				m.record(route, status, now().Sub(start))
			}()
			next.ServeHTTP(sw, r)
		})
	}
}

// withAuth demands the bearer token on every route but /healthz. An empty
// configured token disables auth.
func withAuth(token string) middleware {
	return func(next http.Handler) http.Handler {
		if token == "" {
			return next
		}
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path == "/healthz" {
				next.ServeHTTP(w, r)
				return
			}
			got, ok := strings.CutPrefix(r.Header.Get("Authorization"), "Bearer ")
			if !ok || subtle.ConstantTimeCompare([]byte(got), []byte(token)) != 1 {
				w.Header().Set("WWW-Authenticate", `Bearer realm="fleetd"`)
				writeError(w, http.StatusUnauthorized, "missing or invalid bearer token")
				return
			}
			next.ServeHTTP(w, r)
		})
	}
}

// withQuota enforces the per-tenant rate limit on every route but /healthz
// and /metrics (a scrape must keep working while a tenant is being
// throttled — that is when the operator needs it). The tenant key is the
// presented bearer token (clients of a shared token share a budget), or the
// remote host when auth is off. Denials are counted per tenant in m.
func withQuota(q *quotaCache, m *gwMetrics) middleware {
	return func(next http.Handler) http.Handler {
		if q == nil || q.limit == 0 {
			return next
		}
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path == "/healthz" || r.URL.Path == "/metrics" {
				next.ServeHTTP(w, r)
				return
			}
			tenant, ok := strings.CutPrefix(r.Header.Get("Authorization"), "Bearer ")
			if !ok || tenant == "" {
				tenant = r.RemoteAddr
			}
			if !q.allow(tenant) {
				m.denied(tenant)
				w.Header().Set("Retry-After", fmt.Sprintf("%d", int(q.retryAfter().Seconds())))
				writeError(w, http.StatusTooManyRequests, "tenant quota exceeded")
				return
			}
			next.ServeHTTP(w, r)
		})
	}
}

// chain composes the middleware stack around a handler, first wrapper
// outermost.
func chain(h http.Handler, mws ...middleware) http.Handler {
	for i := len(mws) - 1; i >= 0; i-- {
		h = mws[i](h)
	}
	return h
}
