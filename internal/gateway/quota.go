package gateway

import (
	"sync"
	"sync/atomic"
	"time"
)

// quotaCache is the hot-path per-tenant rate limiter: a fixed window of
// limit requests per window, one bucket per tenant. The bucket state is a
// single uint64 — the window index in the high 32 bits, the request count in
// the low 32 — advanced by compare-and-swap, and the tenant map is a
// sync.Map, so the check is lock-free and allocation-free once a tenant's
// bucket exists (pinned by TestQuotaCacheFastPathAllocs). Only a brand-new
// tenant pays the one bucket allocation.
type quotaCache struct {
	limit    uint32
	windowNs int64
	now      func() time.Time
	buckets  sync.Map // tenant string -> *quotaBucket
}

type quotaBucket struct {
	state atomic.Uint64
}

// newQuotaCache builds a limiter allowing limit requests per window per
// tenant. A non-positive limit disables the limiter (allow always returns
// true); a non-positive window defaults to one second.
func newQuotaCache(limit int, window time.Duration, now func() time.Time) *quotaCache {
	if window <= 0 {
		window = time.Second
	}
	if now == nil {
		now = time.Now
	}
	q := &quotaCache{windowNs: window.Nanoseconds(), now: now}
	if limit > 0 {
		q.limit = uint32(limit)
	}
	return q
}

// allow consumes one request from the tenant's current window and reports
// whether it fit the quota.
func (q *quotaCache) allow(tenant string) bool {
	if q.limit == 0 {
		return true
	}
	b, ok := q.buckets.Load(tenant)
	if !ok {
		// Slow path: first request of a tenant allocates its bucket once.
		b, _ = q.buckets.LoadOrStore(tenant, &quotaBucket{})
	}
	bucket := b.(*quotaBucket)
	window := uint64(q.now().UnixNano()/q.windowNs) & 0xffffffff
	for {
		s := bucket.state.Load()
		if s>>32 == window {
			count := uint32(s)
			if count >= q.limit {
				return false
			}
			if bucket.state.CompareAndSwap(s, s+1) {
				return true
			}
			continue
		}
		// A new window: reset the count to this one request.
		if bucket.state.CompareAndSwap(s, window<<32|1) {
			return true
		}
	}
}

// retryAfter is the Retry-After hint for a rejected request: the time left
// in the current window, rounded up to whole seconds (minimum 1).
func (q *quotaCache) retryAfter() time.Duration {
	rest := q.windowNs - q.now().UnixNano()%q.windowNs
	d := time.Duration(rest).Round(time.Second)
	if d < time.Second {
		d = time.Second
	}
	return d
}
