package gateway

import (
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// steppingClock hands out times advancing by a fixed step per call — the
// deterministic latency clock for load-report tests.
type steppingClock struct {
	mu   sync.Mutex
	t    time.Time
	step time.Duration
}

func (c *steppingClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(c.step)
	return c.t
}

// TestRunLoadAgainstGateway drives the seeded profile against a real
// in-process gateway and checks the report invariants: every request
// accounted, zero transport errors and 5xx, the fixed create/delete
// bookends, and non-zero latency quantiles.
func TestRunLoadAgainstGateway(t *testing.T) {
	_, ts := newTestGateway(t, Config{})
	const clients, requests = 3, 40
	rep, err := RunLoad(LoadConfig{
		Target:   ts.URL,
		Clients:  clients,
		Requests: requests,
		Seed:     7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schema != 1 || rep.Tool != "fleetload" {
		t.Fatalf("report header = schema %d tool %q", rep.Schema, rep.Tool)
	}
	if rep.Total != clients*requests {
		t.Fatalf("total = %d, want %d", rep.Total, clients*requests)
	}
	if rep.Errors != 0 || rep.Server5xx != 0 {
		t.Fatalf("clean gateway produced %d transport errors, %d 5xx", rep.Errors, rep.Server5xx)
	}
	if rep.P99Ms <= 0 || rep.MaxMs < rep.P99Ms || rep.P99Ms < rep.P50Ms {
		t.Fatalf("quantiles out of order: p50 %v p99 %v max %v", rep.P50Ms, rep.P99Ms, rep.MaxMs)
	}
	byName := map[string]EndpointStats{}
	for _, e := range rep.Endpoints {
		byName[e.Name] = e
	}
	if byName["create"].Count != clients || byName["delete"].Count != clients {
		t.Fatalf("bookends: create %d, delete %d, want %d each", byName["create"].Count, byName["delete"].Count, clients)
	}
	mixed := byName["place"].Count + byName["workloads"].Count + byName["report"].Count
	if mixed != clients*(requests-2) {
		t.Fatalf("mixed draws = %d, want %d", mixed, clients*(requests-2))
	}
}

// TestRunLoadDeterministic pins that the same seed yields the same request
// mix (the latency side is pinned by the CLI golden test).
func TestRunLoadDeterministic(t *testing.T) {
	_, ts := newTestGateway(t, Config{})
	mix := func() map[string]int {
		rep, err := RunLoad(LoadConfig{Target: ts.URL, Clients: 2, Requests: 30, Seed: 99})
		if err != nil {
			t.Fatal(err)
		}
		m := map[string]int{}
		for _, e := range rep.Endpoints {
			m[e.Name] = e.Count
		}
		return m
	}
	a := mix()
	b := mix()
	for name, n := range a {
		if b[name] != n {
			t.Fatalf("endpoint %s: %d then %d requests from the same seed", name, n, b[name])
		}
	}
}

// TestRunLoadCounts5xx points the profile at a permanently broken backend
// and checks the 5xx accounting (the strict-mode signal).
func TestRunLoadCounts5xx(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusInternalServerError)
	}))
	defer ts.Close()
	rep, err := RunLoad(LoadConfig{Target: ts.URL, Clients: 1, Requests: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Server5xx != 5 || rep.Status["500"] != 5 {
		t.Fatalf("5xx accounting: server_5xx %d, status[500] %d, want 5 and 5", rep.Server5xx, rep.Status["500"])
	}
}

// TestRunLoadCounts429 throttles the gateway to a one-request-per-window
// quota and checks the rate-limited accounting: everything past the first
// request bounces with 429, and the report counts every bounce.
func TestRunLoadCounts429(t *testing.T) {
	_, ts := newTestGateway(t, Config{QuotaLimit: 1, QuotaWindow: time.Hour})
	const requests = 8
	rep, err := RunLoad(LoadConfig{Target: ts.URL, Clients: 1, Requests: requests, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if rep.RateLimited != requests-1 {
		t.Fatalf("rate_limited = %d, want %d (quota of 1 per window)", rep.RateLimited, requests-1)
	}
	if rep.Status["429"] != rep.RateLimited {
		t.Fatalf("status[429] = %d, rate_limited = %d — the two counts must agree", rep.Status["429"], rep.RateLimited)
	}
	if rep.Server5xx != 0 {
		t.Fatalf("quota denials must not count as 5xx, got %d", rep.Server5xx)
	}
}

// TestRunLoadValidation pins the config errors.
func TestRunLoadValidation(t *testing.T) {
	if _, err := RunLoad(LoadConfig{}); err == nil {
		t.Fatal("missing target accepted")
	}
	if _, err := RunLoad(LoadConfig{Target: "http://x", Clients: 0, Requests: 5}); err == nil {
		t.Fatal("zero clients accepted")
	}
	if _, err := RunLoad(LoadConfig{Target: "http://x", Clients: 1, Requests: 1}); err == nil {
		t.Fatal("one request accepted (create+delete need two)")
	}
}

// TestRunLoadFakeClock checks the injected clock flows into the latency
// numbers: a stepping clock makes every request cost exactly 3 steps of
// bookkeeping, so the quantiles are exact.
func TestRunLoadFakeClock(t *testing.T) {
	_, ts := newTestGateway(t, Config{})
	clock := &steppingClock{t: time.Unix(0, 0), step: time.Millisecond}
	rep, err := RunLoad(LoadConfig{
		Target:   ts.URL,
		Clients:  1,
		Requests: 10,
		Seed:     4,
		Now:      clock.Now,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Each request reads the clock twice (start/stop), one step apart.
	if rep.P50Ms != 1 || rep.P99Ms != 1 || rep.MaxMs != 1 {
		t.Fatalf("stepping clock quantiles = p50 %v p99 %v max %v, want all 1", rep.P50Ms, rep.P99Ms, rep.MaxMs)
	}
	if rep.ElapsedMs <= 0 {
		t.Fatalf("elapsed = %v, want > 0", rep.ElapsedMs)
	}
}
