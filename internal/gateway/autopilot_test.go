package gateway

import (
	"bufio"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/autopilot"
	"repro/internal/chaos"
)

// smallRun is a fleet-shaped autopilot request that finishes in well under a
// second — the test runs wait for its done line, so keep it tiny.
const smallRun = `{"machines":10,"tasks":60,"hours":1,"seed":7,"tick_sec":600}`

// TestAutopilotHandlers is the table for the autopilot-facing routes (chaos,
// autopilot start, events, report): validation failures, unknown fleets,
// method mismatches and the happy start path.
func TestAutopilotHandlers(t *testing.T) {
	const token = "secret"
	_, ts := newTestGateway(t, Config{Token: token})
	fleetID := createFleet(t, ts.URL, token, `{}`)

	cases := []struct {
		name   string
		method string
		path   string
		body   string
		want   int
		wantIn []string
	}{
		{"chaos happy", http.MethodPost, "/v1/fleets/" + fleetID + "/chaos",
			`{"scenario":"heavy","seed":3}`, http.StatusOK,
			[]string{`"scenario": "heavy"`, `"seed": 3`, `"crashes"`, `"total"`}},
		{"chaos default scenario", http.MethodPost, "/v1/fleets/" + fleetID + "/chaos",
			`{}`, http.StatusOK, []string{`"scenario": "light"`}},
		{"chaos unknown scenario", http.MethodPost, "/v1/fleets/" + fleetID + "/chaos",
			`{"scenario":"apocalypse"}`, http.StatusBadRequest, []string{"apocalypse"}},
		{"chaos malformed JSON", http.MethodPost, "/v1/fleets/" + fleetID + "/chaos",
			`{"seed":}`, http.StatusBadRequest, []string{"malformed JSON body"}},
		{"chaos unknown fleet", http.MethodPost, "/v1/fleets/nope/chaos",
			`{}`, http.StatusNotFound, []string{"unknown fleet"}},
		{"chaos bad shape", http.MethodPost, "/v1/fleets/" + fleetID + "/chaos",
			`{"machines":0}`, http.StatusBadRequest, []string{"machines and horizon_sec"}},

		{"autopilot bad policy", http.MethodPost, "/v1/fleets/" + fleetID + "/autopilot",
			`{"policy":"psychic"}`, http.StatusBadRequest, []string{"unknown policy", "psychic", "hysteresis"}},
		{"autopilot bad planner", http.MethodPost, "/v1/fleets/" + fleetID + "/autopilot",
			`{"planner":"bogus"}`, http.StatusBadRequest, []string{"bogus"}},
		{"autopilot bad machine", http.MethodPost, "/v1/fleets/" + fleetID + "/autopilot",
			`{"machine":"toaster"}`, http.StatusBadRequest, []string{"unknown machine", "toaster", "hp, dell"}},
		{"autopilot bad hours", http.MethodPost, "/v1/fleets/" + fleetID + "/autopilot",
			`{"hours":-1}`, http.StatusBadRequest, []string{"hours -1 out of range"}},
		{"autopilot bad tick", http.MethodPost, "/v1/fleets/" + fleetID + "/autopilot",
			`{"tick_sec":0}`, http.StatusBadRequest, []string{"tick_sec 0 out of range"}},
		{"autopilot unknown fleet", http.MethodPost, "/v1/fleets/nope/autopilot",
			`{}`, http.StatusNotFound, []string{"unknown fleet"}},
		{"autopilot method not allowed", http.MethodGet, "/v1/fleets/" + fleetID + "/autopilot",
			"", http.StatusMethodNotAllowed, nil},

		{"events before any run", http.MethodGet, "/v1/fleets/" + fleetID + "/autopilot/events",
			"", http.StatusNotFound, []string{"no autopilot run"}},
		{"events unknown fleet", http.MethodGet, "/v1/fleets/nope/autopilot/events",
			"", http.StatusNotFound, []string{"unknown fleet"}},
		{"report unknown fleet", http.MethodGet, "/v1/fleets/nope/report",
			"", http.StatusNotFound, []string{"unknown fleet"}},
		{"report method not allowed", http.MethodPost, "/v1/fleets/" + fleetID + "/report",
			"{}", http.StatusMethodNotAllowed, nil},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			status, body := doJSON(t, c.method, ts.URL+c.path, token, c.body)
			if status != c.want {
				t.Fatalf("status = %d, want %d (body %s)", status, c.want, body)
			}
			for _, sub := range c.wantIn {
				if !strings.Contains(body, sub) {
					t.Errorf("body missing %q:\n%s", sub, body)
				}
			}
		})
	}
}

// streamEvents GETs the NDJSON event stream and returns the decoded lines;
// the stream ends at the terminal done/error line, so a plain read-to-EOF is
// the synchronisation point for "the run finished".
func streamEvents(t *testing.T, base, token, fleetID string) []map[string]any {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, base+"/v1/fleets/"+fleetID+"/autopilot/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Authorization", "Bearer "+token)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("events Content-Type = %q, want application/x-ndjson", ct)
	}
	var lines []map[string]any
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		lines = append(lines, m)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return lines
}

// TestAutopilotRunAndEvents runs a fault-free loop end to end: start, stream
// the whole NDJSON telemetry, check the tick lines and the terminal regret
// summary, then scrape the same numbers from the report endpoint.
func TestAutopilotRunAndEvents(t *testing.T) {
	const token = "secret"
	_, ts := newTestGateway(t, Config{Token: token})
	fleetID := createFleet(t, ts.URL, token, `{}`)

	status, body := doJSON(t, http.MethodPost, ts.URL+"/v1/fleets/"+fleetID+"/autopilot", token, smallRun)
	if status != http.StatusAccepted || !strings.Contains(body, `"status": "started"`) {
		t.Fatalf("start = %d %s, want 202 started", status, body)
	}
	if !strings.Contains(body, `"chaos": false`) {
		t.Fatalf("fault-free start flagged chaotic: %s", body)
	}

	lines := streamEvents(t, ts.URL, token, fleetID)
	if len(lines) < 2 {
		t.Fatalf("stream produced %d lines, want ticks + done", len(lines))
	}
	last := lines[len(lines)-1]
	if last["type"] != "done" {
		t.Fatalf("terminal line = %v, want type done", last)
	}
	if _, ok := last["regret_percent"]; !ok {
		t.Fatalf("done line missing regret_percent: %v", last)
	}
	ticks := lines[:len(lines)-1]
	for i, l := range ticks {
		if l["type"] != "tick" {
			t.Fatalf("line %d type = %v, want tick", i, l["type"])
		}
	}
	// Tick telemetry is ordered and monotone in at_sec.
	prev := -1.0
	for i, l := range ticks {
		at := l["at_sec"].(float64)
		if at <= prev {
			t.Fatalf("tick %d at_sec %v not increasing (prev %v)", i, at, prev)
		}
		prev = at
	}
	if len(ticks) < 3 {
		t.Fatalf("got %d ticks for a 1h/600s run, want several", len(ticks))
	}
	// Every subscriber replays the full buffered run: a second stream sees
	// the identical sequence.
	again := streamEvents(t, ts.URL, token, fleetID)
	if len(again) != len(lines) {
		t.Fatalf("replay stream %d lines, want %d", len(again), len(lines))
	}

	// The report agrees with the stream's terminal line.
	status, body = doJSON(t, http.MethodGet, ts.URL+"/v1/fleets/"+fleetID+"/report", token, "")
	if status != http.StatusOK {
		t.Fatalf("report status = %d", status)
	}
	var rep struct {
		Autopilot struct {
			Running       bool    `json:"running"`
			Policy        string  `json:"policy"`
			Ticks         int     `json:"ticks"`
			RegretPercent float64 `json:"regret_percent"`
		} `json:"autopilot"`
	}
	if err := json.Unmarshal([]byte(body), &rep); err != nil {
		t.Fatalf("report body: %v\n%s", err, body)
	}
	if rep.Autopilot.Running {
		t.Fatal("report says running after the stream's done line")
	}
	if rep.Autopilot.Policy != "hysteresis" || rep.Autopilot.Ticks != len(ticks) {
		t.Fatalf("report autopilot = %+v, want hysteresis over the stream's %d ticks", rep.Autopilot, len(ticks))
	}
	if rep.Autopilot.RegretPercent != last["regret_percent"].(float64) {
		t.Fatalf("report regret %v != stream regret %v", rep.Autopilot.RegretPercent, last["regret_percent"])
	}
}

// TestAutopilotChaosRun arms a scenario, runs under it, and checks the
// terminal line and report switch to the resilience summary.
func TestAutopilotChaosRun(t *testing.T) {
	const token = "secret"
	_, ts := newTestGateway(t, Config{Token: token})
	fleetID := createFleet(t, ts.URL, token, `{}`)

	status, body := doJSON(t, http.MethodPost, ts.URL+"/v1/fleets/"+fleetID+"/chaos", token, `{"scenario":"light","seed":11}`)
	if status != http.StatusOK {
		t.Fatalf("chaos = %d %s", status, body)
	}
	status, body = doJSON(t, http.MethodPost, ts.URL+"/v1/fleets/"+fleetID+"/autopilot", token, smallRun)
	if status != http.StatusAccepted || !strings.Contains(body, `"chaos": true`) {
		t.Fatalf("chaotic start = %d %s, want 202 with chaos true", status, body)
	}

	lines := streamEvents(t, ts.URL, token, fleetID)
	last := lines[len(lines)-1]
	if last["type"] != "done" || last["scenario"] != "light" {
		t.Fatalf("chaotic done line = %v, want scenario light", last)
	}
	if _, ok := last["savings_retained_percent"]; !ok {
		t.Fatalf("chaotic done line missing savings_retained_percent: %v", last)
	}

	status, body = doJSON(t, http.MethodGet, ts.URL+"/v1/fleets/"+fleetID+"/report", token, "")
	if status != http.StatusOK || !strings.Contains(body, `"chaos"`) || !strings.Contains(body, `"scenario": "light"`) {
		t.Fatalf("chaotic report = %d %s, want chaos block", status, body)
	}
}

// TestAutopilotConflict pins the 409: while a run is marked in progress, a
// second start is rejected. The run is planted directly (in-package) so the
// test never races a real loop's completion.
func TestAutopilotConflict(t *testing.T) {
	const token = "secret"
	srv, ts := newTestGateway(t, Config{Token: token})
	fleetID := createFleet(t, ts.URL, token, `{}`)

	sess, ok := srv.Manager().Get(fleetID)
	if !ok {
		t.Fatal("created session not resolvable")
	}
	stuck := newAutopilotRun("hysteresis", "zombiestack", false)
	sess.mu.Lock()
	sess.run = stuck
	sess.mu.Unlock()

	status, body := doJSON(t, http.MethodPost, ts.URL+"/v1/fleets/"+fleetID+"/autopilot", token, smallRun)
	if status != http.StatusConflict || !strings.Contains(body, "already in progress") {
		t.Fatalf("second start = %d %s, want 409", status, body)
	}
	// Finishing the stuck run clears the conflict.
	stuck.finish(autopilot.Report{}, chaos.Report{}, nil)
	status, body = doJSON(t, http.MethodPost, ts.URL+"/v1/fleets/"+fleetID+"/autopilot", token, smallRun)
	if status != http.StatusAccepted {
		t.Fatalf("start after finish = %d %s, want 202", status, body)
	}
	streamEvents(t, ts.URL, token, fleetID) // drain so the goroutine finishes before teardown
}

// TestAutopilotEventsCancel pins the subscriber-side cancel: a client that
// goes away mid-stream does not wedge the run or the server.
func TestAutopilotEventsCancel(t *testing.T) {
	const token = "secret"
	srv, ts := newTestGateway(t, Config{Token: token})
	fleetID := createFleet(t, ts.URL, token, `{}`)

	sess, _ := srv.Manager().Get(fleetID)
	run := newAutopilotRun("hysteresis", "zombiestack", false)
	sess.mu.Lock()
	sess.run = run // never finishes — the subscriber must leave on its own
	sess.mu.Unlock()

	req, err := http.NewRequest(http.MethodGet, ts.URL+"/v1/fleets/"+fleetID+"/autopilot/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Authorization", "Bearer "+token)
	client := &http.Client{Timeout: 300 * time.Millisecond}
	resp, err := client.Do(req)
	if err == nil {
		// The header came back before the timeout; the body read must bail.
		buf := make([]byte, 1)
		deadline := time.Now().Add(2 * time.Second)
		for time.Now().Before(deadline) {
			if _, err = resp.Body.Read(buf); err != nil {
				break
			}
		}
		resp.Body.Close()
		if err == nil {
			t.Fatal("stream kept serving an unfinished run past the client timeout")
		}
	}
	// The server is still healthy after the abandoned subscriber.
	if status, _ := doJSON(t, http.MethodGet, ts.URL+"/healthz", "", ""); status != http.StatusOK {
		t.Fatalf("healthz after cancelled stream = %d", status)
	}
}
