package gateway

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestManagerEvictIdle drives the eviction policy directly with a fake
// clock: only sessions idle beyond the TTL go, and Get refreshes the clock.
func TestManagerEvictIdle(t *testing.T) {
	clock := newFakeClock(time.Unix(9000, 0))
	m := NewManager(time.Minute, 0, 8, clock.Now)
	m.Close() // the policy is tested directly; no background evictor needed

	a, err := m.Create(nil, 1, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.Create(nil, 1, 1, 1)
	if err != nil {
		t.Fatal(err)
	}

	// Half the TTL in, refresh a only.
	clock.Advance(40 * time.Second)
	if _, ok := m.Get(a.ID); !ok {
		t.Fatalf("session %s vanished before its TTL", a.ID)
	}
	// Past b's TTL, inside a's refreshed one.
	clock.Advance(30 * time.Second)
	if gone := m.evictIdle(); len(gone) != 1 || gone[0] != b.ID {
		t.Fatalf("evictIdle = %v, want [%s]", gone, b.ID)
	}
	if m.Len() != 1 {
		t.Fatalf("Len = %d after eviction, want 1", m.Len())
	}
	// Idle long enough and a goes too.
	clock.Advance(2 * time.Minute)
	if gone := m.evictIdle(); len(gone) != 1 || gone[0] != a.ID {
		t.Fatalf("evictIdle = %v, want [%s]", gone, a.ID)
	}
	if m.Len() != 0 {
		t.Fatalf("registry not drained: Len = %d", m.Len())
	}
}

// TestManagerEvictorLoop runs the background evictor against the fake clock
// and watches retirements arrive on the test hook channel.
func TestManagerEvictorLoop(t *testing.T) {
	clock := newFakeClock(time.Unix(9000, 0))
	m := &Manager{
		ttl:      time.Minute,
		now:      clock.Now,
		max:      8,
		sessions: make(map[string]*Session),
		stop:     make(chan struct{}),
		evicted:  make(chan string, 8),
	}
	m.evictorW.Add(1)
	go m.evictLoop(10 * time.Millisecond)
	defer m.Close()

	s, err := m.Create(nil, 1, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	clock.Advance(2 * time.Minute)
	select {
	case id := <-m.evicted:
		if id != s.ID {
			t.Fatalf("evicted %s, want %s", id, s.ID)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("evictor never retired the idle session")
	}
	if m.Len() != 0 {
		t.Fatalf("registry not drained: Len = %d", m.Len())
	}
}

// TestManagerSessionLimit pins the 0-means-default and hard-cap behaviour.
func TestManagerSessionLimit(t *testing.T) {
	m := NewManager(0, 0, 2, nil)
	defer m.Close()
	if _, err := m.Create(nil, 1, 1, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Create(nil, 1, 1, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Create(nil, 1, 1, 1); err == nil {
		t.Fatal("third session admitted past the limit")
	}
	if got := m.IDs(); len(got) != 2 || got[0] != "f-1" || got[1] != "f-2" {
		t.Fatalf("IDs = %v, want [f-1 f-2]", got)
	}
	if !m.Delete("f-1") || m.Delete("f-1") {
		t.Fatal("Delete did not report first-removal semantics")
	}
	if _, err := m.Create(nil, 1, 1, 1); err != nil {
		t.Fatalf("create after delete: %v", err)
	}
}

// TestGatewayConcurrentSessions drives N tenants concurrently through a real
// httptest server — create, place, workloads, report, delete — with the
// background evictor running, and asserts session isolation (every placement
// carries its own fleet's prefix, counts never bleed) and that the registry
// drains to empty. Run under -race this exercises the manager, quota cache
// and session locking together.
func TestGatewayConcurrentSessions(t *testing.T) {
	const (
		tenants = 8
		token   = "secret"
	)
	srv, ts := newTestGateway(t, Config{
		Token:      token,
		SessionTTL: 30 * time.Second, // evictor live, but nobody should idle out
		EvictEvery: 20 * time.Millisecond,
	})

	var wg sync.WaitGroup
	errs := make(chan error, tenants)
	for g := 0; g < tenants; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			errs <- driveSession(ts.URL, token, g)
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Error(err)
		}
	}
	if n := srv.Manager().Len(); n != 0 {
		t.Fatalf("registry not drained after all tenants deleted: %d live (%v)", n, srv.Manager().IDs())
	}
}

// driveSession is one tenant's full lifecycle against the gateway.
func driveSession(base, token string, g int) error {
	do := func(method, path, body string) (int, string, error) {
		req, err := http.NewRequest(method, base+path, strings.NewReader(body))
		if err != nil {
			return 0, "", err
		}
		req.Header.Set("Authorization", "Bearer "+token)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			return 0, "", err
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			return 0, "", err
		}
		return resp.StatusCode, string(b), nil
	}

	status, body, err := do(http.MethodPost, "/v1/fleets", `{"racks":1,"servers":3,"mem_gib":2,"workers":1,"zombies_per_rack":1}`)
	if err != nil {
		return err
	}
	if status != http.StatusCreated {
		return fmt.Errorf("tenant %d create: status %d body %s", g, status, body)
	}
	var created struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal([]byte(body), &created); err != nil || created.ID == "" {
		return fmt.Errorf("tenant %d create: bad body %s", g, body)
	}
	id := created.ID

	// Place a tenant-specific number of VMs and check the names carry this
	// session's prefix — the isolation invariant.
	wantVMs := 1 + g%3
	status, body, err = do(http.MethodPost, "/v1/fleets/"+id+"/vms", fmt.Sprintf(`{"count":%d,"gib":0.5,"vcpus":1}`, wantVMs))
	if err != nil {
		return err
	}
	var placed struct {
		Placed     int `json:"placed"`
		Placements []struct {
			VM string `json:"vm"`
		} `json:"placements"`
	}
	if status != http.StatusOK || json.Unmarshal([]byte(body), &placed) != nil {
		return fmt.Errorf("tenant %d place: status %d body %s", g, status, body)
	}
	if placed.Placed != wantVMs {
		return fmt.Errorf("tenant %d placed %d VMs, want %d", g, placed.Placed, wantVMs)
	}
	for _, p := range placed.Placements {
		if !strings.HasPrefix(p.VM, id+"-vm-") {
			return fmt.Errorf("tenant %d leaked a foreign VM name %q (fleet %s)", g, p.VM, id)
		}
	}

	// A workload on our first VM must succeed; the report must count exactly
	// our placements.
	vm := placed.Placements[0].VM
	status, body, err = do(http.MethodPost, "/v1/fleets/"+id+"/workloads",
		fmt.Sprintf(`{"items":[{"vm":%q,"kind":"micro-benchmark","iterations":1,"seed":%d}]}`, vm, g+1))
	if err != nil {
		return err
	}
	if status != http.StatusOK || strings.Contains(body, `"error"`) {
		return fmt.Errorf("tenant %d workload: status %d body %s", g, status, body)
	}
	status, body, err = do(http.MethodGet, "/v1/fleets/"+id+"/report", "")
	if err != nil {
		return err
	}
	var rep struct {
		Fleet struct {
			VMs int `json:"vms"`
		} `json:"fleet"`
	}
	if status != http.StatusOK || json.Unmarshal([]byte(body), &rep) != nil {
		return fmt.Errorf("tenant %d report: status %d body %s", g, status, body)
	}
	if rep.Fleet.VMs != wantVMs {
		return fmt.Errorf("tenant %d report counts %d VMs, want %d — cross-session bleed", g, rep.Fleet.VMs, wantVMs)
	}

	if status, body, err = do(http.MethodDelete, "/v1/fleets/"+id, ""); err != nil {
		return err
	}
	if status != http.StatusNoContent {
		return fmt.Errorf("tenant %d delete: status %d body %s", g, status, body)
	}
	if status, _, err = do(http.MethodGet, "/v1/fleets/"+id+"/report", ""); err != nil {
		return err
	}
	if status != http.StatusNotFound {
		return fmt.Errorf("tenant %d session resolvable after delete: status %d", g, status)
	}
	return nil
}
