// Package gateway is the serving layer: a long-running HTTP control-plane
// front end ("zombieland as a service") that exposes the whole stack — fleet
// construction, VM placement, workload replay through the data plane, the
// online autopilot loop with streamed tick telemetry, chaos scenarios and
// the savings/regret/resilience report — to concurrent tenants over JSON.
//
// # Architecture
//
//	client ──► middleware stack ──► mux ──► handlers ──► Manager ──► Session ──► fleet.Fleet
//	           (logging, panic              (net/http                │            autopilot run
//	            recovery, bearer             method+path             └─ RW-mutexed registry,
//	            auth, quota cache)           patterns)                  idle-TTL evictor
//
// A Manager owns the session registry: one Session per created fleet, each
// fully isolated (its own fleet.Fleet, placements, chaos plan and autopilot
// run), guarded by a RW-mutexed map and evicted after an idle TTL by a
// background evictor. Handlers never share mutable state outside the
// Manager, so N tenants drive N fleets concurrently through one mux
// (pinned by TestGatewayConcurrentSessions under -race).
//
// The middleware stack wraps every route: request logging, panic recovery
// (a handler panic becomes a 500, not a dead server), bearer-token auth
// (401), and per-tenant rate limiting backed by a hot-path quota cache —
// a sync.Map of atomically-packed fixed-window counters, so the limiter
// check is allocation-free on the fast path (pinned by
// TestQuotaCacheFastPathAllocs) and a 429 with Retry-After on overflow.
//
// The autopilot endpoint starts the online control loop in a background
// goroutine; its per-tick telemetry (autopilot.Config.OnTick) is buffered on
// the session and streamed to any number of subscribers as NDJSON — a late
// subscriber replays the buffer, a live one follows the run to its final
// summary line.
//
// Package gateway also hosts the load generator (RunLoad) that cmd/fleetload
// wraps: N concurrent clients × M requests against a seeded mixed endpoint
// profile, reporting throughput and p50/p99/max latency, the serving-path
// series of BENCH_gateway.json (schema v1).
package gateway
