package gateway

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// scrape fetches /metrics and returns the parsed sample lines
// (series -> value), skipping comments.
func scrape(t *testing.T, ts *httptest.Server, token string) map[string]float64 {
	t.Helper()
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/metrics", nil)
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	out := make(map[string]float64)
	sc := newLineScanner(t, resp)
	for _, line := range sc {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		idx := strings.LastIndexByte(line, ' ')
		if idx < 0 {
			t.Fatalf("malformed sample line %q", line)
		}
		v, err := strconv.ParseFloat(line[idx+1:], 64)
		if err != nil {
			t.Fatalf("malformed value in %q: %v", line, err)
		}
		out[line[:idx]] = v
	}
	return out
}

func newLineScanner(t *testing.T, resp *http.Response) []string {
	t.Helper()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return strings.Split(string(body), "\n")
}

// TestMetricsSelfConsistent drives a known request mix through a live
// gateway and asserts the acceptance invariant: per-route counters sum to
// the requests issued, and each route's latency histogram count equals its
// request counter.
func TestMetricsSelfConsistent(t *testing.T) {
	const token = "tkn"
	srv := New(Config{Token: token})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	issued := 0
	do := func(method, path, body string, want int) {
		t.Helper()
		status, respBody := doJSON(t, method, ts.URL+path, token, body)
		if status != want {
			t.Fatalf("%s %s = %d (%s), want %d", method, path, status, respBody, want)
		}
		issued++
	}
	do(http.MethodPost, "/v1/fleets", `{"racks":2,"servers":2}`, http.StatusCreated)
	do(http.MethodGet, "/v1/fleets", "", http.StatusOK)
	do(http.MethodPost, "/v1/fleets/f-1/vms", `{"count":2,"gib":4}`, http.StatusOK)
	do(http.MethodGet, "/v1/fleets/f-1/report", "", http.StatusOK)
	do(http.MethodGet, "/v1/fleets/nope/report", "", http.StatusNotFound)
	do(http.MethodDelete, "/v1/fleets/f-1", "", http.StatusNoContent)
	// One unauthenticated request: counted under "unrouted" since auth
	// rejects it before the mux matches.
	if status, _ := doJSON(t, http.MethodGet, ts.URL+"/v1/fleets", "", ""); status != http.StatusUnauthorized {
		t.Fatalf("unauthenticated = %d, want 401", status)
	}
	issued++

	samples := scrape(t, ts, token)
	var counted float64
	routeTotals := make(map[string]float64)
	for series, v := range samples {
		if name, rest, ok := strings.Cut(series, "{"); ok && name == "fleetd_http_requests_total" {
			counted += v
			route, _, _ := strings.Cut(strings.TrimPrefix(rest, `route="`), `",`)
			routeTotals[route] += v
		}
	}
	if counted != float64(issued) {
		t.Fatalf("request counters sum to %v, issued %d", counted, issued)
	}
	if routeTotals["unrouted"] != 1 {
		t.Fatalf("unrouted = %v, want 1 (the 401)", routeTotals["unrouted"])
	}
	for route, total := range routeTotals {
		histCount, ok := samples[fmt.Sprintf("fleetd_http_request_duration_ns_count{route=%q}", route)]
		if !ok {
			t.Fatalf("no latency histogram for route %q", route)
		}
		if histCount != total {
			t.Fatalf("route %q: histogram count %v != request counter %v", route, histCount, total)
		}
	}
	if samples["fleetd_sessions"] != 0 {
		t.Fatalf("fleetd_sessions = %v after delete, want 0", samples["fleetd_sessions"])
	}
}

// TestSessionGauges checks the scrape-time gauges against live sessions.
func TestSessionGauges(t *testing.T) {
	srv := New(Config{})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	if status, _ := doJSON(t, http.MethodPost, ts.URL+"/v1/fleets", "",
		`{"racks":2,"servers":4,"zombies_per_rack":1}`); status != http.StatusCreated {
		t.Fatalf("create = %d", status)
	}
	if status, _ := doJSON(t, http.MethodPost, ts.URL+"/v1/fleets/f-1/vms",
		"", `{"count":3,"gib":4}`); status != http.StatusOK {
		t.Fatalf("vms = %d", status)
	}
	samples := scrape(t, ts, "")
	if samples["fleetd_sessions"] != 1 {
		t.Fatalf("fleetd_sessions = %v, want 1", samples["fleetd_sessions"])
	}
	if samples["fleetd_vms_placed"] != 3 {
		t.Fatalf("fleetd_vms_placed = %v, want 3", samples["fleetd_vms_placed"])
	}
	if samples["fleetd_remote_memory_gib"] <= 0 {
		t.Fatalf("fleetd_remote_memory_gib = %v, want > 0 (one zombie per rack)", samples["fleetd_remote_memory_gib"])
	}
}

// TestQuotaDenialCounter checks satellite 3: 429s show up per tenant in
// /metrics, and the scrape itself is quota-exempt so it still works while
// the tenant is throttled.
func TestQuotaDenialCounter(t *testing.T) {
	const token = "tenant-a"
	clock := time.Now()
	srv := New(Config{Token: token, QuotaLimit: 2, QuotaWindow: time.Second,
		now: func() time.Time { return clock }})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	for i := 0; i < 5; i++ {
		doJSON(t, http.MethodGet, ts.URL+"/v1/fleets", token, "")
	}
	samples := scrape(t, ts, token)
	key := fmt.Sprintf("fleetd_quota_denials_total{tenant=%q}", token)
	if samples[key] != 3 {
		t.Fatalf("%s = %v, want 3 (5 issued, budget 2)", key, samples[key])
	}
	if samples[`fleetd_http_requests_total{route="unrouted",status="429"}`] != 3 {
		t.Fatalf("429s not counted in the request counters: %v", samples)
	}
}

// TestPprofGating checks the flag: /debug/pprof/* is absent by default and
// mounted (behind auth) with EnablePprof.
func TestPprofGating(t *testing.T) {
	off := New(Config{})
	defer off.Close()
	tsOff := httptest.NewServer(off.Handler())
	defer tsOff.Close()
	if status, _ := doJSON(t, http.MethodGet, tsOff.URL+"/debug/pprof/cmdline", "", ""); status != http.StatusNotFound {
		t.Fatalf("pprof without flag = %d, want 404", status)
	}

	on := New(Config{Token: "t", EnablePprof: true})
	defer on.Close()
	tsOn := httptest.NewServer(on.Handler())
	defer tsOn.Close()
	if status, _ := doJSON(t, http.MethodGet, tsOn.URL+"/debug/pprof/cmdline", "", ""); status != http.StatusUnauthorized {
		t.Fatalf("pprof without token = %d, want 401", status)
	}
	if status, _ := doJSON(t, http.MethodGet, tsOn.URL+"/debug/pprof/cmdline", "t", ""); status != http.StatusOK {
		t.Fatalf("pprof with token = %d, want 200", status)
	}
}

// capturedHandler is the injectable slog.Handler of the logging satellite:
// it records every slog.Record it receives.
type capturedHandler struct {
	mu      sync.Mutex
	records []map[string]string
}

func (h *capturedHandler) Enabled(context.Context, slog.Level) bool { return true }
func (h *capturedHandler) WithAttrs([]slog.Attr) slog.Handler       { return h }
func (h *capturedHandler) WithGroup(string) slog.Handler            { return h }
func (h *capturedHandler) Handle(_ context.Context, r slog.Record) error {
	rec := map[string]string{"msg": r.Message}
	r.Attrs(func(a slog.Attr) bool {
		rec[a.Key] = a.Value.String()
		return true
	})
	h.mu.Lock()
	h.records = append(h.records, rec)
	h.mu.Unlock()
	return nil
}

// TestStructuredRequestLog pins the slog migration via a captured handler:
// one "request" record per request with method, path and status attrs, and
// a panic produces a "panic" record with the stack.
func TestStructuredRequestLog(t *testing.T) {
	h := &capturedHandler{}
	srv := New(Config{LogHandler: h})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	if status, _ := doJSON(t, http.MethodGet, ts.URL+"/healthz", "", ""); status != http.StatusOK {
		t.Fatal("healthz failed")
	}
	if status, _ := doJSON(t, http.MethodGet, ts.URL+"/v1/fleets/zzz/report", "", ""); status != http.StatusNotFound {
		t.Fatal("expected 404")
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.records) != 2 {
		t.Fatalf("got %d records, want 2: %v", len(h.records), h.records)
	}
	first, second := h.records[0], h.records[1]
	if first["msg"] != "request" || first["method"] != "GET" || first["path"] != "/healthz" || first["status"] != "200" {
		t.Fatalf("healthz record = %v", first)
	}
	if second["status"] != "404" || second["path"] != "/v1/fleets/zzz/report" {
		t.Fatalf("404 record = %v", second)
	}
	if first["duration"] == "" {
		t.Fatalf("no duration attr: %v", first)
	}
}

// TestReportEmbedsMetrics checks that the session report carries the
// metrics snapshot.
func TestReportEmbedsMetrics(t *testing.T) {
	srv := New(Config{})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	if status, _ := doJSON(t, http.MethodPost, ts.URL+"/v1/fleets", "", `{"racks":1,"servers":2}`); status != http.StatusCreated {
		t.Fatal("create failed")
	}
	_, body := doJSON(t, http.MethodGet, ts.URL+"/v1/fleets/f-1/report", "", "")
	var resp struct {
		Metrics struct {
			Counters map[string]uint64 `json:"counters"`
		} `json:"metrics"`
	}
	if err := json.Unmarshal([]byte(body), &resp); err != nil {
		t.Fatalf("report not JSON: %v\n%s", err, body)
	}
	if resp.Metrics.Counters[`fleetd_http_requests_total{route="POST /v1/fleets",status="201"}`] != 1 {
		t.Fatalf("snapshot missing the create counter: %v", resp.Metrics.Counters)
	}
}
