package gateway

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/metrics"
)

// LoadConfig parameterises RunLoad: Clients concurrent workers each issue
// Requests requests against Target from a seeded mixed endpoint profile
// (create fleet → mixed place/workload/report traffic → delete fleet).
type LoadConfig struct {
	// Target is the gateway base URL ("http://127.0.0.1:8870").
	Target string
	// Token is the bearer token to present; empty sends no Authorization.
	Token string
	// Clients is the number of concurrent workers; Requests the number of
	// requests each one issues (the session create/delete pair included).
	Clients  int
	Requests int
	// Seed drives each worker's endpoint choices (worker i draws from
	// Seed+i), so a profile is reproducible.
	Seed int64
	// Client is the HTTP client; nil uses a dedicated pooled transport.
	Client *http.Client
	// Now is the latency clock seam; nil means time.Now. The golden CLI test
	// injects a stepping fake so the percentile lines are deterministic.
	Now func() time.Time
}

// LoadReport is the outcome of one load run — the BENCH_gateway.json
// payload (schema v1).
type LoadReport struct {
	Schema   int    `json:"schema"`
	Tool     string `json:"tool"`
	Target   string `json:"target"`
	Clients  int    `json:"clients"`
	Requests int    `json:"requests_per_client"`
	// Total counts issued requests; Errors transport-level failures;
	// Server5xx responses with status >= 500; RateLimited 429 responses (the
	// per-tenant quota denials the gateway also counts in /metrics). Status
	// histograms by code.
	Total       int            `json:"total_requests"`
	Errors      int            `json:"transport_errors"`
	Server5xx   int            `json:"server_5xx"`
	RateLimited int            `json:"rate_limited"`
	Status      map[string]int `json:"status"`
	// ElapsedMs is the wall-clock span of the whole run; ThroughputRPS is
	// Total divided by that span.
	ElapsedMs     float64 `json:"elapsed_ms"`
	ThroughputRPS float64 `json:"throughput_rps"`
	// Latency quantiles over every request, in milliseconds.
	P50Ms float64 `json:"p50_ms"`
	P99Ms float64 `json:"p99_ms"`
	MaxMs float64 `json:"max_ms"`
	// Endpoints breaks the traffic down per profile entry, in profile order.
	Endpoints []EndpointStats `json:"endpoints"`
}

// EndpointStats is one profile entry's slice of the load.
type EndpointStats struct {
	Name      string  `json:"name"`
	Count     int     `json:"count"`
	Errors    int     `json:"errors"`
	Server5xx int     `json:"server_5xx"`
	P50Ms     float64 `json:"p50_ms"`
	P99Ms     float64 `json:"p99_ms"`
	MaxMs     float64 `json:"max_ms"`
}

// loadProfile is the mixed endpoint schedule: after the fixed create, each
// draw picks report/place/workloads with these weights; the last request of
// a worker is always the delete.
var loadProfile = []struct {
	name   string
	weight int
}{
	{"create", 0}, // fixed first request
	{"place", 3},
	{"workloads", 2},
	{"report", 5},
	{"delete", 0}, // fixed last request
}

// sample is one request's outcome.
type sample struct {
	endpoint  string
	latency   time.Duration
	status    int // 0 on transport error
	transport bool
}

// RunLoad hammers the target with the seeded mixed profile and aggregates
// the latency/throughput report. Per-request failures (transport errors,
// 4xx/5xx) are counted, not fatal — the report tells the story.
func RunLoad(cfg LoadConfig) (LoadReport, error) {
	if cfg.Target == "" {
		return LoadReport{}, fmt.Errorf("gateway: load target URL is required")
	}
	if cfg.Clients < 1 || cfg.Requests < 1 {
		return LoadReport{}, fmt.Errorf("gateway: load needs >= 1 client and >= 1 request, got %d x %d", cfg.Clients, cfg.Requests)
	}
	if cfg.Requests < 2 {
		return LoadReport{}, fmt.Errorf("gateway: each client needs >= 2 requests (create + delete), got %d", cfg.Requests)
	}
	now := cfg.Now
	if now == nil {
		now = time.Now
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: cfg.Clients}}
	}

	var mu sync.Mutex
	samples := make([]sample, 0, cfg.Clients*cfg.Requests)
	start := now()

	var wg sync.WaitGroup
	for c := 0; c < cfg.Clients; c++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			w := &loadWorker{
				cfg:    cfg,
				client: client,
				rng:    rand.New(rand.NewSource(cfg.Seed + int64(worker))),
				now:    now,
			}
			got := w.run()
			mu.Lock()
			samples = append(samples, got...)
			mu.Unlock()
		}(c)
	}
	wg.Wait()
	elapsed := now().Sub(start)

	return buildReport(cfg, samples, elapsed), nil
}

// loadWorker is one client's session-scoped request loop.
type loadWorker struct {
	cfg     LoadConfig
	client  *http.Client
	rng     *rand.Rand
	now     func() time.Time
	fleetID string
	vms     []string
	samples []sample
}

// placeBody is the load profile's placement: a 1-vCPU VM whose reservation
// exceeds one server's free memory, so successful placements split
// local/remote and later workloads exercise the remote path. The fleet is
// deliberately small (one zombie lending ~1 GiB) — the profile hammers the
// serving path, not the data plane's capacity.
const (
	createBody = `{"racks":1,"servers":3,"mem_gib":2,"workers":1,"zombies_per_rack":1}`
	placeBody  = `{"count":1,"gib":1.25,"vcpus":1}`
)

// run issues the worker's schedule: create, Requests-2 mixed draws, delete.
func (w *loadWorker) run() []sample {
	w.do("create", http.MethodPost, "/v1/fleets", createBody)
	for i := 0; i < w.cfg.Requests-2; i++ {
		switch w.draw() {
		case "place":
			w.do("place", http.MethodPost, "/v1/fleets/"+w.fleetID+"/vms", placeBody)
		case "workloads":
			if len(w.vms) == 0 {
				// Nothing placed yet: fall back to a placement so the draw
				// still issues exactly one request.
				w.do("place", http.MethodPost, "/v1/fleets/"+w.fleetID+"/vms", placeBody)
				continue
			}
			vm := w.vms[w.rng.Intn(len(w.vms))]
			body := fmt.Sprintf(`{"items":[{"vm":%q,"kind":"micro-benchmark","iterations":1,"seed":%d}]}`, vm, w.rng.Int63n(1000)+1)
			w.do("workloads", http.MethodPost, "/v1/fleets/"+w.fleetID+"/workloads", body)
		default:
			w.do("report", http.MethodGet, "/v1/fleets/"+w.fleetID+"/report", "")
		}
	}
	w.do("delete", http.MethodDelete, "/v1/fleets/"+w.fleetID, "")
	return w.samples
}

// draw picks the next mixed endpoint by profile weight.
func (w *loadWorker) draw() string {
	total := 0
	for _, e := range loadProfile {
		total += e.weight
	}
	n := w.rng.Intn(total)
	for _, e := range loadProfile {
		if e.weight == 0 {
			continue
		}
		if n < e.weight {
			return e.name
		}
		n -= e.weight
	}
	return "report"
}

// do issues one request, records its sample, and harvests the fleet ID and
// VM names from create/place responses.
func (w *loadWorker) do(endpoint, method, path, body string) {
	var rd io.Reader
	if body != "" {
		rd = bytes.NewReader([]byte(body))
	}
	req, err := http.NewRequest(method, w.cfg.Target+path, rd)
	if err != nil {
		w.samples = append(w.samples, sample{endpoint: endpoint, transport: true})
		return
	}
	if body != "" {
		req.Header.Set("Content-Type", "application/json")
	}
	if w.cfg.Token != "" {
		req.Header.Set("Authorization", "Bearer "+w.cfg.Token)
	}
	start := w.now()
	resp, err := w.client.Do(req)
	if err != nil {
		w.samples = append(w.samples, sample{endpoint: endpoint, latency: w.now().Sub(start), transport: true})
		return
	}
	payload, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	w.samples = append(w.samples, sample{endpoint: endpoint, latency: w.now().Sub(start), status: resp.StatusCode})

	switch endpoint {
	case "create":
		var cr struct {
			ID string `json:"id"`
		}
		if json.Unmarshal(payload, &cr) == nil && cr.ID != "" {
			w.fleetID = cr.ID
		}
	case "place":
		var pr struct {
			Placements []struct {
				VM    string `json:"vm"`
				Error string `json:"error"`
			} `json:"placements"`
		}
		if json.Unmarshal(payload, &pr) == nil {
			for _, p := range pr.Placements {
				if p.Error == "" {
					w.vms = append(w.vms, p.VM)
				}
			}
		}
	}
}

// buildReport aggregates the samples into the schema-v1 report.
func buildReport(cfg LoadConfig, samples []sample, elapsed time.Duration) LoadReport {
	rep := LoadReport{
		Schema:    1,
		Tool:      "fleetload",
		Target:    cfg.Target,
		Clients:   cfg.Clients,
		Requests:  cfg.Requests,
		Total:     len(samples),
		Status:    make(map[string]int),
		ElapsedMs: float64(elapsed) / float64(time.Millisecond),
	}
	if elapsed > 0 {
		rep.ThroughputRPS = float64(len(samples)) / elapsed.Seconds()
	}

	all := make([]time.Duration, 0, len(samples))
	byEndpoint := make(map[string][]time.Duration)
	errsBy := make(map[string]int)
	fiveby := make(map[string]int)
	for _, s := range samples {
		if s.transport {
			rep.Errors++
			errsBy[s.endpoint]++
			continue
		}
		rep.Status[strconv.Itoa(s.status)]++
		if s.status >= 500 {
			rep.Server5xx++
			fiveby[s.endpoint]++
		}
		if s.status == http.StatusTooManyRequests {
			rep.RateLimited++
		}
		all = append(all, s.latency)
		byEndpoint[s.endpoint] = append(byEndpoint[s.endpoint], s.latency)
	}
	rep.P50Ms, rep.P99Ms, rep.MaxMs = quantilesMs(all)
	for _, e := range loadProfile {
		lats := byEndpoint[e.name]
		if len(lats) == 0 && errsBy[e.name] == 0 {
			continue
		}
		st := EndpointStats{Name: e.name, Count: len(lats) + errsBy[e.name], Errors: errsBy[e.name], Server5xx: fiveby[e.name]}
		st.P50Ms, st.P99Ms, st.MaxMs = quantilesMs(lats)
		rep.Endpoints = append(rep.Endpoints, st)
	}
	return rep
}

// quantilesMs returns the nearest-rank p50/p99 and the max, in milliseconds.
// The rank selection is the shared metrics.NearestRank helper — the same
// convention membench's latency line quotes.
func quantilesMs(lats []time.Duration) (p50, p99, maxMs float64) {
	if len(lats) == 0 {
		return 0, 0, 0
	}
	sorted := make([]int64, len(lats))
	for i, d := range lats {
		sorted[i] = int64(d)
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	ms := func(ns int64) float64 { return float64(ns) / float64(time.Millisecond) }
	return ms(metrics.NearestRank(sorted, 50)), ms(metrics.NearestRank(sorted, 99)), ms(sorted[len(sorted)-1])
}
