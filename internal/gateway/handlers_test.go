package gateway

import (
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// newTestGateway spins a full gateway (middleware stack included) on an
// httptest server. The caller owns both returned closers via t.Cleanup.
func newTestGateway(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	srv := New(cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, ts
}

// doJSON issues one request and returns the status and body.
func doJSON(t *testing.T, method, url, token, body string) (int, string) {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(b)
}

// createFleet creates a session and returns its ID.
func createFleet(t *testing.T, base, token, body string) string {
	t.Helper()
	status, got := doJSON(t, http.MethodPost, base+"/v1/fleets", token, body)
	if status != http.StatusCreated {
		t.Fatalf("create fleet: status %d, body %s", status, got)
	}
	var resp struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal([]byte(got), &resp); err != nil || resp.ID == "" {
		t.Fatalf("create fleet: bad body %s (err %v)", got, err)
	}
	return resp.ID
}

// TestFleetHandlers is the table for the fleet-facing routes (create, list,
// delete, vms, workloads): method-not-allowed, malformed JSON, unknown
// fleet, auth failure, validation errors and the happy paths with body
// assertions.
func TestFleetHandlers(t *testing.T) {
	const token = "secret"
	_, ts := newTestGateway(t, Config{Token: token})
	// A pre-made fleet with a zombie lender and one placed VM for the
	// workload cases: 2 active servers with 2 GiB free each, a 2 GiB remote
	// pool. The seed VM fills server-00, so the happy cases land on
	// server-01 and the split case overflows into the remote pool.
	fleetID := createFleet(t, ts.URL, token, `{"racks":1,"servers":3,"mem_gib":3,"workers":1,"zombies_per_rack":1}`)
	status, body := doJSON(t, http.MethodPost, ts.URL+"/v1/fleets/"+fleetID+"/vms", token, `{"count":1,"gib":2,"vcpus":1}`)
	if status != http.StatusOK || !strings.Contains(body, `"placed": 1`) {
		t.Fatalf("seed placement failed: status %d, body %s", status, body)
	}

	cases := []struct {
		name   string
		method string
		path   string
		token  string
		body   string
		want   int
		wantIn []string // substrings the response body must contain
	}{
		{"create happy", http.MethodPost, "/v1/fleets", token,
			`{"racks":2,"servers":4,"mem_gib":2,"workers":2,"zombies_per_rack":1}`,
			http.StatusCreated, []string{`"racks": 2`, `"servers": 4`, `"zombies": 2`, `"id": "f-`}},
		{"create defaults on empty body", http.MethodPost, "/v1/fleets", token,
			`{}`, http.StatusCreated, []string{`"racks": 2`, `"servers": 4`, `"zombies": 0`}},
		{"create malformed JSON", http.MethodPost, "/v1/fleets", token,
			`{"racks": `, http.StatusBadRequest, []string{"malformed JSON body"}},
		{"create unknown field", http.MethodPost, "/v1/fleets", token,
			`{"rackz":2}`, http.StatusBadRequest, []string{"malformed JSON body", "rackz"}},
		{"create bad racks", http.MethodPost, "/v1/fleets", token,
			`{"racks":0}`, http.StatusBadRequest, []string{"racks 0 out of range"}},
		{"create zombies eat the rack", http.MethodPost, "/v1/fleets", token,
			`{"servers":2,"zombies_per_rack":2}`, http.StatusBadRequest, []string{"zombies_per_rack 2 must leave an active server"}},
		{"create beyond server cap", http.MethodPost, "/v1/fleets", token,
			`{"racks":100,"servers":100}`, http.StatusBadRequest, []string{"exceeds the gateway cap"}},
		{"create method not allowed", http.MethodPut, "/v1/fleets", token,
			`{}`, http.StatusMethodNotAllowed, nil},
		{"create auth missing", http.MethodPost, "/v1/fleets", "",
			`{}`, http.StatusUnauthorized, []string{"bearer token"}},
		{"create auth wrong", http.MethodPost, "/v1/fleets", "wrong",
			`{}`, http.StatusUnauthorized, []string{"bearer token"}},

		{"list happy", http.MethodGet, "/v1/fleets", token,
			"", http.StatusOK, []string{`"fleets"`, `"id": "` + fleetID + `"`}},
		{"list auth", http.MethodGet, "/v1/fleets", "",
			"", http.StatusUnauthorized, nil},

		{"vms happy", http.MethodPost, "/v1/fleets/" + fleetID + "/vms", token,
			`{"count":2,"gib":0.5,"vcpus":1}`, http.StatusOK, []string{`"placed": 2`, `"local_gib": 0.5`, `"host"`}},
		{"vms remote split", http.MethodPost, "/v1/fleets/" + fleetID + "/vms", token,
			`{"count":1,"gib":2,"vcpus":1}`, http.StatusOK, []string{`"placed": 1`, `"remote_gib": 1`}},
		{"vms unknown fleet", http.MethodPost, "/v1/fleets/nope/vms", token,
			`{"count":1,"gib":1}`, http.StatusNotFound, []string{"unknown fleet", "nope"}},
		{"vms malformed JSON", http.MethodPost, "/v1/fleets/" + fleetID + "/vms", token,
			`[]`, http.StatusBadRequest, []string{"malformed JSON body"}},
		{"vms bad count", http.MethodPost, "/v1/fleets/" + fleetID + "/vms", token,
			`{"count":0,"gib":1}`, http.StatusBadRequest, []string{"count 0 out of range"}},
		{"vms bad gib", http.MethodPost, "/v1/fleets/" + fleetID + "/vms", token,
			`{"count":1,"gib":-1}`, http.StatusBadRequest, []string{"gib -1 out of range"}},
		{"vms bad vcpus", http.MethodPost, "/v1/fleets/" + fleetID + "/vms", token,
			`{"count":1,"gib":1,"vcpus":0}`, http.StatusBadRequest, []string{"vcpus 0 out of range"}},
		{"vms method not allowed", http.MethodGet, "/v1/fleets/" + fleetID + "/vms", token,
			"", http.StatusMethodNotAllowed, nil},

		{"workloads happy paging", http.MethodPost, "/v1/fleets/" + fleetID + "/workloads", token,
			`{"items":[{"vm":"` + fleetID + `-vm-0","kind":"micro-benchmark","iterations":1,"seed":7}]}`,
			http.StatusOK, []string{`"accesses"`, `"kind": "micro-benchmark"`}},
		// vm-3 is the remote-split VM: a 16 MiB span covers its whole scaled
		// address space, and spark-sql's weak locality touches far more cold
		// pages than the local arena holds, so the data plane must cross into
		// zombie buffers.
		{"workloads happy data plane", http.MethodPost, "/v1/fleets/" + fleetID + "/workloads", token,
			`{"items":[{"vm":"` + fleetID + `-vm-3","kind":"spark-sql","iterations":2,"seed":7,"data_mib":16}]}`,
			http.StatusOK, []string{`"kind": "spark-sql"`, `"local_ops"`, `"remote_ops"`, `"remote_kib"`, `"charged_ms"`}},
		{"workloads unknown vm", http.MethodPost, "/v1/fleets/" + fleetID + "/workloads", token,
			`{"items":[{"vm":"ghost","kind":"micro-benchmark"}]}`,
			http.StatusOK, []string{`"error"`, "ghost"}},
		{"workloads unknown kind", http.MethodPost, "/v1/fleets/" + fleetID + "/workloads", token,
			`{"items":[{"vm":"x","kind":"bogus"}]}`,
			http.StatusBadRequest, []string{"unknown workload", "bogus", "micro-benchmark"}},
		{"workloads empty items", http.MethodPost, "/v1/fleets/" + fleetID + "/workloads", token,
			`{"items":[]}`, http.StatusBadRequest, []string{"items is empty"}},
		{"workloads unknown fleet", http.MethodPost, "/v1/fleets/nope/workloads", token,
			`{"items":[{"vm":"x","kind":"micro-benchmark"}]}`,
			http.StatusNotFound, []string{"unknown fleet"}},

		{"delete unknown fleet", http.MethodDelete, "/v1/fleets/nope", token,
			"", http.StatusNotFound, []string{"unknown fleet"}},
		{"healthz no auth needed", http.MethodGet, "/healthz", "",
			"", http.StatusOK, []string{`"status": "ok"`}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			status, body := doJSON(t, c.method, ts.URL+c.path, c.token, c.body)
			if status != c.want {
				t.Fatalf("status = %d, want %d (body %s)", status, c.want, body)
			}
			for _, sub := range c.wantIn {
				if !strings.Contains(body, sub) {
					t.Errorf("body missing %q:\n%s", sub, body)
				}
			}
		})
	}

	// Delete last: the happy path drains the session.
	if status, _ := doJSON(t, http.MethodDelete, ts.URL+"/v1/fleets/"+fleetID, token, ""); status != http.StatusNoContent {
		t.Fatalf("delete status = %d, want 204", status)
	}
	if status, _ := doJSON(t, http.MethodGet, ts.URL+"/v1/fleets/"+fleetID+"/report", token, ""); status != http.StatusNotFound {
		t.Fatalf("report after delete = %d, want 404", status)
	}
}

// TestGatewayQuota pins the 429 path: a 2-requests-per-window tenant budget
// admits two calls and rejects the third with Retry-After, and the window
// rolling over (fake clock) re-admits.
func TestGatewayQuota(t *testing.T) {
	const token = "secret"
	clock := time.Unix(1000, 0)
	now := func() time.Time { return clock }
	_, ts := newTestGateway(t, Config{Token: token, QuotaLimit: 2, QuotaWindow: time.Second, now: now})

	for i := 0; i < 2; i++ {
		if status, body := doJSON(t, http.MethodGet, ts.URL+"/v1/fleets", token, ""); status != http.StatusOK {
			t.Fatalf("request %d status = %d, body %s", i, status, body)
		}
	}
	status, body := doJSON(t, http.MethodGet, ts.URL+"/v1/fleets", token, "")
	if status != http.StatusTooManyRequests || !strings.Contains(body, "tenant quota exceeded") {
		t.Fatalf("third request = %d %s, want 429 quota exceeded", status, body)
	}
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/fleets", nil)
	req.Header.Set("Authorization", "Bearer "+token)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests || resp.Header.Get("Retry-After") == "" {
		t.Fatalf("429 without Retry-After header (status %d)", resp.StatusCode)
	}
	// Healthz is never rate limited.
	if status, _ := doJSON(t, http.MethodGet, ts.URL+"/healthz", "", ""); status != http.StatusOK {
		t.Fatalf("healthz rate-limited: %d", status)
	}
	// Roll the window: the tenant's budget resets.
	clock = clock.Add(time.Second)
	if status, _ := doJSON(t, http.MethodGet, ts.URL+"/v1/fleets", token, ""); status != http.StatusOK {
		t.Fatalf("post-rollover request = %d, want 200", status)
	}
}

// TestGatewayRecovery pins the panic middleware: a handler panic surfaces as
// a 500 JSON error, and the server keeps serving.
func TestGatewayRecovery(t *testing.T) {
	srv := New(Config{})
	defer srv.Close()
	boom := http.NewServeMux()
	boom.HandleFunc("GET /boom", func(http.ResponseWriter, *http.Request) { panic("kaboom") })
	ts := httptest.NewServer(chain(boom, withRecovery(slog.New(slog.DiscardHandler))))
	defer ts.Close()

	status, body := doJSON(t, http.MethodGet, ts.URL+"/boom", "", "")
	if status != http.StatusInternalServerError || !strings.Contains(body, "kaboom") {
		t.Fatalf("panic = %d %s, want 500 kaboom", status, body)
	}
	if status, _ = doJSON(t, http.MethodGet, ts.URL+"/boom", "", ""); status != http.StatusInternalServerError {
		t.Fatalf("server died after first panic: %d", status)
	}
}
