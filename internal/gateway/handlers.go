package gateway

import (
	"fmt"
	"net/http"
	"strings"

	"repro/internal/acpi"
	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/vm"
	"repro/internal/workload"
)

// createFleetRequest builds a session: a racks×servers fleet, optionally
// with the tail servers of every rack pushed into Sz so the fleet starts
// with a remote-memory pool.
type createFleetRequest struct {
	Racks          int `json:"racks"`
	Servers        int `json:"servers"`
	MemGiB         int `json:"mem_gib"`
	Workers        int `json:"workers"`
	ZombiesPerRack int `json:"zombies_per_rack"`
}

type createFleetResponse struct {
	ID        string  `json:"id"`
	Racks     int     `json:"racks"`
	Servers   int     `json:"servers"`
	MemGiB    int     `json:"mem_gib"`
	Zombies   int     `json:"zombies"`
	RemoteGiB float64 `json:"remote_gib"`
}

func (s *Server) handleCreateFleet(w http.ResponseWriter, r *http.Request) {
	req := createFleetRequest{Racks: 2, Servers: 4, MemGiB: 16, Workers: 2}
	if !decodeJSON(w, r, &req) {
		return
	}
	switch {
	case req.Racks < 1:
		writeError(w, http.StatusBadRequest, fmt.Sprintf("racks %d out of range (need >= 1)", req.Racks))
		return
	case req.Servers < 1:
		writeError(w, http.StatusBadRequest, fmt.Sprintf("servers %d out of range (need >= 1)", req.Servers))
		return
	case req.MemGiB < 1:
		writeError(w, http.StatusBadRequest, fmt.Sprintf("mem_gib %d out of range (need >= 1)", req.MemGiB))
		return
	case req.Workers < 1:
		writeError(w, http.StatusBadRequest, fmt.Sprintf("workers %d out of range (need >= 1)", req.Workers))
		return
	case req.ZombiesPerRack < 0 || req.ZombiesPerRack >= req.Servers:
		writeError(w, http.StatusBadRequest, fmt.Sprintf("zombies_per_rack %d must leave an active server (servers %d)", req.ZombiesPerRack, req.Servers))
		return
	case req.Racks*req.Servers > s.cfg.MaxServers:
		writeError(w, http.StatusBadRequest, fmt.Sprintf("fleet of %d servers exceeds the gateway cap of %d", req.Racks*req.Servers, s.cfg.MaxServers))
		return
	}

	board := acpi.DefaultBoardSpec()
	board.MemoryBytes = uint64(req.MemGiB) << 30
	f, err := fleet.New(fleet.Config{
		Racks:   req.Racks,
		Rack:    core.Config{Servers: req.Servers, Board: board},
		Workers: req.Workers,
	})
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	zombies := 0
	for ri := 0; ri < req.Racks; ri++ {
		names := f.Rack(ri).Servers()
		for z := 0; z < req.ZombiesPerRack; z++ {
			if err := f.PushToZombie(ri, names[len(names)-1-z]); err != nil {
				writeError(w, http.StatusInternalServerError, err.Error())
				return
			}
			zombies++
		}
	}
	sess, err := s.manager.Create(f, req.Racks, req.Servers, req.MemGiB)
	if err != nil {
		writeError(w, http.StatusServiceUnavailable, err.Error())
		return
	}
	writeJSON(w, http.StatusCreated, createFleetResponse{
		ID:        sess.ID,
		Racks:     req.Racks,
		Servers:   req.Servers,
		MemGiB:    req.MemGiB,
		Zombies:   zombies,
		RemoteGiB: float64(f.FreeRemoteMemory()) / float64(1<<30),
	})
}

type fleetSummary struct {
	ID      string `json:"id"`
	Racks   int    `json:"racks"`
	Servers int    `json:"servers"`
	VMs     int    `json:"vms"`
}

func (s *Server) handleListFleets(w http.ResponseWriter, r *http.Request) {
	ids := s.manager.IDs()
	out := make([]fleetSummary, 0, len(ids))
	for _, id := range ids {
		sess, ok := s.manager.Get(id)
		if !ok {
			continue // evicted between listing and resolving
		}
		sess.mu.Lock()
		out = append(out, fleetSummary{ID: sess.ID, Racks: sess.racks, Servers: sess.servers, VMs: sess.placed})
		sess.mu.Unlock()
	}
	writeJSON(w, http.StatusOK, map[string]any{"fleets": out})
}

func (s *Server) handleDeleteFleet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !s.manager.Delete(id) {
		writeError(w, http.StatusNotFound, fmt.Sprintf("unknown fleet %q", id))
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// placeVMsRequest places count identical VMs; the gateway names them
// "<fleet>-vm-<n>". WssGiB defaults to 75% of GiB, the fleetsim convention;
// VCPUs defaults to the paper's 8-vCPU VMs (a full default board).
type placeVMsRequest struct {
	Count  int     `json:"count"`
	GiB    float64 `json:"gib"`
	WssGiB float64 `json:"wss_gib"`
	VCPUs  int     `json:"vcpus"`
}

type placementJSON struct {
	VM          string  `json:"vm"`
	Rack        string  `json:"rack,omitempty"`
	Host        string  `json:"host,omitempty"`
	LocalGiB    float64 `json:"local_gib"`
	RemoteGiB   float64 `json:"remote_gib"`
	BorrowedGiB float64 `json:"borrowed_gib"`
	From        string  `json:"from,omitempty"`
	Error       string  `json:"error,omitempty"`
}

func (s *Server) handlePlaceVMs(w http.ResponseWriter, r *http.Request) {
	sess := s.session(w, r)
	if sess == nil {
		return
	}
	req := placeVMsRequest{Count: 1, GiB: 8, VCPUs: 8}
	if !decodeJSON(w, r, &req) {
		return
	}
	switch {
	case req.Count < 1:
		writeError(w, http.StatusBadRequest, fmt.Sprintf("count %d out of range (need >= 1)", req.Count))
		return
	case req.GiB <= 0:
		writeError(w, http.StatusBadRequest, fmt.Sprintf("gib %g out of range (need > 0)", req.GiB))
		return
	case req.VCPUs < 1:
		writeError(w, http.StatusBadRequest, fmt.Sprintf("vcpus %d out of range (need >= 1)", req.VCPUs))
		return
	}
	if req.WssGiB <= 0 {
		req.WssGiB = req.GiB * 0.75
	}

	sess.mu.Lock()
	f := sess.fleet
	first := sess.vmSeq
	sess.vmSeq += req.Count
	sess.mu.Unlock()

	specs := make([]vm.VM, 0, req.Count)
	for i := 0; i < req.Count; i++ {
		spec := vm.New(fmt.Sprintf("%s-vm-%d", sess.ID, first+i),
			int64(req.GiB*float64(1<<30)), int64(req.WssGiB*float64(1<<30)))
		spec.VCPUs = req.VCPUs
		specs = append(specs, spec)
	}
	placements, err := f.PlaceVMs(specs, core.CreateVMOptions{})
	if err != nil {
		writeError(w, http.StatusConflict, err.Error())
		return
	}
	out := make([]placementJSON, 0, len(placements))
	placed := 0
	for _, p := range placements {
		pj := placementJSON{VM: p.VM, Rack: p.Rack, Host: p.Host, From: p.BorrowedFrom, Error: p.Err}
		if p.Err == "" {
			placed++
			pj.LocalGiB = float64(p.LocalBytes) / float64(1<<30)
			pj.RemoteGiB = float64(p.RemoteBytes) / float64(1<<30)
			pj.BorrowedGiB = float64(p.BorrowedBytes) / float64(1<<30)
		}
		out = append(out, pj)
	}
	sess.mu.Lock()
	sess.placed += placed
	sess.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{"placed": placed, "placements": out})
}

// workloadsRequest replays a batch of workloads. DataMiB > 0 routes an item
// through the memplane data plane (real bytes through zombie buffers).
type workloadsRequest struct {
	Items []workloadItem `json:"items"`
}

type workloadItem struct {
	VM         string `json:"vm"`
	Kind       string `json:"kind"`
	Iterations int    `json:"iterations"`
	Seed       int64  `json:"seed"`
	DataMiB    int64  `json:"data_mib"`
}

type workloadResultJSON struct {
	VM          string  `json:"vm"`
	Rack        string  `json:"rack,omitempty"`
	Kind        string  `json:"kind"`
	Error       string  `json:"error,omitempty"`
	Accesses    uint64  `json:"accesses,omitempty"`
	MajorFaults uint64  `json:"major_faults,omitempty"`
	RemoteMs    float64 `json:"remote_ms,omitempty"`
	LocalOps    uint64  `json:"local_ops,omitempty"`
	RemoteOps   uint64  `json:"remote_ops,omitempty"`
	RemoteKiB   uint64  `json:"remote_kib,omitempty"`
	ChargedMs   float64 `json:"charged_ms,omitempty"`
}

// parseKind resolves a workload name; the error lists the valid set.
func parseKind(name string) (workload.Kind, error) {
	for _, k := range workload.AllKinds() {
		if k.String() == name {
			return k, nil
		}
	}
	valid := make([]string, 0, len(workload.AllKinds()))
	for _, k := range workload.AllKinds() {
		valid = append(valid, k.String())
	}
	return 0, fmt.Errorf("unknown workload %q (valid: %s)", name, strings.Join(valid, ", "))
}

func (s *Server) handleWorkloads(w http.ResponseWriter, r *http.Request) {
	sess := s.session(w, r)
	if sess == nil {
		return
	}
	var req workloadsRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	if len(req.Items) == 0 {
		writeError(w, http.StatusBadRequest, "items is empty")
		return
	}
	reqs := make([]fleet.WorkloadRequest, 0, len(req.Items))
	for i, it := range req.Items {
		kind, err := parseKind(it.Kind)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("items[%d]: %v", i, err))
			return
		}
		iters := it.Iterations
		if iters < 1 {
			iters = 1
		}
		reqs = append(reqs, fleet.WorkloadRequest{
			VM:         it.VM,
			Kind:       kind,
			Iterations: iters,
			Seed:       it.Seed,
			DataBytes:  it.DataMiB << 20,
		})
	}
	results := sess.Fleet().RunWorkloads(reqs)
	out := make([]workloadResultJSON, 0, len(results))
	for _, res := range results {
		rj := workloadResultJSON{VM: res.VM, Rack: res.Rack, Kind: res.Kind.String(), Error: res.Err}
		if res.Err == "" {
			rj.Accesses = res.Stats.Accesses
			rj.MajorFaults = res.Stats.MajorFaults
			rj.RemoteMs = res.Stats.RemoteNs / 1e6
			rj.LocalOps = res.Data.LocalOps
			rj.RemoteOps = res.Data.RemoteOps
			rj.RemoteKiB = (res.Data.RemoteBytesRead + res.Data.RemoteBytesWritten) >> 10
			rj.ChargedMs = float64(res.Data.ChargedNs) / 1e6
		}
		out = append(out, rj)
	}
	writeJSON(w, http.StatusOK, map[string]any{"results": out})
}
