package gateway

import (
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"time"

	"repro/internal/obs"
)

// Config parameterises a gateway Server.
type Config struct {
	// Token is the bearer token every request must present; empty disables
	// auth (and the quota then keys tenants by remote host).
	Token string
	// QuotaLimit is the per-tenant request budget per QuotaWindow; 0
	// disables rate limiting. QuotaWindow defaults to one second.
	QuotaLimit  int
	QuotaWindow time.Duration
	// SessionTTL evicts sessions idle longer than this; 0 disables
	// eviction. EvictEvery is the evictor scan period (default TTL/4).
	SessionTTL time.Duration
	EvictEvery time.Duration
	// MaxSessions bounds the live-session registry (default 64).
	MaxSessions int
	// MaxServers bounds racks*servers of a created fleet (default 256), so
	// one tenant cannot allocate an unbounded simulated datacenter.
	MaxServers int
	// LogHandler receives the structured request log and panic reports as
	// slog records; nil discards them. Injectable so tests capture records
	// and operators pick their own format.
	LogHandler slog.Handler
	// Metrics is the observability registry /metrics serves; nil means the
	// server builds its own. Injecting one lets an embedding process expose
	// gateway metrics alongside its own.
	Metrics *obs.Registry
	// EnablePprof mounts net/http/pprof under GET /debug/pprof/* (behind
	// auth). Off by default: profiling endpoints are an operator opt-in.
	EnablePprof bool

	// now is the clock seam the tests inject; nil means time.Now.
	now func() time.Time
}

func (c *Config) applyDefaults() {
	if c.QuotaWindow <= 0 {
		c.QuotaWindow = time.Second
	}
	if c.MaxServers <= 0 {
		c.MaxServers = 256
	}
	if c.now == nil {
		c.now = time.Now
	}
	if c.LogHandler == nil {
		c.LogHandler = slog.DiscardHandler
	}
	if c.Metrics == nil {
		c.Metrics = obs.NewRegistry()
	}
}

// Server is the assembled gateway: the session manager, the quota cache and
// the routed, middleware-wrapped handler.
type Server struct {
	cfg     Config
	manager *Manager
	quota   *quotaCache
	handler http.Handler
	reg     *obs.Registry
	metrics *gwMetrics
	logger  *slog.Logger
}

// New assembles a gateway from the configuration.
func New(cfg Config) *Server {
	cfg.applyDefaults()
	s := &Server{
		cfg:     cfg,
		manager: NewManager(cfg.SessionTTL, cfg.EvictEvery, cfg.MaxSessions, cfg.now),
		quota:   newQuotaCache(cfg.QuotaLimit, cfg.QuotaWindow, cfg.now),
		reg:     cfg.Metrics,
		logger:  slog.New(cfg.LogHandler),
	}
	s.metrics = newGWMetrics(s.reg)
	registerSessionGauges(s.reg, s.manager)

	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	if cfg.EnablePprof {
		mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	mux.HandleFunc("POST /v1/fleets", s.handleCreateFleet)
	mux.HandleFunc("GET /v1/fleets", s.handleListFleets)
	mux.HandleFunc("DELETE /v1/fleets/{id}", s.handleDeleteFleet)
	mux.HandleFunc("POST /v1/fleets/{id}/vms", s.handlePlaceVMs)
	mux.HandleFunc("POST /v1/fleets/{id}/workloads", s.handleWorkloads)
	mux.HandleFunc("POST /v1/fleets/{id}/chaos", s.handleChaos)
	mux.HandleFunc("POST /v1/fleets/{id}/autopilot", s.handleAutopilotStart)
	mux.HandleFunc("GET /v1/fleets/{id}/autopilot/events", s.handleAutopilotEvents)
	mux.HandleFunc("GET /v1/fleets/{id}/report", s.handleReport)

	s.handler = chain(mux,
		withLogging(s.logger, cfg.now),
		withRecovery(s.logger),
		withMetrics(s.metrics, cfg.now),
		withAuth(cfg.Token),
		withQuota(s.quota, s.metrics),
	)
	return s
}

// Metrics exposes the observability registry (the embedding process and the
// tests read it back).
func (s *Server) Metrics() *obs.Registry { return s.reg }

// Handler returns the routed handler behind the full middleware stack.
func (s *Server) Handler() http.Handler { return s.handler }

// Manager exposes the session registry (the race and eviction tests assert
// against it).
func (s *Server) Manager() *Manager { return s.manager }

// Close stops the background evictor.
func (s *Server) Close() { s.manager.Close() }

// ListenAndServe serves the gateway on addr until the listener fails.
func (s *Server) ListenAndServe(addr string) error {
	srv := &http.Server{Addr: addr, Handler: s.handler, ReadHeaderTimeout: 10 * time.Second}
	return srv.ListenAndServe()
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// session resolves the {id} path value; a miss writes the 404 and returns
// nil.
func (s *Server) session(w http.ResponseWriter, r *http.Request) *Session {
	id := r.PathValue("id")
	sess, ok := s.manager.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Sprintf("unknown fleet %q", id))
		return nil
	}
	return sess
}

// errorResponse is the uniform error body.
type errorResponse struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, errorResponse{Error: msg})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v) // the status line is out; a broken pipe is the client's problem
}

// decodeJSON reads a request body into v, rejecting trailing garbage and
// unknown fields — a malformed body is a 400 with the decoder's reason.
func decodeJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(io.LimitReader(r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("malformed JSON body: %v", err))
		return false
	}
	if dec.More() {
		writeError(w, http.StatusBadRequest, "malformed JSON body: trailing data")
		return false
	}
	return true
}
