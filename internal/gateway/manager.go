package gateway

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/autopilot"
	"repro/internal/chaos"
	"repro/internal/fleet"
)

// Session is one tenant's isolated slice of the gateway: a fleet, its
// placements, an optional chaos plan and the current (or last) autopilot
// run. All fields behind mu; the fleet has its own internal locking, so
// handlers hold mu only around session bookkeeping, never across a long
// fleet or autopilot operation.
type Session struct {
	// ID is the session handle ("f-1", "f-2", ...).
	ID string

	mu sync.Mutex
	// lastUsed is the idle-eviction clock, refreshed by every authenticated
	// request that resolves the session.
	lastUsed time.Time
	fleet    *fleet.Fleet
	racks    int
	servers  int
	memGiB   int
	// vmSeq numbers the VMs the session places; placed counts the
	// successful placements.
	vmSeq  int
	placed int
	// chaosName/chaosSeed are the scenario the next autopilot run replays
	// under (rebuilt for the run's own horizon and fleet size); chaosPreview
	// is the plan built at POST time for the response tally.
	chaosName    string
	chaosSeed    int64
	chaosPreview *chaos.Plan
	// run is the current or last autopilot run, nil before the first one.
	run *autopilotRun
}

// Fleet returns the session's fleet.
func (s *Session) Fleet() *fleet.Fleet {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fleet
}

// autopilotRun is the state of one background autopilot run: the buffered
// tick events every subscriber replays, a broadcast channel replaced on each
// append so live subscribers block without polling, and the terminal state
// (report or error) once the goroutine finishes.
type autopilotRun struct {
	policy  string
	planner string
	chaotic bool

	mu     sync.Mutex
	notify chan struct{}
	events []autopilot.TickEvent
	done   bool
	report autopilot.Report
	chaosR chaos.Report
	err    error
}

func newAutopilotRun(policy, planner string, chaotic bool) *autopilotRun {
	return &autopilotRun{policy: policy, planner: planner, chaotic: chaotic, notify: make(chan struct{})}
}

// append buffers one tick event and wakes every waiting subscriber.
func (r *autopilotRun) append(ev autopilot.TickEvent) {
	r.mu.Lock()
	r.events = append(r.events, ev)
	close(r.notify)
	r.notify = make(chan struct{})
	r.mu.Unlock()
}

// finish records the terminal state and wakes the subscribers one last time.
func (r *autopilotRun) finish(report autopilot.Report, chaosR chaos.Report, err error) {
	r.mu.Lock()
	r.report = report
	r.chaosR = chaosR
	r.err = err
	r.done = true
	close(r.notify)
	r.mu.Unlock()
}

// snapshot returns the events from index from on, the done flag, and the
// channel that will be closed on the next change — the subscriber's wait
// handle when it has caught up.
func (r *autopilotRun) snapshot(from int) (evs []autopilot.TickEvent, done bool, wait <-chan struct{}) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if from < len(r.events) {
		evs = r.events[from:len(r.events):len(r.events)]
	}
	return evs, r.done, r.notify
}

// Manager owns the concurrent session registry: an RW-mutexed map of live
// sessions, a monotonic ID sequence, and a background evictor that retires
// sessions idle longer than the TTL. A zero TTL disables eviction.
type Manager struct {
	ttl time.Duration
	now func() time.Time
	max int

	mu       sync.RWMutex
	sessions map[string]*Session
	seq      int

	stop     chan struct{}
	evicted  chan string // non-nil in tests that watch the evictor
	evictorW sync.WaitGroup
}

// NewManager builds a registry. ttl <= 0 disables idle eviction; every > 0
// sets the evictor's scan period (default ttl/4, floored at 50ms);
// maxSessions bounds the registry (0 means 64). now is the clock, nil for
// time.Now — tests inject a fake to drive eviction deterministically.
func NewManager(ttl, every time.Duration, maxSessions int, now func() time.Time) *Manager {
	if now == nil {
		now = time.Now
	}
	if maxSessions <= 0 {
		maxSessions = 64
	}
	m := &Manager{
		ttl:      ttl,
		now:      now,
		max:      maxSessions,
		sessions: make(map[string]*Session),
		stop:     make(chan struct{}),
	}
	if ttl > 0 {
		if every <= 0 {
			every = ttl / 4
		}
		if every < 50*time.Millisecond {
			every = 50 * time.Millisecond
		}
		m.evictorW.Add(1)
		go m.evictLoop(every)
	}
	return m
}

// Close stops the evictor. Live sessions stay resolvable until deleted.
func (m *Manager) Close() {
	select {
	case <-m.stop:
		return // already closed
	default:
	}
	close(m.stop)
	m.evictorW.Wait()
}

// Create registers a new session around a freshly built fleet.
func (m *Manager) Create(f *fleet.Fleet, racks, servers, memGiB int) (*Session, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.sessions) >= m.max {
		return nil, fmt.Errorf("gateway: session limit reached (%d live)", m.max)
	}
	m.seq++
	s := &Session{
		ID:       fmt.Sprintf("f-%d", m.seq),
		lastUsed: m.now(),
		fleet:    f,
		racks:    racks,
		servers:  servers,
		memGiB:   memGiB,
	}
	m.sessions[s.ID] = s
	return s, nil
}

// Get resolves a session and refreshes its idle clock.
func (m *Manager) Get(id string) (*Session, bool) {
	m.mu.RLock()
	s, ok := m.sessions[id]
	m.mu.RUnlock()
	if !ok {
		return nil, false
	}
	s.mu.Lock()
	s.lastUsed = m.now()
	s.mu.Unlock()
	return s, true
}

// Delete removes a session from the registry. The session's fleet is
// garbage; in-flight handlers holding the pointer finish against it.
func (m *Manager) Delete(id string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.sessions[id]; !ok {
		return false
	}
	delete(m.sessions, id)
	return true
}

// Len returns the number of live sessions.
func (m *Manager) Len() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.sessions)
}

// IDs returns the live session IDs, sorted.
func (m *Manager) IDs() []string {
	m.mu.RLock()
	ids := make([]string, 0, len(m.sessions))
	for id := range m.sessions {
		ids = append(ids, id)
	}
	m.mu.RUnlock()
	sort.Strings(ids)
	return ids
}

// Totals is the aggregate view of the registry served by the /metrics
// session gauges.
type Totals struct {
	Sessions        int
	PlacedVMs       int
	AutopilotActive int
	RemoteBytes     int64
}

// Totals aggregates across live sessions at scrape time. Fleet state is
// read outside the session lock (the fleet has its own locking), so a
// scrape never blocks a long placement.
func (m *Manager) Totals() Totals {
	m.mu.RLock()
	live := make([]*Session, 0, len(m.sessions))
	for _, s := range m.sessions {
		live = append(live, s)
	}
	m.mu.RUnlock()
	t := Totals{Sessions: len(live)}
	for _, s := range live {
		s.mu.Lock()
		t.PlacedVMs += s.placed
		run := s.run
		f := s.fleet
		s.mu.Unlock()
		if run != nil {
			run.mu.Lock()
			if !run.done {
				t.AutopilotActive++
			}
			run.mu.Unlock()
		}
		if f != nil {
			t.RemoteBytes += f.FreeRemoteMemory()
		}
	}
	return t
}

// evictLoop scans the registry every period and retires idle sessions.
func (m *Manager) evictLoop(every time.Duration) {
	defer m.evictorW.Done()
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-m.stop:
			return
		case <-t.C:
			for _, id := range m.evictIdle() {
				if m.evicted != nil {
					select {
					case m.evicted <- id:
					case <-m.stop:
						return
					}
				}
			}
		}
	}
}

// evictIdle removes and returns every session idle longer than the TTL.
func (m *Manager) evictIdle() []string {
	deadline := m.now().Add(-m.ttl)
	m.mu.Lock()
	defer m.mu.Unlock()
	var gone []string
	for id, s := range m.sessions {
		s.mu.Lock()
		idle := s.lastUsed.Before(deadline)
		s.mu.Unlock()
		if idle {
			delete(m.sessions, id)
			gone = append(gone, id)
		}
	}
	sort.Strings(gone)
	return gone
}
