package memplane

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/chaos"
	"repro/internal/memctl"
)

// diffOp is one step of the seeded differential workload.
type diffOp struct {
	write bool
	addr  int64
	size  int
}

// diffStream generates a seeded op mix: page-aligned and unaligned, sub-page
// and multi-page, over an address space several times the local arena so the
// allocator overflows to remote grants.
func diffStream(seed int64, n int, span int64) []diffOp {
	rng := rand.New(rand.NewSource(seed))
	ops := make([]diffOp, 0, n)
	for i := 0; i < n; i++ {
		size := 1 + rng.Intn(int(2*DefaultPageSize))
		addr := rng.Int63n(span - int64(size))
		ops = append(ops, diffOp{write: rng.Float64() < 0.6, addr: addr, size: size})
	}
	return ops
}

// diffHarness owns one plane plus the rig under it.
type diffHarness struct {
	rig   *rig
	plane *Plane
}

// newDiffHarness builds a rig and a plane over it. Both harnesses of a
// differential run are constructed with identical arguments, so their memctl
// state evolves identically; only the transport differs.
func newDiffHarness(t *testing.T, ledger bool, plan *chaos.Plan, now func() int64) *diffHarness {
	t.Helper()
	names := []string{"user-00", "zombie-01", "zombie-02"}
	r := newRig(t, names, []string{"zombie-01", "zombie-02"})
	var transport Transport
	if ledger {
		transport = LedgerTransport{Model: r.fabric.Model()}
	}
	p, err := New(Config{
		VM:         "vm",
		LocalBytes: 4 * DefaultPageSize,
		Agent:      r.user(t, names),
		Transport:  transport,
		Cost:       r.fabric.Model(),
		Chaos:      plan,
		Now:        now,
	})
	if err != nil {
		t.Fatal(err)
	}
	return &diffHarness{rig: r, plane: p}
}

// apply replays one op, returning the bytes completed and a comparable
// outcome signature.
func (h *diffHarness) apply(op diffOp, buf []byte) (int, string) {
	if op.write {
		n, ns, err := h.plane.Write(op.addr, buf[:op.size])
		return n, fmt.Sprintf("w n=%d ns=%d timeout=%v", n, ns, errors.Is(err, ErrRemoteTimeout))
	}
	n, ns, err := h.plane.Read(op.addr, buf[:op.size])
	return n, fmt.Sprintf("r n=%d ns=%d timeout=%v", n, ns, errors.Is(err, ErrRemoteTimeout))
}

// runDifferential drives the same seeded stream through a byte-moving plane
// and the pure-ledger plane, comparing every op outcome and the final
// counters bit for bit. When crashAt is non-negative, both planes crash (and
// later re-home) zombie-01 at the same op index.
func runDifferential(t *testing.T, plan *chaos.Plan, crashAt int) {
	t.Helper()
	const nOps = 400
	span := int64(24) * DefaultPageSize

	var clock int64
	now := func() int64 { return clock }
	real := newDiffHarness(t, false, plan, now)
	ledger := newDiffHarness(t, true, plan, now)

	// An independent shadow of expected contents, for the read-back proof.
	shadow := make([]byte, span)
	written := make([]bool, span)

	victim := memctl.ServerID("zombie-01")
	rehomeAt := -1
	if crashAt >= 0 {
		rehomeAt = crashAt + nOps/4
	}
	ops := diffStream(42, nOps, span)
	bufA := make([]byte, 2*DefaultPageSize)
	bufB := make([]byte, 2*DefaultPageSize)
	for i, op := range ops {
		// One simulated second per op exercises chaos windows over the run.
		clock = int64(i)
		if i == crashAt {
			real.plane.CrashHost(victim)
			ledger.plane.CrashHost(victim)
		}
		if i == rehomeAt {
			repR, errR := real.plane.Rehome(victim)
			repL, errL := ledger.plane.Rehome(victim)
			if errR != nil || errL != nil {
				t.Fatalf("rehome: real=%v ledger=%v", errR, errL)
			}
			if repR != repL {
				t.Fatalf("rehome reports diverged: real %+v ledger %+v", repR, repL)
			}
		}
		fillPattern(bufA[:op.size], op.addr, byte(i))
		fillPattern(bufB[:op.size], op.addr, byte(i))
		done, outR := real.apply(op, bufA)
		_, outL := ledger.apply(op, bufB)
		if outR != outL {
			t.Fatalf("op %d (%+v) diverged:\n real   %s\n ledger %s", i, op, outR, outL)
		}
		if op.write {
			// Track expectations only for the bytes the write completed.
			copy(shadow[op.addr:op.addr+int64(done)], bufA[:done])
			for j := 0; j < done; j++ {
				written[op.addr+int64(j)] = true
			}
		}
	}

	// Bytes-moved, buffers-granted and charges are bit-identical.
	if sr, sl := real.plane.Stats(), ledger.plane.Stats(); sr != sl {
		t.Fatalf("stats diverged:\n real   %+v\n ledger %+v", sr, sl)
	}
	if ar, al := real.plane.AllocStats(), ledger.plane.AllocStats(); ar != al {
		t.Fatalf("alloc stats diverged:\n real   %+v\n ledger %+v", ar, al)
	}

	// The byte-moving plane must agree with the shadow everywhere that is
	// still reachable (re-home the victim first if it is still down).
	if crashAt >= 0 && rehomeAt >= nOps {
		if _, err := real.plane.Rehome(victim); err != nil {
			t.Fatal(err)
		}
		if _, err := ledger.plane.Rehome(victim); err != nil {
			t.Fatal(err)
		}
	}
	got := make([]byte, DefaultPageSize)
	for base := int64(0); base < span; base += DefaultPageSize {
		if _, _, err := real.plane.Read(base, got); err != nil {
			t.Fatalf("verify read at %d: %v", base, err)
		}
		for j := int64(0); j < DefaultPageSize; j++ {
			addr := base + j
			want := byte(0)
			if written[addr] {
				want = shadow[addr]
			}
			if got[j] != want {
				t.Fatalf("byte %d = %#x, want %#x (written=%v)", addr, got[j], want, written[addr])
			}
		}
	}
	if err := real.plane.Table().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestMemplaneMatchesLedger pins the data plane bit-identical to the
// pure-ledger cost arithmetic: same bytes moved, same buffers granted, same
// RDMA charges — fault-free and under the bundled "light" chaos scenario.
func TestMemplaneMatchesLedger(t *testing.T) {
	t.Run("fault-free", func(t *testing.T) {
		runDifferential(t, nil, -1)
	})
	t.Run("light-chaos", func(t *testing.T) {
		plan, err := chaos.Scenario("light", 400, 16, 7)
		if err != nil {
			t.Fatal(err)
		}
		// Derive the crash instant from the plan so the fault schedule, not
		// the test, decides when the data plane loses its serving host.
		crashAt := 100
		if crashes := plan.FaultsIn(chaos.ServerCrash, 0, 400); len(crashes) > 0 {
			crashAt = int(crashes[0].AtSec)
		}
		runDifferential(t, plan, crashAt)
	})
	t.Run("degraded-charges-differ-from-clean", func(t *testing.T) {
		// Sanity: the light plan must actually change charges somewhere,
		// otherwise the chaos leg of this test proves nothing.
		plan, err := chaos.Scenario("light", 400, 16, 7)
		if err != nil {
			t.Fatal(err)
		}
		degradedSomewhere := false
		for s := int64(0); s < 400; s++ {
			if plan.FabricFactorAt(s) > 1 {
				degradedSomewhere = true
				break
			}
		}
		if !degradedSomewhere {
			t.Skip("light plan has no fabric window inside the horizon; charges still compared above")
		}
	})
}

// TestDegradeArithmetic pins the shared degradation math.
func TestDegradeArithmetic(t *testing.T) {
	if got := degrade(1000, 1); got != 1000 {
		t.Fatalf("factor 1: %d", got)
	}
	if got := degrade(1000, 2.5); got != 2500 {
		t.Fatalf("factor 2.5: %d", got)
	}
	if got := degrade(1000, 0.5); got != 1000 {
		t.Fatalf("factor <1 must not speed up: %d", got)
	}
}
