package memplane

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/memctl"
)

// Errors returned by the page table.
var (
	ErrAlreadyMapped = errors.New("memplane: page is already mapped")
	ErrNotMapped     = errors.New("memplane: page is not mapped")
	ErrFrameAliased  = errors.New("memplane: frame is already mapped by another page")
)

// FrameKind distinguishes local frames (backed by the plane's arena) from
// remote frames (backed by a memctl-granted buffer on another server).
type FrameKind uint8

// The two frame kinds.
const (
	FrameLocal FrameKind = iota
	FrameRemote
)

// String names the kind.
func (k FrameKind) String() string {
	if k == FrameLocal {
		return "local"
	}
	return "remote"
}

// Frame is the physical backing of one virtual page: either an offset into a
// plane's local arena, or a slice of a remote buffer granted through the
// memctl protocol ({ServerID, BufferID, offset}).
type Frame struct {
	Kind FrameKind

	// Arena names the local arena a FrameLocal offset belongs to (the owning
	// plane's VM ID), so two planes sharing a page table cannot alias each
	// other's local offsets.
	Arena string
	// LocalOff is the byte offset into the arena (FrameLocal only).
	LocalOff int64

	// Host serves the remote buffer (FrameRemote only).
	Host memctl.ServerID
	// Buffer is the controller's buffer ID (FrameRemote only).
	Buffer memctl.BufferID
	// Offset is the frame's byte offset inside the buffer (FrameRemote only).
	Offset int64

	// rb is the live handle used by byte-moving transports.
	rb *memctl.RemoteBuffer
}

// Remote reports whether the frame lives on another server.
func (f Frame) Remote() bool { return f.Kind == FrameRemote }

// String renders the frame for diagnostics.
func (f Frame) String() string {
	if f.Kind == FrameLocal {
		return fmt.Sprintf("local{%s+%d}", f.Arena, f.LocalOff)
	}
	return fmt.Sprintf("remote{%s buf=%d off=%d}", f.Host, f.Buffer, f.Offset)
}

// frameKey is the identity of a frame for aliasing checks.
type frameKey struct {
	kind   FrameKind
	arena  string
	host   memctl.ServerID
	buffer memctl.BufferID
	off    int64
}

func keyOf(f Frame) frameKey {
	if f.Kind == FrameLocal {
		return frameKey{kind: FrameLocal, arena: f.Arena, off: f.LocalOff}
	}
	return frameKey{kind: FrameRemote, host: f.Host, buffer: f.Buffer, off: f.Offset}
}

// entryKey addresses one virtual page of one VM.
type entryKey struct {
	vm   string
	page int64
}

// PageTable translates (VM, page) to frames. It enforces the one invariant
// everything else rests on: no frame is ever mapped by two pages — two VMs
// (or two pages of one VM) can never alias the same physical backing. It is
// safe for concurrent use.
type PageTable struct {
	mu       sync.RWMutex
	pageSize int64
	entries  map[entryKey]Frame
	owners   map[frameKey]entryKey
}

// NewPageTable creates an empty table with the given page size.
func NewPageTable(pageSize int64) *PageTable {
	if pageSize <= 0 {
		pageSize = DefaultPageSize
	}
	return &PageTable{
		pageSize: pageSize,
		entries:  make(map[entryKey]Frame),
		owners:   make(map[frameKey]entryKey),
	}
}

// PageSize returns the table's page size.
func (t *PageTable) PageSize() int64 { return t.pageSize }

// Map installs a translation. It fails with ErrAlreadyMapped if the page has
// a frame and with ErrFrameAliased if the frame already backs another page.
func (t *PageTable) Map(vm string, page int64, f Frame) error {
	if page < 0 {
		return fmt.Errorf("memplane: negative page %d", page)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	ek := entryKey{vm: vm, page: page}
	if _, dup := t.entries[ek]; dup {
		return fmt.Errorf("%w: %s page %d", ErrAlreadyMapped, vm, page)
	}
	fk := keyOf(f)
	if owner, taken := t.owners[fk]; taken {
		return fmt.Errorf("%w: %s already backs %s page %d", ErrFrameAliased, f, owner.vm, owner.page)
	}
	t.entries[ek] = f
	t.owners[fk] = ek
	return nil
}

// Unmap removes a translation, returning the frame it held.
func (t *PageTable) Unmap(vm string, page int64) (Frame, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	ek := entryKey{vm: vm, page: page}
	f, ok := t.entries[ek]
	if !ok {
		return Frame{}, fmt.Errorf("%w: %s page %d", ErrNotMapped, vm, page)
	}
	delete(t.entries, ek)
	delete(t.owners, keyOf(f))
	return f, nil
}

// Remap atomically replaces the frame behind a mapped page (re-homing after a
// crash), returning the old frame. The new frame must not alias another page.
func (t *PageTable) Remap(vm string, page int64, f Frame) (Frame, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	ek := entryKey{vm: vm, page: page}
	old, ok := t.entries[ek]
	if !ok {
		return Frame{}, fmt.Errorf("%w: %s page %d", ErrNotMapped, vm, page)
	}
	fk := keyOf(f)
	if owner, taken := t.owners[fk]; taken && owner != ek {
		return Frame{}, fmt.Errorf("%w: %s already backs %s page %d", ErrFrameAliased, f, owner.vm, owner.page)
	}
	delete(t.owners, keyOf(old))
	t.entries[ek] = f
	t.owners[fk] = ek
	return old, nil
}

// Lookup returns the frame backing a page.
func (t *PageTable) Lookup(vm string, page int64) (Frame, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	f, ok := t.entries[entryKey{vm: vm, page: page}]
	return f, ok
}

// Len returns the number of live translations.
func (t *PageTable) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.entries)
}

// Pages returns the mapped pages of a VM, sorted.
func (t *PageTable) Pages(vm string) []int64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var out []int64
	for ek := range t.entries {
		if ek.vm == vm {
			out = append(out, ek.page)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// PagesOn returns the mapped pages of a VM whose frames live on the given
// host, sorted — the migration set when that host crashes.
func (t *PageTable) PagesOn(vm string, host memctl.ServerID) []int64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var out []int64
	for ek, f := range t.entries {
		if ek.vm == vm && f.Kind == FrameRemote && f.Host == host {
			out = append(out, ek.page)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// CheckInvariants verifies the table's internal consistency: the entry and
// owner indexes are exact mirrors, and no frame backs two pages.
func (t *PageTable) CheckInvariants() error {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if len(t.entries) != len(t.owners) {
		return fmt.Errorf("memplane: %d entries but %d frame owners", len(t.entries), len(t.owners))
	}
	for ek, f := range t.entries {
		owner, ok := t.owners[keyOf(f)]
		if !ok {
			return fmt.Errorf("memplane: frame %s of %s page %d missing from owner index", f, ek.vm, ek.page)
		}
		if owner != ek {
			return fmt.Errorf("memplane: frame %s mapped by %s page %d is owned by %s page %d",
				f, ek.vm, ek.page, owner.vm, owner.page)
		}
	}
	return nil
}
