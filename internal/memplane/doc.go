// Package memplane is the remote-memory data plane: the layer where zombie
// memory actually serves bytes instead of ledger entries.
//
// A Plane gives one VM an address space whose pages are backed either by a
// local arena (the fast path: a bounds-checked copy) or by remote frames
// carved out of buffers granted through memctl's GS_alloc_ext protocol — the
// memory a zombie server keeps serving from Sz. A PageTable translates
// (VM, page) to frames and enforces the no-aliasing invariant; the allocator
// is local-first up to a soft limit and then overflows to remote grants.
//
// The remote path runs behind a Transport: InProcessTransport issues real
// one-sided RDMA verbs against the granted regions, TCPTransport forwards
// the same operations over a loopback socket to a TCPServer fronting the
// handles, and LedgerTransport reproduces only the cost arithmetic of the
// simulator. All three charge identical nanoseconds for identical op
// sequences — the differential tests pin this — so the simulator's claims
// and the byte-moving plane can be cross-checked bit for bit.
//
// Chaos surfaces as data-plane behaviour rather than ledger penalties: a
// crashed serving host makes operations fail with ErrRemoteTimeout (reads
// come back short), FabricDegrade windows from a chaos plan multiply remote
// charges, and Rehome migrates the pages of a dead host onto freshly granted
// frames by replaying the local mirror — live bytes, not just entries.
package memplane
