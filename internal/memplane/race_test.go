package memplane

import (
	"bytes"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"

	"repro/internal/memctl"
)

// TestMemplaneUnderRace hammers one plane with concurrent writers and readers
// on disjoint page ranges while a chaos actor crashes, re-homes and revives
// zombie hosts. Run with -race this proves the plane's lock discipline; the
// shadow comparison proves no write is lost across a migration.
//
// Ops are full-page so they are all-or-nothing: a write either lands entirely
// (and is mirrored in the same critical section) or times out with zero bytes
// moved, which is what lets every worker treat "last successful write" as the
// page's exact expected content.
func TestMemplaneUnderRace(t *testing.T) {
	names := []string{"user-00", "zombie-01", "zombie-02", "zombie-03"}
	zombies := []string{"zombie-01", "zombie-02", "zombie-03"}
	r := newRig(t, names, zombies)

	p, err := New(Config{
		VM:         "vm",
		LocalBytes: 0, // force every page through the remote path
		Agent:      r.user(t, names),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	const (
		workers     = 4
		pagesPerW   = 4
		rounds      = 40
		chaosCycles = 6
		maxRetries  = 10_000
		totalPages  = workers * pagesPerW
	)
	ps := p.PageSize()

	// Touch every page once so the chaos actor always has mapped pages to
	// migrate and workers never allocate mid-crash.
	init := make([]byte, ps)
	for pg := int64(0); pg < totalPages; pg++ {
		fillPattern(init, pg*ps, 0)
		if _, _, err := p.Write(pg*ps, init); err != nil {
			t.Fatalf("seed page %d: %v", pg, err)
		}
	}

	// retry runs op until it stops timing out (crash windows are transient:
	// the chaos actor always re-homes and revives).
	retry := func(op func() error) error {
		for i := 0; i < maxRetries; i++ {
			err := op()
			if err == nil || !errors.Is(err, ErrRemoteTimeout) {
				return err
			}
			runtime.Gosched()
		}
		return fmt.Errorf("still timing out after %d attempts", maxRetries)
	}

	var wg sync.WaitGroup
	errc := make(chan error, workers+1)

	// The chaos actor: crash a zombie, migrate its pages, bring it back.
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(stop)
		for cycle := 0; cycle < chaosCycles; cycle++ {
			victim := memctl.ServerID(zombies[cycle%len(zombies)])
			p.CrashHost(victim)
			if _, err := p.Rehome(victim); err != nil {
				errc <- fmt.Errorf("rehome %s: %v", victim, err)
				return
			}
			p.ReviveHost(victim)
			runtime.Gosched()
		}
	}()

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := int64(w * pagesPerW)
			// last[i] is the salt of page base+i's last successful write.
			last := make([]byte, pagesPerW)
			buf := make([]byte, ps)
			got := make([]byte, ps)
			for round := 0; round < rounds; round++ {
				pg := base + int64(round%pagesPerW)
				salt := byte(round + 1)
				fillPattern(buf, pg*ps, salt)
				err := retry(func() error {
					_, _, err := p.Write(pg*ps, buf)
					return err
				})
				if err != nil {
					errc <- fmt.Errorf("worker %d write page %d: %v", w, pg, err)
					return
				}
				last[round%pagesPerW] = salt
				err = retry(func() error {
					_, _, err := p.Read(pg*ps, got)
					return err
				})
				if err != nil {
					errc <- fmt.Errorf("worker %d read page %d: %v", w, pg, err)
					return
				}
				if !bytes.Equal(got, buf) {
					errc <- fmt.Errorf("worker %d page %d: read differs from last write (salt %d)", w, pg, salt)
					return
				}
			}
			// Final sweep: every page of this worker still holds its last
			// successful write, across however many migrations it survived.
			<-stop
			want := make([]byte, ps)
			for i := 0; i < pagesPerW; i++ {
				if last[i] == 0 {
					continue
				}
				pg := base + int64(i)
				fillPattern(want, pg*ps, last[i])
				if err := retry(func() error {
					_, _, err := p.Read(pg*ps, got)
					return err
				}); err != nil {
					errc <- fmt.Errorf("worker %d final read page %d: %v", w, pg, err)
					return
				}
				if !bytes.Equal(got, want) {
					errc <- fmt.Errorf("worker %d page %d lost its last write across migrations", w, pg)
					return
				}
			}
		}(w)
	}

	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
	if err := p.Table().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if got := p.Table().Len(); got != totalPages {
		t.Fatalf("table holds %d pages, want %d", got, totalPages)
	}
}
