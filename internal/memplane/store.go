package memplane

import (
	"fmt"

	"repro/internal/hypervisor"
)

// PageStore adapts a plane into the hypervisor's slot-granular RemoteStore,
// so RAM Ext paging (and the explicit swap devices built on it) can demote
// pages straight into the data plane instead of a striped ledger store. Build
// the plane with LocalBytes 0 when the store must be purely remote.
type PageStore struct {
	p     *Plane
	slots int
}

var _ hypervisor.RemoteStore = (*PageStore)(nil)

// NewPageStore exposes slots pages of the plane's address space as a store.
func NewPageStore(p *Plane, slots int) (*PageStore, error) {
	if p == nil {
		return nil, fmt.Errorf("memplane: page store needs a plane")
	}
	if slots <= 0 {
		return nil, fmt.Errorf("memplane: page store needs positive slots, got %d", slots)
	}
	if p.cfg.AddressBytes > 0 && int64(slots)*p.PageSize() > p.cfg.AddressBytes {
		return nil, fmt.Errorf("memplane: %d slots exceed the plane's %d-byte address space", slots, p.cfg.AddressBytes)
	}
	return &PageStore{p: p, slots: slots}, nil
}

// Slots implements hypervisor.RemoteStore.
func (s *PageStore) Slots() int { return s.slots }

// WritePage implements hypervisor.RemoteStore.
func (s *PageStore) WritePage(slot int, page []byte) (int64, error) {
	_, ns, err := s.p.Write(int64(slot)*s.p.PageSize(), page)
	return ns, err
}

// ReadPage implements hypervisor.RemoteStore.
func (s *PageStore) ReadPage(slot int, dst []byte) (int64, error) {
	_, ns, err := s.p.Read(int64(slot)*s.p.PageSize(), dst)
	return ns, err
}
