package memplane

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/hypervisor"
	"repro/internal/memctl"
	"repro/internal/pagepolicy"
)

func TestPlaneLocalFastPath(t *testing.T) {
	p, err := New(Config{VM: "vm", LocalBytes: 4 * DefaultPageSize})
	if err != nil {
		t.Fatal(err)
	}
	src := make([]byte, DefaultPageSize)
	fillPattern(src, 0, 1)
	n, ns, err := p.Write(0, src)
	if err != nil || n != len(src) {
		t.Fatalf("write: n=%d err=%v", n, err)
	}
	if ns != DefaultLocalNs {
		t.Fatalf("local write charged %d, want %d", ns, DefaultLocalNs)
	}
	dst := make([]byte, DefaultPageSize)
	if _, _, err := p.Read(0, dst); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(src, dst) {
		t.Fatal("local read-back mismatch")
	}
	st := p.Stats()
	if st.RemoteOps != 0 || st.LocalOps != 2 {
		t.Fatalf("stats: %+v", st)
	}
	if as := p.AllocStats(); as.LocalFrames != 1 || as.RemoteFrames != 0 {
		t.Fatalf("alloc stats: %+v", as)
	}
}

func TestPlaneZeroFillAndUnalignedSpans(t *testing.T) {
	p, err := New(Config{VM: "vm", LocalBytes: 8 * DefaultPageSize})
	if err != nil {
		t.Fatal(err)
	}
	// A read of untouched memory returns zeros without allocating frames.
	dst := make([]byte, 3*DefaultPageSize)
	dst[0] = 0xFF
	if n, _, err := p.Read(DefaultPageSize/2, dst); err != nil || n != len(dst) {
		t.Fatalf("read: n=%d err=%v", n, err)
	}
	for i, b := range dst {
		if b != 0 {
			t.Fatalf("byte %d = %#x, want 0", i, b)
		}
	}
	if as := p.AllocStats(); as.LocalFrames != 0 {
		t.Fatalf("zero-fill read allocated %d frames", as.LocalFrames)
	}
	// An unaligned write spanning two pages reads back exactly.
	src := make([]byte, DefaultPageSize)
	fillPattern(src, 0, 9)
	addr := DefaultPageSize + DefaultPageSize/2
	if _, _, err := p.Write(addr, src); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(src))
	if _, _, err := p.Read(addr, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(src, got) {
		t.Fatal("unaligned read-back mismatch")
	}
}

// TestPlaneBytesTraverseZombieBuffer is the acceptance check of the data
// plane: a workload's bytes verifiably land in (and come back out of) a
// buffer granted from a server suspended in Sz.
func TestPlaneBytesTraverseZombieBuffer(t *testing.T) {
	names := []string{"user-00", "zombie-01"}
	r := newRig(t, names, []string{"zombie-01"})
	p, err := New(Config{
		VM:         "vm",
		LocalBytes: DefaultPageSize, // one local page, everything else overflows
		Agent:      r.user(t, names),
		Cost:       r.fabric.Model(),
	})
	if err != nil {
		t.Fatal(err)
	}
	// The zombie's posture: NIC down (cannot initiate) but memory serving.
	if r.devices["zombie-01"].Up() || !r.devices["zombie-01"].Serving() {
		t.Fatal("zombie device posture wrong")
	}
	// Write past the local arena so pages overflow to granted frames.
	pages := int64(6)
	for pg := int64(0); pg < pages; pg++ {
		src := make([]byte, DefaultPageSize)
		fillPattern(src, pg*DefaultPageSize, 3)
		if _, _, err := p.Write(pg*DefaultPageSize, src); err != nil {
			t.Fatalf("write page %d: %v", pg, err)
		}
	}
	// The overflow frames must be hosted by the zombie.
	if got := p.Table().PagesOn("vm", "zombie-01"); len(got) != int(pages)-1 {
		t.Fatalf("zombie hosts %d pages, want %d", len(got), pages-1)
	}
	// Read-back equals written data through the remote path.
	for pg := int64(0); pg < pages; pg++ {
		want := make([]byte, DefaultPageSize)
		fillPattern(want, pg*DefaultPageSize, 3)
		got := make([]byte, DefaultPageSize)
		if _, _, err := p.Read(pg*DefaultPageSize, got); err != nil {
			t.Fatalf("read page %d: %v", pg, err)
		}
		if !bytes.Equal(want, got) {
			t.Fatalf("page %d read-back mismatch", pg)
		}
	}
	// The fabric really moved the bytes.
	fs := r.fabric.Stats()
	wantRemote := uint64(pages-1) * uint64(DefaultPageSize)
	if fs.BytesWritten != wantRemote || fs.BytesRead != wantRemote {
		t.Fatalf("fabric moved w=%d r=%d bytes, want %d each", fs.BytesWritten, fs.BytesRead, wantRemote)
	}
	st := p.Stats()
	if st.RemoteBytesWritten != wantRemote || st.RemoteBytesRead != wantRemote {
		t.Fatalf("plane remote bytes w=%d r=%d, want %d", st.RemoteBytesWritten, st.RemoteBytesRead, wantRemote)
	}
	// The remote charge matches the rdma cost model exactly.
	model := r.fabric.Model()
	perOp := model.TransferNs(model.OneSidedLatencyNs, int(DefaultPageSize))
	if want := perOp * 2 * (pages - 1); st.RemoteNs != want {
		t.Fatalf("remote charge %d, want %d", st.RemoteNs, want)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if used := r.user(t, names).UsedBuffers(); used != 0 {
		t.Fatalf("%d buffers still held after Close", used)
	}
}

func TestPlaneCrashSurfacesTimeoutsAndShortReads(t *testing.T) {
	names := []string{"user-00", "zombie-01"}
	r := newRig(t, names, []string{"zombie-01"})
	p, err := New(Config{
		VM:         "vm",
		LocalBytes: DefaultPageSize,
		Agent:      r.user(t, names),
		Cost:       r.fabric.Model(),
	})
	if err != nil {
		t.Fatal(err)
	}
	// Page 0 local, page 1 remote.
	buf := make([]byte, 2*DefaultPageSize)
	fillPattern(buf, 0, 5)
	if _, _, err := p.Write(0, buf); err != nil {
		t.Fatal(err)
	}
	p.CrashHost("zombie-01")
	// A spanning read completes the local page then times out: short read.
	dst := make([]byte, 2*DefaultPageSize)
	n, ns, err := p.Read(0, dst)
	if !errors.Is(err, ErrRemoteTimeout) {
		t.Fatalf("read err = %v, want ErrRemoteTimeout", err)
	}
	if n != int(DefaultPageSize) {
		t.Fatalf("short read returned %d bytes, want %d", n, DefaultPageSize)
	}
	if !bytes.Equal(dst[:n], buf[:n]) {
		t.Fatal("short read local prefix corrupted")
	}
	if want := DefaultLocalNs + DefaultTimeoutNs; ns != want {
		t.Fatalf("short read charged %d, want %d", ns, want)
	}
	// Writes to the crashed host time out too.
	if _, _, err := p.Write(DefaultPageSize, buf[:16]); !errors.Is(err, ErrRemoteTimeout) {
		t.Fatalf("write err = %v, want ErrRemoteTimeout", err)
	}
	st := p.Stats()
	if st.Timeouts != 2 || st.ShortReads != 1 {
		t.Fatalf("stats: timeouts=%d shortReads=%d", st.Timeouts, st.ShortReads)
	}
	// Revival restores service.
	p.ReviveHost("zombie-01")
	if _, _, err := p.Read(0, dst); err != nil {
		t.Fatalf("read after revive: %v", err)
	}
	if !bytes.Equal(dst, buf) {
		t.Fatal("read-back after revive mismatch")
	}
}

func TestPlaneRehomeMigratesLivePages(t *testing.T) {
	names := []string{"user-00", "zombie-01", "zombie-02"}
	r := newRig(t, names, []string{"zombie-01", "zombie-02"})
	p, err := New(Config{
		VM:         "vm",
		LocalBytes: DefaultPageSize,
		Agent:      r.user(t, names),
		Cost:       r.fabric.Model(),
		GrantBytes: rigBufSize,
	})
	if err != nil {
		t.Fatal(err)
	}
	pages := int64(5)
	for pg := int64(0); pg < pages; pg++ {
		src := make([]byte, DefaultPageSize)
		fillPattern(src, pg*DefaultPageSize, 7)
		if _, _, err := p.Write(pg*DefaultPageSize, src); err != nil {
			t.Fatal(err)
		}
	}
	victim := memctl.ServerID("zombie-01")
	lost := p.Table().PagesOn("vm", victim)
	if len(lost) == 0 {
		t.Fatal("victim hosts no pages; sizing is off")
	}
	p.CrashHost(victim)
	rep, err := p.Rehome(victim)
	if err != nil {
		t.Fatalf("rehome: %v", err)
	}
	if rep.Pages != len(lost) || rep.Bytes != int64(len(lost))*DefaultPageSize {
		t.Fatalf("rehome report %+v, want %d pages", rep, len(lost))
	}
	if rep.Ns <= 0 {
		t.Fatal("rehome charged nothing")
	}
	if after := p.Table().PagesOn("vm", victim); len(after) != 0 {
		t.Fatalf("%d pages still on crashed host", len(after))
	}
	// Every byte survives the migration, host still crashed.
	for pg := int64(0); pg < pages; pg++ {
		want := make([]byte, DefaultPageSize)
		fillPattern(want, pg*DefaultPageSize, 7)
		got := make([]byte, DefaultPageSize)
		if _, _, err := p.Read(pg*DefaultPageSize, got); err != nil {
			t.Fatalf("read page %d after rehome: %v", pg, err)
		}
		if !bytes.Equal(want, got) {
			t.Fatalf("page %d lost data in rehome", pg)
		}
	}
	st := p.Stats()
	if st.RehomedPages != uint64(len(lost)) {
		t.Fatalf("stats.RehomedPages = %d, want %d", st.RehomedPages, len(lost))
	}
	if err := p.Table().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestPlaneFreeScrubsAndReuses(t *testing.T) {
	p, err := New(Config{VM: "vm", LocalBytes: DefaultPageSize})
	if err != nil {
		t.Fatal(err)
	}
	src := make([]byte, DefaultPageSize)
	fillPattern(src, 0, 2)
	if _, _, err := p.Write(0, src); err != nil {
		t.Fatal(err)
	}
	if err := p.Free(0); err != nil {
		t.Fatal(err)
	}
	// The arena's only frame is recycled for page 1; page 0 reads zeros.
	if _, _, err := p.Write(DefaultPageSize, src[:8]); err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, 8)
	if _, _, err := p.Read(0, dst); err != nil {
		t.Fatal(err)
	}
	for _, b := range dst {
		if b != 0 {
			t.Fatal("freed page leaked previous contents")
		}
	}
	// Free of an unmapped page is a no-op.
	if err := p.Free(42 * DefaultPageSize); err != nil {
		t.Fatal(err)
	}
}

func TestPlaneAddressBounds(t *testing.T) {
	p, err := New(Config{VM: "vm", LocalBytes: DefaultPageSize, AddressBytes: 2 * DefaultPageSize})
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 16)
	if _, _, err := p.Write(2*DefaultPageSize-8, buf); !errors.Is(err, ErrBadAddress) {
		t.Fatalf("out-of-bounds write: %v", err)
	}
	if _, _, err := p.Read(-1, buf); !errors.Is(err, ErrBadAddress) {
		t.Fatalf("negative read: %v", err)
	}
}

// TestPageStoreBacksRAMExt proves the hypervisor consumer: RAM Ext paging
// demotes and promotes pages through the data plane's store adapter.
func TestPageStoreBacksRAMExt(t *testing.T) {
	names := []string{"user-00", "zombie-01"}
	r := newRig(t, names, []string{"zombie-01"})
	// A purely-remote plane: every store slot lives on the zombie.
	p, err := New(Config{
		VM:    "vm-store",
		Agent: r.user(t, names),
		Cost:  r.fabric.Model(),
	})
	if err != nil {
		t.Fatal(err)
	}
	store, err := NewPageStore(p, 16)
	if err != nil {
		t.Fatal(err)
	}
	ram, err := hypervisor.NewRAMExt(hypervisor.Config{
		Pages:       16,
		LocalFrames: 4,
		Policy:      pagepolicy.NewMixed(pagepolicy.DefaultCost(), pagepolicy.DefaultMixedWindow),
		Remote:      store,
		Cost:        hypervisor.DefaultCostModel(),
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		if _, err := ram.Access(i%16, i%3 == 0); err != nil {
			t.Fatalf("access %d: %v", i, err)
		}
	}
	if err := ram.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if st := p.Stats(); st.RemoteOps == 0 {
		t.Fatal("paging never touched the data plane")
	}
	if fs := r.fabric.Stats(); fs.BytesWritten == 0 {
		t.Fatal("no bytes crossed the fabric")
	}
}

// TestLedgerTransportChargesMatchQP pins the ledger arithmetic to the queue
// pair implementation for a spread of sizes.
func TestLedgerTransportChargesMatchQP(t *testing.T) {
	names := []string{"user-00", "zombie-01"}
	r := newRig(t, names, []string{"zombie-01"})
	agent := r.user(t, names)
	bufs, err := agent.RequestExt(rigBufSize)
	if err != nil {
		t.Fatal(err)
	}
	ledger := LedgerTransport{Model: r.fabric.Model()}
	frame := Frame{Kind: FrameRemote, Host: bufs[0].Host, Buffer: bufs[0].ID, Offset: 0, rb: bufs[0]}
	for _, size := range []int{1, 16, 4096, 12000} {
		src := make([]byte, size)
		real, err := (InProcessTransport{}).WriteRemote(frame, 0, src)
		if err != nil {
			t.Fatalf("size %d: %v", size, err)
		}
		paper, err := ledger.WriteRemote(frame, 0, src)
		if err != nil {
			t.Fatal(err)
		}
		if real != paper {
			t.Fatalf("size %d: qp charged %d, ledger %d", size, real, paper)
		}
	}
}

// TestPlaneRequiresBacking pins constructor validation.
func TestPlaneRequiresBacking(t *testing.T) {
	if _, err := New(Config{VM: "vm"}); err == nil {
		t.Fatal("plane with no arena, buffers or agent must be rejected")
	}
	if _, err := New(Config{LocalBytes: DefaultPageSize}); err == nil {
		t.Fatal("plane without a VM name must be rejected")
	}
	if _, err := New(Config{VM: "vm", LocalBytes: 100}); err == nil {
		t.Fatal("non-page-multiple local size must be rejected")
	}
	if _, err := New(Config{VM: "vm", LocalBytes: DefaultPageSize, Table: NewPageTable(8192)}); err == nil {
		t.Fatal("page-size mismatch with shared table must be rejected")
	}
}

// TestPlaneClosedRejectsOps pins ErrClosed.
func TestPlaneClosedRejectsOps(t *testing.T) {
	p, err := New(Config{VM: "vm", LocalBytes: DefaultPageSize})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := p.Write(0, []byte{1}); !errors.Is(err, ErrClosed) {
		t.Fatalf("write after close: %v", err)
	}
	if _, _, err := p.Read(0, make([]byte, 1)); !errors.Is(err, ErrClosed) {
		t.Fatalf("read after close: %v", err)
	}
	if err := p.Close(); err != nil {
		t.Fatal("double close must be a no-op")
	}
}
