package memplane

import (
	"fmt"

	"repro/internal/rdma"
)

// Transport moves bytes between the plane and a remote frame. The returned
// latency is the fabric charge in nanoseconds, BEFORE any chaos degradation
// (the plane applies the degradation factor itself so that every transport
// prices faults identically).
type Transport interface {
	// WriteRemote copies src into the frame at off.
	WriteRemote(f Frame, off int64, src []byte) (int64, error)
	// ReadRemote copies len(dst) bytes from the frame at off into dst.
	ReadRemote(f Frame, off int64, dst []byte) (int64, error)
	// MovesBytes reports whether the transport actually serves data; the
	// ledger transport only does the cost arithmetic.
	MovesBytes() bool
}

// InProcessTransport serves frames through the live memctl handles: every
// operation is a one-sided RDMA verb against the granted buffer's registered
// region, so bytes really land in (and come back out of) the serving host's
// memory, priced by the fabric's cost model.
type InProcessTransport struct{}

// WriteRemote implements Transport with a one-sided RDMA WRITE.
func (InProcessTransport) WriteRemote(f Frame, off int64, src []byte) (int64, error) {
	if f.rb == nil {
		return 0, fmt.Errorf("memplane: frame %s has no live buffer handle", f)
	}
	return f.rb.WriteRemote(f.Offset+off, src)
}

// ReadRemote implements Transport with a one-sided RDMA READ.
func (InProcessTransport) ReadRemote(f Frame, off int64, dst []byte) (int64, error) {
	if f.rb == nil {
		return 0, fmt.Errorf("memplane: frame %s has no live buffer handle", f)
	}
	return f.rb.ReadRemote(f.Offset+off, dst)
}

// MovesBytes implements Transport.
func (InProcessTransport) MovesBytes() bool { return true }

// LedgerTransport is the pure-accounting path the repo had before the data
// plane existed: it charges exactly what the fabric would (TransferNs over
// the one-sided base latency) but moves no bytes. The differential tests pin
// the byte-moving transports bit-identical to it.
type LedgerTransport struct {
	Model rdma.CostModel
}

// WriteRemote implements Transport by pricing the transfer only.
func (l LedgerTransport) WriteRemote(f Frame, off int64, src []byte) (int64, error) {
	return l.Model.TransferNs(l.Model.OneSidedLatencyNs, len(src)), nil
}

// ReadRemote implements Transport by pricing the transfer only.
func (l LedgerTransport) ReadRemote(f Frame, off int64, dst []byte) (int64, error) {
	return l.Model.TransferNs(l.Model.OneSidedLatencyNs, len(dst)), nil
}

// MovesBytes implements Transport.
func (LedgerTransport) MovesBytes() bool { return false }
