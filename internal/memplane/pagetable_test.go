package memplane

import (
	"errors"
	"testing"

	"repro/internal/memctl"
)

func localFrame(arena string, off int64) Frame {
	return Frame{Kind: FrameLocal, Arena: arena, LocalOff: off}
}

func remoteFrame(host string, buf memctl.BufferID, off int64) Frame {
	return Frame{Kind: FrameRemote, Host: memctl.ServerID(host), Buffer: buf, Offset: off}
}

func TestPageTableMapUnmap(t *testing.T) {
	pt := NewPageTable(4096)
	if err := pt.Map("vm-a", 0, localFrame("vm-a", 0)); err != nil {
		t.Fatalf("map: %v", err)
	}
	if err := pt.Map("vm-a", 0, localFrame("vm-a", 4096)); !errors.Is(err, ErrAlreadyMapped) {
		t.Fatalf("remap without unmap: got %v, want ErrAlreadyMapped", err)
	}
	f, ok := pt.Lookup("vm-a", 0)
	if !ok || f.LocalOff != 0 {
		t.Fatalf("lookup: got %v %v", f, ok)
	}
	if _, ok := pt.Lookup("vm-b", 0); ok {
		t.Fatal("vm-b must not see vm-a's mapping")
	}
	got, err := pt.Unmap("vm-a", 0)
	if err != nil || got.LocalOff != 0 {
		t.Fatalf("unmap: %v %v", got, err)
	}
	if _, err := pt.Unmap("vm-a", 0); !errors.Is(err, ErrNotMapped) {
		t.Fatalf("double unmap: got %v, want ErrNotMapped", err)
	}
	if err := pt.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestPageTableRejectsAliasing(t *testing.T) {
	pt := NewPageTable(4096)
	shared := remoteFrame("zombie-01", 7, 8192)
	if err := pt.Map("vm-a", 3, shared); err != nil {
		t.Fatalf("map: %v", err)
	}
	// The same remote frame must not back another VM's page...
	if err := pt.Map("vm-b", 3, shared); !errors.Is(err, ErrFrameAliased) {
		t.Fatalf("cross-VM alias: got %v, want ErrFrameAliased", err)
	}
	// ...nor another page of the same VM.
	if err := pt.Map("vm-a", 4, shared); !errors.Is(err, ErrFrameAliased) {
		t.Fatalf("same-VM alias: got %v, want ErrFrameAliased", err)
	}
	// Local frames of different arenas with equal offsets do NOT alias.
	if err := pt.Map("vm-a", 5, localFrame("vm-a", 0)); err != nil {
		t.Fatalf("map local: %v", err)
	}
	if err := pt.Map("vm-b", 5, localFrame("vm-b", 0)); err != nil {
		t.Fatalf("distinct arenas must not alias: %v", err)
	}
	// Same arena + same offset does.
	if err := pt.Map("vm-b", 6, localFrame("vm-a", 0)); !errors.Is(err, ErrFrameAliased) {
		t.Fatalf("same-arena alias: got %v, want ErrFrameAliased", err)
	}
	if err := pt.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestPageTableRemap(t *testing.T) {
	pt := NewPageTable(4096)
	oldF := remoteFrame("zombie-01", 1, 0)
	newF := remoteFrame("zombie-02", 2, 0)
	if err := pt.Map("vm", 9, oldF); err != nil {
		t.Fatal(err)
	}
	got, err := pt.Remap("vm", 9, newF)
	if err != nil {
		t.Fatalf("remap: %v", err)
	}
	if got.Host != "zombie-01" {
		t.Fatalf("remap returned %v, want the old frame", got)
	}
	// The old frame is free again.
	if err := pt.Map("vm", 10, oldF); err != nil {
		t.Fatalf("old frame should be reusable: %v", err)
	}
	// Remapping an unmapped page fails.
	if _, err := pt.Remap("vm", 99, oldF); !errors.Is(err, ErrNotMapped) {
		t.Fatalf("remap unmapped: got %v", err)
	}
	// Remapping onto a frame owned elsewhere fails.
	if _, err := pt.Remap("vm", 10, newF); !errors.Is(err, ErrFrameAliased) {
		t.Fatalf("remap alias: got %v", err)
	}
	if err := pt.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestPageTablePagesOn(t *testing.T) {
	pt := NewPageTable(4096)
	for i, f := range []Frame{
		remoteFrame("z1", 1, 0),
		remoteFrame("z2", 2, 0),
		remoteFrame("z1", 1, 4096),
		localFrame("vm", 0),
	} {
		if err := pt.Map("vm", int64(3-i), f); err != nil {
			t.Fatal(err)
		}
	}
	got := pt.PagesOn("vm", "z1")
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("PagesOn(z1) = %v, want [1 3]", got)
	}
	if pages := pt.Pages("vm"); len(pages) != 4 || pages[0] != 0 || pages[3] != 3 {
		t.Fatalf("Pages = %v", pages)
	}
	if pt.Len() != 4 {
		t.Fatalf("Len = %d", pt.Len())
	}
}
