package memplane

import (
	"errors"
	"fmt"

	"repro/internal/memctl"
)

// ErrOutOfMemory is returned when neither the local arena nor a memctl grant
// can back another frame.
var ErrOutOfMemory = errors.New("memplane: out of local and remote memory")

// allocator hands out frames: local arena offsets up to a soft limit, then
// remote frames carved from buffers granted through the agent's GS_alloc_ext
// path (the soft-limit overflow shape of SNIPPETS §3). It is not safe for
// concurrent use; the owning Plane serialises access.
type allocator struct {
	vm       string
	pageSize int64

	arena     []byte
	softLimit int64
	nextLocal int64
	freeLocal []int64

	agent      *memctl.Agent
	grantBytes int64

	// The remote free list is bucketed per serving host (buckets in
	// first-carve order, each a FIFO with a compacted consumed prefix), so a
	// pop is O(hosts) even when a crash forces every frame of a dead host to
	// be avoided. uncarved holds owned buffers not yet sliced into frames —
	// carving is lazy, so seeding a plane with a reservation far larger than
	// its address space costs nothing up front.
	remote    []*hostBucket
	remoteIdx map[memctl.ServerID]*hostBucket
	uncarved  []*memctl.RemoteBuffer
	handles   []*memctl.RemoteBuffer

	stats AllocStats
}

// hostBucket is one serving host's free frames, popped FIFO.
type hostBucket struct {
	host   memctl.ServerID
	frames []Frame
	head   int
}

func (b *hostBucket) push(f Frame) { b.frames = append(b.frames, f) }

func (b *hostBucket) pop() (Frame, bool) {
	if b.head >= len(b.frames) {
		return Frame{}, false
	}
	f := b.frames[b.head]
	b.frames[b.head] = Frame{}
	b.head++
	if b.head > 1024 && b.head*2 >= len(b.frames) {
		b.frames = append(b.frames[:0:0], b.frames[b.head:]...)
		b.head = 0
	}
	return f, true
}

// AllocStats summarises the allocator's footprint.
type AllocStats struct {
	// LocalFrames and RemoteFrames count frames currently handed out.
	LocalFrames  int
	RemoteFrames int
	// BuffersGranted counts the memctl buffers carved into frames (seeded
	// buffers count once they actually back pages); GrantedBytes their total
	// size; GrantCalls the number of GS_alloc_ext round-trips the allocator
	// itself made.
	BuffersGranted int
	GrantedBytes   int64
	GrantCalls     int
	// DiscardedFrames counts remote frames abandoned on a crashed host.
	DiscardedFrames int
}

func newAllocator(vm string, pageSize, localBytes, softLimit int64, agent *memctl.Agent, grantBytes int64, seed []*memctl.RemoteBuffer) *allocator {
	if softLimit <= 0 || softLimit > localBytes {
		softLimit = localBytes
	}
	al := &allocator{
		vm:         vm,
		pageSize:   pageSize,
		arena:      make([]byte, localBytes),
		softLimit:  softLimit,
		agent:      agent,
		grantBytes: grantBytes,
	}
	for _, rb := range seed {
		if rb == nil {
			continue
		}
		al.handles = append(al.handles, rb)
		al.uncarved = append(al.uncarved, rb)
	}
	return al
}

// bucket returns (creating on first sight) the host's free-frame bucket.
func (al *allocator) bucket(host memctl.ServerID) *hostBucket {
	if b, ok := al.remoteIdx[host]; ok {
		return b
	}
	if al.remoteIdx == nil {
		al.remoteIdx = make(map[memctl.ServerID]*hostBucket)
	}
	b := &hostBucket{host: host}
	al.remoteIdx[host] = b
	al.remote = append(al.remote, b)
	return b
}

// carve slices an owned buffer into page frames on the remote free list.
func (al *allocator) carve(rb *memctl.RemoteBuffer) {
	al.stats.BuffersGranted++
	al.stats.GrantedBytes += rb.Size
	b := al.bucket(rb.Host)
	for off := int64(0); off+al.pageSize <= rb.Size; off += al.pageSize {
		b.push(Frame{
			Kind:   FrameRemote,
			Host:   rb.Host,
			Buffer: rb.ID,
			Offset: off,
			rb:     rb,
		})
	}
}

// popRemote takes the next free frame not hosted by an avoided server,
// walking the buckets in first-carve order.
func (al *allocator) popRemote(avoid map[memctl.ServerID]bool) (Frame, bool) {
	for _, b := range al.remote {
		if avoid != nil && avoid[b.host] {
			continue
		}
		if f, ok := b.pop(); ok {
			al.stats.RemoteFrames++
			return f, true
		}
	}
	return Frame{}, false
}

// alloc returns the next frame: local until the soft limit, then remote.
func (al *allocator) alloc() (Frame, error) {
	if n := len(al.freeLocal); n > 0 {
		off := al.freeLocal[n-1]
		al.freeLocal = al.freeLocal[:n-1]
		al.stats.LocalFrames++
		return Frame{Kind: FrameLocal, Arena: al.vm, LocalOff: off}, nil
	}
	if al.nextLocal+al.pageSize <= al.softLimit {
		off := al.nextLocal
		al.nextLocal += al.pageSize
		al.stats.LocalFrames++
		return Frame{Kind: FrameLocal, Arena: al.vm, LocalOff: off}, nil
	}
	return al.allocRemote(nil)
}

// allocRemote returns a remote frame not hosted by any avoided server,
// growing through the grant protocol when the free list runs dry. Grants
// that land on avoided hosts (the controller does not know they crashed) are
// quarantined and handed straight back once a healthy frame is found, so the
// loop drains the dead host's pool instead of spinning on it.
func (al *allocator) allocRemote(avoid map[memctl.ServerID]bool) (Frame, error) {
	var quarantine []*memctl.RemoteBuffer
	bail := func(err error) (Frame, error) {
		if len(quarantine) > 0 {
			_ = memctl.ReleaseHandles(quarantine)
		}
		return Frame{}, err
	}
	for {
		if f, ok := al.popRemote(avoid); ok {
			if len(quarantine) > 0 {
				if err := memctl.ReleaseHandles(quarantine); err != nil {
					return Frame{}, err
				}
			}
			return f, nil
		}
		// Carve the next owned-but-unsliced buffer before asking the
		// controller for more. Avoided ones stay uncarved (they are the
		// plane's to keep, usable again after a revive) — carving a dead
		// host's reservation would only bloat the free list.
		if i := nextUncarved(al.uncarved, avoid); i >= 0 {
			rb := al.uncarved[i]
			al.uncarved = append(al.uncarved[:i], al.uncarved[i+1:]...)
			al.carve(rb)
			continue
		}
		if al.agent == nil {
			return bail(fmt.Errorf("%w: no agent to grow through", ErrOutOfMemory))
		}
		bufs, err := al.agent.RequestExt(al.grantBytes)
		if err != nil {
			return bail(fmt.Errorf("%w: %v", ErrOutOfMemory, err))
		}
		al.stats.GrantCalls++
		for _, rb := range bufs {
			if avoid != nil && avoid[rb.Host] {
				quarantine = append(quarantine, rb)
				continue
			}
			al.handles = append(al.handles, rb)
			al.carve(rb)
		}
	}
}

// nextUncarved returns the index of the first uncarved buffer not hosted by
// an avoided server, or -1.
func nextUncarved(uncarved []*memctl.RemoteBuffer, avoid map[memctl.ServerID]bool) int {
	for i, rb := range uncarved {
		if avoid != nil && avoid[rb.Host] {
			continue
		}
		return i
	}
	return -1
}

// free returns a frame to the free lists.
func (al *allocator) free(f Frame) {
	if f.Kind == FrameLocal {
		al.freeLocal = append(al.freeLocal, f.LocalOff)
		al.stats.LocalFrames--
		return
	}
	al.bucket(f.Host).push(f)
	al.stats.RemoteFrames--
}

// discard drops a remote frame whose host crashed: its capacity is lost until
// the host is repaired, so it must not return to the free list.
func (al *allocator) discard(f Frame) {
	if f.Kind != FrameRemote {
		al.free(f)
		return
	}
	al.stats.RemoteFrames--
	al.stats.DiscardedFrames++
}

// close releases every granted buffer back to the controller.
func (al *allocator) close() error {
	handles := al.handles
	al.handles = nil
	al.uncarved = nil
	al.remote = nil
	al.remoteIdx = nil
	return memctl.ReleaseHandles(handles)
}
