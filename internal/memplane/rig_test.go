package memplane

import (
	"testing"

	"repro/internal/memctl"
	"repro/internal/rdma"
)

// rig is a miniature rack for data-plane tests: a fabric, a controller and a
// few agents, with the listed servers pushed into the zombie posture (device
// down but serving, memory delegated). Two rigs built from the same arguments
// are bit-identical — same buffer IDs, same rkeys — which is what the
// differential tests lean on.
type rig struct {
	fabric  *rdma.Fabric
	ctr     *memctl.GlobalController
	agents  map[string]*memctl.Agent
	devices map[string]*rdma.Device
}

const (
	rigBufSize  = int64(16 << 10) // 4 pages per buffer
	rigTotalMem = int64(256 << 10)
)

// newRig builds a rig. The first name is the user server (fully reserved, so
// it lends nothing); every name in zombies is delegated and suspended.
func newRig(t testing.TB, names, zombies []string) *rig {
	t.Helper()
	r := &rig{
		fabric:  rdma.NewFabric(rdma.DefaultCostModel()),
		agents:  make(map[string]*memctl.Agent),
		devices: make(map[string]*rdma.Device),
	}
	r.ctr = memctl.NewGlobalController(memctl.WithBufferSize(rigBufSize))
	resolve := func(id memctl.ServerID) *rdma.Device { return r.devices[string(id)] }
	for i, name := range names {
		dev, err := r.fabric.AttachDevice(name)
		if err != nil {
			t.Fatalf("attach %s: %v", name, err)
		}
		reserved := int64(0)
		if i == 0 {
			reserved = rigTotalMem // the user server keeps everything local
		}
		agent, err := memctl.NewAgent(memctl.AgentConfig{
			ID:            memctl.ServerID(name),
			Controller:    r.ctr,
			Device:        dev,
			TotalMem:      rigTotalMem,
			ReservedMem:   reserved,
			ResolveDevice: resolve,
		})
		if err != nil {
			t.Fatalf("agent %s: %v", name, err)
		}
		r.devices[name] = dev
		r.agents[name] = agent
	}
	for _, name := range zombies {
		if _, err := r.agents[name].DelegateAndGoZombie(); err != nil {
			t.Fatalf("zombie %s: %v", name, err)
		}
		r.devices[name].SetUp(false)
		r.devices[name].SetServing(true)
	}
	return r
}

// user returns the rig's user-server agent (the plane's growth path).
func (r *rig) user(t testing.TB, names []string) *memctl.Agent {
	t.Helper()
	return r.agents[names[0]]
}

// fillPattern writes a deterministic page-sized pattern for addr.
func fillPattern(dst []byte, addr int64, salt byte) {
	for i := range dst {
		dst[i] = byte(addr>>4) + byte(i)*7 + salt
	}
}
