package memplane

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/chaos"
	"repro/internal/memctl"
	"repro/internal/obs"
	"repro/internal/rdma"
)

// DefaultPageSize matches the guest page size used everywhere else.
const DefaultPageSize int64 = 4096

// Default charges. Local accesses model a page-sized memcpy; a timed-out
// remote operation burns a full retransmission window before the initiator
// gives up.
const (
	DefaultLocalNs   int64 = 100
	DefaultTimeoutNs int64 = 1_000_000
)

// Errors returned by the data plane.
var (
	ErrRemoteTimeout = errors.New("memplane: remote operation timed out")
	ErrBadAddress    = errors.New("memplane: address outside the plane's address space")
	ErrClosed        = errors.New("memplane: plane is closed")
)

// Config parameterises a Plane.
type Config struct {
	// VM names the address space (and the local arena).
	VM string
	// LocalBytes sizes the local arena backing the fast path.
	LocalBytes int64
	// SoftLimitBytes caps how much of the arena is used before allocations
	// overflow to remote grants; defaults to LocalBytes.
	SoftLimitBytes int64
	// PageSize is the translation granularity; DefaultPageSize if 0.
	PageSize int64
	// AddressBytes bounds the VM-visible address space; 0 means unbounded.
	AddressBytes int64

	// Agent is the growth path: overflow allocations request buffers through
	// its guaranteed GS_alloc_ext entry point. Optional when Buffers is
	// enough.
	Agent *memctl.Agent
	// Buffers seeds the allocator with already-granted buffers.
	Buffers []*memctl.RemoteBuffer
	// GrantBytes is the request size of one growth round; the controller's
	// buffer size if 0.
	GrantBytes int64

	// Transport serves the remote path; InProcessTransport if nil.
	Transport Transport
	// Cost prices timeouts and the ledger cross-check; the rdma default if
	// zero.
	Cost rdma.CostModel
	// LocalNs is the charge of one local page access; DefaultLocalNs if 0.
	LocalNs int64
	// TimeoutNs is the charge of one timed-out remote operation;
	// DefaultTimeoutNs if 0.
	TimeoutNs int64

	// Chaos, when set, degrades remote charges during FabricDegrade windows.
	Chaos *chaos.Plan
	// Now returns the simulation time in seconds for chaos window lookups.
	Now func() int64

	// Table, when set, shares a page table with other planes (the aliasing
	// invariant then spans all of them). A private table is built if nil.
	Table *PageTable

	// RecordLatencies keeps the per-operation charge series for percentile
	// reporting (membench); off by default to bound memory.
	RecordLatencies bool

	// Obs, when set, attaches the plane to an observability bundle: per-op
	// counters, an op-latency histogram, and trace events for every
	// read/write, fabric hop, timeout and re-home, stamped with the plane's
	// cumulative simulated charge so exports are byte-stable. Nil keeps the
	// data path allocation-free.
	Obs *obs.Obs
}

// Stats counts the plane's traffic. Every field is deterministic for a given
// op sequence, which is what lets the differential tests demand bit-identical
// values across transports.
type Stats struct {
	// Reads/Writes count plane-level operations; BytesRead/BytesWritten the
	// bytes they carried.
	Reads        uint64
	Writes       uint64
	BytesRead    uint64
	BytesWritten uint64
	// LocalOps and RemoteOps count page-granular accesses on each path.
	LocalOps  uint64
	RemoteOps uint64
	// RemoteBytesRead/Written are the bytes that crossed the fabric.
	RemoteBytesRead    uint64
	RemoteBytesWritten uint64
	// ChargedNs = LocalNs + RemoteNs + TimeoutNs charges + RehomeNs.
	ChargedNs int64
	LocalNs   int64
	RemoteNs  int64
	// Timeouts and ShortReads count chaos surfacing: operations that hit a
	// crashed host, and reads that returned fewer bytes than asked.
	Timeouts   uint64
	ShortReads uint64
	TimeoutNs  int64
	// MirrorWrites counts local-mirror patches (crash recovery journal).
	MirrorWrites uint64
	// Re-homing traffic after a crash.
	RehomedPages uint64
	RehomedBytes uint64
	RehomeNs     int64
}

// Plane is a VM's remote-memory data plane: an address space whose pages live
// either in a local arena (fast path) or in memctl-granted buffers on other
// servers (remote path through a Transport). Reads of never-written pages
// return zeros without allocating; writes allocate local-first and overflow
// to remote grants past the soft limit.
type Plane struct {
	mu     sync.Mutex
	cfg    Config
	table  *PageTable
	alloc  *allocator
	shared bool

	// mirror keeps a local copy of every remotely-written page (the paper's
	// asynchronous local-storage mirror), which is what re-homing replays.
	mirror map[int64][]byte

	crashed map[memctl.ServerID]bool
	closed  bool

	stats     Stats
	latencies []int64

	// obs is the resolved observability handle, nil on unobserved planes so
	// every emission site is one pointer test and no allocation (see obs.go).
	obs *planeObs
}

// New builds a plane.
func New(cfg Config) (*Plane, error) {
	if cfg.VM == "" {
		return nil, fmt.Errorf("memplane: plane needs a VM name")
	}
	if cfg.LocalBytes < 0 {
		return nil, fmt.Errorf("memplane: negative local size %d", cfg.LocalBytes)
	}
	if cfg.PageSize <= 0 {
		cfg.PageSize = DefaultPageSize
	}
	if cfg.LocalBytes%cfg.PageSize != 0 {
		return nil, fmt.Errorf("memplane: local size %d is not a multiple of the page size %d", cfg.LocalBytes, cfg.PageSize)
	}
	if cfg.AddressBytes < 0 {
		return nil, fmt.Errorf("memplane: negative address space %d", cfg.AddressBytes)
	}
	if cfg.Agent == nil && len(cfg.Buffers) == 0 && cfg.LocalBytes == 0 {
		return nil, fmt.Errorf("memplane: plane has no local arena, no buffers and no agent to grow through")
	}
	if cfg.Transport == nil {
		cfg.Transport = InProcessTransport{}
	}
	if cfg.Cost == (rdma.CostModel{}) {
		cfg.Cost = rdma.DefaultCostModel()
	}
	if cfg.LocalNs <= 0 {
		cfg.LocalNs = DefaultLocalNs
	}
	if cfg.TimeoutNs <= 0 {
		cfg.TimeoutNs = DefaultTimeoutNs
	}
	if cfg.GrantBytes <= 0 {
		if cfg.Agent != nil {
			cfg.GrantBytes = cfg.Agent.ControllerBufferSize()
		} else {
			cfg.GrantBytes = memctl.DefaultBufferSize
		}
	}
	table := cfg.Table
	shared := table != nil
	if table == nil {
		table = NewPageTable(cfg.PageSize)
	} else if table.PageSize() != cfg.PageSize {
		return nil, fmt.Errorf("memplane: shared table page size %d != plane page size %d", table.PageSize(), cfg.PageSize)
	}
	return &Plane{
		cfg:     cfg,
		table:   table,
		shared:  shared,
		alloc:   newAllocator(cfg.VM, cfg.PageSize, cfg.LocalBytes, cfg.SoftLimitBytes, cfg.Agent, cfg.GrantBytes, cfg.Buffers),
		mirror:  make(map[int64][]byte),
		crashed: make(map[memctl.ServerID]bool),
		obs:     newPlaneObs(cfg.Obs),
	}, nil
}

// VM returns the plane's address-space name.
func (p *Plane) VM() string { return p.cfg.VM }

// PageSize returns the translation granularity.
func (p *Plane) PageSize() int64 { return p.cfg.PageSize }

// Table returns the plane's page table.
func (p *Plane) Table() *PageTable { return p.table }

// Stats returns a snapshot of the traffic counters.
func (p *Plane) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// AllocStats returns a snapshot of the allocator's footprint.
func (p *Plane) AllocStats() AllocStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.alloc.stats
}

// Latencies returns the recorded per-operation charges (RecordLatencies).
func (p *Plane) Latencies() []int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]int64, len(p.latencies))
	copy(out, p.latencies)
	return out
}

// CrashHost marks a serving host crashed: every remote operation against its
// frames now times out deterministically until ReviveHost (or until the pages
// are re-homed).
func (p *Plane) CrashHost(host memctl.ServerID) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.crashed[host] = true
}

// ReviveHost clears a crash mark.
func (p *Plane) ReviveHost(host memctl.ServerID) {
	p.mu.Lock()
	defer p.mu.Unlock()
	delete(p.crashed, host)
}

// fabricFactor returns the chaos degradation multiplier at the current time.
func (p *Plane) fabricFactor() float64 {
	if p.cfg.Chaos == nil {
		return 1
	}
	var now int64
	if p.cfg.Now != nil {
		now = p.cfg.Now()
	}
	return p.cfg.Chaos.FabricFactorAt(now)
}

// degrade applies a chaos factor to a fabric charge; the arithmetic is shared
// by every transport so degraded charges stay bit-identical across them.
func degrade(ns int64, factor float64) int64 {
	if factor > 1 {
		return int64(float64(ns) * factor)
	}
	return ns
}

// charge books ns into the running totals.
func (p *Plane) charge(ns int64) {
	p.stats.ChargedNs += ns
}

// recordLatency appends one plane-level op's total charge to the series.
func (p *Plane) recordLatency(ns int64) {
	if p.cfg.RecordLatencies {
		p.latencies = append(p.latencies, ns)
	}
}

// Write copies src into the address space at addr, allocating pages as
// needed. It returns the bytes written and the simulated charge. A remote
// frame on a crashed host surfaces ErrRemoteTimeout after a partial write.
func (p *Plane) Write(addr int64, src []byte) (int, int64, error) {
	return p.run(addr, len(src), func(page, off int64, span []byte) (int64, error) {
		return p.pageWrite(page, off, span)
	}, src, true)
}

// Read copies len(dst) bytes from the address space at addr into dst. Pages
// never written read as zeros without allocating. A remote frame on a crashed
// host surfaces ErrRemoteTimeout, making the read short.
func (p *Plane) Read(addr int64, dst []byte) (int, int64, error) {
	return p.run(addr, len(dst), func(page, off int64, span []byte) (int64, error) {
		return p.pageRead(page, off, span)
	}, dst, false)
}

// run walks the page spans of [addr, addr+n) applying op to each, charging
// and accounting as it goes. It returns the bytes completed before the first
// error (the "short read" surface).
func (p *Plane) run(addr int64, n int, op func(page, off int64, span []byte) (int64, error), buf []byte, write bool) (int, int64, error) {
	if addr < 0 {
		return 0, 0, fmt.Errorf("%w: negative address %d", ErrBadAddress, addr)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return 0, 0, ErrClosed
	}
	if p.cfg.AddressBytes > 0 && addr+int64(n) > p.cfg.AddressBytes {
		return 0, 0, fmt.Errorf("%w: [%d,%d) exceeds %d", ErrBadAddress, addr, addr+int64(n), p.cfg.AddressBytes)
	}
	if write {
		p.stats.Writes++
	} else {
		p.stats.Reads++
	}
	ps := p.cfg.PageSize
	done := 0
	var total int64
	for done < n {
		cur := addr + int64(done)
		page := cur / ps
		off := cur % ps
		span := ps - off
		if rem := int64(n - done); span > rem {
			span = rem
		}
		ns, err := op(page, off, buf[done:done+int(span)])
		total += ns
		p.charge(ns)
		if err != nil {
			p.account(done, write)
			p.recordLatency(total)
			p.obs.observeOp(p.stats.ChargedNs, write, done, total)
			return done, total, err
		}
		done += int(span)
	}
	p.account(done, write)
	p.recordLatency(total)
	p.obs.observeOp(p.stats.ChargedNs, write, done, total)
	return done, total, nil
}

// account books the completed byte count of one plane-level op.
func (p *Plane) account(n int, write bool) {
	if write {
		p.stats.BytesWritten += uint64(n)
	} else {
		p.stats.BytesRead += uint64(n)
	}
}

// pageWrite writes one span within a page, allocating its frame if missing.
func (p *Plane) pageWrite(page, off int64, src []byte) (int64, error) {
	frame, ok := p.table.Lookup(p.cfg.VM, page)
	fresh := false
	if !ok {
		var err error
		frame, err = p.alloc.alloc()
		if err != nil {
			return 0, err
		}
		if err := p.table.Map(p.cfg.VM, page, frame); err != nil {
			p.alloc.free(frame)
			return 0, err
		}
		fresh = true
	}
	if frame.Kind == FrameLocal {
		copy(p.alloc.arena[frame.LocalOff+off:frame.LocalOff+off+int64(len(src))], src)
		p.stats.LocalOps++
		p.stats.LocalNs += p.cfg.LocalNs
		return p.cfg.LocalNs, nil
	}
	if p.crashed[frame.Host] {
		return p.timeout(frame, "write")
	}
	// A freshly-mapped remote frame may hold stale bytes from a previous
	// tenant; a partial first write therefore writes the whole page (zeros
	// patched with the payload) so unwritten parts read back as zeros.
	writeOff, payload := off, src
	if fresh && (off != 0 || int64(len(src)) != p.cfg.PageSize) {
		full := make([]byte, p.cfg.PageSize)
		copy(full[off:], src)
		writeOff, payload = 0, full
	}
	ns, err := p.cfg.Transport.WriteRemote(frame, writeOff, payload)
	if err != nil {
		return 0, err
	}
	ns = degrade(ns, p.fabricFactor())
	p.stats.RemoteOps++
	p.stats.RemoteNs += ns
	p.stats.RemoteBytesWritten += uint64(len(payload))
	p.patchMirror(page, writeOff, payload)
	p.obs.observeHop(p.stats.ChargedNs+ns, frame.Host, "write", ns)
	return ns, nil
}

// pageRead reads one span within a page; unmapped pages read as zeros.
func (p *Plane) pageRead(page, off int64, dst []byte) (int64, error) {
	frame, ok := p.table.Lookup(p.cfg.VM, page)
	if !ok {
		for i := range dst {
			dst[i] = 0
		}
		p.stats.LocalOps++
		p.stats.LocalNs += p.cfg.LocalNs
		return p.cfg.LocalNs, nil
	}
	if frame.Kind == FrameLocal {
		copy(dst, p.alloc.arena[frame.LocalOff+off:frame.LocalOff+off+int64(len(dst))])
		p.stats.LocalOps++
		p.stats.LocalNs += p.cfg.LocalNs
		return p.cfg.LocalNs, nil
	}
	if p.crashed[frame.Host] {
		p.stats.ShortReads++
		ns, err := p.timeout(frame, "read")
		return ns, err
	}
	ns, err := p.cfg.Transport.ReadRemote(frame, off, dst)
	if err != nil {
		return 0, err
	}
	ns = degrade(ns, p.fabricFactor())
	p.stats.RemoteOps++
	p.stats.RemoteNs += ns
	p.stats.RemoteBytesRead += uint64(len(dst))
	p.obs.observeHop(p.stats.ChargedNs+ns, frame.Host, "read", ns)
	if !p.cfg.Transport.MovesBytes() {
		// The ledger transport moved nothing; serve the bytes from the mirror
		// so reads still return the last write.
		p.readMirror(page, off, dst)
	}
	return ns, nil
}

// timeout books a deterministic timed-out remote operation.
func (p *Plane) timeout(frame Frame, op string) (int64, error) {
	p.stats.Timeouts++
	p.stats.TimeoutNs += p.cfg.TimeoutNs
	p.obs.observeTimeout(p.stats.ChargedNs+p.cfg.TimeoutNs, frame.Host, op)
	return p.cfg.TimeoutNs, fmt.Errorf("%w: %s of %s (host crashed)", ErrRemoteTimeout, op, frame)
}

// patchMirror journals a remote write into the local mirror page.
func (p *Plane) patchMirror(page, off int64, src []byte) {
	m, ok := p.mirror[page]
	if !ok {
		m = make([]byte, p.cfg.PageSize)
		p.mirror[page] = m
	}
	copy(m[off:], src)
	p.stats.MirrorWrites++
}

// readMirror serves a read from the mirror (ledger transport only).
func (p *Plane) readMirror(page, off int64, dst []byte) {
	m, ok := p.mirror[page]
	if !ok {
		for i := range dst {
			dst[i] = 0
		}
		return
	}
	copy(dst, m[off:off+int64(len(dst))])
}

// RehomeReport summarises one migration.
type RehomeReport struct {
	// Pages and Bytes are the migrated volume; Ns the fabric charge of the
	// migration writes.
	Pages int
	Bytes int64
	Ns    int64
}

// Rehome migrates every page served by the given (crashed) host onto freshly
// granted frames elsewhere, replaying the local mirror through the transport.
// Pages are migrated in ascending order so the traffic is deterministic. The
// crash mark on the host is left in place; after Rehome returns no live page
// references it any more.
func (p *Plane) Rehome(host memctl.ServerID) (RehomeReport, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return RehomeReport{}, ErrClosed
	}
	var rep RehomeReport
	avoid := map[memctl.ServerID]bool{host: true}
	for other := range p.crashed {
		avoid[other] = true
	}
	for _, page := range p.table.PagesOn(p.cfg.VM, host) {
		frame, err := p.alloc.allocRemote(avoid)
		if err != nil {
			return rep, err
		}
		data, ok := p.mirror[page]
		if !ok {
			data = make([]byte, p.cfg.PageSize)
		}
		ns, err := p.cfg.Transport.WriteRemote(frame, 0, data)
		if err != nil {
			p.alloc.free(frame)
			return rep, err
		}
		ns = degrade(ns, p.fabricFactor())
		old, err := p.table.Remap(p.cfg.VM, page, frame)
		if err != nil {
			p.alloc.free(frame)
			return rep, err
		}
		p.alloc.discard(old)
		rep.Pages++
		rep.Bytes += p.cfg.PageSize
		rep.Ns += ns
		p.stats.RehomedPages++
		p.stats.RehomedBytes += uint64(p.cfg.PageSize)
		p.stats.RehomeNs += ns
		p.charge(ns)
	}
	p.obs.observeRehome(p.stats.ChargedNs, host, rep)
	return rep, nil
}

// Free unmaps a page and returns its frame to the allocator, dropping any
// mirrored data. Freeing an unmapped page is a no-op.
func (p *Plane) Free(addr int64) error {
	if addr < 0 {
		return fmt.Errorf("%w: negative address %d", ErrBadAddress, addr)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return ErrClosed
	}
	page := addr / p.cfg.PageSize
	f, err := p.table.Unmap(p.cfg.VM, page)
	if err != nil {
		if errors.Is(err, ErrNotMapped) {
			return nil
		}
		return err
	}
	if f.Kind == FrameLocal {
		// Scrub so a re-allocation of the frame reads as zeros.
		zero := p.alloc.arena[f.LocalOff : f.LocalOff+p.cfg.PageSize]
		for i := range zero {
			zero[i] = 0
		}
	}
	delete(p.mirror, page)
	if f.Kind == FrameRemote && p.crashed[f.Host] {
		p.alloc.discard(f)
	} else {
		p.alloc.free(f)
	}
	return nil
}

// Close releases the plane's granted buffers back to the controller. The
// plane rejects further operations.
func (p *Plane) Close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil
	}
	p.closed = true
	for _, page := range p.table.Pages(p.cfg.VM) {
		if _, err := p.table.Unmap(p.cfg.VM, page); err != nil {
			return err
		}
	}
	return p.alloc.close()
}
