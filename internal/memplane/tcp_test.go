package memplane

import (
	"bytes"
	"strings"
	"testing"
)

// tcpPlanePair builds two identical rigs: one plane served over loopback TCP,
// one in-process. Identical construction means identical buffer IDs, so the
// two planes' charge streams can be compared bit for bit.
func tcpPlanePair(t *testing.T) (tcpPlane, inprocPlane *Plane, cleanup func()) {
	t.Helper()
	names := []string{"user-00", "zombie-01"}
	rigTCP := newRig(t, names, []string{"zombie-01"})
	rigIP := newRig(t, names, []string{"zombie-01"})

	// Pre-grant the buffers so the TCP server can export them; seed both
	// planes identically (no agent, no further growth).
	bufsTCP, err := rigTCP.user(t, names).RequestExt(4 * rigBufSize)
	if err != nil {
		t.Fatal(err)
	}
	bufsIP, err := rigIP.user(t, names).RequestExt(4 * rigBufSize)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewTCPServer()
	if err != nil {
		t.Fatal(err)
	}
	srv.Register(bufsTCP...)
	tr, err := DialTCP(srv.Addr())
	if err != nil {
		srv.Close()
		t.Fatal(err)
	}
	tcpPlane, err = New(Config{
		VM: "vm", LocalBytes: DefaultPageSize,
		Buffers:   bufsTCP,
		Transport: tr,
		Cost:      rigTCP.fabric.Model(),
	})
	if err != nil {
		t.Fatal(err)
	}
	inprocPlane, err = New(Config{
		VM: "vm", LocalBytes: DefaultPageSize,
		Buffers: bufsIP,
		Cost:    rigIP.fabric.Model(),
	})
	if err != nil {
		t.Fatal(err)
	}
	return tcpPlane, inprocPlane, func() {
		_ = tr.Close()
		_ = srv.Close()
	}
}

// TestTCPTransportMatchesInProcess drives the same op stream through the TCP
// and in-process transports and demands identical bytes AND identical
// charges: the socket moves the data, the fabric still prices it.
func TestTCPTransportMatchesInProcess(t *testing.T) {
	tcpP, ipP, cleanup := tcpPlanePair(t)
	defer cleanup()

	addrs := []int64{0, DefaultPageSize, 3 * DefaultPageSize, 5*DefaultPageSize + 100}
	for i, addr := range addrs {
		src := make([]byte, 600+i*512)
		fillPattern(src, addr, byte(i))
		nT, nsT, errT := tcpP.Write(addr, src)
		nI, nsI, errI := ipP.Write(addr, src)
		if errT != nil || errI != nil {
			t.Fatalf("write %d: tcp=%v inproc=%v", i, errT, errI)
		}
		if nT != nI || nsT != nsI {
			t.Fatalf("write %d diverged: tcp (%d, %dns) inproc (%d, %dns)", i, nT, nsT, nI, nsI)
		}
	}
	for i, addr := range addrs {
		want := make([]byte, 600+i*512)
		fillPattern(want, addr, byte(i))
		gotT := make([]byte, len(want))
		gotI := make([]byte, len(want))
		_, nsT, errT := tcpP.Read(addr, gotT)
		_, nsI, errI := ipP.Read(addr, gotI)
		if errT != nil || errI != nil {
			t.Fatalf("read %d: tcp=%v inproc=%v", i, errT, errI)
		}
		if nsT != nsI {
			t.Fatalf("read %d charges diverged: tcp %dns inproc %dns", i, nsT, nsI)
		}
		if !bytes.Equal(gotT, want) {
			t.Fatalf("read %d: tcp bytes corrupted in transit", i)
		}
		if !bytes.Equal(gotI, want) {
			t.Fatalf("read %d: inproc bytes corrupted", i)
		}
	}
	if st, si := tcpP.Stats(), ipP.Stats(); st != si {
		t.Fatalf("stats diverged:\n tcp    %+v\n inproc %+v", st, si)
	}
}

// TestTCPServerSurfacesRemoteErrors pins the error path of the wire protocol.
func TestTCPServerSurfacesRemoteErrors(t *testing.T) {
	srv, err := NewTCPServer()
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	tr, err := DialTCP(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	// No buffer registered: the op must fail with the server's message.
	_, err = tr.WriteRemote(Frame{Kind: FrameRemote, Buffer: 99}, 0, []byte{1})
	if err == nil || !strings.Contains(err.Error(), "no buffer 99") {
		t.Fatalf("got %v, want remote no-buffer error", err)
	}
	// The connection survives an error response.
	_, err = tr.ReadRemote(Frame{Kind: FrameRemote, Buffer: 99}, 0, make([]byte, 1))
	if err == nil {
		t.Fatal("second op should still round-trip and fail")
	}
}
