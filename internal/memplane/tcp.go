package memplane

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"

	"repro/internal/memctl"
)

// The TCP wire protocol: a request is {op u8, buffer u64, offset i64,
// length u32} followed by length payload bytes for writes; a response is
// {status u8, ns i64, length u32} followed by length bytes (read payload, or
// the error text when status != 0). Latency stays simulated — the ns field
// carries the fabric charge computed on the serving side — so runs are
// deterministic regardless of real network jitter.
const (
	tcpOpRead  uint8 = 0
	tcpOpWrite uint8 = 1
)

type tcpRequest struct {
	Op     uint8
	Buffer uint64
	Offset int64
	Length uint32
}

type tcpResponse struct {
	Status uint8
	Ns     int64
	Length uint32
}

// TCPServer exports registered remote buffers over a loopback TCP listener.
// It stands in for the remote-mem-mgr endpoint a real deployment would run on
// every serving host: requests address buffers by their controller ID and are
// forwarded to the live memctl handles (so the bytes still land in the
// granted regions and the fabric still prices the operation).
type TCPServer struct {
	ln net.Listener

	mu     sync.Mutex
	bufs   map[memctl.BufferID]*memctl.RemoteBuffer
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// NewTCPServer starts a server on an ephemeral loopback port.
func NewTCPServer() (*TCPServer, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	s := &TCPServer{
		ln:    ln,
		bufs:  make(map[memctl.BufferID]*memctl.RemoteBuffer),
		conns: make(map[net.Conn]struct{}),
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the listener's address for DialTCP.
func (s *TCPServer) Addr() string { return s.ln.Addr().String() }

// Register makes buffers addressable by their controller IDs.
func (s *TCPServer) Register(bufs ...*memctl.RemoteBuffer) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, rb := range bufs {
		if rb != nil {
			s.bufs[rb.ID] = rb
		}
	}
}

// Close stops the listener and all connections.
func (s *TCPServer) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	for c := range s.conns {
		_ = c.Close()
	}
	s.mu.Unlock()
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

func (s *TCPServer) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serve(conn)
	}
}

func (s *TCPServer) serve(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		_ = conn.Close()
	}()
	r := bufio.NewReader(conn)
	w := bufio.NewWriter(conn)
	for {
		var req tcpRequest
		if err := binary.Read(r, binary.BigEndian, &req); err != nil {
			return
		}
		var payload []byte
		if req.Op == tcpOpWrite {
			payload = make([]byte, req.Length)
			if _, err := io.ReadFull(r, payload); err != nil {
				return
			}
		}
		ns, data, err := s.handle(req, payload)
		if err := writeResponse(w, ns, data, err); err != nil {
			return
		}
	}
}

// handle executes one request against the registered buffers.
func (s *TCPServer) handle(req tcpRequest, payload []byte) (int64, []byte, error) {
	s.mu.Lock()
	rb, ok := s.bufs[memctl.BufferID(req.Buffer)]
	s.mu.Unlock()
	if !ok {
		return 0, nil, fmt.Errorf("memplane: tcp server has no buffer %d", req.Buffer)
	}
	switch req.Op {
	case tcpOpWrite:
		ns, err := rb.WriteRemote(req.Offset, payload)
		return ns, nil, err
	case tcpOpRead:
		dst := make([]byte, req.Length)
		ns, err := rb.ReadRemote(req.Offset, dst)
		return ns, dst, err
	default:
		return 0, nil, fmt.Errorf("memplane: tcp server got unknown op %d", req.Op)
	}
}

func writeResponse(w *bufio.Writer, ns int64, data []byte, opErr error) error {
	resp := tcpResponse{Ns: ns, Length: uint32(len(data))}
	if opErr != nil {
		resp.Status = 1
		msg := []byte(opErr.Error())
		resp.Length = uint32(len(msg))
		data = msg
	}
	if err := binary.Write(w, binary.BigEndian, resp); err != nil {
		return err
	}
	if len(data) > 0 {
		if _, err := w.Write(data); err != nil {
			return err
		}
	}
	return w.Flush()
}

// TCPTransport reaches a TCPServer over one loopback connection, serialising
// requests with a mutex (one outstanding op, like a single queue pair).
type TCPTransport struct {
	mu   sync.Mutex
	conn net.Conn
	r    *bufio.Reader
	w    *bufio.Writer
}

// DialTCP connects a transport to a TCPServer.
func DialTCP(addr string) (*TCPTransport, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &TCPTransport{conn: conn, r: bufio.NewReader(conn), w: bufio.NewWriter(conn)}, nil
}

// Close closes the connection.
func (t *TCPTransport) Close() error { return t.conn.Close() }

// roundTrip sends one request and decodes the response.
func (t *TCPTransport) roundTrip(req tcpRequest, payload, dst []byte) (int64, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := binary.Write(t.w, binary.BigEndian, req); err != nil {
		return 0, err
	}
	if len(payload) > 0 {
		if _, err := t.w.Write(payload); err != nil {
			return 0, err
		}
	}
	if err := t.w.Flush(); err != nil {
		return 0, err
	}
	var resp tcpResponse
	if err := binary.Read(t.r, binary.BigEndian, &resp); err != nil {
		return 0, err
	}
	body := make([]byte, resp.Length)
	if _, err := io.ReadFull(t.r, body); err != nil {
		return 0, err
	}
	if resp.Status != 0 {
		return 0, fmt.Errorf("memplane: tcp remote error: %s", body)
	}
	if dst != nil {
		copy(dst, body)
	}
	return resp.Ns, nil
}

// WriteRemote implements Transport.
func (t *TCPTransport) WriteRemote(f Frame, off int64, src []byte) (int64, error) {
	return t.roundTrip(tcpRequest{
		Op: tcpOpWrite, Buffer: uint64(f.Buffer), Offset: f.Offset + off, Length: uint32(len(src)),
	}, src, nil)
}

// ReadRemote implements Transport.
func (t *TCPTransport) ReadRemote(f Frame, off int64, dst []byte) (int64, error) {
	return t.roundTrip(tcpRequest{
		Op: tcpOpRead, Buffer: uint64(f.Buffer), Offset: f.Offset + off, Length: uint32(len(dst)),
	}, nil, dst)
}

// MovesBytes implements Transport.
func (t *TCPTransport) MovesBytes() bool { return true }
