package memplane

import (
	"bytes"
	"testing"
)

// FuzzPageTable drives two VMs' planes over one shared page table with an
// op stream decoded from the fuzz input, checking the two properties the data
// plane stands on: no frame ever backs two pages (CheckInvariants after every
// step) and reads always return the last write (byte-exact shadow).
//
// Each op consumes 4 bytes: [opcode, page, off, len]. The opcode's low bits
// pick the action (write / read / free) and the VM; page, off and len are
// folded into the 8-page address space so every input decodes to valid ops.
func FuzzPageTable(f *testing.F) {
	// Seed corpus: a write+read pair, cross-VM traffic, free/rewrite churn,
	// unaligned spans, and an empty input.
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 255, 2, 0, 0, 255})
	f.Add([]byte{0, 1, 0, 16, 1, 1, 0, 16, 2, 1, 0, 16, 3, 1, 0, 16})
	f.Add([]byte{0, 3, 7, 200, 4, 3, 0, 0, 0, 3, 9, 100, 2, 3, 0, 255})
	f.Add([]byte{0, 7, 255, 255, 5, 7, 255, 255, 1, 7, 1, 1})

	f.Fuzz(func(t *testing.T, data []byte) {
		const pages = 8
		names := []string{"user-00", "zombie-01"}
		r := newRig(t, names, []string{"zombie-01"})
		table := NewPageTable(DefaultPageSize)
		span := pages * DefaultPageSize

		mk := func(vm string) *Plane {
			p, err := New(Config{
				VM:           vm,
				LocalBytes:   2 * DefaultPageSize,
				AddressBytes: span,
				Agent:        r.user(t, names),
				Table:        table,
			})
			if err != nil {
				t.Fatal(err)
			}
			return p
		}
		planes := []*Plane{mk("vm-a"), mk("vm-b")}
		shadows := [][]byte{make([]byte, span), make([]byte, span)}

		buf := make([]byte, DefaultPageSize)
		for i := 0; i+4 <= len(data); i += 4 {
			op, pg, off, ln := data[i], data[i+1], data[i+2], data[i+3]
			vm := int(op>>2) & 1
			p, shadow := planes[vm], shadows[vm]
			addr := int64(pg%pages)*DefaultPageSize + int64(off)
			size := 1 + int(ln)
			if addr+int64(size) > span {
				size = int(span - addr)
			}
			switch op & 3 {
			case 0, 3: // write
				fillPattern(buf[:size], addr, byte(i))
				n, _, err := p.Write(addr, buf[:size])
				if err != nil {
					t.Fatalf("write vm=%d addr=%d size=%d: %v", vm, addr, size, err)
				}
				copy(shadow[addr:addr+int64(n)], buf[:n])
			case 1: // read
				got := buf[:size]
				n, _, err := p.Read(addr, got)
				if err != nil {
					t.Fatalf("read vm=%d addr=%d size=%d: %v", vm, addr, size, err)
				}
				if !bytes.Equal(got[:n], shadow[addr:addr+int64(n)]) {
					t.Fatalf("read vm=%d addr=%d size=%d differs from last write", vm, addr, size)
				}
			case 2: // free (drops the page: it must read back as zeros)
				if err := p.Free(addr); err != nil {
					t.Fatalf("free vm=%d addr=%d: %v", vm, addr, err)
				}
				base := (addr / DefaultPageSize) * DefaultPageSize
				for j := base; j < base+DefaultPageSize; j++ {
					shadow[j] = 0
				}
			}
			if err := table.CheckInvariants(); err != nil {
				t.Fatalf("after op %d: %v", i/4, err)
			}
		}

		// Full-space sweep: both VMs read back exactly their own shadow —
		// proof that no frame was ever shared across the two address spaces.
		got := make([]byte, DefaultPageSize)
		for vm, p := range planes {
			for base := int64(0); base < span; base += DefaultPageSize {
				if _, _, err := p.Read(base, got); err != nil {
					t.Fatalf("sweep vm=%d page %d: %v", vm, base/DefaultPageSize, err)
				}
				if !bytes.Equal(got, shadows[vm][base:base+DefaultPageSize]) {
					t.Fatalf("vm=%d page %d corrupted", vm, base/DefaultPageSize)
				}
			}
		}
		for _, p := range planes {
			if err := p.Close(); err != nil {
				t.Fatal(err)
			}
		}
	})
}
