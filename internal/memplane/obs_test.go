package memplane

import (
	"bytes"
	"testing"

	"repro/internal/memctl"
	"repro/internal/obs"
)

// runObservedPlane drives a plane through local and remote traffic, a crash
// timeout and a re-home with an attached obs bundle, and returns the bundle
// and the plane's own stats.
func runObservedPlane(t *testing.T) (*obs.Obs, Stats) {
	t.Helper()
	names := []string{"user-00", "zombie-01", "zombie-02"}
	r := newRig(t, names, []string{"zombie-01", "zombie-02"})
	o := obs.New(obs.Options{TraceCapacity: 512})
	p, err := New(Config{
		VM:         "vm",
		LocalBytes: DefaultPageSize,
		Agent:      r.user(t, names),
		Cost:       r.fabric.Model(),
		GrantBytes: rigBufSize,
		Obs:        o,
	})
	if err != nil {
		t.Fatal(err)
	}
	for pg := int64(0); pg < 5; pg++ {
		src := make([]byte, DefaultPageSize)
		fillPattern(src, pg*DefaultPageSize, 3)
		if _, _, err := p.Write(pg*DefaultPageSize, src); err != nil {
			t.Fatal(err)
		}
	}
	dst := make([]byte, 2*DefaultPageSize)
	if _, _, err := p.Read(0, dst); err != nil {
		t.Fatal(err)
	}
	victim := memctl.ServerID("zombie-01")
	p.CrashHost(victim)
	if _, _, err := p.Read(0, make([]byte, 5*DefaultPageSize)); err == nil {
		t.Fatal("read across the crashed host did not time out")
	}
	if _, err := p.Rehome(victim); err != nil {
		t.Fatal(err)
	}
	return o, p.Stats()
}

// TestPlaneObsCounters checks the counters against the plane's own Stats:
// both are bumped at the same sites, so they must agree exactly.
func TestPlaneObsCounters(t *testing.T) {
	o, st := runObservedPlane(t)
	snap := o.Metrics.Snapshot()
	want := map[string]uint64{
		"memplane_reads_total":         st.Reads,
		"memplane_writes_total":        st.Writes,
		"memplane_remote_ops_total":    st.RemoteOps,
		"memplane_timeouts_total":      st.Timeouts,
		"memplane_rehomed_pages_total": st.RehomedPages,
	}
	for name, v := range want {
		if snap.Counters[name] != v {
			t.Errorf("%s = %d, want %d", name, snap.Counters[name], v)
		}
	}
	if st.RemoteOps == 0 || st.Timeouts == 0 || st.RehomedPages == 0 {
		t.Fatalf("scenario did not exercise the remote paths: %+v", st)
	}
	if got := snap.Counters["memplane_op_ns_count"]; got != st.Reads+st.Writes {
		t.Errorf("op histogram count = %d, want %d", got, st.Reads+st.Writes)
	}
	if got := snap.Gauges["memplane_op_ns_sum"]; got != float64(st.ChargedNs-st.RehomeNs) {
		t.Errorf("op histogram sum = %.0f, want charged %d minus rehome %d",
			got, st.ChargedNs, st.RehomeNs)
	}
}

// TestPlaneObsTraceDeterministic pins the determinism contract at the data
// plane: events are stamped with the plane's cumulative simulated charge, so
// identical op sequences export byte-identical NDJSON.
func TestPlaneObsTraceDeterministic(t *testing.T) {
	render := func() []byte {
		o, _ := runObservedPlane(t)
		var buf bytes.Buffer
		if err := o.Trace.WriteNDJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := render(), render()
	if len(a) == 0 {
		t.Fatal("empty trace")
	}
	if !bytes.Equal(a, b) {
		t.Errorf("same-sequence runs diverged:\n--- a ---\n%s--- b ---\n%s", a, b)
	}
}

// TestPlaneObsNilIdentical pins the telemetry-only contract: attaching a
// bundle leaves the plane's stats bit-identical to an unobserved plane.
func TestPlaneObsNilIdentical(t *testing.T) {
	run := func(o *obs.Obs) Stats {
		p, err := New(Config{VM: "vm", LocalBytes: 4 * DefaultPageSize, Obs: o})
		if err != nil {
			t.Fatal(err)
		}
		src := make([]byte, 3*DefaultPageSize)
		fillPattern(src, 0, 9)
		if _, _, err := p.Write(0, src); err != nil {
			t.Fatal(err)
		}
		if _, _, err := p.Read(DefaultPageSize/2, make([]byte, DefaultPageSize)); err != nil {
			t.Fatal(err)
		}
		return p.Stats()
	}
	plain := run(nil)
	observed := run(obs.New(obs.Options{}))
	if plain != observed {
		t.Errorf("obs changed the plane:\nplain    %+v\nobserved %+v", plain, observed)
	}
}
