package memplane

import (
	"repro/internal/memctl"
	"repro/internal/obs"
)

// planeObs is the plane's resolved observability handle: counters and the
// op-latency histogram are looked up once at construction, and every helper
// is nil-safe on the receiver so an unobserved plane pays one pointer test
// per site and allocates nothing.
//
// Events are stamped with the plane's cumulative simulated charge (ChargedNs
// after the operation) — the plane's own clock. It is deterministic for a
// given op sequence, which keeps NDJSON exports byte-stable across runs and
// across transports the differential layer already proves equivalent.
type planeObs struct {
	trace *obs.Trace

	reads     *obs.Counter
	writes    *obs.Counter
	remoteOps *obs.Counter
	timeouts  *obs.Counter
	rehomed   *obs.Counter
	opNs      *obs.Histogram
}

// newPlaneObs resolves the bundle, or returns nil when the plane is
// unobserved.
func newPlaneObs(o *obs.Obs) *planeObs {
	if o == nil {
		return nil
	}
	reg := o.Metrics
	return &planeObs{
		trace:     o.Trace,
		reads:     reg.Counter("memplane_reads_total", "Plane-level read operations."),
		writes:    reg.Counter("memplane_writes_total", "Plane-level write operations."),
		remoteOps: reg.Counter("memplane_remote_ops_total", "Page accesses that crossed the fabric."),
		timeouts:  reg.Counter("memplane_timeouts_total", "Remote operations that timed out on a crashed host."),
		rehomed:   reg.Counter("memplane_rehomed_pages_total", "Pages migrated off crashed hosts."),
		opNs:      reg.Histogram("memplane_op_ns", "Simulated charge of one plane-level operation in ns."),
	}
}

// observeOp records one completed plane-level operation: the counter, the
// latency histogram and the read/write trace event.
func (ob *planeObs) observeOp(at int64, write bool, bytes int, ns int64) {
	if ob == nil {
		return
	}
	ob.opNs.Observe(ns)
	if write {
		ob.writes.Inc()
		ob.trace.EmitAt(at, "memplane", "write", obs.F("bytes", int64(bytes)), obs.F("ns", ns))
	} else {
		ob.reads.Inc()
		ob.trace.EmitAt(at, "memplane", "read", obs.F("bytes", int64(bytes)), obs.F("ns", ns))
	}
}

// observeHop records one page access that crossed the fabric.
func (ob *planeObs) observeHop(at int64, host memctl.ServerID, op string, ns int64) {
	if ob == nil {
		return
	}
	ob.remoteOps.Inc()
	ob.trace.EmitAt(at, "memplane", "hop", obs.FS("host", string(host)), obs.FS("op", op), obs.F("ns", ns))
}

// observeTimeout records one deterministic remote timeout.
func (ob *planeObs) observeTimeout(at int64, host memctl.ServerID, op string) {
	if ob == nil {
		return
	}
	ob.timeouts.Inc()
	ob.trace.EmitAt(at, "memplane", "timeout", obs.FS("host", string(host)), obs.FS("op", op))
}

// observeRehome records one completed migration off a crashed host.
func (ob *planeObs) observeRehome(at int64, host memctl.ServerID, rep RehomeReport) {
	if ob == nil {
		return
	}
	ob.rehomed.Add(uint64(rep.Pages))
	ob.trace.EmitAt(at, "memplane", "rehome",
		obs.FS("host", string(host)), obs.F("pages", int64(rep.Pages)),
		obs.F("bytes", rep.Bytes), obs.F("ns", rep.Ns))
}
