// Package cliflag holds the shared flag-validation helpers of the command
// line tools. Every cmd/ binary validates its numeric flags upfront — before
// any fleet or simulation state is built — and the error strings are pinned
// by CLI tests, so the helpers produce one canonical message format:
//
//	-racks 0 out of range (need >= 1)
//	-hours 0 out of range (need > 0)
//
// A new command gets the same messages (and the same corner-case handling)
// for free instead of hand-rolling its own drifting copies.
package cliflag

import "fmt"

// PositiveInt checks an integer flag that must be at least 1. The name is
// the flag's spelling including the leading dash ("-racks").
func PositiveInt(name string, v int) error {
	if v < 1 {
		return fmt.Errorf("%s %d out of range (need >= 1)", name, v)
	}
	return nil
}

// PositiveInt64 is PositiveInt for 64-bit flags. The unit, when non-empty,
// is appended to the message ("-tick 0 out of range (need >= 1 second)").
func PositiveInt64(name string, v int64, unit string) error {
	if v < 1 {
		if unit != "" {
			return fmt.Errorf("%s %d out of range (need >= 1 %s)", name, v, unit)
		}
		return fmt.Errorf("%s %d out of range (need >= 1)", name, v)
	}
	return nil
}

// PositiveFloat checks a float flag that must be strictly positive.
func PositiveFloat(name string, v float64) error {
	if v <= 0 {
		return fmt.Errorf("%s %g out of range (need > 0)", name, v)
	}
	return nil
}

// NonNegativeInt checks an integer flag that must be at least 0.
func NonNegativeInt(name string, v int) error {
	if v < 0 {
		return fmt.Errorf("%s %d out of range (need >= 0)", name, v)
	}
	return nil
}

// FirstError returns the first non-nil error, so a command can list every
// flag check in one place and fail on the first violation in flag order.
func FirstError(errs ...error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
