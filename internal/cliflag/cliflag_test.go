package cliflag

import (
	"errors"
	"testing"
)

func TestPositiveInt(t *testing.T) {
	cases := []struct {
		v    int
		want string // empty means no error
	}{
		{1, ""},
		{100, ""},
		{0, "-racks 0 out of range (need >= 1)"},
		{-3, "-racks -3 out of range (need >= 1)"},
	}
	for _, c := range cases {
		err := PositiveInt("-racks", c.v)
		if c.want == "" {
			if err != nil {
				t.Errorf("PositiveInt(-racks, %d) = %v, want nil", c.v, err)
			}
			continue
		}
		if err == nil || err.Error() != c.want {
			t.Errorf("PositiveInt(-racks, %d) = %v, want %q", c.v, err, c.want)
		}
	}
}

func TestPositiveInt64(t *testing.T) {
	if err := PositiveInt64("-tick", 300, "second"); err != nil {
		t.Errorf("valid tick rejected: %v", err)
	}
	want := "-tick 0 out of range (need >= 1 second)"
	if err := PositiveInt64("-tick", 0, "second"); err == nil || err.Error() != want {
		t.Errorf("PositiveInt64(-tick, 0, second) = %v, want %q", err, want)
	}
	want = "-requests -1 out of range (need >= 1)"
	if err := PositiveInt64("-requests", -1, ""); err == nil || err.Error() != want {
		t.Errorf("PositiveInt64(-requests, -1) = %v, want %q", err, want)
	}
}

func TestPositiveFloat(t *testing.T) {
	if err := PositiveFloat("-hours", 0.5); err != nil {
		t.Errorf("valid hours rejected: %v", err)
	}
	want := "-hours 0 out of range (need > 0)"
	if err := PositiveFloat("-hours", 0); err == nil || err.Error() != want {
		t.Errorf("PositiveFloat(-hours, 0) = %v, want %q", err, want)
	}
	if err := PositiveFloat("-hours", -2.5); err == nil {
		t.Error("negative hours accepted")
	}
}

func TestNonNegativeInt(t *testing.T) {
	if err := NonNegativeInt("-zombies", 0); err != nil {
		t.Errorf("zero rejected: %v", err)
	}
	want := "-zombies -1 out of range (need >= 0)"
	if err := NonNegativeInt("-zombies", -1); err == nil || err.Error() != want {
		t.Errorf("NonNegativeInt(-zombies, -1) = %v, want %q", err, want)
	}
}

func TestFirstError(t *testing.T) {
	if err := FirstError(nil, nil, nil); err != nil {
		t.Errorf("all-nil FirstError = %v", err)
	}
	e1 := errors.New("first")
	e2 := errors.New("second")
	if err := FirstError(nil, e1, e2); err != e1 {
		t.Errorf("FirstError = %v, want %v (flag order)", err, e1)
	}
	if err := FirstError(); err != nil {
		t.Errorf("empty FirstError = %v", err)
	}
}
