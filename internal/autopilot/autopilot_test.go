package autopilot

import (
	"reflect"
	"testing"

	"repro/internal/acpi"
	"repro/internal/consolidation"
	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/fleet"
	"repro/internal/trace"
)

// diurnalTrace is the canonical synthetic diurnal trace (the default
// generator config: 200 machines, 3000 tasks, one day, seed 42).
func diurnalTrace(t testing.TB) *trace.Trace {
	t.Helper()
	tr, err := trace.Generate(trace.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func baseConfig(tr *trace.Trace) Config {
	return Config{
		Trace:      tr,
		Machine:    energy.HPProfile(),
		ServerSpec: consolidation.DefaultServerSpec(),
		TickSec:    300,
	}
}

// TestAutopilotRegret is the acceptance test of the online control plane: on
// the synthetic diurnal trace every online policy's costed saving stays
// strictly below the offline dcsim oracle's, hysteresis flaps less than the
// reactive threshold without giving up savings, and the whole regret report
// is bit-identical across repeated runs of the same seed.
func TestAutopilotRegret(t *testing.T) {
	tr := diurnalTrace(t)
	cfg := baseConfig(tr)
	planner := consolidation.NewZombieStack()

	run := func() []Report {
		reports, err := CompareOnline(cfg, Policies(planner))
		if err != nil {
			t.Fatal(err)
		}
		return reports
	}
	reports := run()
	if len(reports) != 3 {
		t.Fatalf("expected 3 policy reports, got %d", len(reports))
	}

	byName := make(map[string]Report, len(reports))
	for _, r := range reports {
		byName[r.Policy] = r

		// The oracle bound: online knowledge is a strict subset of the
		// oracle's, and both sides pay the same transition-cost model, so the
		// costed online saving must be strictly below the oracle's.
		if r.Online.SavingPercent >= r.Oracle.SavingPercent {
			t.Errorf("%s: online saving %.3f%% not strictly below the oracle's %.3f%%",
				r.Policy, r.Online.SavingPercent, r.Oracle.SavingPercent)
		}
		if r.RegretPercent <= 0 {
			t.Errorf("%s: regret %.3f points, want > 0", r.Policy, r.RegretPercent)
		}
		if r.RegretPercent != r.Oracle.SavingPercent-r.Online.SavingPercent {
			t.Errorf("%s: regret %.6f != oracle - online = %.6f",
				r.Policy, r.RegretPercent, r.Oracle.SavingPercent-r.Online.SavingPercent)
		}

		// Sanity of the run itself: the full population was seen, every tick
		// fired, and transition costs were actually charged.
		if r.Online.Arrivals != len(tr.Tasks) || r.Online.Admitted+r.Online.Rejected != r.Online.Arrivals {
			t.Errorf("%s: arrivals %d admitted %d rejected %d, trace has %d tasks",
				r.Policy, r.Online.Arrivals, r.Online.Admitted, r.Online.Rejected, len(tr.Tasks))
		}
		if want := int(tr.HorizonSec/cfg.TickSec) - 1; r.Online.Ticks != want {
			t.Errorf("%s: %d ticks, want %d", r.Policy, r.Online.Ticks, want)
		}
		if r.Online.TransitionJoules <= 0 || r.Online.StateTransitions == 0 {
			t.Errorf("%s: no transition costs charged (%.1f J, %d events)",
				r.Policy, r.Online.TransitionJoules, r.Online.StateTransitions)
		}
		if r.Online.SavingPercent <= 0 {
			t.Errorf("%s: online consolidation saved nothing (%.3f%%)", r.Policy, r.Online.SavingPercent)
		}
	}

	// Hysteresis exists to damp flapping: on the same trace it must perform
	// fewer ACPI transitions than the reactive threshold at equal or better
	// savings.
	reactive, hysteresis := byName["reactive"], byName["hysteresis"]
	if hysteresis.Online.StateTransitions >= reactive.Online.StateTransitions {
		t.Errorf("hysteresis performed %d ACPI transitions, reactive %d — watermarks did not damp flapping",
			hysteresis.Online.StateTransitions, reactive.Online.StateTransitions)
	}
	if hysteresis.Online.SavingPercent < reactive.Online.SavingPercent {
		t.Errorf("hysteresis saving %.3f%% below reactive %.3f%%",
			hysteresis.Online.SavingPercent, reactive.Online.SavingPercent)
	}

	// A fixed seed reproduces the full regret report bit for bit: the
	// rendered tables and every field of every report.
	again := run()
	if !reflect.DeepEqual(reports, again) {
		t.Fatalf("regret reports differ across identical runs:\n%+v\n%+v", reports, again)
	}
	if a, b := RenderComparison(reports), RenderComparison(again); a != b {
		t.Fatalf("rendered comparison differs across identical runs:\n%s\n%s", a, b)
	}
	for i := range reports {
		if a, b := reports[i].Render(), again[i].Render(); a != b {
			t.Fatalf("rendered report %d differs across identical runs:\n%s\n%s", i, a, b)
		}
	}
}

// TestAutopilotRegretAcrossPlanners checks the oracle bound for every bundled
// consolidation planner, not just ZombieStack.
func TestAutopilotRegretAcrossPlanners(t *testing.T) {
	tr := diurnalTrace(t)
	for _, planner := range consolidation.Contenders() {
		reports, err := CompareOnline(baseConfig(tr), Policies(planner))
		if err != nil {
			t.Fatalf("%s: %v", planner.Name(), err)
		}
		for _, r := range reports {
			if r.RegretPercent <= 0 {
				t.Errorf("%s/%s: regret %.3f points, want > 0", r.Policy, planner.Name(), r.RegretPercent)
			}
		}
	}
}

func TestAutopilotValidation(t *testing.T) {
	tr := diurnalTrace(t)
	good := baseConfig(tr)
	good.Policy = NewReactive(consolidation.NewZombieStack())
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"missing trace", func(c *Config) { c.Trace = nil }},
		{"missing policy", func(c *Config) { c.Policy = nil }},
		{"missing machine", func(c *Config) { c.Machine = nil }},
		{"bad server spec", func(c *Config) { c.ServerSpec = consolidation.ServerSpec{} }},
		{"negative tick", func(c *Config) { c.TickSec = -10 }},
		{"policy without planner", func(c *Config) { c.Policy = &ReactiveThreshold{} }},
	}
	for _, tc := range cases {
		cfg := good
		tc.mutate(&cfg)
		if _, err := Run(cfg); err == nil {
			t.Errorf("%s: Run accepted an invalid config", tc.name)
		}
	}
}

// TestAutopilotAdmissionRejects starves the fleet: a task whose booked
// reservation exceeds even the fully awake fleet must be rejected and must
// not count toward the admitted population.
func TestAutopilotAdmissionRejects(t *testing.T) {
	tr := &trace.Trace{
		Name:       "tiny",
		Machines:   2,
		HorizonSec: 1000,
		Tasks: []trace.Task{
			{ID: 0, StartSec: 0, EndSec: 900, BookedCPU: 12, BookedMemGiB: 24, UsedCPU: 6, UsedMemGiB: 12},
			{ID: 1, StartSec: 100, EndSec: 900, BookedCPU: 12, BookedMemGiB: 24, UsedCPU: 6, UsedMemGiB: 12},
		},
	}
	cfg := baseConfig(tr)
	cfg.TickSec = 250
	cfg.Policy = NewReactive(consolidation.NewZombieStack())
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Two servers of 8 cores / 16 GiB hold one 12-core booking, not two.
	if res.Admitted != 1 || res.Rejected != 1 {
		t.Fatalf("admitted %d rejected %d, want 1/1", res.Admitted, res.Rejected)
	}
	if res.Departures != 1 {
		t.Fatalf("departures %d, want 1 (the rejected task never departs)", res.Departures)
	}
}

// TestAutopilotEmergencyWake forces an arrival that does not fit the
// consolidated posture: after the fleet has shrunk around a small task, a
// burst arrives mid-interval and must wake servers immediately — billed as
// ACPI transitions and the tick-quantized retroactive power charge.
func TestAutopilotEmergencyWake(t *testing.T) {
	tasks := []trace.Task{
		{ID: 0, StartSec: 0, EndSec: 2000, BookedCPU: 2, BookedMemGiB: 4, UsedCPU: 1, UsedMemGiB: 2},
	}
	// A burst of six fat tasks arriving mid-interval at t=450.
	for i := 1; i <= 6; i++ {
		tasks = append(tasks, trace.Task{
			ID: i, StartSec: 450, EndSec: 2000,
			BookedCPU: 7, BookedMemGiB: 14, UsedCPU: 5, UsedMemGiB: 10,
		})
	}
	tr := &trace.Trace{Name: "burst", Machines: 8, HorizonSec: 2000, Tasks: tasks}
	cfg := baseConfig(tr)
	cfg.TickSec = 300
	cfg.Policy = NewReactive(consolidation.NewZombieStack())
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Admitted != 7 {
		t.Fatalf("admitted %d, want 7", res.Admitted)
	}
	if res.EmergencyWakes == 0 {
		t.Fatal("burst arrival inside a consolidated interval should force emergency wakes")
	}
	if res.TransitionJoules <= 0 {
		t.Fatal("emergency wakes must be billed")
	}
	if res.PeakActiveHosts != tr.Machines {
		t.Fatalf("peak active hosts %d, want %d (the initial all-awake posture)", res.PeakActiveHosts, tr.Machines)
	}
}

// TestAutopilotStreamConsistency: the loop's arrival/departure counters must
// agree with an independent walk of the trace's stream.
func TestAutopilotStreamConsistency(t *testing.T) {
	tr := diurnalTrace(t)
	cfg := baseConfig(tr)
	cfg.Policy = NewHysteresis(consolidation.NewZombieStack())
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	arrivals, departures := 0, 0
	s := trace.NewStream(tr)
	for ev, ok := s.Next(); ok; ev, ok = s.Next() {
		if ev.Kind == trace.Arrive {
			arrivals++
		} else {
			departures++
		}
	}
	if res.Arrivals != arrivals {
		t.Errorf("loop saw %d arrivals, stream has %d", res.Arrivals, arrivals)
	}
	// Every admitted task departs (tasks ending exactly at the horizon are
	// retired by the loop's final moment).
	if res.Departures != departures {
		t.Errorf("loop saw %d departures, stream has %d", res.Departures, departures)
	}
}

// TestFleetExecutorMirrorsPostures drives a live 2x2 fleet through posture
// changes and checks the per-server ACPI states track the plan.
func TestFleetExecutorMirrorsPostures(t *testing.T) {
	f, err := fleet.New(fleet.Config{Racks: 2, Rack: fleetRackConfig(), Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	e := NewFleetExecutor(f)
	if e.Servers() != 4 {
		t.Fatalf("executor sees %d servers, want 4", e.Servers())
	}

	count := func(states []acpi.SleepState, s acpi.SleepState) int {
		n := 0
		for _, st := range states {
			if st == s {
				n++
			}
		}
		return n
	}

	initial := consolidation.InitialPlan(4)
	consolidated := consolidation.FleetPlan{ActiveHosts: 1, ZombieHosts: 2, SleepHosts: 1}
	if err := e.Apply(0, initial, consolidated); err != nil {
		t.Fatal(err)
	}
	st := e.States()
	if count(st, acpi.S0) != 1 || count(st, acpi.Sz) != 2 || count(st, acpi.S3) != 1 {
		t.Fatalf("states after consolidation: %v, want 1xS0 2xSz 1xS3", st)
	}

	// Advance the fleet clock: the rack energy ledger must integrate the
	// mixed posture (cheaper than four awake servers).
	e.Advance(3600)
	mixed := e.EnergyJoules()
	if mixed <= 0 {
		t.Fatal("fleet ledger did not accumulate energy")
	}

	// Wake everything back up; sleep-to-zombie and zombie-to-sleep paths both
	// route through S0.
	if err := e.Apply(3600, consolidated, initial); err != nil {
		t.Fatal(err)
	}
	if n := count(e.States(), acpi.S0); n != 4 {
		t.Fatalf("after wake-all, %d servers in S0, want 4", n)
	}

	// A posture for the wrong fleet size is refused.
	if err := e.Apply(0, initial, consolidation.InitialPlan(5)); err == nil {
		t.Fatal("executor accepted a posture for 5 hosts on a 4-server fleet")
	}
}

// TestAutopilotWithFleetExecutor runs the full loop against a live fleet and
// checks the decisions execute without divergence.
func TestAutopilotWithFleetExecutor(t *testing.T) {
	f, err := fleet.New(fleet.Config{Racks: 2, Rack: fleetRackConfig(), Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	tr := &trace.Trace{
		Name:       "mini",
		Machines:   4,
		HorizonSec: 1800,
		Tasks: []trace.Task{
			{ID: 0, StartSec: 0, EndSec: 1700, BookedCPU: 2, BookedMemGiB: 4, UsedCPU: 1, UsedMemGiB: 2},
			{ID: 1, StartSec: 400, EndSec: 1200, BookedCPU: 3, BookedMemGiB: 6, UsedCPU: 2, UsedMemGiB: 3},
		},
	}
	cfg := baseConfig(tr)
	cfg.TickSec = 300
	cfg.Policy = NewHysteresis(consolidation.NewZombieStack())
	cfg.Executor = NewFleetExecutor(f)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Admitted != 2 {
		t.Fatalf("admitted %d, want 2", res.Admitted)
	}
	if got := f.TotalEnergyJoules(); got <= 0 {
		t.Fatalf("fleet ledger after the run: %.1f J, want > 0", got)
	}

	// A fleet that does not match the trace's machine count is a
	// configuration error, caught by Validate instead of a mid-run panic.
	bad := cfg
	wrong := *tr
	wrong.Machines = 5
	bad.Trace = &wrong
	bad.Policy = NewHysteresis(consolidation.NewZombieStack())
	bad.Executor = NewFleetExecutor(f)
	if _, err := Run(bad); err == nil {
		t.Fatal("Run accepted a 4-server executor against a 5-machine trace")
	}
}

// fleetRackConfig keeps the test boards small: every Sz entry delegates the
// server's free memory as real RDMA buffer allocations, and the executor
// tests only exercise postures and energy, not data content.
func fleetRackConfig() core.Config {
	board := acpi.DefaultBoardSpec()
	board.MemoryBytes = 1 << 30
	return core.Config{Servers: 2, Board: board}
}

// BenchmarkAutopilotTicks measures online control-loop throughput on the
// canonical diurnal trace — the hot path recorded in BENCH_fleet.json.
func BenchmarkAutopilotTicks(b *testing.B) {
	tr := diurnalTrace(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := baseConfig(tr)
		cfg.Policy = NewHysteresis(consolidation.NewZombieStack())
		res, err := Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if res.Ticks == 0 {
			b.Fatal("no ticks executed")
		}
	}
}
