package autopilot

import (
	"fmt"
	"strings"

	"repro/internal/dcsim"
	"repro/internal/metrics"
)

// Report is the regret report of one online run: the online policy's costed
// result side by side with the offline dcsim oracle on the same trace,
// planner, machine, hardware spec and period. Regret is the saving the
// online policy leaves on the table for not knowing the future.
type Report struct {
	Trace   string
	Machine string
	Planner string
	Policy  string
	TickSec int64
	// Online is the control loop's result; Oracle the offline bound
	// (dcsim.Oracle: transition costs forced on).
	Online Result
	Oracle dcsim.Result
	// RegretPercent is Oracle.SavingPercent - Online.SavingPercent, in
	// percentage points (>= 0 whenever the oracle bound holds).
	RegretPercent float64
}

// Regret runs the online control loop and the offline oracle on the same
// configuration and returns the comparison. The oracle replays the identical
// trace with the identical planner, machine, server spec, consolidation
// period and transition-cost model — the only difference is knowledge: the
// oracle plans each epoch with the epoch's whole population (arrivals
// included), the online loop only ever sees the past. A chaos plan on the
// config is applied to BOTH sides: the trace is perturbed once here, the
// online loop injects the faults as events, and the oracle replays under the
// same schedule through dcsim's degraded-capacity pricing — the
// apples-to-apples resilience regret.
func Regret(cfg Config) (Report, error) {
	if err := cfg.Validate(); err != nil {
		return Report{}, err
	}
	cfg.applyDefaults()
	if !cfg.Chaos.Empty() {
		cfg.Trace = cfg.Chaos.PerturbTrace(cfg.Trace)
	}
	online, err := Run(cfg)
	if err != nil {
		return Report{}, err
	}
	oracle, err := dcsim.Oracle(oracleConfig(&cfg))
	if err != nil {
		return Report{}, err
	}
	return Report{
		Trace:         cfg.Trace.Name,
		Machine:       cfg.Machine.Name,
		Planner:       cfg.Policy.Planner().Name(),
		Policy:        cfg.Policy.Name(),
		TickSec:       cfg.TickSec,
		Online:        online,
		Oracle:        oracle,
		RegretPercent: oracle.SavingPercent - online.SavingPercent,
	}, nil
}

// CompareOnline runs the regret comparison for every given policy on the
// same configuration, in order. Each policy must be a fresh instance (the
// bundled ones hold forecasting state) — Policies supplies a matching set.
func CompareOnline(cfg Config, policies []Policy) ([]Report, error) {
	reports := make([]Report, 0, len(policies))
	for _, pol := range policies {
		c := cfg
		c.Policy = pol
		rep, err := Regret(c)
		if err != nil {
			return nil, fmt.Errorf("autopilot: policy %q: %w", pol.Name(), err)
		}
		reports = append(reports, rep)
	}
	return reports, nil
}

// Render formats the report as an aligned two-row table (online vs oracle)
// plus the regret line. The output is a pure function of the report, so a
// fixed trace seed reproduces it bit for bit.
func (r Report) Render() string {
	var b strings.Builder
	t := metrics.NewTable(
		fmt.Sprintf("Regret — %s/%s on %s (%s, tick %ds)", r.Policy, r.Planner, r.Trace, r.Machine, r.TickSec),
		"side", "saving-%", "energy-j", "transition-j", "acpi-events", "migrations", "mean-active")
	t.AddRow("online",
		metrics.FormatFloat(r.Online.SavingPercent),
		metrics.FormatFloat(r.Online.EnergyJoules),
		metrics.FormatFloat(r.Online.TransitionJoules),
		metrics.FormatFloat(float64(r.Online.StateTransitions)),
		metrics.FormatFloat(float64(r.Online.Migrations)),
		metrics.FormatFloat(r.Online.MeanActiveHosts))
	t.AddRow("oracle",
		metrics.FormatFloat(r.Oracle.SavingPercent),
		metrics.FormatFloat(r.Oracle.EnergyJoules),
		metrics.FormatFloat(r.Oracle.TransitionJoules),
		metrics.FormatFloat(float64(r.Oracle.StateTransitions)),
		metrics.FormatFloat(float64(r.Oracle.Migrations)),
		metrics.FormatFloat(r.Oracle.MeanActiveHosts))
	b.WriteString(t.String())
	fmt.Fprintf(&b, "regret: %s points of saving (ticks %d, arrivals %d, admitted %d, rejected %d, emergency wakes %d)\n",
		metrics.FormatFloat(r.RegretPercent), r.Online.Ticks, r.Online.Arrivals,
		r.Online.Admitted, r.Online.Rejected, r.Online.EmergencyWakes)
	return b.String()
}

// RenderComparison formats a set of regret reports as one table, a row per
// policy, in report order.
func RenderComparison(reports []Report) string {
	t := metrics.NewTable("Online policies vs the offline oracle",
		"policy", "planner", "online-saving-%", "oracle-saving-%", "regret-pts", "acpi-events", "oracle-events", "emergency-wakes")
	for _, r := range reports {
		t.AddRow(r.Policy, r.Planner,
			metrics.FormatFloat(r.Online.SavingPercent),
			metrics.FormatFloat(r.Oracle.SavingPercent),
			metrics.FormatFloat(r.RegretPercent),
			metrics.FormatFloat(float64(r.Online.StateTransitions)),
			metrics.FormatFloat(float64(r.Oracle.StateTransitions)),
			metrics.FormatFloat(float64(r.Online.EmergencyWakes)))
	}
	return t.String()
}
