package autopilot

import (
	"fmt"

	"repro/internal/acpi"
	"repro/internal/consolidation"
	"repro/internal/fleet"
)

// Executor mirrors the control loop's decisions onto a backing system. The
// loop itself always keeps the abstract energy ledger (that is what the
// regret report compares); an executor additionally makes the decisions
// real somewhere — on a live fleet.Fleet, the rack model's ACPI platforms
// and energy accumulators.
type Executor interface {
	// Advance moves the backing system's simulated clock forward.
	Advance(deltaSec int64)
	// Apply transitions the backing system from the prev posture to next,
	// effective at nowSec.
	Apply(nowSec int64, prev, next consolidation.FleetPlan) error
}

// FleetExecutor drives a live multi-rack fleet: every posture is mapped onto
// concrete servers (rack-major order — the first ActiveHosts servers awake,
// the next ZombieHosts in Sz, the rest in S3) and the deltas are executed as
// real per-server ACPI transitions through the fleet control plane, so the
// rack model's energy ledger and remote-memory pool track the online run.
// Oasis memory servers have no exact rack analogue and are mirrored as Sz
// (the nearest memory-serving low-power state).
type FleetExecutor struct {
	f       *fleet.Fleet
	servers []fleetServer
	states  []acpi.SleepState
}

// fleetServer locates one server in the fleet.
type fleetServer struct {
	rack int
	name string
}

// NewFleetExecutor builds the executor over a fleet whose total server count
// must match the postures it will be asked to apply.
func NewFleetExecutor(f *fleet.Fleet) *FleetExecutor {
	e := &FleetExecutor{f: f}
	for ri := 0; ri < f.Racks(); ri++ {
		for _, name := range f.Rack(ri).Servers() {
			e.servers = append(e.servers, fleetServer{rack: ri, name: name})
			e.states = append(e.states, acpi.S0)
		}
	}
	return e
}

// Servers returns the number of servers the executor drives.
func (e *FleetExecutor) Servers() int { return len(e.servers) }

// Advance implements Executor.
func (e *FleetExecutor) Advance(deltaSec int64) {
	e.f.AdvanceClock(deltaSec * 1e9)
}

// Apply implements Executor: wakes first (capacity can only grow), then
// suspends, in server order, so the transition sequence is deterministic.
func (e *FleetExecutor) Apply(nowSec int64, prev, next consolidation.FleetPlan) error {
	if next.TotalHosts() != len(e.servers) {
		return fmt.Errorf("autopilot: posture covers %d hosts, fleet has %d servers",
			next.TotalHosts(), len(e.servers))
	}
	desired := func(i int) acpi.SleepState {
		switch {
		case i < next.ActiveHosts:
			return acpi.S0
		case i < next.ActiveHosts+next.ZombieHosts+next.MemoryServers:
			return acpi.Sz
		default:
			return acpi.S3
		}
	}
	// Pass 1: every server leaving its sleep state goes through S0 (the only
	// physical path between sleep states).
	for i, srv := range e.servers {
		if e.states[i] != acpi.S0 && e.states[i] != desired(i) {
			if err := e.f.Wake(srv.rack, srv.name); err != nil {
				return fmt.Errorf("autopilot: waking %s: %w", srv.name, err)
			}
			e.states[i] = acpi.S0
		}
	}
	// Pass 2: suspend into the desired sleep states.
	for i, srv := range e.servers {
		want := desired(i)
		if e.states[i] == want {
			continue
		}
		var err error
		if want == acpi.Sz {
			err = e.f.PushToZombie(srv.rack, srv.name)
		} else {
			err = e.f.Suspend(srv.rack, srv.name, want)
		}
		if err != nil {
			return fmt.Errorf("autopilot: suspending %s to %v: %w", srv.name, want, err)
		}
		e.states[i] = want
	}
	return nil
}

// States returns the executor's view of every server's current sleep state,
// in rack-major server order.
func (e *FleetExecutor) States() []acpi.SleepState {
	return append([]acpi.SleepState(nil), e.states...)
}

// EnergyJoules returns the fleet's accumulated energy ledger total.
func (e *FleetExecutor) EnergyJoules() float64 { return e.f.TotalEnergyJoules() }
