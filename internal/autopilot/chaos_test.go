package autopilot

import (
	"errors"
	"reflect"
	"strings"
	"testing"

	"repro/internal/chaos"
	"repro/internal/consolidation"
	"repro/internal/trace"
)

// chaosTrace is a smaller diurnal trace so the chaos matrix (4 simulations
// per report) stays fast.
func chaosTrace(t testing.TB) *trace.Trace {
	t.Helper()
	cfg := trace.DefaultConfig()
	cfg.Machines = 80
	cfg.Tasks = 900
	cfg.HorizonSec = 8 * 3600
	tr, err := trace.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// TestChaosDeterminism pins the determinism contract: the same seed and
// fault plan produce a bit-identical chaos.Report across repeated runs and
// across oracle worker counts.
func TestChaosDeterminism(t *testing.T) {
	tr := chaosTrace(t)
	plan, err := chaos.Scenario("heavy", tr.HorizonSec, tr.Machines, 7)
	if err != nil {
		t.Fatal(err)
	}
	run := func(workers int) chaos.Report {
		cfg := baseConfig(tr)
		cfg.TickSec = 600
		cfg.Workers = workers
		cfg.Policy = NewHysteresis(consolidation.NewZombieStack())
		rep, err := RunChaos(cfg, plan)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	first := run(1)
	if first.Faults.Total() == 0 {
		t.Fatal("heavy scenario injected no faults")
	}
	for _, workers := range []int{1, 4, 9} {
		if got := run(workers); !reflect.DeepEqual(got, first) {
			t.Fatalf("chaos report diverged at Workers=%d:\n got %+v\nwant %+v", workers, got, first)
		}
	}
}

// TestChaosResilienceBound pins the resilience ordering for every bundled
// policy: savings under faults <= savings fault-free <= the offline oracle —
// fault penalties are pure additions to the consolidated side's energy, so
// injecting faults can only lower the saving. The plan deliberately carries
// no trace bursts: a burst changes the population (and with it the baseline)
// on both sides, which is a different experiment than degrading the fleet
// under an identical load.
func TestChaosResilienceBound(t *testing.T) {
	tr := chaosTrace(t)
	plan, err := chaos.New(chaos.PlanConfig{
		Name: "bound", Seed: 11, HorizonSec: tr.HorizonSec, Machines: tr.Machines,
		Crashes: 3, WakeFailures: 4, ControllerLosses: 2, FabricDegradations: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, pol := range Policies(consolidation.NewZombieStack()) {
		cfg := baseConfig(tr)
		cfg.TickSec = 600
		cfg.Policy = pol
		rep, err := RunChaos(cfg, plan)
		if err != nil {
			t.Fatalf("%s: %v", pol.Name(), err)
		}
		if rep.ServerCrashes == 0 || rep.WastedJoules <= 0 {
			t.Errorf("%s: plan did not strike (crashes %d, wasted %.1f J)",
				pol.Name(), rep.ServerCrashes, rep.WastedJoules)
		}
		if rep.SavingPercent >= rep.FaultFreeSavingPercent {
			t.Errorf("%s: faulted saving %.4f%% not below fault-free %.4f%%",
				pol.Name(), rep.SavingPercent, rep.FaultFreeSavingPercent)
		}
		if rep.FaultFreeSavingPercent >= rep.OracleSavingPercent {
			t.Errorf("%s: fault-free saving %.4f%% not below the oracle %.4f%%",
				pol.Name(), rep.FaultFreeSavingPercent, rep.OracleSavingPercent)
		}
		if rep.SavingsRetainedPercent <= 0 || rep.SavingsRetainedPercent >= 100 {
			t.Errorf("%s: savings retained %.4f%%, want in (0,100)", pol.Name(), rep.SavingsRetainedPercent)
		}
	}
}

// TestChaosEmptyPlanBitIdentical pins the other half of the determinism
// contract: a run under an empty fault plan is bit-identical to the plain
// no-chaos path (every chaos branch must add exact zeros or not run at all).
func TestChaosEmptyPlanBitIdentical(t *testing.T) {
	tr := chaosTrace(t)
	empty, err := chaos.Scenario("off", tr.HorizonSec, tr.Machines, 42)
	if err != nil {
		t.Fatal(err)
	}
	if !empty.Empty() {
		t.Fatal("scenario off is not empty")
	}
	for _, pol := range []func() Policy{
		func() Policy { return NewReactive(consolidation.NewZombieStack()) },
		func() Policy { return NewPredictiveEWMA(consolidation.NewZombieStack()) },
	} {
		plain := baseConfig(tr)
		plain.Policy = pol()
		want, err := Run(plain)
		if err != nil {
			t.Fatal(err)
		}
		chaosCfg := baseConfig(tr)
		chaosCfg.Policy = pol()
		chaosCfg.Chaos = empty
		got, err := Run(chaosCfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: empty-plan run diverged from the no-chaos path:\n got %+v\nwant %+v",
				want.Policy, got, want)
		}
	}
}

// TestChaosWakeFailuresStrand pins the stuck-zombie path: a wake-failure
// window covering the whole horizon forces emergency wakes to fail, bill
// wasted transitions and escalate.
func TestChaosWakeFailuresStrand(t *testing.T) {
	tr := chaosTrace(t)
	plan := &chaos.Plan{
		Name: "stuck", Seed: 1, HorizonSec: tr.HorizonSec,
		Faults: []chaos.Fault{{Kind: chaos.WakeFailure, AtSec: 0, DurationSec: tr.HorizonSec, Count: 25}},
	}
	cfg := baseConfig(tr)
	cfg.Policy = NewReactive(consolidation.NewZombieStack())
	rep, err := RunChaos(cfg, plan)
	if err != nil {
		t.Fatal(err)
	}
	if rep.StuckZombies == 0 || rep.WastedTransitions == 0 {
		t.Fatalf("no stuck zombies despite a horizon-wide wake-failure window: %+v", rep)
	}
	if rep.StuckZombies > 25 {
		t.Fatalf("stuck zombies %d exceed the fault budget 25", rep.StuckZombies)
	}
	if rep.SavingPercent >= rep.FaultFreeSavingPercent {
		t.Fatalf("wasted wakes did not lower the saving: %.4f%% vs %.4f%%",
			rep.SavingPercent, rep.FaultFreeSavingPercent)
	}
}

// TestChaosTraceBurstPerturbsBothSides checks the burst axis: the perturbed
// trace carries more tasks, and both the online run and the oracle replay it
// (arrivals match the perturbed population).
func TestChaosTraceBurstPerturbsBothSides(t *testing.T) {
	tr := chaosTrace(t)
	plan := &chaos.Plan{
		Name: "burst", Seed: 3, HorizonSec: tr.HorizonSec,
		Faults: []chaos.Fault{{Kind: chaos.TraceBurst, AtSec: tr.HorizonSec / 3, DurationSec: 900, Count: 40}},
	}
	perturbed := plan.PerturbTrace(tr)
	if got, want := len(perturbed.Tasks), len(tr.Tasks)+40; got != want {
		t.Fatalf("perturbed trace has %d tasks, want %d", got, want)
	}
	if err := perturbed.Validate(); err != nil {
		t.Fatalf("perturbed trace invalid: %v", err)
	}
	again := plan.PerturbTrace(tr)
	if !reflect.DeepEqual(perturbed, again) {
		t.Fatal("trace perturbation is not deterministic")
	}
	cfg := baseConfig(tr)
	cfg.Policy = NewHysteresis(consolidation.NewZombieStack())
	rep, err := RunChaos(cfg, plan)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Arrivals != len(perturbed.Tasks) {
		t.Fatalf("faulted run saw %d arrivals, perturbed trace has %d tasks", rep.Arrivals, len(perturbed.Tasks))
	}
}

// failingExecutor refuses every posture change after the first.
type failingExecutor struct{ applies int }

func (e *failingExecutor) Advance(int64) {}
func (e *failingExecutor) Apply(nowSec int64, prev, next consolidation.FleetPlan) error {
	e.applies++
	if e.applies > 1 {
		return errors.New("transition hardware refused")
	}
	return nil
}

// TestRunSurfacesExecutorFailure pins the emergency-wake error path: a
// backing system refusing a transition must surface as an error from Run —
// never a panic, never a silently stranded admitted task.
func TestRunSurfacesExecutorFailure(t *testing.T) {
	tr := chaosTrace(t)
	cfg := baseConfig(tr)
	cfg.Policy = NewReactive(consolidation.NewZombieStack())
	cfg.Executor = &failingExecutor{}
	_, err := Run(cfg)
	if err == nil {
		t.Fatal("Run swallowed the executor failure")
	}
	if !strings.Contains(err.Error(), "executor apply") {
		t.Fatalf("executor failure not surfaced with context: %v", err)
	}
}

// TestValidateRejectsChaosWithExecutor pins the configuration guard: chaos
// runs stay on the abstract ledger.
func TestValidateRejectsChaosWithExecutor(t *testing.T) {
	tr := chaosTrace(t)
	plan, err := chaos.Scenario("light", tr.HorizonSec, tr.Machines, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := baseConfig(tr)
	cfg.Policy = NewReactive(consolidation.NewZombieStack())
	cfg.Chaos = plan
	cfg.Executor = &failingExecutor{}
	if err := cfg.Validate(); err == nil {
		t.Fatal("Validate accepted chaos together with an executor")
	}
}

// TestCompareChaosScenarios runs the severity axis end to end and checks the
// ordering heavy <= light <= off in retained savings.
func TestCompareChaosScenarios(t *testing.T) {
	tr := chaosTrace(t)
	var plans []*chaos.Plan
	for _, name := range chaos.ScenarioNames() {
		p, err := chaos.Scenario(name, tr.HorizonSec, tr.Machines, 42)
		if err != nil {
			t.Fatal(err)
		}
		plans = append(plans, p)
	}
	cfg := baseConfig(tr)
	cfg.TickSec = 600
	cfg.Policy = NewHysteresis(consolidation.NewZombieStack())
	reports, err := CompareChaos(cfg, plans)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 3 {
		t.Fatalf("got %d reports, want 3", len(reports))
	}
	off, light, heavy := reports[0], reports[1], reports[2]
	if off.SavingPercent != off.FaultFreeSavingPercent {
		t.Errorf("scenario off diverged from the fault-free run: %.6f%% vs %.6f%%",
			off.SavingPercent, off.FaultFreeSavingPercent)
	}
	if !(heavy.WastedJoules > light.WastedJoules) {
		t.Errorf("heavy wasted %.1f J, light %.1f J — severity axis not monotone",
			heavy.WastedJoules, light.WastedJoules)
	}
	if rendered := chaos.RenderComparison(reports); !strings.Contains(rendered, "heavy") {
		t.Errorf("rendered comparison missing the heavy row:\n%s", rendered)
	}
}
