package autopilot

import (
	"fmt"
	"sort"

	"repro/internal/acpi"
	"repro/internal/chaos"
	"repro/internal/dcsim"
)

// Fault-aware re-planning: the online loop consumes a chaos.Plan as a fourth
// event source next to arrivals, departures and ticks. Faults mutate the
// loop's view of the fleet (crashed and stuck servers leave the usable pool)
// and bill pure energy penalties on the consolidated side, so a faulted run
// can only save less than its fault-free twin — the resilience bound
// TestChaosResilienceBound pins. Everything below is driven by the plan's
// contents and the loop's own deterministic order, so identical seeds yield
// bit-identical results.

// momentKind orders the chaos timeline events.
type momentKind uint8

// The moment kinds, in processing order at equal instants: repairs free
// capacity before new faults strike, crashes strike before controller
// losses.
const (
	momentRepair momentKind = iota
	momentStuckRepair
	momentCrash
	momentCtrlLoss
)

// chaosMoment is one instant the loop must react to.
type chaosMoment struct {
	at   int64
	kind momentKind
	idx  int // index of the originating fault in the plan
}

// chaosRun is the mutable fault-injection state of one loop run.
type chaosRun struct {
	plan    *chaos.Plan
	moments []chaosMoment
	next    int
	// crashed and stuck count the servers currently out of the usable pool:
	// crashed servers wedge at S0 idle, stuck zombies burn Sz.
	crashed int
	stuck   int
	// wakeBudget is each WakeFailure fault's remaining budget; failedBy and
	// crashedBy record what actually struck, so repairs restore exactly the
	// servers that were lost.
	wakeBudget map[int]int
	failedBy   map[int]int
	crashedBy  map[int]int
}

// newChaosRun compiles a plan into the loop's fault timeline.
func newChaosRun(p *chaos.Plan) *chaosRun {
	c := &chaosRun{
		plan:       p,
		wakeBudget: make(map[int]int),
		failedBy:   make(map[int]int),
		crashedBy:  make(map[int]int),
	}
	for i, f := range p.Faults {
		switch f.Kind {
		case chaos.ServerCrash:
			c.moments = append(c.moments,
				chaosMoment{at: f.AtSec, kind: momentCrash, idx: i},
				chaosMoment{at: f.AtSec + f.DurationSec, kind: momentRepair, idx: i})
		case chaos.WakeFailure:
			c.wakeBudget[i] = f.Count
			c.moments = append(c.moments,
				chaosMoment{at: f.AtSec + f.DurationSec, kind: momentStuckRepair, idx: i})
		case chaos.ControllerLoss:
			c.moments = append(c.moments,
				chaosMoment{at: f.AtSec, kind: momentCtrlLoss, idx: i})
		}
		// FabricDegrade is queried at billing time and TraceBurst was applied
		// to the trace before the run; neither needs a timeline moment.
	}
	sort.SliceStable(c.moments, func(a, b int) bool {
		if c.moments[a].at != c.moments[b].at {
			return c.moments[a].at < c.moments[b].at
		}
		return c.moments[a].kind < c.moments[b].kind
	})
	return c
}

// peek returns the next unprocessed moment.
func (c *chaosRun) peek() (chaosMoment, bool) {
	if c.next >= len(c.moments) {
		return chaosMoment{}, false
	}
	return c.moments[c.next], true
}

// pop consumes the next moment.
func (c *chaosRun) pop() { c.next++ }

// takeWakeFailures consumes up to attempts failures from the budgets of the
// WakeFailure faults whose window contains now, in plan order.
func (c *chaosRun) takeWakeFailures(now int64, attempts int) int {
	failed := 0
	for i, f := range c.plan.Faults {
		if attempts <= 0 {
			break
		}
		if f.Kind != chaos.WakeFailure || c.wakeBudget[i] <= 0 {
			continue
		}
		if f.AtSec <= now && now < f.AtSec+f.DurationSec {
			take := c.wakeBudget[i]
			if take > attempts {
				take = attempts
			}
			c.wakeBudget[i] -= take
			c.failedBy[i] += take
			attempts -= take
			failed += take
		}
	}
	return failed
}

// chaosMoment applies one timeline event to the loop.
func (l *loop) chaosMoment(now int64, m chaosMoment) error {
	f := l.chaos.plan.Faults[m.idx]
	switch m.kind {
	case momentCrash:
		return l.chaosCrash(now, f, m.idx)
	case momentRepair:
		l.chaosRepair(now, m.idx)
	case momentStuckRepair:
		l.chaosStuckRepair(now, m.idx)
	case momentCtrlLoss:
		// The secondary controller promotes itself and rebuilds the remote
		// memory state from its mirrored log; one machine's worth of S0 idle
		// power burns for the rebuild window.
		l.res.ControllerFailovers++
		l.addPenalty(float64(f.DurationSec) * l.cfg.Machine.PowerWatts(acpi.S0, 0))
		l.obs.observeChaosCtrlLoss(now, f.DurationSec)
	}
	return nil
}

// victim categories, in the order chaosCrash strikes them per role.
type victimCat uint8

const (
	victimActive victimCat = iota
	victimZombie
	victimMemServer
	victimSleep
	victimNone
)

// pickCrashVictim resolves the fault's role hint against the posture held,
// falling through to the next category when the preferred one is empty.
func (l *loop) pickCrashVictim(role chaos.CrashRole) victimCat {
	order := []victimCat{victimActive, victimZombie, victimMemServer, victimSleep}
	switch role {
	case chaos.RoleServing:
		order = []victimCat{victimZombie, victimMemServer, victimActive, victimSleep}
	case chaos.RoleSleep:
		order = []victimCat{victimSleep, victimZombie, victimMemServer, victimActive}
	}
	for _, cat := range order {
		switch cat {
		case victimActive:
			if l.posture.ActiveHosts > 0 {
				return cat
			}
		case victimZombie:
			if l.posture.ZombieHosts > 0 {
				return cat
			}
		case victimMemServer:
			if l.posture.MemoryServers > 0 {
				return cat
			}
		case victimSleep:
			if l.posture.SleepHosts > 0 {
				return cat
			}
		}
	}
	return victimNone
}

// chaosCrash strikes one ServerCrash fault: victims leave the usable pool
// (wedged at S0 idle until repair), crashed serving servers re-home their
// remote-memory share onto freshly woken replacements, and lost active
// capacity is replaced through the emergency-wake path — whose S3->S0
// attempts the same plan's wake failures can strike.
func (l *loop) chaosCrash(now int64, f chaos.Fault, idx int) error {
	targetActive := l.posture.ActiveHosts
	struck := 0
	for i := 0; i < f.Count; i++ {
		cat := l.pickCrashVictim(f.Role)
		if cat == victimNone {
			break
		}
		struck++
		l.chaos.crashed++
		switch cat {
		case victimActive:
			l.posture.ActiveHosts--
		case victimZombie:
			share := l.servingShare()
			l.posture.ZombieHosts--
			l.reHome(now, share, true)
		case victimMemServer:
			share := l.servingShare()
			l.posture.MemoryServers--
			l.reHome(now, share, false)
		case victimSleep:
			l.posture.SleepHosts--
		}
	}
	l.chaos.crashedBy[idx] = struck
	l.res.ServerCrashes += struck
	l.obs.observeChaosCrash(now, struck)
	l.refreshUtil()
	if l.posture.ActiveHosts < targetActive {
		return l.ensureActive(now, targetActive)
	}
	return nil
}

// servingShare is the remote memory one serving server (zombie or memory
// server) carries under the current posture.
func (l *loop) servingShare() float64 {
	pool := l.posture.ZombieHosts + l.posture.MemoryServers
	if pool <= 0 {
		return 0
	}
	return l.posture.RemoteMemoryGiB / float64(pool)
}

// reHome moves a crashed serving server's remote-memory share onto a
// replacement: the transfer crosses the fabric at the instant's degradation
// factor (stalling one active host at the posture's operating point), and a
// sleeper wakes into the serving role. With no sleeper left the share is
// lost — an SLO violation.
func (l *loop) reHome(now int64, shareGiB float64, zombie bool) {
	m := l.cfg.Machine
	if shareGiB > 0 {
		l.res.ReHomedGiB += shareGiB
		tm := l.cfg.Transitions
		sec := float64(tm.Fabric.TransferNs(tm.Fabric.OneSidedLatencyNs, int(shareGiB*float64(1<<30)))) / 1e9
		sec *= l.chaos.plan.FabricFactorAt(now)
		l.addPenalty(sec * m.PowerWatts(acpi.S0, l.posture.ActiveCPUUtilization))
	}
	if l.posture.SleepHosts <= 0 {
		l.posture.RemoteMemoryGiB -= shareGiB
		if l.posture.RemoteMemoryGiB < 0 {
			l.posture.RemoteMemoryGiB = 0
		}
		l.res.SLOViolations++
		return
	}
	l.posture.SleepHosts--
	if zombie {
		l.posture.ZombieHosts++
		l.addPenalty(m.TransitionJoules(acpi.S3, acpi.S0) + m.TransitionJoules(acpi.S0, acpi.Sz))
		l.res.StateTransitions += 2
	} else {
		l.posture.MemoryServers++
		l.addPenalty(m.TransitionJoules(acpi.S3, acpi.S0))
		l.res.StateTransitions++
	}
}

// chaosRepair returns a crash fault's victims to the sleep pool: the wedged
// servers reboot into S3.
func (l *loop) chaosRepair(now int64, idx int) {
	n := l.chaos.crashedBy[idx]
	if n <= 0 {
		return
	}
	l.chaos.crashedBy[idx] = 0
	l.chaos.crashed -= n
	l.posture.SleepHosts += n
	l.addPenalty(float64(n) * l.cfg.Machine.TransitionJoules(acpi.S0, acpi.S3))
	l.res.StateTransitions += n
	l.obs.observeChaosRepair(now, "crash", n)
}

// chaosStuckRepair releases the stuck zombies of one WakeFailure fault when
// its window closes: each wakes fully (Sz->S0) and re-suspends to S3.
func (l *loop) chaosStuckRepair(now int64, idx int) {
	n := l.chaos.failedBy[idx]
	if n <= 0 {
		return
	}
	l.chaos.failedBy[idx] = 0
	l.chaos.stuck -= n
	l.posture.SleepHosts += n
	m := l.cfg.Machine
	l.addPenalty(float64(n) * (m.TransitionJoules(acpi.Sz, acpi.S0) + m.TransitionJoules(acpi.S0, acpi.S3)))
	l.res.StateTransitions += 2 * n
	l.obs.observeChaosRepair(now, "stuck", n)
}

// RunChaos replays one online configuration under a fault plan and returns
// the full resilience report: the faulted run (trace perturbed by the plan's
// bursts, faults injected into the loop) against its own fault-free twin and
// against the offline oracle re-run under the identical schedule. Policies
// are cloned per run, so the caller's instance is never polluted.
func RunChaos(cfg Config, plan *chaos.Plan) (chaos.Report, error) {
	ffCfg := cfg
	ffCfg.Chaos = nil
	ffCfg.Policy = freshPolicy(cfg.Policy)
	ffCfg.OnTick = nil // the hook and the obs bundle observe the faulted run only
	ffCfg.Obs = nil
	ff, err := Regret(ffCfg)
	if err != nil {
		return chaos.Report{}, err
	}
	return runChaosAgainst(cfg, plan, ff)
}

// runChaosAgainst runs the faulted side against an already-computed
// fault-free twin. An empty plan reuses the twin outright — the faulted run
// would be bit-identical by the empty-plan contract, so re-simulating it
// buys nothing.
func runChaosAgainst(cfg Config, plan *chaos.Plan, ff Report) (chaos.Report, error) {
	if plan == nil {
		plan = &chaos.Plan{Name: "off"}
	}
	if err := plan.Validate(); err != nil {
		return chaos.Report{}, err
	}
	faulted := ff
	if !plan.Empty() {
		fCfg := cfg
		fCfg.Chaos = plan
		fCfg.Policy = freshPolicy(cfg.Policy)
		var err error
		faulted, err = Regret(fCfg)
		if err != nil {
			return chaos.Report{}, err
		}
	}

	rep := chaos.Report{
		Scenario: plan.Name,
		Seed:     plan.Seed,
		Policy:   ff.Policy,
		Planner:  ff.Planner,
		Trace:    cfg.Trace.Name,
		Machine:  ff.Machine,
		TickSec:  ff.TickSec,
		Faults:   plan.Tally(),

		FaultFreeSavingPercent: ff.Online.SavingPercent,
		FaultFreeEnergyJoules:  ff.Online.EnergyJoules,
		OracleSavingPercent:    ff.Oracle.SavingPercent,

		SavingPercent:              faulted.Online.SavingPercent,
		EnergyJoules:               faulted.Online.EnergyJoules,
		BaselineJoules:             faulted.Online.BaselineJoules,
		OracleFaultedSavingPercent: faulted.Oracle.SavingPercent,
		ResilienceRegretPercent:    faulted.Oracle.SavingPercent - faulted.Online.SavingPercent,

		SLOViolations:       faulted.Online.SLOViolations,
		WastedTransitions:   faulted.Online.WastedTransitions,
		WastedJoules:        faulted.Online.WastedJoules,
		ReHomedGiB:          faulted.Online.ReHomedGiB,
		ServerCrashes:       faulted.Online.ServerCrashes,
		StuckZombies:        faulted.Online.StuckZombies,
		ControllerFailovers: faulted.Online.ControllerFailovers,
		EmergencyWakes:      faulted.Online.EmergencyWakes,
		Arrivals:            faulted.Online.Arrivals,
		Admitted:            faulted.Online.Admitted,
		Rejected:            faulted.Online.Rejected,
	}
	if ff.Online.SavingPercent > 0 {
		rep.SavingsRetainedPercent = 100 * rep.SavingPercent / ff.Online.SavingPercent
	}
	return rep, nil
}

// CompareChaos runs the same online configuration under every given fault
// plan, in order — the scenario axis of the chaos comparison. The fault-free
// twin (online run + oracle) is computed once and shared across scenarios:
// it is a pure function of the configuration, so every RunChaos would
// reproduce it bit for bit anyway.
func CompareChaos(cfg Config, plans []*chaos.Plan) ([]chaos.Report, error) {
	ffCfg := cfg
	ffCfg.Chaos = nil
	ffCfg.Policy = freshPolicy(cfg.Policy)
	ffCfg.OnTick = nil // the hook and the obs bundle observe the faulted runs only
	ffCfg.Obs = nil
	ff, err := Regret(ffCfg)
	if err != nil {
		return nil, err
	}
	reports := make([]chaos.Report, 0, len(plans))
	for _, plan := range plans {
		rep, err := runChaosAgainst(cfg, plan, ff)
		if err != nil {
			name := "nil"
			if plan != nil {
				name = plan.Name
			}
			return nil, fmt.Errorf("autopilot: chaos scenario %q: %w", name, err)
		}
		reports = append(reports, rep)
	}
	return reports, nil
}

// freshPolicy returns a clean instance of the policy for one run: the
// bundled policies implement Clone (forecasting state reset); anything else
// is used as-is and then belongs to that single run.
func freshPolicy(p Policy) Policy {
	if c, ok := p.(interface{ Clone() Policy }); ok {
		return c.Clone()
	}
	return p
}

// oracleConfig builds the dcsim configuration Regret replays the oracle
// with; shared here so the chaos path and the fault-free path stay aligned
// field by field.
func oracleConfig(cfg *Config) dcsim.Config {
	return dcsim.Config{
		Trace:                     cfg.Trace,
		Policy:                    cfg.Policy.Planner(),
		Machine:                   cfg.Machine,
		ServerSpec:                cfg.ServerSpec,
		ConsolidationPeriodSec:    cfg.TickSec,
		OasisMemoryServerFraction: cfg.OasisMemoryServerFraction,
		Transitions:               cfg.Transitions,
		Workers:                   cfg.Workers,
		Chaos:                     cfg.Chaos,
	}
}
