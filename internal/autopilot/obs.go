package autopilot

import (
	"repro/internal/consolidation"
	"repro/internal/dcsim"
	"repro/internal/obs"
)

// apObs is the resolved observability handle of one run: every counter is
// looked up once when the loop starts, and every emission helper is nil-safe
// on the receiver, so a run without Config.Obs pays a single pointer test per
// site and allocates nothing. The helpers also keep the obs package out of
// the loop's own files — tick() has a local variable named obs (the policy
// Observation) that would shadow the package there.
//
// All events are stamped with the loop's own simulated clock (EmitAt with
// the event instant in seconds), never wall time: the loop is strictly
// sequential, so the exported trace is byte-identical across runs for any
// Workers value.
type apObs struct {
	trace *obs.Trace

	ticks          *obs.Counter
	arrivals       *obs.Counter
	admitted       *obs.Counter
	rejected       *obs.Counter
	departures     *obs.Counter
	emergencyWakes *obs.Counter
	transitions    *obs.Counter
	migrations     *obs.Counter
	chaosFaults    *obs.Counter
	chaosRepairs   *obs.Counter
}

// newAPObs resolves the bundle's counters, or returns nil when the run is
// unobserved.
func newAPObs(o *obs.Obs) *apObs {
	if o == nil {
		return nil
	}
	reg := o.Metrics
	return &apObs{
		trace:          o.Trace,
		ticks:          reg.Counter("autopilot_ticks_total", "Re-planning ticks executed."),
		arrivals:       reg.Counter("autopilot_arrivals_total", "Stream arrivals observed."),
		admitted:       reg.Counter("autopilot_admitted_total", "Arrivals admitted."),
		rejected:       reg.Counter("autopilot_rejected_total", "Arrivals rejected at admission."),
		departures:     reg.Counter("autopilot_departures_total", "Admitted tasks departed."),
		emergencyWakes: reg.Counter("autopilot_emergency_wakes_total", "Servers woken mid-interval for an arrival."),
		transitions:    reg.Counter("autopilot_transitions_total", "ACPI state transitions billed."),
		migrations:     reg.Counter("autopilot_migrations_total", "VM migrations billed."),
		chaosFaults:    reg.Counter("autopilot_chaos_faults_total", "Chaos faults struck (crashes, wake failures, controller losses)."),
		chaosRepairs:   reg.Counter("autopilot_chaos_repairs_total", "Chaos repairs applied (crash and stuck-zombie windows closed)."),
	}
}

// observeTick records one re-planning pass: the tick ordinal and population,
// then the posture the policy just installed.
func (ob *apObs) observeTick(now int64, tick, running int, p consolidation.FleetPlan) {
	if ob == nil {
		return
	}
	ob.ticks.Inc()
	ob.trace.EmitAt(now, "autopilot", "tick",
		obs.F("tick", int64(tick)), obs.F("running", int64(running)))
	ob.trace.EmitAt(now, "autopilot", "replan",
		obs.F("active", int64(p.ActiveHosts)), obs.F("zombie", int64(p.ZombieHosts)),
		obs.F("memsrv", int64(p.MemoryServers)), obs.F("sleep", int64(p.SleepHosts)))
}

// observeBill records the billed cost of one posture change. Joules are
// rounded to whole units for the trace — the exact ledger lives in Result.
func (ob *apObs) observeBill(now int64, bill dcsim.TransitionBill) {
	if ob == nil {
		return
	}
	ob.transitions.Add(uint64(bill.Transitions))
	ob.migrations.Add(uint64(bill.Migrations))
	ob.trace.EmitAt(now, "autopilot", "billed",
		obs.F("transitions", int64(bill.Transitions)),
		obs.F("migrations", int64(bill.Migrations)),
		obs.F("joules", int64(bill.Joules)))
}

// observeArrival records one arrival and its admission outcome.
func (ob *apObs) observeArrival(ok bool) {
	if ob == nil {
		return
	}
	ob.arrivals.Inc()
	if ok {
		ob.admitted.Inc()
	} else {
		ob.rejected.Inc()
	}
}

// observeDepart records one departure.
func (ob *apObs) observeDepart() {
	if ob == nil {
		return
	}
	ob.departures.Inc()
}

// observeEmergencyWake records servers woken outside a tick because an
// arrival did not fit the posture held.
func (ob *apObs) observeEmergencyWake(now int64, woken int) {
	if ob == nil || woken == 0 {
		return
	}
	ob.emergencyWakes.Add(uint64(woken))
	ob.trace.EmitAt(now, "autopilot", "wake.emergency", obs.F("woken", int64(woken)))
}

// observeWakeFailures records S3->S0 attempts an injected fault failed.
func (ob *apObs) observeWakeFailures(now int64, failed int) {
	if ob == nil {
		return
	}
	ob.chaosFaults.Add(uint64(failed))
	ob.trace.EmitAt(now, "chaos", "fault.wake", obs.F("failed", int64(failed)))
}

// observeChaosCrash records one ServerCrash fault striking.
func (ob *apObs) observeChaosCrash(now int64, struck int) {
	if ob == nil || struck == 0 {
		return
	}
	ob.chaosFaults.Add(uint64(struck))
	ob.trace.EmitAt(now, "chaos", "fault.crash", obs.F("struck", int64(struck)))
}

// observeChaosCtrlLoss records one controller loss and its rebuild window.
func (ob *apObs) observeChaosCtrlLoss(now, durationSec int64) {
	if ob == nil {
		return
	}
	ob.chaosFaults.Inc()
	ob.trace.EmitAt(now, "chaos", "fault.ctrl_loss", obs.F("rebuild_s", durationSec))
}

// observeChaosRepair records a fault window closing: n servers return to the
// sleep pool. kind distinguishes crash repairs from stuck-zombie releases.
func (ob *apObs) observeChaosRepair(now int64, kind string, n int) {
	if ob == nil || n == 0 {
		return
	}
	ob.chaosRepairs.Add(uint64(n))
	ob.trace.EmitAt(now, "chaos", "repair", obs.FS("kind", kind), obs.F("servers", int64(n)))
}
