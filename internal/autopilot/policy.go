package autopilot

import (
	"math"

	"repro/internal/consolidation"
)

// Observation is what an online policy sees at a tick: strictly the present
// and the past — never the trace's future.
type Observation struct {
	// NowSec is the tick instant; TickSec the re-planning period.
	NowSec  int64
	TickSec int64
	// VMs is the currently admitted population, sorted by ID. The slice is
	// shared with the loop and must not be mutated.
	VMs []consolidation.VMDemand
	// Prev is the posture the fleet currently holds.
	Prev consolidation.FleetPlan
	// Spec and TotalServers describe the fleet hardware.
	Spec         consolidation.ServerSpec
	TotalServers int
}

// Policy decides fleet postures online. Implementations may hold forecasting
// state (the loop calls Decide strictly in tick order), so a policy instance
// belongs to a single run.
type Policy interface {
	// Name identifies the policy in result tables.
	Name() string
	// Planner is the base consolidation planner the policy sizes postures
	// with; the loop also uses it for admission checks and the regret
	// comparison runs the offline oracle with the same planner.
	Planner() consolidation.Policy
	// Decide returns the posture for the next interval. The loop clamps and
	// re-derives the residual sleepers, so Decide only has to get the
	// active/zombie/memory-server counts right.
	Decide(obs Observation) consolidation.FleetPlan
}

// ReactiveThreshold re-plans from scratch at every tick and keeps a fixed
// headroom of extra active hosts above the planner's requirement, absorbing
// the arrivals of the coming interval. It reacts instantly in both
// directions, so a fluctuating population makes it flap: servers suspend on
// every dip and wake again on the next wiggle.
type ReactiveThreshold struct {
	// Base is the consolidation planner sizing the posture.
	Base consolidation.Policy
	// Headroom is the fraction of extra active hosts kept awake above the
	// planner's requirement (0.15 by default).
	Headroom float64
}

// NewReactive returns the reactive policy over the given planner with the
// default headroom.
func NewReactive(base consolidation.Policy) *ReactiveThreshold {
	return &ReactiveThreshold{Base: base, Headroom: 0.15}
}

// Name implements Policy.
func (r *ReactiveThreshold) Name() string { return "reactive" }

// Planner implements Policy.
func (r *ReactiveThreshold) Planner() consolidation.Policy { return r.Base }

// Clone returns a fresh instance for a new run (the policy is stateless, so
// this is a plain copy).
func (r *ReactiveThreshold) Clone() Policy {
	c := *r
	return &c
}

// Decide implements Policy.
func (r *ReactiveThreshold) Decide(obs Observation) consolidation.FleetPlan {
	plan := r.Base.Plan(obs.VMs, obs.Spec, obs.TotalServers)
	headroom := r.Headroom
	if headroom < 0 {
		headroom = 0
	}
	return addHeadroom(plan, headroom)
}

// Hysteresis damps the reactive policy with separate suspend and wake
// watermarks: scale-ups happen immediately (with a small safety headroom),
// but scale-downs only happen once the planner's requirement has fallen a
// whole watermark below the posture currently held. Small fluctuations
// therefore cause no transitions at all, and a sustained decline is released
// in a few large steps instead of many small ones.
type Hysteresis struct {
	// Base is the consolidation planner sizing the posture.
	Base consolidation.Policy
	// WakeHeadroom is the fraction of extra active hosts kept on scale-up
	// (0.05 by default) — enough to absorb arrivals, cheaper than the
	// reactive policy's standing headroom.
	WakeHeadroom float64
	// SuspendWatermark is the fraction of the currently active hosts the
	// planner's requirement must fall below before any server is released
	// (0.2 by default).
	SuspendWatermark float64
}

// NewHysteresis returns the hysteresis policy over the given planner with
// the default watermarks.
func NewHysteresis(base consolidation.Policy) *Hysteresis {
	return &Hysteresis{Base: base, WakeHeadroom: 0.05, SuspendWatermark: 0.2}
}

// Name implements Policy.
func (h *Hysteresis) Name() string { return "hysteresis" }

// Planner implements Policy.
func (h *Hysteresis) Planner() consolidation.Policy { return h.Base }

// Clone returns a fresh instance for a new run (the policy reads only the
// observation's Prev posture, so this is a plain copy).
func (h *Hysteresis) Clone() Policy {
	c := *h
	return &c
}

// Decide implements Policy.
func (h *Hysteresis) Decide(obs Observation) consolidation.FleetPlan {
	plan := h.Base.Plan(obs.VMs, obs.Spec, obs.TotalServers)
	target := addHeadroom(plan, h.WakeHeadroom)
	prevActive := obs.Prev.ActiveHosts
	if target.ActiveHosts >= prevActive {
		// Scale-up (or steady): adopt the target immediately — capacity
		// safety beats transition thrift.
		return target
	}
	watermark := int(math.Ceil(h.SuspendWatermark * float64(prevActive)))
	if watermark < 1 {
		watermark = 1
	}
	if prevActive-target.ActiveHosts <= watermark {
		// Within the dead band: hold the current active set, but track the
		// planner's zombie/memory-server mix for the part that did change.
		held := target
		freed := prevActive - target.ActiveHosts
		held.ActiveHosts = prevActive
		held.SleepHosts -= freed
		return held
	}
	return target
}

// PredictiveEWMA forecasts the next interval's demand with an exponentially
// weighted moving average plus a one-step trend, and sizes the posture for
// the forecast instead of the instantaneous population, holding a
// forecast-uncertainty safety margin (MinHeadroom) on top. Rising load is
// anticipated, so the policy tracks demand more tightly than a standing
// reactive headroom ever can; the forecast never plans below the present
// demand, so admission safety matches the reactive policy.
type PredictiveEWMA struct {
	// Base is the consolidation planner sizing the posture.
	Base consolidation.Policy
	// Alpha is the EWMA smoothing factor in (0,1]; 0.4 by default.
	Alpha float64
	// TrendGain scales the one-step demand slope added to the forecast;
	// 1.0 by default.
	TrendGain float64
	// MaxInflation caps the forecast relative to the present demand (1.5 by
	// default), bounding how much capacity a spike forecast can hold awake.
	MaxInflation float64
	// MinHeadroom is the forecast-uncertainty safety margin: the fraction of
	// extra active hosts always kept awake above the sized posture (0.1 by
	// default). A point forecast is wrong most ticks — mid-interval arrivals
	// the forecast missed land on this margin instead of forcing a wake per
	// arrival, and without any margin the policy would ride the planner's bare
	// requirement, which no deployable controller does.
	MinHeadroom float64

	haveState        bool
	ewmaCPU, ewmaMem float64
	prevCPU, prevMem float64
}

// NewPredictiveEWMA returns the forecasting policy over the given planner
// with the default smoothing parameters.
func NewPredictiveEWMA(base consolidation.Policy) *PredictiveEWMA {
	return &PredictiveEWMA{Base: base, Alpha: 0.4, TrendGain: 1.0, MaxInflation: 1.5, MinHeadroom: 0.1}
}

// Name implements Policy.
func (p *PredictiveEWMA) Name() string { return "ewma" }

// Planner implements Policy.
func (p *PredictiveEWMA) Planner() consolidation.Policy { return p.Base }

// Clone returns a fresh instance for a new run: the smoothing parameters are
// copied, the forecasting state is reset.
func (p *PredictiveEWMA) Clone() Policy {
	c := PredictiveEWMA{Base: p.Base, Alpha: p.Alpha, TrendGain: p.TrendGain,
		MaxInflation: p.MaxInflation, MinHeadroom: p.MinHeadroom}
	return &c
}

// Decide implements Policy.
func (p *PredictiveEWMA) Decide(obs Observation) consolidation.FleetPlan {
	var curCPU, curMem float64
	for _, v := range obs.VMs {
		curCPU += v.BookedCPU
		curMem += v.BookedMemGiB
	}
	if !p.haveState {
		p.ewmaCPU, p.ewmaMem = curCPU, curMem
		p.prevCPU, p.prevMem = curCPU, curMem
		p.haveState = true
	}
	p.ewmaCPU = p.Alpha*curCPU + (1-p.Alpha)*p.ewmaCPU
	p.ewmaMem = p.Alpha*curMem + (1-p.Alpha)*p.ewmaMem
	forecastCPU := p.ewmaCPU + p.TrendGain*(curCPU-p.prevCPU)
	forecastMem := p.ewmaMem + p.TrendGain*(curMem-p.prevMem)
	p.prevCPU, p.prevMem = curCPU, curMem

	factor := 1.0
	if curCPU > 0 && forecastCPU/curCPU > factor {
		factor = forecastCPU / curCPU
	}
	if curMem > 0 && forecastMem/curMem > factor {
		factor = forecastMem / curMem
	}
	if lim := p.MaxInflation; lim > 1 && factor > lim {
		factor = lim
	}

	vms := obs.VMs
	if factor > 1 {
		scaled := make([]consolidation.VMDemand, len(obs.VMs))
		for i, v := range obs.VMs {
			v.BookedCPU *= factor
			v.BookedMemGiB *= factor
			v.UsedCPU *= factor
			v.UsedMemGiB *= factor
			scaled[i] = v
		}
		vms = scaled
	}
	plan := p.Base.Plan(vms, obs.Spec, obs.TotalServers)
	return addHeadroom(plan, p.MinHeadroom)
}

// addHeadroom wakes ceil(fraction*active) extra hosts out of the plan's
// sleepers.
func addHeadroom(p consolidation.FleetPlan, fraction float64) consolidation.FleetPlan {
	if fraction <= 0 {
		return p
	}
	extra := int(math.Ceil(float64(p.ActiveHosts) * fraction))
	if extra > p.SleepHosts {
		extra = p.SleepHosts
	}
	p.ActiveHosts += extra
	p.SleepHosts -= extra
	return p
}

// Policies returns a fresh instance of every bundled online policy over the
// given base planner, in presentation order (reactive, hysteresis, ewma).
func Policies(base consolidation.Policy) []Policy {
	return []Policy{NewReactive(base), NewHysteresis(base), NewPredictiveEWMA(base)}
}
