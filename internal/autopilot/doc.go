// Package autopilot is the online autonomic control plane: a deterministic
// discrete-event loop that consumes a trace's streaming arrival feed
// (trace.Stream), admits and places each task at its arrival instant, and on
// a configurable tick re-plans consolidation incrementally — the adopted
// posture is diffed into suspend/zombie/wake events via consolidation.Delta
// (consolidation.Replan packages plan and delta for cost-aware controllers)
// — under a pluggable online policy: reactive threshold, hysteresis
// watermarks, or predictive EWMA forecasting.
//
// The offline simulator (internal/dcsim) replays whole epochs with oracle
// knowledge of each epoch's population, which makes every Figure 10 savings
// number an optimistic bound (the paper's consolidation manager, §6.6, runs
// online and has no such knowledge). The autopilot closes that gap: it only
// ever sees the past, pays for every posture change through the same
// transition-cost model as the offline engine (dcsim.TransitionModel.Cost),
// and bills steady-state power through the same pricing rules
// (dcsim.PosturePowerWatts, dcsim.BaselinePowerWatts) on a tick-quantized
// ledger that mirrors the oracle's epoch accounting (see Run), so the regret
// report (Regret) comparing its costed saving against dcsim.Oracle on the
// same trace isolates decision quality alone. Everything is
// seed-deterministic: a fixed trace seed reproduces the full regret report
// bit for bit.
//
// Decisions can additionally be executed against a live multi-rack
// fleet.Fleet through FleetExecutor, which mirrors every posture as real
// per-server ACPI transitions (S0/Sz/S3) on the rack model's energy ledger.
//
// The loop is also the injection point of the deterministic fault layer
// (internal/chaos): with Config.Chaos set, crashes, stuck wakes, controller
// losses and fabric degradation are consumed as a fourth event source
// (see chaos.go) — crashed and stuck servers leave the usable pool, failed
// emergency wakes bill their wasted transitions and escalate, crashed
// serving servers re-home their remote memory — and RunChaos compares the
// faulted run against its fault-free twin and against the oracle re-run
// under the identical schedule (the resilience regret).
package autopilot
