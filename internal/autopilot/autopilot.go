package autopilot

import (
	"fmt"
	"sort"

	"repro/internal/consolidation"
	"repro/internal/dcsim"
	"repro/internal/energy"
	"repro/internal/trace"
)

// Config parameterises one online control-plane run.
type Config struct {
	// Trace is the workload whose arrival feed the loop consumes.
	Trace *trace.Trace
	// Policy is the online decision policy (reactive, hysteresis, EWMA...).
	// The bundled policies hold forecasting state, so a Config needs a fresh
	// policy per run.
	Policy Policy
	// Machine is the power profile of every server in the fleet.
	Machine *energy.MachineProfile
	// ServerSpec is the capacity of every server.
	ServerSpec consolidation.ServerSpec
	// TickSec is the re-planning period of the control loop; 300 s by
	// default. The regret oracle runs with the same consolidation period.
	TickSec int64
	// OasisMemoryServerFraction is the relative power of an Oasis memory
	// server (0.4 per the paper).
	OasisMemoryServerFraction float64
	// Transitions prices every posture change; nil selects
	// dcsim.DefaultTransitionModel, the same model the offline oracle pays
	// under.
	Transitions *dcsim.TransitionModel
	// Executor, when set, mirrors every decision onto a backing system (a
	// live fleet.Fleet via FleetExecutor). Nil keeps the run on the abstract
	// energy ledger only.
	Executor Executor
}

// Validate checks the configuration.
func (c *Config) Validate() error {
	if c.Trace == nil {
		return fmt.Errorf("autopilot: a trace is required")
	}
	if err := c.Trace.Validate(); err != nil {
		return err
	}
	if c.Policy == nil {
		return fmt.Errorf("autopilot: an online policy is required")
	}
	if c.Policy.Planner() == nil {
		return fmt.Errorf("autopilot: policy %q has no base planner", c.Policy.Name())
	}
	if c.Machine == nil {
		return fmt.Errorf("autopilot: a machine power profile is required")
	}
	if err := c.Machine.Validate(); err != nil {
		return err
	}
	if c.ServerSpec.Cores <= 0 || c.ServerSpec.MemGiB <= 0 {
		return fmt.Errorf("autopilot: server spec needs positive capacity")
	}
	if c.TickSec < 0 {
		return fmt.Errorf("autopilot: negative tick period %d", c.TickSec)
	}
	if c.Transitions != nil {
		if err := c.Transitions.Validate(); err != nil {
			return err
		}
	}
	// An executor that knows its server count (FleetExecutor does) must match
	// the trace's fleet size — catching it here turns a mid-run panic into a
	// configuration error.
	if sized, ok := c.Executor.(interface{ Servers() int }); ok {
		if n := sized.Servers(); n != c.Trace.Machines {
			return fmt.Errorf("autopilot: executor drives %d servers, trace has %d machines", n, c.Trace.Machines)
		}
	}
	return nil
}

// applyDefaults fills optional fields.
func (c *Config) applyDefaults() {
	if c.TickSec == 0 {
		c.TickSec = 300
	}
	if c.OasisMemoryServerFraction <= 0 {
		c.OasisMemoryServerFraction = 0.4
	}
	if c.Transitions == nil {
		c.Transitions = dcsim.DefaultTransitionModel()
	}
}

// Result summarises one online run. Energy accounting is directly comparable
// to dcsim.Result: same baseline rule, same transition-cost model, same
// steady-state pricing — only the knowledge differs.
type Result struct {
	// Policy is the online policy, Planner its base consolidation planner.
	Policy  string
	Planner string
	Trace   string
	Machine string
	// TickSec is the re-planning period the run used.
	TickSec int64
	// EnergyJoules is the fleet energy over the horizon, transition costs
	// included; BaselineJoules is the no-consolidation fleet energy. Both are
	// tick-quantized: each tick interval is billed as one block against the
	// interval's cumulative population, the same rule the offline engine
	// applies per epoch (see Run).
	EnergyJoules   float64
	BaselineJoules float64
	// SavingPercent is the costed online saving: 100*(1-Energy/Baseline).
	SavingPercent float64
	// TransitionJoules is the part of EnergyJoules charged to posture
	// changes (ACPI events, migration drains, remote-memory churn).
	TransitionJoules float64
	// StateTransitions counts ACPI state changes; Migrations the VM moves
	// draining freed hosts; MigrationSeconds the host time spent draining.
	StateTransitions int
	Migrations       int
	MigrationSeconds float64
	// Ticks is the number of re-planning ticks executed.
	Ticks int
	// Arrivals and Departures count the stream events seen; Admitted and
	// Rejected split the arrivals by the admission decision.
	Arrivals   int
	Departures int
	Admitted   int
	Rejected   int
	// EmergencyWakes counts servers woken between ticks because an arrival
	// did not fit the current posture — the cost of not knowing the future.
	EmergencyWakes int
	// MeanActiveHosts is the time-weighted mean number of S0 servers;
	// PeakActiveHosts the maximum posture the loop ever held.
	MeanActiveHosts float64
	PeakActiveHosts int
}

// loop is the mutable state of one run.
type loop struct {
	cfg     *Config
	total   int
	planner consolidation.Policy

	vms       []consolidation.VMDemand // sorted by ID
	admitted  map[string]bool
	bookedCPU float64
	bookedMem float64
	usedCPU   float64
	usedMem   float64

	posture consolidation.FleetPlan
	// intervalStart is the beginning of the current tick interval and cum the
	// interval's cumulative population: every task that has been admitted at
	// any point since the interval started, departures included. The ledger
	// bills whole intervals against cum (see billInterval), and emergency
	// wakes size against it too — a departure's capacity is only reclaimed at
	// the next re-plan tick, the way a periodic consolidation manager works.
	intervalStart int64
	cum           []consolidation.VMDemand // sorted by ID

	res      Result
	activeDt float64
}

// Run executes the online control loop over the trace's arrival feed.
//
// The loop is event-driven: arrivals, departures, and re-planning ticks are
// processed in time order (departures before arrivals at equal instants,
// trace.Stream's order, and a due tick last, so the policy observes the
// population as of the tick instant). The first tick fires at TickSec —
// before it the fleet holds the all-awake initial posture, because an online
// controller has not seen anything yet.
//
// The energy ledger is tick-quantized, deliberately mirroring the offline
// engine's epoch accounting so the regret comparison is apples to apples: at
// the end of each tick interval the whole interval is billed at the posture
// then held (emergency wakes included — a server the controller had to power
// on mid-interval was provisioned for this interval's population) with the
// utilization and baseline of the interval's cumulative population, exactly
// the population the offline oracle plans that epoch for. Decisions remain
// strictly causal; only the billing granularity is aligned.
func Run(cfg Config) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	cfg.applyDefaults()

	l := &loop{
		cfg:      &cfg,
		total:    cfg.Trace.Machines,
		planner:  cfg.Policy.Planner(),
		admitted: make(map[string]bool),
		posture:  consolidation.InitialPlan(cfg.Trace.Machines),
	}
	l.res = Result{
		Policy:          cfg.Policy.Name(),
		Planner:         l.planner.Name(),
		Trace:           cfg.Trace.Name,
		Machine:         cfg.Machine.Name,
		TickSec:         cfg.TickSec,
		PeakActiveHosts: l.posture.ActiveHosts,
	}

	horizon := cfg.Trace.HorizonSec
	stream := trace.NewStream(cfg.Trace)
	ev, evOK := stream.Next()
	now := int64(0)
	nextTick := cfg.TickSec

	for now < horizon {
		// The next moment: the earliest of the next stream event, the next
		// tick and the horizon.
		t := horizon
		if nextTick < t {
			t = nextTick
		}
		if evOK && ev.AtSec < t {
			t = ev.AtSec
		}
		l.integrate(now, t)
		now = t

		for evOK && ev.AtSec == now {
			if ev.Kind == trace.Depart {
				l.depart(ev.Task)
			} else {
				l.arrive(ev.Task)
			}
			ev, evOK = stream.Next()
		}
		if now == nextTick {
			if now < horizon {
				l.tick(now, horizon)
			}
			nextTick += cfg.TickSec
		}
	}
	return l.finish(horizon), nil
}

// integrate advances the physical clock for [from, to): the time-weighted
// posture statistics and the executor's backing system. Steady-state energy
// is not charged here — the ledger bills whole intervals in billInterval.
func (l *loop) integrate(from, to int64) {
	if to <= from {
		return
	}
	l.activeDt += float64(l.posture.ActiveHosts) * float64(to-from)
	if l.cfg.Executor != nil {
		l.cfg.Executor.Advance(to - from)
	}
}

// billInterval closes the ledger over [intervalStart, to): steady-state
// fleet power at the posture currently held, with the active utilization and
// the no-consolidation baseline both computed over the interval's cumulative
// population — the exact accounting rule the offline engine applies to the
// same span, so the only difference left between the two sides of a regret
// comparison is the quality of the posture decisions.
func (l *loop) billInterval(to int64) {
	dt := float64(to - l.intervalStart)
	if dt <= 0 {
		return
	}
	var usedCPU float64
	for _, v := range l.cum {
		usedCPU += v.UsedCPU
	}
	billed := l.posture
	billed.ActiveCPUUtilization = utilization(usedCPU, billed.ActiveHosts, l.cfg.ServerSpec.Cores)
	l.res.EnergyJoules += dcsim.PosturePowerWatts(l.cfg.Machine, billed, l.cfg.OasisMemoryServerFraction) * dt
	l.res.BaselineJoules += dcsim.BaselinePowerWatts(l.cfg.Machine, l.cfg.ServerSpec, usedCPU, l.total) * dt
}

// arrive admits and places one task at its arrival instant. A task whose
// booked reservation cannot fit the fleet even fully awake is rejected; an
// admitted task that does not fit the current posture triggers an emergency
// wake, billed as ACPI transitions.
func (l *loop) arrive(t trace.Task) {
	l.res.Arrivals++
	v := demandOf(t)
	if l.bookedCPU+v.BookedCPU > float64(l.total)*l.cfg.ServerSpec.Cores ||
		l.bookedMem+v.BookedMemGiB > float64(l.total)*l.cfg.ServerSpec.MemGiB {
		l.res.Rejected++
		return
	}
	l.insert(v)
	l.cum = insertSorted(l.cum, v)
	l.admitted[v.ID] = true
	l.res.Admitted++
	l.refreshUtil()

	// Placement check: the planner's sizing rule for the interval's
	// cumulative population (capacity freed by a departure is only reclaimed
	// at the next tick, so mid-interval arrivals size against everything the
	// interval has hosted). If the posture holds fewer active hosts than
	// required, wake the difference immediately — sleepers first, then
	// zombies, then memory servers.
	required := l.planner.Plan(l.cum, l.cfg.ServerSpec, l.total)
	if need := required.ActiveHosts - l.posture.ActiveHosts; need > 0 {
		next := wake(l.posture, need)
		next = l.normalize(l.posture.Policy, next)
		d := consolidation.Delta(l.posture, next, len(l.vms))
		l.res.EmergencyWakes += d.SleepExits + d.ZombieExits + d.MemoryServerStops
		l.applyPosture(t.StartSec, next, false, 0) // ACPI cost only: no churn mid-epoch
	}
}

// depart retires one admitted task.
func (l *loop) depart(t trace.Task) {
	id := t.VMID()
	if !l.admitted[id] {
		return // was rejected at admission
	}
	delete(l.admitted, id)
	l.remove(id)
	l.res.Departures++
	l.refreshUtil()
}

// tick runs one re-planning pass: the closing interval is billed, then the
// policy observes the current population and posture and decides the posture
// for the next interval, billed through the shared transition-cost model
// (churn included, over the interval that the posture will hold).
func (l *loop) tick(now, horizon int64) {
	l.billInterval(now)
	obs := Observation{
		NowSec:       now,
		TickSec:      l.cfg.TickSec,
		VMs:          l.vms,
		Prev:         l.posture,
		Spec:         l.cfg.ServerSpec,
		TotalServers: l.total,
	}
	plan := l.normalize(l.cfg.Policy.Name(), l.cfg.Policy.Decide(obs))
	dt := l.cfg.TickSec
	if rest := horizon - now; rest < dt {
		dt = rest
	}
	l.applyPosture(now, plan, true, float64(dt))
	l.res.Ticks++
	l.intervalStart = now
	l.cum = append(l.cum[:0], l.vms...)
}

// applyPosture bills the posture change and installs it. withChurn selects
// whether the remote-memory churn of the new posture over dtSec is charged —
// true at ticks (mirroring the offline engine's per-epoch charge), false for
// mid-interval emergency wakes, whose interval was already charged at the
// last tick.
func (l *loop) applyPosture(nowSec int64, next consolidation.FleetPlan, withChurn bool, dtSec float64) {
	priced := next
	if !withChurn {
		priced.RemoteMemoryGiB = 0
	}
	bill := l.cfg.Transitions.Cost(l.cfg.Machine, l.planner.Name(), l.posture, priced, l.vms, dtSec)
	l.res.EnergyJoules += bill.Joules
	l.res.TransitionJoules += bill.Joules
	l.res.StateTransitions += bill.Transitions
	l.res.Migrations += bill.Migrations
	l.res.MigrationSeconds += bill.MigrationSeconds
	if l.cfg.Executor != nil {
		if err := l.cfg.Executor.Apply(nowSec, l.posture, next); err != nil {
			// Executor divergence is a modelling bug; surface it loudly
			// rather than silently drifting from the ledger.
			panic(fmt.Sprintf("autopilot: executor apply: %v", err))
		}
	}
	l.posture = next
	if next.ActiveHosts > l.res.PeakActiveHosts {
		l.res.PeakActiveHosts = next.ActiveHosts
	}
}

// normalize clamps a policy's plan to the fleet size, recomputes the residual
// sleepers and the active utilization from the actually-running population,
// and stamps the policy name.
func (l *loop) normalize(name string, p consolidation.FleetPlan) consolidation.FleetPlan {
	clamp := func(n, hi int) int {
		if n < 0 {
			return 0
		}
		if n > hi {
			return hi
		}
		return n
	}
	p.ActiveHosts = clamp(p.ActiveHosts, l.total)
	p.ZombieHosts = clamp(p.ZombieHosts, l.total-p.ActiveHosts)
	p.MemoryServers = clamp(p.MemoryServers, l.total-p.ActiveHosts-p.ZombieHosts)
	p.SleepHosts = l.total - p.ActiveHosts - p.ZombieHosts - p.MemoryServers
	p.Policy = name
	p.ActiveCPUUtilization = utilization(l.usedCPU, p.ActiveHosts, l.cfg.ServerSpec.Cores)
	return p
}

// refreshUtil recomputes the posture's utilization after a population change.
func (l *loop) refreshUtil() {
	l.posture.ActiveCPUUtilization = utilization(l.usedCPU, l.posture.ActiveHosts, l.cfg.ServerSpec.Cores)
}

// finish bills the final (possibly partial) interval and closes the
// integrals into the Result.
func (l *loop) finish(horizon int64) Result {
	l.billInterval(horizon)
	if horizon > 0 {
		l.res.MeanActiveHosts = l.activeDt / float64(horizon)
	}
	if l.res.BaselineJoules > 0 {
		l.res.SavingPercent = 100 * (1 - l.res.EnergyJoules/l.res.BaselineJoules)
	}
	return l.res
}

// insert adds a VM to the population, keeping it sorted by ID.
func (l *loop) insert(v consolidation.VMDemand) {
	l.vms = insertSorted(l.vms, v)
	l.bookedCPU += v.BookedCPU
	l.bookedMem += v.BookedMemGiB
	l.usedCPU += v.UsedCPU
	l.usedMem += v.UsedMemGiB
}

// insertSorted inserts a VM into an ID-sorted slice.
func insertSorted(s []consolidation.VMDemand, v consolidation.VMDemand) []consolidation.VMDemand {
	i := sort.Search(len(s), func(i int) bool { return s[i].ID >= v.ID })
	s = append(s, consolidation.VMDemand{})
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}

// remove deletes a VM from the population by ID.
func (l *loop) remove(id string) {
	i := sort.Search(len(l.vms), func(i int) bool { return l.vms[i].ID >= id })
	if i >= len(l.vms) || l.vms[i].ID != id {
		return
	}
	v := l.vms[i]
	l.vms = append(l.vms[:i], l.vms[i+1:]...)
	l.bookedCPU -= v.BookedCPU
	l.bookedMem -= v.BookedMemGiB
	l.usedCPU -= v.UsedCPU
	l.usedMem -= v.UsedMemGiB
}

// wake raises the posture's active count by need servers, drawing on
// sleepers first, then zombies (shrinking the remotely-served memory
// proportionally), then memory servers.
func wake(p consolidation.FleetPlan, need int) consolidation.FleetPlan {
	take := func(avail int) int {
		if need < avail {
			avail = need
		}
		need -= avail
		return avail
	}
	if n := take(p.SleepHosts); n > 0 {
		p.SleepHosts -= n
		p.ActiveHosts += n
	}
	if n := take(p.ZombieHosts); n > 0 {
		p.RemoteMemoryGiB *= float64(p.ZombieHosts-n) / float64(p.ZombieHosts)
		p.ZombieHosts -= n
		p.ActiveHosts += n
	}
	if n := take(p.MemoryServers); n > 0 {
		p.MemoryServers -= n
		p.ActiveHosts += n
	}
	return p
}

// utilization is used CPU over active capacity, clamped to [0,1].
func utilization(usedCPU float64, active int, cores float64) float64 {
	if active <= 0 || cores <= 0 {
		return 0
	}
	u := usedCPU / (float64(active) * cores)
	if u > 1 {
		return 1
	}
	if u < 0 {
		return 0
	}
	return u
}

// demandOf converts a trace task into the consolidation-level VM view.
func demandOf(t trace.Task) consolidation.VMDemand {
	return consolidation.VMDemand{
		ID:           t.VMID(),
		BookedCPU:    t.BookedCPU,
		BookedMemGiB: t.BookedMemGiB,
		UsedCPU:      t.UsedCPU,
		UsedMemGiB:   t.UsedMemGiB,
	}
}
