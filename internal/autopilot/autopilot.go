package autopilot

import (
	"fmt"
	"sort"

	"repro/internal/acpi"
	"repro/internal/chaos"
	"repro/internal/consolidation"
	"repro/internal/dcsim"
	"repro/internal/energy"
	"repro/internal/ident"
	"repro/internal/obs"
	"repro/internal/trace"
)

// Config parameterises one online control-plane run.
type Config struct {
	// Trace is the workload whose arrival feed the loop consumes.
	Trace *trace.Trace
	// Policy is the online decision policy (reactive, hysteresis, EWMA...).
	// The bundled policies hold forecasting state, so a Config needs a fresh
	// policy per run.
	Policy Policy
	// Machine is the power profile of every server in the fleet.
	Machine *energy.MachineProfile
	// ServerSpec is the capacity of every server.
	ServerSpec consolidation.ServerSpec
	// TickSec is the re-planning period of the control loop; 300 s by
	// default. The regret oracle runs with the same consolidation period.
	TickSec int64
	// OasisMemoryServerFraction is the relative power of an Oasis memory
	// server (0.4 per the paper).
	OasisMemoryServerFraction float64
	// Transitions prices every posture change; nil selects
	// dcsim.DefaultTransitionModel, the same model the offline oracle pays
	// under.
	Transitions *dcsim.TransitionModel
	// Executor, when set, mirrors every decision onto a backing system (a
	// live fleet.Fleet via FleetExecutor). Nil keeps the run on the abstract
	// energy ledger only.
	Executor Executor
	// Chaos replays the run under a deterministic fault schedule: crashes,
	// stuck wakes, controller losses and fabric degradation are injected as
	// loop events and billed as energy penalties (see chaos.go). Nil or an
	// empty plan leaves the run bit-identical to the fault-free path. The
	// caller decides whether to apply the plan's trace perturbation
	// (chaos.Plan.PerturbTrace) — Regret and RunChaos do.
	Chaos *chaos.Plan
	// Workers shards the offline oracle's epoch accounting when this config
	// is replayed through Regret or RunChaos; the online loop itself is
	// inherently sequential. Any value yields bit-identical reports.
	Workers int
	// OnTick, when set, observes the control loop: it is called after every
	// re-planning pass with a snapshot of the posture just installed and the
	// run's cumulative counters. Telemetry only — the callback cannot
	// influence the run, and a nil hook leaves the loop bit-identical. Under
	// RunChaos the hook observes the faulted run only (the fault-free twin
	// runs silently), so a subscriber sees one coherent event sequence.
	OnTick func(TickEvent)
	// Obs, when set, attaches the run to an observability bundle: counters
	// for the stream and ledger totals, and trace events for every tick,
	// re-plan, billed transition and chaos moment, stamped with the loop's
	// simulated clock so exports are byte-stable. Telemetry only — a nil
	// bundle leaves the loop bit-identical and allocation-free.
	Obs *obs.Obs
}

// TickEvent is the telemetry snapshot OnTick receives after each re-planning
// tick: the instant, the posture the policy just installed, and the run's
// cumulative stream and energy counters up to that instant.
type TickEvent struct {
	// AtSec is the tick instant; Tick its ordinal (1-based).
	AtSec int64
	Tick  int
	// The posture installed for the next interval.
	ActiveHosts     int
	ZombieHosts     int
	MemoryServers   int
	SleepHosts      int
	RemoteMemoryGiB float64
	// Running is the admitted population present at the tick.
	Running int
	// Cumulative stream counters as of this tick.
	Arrivals       int
	Admitted       int
	Rejected       int
	EmergencyWakes int
	// Cumulative energy ledger as of this tick (the interval just billed
	// included), in joules.
	EnergyJoules   float64
	BaselineJoules float64
}

// Validate checks the configuration.
func (c *Config) Validate() error {
	if c.Trace == nil {
		return fmt.Errorf("autopilot: a trace is required")
	}
	if err := c.Trace.Validate(); err != nil {
		return err
	}
	if c.Policy == nil {
		return fmt.Errorf("autopilot: an online policy is required")
	}
	if c.Policy.Planner() == nil {
		return fmt.Errorf("autopilot: policy %q has no base planner", c.Policy.Name())
	}
	if c.Machine == nil {
		return fmt.Errorf("autopilot: a machine power profile is required")
	}
	if err := c.Machine.Validate(); err != nil {
		return err
	}
	if c.ServerSpec.Cores <= 0 || c.ServerSpec.MemGiB <= 0 {
		return fmt.Errorf("autopilot: server spec needs positive capacity")
	}
	if c.TickSec < 0 {
		return fmt.Errorf("autopilot: negative tick period %d", c.TickSec)
	}
	if c.Transitions != nil {
		if err := c.Transitions.Validate(); err != nil {
			return err
		}
	}
	if c.Workers < 0 {
		return fmt.Errorf("autopilot: negative worker count %d", c.Workers)
	}
	if err := c.Chaos.Validate(); err != nil {
		return err
	}
	if c.Executor != nil && !c.Chaos.Empty() {
		// The executor maps postures onto a fixed-size live fleet; a chaos
		// run shrinks the abstract fleet under it. Drive live-fleet faults
		// through fleet.Fleet's own fault surface instead.
		return fmt.Errorf("autopilot: chaos runs use the abstract ledger only; unset Executor or use an empty plan")
	}
	// An executor that knows its server count (FleetExecutor does) must match
	// the trace's fleet size — catching it here turns a mid-run panic into a
	// configuration error.
	if sized, ok := c.Executor.(interface{ Servers() int }); ok {
		if n := sized.Servers(); n != c.Trace.Machines {
			return fmt.Errorf("autopilot: executor drives %d servers, trace has %d machines", n, c.Trace.Machines)
		}
	}
	return nil
}

// applyDefaults fills optional fields.
func (c *Config) applyDefaults() {
	if c.TickSec == 0 {
		c.TickSec = 300
	}
	if c.OasisMemoryServerFraction <= 0 {
		c.OasisMemoryServerFraction = 0.4
	}
	if c.Transitions == nil {
		c.Transitions = dcsim.DefaultTransitionModel()
	}
}

// Result summarises one online run. Energy accounting is directly comparable
// to dcsim.Result: same baseline rule, same transition-cost model, same
// steady-state pricing — only the knowledge differs.
type Result struct {
	// Policy is the online policy, Planner its base consolidation planner.
	Policy  string
	Planner string
	Trace   string
	Machine string
	// TickSec is the re-planning period the run used.
	TickSec int64
	// EnergyJoules is the fleet energy over the horizon, transition costs
	// included; BaselineJoules is the no-consolidation fleet energy. Both are
	// tick-quantized: each tick interval is billed as one block against the
	// interval's cumulative population, the same rule the offline engine
	// applies per epoch (see Run).
	EnergyJoules   float64
	BaselineJoules float64
	// SavingPercent is the costed online saving: 100*(1-Energy/Baseline).
	SavingPercent float64
	// TransitionJoules is the part of EnergyJoules charged to posture
	// changes (ACPI events, migration drains, remote-memory churn).
	TransitionJoules float64
	// StateTransitions counts ACPI state changes; Migrations the VM moves
	// draining freed hosts; MigrationSeconds the host time spent draining.
	StateTransitions int
	Migrations       int
	MigrationSeconds float64
	// Ticks is the number of re-planning ticks executed.
	Ticks int
	// Arrivals and Departures count the stream events seen; Admitted and
	// Rejected split the arrivals by the admission decision.
	Arrivals   int
	Departures int
	Admitted   int
	Rejected   int
	// EmergencyWakes counts servers woken between ticks because an arrival
	// did not fit the current posture — the cost of not knowing the future.
	EmergencyWakes int
	// MeanActiveHosts is the time-weighted mean number of S0 servers;
	// PeakActiveHosts the maximum posture the loop ever held.
	MeanActiveHosts float64
	PeakActiveHosts int

	// Chaos counters, all zero on a fault-free run. ChaosScenario names the
	// fault plan; SLOViolations counts arrivals the degraded fleet could not
	// serve at full capacity; WastedTransitions the ACPI events that bought
	// nothing (failed wakes); WastedJoules every fault penalty charged to
	// EnergyJoules (wedged-server burn, stuck zombies, wasted wakes,
	// re-homing transfers, controller rebuilds); ReHomedGiB the remote
	// memory re-homed off crashed serving servers; ServerCrashes /
	// StuckZombies / ControllerFailovers the faults that actually struck.
	ChaosScenario       string
	SLOViolations       int
	WastedTransitions   int
	WastedJoules        float64
	ReHomedGiB          float64
	ServerCrashes       int
	StuckZombies        int
	ControllerFailovers int
}

// loop is the mutable state of one run.
type loop struct {
	cfg     *Config
	total   int
	planner consolidation.Policy

	vms []consolidation.VMDemand // sorted by ID
	// admitted is a bitset over the trace's numeric task IDs — the arrival
	// and departure paths test membership without hashing a VMID string.
	admitted  ident.Set
	bookedCPU float64
	bookedMem float64
	usedCPU   float64
	usedMem   float64

	posture consolidation.FleetPlan
	// intervalStart is the beginning of the current tick interval and cum the
	// interval's cumulative population: every task that has been admitted at
	// any point since the interval started, departures included. The ledger
	// bills whole intervals against cum (see billInterval), and emergency
	// wakes size against it too — a departure's capacity is only reclaimed at
	// the next re-plan tick, the way a periodic consolidation manager works.
	intervalStart int64
	cum           []consolidation.VMDemand // sorted by ID

	res      Result
	activeDt float64

	// chaos is the fault-injection state of the run, nil on fault-free runs
	// so every chaos branch is skipped and the loop stays bit-identical to
	// the pre-chaos path.
	chaos *chaosRun

	// obs is the resolved observability handle, nil on unobserved runs so
	// every emission site is one pointer test and no allocation (see obs.go).
	obs *apObs
}

// Run executes the online control loop over the trace's arrival feed.
//
// The loop is event-driven: arrivals, departures, and re-planning ticks are
// processed in time order (departures before arrivals at equal instants,
// trace.Stream's order, and a due tick last, so the policy observes the
// population as of the tick instant). The first tick fires at TickSec —
// before it the fleet holds the all-awake initial posture, because an online
// controller has not seen anything yet.
//
// The energy ledger is tick-quantized, deliberately mirroring the offline
// engine's epoch accounting so the regret comparison is apples to apples: at
// the end of each tick interval the whole interval is billed at the posture
// then held (emergency wakes included — a server the controller had to power
// on mid-interval was provisioned for this interval's population) with the
// utilization and baseline of the interval's cumulative population, exactly
// the population the offline oracle plans that epoch for. Decisions remain
// strictly causal; only the billing granularity is aligned.
func Run(cfg Config) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	cfg.applyDefaults()

	l := &loop{
		cfg:     &cfg,
		total:   cfg.Trace.Machines,
		planner: cfg.Policy.Planner(),
		posture: consolidation.InitialPlan(cfg.Trace.Machines),
		obs:     newAPObs(cfg.Obs),
	}
	l.res = Result{
		Policy:          cfg.Policy.Name(),
		Planner:         l.planner.Name(),
		Trace:           cfg.Trace.Name,
		Machine:         cfg.Machine.Name,
		TickSec:         cfg.TickSec,
		PeakActiveHosts: l.posture.ActiveHosts,
	}
	if !cfg.Chaos.Empty() {
		l.chaos = newChaosRun(cfg.Chaos)
		l.res.ChaosScenario = cfg.Chaos.Name
	}

	horizon := cfg.Trace.HorizonSec
	stream := trace.NewStream(cfg.Trace)
	ev, evOK := stream.Next()
	now := int64(0)
	nextTick := cfg.TickSec

	for now < horizon {
		// The next moment: the earliest of the next chaos fault, the next
		// stream event, the next tick and the horizon.
		t := horizon
		if nextTick < t {
			t = nextTick
		}
		if evOK && ev.AtSec < t {
			t = ev.AtSec
		}
		if l.chaos != nil {
			if m, ok := l.chaos.peek(); ok && m.at < t {
				t = m.at
			}
		}
		l.integrate(now, t)
		now = t

		// At equal instants faults strike first (the fleet an arrival meets
		// is the already-degraded one), then the stream's departures and
		// arrivals, then a due tick — fully deterministic.
		if l.chaos != nil {
			for {
				m, ok := l.chaos.peek()
				if !ok || m.at != now {
					break
				}
				l.chaos.pop()
				if err := l.chaosMoment(now, m); err != nil {
					return Result{}, err
				}
			}
		}
		for evOK && ev.AtSec == now {
			if ev.Kind == trace.Depart {
				l.depart(ev.Task)
			} else if err := l.arrive(ev.Task); err != nil {
				return Result{}, err
			}
			ev, evOK = stream.Next()
		}
		if now == nextTick {
			if now < horizon {
				if err := l.tick(now, horizon); err != nil {
					return Result{}, err
				}
			}
			nextTick += cfg.TickSec
		}
	}
	return l.finish(horizon), nil
}

// integrate advances the physical clock for [from, to): the time-weighted
// posture statistics, the executor's backing system, and the chaos burn.
// Steady-state energy is not charged here — the ledger bills whole intervals
// in billInterval — but crashed and stuck servers ARE: their counts only
// change at chaos moments, and every moment bounds an integrate span, so
// accruing their burn here integrates the wedged time exactly, matching the
// offline engine's CrashedServerSeconds accounting second for second.
func (l *loop) integrate(from, to int64) {
	if to <= from {
		return
	}
	l.activeDt += float64(l.posture.ActiveHosts) * float64(to-from)
	if l.chaos != nil && (l.chaos.crashed > 0 || l.chaos.stuck > 0) {
		// Crashed servers wedge at S0 idle power and stuck zombies burn Sz
		// until their windows close — pure penalties on the consolidated
		// side, never on the baseline.
		burn := float64(l.chaos.crashed)*l.cfg.Machine.PowerWatts(acpi.S0, 0) +
			float64(l.chaos.stuck)*l.cfg.Machine.PowerWatts(acpi.Sz, 0)
		l.addPenalty(burn * float64(to-from))
	}
	if l.cfg.Executor != nil {
		l.cfg.Executor.Advance(to - from)
	}
}

// billInterval closes the ledger over [intervalStart, to): steady-state
// fleet power at the posture currently held, with the active utilization and
// the no-consolidation baseline both computed over the interval's cumulative
// population — the exact accounting rule the offline engine applies to the
// same span, so the only difference left between the two sides of a regret
// comparison is the quality of the posture decisions.
func (l *loop) billInterval(to int64) {
	dt := float64(to - l.intervalStart)
	if dt <= 0 {
		return
	}
	var usedCPU float64
	for _, v := range l.cum {
		usedCPU += v.UsedCPU
	}
	billed := l.posture
	billed.ActiveCPUUtilization = utilization(usedCPU, billed.ActiveHosts, l.cfg.ServerSpec.Cores)
	l.res.EnergyJoules += dcsim.PosturePowerWatts(l.cfg.Machine, billed, l.cfg.OasisMemoryServerFraction) * dt
	l.res.BaselineJoules += dcsim.BaselinePowerWatts(l.cfg.Machine, l.cfg.ServerSpec, usedCPU, l.total) * dt
}

// addPenalty charges a chaos fault penalty: energy on the consolidated fleet
// only, tracked separately so the report can attribute it.
func (l *loop) addPenalty(joules float64) {
	l.res.EnergyJoules += joules
	l.res.WastedJoules += joules
}

// available returns the number of servers the controller can actually use:
// the fleet minus the servers chaos currently holds crashed or stuck.
func (l *loop) available() int {
	if l.chaos == nil {
		return l.total
	}
	n := l.total - l.chaos.crashed - l.chaos.stuck
	if n < 0 {
		n = 0
	}
	return n
}

// arrive admits and places one task at its arrival instant. A task whose
// booked reservation cannot fit the fleet even fully awake is rejected; an
// admitted task that does not fit the current posture triggers an emergency
// wake, billed as ACPI transitions. Under chaos the fleet an arrival meets
// is the degraded one: crashed and stuck servers neither admit nor host, and
// an arrival squeezed out (or placed short of the planner's requirement) by
// faults counts as an SLO violation.
func (l *loop) arrive(t trace.Task) error {
	l.res.Arrivals++
	v := demandOf(t)
	capacity := l.available()
	if l.bookedCPU+v.BookedCPU > float64(capacity)*l.cfg.ServerSpec.Cores ||
		l.bookedMem+v.BookedMemGiB > float64(capacity)*l.cfg.ServerSpec.MemGiB {
		if l.chaos != nil && capacity < l.total &&
			l.bookedCPU+v.BookedCPU <= float64(l.total)*l.cfg.ServerSpec.Cores &&
			l.bookedMem+v.BookedMemGiB <= float64(l.total)*l.cfg.ServerSpec.MemGiB {
			// The healthy fleet would have admitted it.
			l.res.SLOViolations++
		}
		l.res.Rejected++
		l.obs.observeArrival(false)
		return nil
	}
	l.insert(v)
	l.cum = insertSorted(l.cum, v)
	l.admitted.Add(ident.ID(t.ID))
	l.res.Admitted++
	l.obs.observeArrival(true)
	l.refreshUtil()

	// Placement check: the planner's sizing rule for the interval's
	// cumulative population (capacity freed by a departure is only reclaimed
	// at the next tick, so mid-interval arrivals size against everything the
	// interval has hosted). If the posture holds fewer active hosts than
	// required, wake the difference immediately — sleepers first, then
	// zombies, then memory servers.
	required := l.planner.Plan(l.cum, l.cfg.ServerSpec, l.available())
	if required.ActiveHosts > l.posture.ActiveHosts {
		if err := l.ensureActive(t.StartSec, required.ActiveHosts); err != nil {
			return err
		}
		if l.chaos != nil && l.posture.ActiveHosts < required.ActiveHosts {
			// Every wake candidate is crashed or stuck: the task runs on a
			// fleet below the planner's requirement.
			l.res.SLOViolations++
		}
	}
	return nil
}

// ensureActive raises the posture to the required number of active hosts
// through the emergency-wake path: sleepers first, then zombies, then memory
// servers, ACPI cost only (no churn mid-epoch). Under chaos, S3->S0 attempts
// can fail — the failed server sticks in a zombie-like state, the wasted
// transition is billed, and the wake escalates to the next candidate.
func (l *loop) ensureActive(nowSec int64, required int) error {
	need := required - l.posture.ActiveHosts
	if need <= 0 {
		return nil
	}
	if l.chaos != nil && l.posture.SleepHosts > 0 {
		attempts := need
		if attempts > l.posture.SleepHosts {
			attempts = l.posture.SleepHosts
		}
		if failed := l.chaos.takeWakeFailures(nowSec, attempts); failed > 0 {
			l.posture.SleepHosts -= failed
			l.chaos.stuck += failed
			l.res.StuckZombies += failed
			l.res.WastedTransitions += failed
			l.res.StateTransitions += failed
			l.addPenalty(float64(failed) * l.cfg.Machine.TransitionJoules(acpi.S3, acpi.S0))
			l.obs.observeWakeFailures(nowSec, failed)
		}
	}
	next := wake(l.posture, need)
	next = l.normalize(l.posture.Policy, next)
	d := consolidation.Delta(l.posture, next, len(l.vms))
	woken := d.SleepExits + d.ZombieExits + d.MemoryServerStops
	l.res.EmergencyWakes += woken
	l.obs.observeEmergencyWake(nowSec, woken)
	return l.applyPosture(nowSec, next, false, 0) // ACPI cost only: no churn mid-epoch
}

// depart retires one admitted task.
func (l *loop) depart(t trace.Task) {
	if !l.admitted.Has(ident.ID(t.ID)) {
		return // was rejected at admission
	}
	l.admitted.Remove(ident.ID(t.ID))
	l.remove(t.VMID())
	l.res.Departures++
	l.obs.observeDepart()
	l.refreshUtil()
}

// tick runs one re-planning pass: the closing interval is billed, then the
// policy observes the current population and posture and decides the posture
// for the next interval, billed through the shared transition-cost model
// (churn included, over the interval that the posture will hold).
func (l *loop) tick(now, horizon int64) error {
	l.billInterval(now)
	obs := Observation{
		NowSec:       now,
		TickSec:      l.cfg.TickSec,
		VMs:          l.vms,
		Prev:         l.posture,
		Spec:         l.cfg.ServerSpec,
		TotalServers: l.available(),
	}
	plan := l.normalize(l.cfg.Policy.Name(), l.cfg.Policy.Decide(obs))
	dt := l.cfg.TickSec
	if rest := horizon - now; rest < dt {
		dt = rest
	}
	// Trace order mirrors the pass itself: the tick fires, the policy's
	// re-plan is installed, then applyPosture emits the billed transitions.
	l.obs.observeTick(now, l.res.Ticks+1, len(l.vms), plan)
	if err := l.applyPosture(now, plan, true, float64(dt)); err != nil {
		return err
	}
	l.res.Ticks++
	l.intervalStart = now
	l.cum = append(l.cum[:0], l.vms...)
	if l.cfg.OnTick != nil {
		l.cfg.OnTick(TickEvent{
			AtSec:           now,
			Tick:            l.res.Ticks,
			ActiveHosts:     l.posture.ActiveHosts,
			ZombieHosts:     l.posture.ZombieHosts,
			MemoryServers:   l.posture.MemoryServers,
			SleepHosts:      l.posture.SleepHosts,
			RemoteMemoryGiB: l.posture.RemoteMemoryGiB,
			Running:         len(l.vms),
			Arrivals:        l.res.Arrivals,
			Admitted:        l.res.Admitted,
			Rejected:        l.res.Rejected,
			EmergencyWakes:  l.res.EmergencyWakes,
			EnergyJoules:    l.res.EnergyJoules,
			BaselineJoules:  l.res.BaselineJoules,
		})
	}
	return nil
}

// applyPosture bills the posture change and installs it. withChurn selects
// whether the remote-memory churn of the new posture over dtSec is charged —
// true at ticks (mirroring the offline engine's per-epoch charge), false for
// mid-interval emergency wakes, whose interval was already charged at the
// last tick. Under chaos the churn is scaled by the interval's time-weighted
// fabric degradation factor. An executor failure (a live fleet refusing a
// transition) is returned, not swallowed: a failed transition must surface
// rather than silently strand the tasks the posture was sized for.
func (l *loop) applyPosture(nowSec int64, next consolidation.FleetPlan, withChurn bool, dtSec float64) error {
	priced := next
	if !withChurn {
		priced.RemoteMemoryGiB = 0
	}
	fabric := 1.0
	if l.chaos != nil && withChurn {
		fabric = l.chaos.plan.FabricFactor(nowSec, nowSec+int64(dtSec))
	}
	bill := l.cfg.Transitions.CostWithFabric(l.cfg.Machine, l.planner.Name(), l.posture, priced, l.vms, dtSec, fabric)
	l.res.EnergyJoules += bill.Joules
	l.res.TransitionJoules += bill.Joules
	l.res.StateTransitions += bill.Transitions
	l.res.Migrations += bill.Migrations
	l.res.MigrationSeconds += bill.MigrationSeconds
	l.obs.observeBill(nowSec, bill)
	if l.cfg.Executor != nil {
		if err := l.cfg.Executor.Apply(nowSec, l.posture, next); err != nil {
			return fmt.Errorf("autopilot: executor apply at %ds: %w", nowSec, err)
		}
	}
	l.posture = next
	if next.ActiveHosts > l.res.PeakActiveHosts {
		l.res.PeakActiveHosts = next.ActiveHosts
	}
	return nil
}

// normalize clamps a policy's plan to the servers actually available (the
// fleet minus any chaos-crashed or stuck servers), recomputes the residual
// sleepers and the active utilization from the actually-running population,
// and stamps the policy name.
func (l *loop) normalize(name string, p consolidation.FleetPlan) consolidation.FleetPlan {
	avail := l.available()
	clamp := func(n, hi int) int {
		if n < 0 {
			return 0
		}
		if n > hi {
			return hi
		}
		return n
	}
	p.ActiveHosts = clamp(p.ActiveHosts, avail)
	p.ZombieHosts = clamp(p.ZombieHosts, avail-p.ActiveHosts)
	p.MemoryServers = clamp(p.MemoryServers, avail-p.ActiveHosts-p.ZombieHosts)
	p.SleepHosts = avail - p.ActiveHosts - p.ZombieHosts - p.MemoryServers
	p.Policy = name
	p.ActiveCPUUtilization = utilization(l.usedCPU, p.ActiveHosts, l.cfg.ServerSpec.Cores)
	return p
}

// refreshUtil recomputes the posture's utilization after a population change.
func (l *loop) refreshUtil() {
	l.posture.ActiveCPUUtilization = utilization(l.usedCPU, l.posture.ActiveHosts, l.cfg.ServerSpec.Cores)
}

// finish bills the final (possibly partial) interval and closes the
// integrals into the Result.
func (l *loop) finish(horizon int64) Result {
	l.billInterval(horizon)
	if horizon > 0 {
		l.res.MeanActiveHosts = l.activeDt / float64(horizon)
	}
	if l.res.BaselineJoules > 0 {
		l.res.SavingPercent = 100 * (1 - l.res.EnergyJoules/l.res.BaselineJoules)
	}
	return l.res
}

// insert adds a VM to the population, keeping it sorted by ID.
func (l *loop) insert(v consolidation.VMDemand) {
	l.vms = insertSorted(l.vms, v)
	l.bookedCPU += v.BookedCPU
	l.bookedMem += v.BookedMemGiB
	l.usedCPU += v.UsedCPU
	l.usedMem += v.UsedMemGiB
}

// insertSorted inserts a VM into an ID-sorted slice.
func insertSorted(s []consolidation.VMDemand, v consolidation.VMDemand) []consolidation.VMDemand {
	i := sort.Search(len(s), func(i int) bool { return s[i].ID >= v.ID })
	s = append(s, consolidation.VMDemand{})
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}

// remove deletes a VM from the population by ID.
func (l *loop) remove(id string) {
	i := sort.Search(len(l.vms), func(i int) bool { return l.vms[i].ID >= id })
	if i >= len(l.vms) || l.vms[i].ID != id {
		return
	}
	v := l.vms[i]
	l.vms = append(l.vms[:i], l.vms[i+1:]...)
	l.bookedCPU -= v.BookedCPU
	l.bookedMem -= v.BookedMemGiB
	l.usedCPU -= v.UsedCPU
	l.usedMem -= v.UsedMemGiB
}

// wake raises the posture's active count by need servers, drawing on
// sleepers first, then zombies (shrinking the remotely-served memory
// proportionally), then memory servers.
func wake(p consolidation.FleetPlan, need int) consolidation.FleetPlan {
	take := func(avail int) int {
		if need < avail {
			avail = need
		}
		need -= avail
		return avail
	}
	if n := take(p.SleepHosts); n > 0 {
		p.SleepHosts -= n
		p.ActiveHosts += n
	}
	if n := take(p.ZombieHosts); n > 0 {
		p.RemoteMemoryGiB *= float64(p.ZombieHosts-n) / float64(p.ZombieHosts)
		p.ZombieHosts -= n
		p.ActiveHosts += n
	}
	if n := take(p.MemoryServers); n > 0 {
		p.MemoryServers -= n
		p.ActiveHosts += n
	}
	return p
}

// utilization is used CPU over active capacity, clamped to [0,1].
func utilization(usedCPU float64, active int, cores float64) float64 {
	if active <= 0 || cores <= 0 {
		return 0
	}
	u := usedCPU / (float64(active) * cores)
	if u > 1 {
		return 1
	}
	if u < 0 {
		return 0
	}
	return u
}

// demandOf converts a trace task into the consolidation-level VM view.
func demandOf(t trace.Task) consolidation.VMDemand {
	return consolidation.VMDemand{
		ID:           t.VMID(),
		BookedCPU:    t.BookedCPU,
		BookedMemGiB: t.BookedMemGiB,
		UsedCPU:      t.UsedCPU,
		UsedMemGiB:   t.UsedMemGiB,
	}
}
