package autopilot

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/chaos"
	"repro/internal/consolidation"
	"repro/internal/obs"
)

// runObservedAutopilot drives one chaos-laden online run with an attached
// obs bundle and returns the bundle and the run's result.
func runObservedAutopilot(t *testing.T) (*obs.Obs, Result) {
	t.Helper()
	tr := chaosTrace(t)
	plan, err := chaos.Scenario("heavy", tr.HorizonSec, tr.Machines, 7)
	if err != nil {
		t.Fatal(err)
	}
	o := obs.New(obs.Options{TraceCapacity: 4096})
	cfg := baseConfig(tr)
	cfg.TickSec = 600
	cfg.Policy = NewHysteresis(consolidation.NewZombieStack())
	cfg.Chaos = plan
	cfg.Obs = o
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return o, res
}

// TestAutopilotObsCounters checks every counter against the run's own
// Result: the counters are incremented at the same sites as the result
// fields, so they must agree exactly.
func TestAutopilotObsCounters(t *testing.T) {
	o, res := runObservedAutopilot(t)
	snap := o.Metrics.Snapshot()
	want := map[string]uint64{
		"autopilot_ticks_total":           uint64(res.Ticks),
		"autopilot_arrivals_total":        uint64(res.Arrivals),
		"autopilot_admitted_total":        uint64(res.Admitted),
		"autopilot_rejected_total":        uint64(res.Rejected),
		"autopilot_departures_total":      uint64(res.Departures),
		"autopilot_emergency_wakes_total": uint64(res.EmergencyWakes),
		"autopilot_chaos_faults_total":    uint64(res.ServerCrashes + res.StuckZombies + res.ControllerFailovers),
	}
	for name, v := range want {
		if snap.Counters[name] != v {
			t.Errorf("%s = %d, want %d", name, snap.Counters[name], v)
		}
	}
	if res.ServerCrashes == 0 || res.Ticks == 0 || res.Arrivals == 0 {
		t.Fatalf("scenario did not exercise the loop: %+v", res)
	}
	// The transitions counter tracks billed posture changes only; the chaos
	// penalty path adds more state transitions to the result on top.
	billed := snap.Counters["autopilot_transitions_total"]
	if billed == 0 || billed > uint64(res.StateTransitions) {
		t.Errorf("billed transitions %d, want in [1, %d]", billed, res.StateTransitions)
	}
	if repairs := snap.Counters["autopilot_chaos_repairs_total"]; repairs == 0 {
		t.Error("no chaos repairs observed")
	}
}

// TestAutopilotObsTraceDeterministic pins the determinism contract at the
// autopilot layer: every event is stamped with the loop's simulated clock,
// so two identical runs export byte-identical NDJSON.
func TestAutopilotObsTraceDeterministic(t *testing.T) {
	render := func() []byte {
		o, _ := runObservedAutopilot(t)
		var buf bytes.Buffer
		if err := o.Trace.WriteNDJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := render(), render()
	if len(a) == 0 {
		t.Fatal("empty trace")
	}
	if !bytes.Equal(a, b) {
		t.Errorf("same-config runs diverged:\n--- a ---\n%s--- b ---\n%s", a, b)
	}
}

// TestAutopilotObsNilIdentical pins the telemetry-only contract: attaching
// an obs bundle leaves the run's result bit-identical to an unobserved run.
func TestAutopilotObsNilIdentical(t *testing.T) {
	tr := chaosTrace(t)
	run := func(o *obs.Obs) Result {
		cfg := baseConfig(tr)
		cfg.Policy = NewHysteresis(consolidation.NewZombieStack())
		cfg.Obs = o
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	plain := run(nil)
	observed := run(obs.New(obs.Options{}))
	if !reflect.DeepEqual(plain, observed) {
		t.Errorf("obs changed the run:\nplain    %+v\nobserved %+v", plain, observed)
	}
}
