package chaos

import "repro/internal/obs"

// EmitSchedule writes the plan's fault schedule into a trace ring: one
// "plan.<kind>" event per fault, stamped at its injection instant. Emitted
// before a run starts, it puts the schedule and the runtime fault events the
// injection layers emit side by side in one export. The plan is already
// time-sorted, so the emission is deterministic; a nil plan or trace is a
// no-op.
func (p *Plan) EmitSchedule(tr *obs.Trace) {
	if p == nil || tr == nil {
		return
	}
	for _, f := range p.Faults {
		switch f.Kind {
		case ServerCrash:
			tr.EmitAt(f.AtSec, "chaos", "plan.server-crash",
				obs.F("count", int64(f.Count)), obs.F("repair_s", f.DurationSec),
				obs.FS("role", f.Role.String()))
		case FabricDegrade:
			tr.EmitAt(f.AtSec, "chaos", "plan.fabric-degrade",
				obs.F("window_s", f.DurationSec), obs.F("factor_x1000", int64(f.Factor*1000)))
		default:
			tr.EmitAt(f.AtSec, "chaos", "plan."+f.Kind.String(),
				obs.F("count", int64(f.Count)), obs.F("window_s", f.DurationSec))
		}
	}
}
