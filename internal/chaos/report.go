package chaos

import (
	"fmt"
	"strings"

	"repro/internal/metrics"
)

// Report is the outcome of one chaos run: the online control plane replayed
// under a fault plan, side by side with its own fault-free run and with the
// offline oracle re-run under the same schedule. It answers the question the
// paper's practicality argument hinges on: how much of the consolidation
// saving survives an unreliable fleet. The struct holds only plain values,
// so a report is trivially comparable bit for bit (TestChaosDeterminism).
type Report struct {
	// Scenario names the fault plan; Seed its RNG seed.
	Scenario string
	Seed     int64
	// Policy / Planner / Trace / Machine / TickSec identify the run.
	Policy  string
	Planner string
	Trace   string
	Machine string
	TickSec int64
	// Faults tallies the injected schedule per kind.
	Faults Tally

	// FaultFreeSavingPercent and FaultFreeEnergyJoules are the same policy's
	// costed result with no faults injected (the PR-4 online path, bit for
	// bit); OracleSavingPercent is the fault-free offline oracle bound.
	FaultFreeSavingPercent float64
	FaultFreeEnergyJoules  float64
	OracleSavingPercent    float64

	// SavingPercent / EnergyJoules / BaselineJoules are the faulted online
	// run; OracleFaultedSavingPercent is the offline oracle re-run under the
	// identical fault schedule and perturbed trace.
	SavingPercent              float64
	EnergyJoules               float64
	BaselineJoules             float64
	OracleFaultedSavingPercent float64

	// SavingsRetainedPercent is 100 * faulted saving / fault-free saving —
	// the headline resilience metric. ResilienceRegretPercent is the faulted
	// oracle's saving minus the faulted online saving: the part of the loss
	// attributable to causality rather than to the faults themselves.
	SavingsRetainedPercent  float64
	ResilienceRegretPercent float64

	// SLOViolations counts arrivals the degraded fleet could not serve at
	// full capacity (rejected or placed short of the planner's requirement).
	SLOViolations int
	// WastedTransitions counts ACPI transitions that bought nothing (failed
	// wake attempts); WastedJoules the total energy charged to fault
	// penalties (wasted wakes, crashed-server burn, stuck zombies, controller
	// rebuilds, re-homing transfers).
	WastedTransitions int
	WastedJoules      float64
	// ReHomedGiB is the remotely served memory re-homed off crashed zombies
	// and memory servers.
	ReHomedGiB float64
	// ServerCrashes / StuckZombies / ControllerFailovers count the faults
	// that actually struck (a scheduled fault may find nothing to break).
	ServerCrashes       int
	StuckZombies        int
	ControllerFailovers int
	// EmergencyWakes / Arrivals / Admitted / Rejected mirror the online
	// run's stream counters under faults.
	EmergencyWakes int
	Arrivals       int
	Admitted       int
	Rejected       int
}

// Render formats the report as an aligned table (fault-free vs faulted vs
// the two oracles) plus the resilience summary lines. Pure function of the
// report, so a fixed seed reproduces it bit for bit.
func (r Report) Render() string {
	var b strings.Builder
	t := metrics.NewTable(
		fmt.Sprintf("Chaos %q — %s/%s on %s (%s, tick %ds, seed %d)",
			r.Scenario, r.Policy, r.Planner, r.Trace, r.Machine, r.TickSec, r.Seed),
		"side", "saving-%", "energy-j")
	t.AddRow("online fault-free", metrics.FormatFloat(r.FaultFreeSavingPercent), metrics.FormatFloat(r.FaultFreeEnergyJoules))
	t.AddRow("online faulted", metrics.FormatFloat(r.SavingPercent), metrics.FormatFloat(r.EnergyJoules))
	t.AddRow("oracle fault-free", metrics.FormatFloat(r.OracleSavingPercent), "-")
	t.AddRow("oracle faulted", metrics.FormatFloat(r.OracleFaultedSavingPercent), "-")
	b.WriteString(t.String())
	fmt.Fprintf(&b, "faults: %d crashes, %d wake failures, %d controller losses, %d fabric windows, %d bursts\n",
		r.Faults.Crashes, r.Faults.WakeFailures, r.Faults.ControllerLosses,
		r.Faults.FabricDegradations, r.Faults.TraceBursts)
	fmt.Fprintf(&b, "impact: %s%% of the fault-free saving retained, %d SLO violations, %d wasted transitions (%s J wasted), %s GiB re-homed\n",
		metrics.FormatFloat(r.SavingsRetainedPercent), r.SLOViolations,
		r.WastedTransitions, metrics.FormatFloat(r.WastedJoules), metrics.FormatFloat(r.ReHomedGiB))
	fmt.Fprintf(&b, "struck: %d server crashes, %d stuck zombies, %d controller fail-overs, %d emergency wakes\n",
		r.ServerCrashes, r.StuckZombies, r.ControllerFailovers, r.EmergencyWakes)
	return b.String()
}

// RenderComparison formats a set of chaos reports as one table, a row per
// scenario, in report order.
func RenderComparison(reports []Report) string {
	t := metrics.NewTable("Chaos scenarios — savings retained under faults",
		"scenario", "policy", "saving-%", "retained-%", "oracle-faulted-%", "slo-viol", "wasted-acpi", "rehomed-gib", "crashes", "stuck", "failovers")
	for _, r := range reports {
		t.AddRow(r.Scenario, r.Policy,
			metrics.FormatFloat(r.SavingPercent),
			metrics.FormatFloat(r.SavingsRetainedPercent),
			metrics.FormatFloat(r.OracleFaultedSavingPercent),
			metrics.FormatFloat(float64(r.SLOViolations)),
			metrics.FormatFloat(float64(r.WastedTransitions)),
			metrics.FormatFloat(r.ReHomedGiB),
			metrics.FormatFloat(float64(r.ServerCrashes)),
			metrics.FormatFloat(float64(r.StuckZombies)),
			metrics.FormatFloat(float64(r.ControllerFailovers)))
	}
	return t.String()
}
