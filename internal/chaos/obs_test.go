package chaos

import (
	"bytes"
	"testing"

	"repro/internal/obs"
)

// TestEmitSchedule checks the schedule export: one event per fault, stamped
// at the injection instant, byte-identical across emissions of the same plan.
func TestEmitSchedule(t *testing.T) {
	plan, err := Scenario("heavy", 8*3600, 80, 7)
	if err != nil {
		t.Fatal(err)
	}
	render := func() []byte {
		tr := obs.NewTrace(256, nil)
		plan.EmitSchedule(tr)
		if tr.Len() != len(plan.Faults) {
			t.Fatalf("emitted %d events for %d faults", tr.Len(), len(plan.Faults))
		}
		var buf bytes.Buffer
		if err := tr.WriteNDJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := render(), render()
	if len(a) == 0 {
		t.Fatal("empty schedule export")
	}
	if !bytes.Equal(a, b) {
		t.Errorf("schedule export not byte-stable:\n--- a ---\n%s--- b ---\n%s", a, b)
	}

	// Nil plan and nil trace are no-ops.
	var nilPlan *Plan
	nilPlan.EmitSchedule(obs.NewTrace(8, nil))
	plan.EmitSchedule(nil)
}
