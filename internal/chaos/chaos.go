package chaos

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/trace"
)

// FaultKind identifies one class of injected failure.
type FaultKind uint8

// The fault taxonomy. Every kind maps onto a concrete failure mode of the
// paper's deployment story: servers that die outright, servers that refuse to
// come back from a sleep state, the rack's global memory controller dying
// mid-consolidation, a degraded RDMA fabric, and workload surprises the
// trace never promised.
const (
	// ServerCrash takes Count servers out of the fleet at AtSec; they burn
	// S0 idle power (wedged, fans on) until repaired DurationSec later, when
	// they reboot into S3. A crashed zombie or memory server forces its
	// remotely served memory to be re-homed onto a freshly woken replacement.
	ServerCrash FaultKind = iota
	// WakeFailure makes up to Count S3->S0 wake attempts fail during
	// [AtSec, AtSec+DurationSec): the failed server sticks in a zombie-like
	// half-woken state (billed at Sz power, serving nothing) until the window
	// closes, and the controller escalates to the next wake candidate.
	WakeFailure
	// ControllerLoss kills the global memory controller at AtSec; the
	// secondary promotes itself and rebuilds for DurationSec, burning one
	// machine's worth of S0 idle power.
	ControllerLoss
	// FabricDegrade multiplies every remote-memory latency by Factor during
	// [AtSec, AtSec+DurationSec) — a flapping link or congested switch.
	FabricDegrade
	// TraceBurst injects Count extra task arrivals spread over
	// [AtSec, AtSec+DurationSec) — a population spike the planners never saw
	// in the base trace.
	TraceBurst
)

// String names the kind.
func (k FaultKind) String() string {
	switch k {
	case ServerCrash:
		return "server-crash"
	case WakeFailure:
		return "wake-failure"
	case ControllerLoss:
		return "controller-loss"
	case FabricDegrade:
		return "fabric-degrade"
	case TraceBurst:
		return "trace-burst"
	default:
		return fmt.Sprintf("fault-kind-%d", uint8(k))
	}
}

// CrashRole hints which posture category a ServerCrash strikes. The injection
// layers resolve the hint against the posture actually held, falling back to
// the next category when the preferred one is empty, so a plan stays valid
// whatever the controller decided.
type CrashRole uint8

const (
	// RoleAny crashes whatever burns most: active first, then serving
	// (zombie / memory server), then sleeping servers.
	RoleAny CrashRole = iota
	// RoleActive prefers an S0 server running VMs.
	RoleActive
	// RoleServing prefers a server serving remote memory (Sz zombie or Oasis
	// memory server) — the case that forces borrowed-memory re-homing.
	RoleServing
	// RoleSleep prefers a suspended S3 server.
	RoleSleep
)

// String names the role.
func (r CrashRole) String() string {
	switch r {
	case RoleActive:
		return "active"
	case RoleServing:
		return "serving"
	case RoleSleep:
		return "sleep"
	default:
		return "any"
	}
}

// Fault is one scheduled failure event.
type Fault struct {
	// Kind selects the failure mode.
	Kind FaultKind
	// AtSec is the injection instant in trace time.
	AtSec int64
	// DurationSec is the fault's window: crash repair time, wake-failure
	// window, controller rebuild time, fabric degradation window, or burst
	// spread.
	DurationSec int64
	// Count sizes the fault: servers crashed, wake attempts failed, or burst
	// tasks injected. Ignored by ControllerLoss and FabricDegrade.
	Count int
	// Factor is the FabricDegrade latency multiplier (>= 1).
	Factor float64
	// Role hints which posture category a ServerCrash strikes.
	Role CrashRole
}

// endSec is the exclusive end of the fault's window.
func (f Fault) endSec() int64 { return f.AtSec + f.DurationSec }

// Validate checks one fault.
func (f Fault) Validate() error {
	if f.AtSec < 0 {
		return fmt.Errorf("chaos: fault %v at negative time %d", f.Kind, f.AtSec)
	}
	if f.DurationSec < 0 {
		return fmt.Errorf("chaos: fault %v with negative duration %d", f.Kind, f.DurationSec)
	}
	switch f.Kind {
	case ServerCrash, WakeFailure, TraceBurst:
		if f.Count < 1 {
			return fmt.Errorf("chaos: fault %v needs a positive count, got %d", f.Kind, f.Count)
		}
	case FabricDegrade:
		if f.Factor < 1 {
			return fmt.Errorf("chaos: fabric degradation factor %v below 1", f.Factor)
		}
	case ControllerLoss:
		// No sizing fields.
	default:
		return fmt.Errorf("chaos: unknown fault kind %d", uint8(f.Kind))
	}
	return nil
}

// Plan is a reproducible fault schedule: a seed, a horizon and a
// time-ordered list of faults. Two plans built from the same PlanConfig are
// identical, and every consumer (the online control plane, the offline
// simulator, the report renderer) derives its behaviour purely from the
// plan's contents — that is the determinism contract the chaos tests pin.
type Plan struct {
	// Name labels the scenario ("light", "heavy", ...).
	Name string
	// Seed is the RNG seed the plan (and its trace perturbations) derive from.
	Seed int64
	// HorizonSec bounds the schedule.
	HorizonSec int64
	// Faults is sorted by (AtSec, Kind, Count).
	Faults []Fault
}

// Empty reports whether the plan injects nothing — an empty plan must leave
// every consumer bit-identical to its no-chaos path.
func (p *Plan) Empty() bool { return p == nil || len(p.Faults) == 0 }

// Validate checks the plan.
func (p *Plan) Validate() error {
	if p == nil {
		return nil
	}
	if p.HorizonSec < 0 {
		return fmt.Errorf("chaos: plan %q has negative horizon %d", p.Name, p.HorizonSec)
	}
	for i, f := range p.Faults {
		if err := f.Validate(); err != nil {
			return err
		}
		if i > 0 && f.AtSec < p.Faults[i-1].AtSec {
			return fmt.Errorf("chaos: plan %q faults not sorted by time at index %d", p.Name, i)
		}
	}
	return nil
}

// Tally counts the plan's faults per kind.
type Tally struct {
	Crashes            int
	WakeFailures       int
	ControllerLosses   int
	FabricDegradations int
	TraceBursts        int
}

// Total sums the tally.
func (t Tally) Total() int {
	return t.Crashes + t.WakeFailures + t.ControllerLosses + t.FabricDegradations + t.TraceBursts
}

// Tally counts the plan's faults per kind.
func (p *Plan) Tally() Tally {
	var t Tally
	if p == nil {
		return t
	}
	for _, f := range p.Faults {
		switch f.Kind {
		case ServerCrash:
			t.Crashes++
		case WakeFailure:
			t.WakeFailures++
		case ControllerLoss:
			t.ControllerLosses++
		case FabricDegrade:
			t.FabricDegradations++
		case TraceBurst:
			t.TraceBursts++
		}
	}
	return t
}

// PlanConfig parameterises NewPlan. Counts are numbers of fault events over
// the horizon; zero disables a fault kind.
type PlanConfig struct {
	// Name labels the scenario.
	Name string
	// Seed drives every random draw (fault times, durations, burst tasks).
	Seed int64
	// HorizonSec is the schedule's span, normally the trace horizon.
	HorizonSec int64
	// Machines bounds crash sizes (a crash never takes more than 1/4 of the
	// fleet) and sizes the default burst.
	Machines int

	// Crashes is the number of ServerCrash faults; CrashServers the servers
	// per crash (default 1); MeanRepairSec the mean repair time (default
	// 1800 s).
	Crashes       int
	CrashServers  int
	MeanRepairSec int64

	// WakeFailures is the number of WakeFailure faults, each with a budget of
	// WakeFailureCount failed attempts (default 1) over a WakeFailureWindowSec
	// window (default 900 s).
	WakeFailures         int
	WakeFailureCount     int
	WakeFailureWindowSec int64

	// ControllerLosses is the number of ControllerLoss faults;
	// ControllerRebuildSec the secondary's rebuild time (default 120 s).
	ControllerLosses     int
	ControllerRebuildSec int64

	// FabricDegradations is the number of FabricDegrade windows, each
	// multiplying remote latency by FabricFactor (default 4) for
	// FabricWindowSec (default 3600 s).
	FabricDegradations int
	FabricFactor       float64
	FabricWindowSec    int64

	// TraceBursts is the number of TraceBurst faults, each injecting
	// BurstTasks arrivals (default Machines/4, at least 8) spread over
	// BurstSpreadSec (default 900 s).
	TraceBursts    int
	BurstTasks     int
	BurstSpreadSec int64
}

// applyDefaults fills optional sizing fields.
func (c *PlanConfig) applyDefaults() {
	if c.CrashServers <= 0 {
		c.CrashServers = 1
	}
	if c.MeanRepairSec <= 0 {
		c.MeanRepairSec = 1800
	}
	if c.WakeFailureCount <= 0 {
		c.WakeFailureCount = 1
	}
	if c.WakeFailureWindowSec <= 0 {
		c.WakeFailureWindowSec = 900
	}
	if c.ControllerRebuildSec <= 0 {
		c.ControllerRebuildSec = 120
	}
	if c.FabricFactor < 1 {
		c.FabricFactor = 4
	}
	if c.FabricWindowSec <= 0 {
		c.FabricWindowSec = 3600
	}
	if c.BurstTasks <= 0 {
		c.BurstTasks = c.Machines / 4
		if c.BurstTasks < 8 {
			c.BurstTasks = 8
		}
	}
	if c.BurstSpreadSec <= 0 {
		c.BurstSpreadSec = 900
	}
}

// New generates a reproducible fault schedule from the config: every fault
// time and duration is drawn from one seeded RNG in a fixed order, so the
// same config always yields the same plan.
func New(cfg PlanConfig) (*Plan, error) {
	if cfg.HorizonSec <= 0 {
		return nil, fmt.Errorf("chaos: plan needs a positive horizon, got %d", cfg.HorizonSec)
	}
	if cfg.Machines <= 0 {
		return nil, fmt.Errorf("chaos: plan needs a positive machine count, got %d", cfg.Machines)
	}
	for _, n := range []int{cfg.Crashes, cfg.WakeFailures, cfg.ControllerLosses, cfg.FabricDegradations, cfg.TraceBursts} {
		if n < 0 {
			return nil, fmt.Errorf("chaos: negative fault count in plan config")
		}
	}
	cfg.applyDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	p := &Plan{Name: cfg.Name, Seed: cfg.Seed, HorizonSec: cfg.HorizonSec}

	at := func() int64 { return int64(rng.Float64() * float64(cfg.HorizonSec)) }
	dur := func(mean int64) int64 {
		d := int64(rng.ExpFloat64() * float64(mean))
		if d < mean/4 {
			d = mean / 4
		}
		if d < 1 {
			d = 1
		}
		return d
	}
	maxCrash := cfg.Machines / 4
	if maxCrash < 1 {
		maxCrash = 1
	}
	roles := []CrashRole{RoleActive, RoleServing, RoleAny, RoleSleep}
	for i := 0; i < cfg.Crashes; i++ {
		count := cfg.CrashServers
		if count > maxCrash {
			count = maxCrash
		}
		p.Faults = append(p.Faults, Fault{
			Kind: ServerCrash, AtSec: at(), DurationSec: dur(cfg.MeanRepairSec),
			Count: count, Role: roles[i%len(roles)],
		})
	}
	for i := 0; i < cfg.WakeFailures; i++ {
		p.Faults = append(p.Faults, Fault{
			Kind: WakeFailure, AtSec: at(), DurationSec: cfg.WakeFailureWindowSec,
			Count: cfg.WakeFailureCount,
		})
	}
	for i := 0; i < cfg.ControllerLosses; i++ {
		p.Faults = append(p.Faults, Fault{
			Kind: ControllerLoss, AtSec: at(), DurationSec: cfg.ControllerRebuildSec,
		})
	}
	for i := 0; i < cfg.FabricDegradations; i++ {
		p.Faults = append(p.Faults, Fault{
			Kind: FabricDegrade, AtSec: at(), DurationSec: cfg.FabricWindowSec,
			Factor: cfg.FabricFactor,
		})
	}
	for i := 0; i < cfg.TraceBursts; i++ {
		p.Faults = append(p.Faults, Fault{
			Kind: TraceBurst, AtSec: at(), DurationSec: cfg.BurstSpreadSec,
			Count: cfg.BurstTasks,
		})
	}
	sort.SliceStable(p.Faults, func(i, j int) bool {
		a, b := p.Faults[i], p.Faults[j]
		if a.AtSec != b.AtSec {
			return a.AtSec < b.AtSec
		}
		return a.Kind < b.Kind
	})
	return p, nil
}

// ScenarioNames lists the bundled scenarios in severity order.
func ScenarioNames() []string { return []string{"off", "light", "heavy"} }

// Scenario builds one of the bundled severity presets for a given fleet and
// horizon: "off" (empty plan), "light" (a handful of faults — the fleet
// should retain most of its savings) and "heavy" (sustained failures — the
// stress case).
func Scenario(name string, horizonSec int64, machines int, seed int64) (*Plan, error) {
	base := PlanConfig{Name: name, Seed: seed, HorizonSec: horizonSec, Machines: machines}
	switch name {
	case "off", "none":
		base.Name = "off"
		if horizonSec <= 0 || machines <= 0 {
			return nil, fmt.Errorf("chaos: scenario needs a positive horizon and machine count")
		}
		return &Plan{Name: "off", Seed: seed, HorizonSec: horizonSec}, nil
	case "light":
		base.Crashes = 2
		base.WakeFailures = 3
		base.ControllerLosses = 1
		base.FabricDegradations = 1
		base.FabricFactor = 2
		base.TraceBursts = 1
		base.BurstTasks = machines / 8
	case "heavy":
		base.Crashes = 6
		base.CrashServers = 2
		base.WakeFailures = 10
		base.WakeFailureCount = 2
		base.ControllerLosses = 3
		base.FabricDegradations = 3
		base.FabricFactor = 6
		base.TraceBursts = 3
	default:
		return nil, fmt.Errorf("chaos: unknown scenario %q (valid: off, light, heavy)", name)
	}
	return New(base)
}

// CrashedAt returns the number of servers crashed (and not yet repaired) at
// instant t — a pure function of the plan, so every epoch shard of the
// parallel simulator derives the same degraded capacity independently.
func (p *Plan) CrashedAt(t int64) int {
	if p == nil {
		return 0
	}
	n := 0
	for _, f := range p.Faults {
		if f.Kind == ServerCrash && f.AtSec <= t && t < f.endSec() {
			n += f.Count
		}
	}
	return n
}

// CrashedServerSeconds integrates crashed-server time over [start, end): the
// server-seconds the fleet spends wedged at S0 idle power.
func (p *Plan) CrashedServerSeconds(start, end int64) float64 {
	if p == nil || end <= start {
		return 0
	}
	var total float64
	for _, f := range p.Faults {
		if f.Kind != ServerCrash {
			continue
		}
		s, e := f.AtSec, f.endSec()
		if s < start {
			s = start
		}
		if e > end {
			e = end
		}
		if e > s {
			total += float64(f.Count) * float64(e-s)
		}
	}
	return total
}

// FabricFactorAt returns the remote-latency multiplier active at instant t
// (the maximum over overlapping degradation windows, at least 1).
func (p *Plan) FabricFactorAt(t int64) float64 {
	factor := 1.0
	if p == nil {
		return factor
	}
	for _, f := range p.Faults {
		if f.Kind == FabricDegrade && f.AtSec <= t && t < f.endSec() && f.Factor > factor {
			factor = f.Factor
		}
	}
	return factor
}

// FabricFactor returns the time-weighted mean remote-latency multiplier over
// [start, end): 1 outside degradation windows, the window's factor (maximum
// over overlaps) inside. Exactly 1.0 when no window intersects the span, so
// multiplying a cost by it preserves bit-identity on fault-free spans.
func (p *Plan) FabricFactor(start, end int64) float64 {
	if p == nil || end <= start {
		return 1
	}
	cuts := []int64{start, end}
	hit := false
	for _, f := range p.Faults {
		if f.Kind != FabricDegrade || f.Factor <= 1 {
			continue
		}
		if f.AtSec < end && f.endSec() > start {
			hit = true
			if f.AtSec > start {
				cuts = append(cuts, f.AtSec)
			}
			if f.endSec() < end {
				cuts = append(cuts, f.endSec())
			}
		}
	}
	if !hit {
		return 1
	}
	sort.Slice(cuts, func(i, j int) bool { return cuts[i] < cuts[j] })
	var integral float64
	for i := 0; i+1 < len(cuts); i++ {
		a, b := cuts[i], cuts[i+1]
		if b <= a {
			continue
		}
		integral += p.FabricFactorAt(a) * float64(b-a)
	}
	return integral / float64(end-start)
}

// WakeFailureBudget returns the total wake-failure budget of the faults whose
// injection instant falls in [start, end) — the per-epoch stateless view the
// offline simulator charges against.
func (p *Plan) WakeFailureBudget(start, end int64) int {
	if p == nil {
		return 0
	}
	n := 0
	for _, f := range p.Faults {
		if f.Kind == WakeFailure && start <= f.AtSec && f.AtSec < end {
			n += f.Count
		}
	}
	return n
}

// FaultsIn returns the faults of one kind whose injection instant falls in
// [start, end), in plan order.
func (p *Plan) FaultsIn(kind FaultKind, start, end int64) []Fault {
	if p == nil {
		return nil
	}
	var out []Fault
	for _, f := range p.Faults {
		if f.Kind == kind && start <= f.AtSec && f.AtSec < end {
			out = append(out, f)
		}
	}
	return out
}

// RepairsIn returns the crash faults whose repair instant falls in
// [start, end), in plan order — the epochs that pay the reboot-to-S3 bill.
func (p *Plan) RepairsIn(start, end int64) []Fault {
	if p == nil {
		return nil
	}
	var out []Fault
	for _, f := range p.Faults {
		if f.Kind == ServerCrash && start <= f.endSec() && f.endSec() < end {
			out = append(out, f)
		}
	}
	return out
}

// PerturbTrace applies the plan's TraceBurst faults to a trace: each burst
// injects Count synthetic arrivals (modest single-core tasks, exponential
// durations) spread over the fault's window, drawn from an RNG derived from
// the plan seed and the fault's position — so the perturbed trace is a pure
// function of (trace, plan). A plan without bursts returns the trace
// unchanged (same pointer), preserving bit-identity.
func (p *Plan) PerturbTrace(tr *trace.Trace) *trace.Trace {
	if p.Empty() {
		return tr
	}
	bursts := p.FaultsIn(TraceBurst, 0, p.HorizonSec)
	if len(bursts) == 0 {
		return tr
	}
	out := &trace.Trace{
		Name:       tr.Name + "+" + p.Name,
		Machines:   tr.Machines,
		HorizonSec: tr.HorizonSec,
		Tasks:      append([]trace.Task(nil), tr.Tasks...),
	}
	nextID := 0
	for _, t := range tr.Tasks {
		if t.ID >= nextID {
			nextID = t.ID + 1
		}
	}
	for bi, b := range bursts {
		rng := rand.New(rand.NewSource(p.Seed + int64(bi)*7919 + b.AtSec))
		for i := 0; i < b.Count; i++ {
			start := b.AtSec + int64(rng.Float64()*float64(b.DurationSec))
			if start >= tr.HorizonSec {
				start = tr.HorizonSec - 1
			}
			dur := int64(rng.ExpFloat64() * float64(tr.HorizonSec) / 24)
			if dur < 60 {
				dur = 60
			}
			end := start + dur
			if end > tr.HorizonSec {
				end = tr.HorizonSec
			}
			if end <= start {
				start = end - 60
				if start < 0 {
					start, end = 0, 60
				}
			}
			bookedCPU := 0.5 + rng.Float64()*1.5
			bookedMem := bookedCPU * 3 * (0.8 + rng.Float64()*0.4)
			util := 0.35 * (0.5 + rng.Float64())
			task := trace.Task{
				ID:           nextID,
				JobID:        -(bi + 1), // burst job IDs are negative, grouped per burst
				StartSec:     start,
				EndSec:       end,
				BookedCPU:    bookedCPU,
				BookedMemGiB: bookedMem,
				UsedCPU:      bookedCPU * util,
				UsedMemGiB:   bookedMem * util,
			}
			nextID++
			out.Tasks = append(out.Tasks, task)
		}
	}
	sort.SliceStable(out.Tasks, func(i, j int) bool { return out.Tasks[i].StartSec < out.Tasks[j].StartSec })
	return out
}
