package chaos

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/trace"
)

func TestNewPlanDeterministic(t *testing.T) {
	cfg := PlanConfig{
		Name: "t", Seed: 9, HorizonSec: 24 * 3600, Machines: 100,
		Crashes: 4, WakeFailures: 5, ControllerLosses: 2, FabricDegradations: 2, TraceBursts: 2,
	}
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same config produced different plans")
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	tally := a.Tally()
	if tally.Crashes != 4 || tally.WakeFailures != 5 || tally.ControllerLosses != 2 ||
		tally.FabricDegradations != 2 || tally.TraceBursts != 2 {
		t.Fatalf("tally %+v does not match the config", tally)
	}
	other, err := New(PlanConfig{Name: "t", Seed: 10, HorizonSec: 24 * 3600, Machines: 100, Crashes: 4})
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Faults[:4], other.Faults[:4]) {
		t.Fatal("different seeds produced identical crash schedules")
	}
}

func TestNewPlanValidation(t *testing.T) {
	if _, err := New(PlanConfig{HorizonSec: 0, Machines: 10}); err == nil {
		t.Error("accepted zero horizon")
	}
	if _, err := New(PlanConfig{HorizonSec: 100, Machines: 0}); err == nil {
		t.Error("accepted zero machines")
	}
	if _, err := New(PlanConfig{HorizonSec: 100, Machines: 10, Crashes: -1}); err == nil {
		t.Error("accepted negative fault count")
	}
	bad := &Plan{Faults: []Fault{{Kind: FabricDegrade, Factor: 0.5}}}
	if err := bad.Validate(); err == nil {
		t.Error("accepted fabric factor below 1")
	}
	unsorted := &Plan{Faults: []Fault{
		{Kind: ControllerLoss, AtSec: 100},
		{Kind: ControllerLoss, AtSec: 50},
	}}
	if err := unsorted.Validate(); err == nil {
		t.Error("accepted unsorted faults")
	}
}

func TestScenarios(t *testing.T) {
	for _, name := range ScenarioNames() {
		p, err := Scenario(name, 24*3600, 200, 42)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if name == "off" && !p.Empty() {
			t.Error("off scenario is not empty")
		}
		if name != "off" && p.Empty() {
			t.Errorf("%s scenario is empty", name)
		}
	}
	light, _ := Scenario("light", 24*3600, 200, 42)
	heavy, _ := Scenario("heavy", 24*3600, 200, 42)
	if heavy.Tally().Total() <= light.Tally().Total() {
		t.Errorf("heavy (%d faults) not heavier than light (%d)", heavy.Tally().Total(), light.Tally().Total())
	}
	if _, err := Scenario("apocalyptic", 24*3600, 200, 42); err == nil ||
		!strings.Contains(err.Error(), "valid: off, light, heavy") {
		t.Errorf("unknown scenario error should list the valid names, got %v", err)
	}
}

func TestCrashQueries(t *testing.T) {
	p := &Plan{HorizonSec: 1000, Faults: []Fault{
		{Kind: ServerCrash, AtSec: 100, DurationSec: 200, Count: 3},
		{Kind: ServerCrash, AtSec: 250, DurationSec: 100, Count: 2},
	}}
	if got := p.CrashedAt(50); got != 0 {
		t.Errorf("CrashedAt(50) = %d, want 0", got)
	}
	if got := p.CrashedAt(150); got != 3 {
		t.Errorf("CrashedAt(150) = %d, want 3", got)
	}
	if got := p.CrashedAt(260); got != 5 {
		t.Errorf("CrashedAt(260) = %d, want 5", got)
	}
	if got := p.CrashedAt(320); got != 2 {
		t.Errorf("CrashedAt(320) = %d, want 2 (first crash repaired)", got)
	}
	// Server-seconds over [0,400): 3*200 + 2*100 = 800.
	if got := p.CrashedServerSeconds(0, 400); got != 800 {
		t.Errorf("CrashedServerSeconds = %v, want 800", got)
	}
	if got := len(p.RepairsIn(300, 400)); got != 2 {
		t.Errorf("RepairsIn(300,400) = %d faults, want 2 (repairs at 300 and 350)", got)
	}
}

func TestFabricFactorWindows(t *testing.T) {
	p := &Plan{HorizonSec: 1000, Faults: []Fault{
		{Kind: FabricDegrade, AtSec: 100, DurationSec: 100, Factor: 4},
		{Kind: FabricDegrade, AtSec: 150, DurationSec: 100, Factor: 2},
	}}
	if got := p.FabricFactor(0, 100); got != 1 {
		t.Errorf("clean span factor = %v, want exactly 1", got)
	}
	if got := p.FabricFactorAt(120); got != 4 {
		t.Errorf("FabricFactorAt(120) = %v, want 4", got)
	}
	if got := p.FabricFactorAt(220); got != 2 {
		t.Errorf("FabricFactorAt(220) = %v, want 2 after the stronger window closed", got)
	}
	// [100,200): factor 4 throughout (the overlap takes the max).
	if got := p.FabricFactor(100, 200); got != 4 {
		t.Errorf("FabricFactor(100,200) = %v, want 4", got)
	}
	// [200,250): factor 2.
	if got := p.FabricFactor(200, 250); got != 2 {
		t.Errorf("FabricFactor(200,250) = %v, want 2", got)
	}
	// [0,200): 100s at 1, 100s at 4 -> 2.5 mean.
	if got := p.FabricFactor(0, 200); got != 2.5 {
		t.Errorf("FabricFactor(0,200) = %v, want 2.5", got)
	}
}

func TestWakeFailureBudget(t *testing.T) {
	p := &Plan{HorizonSec: 1000, Faults: []Fault{
		{Kind: WakeFailure, AtSec: 100, DurationSec: 50, Count: 2},
		{Kind: WakeFailure, AtSec: 300, DurationSec: 50, Count: 1},
	}}
	if got := p.WakeFailureBudget(0, 200); got != 2 {
		t.Errorf("budget [0,200) = %d, want 2", got)
	}
	if got := p.WakeFailureBudget(0, 1000); got != 3 {
		t.Errorf("budget [0,1000) = %d, want 3", got)
	}
	if got := p.WakeFailureBudget(150, 250); got != 0 {
		t.Errorf("budget [150,250) = %d, want 0", got)
	}
}

func TestPerturbTrace(t *testing.T) {
	tr, err := trace.Generate(trace.GeneratorConfig{
		Name: "base", Machines: 50, HorizonSec: 3600, Tasks: 100,
		MemoryToCPURatio: 3, MeanUtilization: 0.35, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	empty := &Plan{Name: "off", HorizonSec: 3600}
	if got := empty.PerturbTrace(tr); got != tr {
		t.Error("empty plan must return the same trace pointer")
	}
	p := &Plan{Name: "bursty", Seed: 5, HorizonSec: 3600, Faults: []Fault{
		{Kind: TraceBurst, AtSec: 1000, DurationSec: 600, Count: 30},
		{Kind: TraceBurst, AtSec: 2500, DurationSec: 600, Count: 10},
	}}
	out := p.PerturbTrace(tr)
	if len(out.Tasks) != len(tr.Tasks)+40 {
		t.Fatalf("perturbed trace has %d tasks, want %d", len(out.Tasks), len(tr.Tasks)+40)
	}
	if err := out.Validate(); err != nil {
		t.Fatalf("perturbed trace invalid: %v", err)
	}
	if len(tr.Tasks) != 100 {
		t.Fatal("perturbation mutated the input trace")
	}
	if !strings.Contains(out.Name, "bursty") {
		t.Errorf("perturbed trace name %q does not carry the scenario", out.Name)
	}
	// Burst tasks land inside their windows.
	inWindow := 0
	for _, task := range out.Tasks {
		if task.JobID < 0 {
			if (task.StartSec >= 1000 && task.StartSec < 1600) || (task.StartSec >= 2500 && task.StartSec < 3100) {
				inWindow++
			}
		}
	}
	if inWindow != 40 {
		t.Errorf("%d of 40 burst tasks landed inside their windows", inWindow)
	}
}

func TestFaultKindStrings(t *testing.T) {
	kinds := []FaultKind{ServerCrash, WakeFailure, ControllerLoss, FabricDegrade, TraceBurst}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "" || seen[s] {
			t.Errorf("kind %d has empty or duplicate name %q", k, s)
		}
		seen[s] = true
	}
	roles := []CrashRole{RoleAny, RoleActive, RoleServing, RoleSleep}
	seenRole := map[string]bool{}
	for _, r := range roles {
		s := r.String()
		if s == "" || seenRole[s] {
			t.Errorf("role %d has empty or duplicate name %q", r, s)
		}
		seenRole[s] = true
	}
}
