// Package chaos is the deterministic fault-injection layer of the
// reproduction: seeded, reproducible failure schedules threaded through the
// fleet control plane (internal/fleet), the online autonomic loop
// (internal/autopilot) and the offline datacenter simulator (internal/dcsim).
//
// The paper's savings claims assume servers wake from the zombie state and
// resume serving remote memory on demand; its practicality argument rests on
// what happens when they don't. A chaos.Plan is a time-ordered schedule of
// typed faults — server crashes, failed S3->S0 wakes (stuck zombies),
// controller losses, RDMA-fabric degradation windows and trace perturbations
// (arrival bursts) — generated from a seed by New or the Scenario presets
// ("off", "light", "heavy").
//
// # Determinism contract
//
// A plan is data, not behaviour: every consumer derives its faulted run
// purely from the plan's contents, and every query (CrashedAt, FabricFactor,
// WakeFailureBudget, PerturbTrace...) is a pure function of the plan and a
// time window. Consequently:
//
//   - the same seed and plan produce bit-identical results across runs and
//     across worker counts (the parallel dcsim engine derives each epoch's
//     degraded capacity independently);
//   - an empty plan is indistinguishable from no plan at all — the chaos
//     code paths add exact zeros and multiply by exact ones, so the
//     fault-free chaos run is bit-identical to the pre-chaos code path.
//
// Fault penalties are accounted as additional energy on the consolidated
// fleet (never on the no-consolidation baseline, whose fleet neither
// consolidates nor pays fault penalties in this model), so injecting faults
// can only lower the reported saving — the resilience bound the tests pin.
//
// Report carries the resilience metrics of one faulted online run: savings
// retained versus the fault-free run, SLO violations, wasted transitions,
// re-homed remote memory, and the faulted oracle's saving for an
// apples-to-apples resilience regret. The runners live in
// internal/autopilot (RunChaos, CompareChaos) because they orchestrate
// online runs; this package only defines plans, queries and reports.
package chaos
