package acpi

import (
	"fmt"
	"sort"
)

// DeviceClass identifies the functional role of a platform device. The class
// determines which power rail the device sits on and whether it must remain
// functional in the Sz state.
type DeviceClass int

// Device classes present on a general-purpose server board.
const (
	ClassCPU DeviceClass = iota
	ClassMemory
	ClassMemoryController
	ClassRemoteNIC // RDMA-capable NIC (Infiniband in the paper's prototype)
	ClassWakeNIC   // management NIC kept alive for Wake-on-LAN
	ClassPCIeRoot
	ClassStorage
	ClassChipset
	ClassGPU
	ClassFan
	ClassBMC
)

// String names the device class.
func (c DeviceClass) String() string {
	switch c {
	case ClassCPU:
		return "cpu"
	case ClassMemory:
		return "memory"
	case ClassMemoryController:
		return "memory-controller"
	case ClassRemoteNIC:
		return "remote-nic"
	case ClassWakeNIC:
		return "wake-nic"
	case ClassPCIeRoot:
		return "pcie-root"
	case ClassStorage:
		return "storage"
	case ClassChipset:
		return "chipset"
	case ClassGPU:
		return "gpu"
	case ClassFan:
		return "fan"
	case ClassBMC:
		return "bmc"
	default:
		return fmt.Sprintf("DeviceClass(%d)", int(c))
	}
}

// PowerRail is an independent power supply domain on the board. The paper's
// key hardware requirement is that the memory (and the NIC-to-memory path)
// live on rails that can stay energised while the CPU rail is cut.
type PowerRail struct {
	Name string
	// Energised reports whether the rail currently delivers power.
	Energised bool
}

// Device is a power-manageable component of the platform.
type Device struct {
	Name  string
	Class DeviceClass
	// Rail is the name of the power rail feeding the device.
	Rail string
	// State is the current D-state of the device.
	State DeviceState
	// KeepAliveInSz marks devices that the Sz enter path must leave in
	// active-idle rather than suspending (DRAM, memory controller, the
	// Infiniband card and its PCIe root port in the paper's prototype).
	KeepAliveInSz bool
}

// Functional reports whether the device can serve requests right now: its
// rail must be energised and its D-state functional.
func (d *Device) Functional(rails map[string]*PowerRail) bool {
	r, ok := rails[d.Rail]
	if !ok || !r.Energised {
		return false
	}
	return d.State.Functional()
}

// BoardSpec describes the hardware configuration of a server board.
type BoardSpec struct {
	// Name identifies the board model (e.g. "hp-elite-8300").
	Name string
	// Sockets and CoresPerSocket describe the CPU complex.
	Sockets        int
	CoresPerSocket int
	// MemoryBytes is the installed DRAM capacity.
	MemoryBytes uint64
	// DIMMs is the number of DIMM modules (each gets its own device entry).
	DIMMs int
	// HasRemoteNIC indicates an RDMA-capable NIC is installed.
	HasRemoteNIC bool
	// SplitPowerDomains indicates the board implements the paper's hardware
	// change: CPU and memory on independent power supply domains. Without
	// it the platform cannot enter Sz.
	SplitPowerDomains bool
}

// DefaultBoardSpec returns a board comparable to the paper's testbed machines
// (HP Compaq Elite 8300: 1 socket, 16 GiB RAM, ConnectX-3), with split power
// domains enabled so Sz is available.
func DefaultBoardSpec() BoardSpec {
	return BoardSpec{
		Name:              "hp-elite-8300",
		Sockets:           1,
		CoresPerSocket:    8,
		MemoryBytes:       16 << 30,
		DIMMs:             4,
		HasRemoteNIC:      true,
		SplitPowerDomains: true,
	}
}

// Validate checks the board description for inconsistencies.
func (b BoardSpec) Validate() error {
	if b.Name == "" {
		return fmt.Errorf("acpi: board spec needs a name")
	}
	if b.Sockets <= 0 || b.CoresPerSocket <= 0 {
		return fmt.Errorf("acpi: board %q needs at least one socket and one core", b.Name)
	}
	if b.MemoryBytes == 0 {
		return fmt.Errorf("acpi: board %q has no memory", b.Name)
	}
	if b.DIMMs <= 0 {
		return fmt.Errorf("acpi: board %q needs at least one DIMM", b.Name)
	}
	return nil
}

// TotalCores returns the number of CPU cores on the board.
func (b BoardSpec) TotalCores() int { return b.Sockets * b.CoresPerSocket }

// buildDevices constructs the device and rail inventory for a board. Rails
// are laid out as the paper requires: when SplitPowerDomains is set, the
// memory subsystem and the remote-NIC path get rails separate from the CPU
// rail so they can remain energised during Sz.
func buildDevices(spec BoardSpec) (map[string]*Device, map[string]*PowerRail) {
	rails := map[string]*PowerRail{
		"rail-cpu":     {Name: "rail-cpu", Energised: true},
		"rail-main":    {Name: "rail-main", Energised: true},
		"rail-standby": {Name: "rail-standby", Energised: true},
	}
	memRail := "rail-main"
	nicRail := "rail-main"
	if spec.SplitPowerDomains {
		rails["rail-mem"] = &PowerRail{Name: "rail-mem", Energised: true}
		rails["rail-ibpath"] = &PowerRail{Name: "rail-ibpath", Energised: true}
		memRail = "rail-mem"
		nicRail = "rail-ibpath"
	}

	devices := make(map[string]*Device)
	add := func(d *Device) { devices[d.Name] = d }

	for s := 0; s < spec.Sockets; s++ {
		add(&Device{Name: fmt.Sprintf("cpu%d", s), Class: ClassCPU, Rail: "rail-cpu", State: D0})
	}
	for i := 0; i < spec.DIMMs; i++ {
		add(&Device{Name: fmt.Sprintf("dimm%d", i), Class: ClassMemory, Rail: memRail, State: D0, KeepAliveInSz: true})
	}
	add(&Device{Name: "imc0", Class: ClassMemoryController, Rail: memRail, State: D0, KeepAliveInSz: true})
	if spec.HasRemoteNIC {
		add(&Device{Name: "ib0", Class: ClassRemoteNIC, Rail: nicRail, State: D0, KeepAliveInSz: true})
		add(&Device{Name: "pcie-root-ib", Class: ClassPCIeRoot, Rail: nicRail, State: D0, KeepAliveInSz: true})
	}
	add(&Device{Name: "eth0", Class: ClassWakeNIC, Rail: "rail-standby", State: D0})
	add(&Device{Name: "pcie-root0", Class: ClassPCIeRoot, Rail: "rail-main", State: D0})
	add(&Device{Name: "sata0", Class: ClassStorage, Rail: "rail-main", State: D0})
	add(&Device{Name: "pch0", Class: ClassChipset, Rail: "rail-main", State: D0})
	add(&Device{Name: "fan0", Class: ClassFan, Rail: "rail-main", State: D0})
	add(&Device{Name: "bmc0", Class: ClassBMC, Rail: "rail-standby", State: D0})
	return devices, rails
}

// sortedDeviceNames returns the device names in deterministic order, so that
// transition traces and tests are stable.
func sortedDeviceNames(devices map[string]*Device) []string {
	names := make([]string, 0, len(devices))
	for n := range devices {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
