package acpi

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestSleepStateStrings(t *testing.T) {
	cases := map[SleepState]string{
		S0: "S0", S1: "S1", S2: "S2", S3: "S3", S4: "S4", S5: "S5", Sz: "Sz",
	}
	for s, want := range cases {
		if got := s.String(); got != want {
			t.Errorf("String(%d) = %q, want %q", int(s), got, want)
		}
	}
	if got := SleepState(42).String(); !strings.Contains(got, "42") {
		t.Errorf("unknown state String() = %q", got)
	}
}

func TestSysfsKeywordRoundTrip(t *testing.T) {
	for _, s := range []SleepState{S1, S3, S4, Sz} {
		kw := s.SysfsKeyword()
		if kw == "" {
			t.Fatalf("state %s should have a sysfs keyword", s)
		}
		back, err := ParseSysfsKeyword(kw)
		if err != nil {
			t.Fatalf("ParseSysfsKeyword(%q): %v", kw, err)
		}
		if back != s {
			t.Errorf("round trip %s -> %q -> %s", s, kw, back)
		}
	}
	if _, err := ParseSysfsKeyword("bogus"); err == nil {
		t.Error("expected error for unknown keyword")
	}
	if kw := S5.SysfsKeyword(); kw != "" {
		t.Errorf("S5 keyword = %q, want empty", kw)
	}
	if kw := Sz.SysfsKeyword(); kw != "zom" {
		t.Errorf("Sz keyword = %q, want zom (the paper's new keyword)", kw)
	}
}

func TestStateSemantics(t *testing.T) {
	if S0.IsSleeping() {
		t.Error("S0 must not be sleeping")
	}
	for _, s := range []SleepState{S1, S2, S3, S4, S5, Sz} {
		if !s.IsSleeping() {
			t.Errorf("%s should be sleeping", s)
		}
		if s.CPUAvailable() {
			t.Errorf("%s must not have CPU available", s)
		}
	}
	// The defining property of Sz.
	if !Sz.MemoryPowered() || !Sz.MemoryRemotelyAccessible() {
		t.Error("Sz must keep memory powered and remotely accessible")
	}
	if !S3.MemoryPowered() {
		t.Error("S3 keeps memory in self-refresh")
	}
	if S3.MemoryRemotelyAccessible() {
		t.Error("S3 memory must NOT be remotely accessible")
	}
	if S4.MemoryPowered() || S5.MemoryPowered() {
		t.Error("S4/S5 do not keep memory powered")
	}
	if !S4.ContextPreservedOnDisk() {
		t.Error("S4 preserves context on disk")
	}
}

func TestProfileConsistency(t *testing.T) {
	for _, s := range AllStates() {
		p := Profile(s)
		if p.State != s {
			t.Errorf("Profile(%s).State = %s", s, p.State)
		}
		if p.RemoteMemoryServing != s.MemoryRemotelyAccessible() {
			t.Errorf("%s: RemoteMemoryServing=%v disagrees with MemoryRemotelyAccessible=%v",
				s, p.RemoteMemoryServing, s.MemoryRemotelyAccessible())
		}
		if p.CPUOn != s.CPUAvailable() {
			t.Errorf("%s: CPUOn=%v disagrees with CPUAvailable=%v", s, p.CPUOn, s.CPUAvailable())
		}
		if s.MemoryPowered() && !p.MemoryState.Powered() {
			t.Errorf("%s: memory should be powered but D-state is %s", s, p.MemoryState)
		}
	}
	// Sz-specific: memory and NIC in active idle.
	pz := Profile(Sz)
	if pz.MemoryState != D0i || pz.RemoteNICState != D0i {
		t.Errorf("Sz profile should keep memory and NIC in D0i, got %s/%s", pz.MemoryState, pz.RemoteNICState)
	}
}

func TestLatencyOrdering(t *testing.T) {
	// Deeper states take longer to exit; Sz resume should not exceed S3.
	if Latency(Sz).Exit > Latency(S3).Exit {
		t.Error("Sz exit should be no slower than S3 exit")
	}
	if Latency(S3).Exit >= Latency(S4).Exit {
		t.Error("S3 exit must be faster than S4 exit")
	}
	if Latency(S4).Exit >= Latency(S5).Exit {
		t.Error("S4 exit must be faster than S5 (full boot)")
	}
	if Latency(S0).Enter != 0 || Latency(S0).Exit != 0 {
		t.Error("S0 has no transition latency")
	}
}

func TestDeviceStateSemantics(t *testing.T) {
	if !D0.Functional() || !D0i.Functional() {
		t.Error("D0 and D0i are functional")
	}
	for _, d := range []DeviceState{D1, D2, D3Hot, D3Cold} {
		if d.Functional() {
			t.Errorf("%s should not be functional", d)
		}
	}
	if D3Cold.Powered() {
		t.Error("D3cold is unpowered")
	}
	if !D3Hot.Powered() {
		t.Error("D3hot still receives power")
	}
}

func TestSleepTypeValuesDistinct(t *testing.T) {
	seen := map[uint16]SleepState{}
	for _, s := range AllStates() {
		v := s.SleepTypeValue()
		if prev, dup := seen[v]; dup {
			t.Errorf("SLP_TYP %#x reused by %s and %s", v, prev, s)
		}
		seen[v] = s
	}
}

func TestSleepRegistersRoundTrip(t *testing.T) {
	var r SleepRegisters
	if _, ok := r.Pending(); ok {
		t.Fatal("fresh registers must not report a pending transition")
	}
	for _, s := range []SleepState{S3, S4, S5, Sz} {
		r.Write(s)
		got, ok := r.Pending()
		if !ok {
			t.Fatalf("Pending after Write(%s) not set", s)
		}
		if got != s {
			t.Errorf("Pending() = %s, want %s", got, s)
		}
		r.Clear()
		if _, ok := r.Pending(); ok {
			t.Error("Pending after Clear should be false")
		}
	}
}

func TestSleepRegistersMismatch(t *testing.T) {
	var r SleepRegisters
	r.Write(S3)
	r.PM1BControl = (S4.SleepTypeValue() << slpTypeShift) | slpEnable
	if _, ok := r.Pending(); ok {
		t.Error("mismatched PM1A/PM1B must not decode as pending")
	}
}

func TestBoardSpecValidate(t *testing.T) {
	good := DefaultBoardSpec()
	if err := good.Validate(); err != nil {
		t.Fatalf("default spec invalid: %v", err)
	}
	if got := good.TotalCores(); got != 8 {
		t.Errorf("TotalCores = %d, want 8", got)
	}
	bad := []BoardSpec{
		{},
		{Name: "x", Sockets: 0, CoresPerSocket: 4, MemoryBytes: 1, DIMMs: 1},
		{Name: "x", Sockets: 1, CoresPerSocket: 4, MemoryBytes: 0, DIMMs: 1},
		{Name: "x", Sockets: 1, CoresPerSocket: 4, MemoryBytes: 1, DIMMs: 0},
	}
	for i, b := range bad {
		if err := b.Validate(); err == nil {
			t.Errorf("bad spec %d validated", i)
		}
	}
}

func newTestPlatform(t *testing.T) *Platform {
	t.Helper()
	p, err := NewPlatform(DefaultBoardSpec())
	if err != nil {
		t.Fatalf("NewPlatform: %v", err)
	}
	return p
}

func TestPlatformInitialState(t *testing.T) {
	p := newTestPlatform(t)
	if p.State() != S0 {
		t.Fatalf("initial state %s, want S0", p.State())
	}
	if !p.MemoryRemotelyAccessible() {
		t.Error("S0 memory should be remotely accessible")
	}
	if len(p.Devices()) == 0 || len(p.Rails()) == 0 {
		t.Error("platform should expose devices and rails")
	}
	if p.Device("ib0") == nil {
		t.Error("default board must have an Infiniband NIC")
	}
	if !p.Firmware.Initialized() {
		t.Error("firmware should boot during NewPlatform")
	}
}

func TestSuspendToSzKeepsMemoryAccessible(t *testing.T) {
	p := newTestPlatform(t)
	trace, err := p.Suspend(Sz)
	if err != nil {
		t.Fatalf("Suspend(Sz): %v", err)
	}
	if p.State() != Sz {
		t.Fatalf("state = %s, want Sz", p.State())
	}
	if !p.MemoryRemotelyAccessible() {
		t.Fatal("Sz platform must keep memory remotely accessible")
	}
	// CPU rail must be cut, memory rail must stay up.
	if p.Rail("rail-cpu").Energised {
		t.Error("CPU rail should be cut in Sz")
	}
	if !p.Rail("rail-mem").Energised || !p.Rail("rail-ibpath").Energised {
		t.Error("memory and IB-path rails must stay energised in Sz")
	}
	// DIMMs and the NIC should be in active-idle.
	if p.Device("dimm0").State != D0i {
		t.Errorf("dimm0 state = %s, want D0i", p.Device("dimm0").State)
	}
	if p.Device("ib0").State != D0i {
		t.Errorf("ib0 state = %s, want D0i", p.Device("ib0").State)
	}
	// Storage and chipset should be down.
	if p.Device("sata0").State.Functional() {
		t.Error("storage should be suspended in Sz")
	}
	// The trace must include the paper's modified functions.
	var modified []string
	for _, s := range trace {
		if s.ModifiedForSz {
			modified = append(modified, s.Func)
		}
	}
	for _, want := range []string{"sysfs_write_power_state", "x86_acpi_enter_sleep_state", "acpi_os_prepare_sleep"} {
		found := false
		for _, m := range modified {
			if m == want {
				found = true
			}
		}
		if !found {
			t.Errorf("Sz trace should mark %s as modified (Figure 6), got %v", want, modified)
		}
	}
	if p.Firmware.SzEnters != 1 {
		t.Errorf("firmware SzEnters = %d, want 1", p.Firmware.SzEnters)
	}
}

func TestSuspendToS3MemoryUnreachable(t *testing.T) {
	p := newTestPlatform(t)
	if _, err := p.Suspend(S3); err != nil {
		t.Fatalf("Suspend(S3): %v", err)
	}
	if p.MemoryRemotelyAccessible() {
		t.Fatal("S3 memory must not be remotely accessible")
	}
	// No step of the S3 trace should be marked as Sz-modified.
	for _, s := range p.LastTrace() {
		if s.ModifiedForSz {
			t.Errorf("S3 trace step %s marked ModifiedForSz", s.Func)
		}
	}
}

func TestSzRequiresSplitPowerDomains(t *testing.T) {
	spec := DefaultBoardSpec()
	spec.SplitPowerDomains = false
	p, err := NewPlatform(spec)
	if err != nil {
		t.Fatalf("NewPlatform: %v", err)
	}
	if _, err := p.Suspend(Sz); err == nil {
		t.Fatal("Sz must be rejected without split power domains")
	}
	// S3 still works on such a board.
	if _, err := p.Suspend(S3); err != nil {
		t.Fatalf("Suspend(S3) on legacy board: %v", err)
	}
}

func TestSzRequiresRemoteNIC(t *testing.T) {
	spec := DefaultBoardSpec()
	spec.HasRemoteNIC = false
	p, err := NewPlatform(spec)
	if err != nil {
		t.Fatalf("NewPlatform: %v", err)
	}
	if _, err := p.Suspend(Sz); err == nil {
		t.Fatal("Sz must be rejected without an RDMA NIC")
	}
}

func TestWakeFromSz(t *testing.T) {
	p := newTestPlatform(t)
	if _, err := p.Suspend(Sz); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Wake(WakeRTC); err == nil {
		t.Fatal("RTC wake should fail: not armed by default")
	}
	trace, err := p.Wake(WakeLAN)
	if err != nil {
		t.Fatalf("Wake: %v", err)
	}
	if p.State() != S0 {
		t.Fatalf("state after wake = %s, want S0", p.State())
	}
	if len(trace) == 0 {
		t.Error("wake trace should not be empty")
	}
	if p.Device("cpu0").State != D0 {
		t.Error("CPU should be restored to D0 after wake")
	}
	if p.Firmware.SzExits != 1 {
		t.Errorf("firmware SzExits = %d, want 1", p.Firmware.SzExits)
	}
	recs := p.Transitions()
	if len(recs) != 2 {
		t.Fatalf("expected 2 transition records, got %d", len(recs))
	}
	if recs[0].From != S0 || recs[0].To != Sz || recs[1].From != Sz || recs[1].To != S0 {
		t.Errorf("unexpected transition history: %+v", recs)
	}
}

func TestCannotNestSleepStates(t *testing.T) {
	p := newTestPlatform(t)
	if _, err := p.Suspend(S3); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Suspend(Sz); err == nil {
		t.Fatal("suspending an already-suspended platform must fail")
	}
	if _, err := p.Suspend(S3); err == nil {
		t.Fatal("re-suspending into the same state must fail")
	}
}

func TestSuspendToS0Rejected(t *testing.T) {
	p := newTestPlatform(t)
	if _, err := p.Suspend(S0); err == nil {
		t.Fatal("Suspend(S0) must be rejected")
	}
	if _, err := p.Wake(WakeLAN); err == nil {
		t.Fatal("waking an awake platform must fail")
	}
}

func TestTimeInStateAccounting(t *testing.T) {
	p := newTestPlatform(t)
	p.AdvanceClock(1_000_000_000) // 1s in S0
	if _, err := p.Suspend(Sz); err != nil {
		t.Fatal(err)
	}
	p.AdvanceClock(10_000_000_000) // 10s in Sz
	if _, err := p.Wake(WakeLAN); err != nil {
		t.Fatal(err)
	}
	p.AdvanceClock(2_000_000_000) // 2s back in S0

	if got := p.TimeInState(Sz); got < 10_000_000_000 {
		t.Errorf("time in Sz = %d, want >= 10s", got)
	}
	if got := p.TimeInState(S0); got < 3_000_000_000 {
		t.Errorf("time in S0 = %d, want >= 3s", got)
	}
	if got := p.TimeInState(S4); got != 0 {
		t.Errorf("time in S4 = %d, want 0", got)
	}
}

func TestWakeSourceArming(t *testing.T) {
	p := newTestPlatform(t)
	p.ArmWake(WakeRTC)
	if !p.WakeArmed(WakeRTC) {
		t.Error("RTC should be armed")
	}
	p.DisarmWake(WakeRTC)
	if p.WakeArmed(WakeRTC) {
		t.Error("RTC should be disarmed")
	}
	if !p.WakeArmed(WakeLAN) {
		t.Error("WoL is armed by default (rack manager needs it)")
	}
}

func TestSuspendResumeCycleIdempotent(t *testing.T) {
	p := newTestPlatform(t)
	for i := 0; i < 5; i++ {
		if _, err := p.Suspend(Sz); err != nil {
			t.Fatalf("cycle %d suspend: %v", i, err)
		}
		if !p.MemoryRemotelyAccessible() {
			t.Fatalf("cycle %d: memory unreachable in Sz", i)
		}
		if _, err := p.Wake(WakeLAN); err != nil {
			t.Fatalf("cycle %d wake: %v", i, err)
		}
		if p.State() != S0 {
			t.Fatalf("cycle %d: not back in S0", i)
		}
	}
	if p.Firmware.SzEnters != 5 || p.Firmware.SzExits != 5 {
		t.Errorf("firmware counted %d/%d Sz enters/exits, want 5/5", p.Firmware.SzEnters, p.Firmware.SzExits)
	}
}

// Property: for every sleep state, remote accessibility implies the memory is
// powered (you cannot serve memory that lost its contents).
func TestPropertyRemoteAccessImpliesPowered(t *testing.T) {
	f := func(raw uint8) bool {
		s := SleepState(int(raw) % 7)
		if s.MemoryRemotelyAccessible() && !s.MemoryPowered() {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: PM1 register round-trip is stable for every requestable state.
func TestPropertyRegisterRoundTrip(t *testing.T) {
	states := []SleepState{S1, S3, S4, S5, Sz}
	f := func(idx uint8) bool {
		s := states[int(idx)%len(states)]
		var r SleepRegisters
		r.Write(s)
		got, ok := r.Pending()
		return ok && got == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFirmwareNotBooted(t *testing.T) {
	spec := DefaultBoardSpec()
	devices, rails := buildDevices(spec)
	p := &Platform{
		Spec:          spec,
		Firmware:      NewFirmware("raw", true), // never booted
		devices:       devices,
		rails:         rails,
		wakeArmed:     map[WakeSource]bool{WakeLAN: true},
		timeInStateNs: make(map[SleepState]int64),
	}
	if _, err := p.Suspend(Sz); err == nil {
		t.Fatal("Sz without firmware boot-time chipset init must fail")
	}
}
