// Package acpi models the ACPI global sleep states of a server platform,
// extended with the paper's new zombie (Sz) state.
//
// The package provides:
//
//   - the global sleep states S0..S5 plus Sz and their semantics
//     (which device classes remain powered, whether memory stays remotely
//     accessible, transition latencies);
//   - device power states D0..D3 and per-device power-domain membership;
//   - a Platform type describing a server board as a set of devices attached
//     to power rails, with PM1A/PM1B-style sleep control registers;
//   - an OSPM transition engine that reproduces the suspend execution path of
//     the paper's Figure 6 ("echo zom > /sys/power/state"), including the
//     keep-alive device set that distinguishes Sz from S3;
//   - a Firmware model responsible for chipset (re)initialisation on boot and
//     on every Sz enter/exit.
//
// The paper has no Sz-capable hardware either; it reasons about Sz through a
// model. This package is that model, made explicit and testable, so that the
// rack-level memory disaggregation layers can ask questions such as "is this
// server's memory reachable right now?" and "how long does an Sz exit take?".
package acpi
