package acpi

import "fmt"

// SleepState is an ACPI global system power state.
type SleepState int

// Global sleep states. S0 is fully working, S5 is soft-off. Sz is the paper's
// zombie state: the platform is suspended like S3 but DRAM and the RDMA NIC
// path stay in active-idle so the memory remains remotely accessible.
const (
	S0 SleepState = iota // working
	S1                   // power on suspend (CPU caches flushed, CPU stopped)
	S2                   // CPU powered off (rarely implemented)
	S3                   // suspend to RAM
	S4                   // suspend to disk (hibernate)
	S5                   // soft off
	Sz                   // zombie: suspended, memory remotely accessible
)

// String returns the conventional name of the state.
func (s SleepState) String() string {
	switch s {
	case S0:
		return "S0"
	case S1:
		return "S1"
	case S2:
		return "S2"
	case S3:
		return "S3"
	case S4:
		return "S4"
	case S5:
		return "S5"
	case Sz:
		return "Sz"
	default:
		return fmt.Sprintf("SleepState(%d)", int(s))
	}
}

// SysfsKeyword returns the keyword written to /sys/power/state to request the
// state under the Linux OSPM convention, extended with the paper's "zom"
// keyword for Sz. States that cannot be requested through sysfs return "".
func (s SleepState) SysfsKeyword() string {
	switch s {
	case S1:
		return "freeze"
	case S3:
		return "mem"
	case S4:
		return "disk"
	case Sz:
		return "zom"
	default:
		return ""
	}
}

// ParseSysfsKeyword maps a /sys/power/state keyword to a sleep state.
func ParseSysfsKeyword(kw string) (SleepState, error) {
	switch kw {
	case "freeze", "standby":
		return S1, nil
	case "mem":
		return S3, nil
	case "disk":
		return S4, nil
	case "zom":
		return Sz, nil
	default:
		return S0, fmt.Errorf("acpi: unknown sleep keyword %q", kw)
	}
}

// IsSleeping reports whether the state is any state other than S0.
func (s SleepState) IsSleeping() bool { return s != S0 }

// CPUAvailable reports whether the CPU executes instructions in this state.
func (s SleepState) CPUAvailable() bool { return s == S0 }

// MemoryPowered reports whether DRAM contents are preserved by hardware in
// this state (S3 self-refresh, Sz active-idle, and of course S0/S1/S2).
func (s SleepState) MemoryPowered() bool {
	switch s {
	case S0, S1, S2, S3, Sz:
		return true
	default:
		return false
	}
}

// MemoryRemotelyAccessible reports whether the memory of a platform in this
// state can be accessed by one-sided RDMA operations without waking the CPU.
// This is the defining property of Sz: in S3 the DRAM is in low-power
// self-refresh and the memory controller and NIC data path are down, so the
// memory is preserved but unreachable; in Sz both stay in active-idle.
func (s SleepState) MemoryRemotelyAccessible() bool {
	return s == S0 || s == Sz
}

// ContextPreservedOnDisk reports whether the system image is saved to storage
// (hibernate-style states).
func (s SleepState) ContextPreservedOnDisk() bool { return s == S4 }

// SleepTypeValue returns the SLP_TYP value written into the PM1 control
// registers to request the state. The concrete values are platform specific;
// the ones used here follow the common FACP encodings, with Sz using one of
// the values that the ACPI specification leaves unused (the paper's approach:
// "since these registers have unused values, we consider new ones for
// triggering to zombie").
func (s SleepState) SleepTypeValue() uint16 {
	switch s {
	case S0:
		return 0x0
	case S1:
		return 0x1
	case S2:
		return 0x2
	case S3:
		return 0x5
	case S4:
		return 0x6
	case S5:
		return 0x7
	case Sz:
		return 0xA // unused value claimed for zombie
	default:
		return 0xF
	}
}

// AllStates lists every modelled state in ascending "depth" order with Sz
// placed between S3 and S4, matching its power envelope.
func AllStates() []SleepState {
	return []SleepState{S0, S1, S2, S3, Sz, S4, S5}
}

// TransitionNs returns the simulated latency of moving a platform from one
// global state to another. A suspend (S0 -> s) costs the state's enter
// latency, a wake (s -> S0) its exit latency, and a transition between two
// sleep states costs a full wake plus a re-suspend: ACPI has no lateral path
// between sleep states, the platform always resumes to S0 in between (the
// rule Platform.CanEnter enforces).
func TransitionNs(from, to SleepState) int64 {
	if from == to {
		return 0
	}
	if from == S0 {
		return Latency(to).Enter
	}
	if to == S0 {
		return Latency(from).Exit
	}
	return Latency(from).Exit + Latency(to).Enter
}

// DeviceState is an ACPI device power state (D-state).
type DeviceState int

// Device power states from fully-on (D0) to off (D3cold). D0i is the
// "active idle" sub-state the paper relies on for DRAM and the Infiniband
// path while in Sz (the memory behaviour of Sz "mimics that of Si0x state
// specifications, where the memory is kept in active idle").
const (
	D0     DeviceState = iota // fully on
	D0i                       // active idle (low-power but instantly usable)
	D1                        // light sleep
	D2                        // deeper sleep
	D3Hot                     // off, power still applied
	D3Cold                    // off, power removed
)

// String returns the conventional name of the device state.
func (d DeviceState) String() string {
	switch d {
	case D0:
		return "D0"
	case D0i:
		return "D0i"
	case D1:
		return "D1"
	case D2:
		return "D2"
	case D3Hot:
		return "D3hot"
	case D3Cold:
		return "D3cold"
	default:
		return fmt.Sprintf("DeviceState(%d)", int(d))
	}
}

// Functional reports whether a device in this state can serve requests
// without a wake-up transition.
func (d DeviceState) Functional() bool { return d == D0 || d == D0i }

// Powered reports whether the device still receives power in this state.
func (d DeviceState) Powered() bool { return d != D3Cold }

// StateProfile summarises the platform-level consequences of a sleep state.
// It is consumed by the energy model and by the rack manager.
type StateProfile struct {
	State SleepState
	// CPUOn indicates the CPU power domain is energised and executing.
	CPUOn bool
	// MemoryState is the D-state of the DRAM subsystem.
	MemoryState DeviceState
	// RemoteNICState is the D-state of the RDMA-capable NIC and the PCIe
	// path from the NIC to the memory controller.
	RemoteNICState DeviceState
	// WakeNICOn indicates a management/Wake-on-LAN NIC remains powered.
	WakeNICOn bool
	// RemoteMemoryServing indicates one-sided remote memory access works.
	RemoteMemoryServing bool
}

// Profile returns the canonical StateProfile of a sleep state.
func Profile(s SleepState) StateProfile {
	switch s {
	case S0:
		return StateProfile{State: s, CPUOn: true, MemoryState: D0, RemoteNICState: D0, WakeNICOn: true, RemoteMemoryServing: true}
	case S1, S2:
		return StateProfile{State: s, CPUOn: false, MemoryState: D0, RemoteNICState: D2, WakeNICOn: true}
	case S3:
		return StateProfile{State: s, CPUOn: false, MemoryState: D1, RemoteNICState: D3Hot, WakeNICOn: true}
	case Sz:
		return StateProfile{State: s, CPUOn: false, MemoryState: D0i, RemoteNICState: D0i, WakeNICOn: true, RemoteMemoryServing: true}
	case S4:
		return StateProfile{State: s, CPUOn: false, MemoryState: D3Cold, RemoteNICState: D3Hot, WakeNICOn: true}
	case S5:
		return StateProfile{State: s, CPUOn: false, MemoryState: D3Cold, RemoteNICState: D3Cold, WakeNICOn: true}
	default:
		return StateProfile{State: s, MemoryState: D3Cold, RemoteNICState: D3Cold}
	}
}

// TransitionLatency describes how long entering and leaving a state takes, in
// nanoseconds of simulated time. The numbers follow commonly reported
// magnitudes (S3 resume a few seconds, S4/S5 tens of seconds, Sz ~ S3).
type TransitionLatency struct {
	Enter int64 // ns to go from S0 to the state
	Exit  int64 // ns to resume from the state to S0
}

// Latency returns the canonical transition latency of a state.
func Latency(s SleepState) TransitionLatency {
	const (
		ms = int64(1e6)
		s1 = int64(1e9)
	)
	switch s {
	case S0:
		return TransitionLatency{}
	case S1:
		return TransitionLatency{Enter: 50 * ms, Exit: 100 * ms}
	case S2:
		return TransitionLatency{Enter: 100 * ms, Exit: 300 * ms}
	case S3:
		return TransitionLatency{Enter: 3 * s1, Exit: 4 * s1}
	case Sz:
		// Same path as S3; keeping the memory and NIC in active idle avoids
		// the memory-controller retraining on exit, so resume is marginally
		// faster than S3 resume.
		return TransitionLatency{Enter: 3 * s1, Exit: 3 * s1}
	case S4:
		return TransitionLatency{Enter: 15 * s1, Exit: 30 * s1}
	case S5:
		return TransitionLatency{Enter: 10 * s1, Exit: 60 * s1}
	default:
		return TransitionLatency{Enter: 10 * s1, Exit: 60 * s1}
	}
}
