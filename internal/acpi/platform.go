package acpi

import (
	"fmt"
	"sort"
)

// SleepRegisters models the PM1A/PM1B ACPI sleep control registers. Writing a
// SLP_TYP value with SLP_EN set triggers the hardware transition; the platform
// reads the registers to know which state to enter. The paper's Sz prototype
// reuses one of the register encodings the specification leaves unused.
type SleepRegisters struct {
	PM1AControl uint16
	PM1BControl uint16
}

// slpEnable is the SLP_EN bit position in the PM1 control registers.
const slpEnable uint16 = 1 << 13

// slpTypeShift is the bit offset of the SLP_TYP field.
const slpTypeShift = 10

// Write requests a transition to the given state by setting SLP_TYP and
// SLP_EN in both registers, exactly as the modified kernel path does.
func (r *SleepRegisters) Write(s SleepState) {
	v := (s.SleepTypeValue() << slpTypeShift) | slpEnable
	r.PM1AControl = v
	r.PM1BControl = v
}

// Pending decodes the requested sleep state, if SLP_EN is set in both
// registers and the two registers agree. The bool result reports whether a
// transition is pending.
func (r *SleepRegisters) Pending() (SleepState, bool) {
	if r.PM1AControl&slpEnable == 0 || r.PM1BControl&slpEnable == 0 {
		return S0, false
	}
	if r.PM1AControl != r.PM1BControl {
		return S0, false
	}
	typ := (r.PM1AControl >> slpTypeShift) & 0x7
	// Sz uses an out-of-range SLP_TYP (0xA) whose low bits collide with S2;
	// disambiguate by checking the full raw field first.
	rawTyp := (r.PM1AControl >> slpTypeShift) & 0xF
	if rawTyp == Sz.SleepTypeValue() {
		return Sz, true
	}
	for _, s := range AllStates() {
		if s.SleepTypeValue() == typ {
			return s, true
		}
	}
	return S0, false
}

// Clear resets both registers (done by firmware after a wake).
func (r *SleepRegisters) Clear() {
	r.PM1AControl = 0
	r.PM1BControl = 0
}

// TransitionStep is one entry of a suspend/resume execution trace. It mirrors
// the call chain the paper shows in Figure 6 so that tests can assert the Sz
// path only differs from the S3 path in the expected places.
type TransitionStep struct {
	// Func is the name of the kernel/firmware function executed.
	Func string
	// ModifiedForSz marks the steps the paper had to patch (the sysfs keyword,
	// x86_acpi_enter_sleep_state, acpi_os_prepare_sleep).
	ModifiedForSz bool
	// Detail carries a human-readable note (device transitioned, register
	// written, ...).
	Detail string
}

// Firmware models the platform firmware responsibilities around Sz: chipset
// initialisation at boot, per-device S-state sequencing on every enter, and
// chipset re-initialisation plus hand-back to the OS on every exit.
type Firmware struct {
	// Version identifies the firmware build; boots bump BootCount.
	Version string
	// SzCapable reports whether the firmware knows how to sequence Sz.
	SzCapable bool

	BootCount   int
	SzEnters    int
	SzExits     int
	initialized bool
}

// NewFirmware returns firmware that supports the Sz sequencing when szCapable
// is true.
func NewFirmware(version string, szCapable bool) *Firmware {
	return &Firmware{Version: version, SzCapable: szCapable}
}

// Boot initialises the Sz chipset configuration (only meaningful when the
// firmware is Sz capable).
func (f *Firmware) Boot() {
	f.BootCount++
	f.initialized = true
}

// Initialized reports whether Boot has run.
func (f *Firmware) Initialized() bool { return f.initialized }

// sequenceEnter transitions every device to its target D-state for the sleep
// state, honouring the Sz keep-alive set.
func (f *Firmware) sequenceEnter(p *Platform, target SleepState, trace *[]TransitionStep) error {
	if target == Sz {
		if !f.SzCapable {
			return fmt.Errorf("acpi: firmware %q cannot sequence Sz", f.Version)
		}
		if !f.initialized {
			return fmt.Errorf("acpi: firmware %q not booted, Sz chipset configuration missing", f.Version)
		}
		f.SzEnters++
	}
	for _, name := range sortedDeviceNames(p.devices) {
		d := p.devices[name]
		var next DeviceState
		switch {
		case target == Sz && d.KeepAliveInSz:
			next = D0i
		case d.Class == ClassWakeNIC:
			next = D2 // stays reachable for Wake-on-LAN
		case target == S4 || target == S5:
			next = D3Cold
		default:
			next = D3Hot
		}
		d.State = next
		*trace = append(*trace, TransitionStep{
			Func:          "firmware_device_transition",
			ModifiedForSz: target == Sz && d.KeepAliveInSz,
			Detail:        fmt.Sprintf("%s -> %s", d.Name, next),
		})
	}
	return nil
}

// sequenceExit restores every device to D0 and reinitialises the chipset.
func (f *Firmware) sequenceExit(p *Platform, from SleepState, trace *[]TransitionStep) {
	if from == Sz {
		f.SzExits++
	}
	for _, name := range sortedDeviceNames(p.devices) {
		d := p.devices[name]
		d.State = D0
		*trace = append(*trace, TransitionStep{
			Func:   "firmware_device_transition",
			Detail: fmt.Sprintf("%s -> %s", d.Name, D0),
		})
	}
	*trace = append(*trace, TransitionStep{Func: "firmware_chipset_reinit", Detail: "hand control back to OSPM"})
}

// Platform is a power-manageable server board: its devices, power rails,
// sleep registers, firmware and current global state. It is the unit the rack
// manager suspends and wakes.
type Platform struct {
	Spec     BoardSpec
	Firmware *Firmware

	devices map[string]*Device
	rails   map[string]*PowerRail
	regs    SleepRegisters

	state SleepState
	// wakeArmed lists wake sources armed before the last suspend.
	wakeArmed map[WakeSource]bool

	// Bookkeeping.
	transitions   []TransitionRecord
	lastTrace     []TransitionStep
	timeInStateNs map[SleepState]int64
	lastChangeNs  int64
	nowNs         int64
}

// WakeSource identifies an event class that can wake a sleeping platform.
type WakeSource int

// Wake sources relevant to the rack manager.
const (
	WakeLAN WakeSource = iota // Wake-on-LAN packet on the management NIC
	WakeRTC                   // real-time-clock alarm
	WakePowerButton
)

// String names the wake source.
func (w WakeSource) String() string {
	switch w {
	case WakeLAN:
		return "wake-on-lan"
	case WakeRTC:
		return "rtc"
	case WakePowerButton:
		return "power-button"
	default:
		return fmt.Sprintf("WakeSource(%d)", int(w))
	}
}

// TransitionRecord captures one completed state change.
type TransitionRecord struct {
	From      SleepState
	To        SleepState
	AtNs      int64
	LatencyNs int64
}

// NewPlatform builds a platform from a board spec with Sz-capable firmware
// when the board has split power domains.
func NewPlatform(spec BoardSpec) (*Platform, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	devices, rails := buildDevices(spec)
	fw := NewFirmware("zombieland-fw-1.0", spec.SplitPowerDomains)
	fw.Boot()
	p := &Platform{
		Spec:          spec,
		Firmware:      fw,
		devices:       devices,
		rails:         rails,
		state:         S0,
		wakeArmed:     map[WakeSource]bool{WakeLAN: true, WakePowerButton: true},
		timeInStateNs: make(map[SleepState]int64),
	}
	return p, nil
}

// MustNewPlatform is NewPlatform for known-good specs; it panics on error.
func MustNewPlatform(spec BoardSpec) *Platform {
	p, err := NewPlatform(spec)
	if err != nil {
		panic(err)
	}
	return p
}

// State returns the current global sleep state.
func (p *Platform) State() SleepState { return p.state }

// Devices returns the device names in deterministic order.
func (p *Platform) Devices() []string { return sortedDeviceNames(p.devices) }

// Device returns the named device, or nil.
func (p *Platform) Device(name string) *Device { return p.devices[name] }

// Rails returns the power rail names in deterministic order.
func (p *Platform) Rails() []string {
	names := make([]string, 0, len(p.rails))
	for n := range p.rails {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Rail returns the named power rail, or nil.
func (p *Platform) Rail(name string) *PowerRail { return p.rails[name] }

// Registers returns a copy of the PM1 sleep registers.
func (p *Platform) Registers() SleepRegisters { return p.regs }

// LastTrace returns the execution trace of the most recent transition.
func (p *Platform) LastTrace() []TransitionStep {
	return append([]TransitionStep(nil), p.lastTrace...)
}

// Transitions returns all completed transitions.
func (p *Platform) Transitions() []TransitionRecord {
	return append([]TransitionRecord(nil), p.transitions...)
}

// Now returns the platform's simulated clock in nanoseconds.
func (p *Platform) Now() int64 { return p.nowNs }

// AdvanceClock moves the simulated clock forward, attributing the elapsed
// time to the current state for energy accounting.
func (p *Platform) AdvanceClock(deltaNs int64) {
	if deltaNs < 0 {
		return
	}
	p.nowNs += deltaNs
}

// TimeInState returns the accumulated nanoseconds spent in the state,
// including the (open) interval since the last transition if the platform is
// currently in that state.
func (p *Platform) TimeInState(s SleepState) int64 {
	t := p.timeInStateNs[s]
	if p.state == s {
		t += p.nowNs - p.lastChangeNs
	}
	return t
}

// ArmWake arms a wake source for the next suspend.
func (p *Platform) ArmWake(src WakeSource) { p.wakeArmed[src] = true }

// DisarmWake disarms a wake source.
func (p *Platform) DisarmWake(src WakeSource) { delete(p.wakeArmed, src) }

// WakeArmed reports whether the wake source is armed.
func (p *Platform) WakeArmed(src WakeSource) bool { return p.wakeArmed[src] }

// MemoryRemotelyAccessible reports whether one-sided remote memory access is
// possible right now: the state must allow it and every keep-alive device
// (DRAM, memory controller, RDMA NIC, its PCIe root) must be functional.
func (p *Platform) MemoryRemotelyAccessible() bool {
	if !p.state.MemoryRemotelyAccessible() {
		return false
	}
	for _, name := range sortedDeviceNames(p.devices) {
		d := p.devices[name]
		if d.KeepAliveInSz && !d.Functional(p.rails) {
			return false
		}
	}
	return true
}

// CanEnter reports whether the platform supports entering the state, without
// performing the transition. Sz requires split power domains, an RDMA NIC and
// Sz-capable firmware.
func (p *Platform) CanEnter(s SleepState) error {
	if s == p.state {
		return fmt.Errorf("acpi: already in %s", s)
	}
	if p.state != S0 && s != S0 {
		return fmt.Errorf("acpi: must resume to S0 before entering %s (currently %s)", s, p.state)
	}
	if s == Sz {
		if !p.Spec.SplitPowerDomains {
			return fmt.Errorf("acpi: board %q has no split CPU/memory power domains, Sz unavailable", p.Spec.Name)
		}
		if !p.Spec.HasRemoteNIC {
			return fmt.Errorf("acpi: board %q has no RDMA NIC, Sz is pointless", p.Spec.Name)
		}
		if !p.Firmware.SzCapable {
			return fmt.Errorf("acpi: firmware %q is not Sz capable", p.Firmware.Version)
		}
	}
	return nil
}

// Suspend transitions the platform from S0 into the requested sleep state,
// following the OSPM execution path of the paper's Figure 6. It returns the
// transition trace. The simulated clock is advanced by the enter latency.
func (p *Platform) Suspend(target SleepState) ([]TransitionStep, error) {
	if target == S0 {
		return nil, fmt.Errorf("acpi: use Wake to return to S0")
	}
	if err := p.CanEnter(target); err != nil {
		return nil, err
	}
	kw := target.SysfsKeyword()
	if kw == "" {
		return nil, fmt.Errorf("acpi: state %s cannot be requested through /sys/power/state", target)
	}

	var trace []TransitionStep
	step := func(fn string, modified bool, detail string) {
		trace = append(trace, TransitionStep{Func: fn, ModifiedForSz: modified, Detail: detail})
	}

	// The OSPM path of Figure 6. Steps marked modified are the ones the paper
	// patches to introduce the zombie keyword and register value.
	step("sysfs_write_power_state", target == Sz, fmt.Sprintf("echo %s > /sys/power/state", kw))
	step("pm_suspend", target == Sz, "enter OSPM suspend")
	step("enter_state", false, target.String())
	step("suspend_prepare", false, "freeze user space, allocate suspend console")
	step("suspend_devices_and_enter", false, "suspend device tree")

	if err := p.Firmware.sequenceEnter(p, target, &trace); err != nil {
		return nil, err
	}

	step("suspend_enter", false, "")
	step("acpi_suspend_enter", false, "")
	step("x86_acpi_suspend_lowlevel", false, "save processor context")
	step("do_suspend_lowlevel", false, "")
	step("x86_acpi_enter_sleep_state", target == Sz, "select SLP_TYP")
	step("acpi_hw_legacy_sleep", target == Sz, "write PM1A/PM1B control registers")
	p.regs.Write(target)
	step("acpi_os_prepare_sleep", target == Sz, "")
	step("tboot_sleep", target == Sz, "platform reads PM1 registers and cuts power rails")

	pending, ok := p.regs.Pending()
	if !ok || pending != target {
		return nil, fmt.Errorf("acpi: PM1 registers decode to %v (ok=%v), want %s", pending, ok, target)
	}

	// Cut the power rails according to the target state.
	p.applyRails(target)

	lat := Latency(target)
	p.recordTransition(p.state, target, lat.Enter)
	p.lastTrace = trace
	return trace, nil
}

// Wake resumes the platform to S0 using the given wake source. It fails when
// the source is not armed or cannot reach the platform in its current state.
func (p *Platform) Wake(src WakeSource) ([]TransitionStep, error) {
	if p.state == S0 {
		return nil, fmt.Errorf("acpi: already awake")
	}
	if !p.wakeArmed[src] {
		return nil, fmt.Errorf("acpi: wake source %s is not armed", src)
	}
	if src == WakeLAN && p.state == S5 {
		// A soft-off platform only honours WoL if the standby rail feeds the
		// NIC, which our board layout provides, so allow it; G3 would not.
		_ = src
	}
	from := p.state

	var trace []TransitionStep
	trace = append(trace, TransitionStep{Func: "wake_event", Detail: src.String()})
	// Re-energise all rails, then let firmware restore devices and hand
	// control back to the OS.
	for _, name := range p.Rails() {
		p.rails[name].Energised = true
		trace = append(trace, TransitionStep{Func: "power_rail_on", Detail: name})
	}
	p.Firmware.sequenceExit(p, from, &trace)
	trace = append(trace, TransitionStep{Func: "ospm_resume", Detail: "thaw user space"})
	p.regs.Clear()

	lat := Latency(from)
	p.recordTransition(from, S0, lat.Exit)
	p.lastTrace = trace
	return trace, nil
}

// applyRails energises or cuts power rails according to the target state.
func (p *Platform) applyRails(target SleepState) {
	prof := Profile(target)
	for _, name := range p.Rails() {
		r := p.rails[name]
		switch name {
		case "rail-standby":
			r.Energised = true // always on while AC is present
		case "rail-cpu":
			r.Energised = prof.CPUOn
		case "rail-mem":
			r.Energised = prof.MemoryState.Powered()
		case "rail-ibpath":
			r.Energised = prof.RemoteNICState.Powered()
		case "rail-main":
			// The main rail carries chipset, storage, fans: only on in S0.
			r.Energised = target == S0
			if !p.Spec.SplitPowerDomains {
				// Without split domains memory and NIC share rail-main, so it
				// must stay up whenever memory must be preserved (S3).
				r.Energised = r.Energised || prof.MemoryState.Powered()
			}
		}
	}
}

// recordTransition updates the state, time accounting and history.
func (p *Platform) recordTransition(from, to SleepState, latencyNs int64) {
	p.timeInStateNs[from] += p.nowNs - p.lastChangeNs
	p.nowNs += latencyNs
	p.lastChangeNs = p.nowNs
	p.state = to
	p.transitions = append(p.transitions, TransitionRecord{From: from, To: to, AtNs: p.nowNs, LatencyNs: latencyNs})
}
