package acpi

import "testing"

func TestTransitionNs(t *testing.T) {
	if got := TransitionNs(S0, S0); got != 0 {
		t.Errorf("S0->S0 = %d, want 0", got)
	}
	if got, want := TransitionNs(S0, S3), Latency(S3).Enter; got != want {
		t.Errorf("S0->S3 = %d, want enter latency %d", got, want)
	}
	if got, want := TransitionNs(Sz, S0), Latency(Sz).Exit; got != want {
		t.Errorf("Sz->S0 = %d, want exit latency %d", got, want)
	}
	// No lateral path between sleep states: wake plus re-suspend.
	if got, want := TransitionNs(S3, Sz), Latency(S3).Exit+Latency(Sz).Enter; got != want {
		t.Errorf("S3->Sz = %d, want %d", got, want)
	}
	// Every transition between distinct states costs simulated time.
	for _, from := range AllStates() {
		for _, to := range AllStates() {
			if from == to {
				continue
			}
			if TransitionNs(from, to) <= 0 {
				t.Errorf("%s->%s: non-positive latency %d", from, to, TransitionNs(from, to))
			}
		}
	}
}
