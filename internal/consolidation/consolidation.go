package consolidation

import (
	"fmt"
	"math"

	"repro/internal/acpi"
	"repro/internal/ident"
)

// VMDemand is the consolidation-level view of one VM (one trace task).
type VMDemand struct {
	ID           string
	BookedCPU    float64 // cores
	BookedMemGiB float64
	UsedCPU      float64
	UsedMemGiB   float64
}

// Idle reports whether the VM is idle by the paper's criterion (CPU
// utilization below 1% of a core).
func (v VMDemand) Idle() bool { return v.UsedCPU < 0.01 }

// WSSGiB estimates the VM's working set (the memory it actively uses).
func (v VMDemand) WSSGiB() float64 { return v.UsedMemGiB }

// ServerSpec describes one server model of the fleet.
type ServerSpec struct {
	Cores  float64
	MemGiB float64
}

// DefaultServerSpec matches the paper's testbed machines (8 cores, 16 GiB).
func DefaultServerSpec() ServerSpec { return ServerSpec{Cores: 8, MemGiB: 16} }

// FleetPlan is the outcome of one consolidation epoch at fleet level: how
// many servers are in each power state and how busy the active ones are.
type FleetPlan struct {
	// Policy names the algorithm that produced the plan.
	Policy string
	// ActiveHosts are servers in S0 running VMs.
	ActiveHosts int
	// ZombieHosts are servers in Sz lending their memory (ZombieStack only).
	ZombieHosts int
	// MemoryServers are Oasis low-power memory servers (Oasis only).
	MemoryServers int
	// SleepHosts are servers suspended to S3.
	SleepHosts int
	// ActiveCPUUtilization is the mean CPU utilization of the active hosts.
	ActiveCPUUtilization float64
	// RemoteMemoryGiB is the memory served remotely (zombie or memory server).
	RemoteMemoryGiB float64
}

// TotalHosts returns the fleet size covered by the plan.
func (p FleetPlan) TotalHosts() int {
	return p.ActiveHosts + p.ZombieHosts + p.MemoryServers + p.SleepHosts
}

// Policy plans one consolidation epoch at fleet level.
type Policy interface {
	// Name identifies the policy in result tables.
	Name() string
	// Plan distributes the currently running VMs over totalServers servers of
	// the given spec and decides every server's power state.
	Plan(vms []VMDemand, spec ServerSpec, totalServers int) FleetPlan
}

// sumDemand returns the aggregate CPU (cores) and memory (GiB) demand, booked
// and used.
func sumDemand(vms []VMDemand) (bookedCPU, bookedMem, usedCPU, usedMem float64) {
	for _, v := range vms {
		bookedCPU += v.BookedCPU
		bookedMem += v.BookedMemGiB
		usedCPU += v.UsedCPU
		usedMem += v.UsedMemGiB
	}
	return
}

// clampHosts bounds n to [0, total].
func clampHosts(n, total int) int {
	if n < 0 {
		return 0
	}
	if n > total {
		return total
	}
	return n
}

// NoConsolidation is the reference policy: every server stays in S0
// regardless of load. Figure 10's "% energy saving" is computed against it.
type NoConsolidation struct{}

// Name implements Policy.
func (NoConsolidation) Name() string { return "none" }

// Plan implements Policy.
func (NoConsolidation) Plan(vms []VMDemand, spec ServerSpec, totalServers int) FleetPlan {
	_, _, usedCPU, _ := sumDemand(vms)
	util := 0.0
	if totalServers > 0 && spec.Cores > 0 {
		util = usedCPU / (float64(totalServers) * spec.Cores)
	}
	if util > 1 {
		util = 1
	}
	return FleetPlan{Policy: "none", ActiveHosts: totalServers, ActiveCPUUtilization: util}
}

// Neat packs VMs by their booked resources: a server must hold everything a
// VM booked, so the number of active servers is driven by whichever resource
// dimension saturates first (memory, for memory-heavy fleets). Freed servers
// suspend to S3.
type Neat struct {
	// TargetUtilization caps how full Neat packs the active servers (QoS
	// headroom); 0.9 by default.
	TargetUtilization float64
}

// NewNeat returns Neat with its default packing target.
func NewNeat() *Neat { return &Neat{TargetUtilization: 0.9} }

// Name implements Policy.
func (n *Neat) Name() string { return "neat" }

// Plan implements Policy.
func (n *Neat) Plan(vms []VMDemand, spec ServerSpec, totalServers int) FleetPlan {
	target := n.TargetUtilization
	if target <= 0 || target > 1 {
		target = 0.9
	}
	bookedCPU, bookedMem, usedCPU, _ := sumDemand(vms)
	cpuHosts := int(math.Ceil(bookedCPU / (spec.Cores * target)))
	memHosts := int(math.Ceil(bookedMem / (spec.MemGiB * target)))
	active := cpuHosts
	if memHosts > active {
		active = memHosts // memory is the binding dimension in the paper's fleets
	}
	if len(vms) > 0 && active < 1 {
		active = 1
	}
	active = clampHosts(active, totalServers)
	util := 0.0
	if active > 0 {
		util = usedCPU / (float64(active) * spec.Cores)
		if util > 1 {
			util = 1
		}
	}
	return FleetPlan{
		Policy:               n.Name(),
		ActiveHosts:          active,
		SleepHosts:           totalServers - active,
		ActiveCPUUtilization: util,
	}
}

// Oasis extends Neat: idle VMs are partially migrated, their non-working-set
// memory relocated to dedicated low-power memory servers so that the servers
// hosting only idle VMs can be suspended.
type Oasis struct {
	// TargetUtilization is the packing target for the active servers.
	TargetUtilization float64
	// MemoryServerPowerFraction is the power of one memory server relative to
	// a regular server (the paper assumes about 40%); kept here so the energy
	// model and the planner agree.
	MemoryServerPowerFraction float64
}

// NewOasis returns Oasis with the paper's assumptions.
func NewOasis() *Oasis {
	return &Oasis{TargetUtilization: 0.9, MemoryServerPowerFraction: 0.4}
}

// Name implements Policy.
func (o *Oasis) Name() string { return "oasis" }

// Plan implements Policy.
func (o *Oasis) Plan(vms []VMDemand, spec ServerSpec, totalServers int) FleetPlan {
	target := o.TargetUtilization
	if target <= 0 || target > 1 {
		target = 0.9
	}
	// Split the fleet into busy and idle demand in one pass. The sums
	// accumulate in the same subsequence order the old busy/idle slices
	// preserved, so the floats are bit-identical — without materialising
	// either slice (Plan runs once per epoch in the simulator's hot loop).
	var busyCPU, busyMem, usedCPU float64
	var idleWSS, idleCold float64
	var nBusy int
	for _, v := range vms {
		if v.Idle() {
			// Idle VMs keep only their working set on the active servers; the
			// rest of their memory moves to memory servers.
			idleWSS += v.WSSGiB()
			idleCold += v.BookedMemGiB - v.WSSGiB()
		} else {
			busyCPU += v.BookedCPU
			busyMem += v.BookedMemGiB
			usedCPU += v.UsedCPU
			nBusy++
		}
	}
	// Busy VMs are packed like Neat (full reservations local).
	cpuHosts := int(math.Ceil(busyCPU / (spec.Cores * target)))
	memHosts := int(math.Ceil(busyMem / (spec.MemGiB * target)))
	active := cpuHosts
	if memHosts > active {
		active = memHosts
	}
	if nBusy > 0 && active < 1 {
		active = 1
	}
	// The working sets must still fit on active servers' memory.
	extraForWSS := int(math.Ceil((busyMem + idleWSS) / (spec.MemGiB * target)))
	if extraForWSS > active {
		active = extraForWSS
	}
	memServers := 0
	if idleCold > 0 {
		memServers = int(math.Ceil(idleCold / spec.MemGiB))
	}
	active = clampHosts(active, totalServers)
	memServers = clampHosts(memServers, totalServers-active)
	util := 0.0
	if active > 0 {
		util = usedCPU / (float64(active) * spec.Cores)
		if util > 1 {
			util = 1
		}
	}
	return FleetPlan{
		Policy:               o.Name(),
		ActiveHosts:          active,
		MemoryServers:        memServers,
		SleepHosts:           totalServers - active - memServers,
		ActiveCPUUtilization: util,
		RemoteMemoryGiB:      idleCold,
	}
}

// ZombieStack packs VMs by CPU demand, keeping only LocalMemoryFraction of
// each VM's memory on the active servers; the overflow memory is served by
// zombie servers in Sz. Servers that are neither active nor needed as
// zombies suspend to S3.
type ZombieStack struct {
	// TargetUtilization is the packing target for active servers.
	TargetUtilization float64
	// LocalMemoryFraction is the share of each VM's reserved memory that must
	// be local (the 50% placement rule; consolidation tolerates down to the
	// 30% WSS rule before waking a zombie).
	LocalMemoryFraction float64
	// WakeThresholdWSS is the fraction of a VM's WSS that must be available
	// before re-using an active server instead of waking a zombie (Section
	// 5.2 uses 30%).
	WakeThresholdWSS float64
}

// NewZombieStack returns the policy with the paper's parameters.
func NewZombieStack() *ZombieStack {
	return &ZombieStack{TargetUtilization: 0.9, LocalMemoryFraction: 0.5, WakeThresholdWSS: 0.3}
}

// Name implements Policy.
func (z *ZombieStack) Name() string { return "zombiestack" }

// Plan implements Policy.
func (z *ZombieStack) Plan(vms []VMDemand, spec ServerSpec, totalServers int) FleetPlan {
	target := z.TargetUtilization
	if target <= 0 || target > 1 {
		target = 0.9
	}
	localFrac := z.LocalMemoryFraction
	if localFrac <= 0 || localFrac > 1 {
		localFrac = 0.5
	}
	bookedCPU, bookedMem, usedCPU, _ := sumDemand(vms)
	// Active servers are sized by CPU demand and by the LOCAL part of the
	// memory demand only.
	cpuHosts := int(math.Ceil(bookedCPU / (spec.Cores * target)))
	localMemHosts := int(math.Ceil(bookedMem * localFrac / (spec.MemGiB * target)))
	active := cpuHosts
	if localMemHosts > active {
		active = localMemHosts
	}
	if len(vms) > 0 && active < 1 {
		active = 1
	}
	active = clampHosts(active, totalServers)

	// The remaining memory demand is served remotely: first from the active
	// servers' own leftover memory, then from zombie servers.
	remoteNeed := bookedMem - float64(active)*spec.MemGiB*target
	if remoteNeed < 0 {
		remoteNeed = 0
	}
	zombies := 0
	if remoteNeed > 0 {
		zombies = int(math.Ceil(remoteNeed / spec.MemGiB))
	}
	zombies = clampHosts(zombies, totalServers-active)
	util := 0.0
	if active > 0 {
		util = usedCPU / (float64(active) * spec.Cores)
		if util > 1 {
			util = 1
		}
	}
	return FleetPlan{
		Policy:               z.Name(),
		ActiveHosts:          active,
		ZombieHosts:          zombies,
		SleepHosts:           totalServers - active - zombies,
		ActiveCPUUtilization: util,
		RemoteMemoryGiB:      remoteNeed,
	}
}

// SleepStateFor returns the ACPI state a policy uses for its non-active,
// non-zombie servers (all three suspend to S3) and for its special servers.
func SleepStateFor(policy string) acpi.SleepState {
	switch policy {
	case "zombiestack":
		return acpi.Sz
	default:
		return acpi.S3
	}
}

// AllPolicies returns the Figure 10 contenders plus the no-consolidation
// reference, in presentation order.
func AllPolicies() []Policy {
	return []Policy{NoConsolidation{}, NewNeat(), NewOasis(), NewZombieStack()}
}

// Contenders returns the three policies Figure 10 compares (Neat, Oasis,
// ZombieStack), without the no-consolidation baseline.
func Contenders() []Policy {
	return []Policy{NewNeat(), NewOasis(), NewZombieStack()}
}

// PolicyByName returns the named policy.
func PolicyByName(name string) (Policy, error) {
	for _, p := range AllPolicies() {
		if p.Name() == name {
			return p, nil
		}
	}
	return nil, fmt.Errorf("consolidation: unknown policy %q", name)
}

// --- Step-wise Neat loop (rack level) ---------------------------------------

// HostLoad is the step-wise planner's view of one host.
type HostLoad struct {
	ID string
	// CPUUtilization is used/total CPU (0..1).
	CPUUtilization float64
	// VMs currently placed on the host.
	VMs []VMDemand
	// FreeMemGiB is the host's free local memory.
	FreeMemGiB float64
	// Suspended reports whether the host is currently asleep.
	Suspended bool
}

// StepPlan is the outcome of one pass of the Neat consolidation loop. Hosts
// and VMs are referenced by dense ident IDs interned into Names — one shared
// namespace, so host and VM identifiers must not collide — and rendered back
// to strings only at the API edge (DestinationOf, HostNames).
type StepPlan struct {
	// Names interns every host and VM identifier the plan references.
	Names *ident.Registry
	// UnderloadedHosts should be emptied and suspended.
	UnderloadedHosts []ident.ID
	// OverloadedHosts need some VMs migrated away.
	OverloadedHosts []ident.ID
	// Migrations lists VM moves in placement order.
	Migrations []Migration
	// Suspend lists hosts to suspend after their VMs leave.
	Suspend []ident.ID
	// Wake lists suspended hosts that must be woken to receive VMs.
	Wake []ident.ID
	// migrated marks the VM IDs with a planned destination (membership
	// queries without scanning Migrations).
	migrated ident.Set
}

// Migration is one planned VM move.
type Migration struct {
	VM   ident.ID
	Dest ident.ID
}

// HostNames renders a plan ID list back to names (the API/rendering edge).
func (p *StepPlan) HostNames(ids []ident.ID) []string {
	if len(ids) == 0 {
		return nil
	}
	out := make([]string, len(ids))
	for i, id := range ids {
		out[i] = p.Names.Name(id)
	}
	return out
}

// DestinationOf returns the destination host planned for a VM, by name.
func (p *StepPlan) DestinationOf(vmID string) (string, bool) {
	id, ok := p.Names.Lookup(vmID)
	if !ok || !p.migrated.Has(id) {
		return "", false
	}
	for _, m := range p.Migrations {
		if m.VM == id {
			return p.Names.Name(m.Dest), true
		}
	}
	return "", false
}

// StepConfig parameterises the step-wise loop.
type StepConfig struct {
	// UnderloadThreshold marks a host underloaded (default 0.2, the paper's
	// Oasis experiment uses 20%).
	UnderloadThreshold float64
	// OverloadThreshold marks a host overloaded (default 0.9).
	OverloadThreshold float64
	// ZombieAware relaxes the placement constraint to the 30%-of-WSS rule and
	// suspends to Sz instead of S3.
	ZombieAware bool
	// WSSFraction is the fraction of a VM's WSS that must fit on the target
	// (0.3 in Section 5.2) when ZombieAware.
	WSSFraction float64
}

// DefaultStepConfig returns the thresholds used in the paper.
func DefaultStepConfig(zombieAware bool) StepConfig {
	return StepConfig{UnderloadThreshold: 0.2, OverloadThreshold: 0.9, ZombieAware: zombieAware, WSSFraction: 0.3}
}

// PlanSteps runs the four Neat steps over the current host loads: determine
// underloaded hosts, determine overloaded hosts, select VMs to migrate, and
// place them (waking suspended hosts when nothing else fits).
func PlanSteps(hosts []HostLoad, cfg StepConfig) StepPlan {
	if cfg.UnderloadThreshold <= 0 {
		cfg.UnderloadThreshold = 0.2
	}
	if cfg.OverloadThreshold <= 0 || cfg.OverloadThreshold > 1 {
		cfg.OverloadThreshold = 0.9
	}
	if cfg.WSSFraction <= 0 {
		cfg.WSSFraction = 0.3
	}
	plan := StepPlan{Names: ident.NewRegistry()}

	// Hosts are interned first, in input order, so host ident IDs double as
	// dense host indices for the bitsets below.
	hostID := make([]ident.ID, len(hosts))
	for i, h := range hosts {
		hostID[i] = plan.Names.Intern(h.ID)
	}

	// Steps 1 and 2: classify hosts.
	var under, over, normal []int
	for i, h := range hosts {
		if h.Suspended {
			continue
		}
		switch {
		case h.CPUUtilization < cfg.UnderloadThreshold:
			under = append(under, i)
			plan.UnderloadedHosts = append(plan.UnderloadedHosts, hostID[i])
		case h.CPUUtilization > cfg.OverloadThreshold:
			over = append(over, i)
			plan.OverloadedHosts = append(plan.OverloadedHosts, hostID[i])
		default:
			normal = append(normal, i)
		}
	}

	// Step 3: select VMs to migrate — all VMs of underloaded hosts, and the
	// largest CPU consumer of each overloaded host (first wins on a tie).
	type pending struct {
		vm   VMDemand
		from int
	}
	var toMigrate []pending
	for _, i := range under {
		for _, v := range hosts[i].VMs {
			toMigrate = append(toMigrate, pending{v, i})
		}
	}
	for _, i := range over {
		best := -1
		for vi, v := range hosts[i].VMs {
			if best < 0 || v.UsedCPU > hosts[i].VMs[best].UsedCPU {
				best = vi
			}
		}
		if best >= 0 {
			toMigrate = append(toMigrate, pending{hosts[i].VMs[best], i})
		}
	}

	// Step 4: place the selected VMs on normal hosts; wake suspended hosts if
	// nothing fits. Targets are scanned in ascending host index order; free
	// headroom is a dense slice and the target/wake sets are bitsets, so the
	// per-VM scan neither hashes a string nor allocates.
	free := make([]float64, len(hosts))
	var isTarget ident.Set
	for _, i := range normal {
		free[i] = hosts[i].FreeMemGiB
		isTarget.Add(ident.ID(i))
	}
	var woken ident.Set
	for _, p := range toMigrate {
		need := p.vm.BookedMemGiB
		if cfg.ZombieAware {
			need = p.vm.WSSGiB() * cfg.WSSFraction
		}
		placed := false
		for i := range hosts {
			if i == p.from || !isTarget.Has(ident.ID(i)) {
				continue
			}
			if free[i] >= need {
				free[i] -= need
				vmID := plan.Names.Intern(p.vm.ID)
				plan.Migrations = append(plan.Migrations, Migration{VM: vmID, Dest: hostID[i]})
				plan.migrated.Add(vmID)
				placed = true
				break
			}
		}
		if !placed {
			// Wake a suspended host (the zombie with the fewest allocated
			// buffers in the real system; here the first suspended host).
			for i, h := range hosts {
				if h.Suspended && !woken.Has(ident.ID(i)) {
					woken.Add(ident.ID(i))
					plan.Wake = append(plan.Wake, hostID[i])
					vmID := plan.Names.Intern(p.vm.ID)
					plan.Migrations = append(plan.Migrations, Migration{VM: vmID, Dest: hostID[i]})
					plan.migrated.Add(vmID)
					free[i] = hosts[i].FreeMemGiB - need
					isTarget.Add(ident.ID(i))
					placed = true
					break
				}
			}
		}
		if !placed {
			// The VM stays where it is; its source host cannot be suspended.
			for j, id := range plan.UnderloadedHosts {
				if id == hostID[p.from] {
					plan.UnderloadedHosts = append(plan.UnderloadedHosts[:j], plan.UnderloadedHosts[j+1:]...)
					break
				}
			}
		}
	}

	// Underloaded hosts whose every VM found a destination are suspended.
	for _, i := range under {
		allMoved := true
		for _, v := range hosts[i].VMs {
			id, ok := plan.Names.Lookup(v.ID)
			if !ok || !plan.migrated.Has(id) {
				allMoved = false
				break
			}
		}
		stillListed := false
		for _, id := range plan.UnderloadedHosts {
			if id == hostID[i] {
				stillListed = true
				break
			}
		}
		if allMoved && stillListed {
			plan.Suspend = append(plan.Suspend, hostID[i])
		}
	}
	return plan
}
