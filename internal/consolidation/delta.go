package consolidation

import "math"

// Plan deltas: the fleet-level planners return one aggregate FleetPlan per
// consolidation epoch, so the state changes between two consecutive epochs
// are fully determined by the pair of plans. Delta translates that pair into
// the transition events the datacenter simulator charges: how many servers
// suspend, wake or change role, and how many VM migrations are needed to
// drain the servers being released.

// PlanDelta counts the fleet transitions implied by moving from one epoch's
// plan to the next. Every count is a number of whole servers or VMs.
type PlanDelta struct {
	// SleepEnters / SleepExits are S0 -> S3 suspends and S3 -> S0 wakes.
	SleepEnters, SleepExits int
	// ZombieEnters / ZombieExits are S0 -> Sz pushes and Sz -> S0 wakes.
	ZombieEnters, ZombieExits int
	// MemoryServerStarts / MemoryServerStops count Oasis memory servers being
	// brought up (an S3 wake into the stripped-down serving mode) or released
	// (a suspend back to S3).
	MemoryServerStarts, MemoryServerStops int
	// FreedHosts is the number of previously active hosts released by the new
	// plan; each must be drained of its VMs before it can leave S0.
	FreedHosts int
	// Migrations is the number of VM moves needed to drain the freed hosts,
	// assuming VMs spread evenly over the previously active hosts.
	Migrations int
}

// Transitions returns the total number of ACPI state changes in the delta.
func (d PlanDelta) Transitions() int {
	return d.SleepEnters + d.SleepExits + d.ZombieEnters + d.ZombieExits +
		d.MemoryServerStarts + d.MemoryServerStops
}

// Delta derives the transition events between two consecutive epoch plans.
// vmCount is the VM population of the new epoch, used to size the migration
// drain of the freed hosts.
//
// Each sleeping category (S3, Sz, memory server) is compared independently: a
// growing category pays one enter per added server, a shrinking one pays one
// exit per removed server. Because the fleet size is constant, the active
// delta is the mirror of the sleeping deltas, so every server movement
// through S0 is counted exactly once — and a server that changes sleeping
// category (say S3 to Sz) is correctly charged one wake plus one re-suspend,
// which is the only physical path between sleep states.
func Delta(prev, next FleetPlan, vmCount int) PlanDelta {
	var d PlanDelta
	d.SleepEnters, d.SleepExits = split(next.SleepHosts - prev.SleepHosts)
	d.ZombieEnters, d.ZombieExits = split(next.ZombieHosts - prev.ZombieHosts)
	d.MemoryServerStarts, d.MemoryServerStops = split(next.MemoryServers - prev.MemoryServers)
	if freed := prev.ActiveHosts - next.ActiveHosts; freed > 0 {
		d.FreedHosts = freed
		if prev.ActiveHosts > 0 && vmCount > 0 {
			d.Migrations = int(math.Ceil(float64(vmCount) * float64(freed) / float64(prev.ActiveHosts)))
		}
	}
	return d
}

// Replan is the incremental re-plan entry point for online controllers: it
// evaluates the policy on the currently observed population and derives, in
// the same call, the transition delta that moves the fleet from its previous
// posture to the new plan — what a cost-aware tick needs to weigh adopting
// the fresh plan against the churn it implies. Offline replay calls Plan and
// Delta separately because it walks whole epochs with the epoch's posture
// pair in hand; Replan answers against whatever posture the fleet actually
// holds.
func Replan(p Policy, prev FleetPlan, vms []VMDemand, spec ServerSpec, totalServers int) (FleetPlan, PlanDelta) {
	next := p.Plan(vms, spec, totalServers)
	return next, Delta(prev, next, len(vms))
}

// split decomposes a signed count into (increase, decrease).
func split(delta int) (up, down int) {
	if delta > 0 {
		return delta, 0
	}
	return 0, -delta
}

// InitialPlan is the fleet state before the first consolidation epoch: every
// server awake in S0 and no load placed, the same no-consolidation posture
// the Figure 10 baseline integrates. The first epoch's transition bill is the
// cost of consolidating the fleet out of this state.
func InitialPlan(totalServers int) FleetPlan {
	return FleetPlan{Policy: "initial", ActiveHosts: totalServers}
}
