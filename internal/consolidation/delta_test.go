package consolidation

import "testing"

func TestInitialPlan(t *testing.T) {
	p := InitialPlan(50)
	if p.ActiveHosts != 50 || p.TotalHosts() != 50 {
		t.Fatalf("initial plan = %+v, want every server active", p)
	}
}

func TestDeltaConsolidation(t *testing.T) {
	// The fleet consolidates from all-awake: 100 active -> 20 active, 30
	// zombies, 50 asleep, with 40 VMs spread over the 100 hosts.
	prev := InitialPlan(100)
	next := FleetPlan{ActiveHosts: 20, ZombieHosts: 30, SleepHosts: 50}
	d := Delta(prev, next, 40)
	if d.SleepEnters != 50 || d.SleepExits != 0 {
		t.Errorf("sleep enters/exits = %d/%d, want 50/0", d.SleepEnters, d.SleepExits)
	}
	if d.ZombieEnters != 30 || d.ZombieExits != 0 {
		t.Errorf("zombie enters/exits = %d/%d, want 30/0", d.ZombieEnters, d.ZombieExits)
	}
	if d.FreedHosts != 80 {
		t.Errorf("freed hosts = %d, want 80", d.FreedHosts)
	}
	// 40 VMs over 100 hosts, 80 freed: ceil(40*80/100) = 32 migrations.
	if d.Migrations != 32 {
		t.Errorf("migrations = %d, want 32", d.Migrations)
	}
	if d.Transitions() != 80 {
		t.Errorf("transitions = %d, want 80", d.Transitions())
	}
}

func TestDeltaWake(t *testing.T) {
	// Load grows: two zombies and a sleeper wake, no hosts are freed.
	prev := FleetPlan{ActiveHosts: 10, ZombieHosts: 5, SleepHosts: 85}
	next := FleetPlan{ActiveHosts: 13, ZombieHosts: 3, SleepHosts: 84}
	d := Delta(prev, next, 60)
	if d.ZombieExits != 2 || d.ZombieEnters != 0 {
		t.Errorf("zombie exits = %d, want 2", d.ZombieExits)
	}
	if d.SleepExits != 1 || d.SleepEnters != 0 {
		t.Errorf("sleep exits = %d, want 1", d.SleepExits)
	}
	if d.FreedHosts != 0 || d.Migrations != 0 {
		t.Errorf("no hosts freed, got freed=%d migrations=%d", d.FreedHosts, d.Migrations)
	}
}

func TestDeltaMemoryServers(t *testing.T) {
	prev := FleetPlan{ActiveHosts: 20, MemoryServers: 2, SleepHosts: 78}
	next := FleetPlan{ActiveHosts: 20, MemoryServers: 5, SleepHosts: 75}
	d := Delta(prev, next, 10)
	if d.MemoryServerStarts != 3 || d.MemoryServerStops != 0 {
		t.Errorf("memory server starts/stops = %d/%d, want 3/0", d.MemoryServerStarts, d.MemoryServerStops)
	}
	if back := Delta(next, prev, 10); back.MemoryServerStops != 3 || back.MemoryServerStarts != 0 {
		t.Errorf("reverse delta = %+v, want 3 stops", back)
	}
}

func TestDeltaIdentical(t *testing.T) {
	plan := FleetPlan{ActiveHosts: 30, ZombieHosts: 10, SleepHosts: 60}
	if d := Delta(plan, plan, 100); d != (PlanDelta{}) {
		t.Errorf("identical plans should produce an empty delta, got %+v", d)
	}
}
