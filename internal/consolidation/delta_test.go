package consolidation

import "testing"

func TestInitialPlan(t *testing.T) {
	p := InitialPlan(50)
	if p.ActiveHosts != 50 || p.TotalHosts() != 50 {
		t.Fatalf("initial plan = %+v, want every server active", p)
	}
}

func TestDeltaConsolidation(t *testing.T) {
	// The fleet consolidates from all-awake: 100 active -> 20 active, 30
	// zombies, 50 asleep, with 40 VMs spread over the 100 hosts.
	prev := InitialPlan(100)
	next := FleetPlan{ActiveHosts: 20, ZombieHosts: 30, SleepHosts: 50}
	d := Delta(prev, next, 40)
	if d.SleepEnters != 50 || d.SleepExits != 0 {
		t.Errorf("sleep enters/exits = %d/%d, want 50/0", d.SleepEnters, d.SleepExits)
	}
	if d.ZombieEnters != 30 || d.ZombieExits != 0 {
		t.Errorf("zombie enters/exits = %d/%d, want 30/0", d.ZombieEnters, d.ZombieExits)
	}
	if d.FreedHosts != 80 {
		t.Errorf("freed hosts = %d, want 80", d.FreedHosts)
	}
	// 40 VMs over 100 hosts, 80 freed: ceil(40*80/100) = 32 migrations.
	if d.Migrations != 32 {
		t.Errorf("migrations = %d, want 32", d.Migrations)
	}
	if d.Transitions() != 80 {
		t.Errorf("transitions = %d, want 80", d.Transitions())
	}
}

func TestDeltaWake(t *testing.T) {
	// Load grows: two zombies and a sleeper wake, no hosts are freed.
	prev := FleetPlan{ActiveHosts: 10, ZombieHosts: 5, SleepHosts: 85}
	next := FleetPlan{ActiveHosts: 13, ZombieHosts: 3, SleepHosts: 84}
	d := Delta(prev, next, 60)
	if d.ZombieExits != 2 || d.ZombieEnters != 0 {
		t.Errorf("zombie exits = %d, want 2", d.ZombieExits)
	}
	if d.SleepExits != 1 || d.SleepEnters != 0 {
		t.Errorf("sleep exits = %d, want 1", d.SleepExits)
	}
	if d.FreedHosts != 0 || d.Migrations != 0 {
		t.Errorf("no hosts freed, got freed=%d migrations=%d", d.FreedHosts, d.Migrations)
	}
}

func TestDeltaMemoryServers(t *testing.T) {
	prev := FleetPlan{ActiveHosts: 20, MemoryServers: 2, SleepHosts: 78}
	next := FleetPlan{ActiveHosts: 20, MemoryServers: 5, SleepHosts: 75}
	d := Delta(prev, next, 10)
	if d.MemoryServerStarts != 3 || d.MemoryServerStops != 0 {
		t.Errorf("memory server starts/stops = %d/%d, want 3/0", d.MemoryServerStarts, d.MemoryServerStops)
	}
	if back := Delta(next, prev, 10); back.MemoryServerStops != 3 || back.MemoryServerStarts != 0 {
		t.Errorf("reverse delta = %+v, want 3 stops", back)
	}
}

func TestDeltaIdentical(t *testing.T) {
	plan := FleetPlan{ActiveHosts: 30, ZombieHosts: 10, SleepHosts: 60}
	if d := Delta(plan, plan, 100); d != (PlanDelta{}) {
		t.Errorf("identical plans should produce an empty delta, got %+v", d)
	}
	// Identical plans must stay event-free in every category, including
	// memory servers, and regardless of the VM population size.
	full := FleetPlan{ActiveHosts: 25, ZombieHosts: 5, MemoryServers: 10, SleepHosts: 60}
	for _, vms := range []int{0, 1, 500} {
		d := Delta(full, full, vms)
		if d != (PlanDelta{}) {
			t.Errorf("identical plans (vms=%d) should yield zero events, got %+v", vms, d)
		}
		if d.Transitions() != 0 {
			t.Errorf("identical plans (vms=%d) should count zero transitions, got %d", vms, d.Transitions())
		}
	}
}

func TestDeltaEmptyPreviousPlan(t *testing.T) {
	// A zero-value previous plan (no posture at all — distinct from
	// InitialPlan's all-awake fleet) means every category of the next plan
	// grows from nothing: each sleeping category pays its enters and no host
	// is freed, so no migrations are charged.
	next := FleetPlan{ActiveHosts: 12, ZombieHosts: 4, MemoryServers: 2, SleepHosts: 7}
	d := Delta(FleetPlan{}, next, 80)
	if d.SleepEnters != 7 || d.SleepExits != 0 {
		t.Errorf("sleep enters/exits = %d/%d, want 7/0", d.SleepEnters, d.SleepExits)
	}
	if d.ZombieEnters != 4 || d.ZombieExits != 0 {
		t.Errorf("zombie enters/exits = %d/%d, want 4/0", d.ZombieEnters, d.ZombieExits)
	}
	if d.MemoryServerStarts != 2 || d.MemoryServerStops != 0 {
		t.Errorf("memory server starts/stops = %d/%d, want 2/0", d.MemoryServerStarts, d.MemoryServerStops)
	}
	if d.FreedHosts != 0 || d.Migrations != 0 {
		t.Errorf("active hosts grew, so nothing drains; got freed=%d migrations=%d", d.FreedHosts, d.Migrations)
	}
	if d.Transitions() != 13 {
		t.Errorf("transitions = %d, want 13", d.Transitions())
	}
}

func TestDeltaMemoryServerOnlyChange(t *testing.T) {
	// Only the memory-server assignment changes: actives and zombies hold
	// steady, two sleepers are re-provisioned as memory servers. The delta
	// must charge exactly the memory-server starts and the matching sleep
	// exits — no migrations, because no active host was freed.
	prev := FleetPlan{ActiveHosts: 20, ZombieHosts: 5, MemoryServers: 3, SleepHosts: 72}
	next := FleetPlan{ActiveHosts: 20, ZombieHosts: 5, MemoryServers: 5, SleepHosts: 70}
	d := Delta(prev, next, 150)
	if d.MemoryServerStarts != 2 || d.MemoryServerStops != 0 {
		t.Errorf("memory server starts/stops = %d/%d, want 2/0", d.MemoryServerStarts, d.MemoryServerStops)
	}
	if d.SleepExits != 2 || d.SleepEnters != 0 {
		t.Errorf("sleep exits/enters = %d/%d, want 2/0", d.SleepExits, d.SleepEnters)
	}
	if d.ZombieEnters != 0 || d.ZombieExits != 0 {
		t.Errorf("zombies untouched, got enters=%d exits=%d", d.ZombieEnters, d.ZombieExits)
	}
	if d.FreedHosts != 0 || d.Migrations != 0 {
		t.Errorf("no active host freed, got freed=%d migrations=%d", d.FreedHosts, d.Migrations)
	}
	if d.Transitions() != 4 {
		t.Errorf("transitions = %d, want 4 (2 starts + 2 sleep exits)", d.Transitions())
	}
}

func TestReplan(t *testing.T) {
	// Replan must return exactly what Plan + Delta return separately.
	vms := []VMDemand{
		{ID: "a", BookedCPU: 4, BookedMemGiB: 12, UsedCPU: 2, UsedMemGiB: 6},
		{ID: "b", BookedCPU: 2, BookedMemGiB: 6, UsedCPU: 0.005, UsedMemGiB: 2},
	}
	spec := DefaultServerSpec()
	pol := NewZombieStack()
	prev := InitialPlan(10)
	plan, delta := Replan(pol, prev, vms, spec, 10)
	wantPlan := pol.Plan(vms, spec, 10)
	if plan != wantPlan {
		t.Errorf("Replan plan = %+v, want %+v", plan, wantPlan)
	}
	if want := Delta(prev, wantPlan, len(vms)); delta != want {
		t.Errorf("Replan delta = %+v, want %+v", delta, want)
	}
}
