// Package consolidation implements the VM consolidation systems compared in
// the paper's Section 6.6.2 (Figure 10):
//
//   - Neat: the OpenStack Neat consolidation loop (underload/overload
//     detection, VM selection, placement, suspend freed hosts). Vanilla Neat
//     only places a VM on a server that holds ALL the resources the VM booked,
//     so memory-heavy fleets strand CPU.
//   - Oasis: energy-oriented consolidation in which idle VMs are partially
//     migrated (only their working set moves) and their remaining memory is
//     relocated to a dedicated low-power memory server consuming about 40% of
//     a regular server, letting the original host suspend.
//   - ZombieStack: the paper's system. Placement only requires a fraction of
//     the VM's memory locally (the rest is remote), freed servers are pushed
//     into the Sz zombie state so their memory keeps serving the rack, and
//     zombies with the fewest allocated buffers are woken first.
//
// Two views are provided: a fleet-level planner (Policy) used by the
// datacenter simulator to reproduce Figure 10, and the step-wise Neat loop
// (PlanSteps) used at rack level.
package consolidation
