package consolidation

import (
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/acpi"
)

// memoryHeavyFleet builds a VM population whose memory demand dominates its
// CPU demand, the regime the paper targets.
func memoryHeavyFleet(n int) []VMDemand {
	vms := make([]VMDemand, 0, n)
	for i := 0; i < n; i++ {
		vms = append(vms, VMDemand{
			ID:           fmt.Sprintf("vm-%d", i),
			BookedCPU:    1,
			BookedMemGiB: 4,
			UsedCPU:      0.3,
			UsedMemGiB:   2.5,
		})
	}
	return vms
}

func TestVMDemandHelpers(t *testing.T) {
	idle := VMDemand{UsedCPU: 0.005, UsedMemGiB: 2}
	busy := VMDemand{UsedCPU: 0.5, UsedMemGiB: 2}
	if !idle.Idle() || busy.Idle() {
		t.Error("idle detection wrong")
	}
	if idle.WSSGiB() != 2 {
		t.Error("WSS should track used memory")
	}
}

func TestPolicyByName(t *testing.T) {
	for _, want := range []string{"none", "neat", "oasis", "zombiestack"} {
		p, err := PolicyByName(want)
		if err != nil || p.Name() != want {
			t.Errorf("PolicyByName(%q) = %v, %v", want, p, err)
		}
	}
	if _, err := PolicyByName("drs"); err == nil {
		t.Error("unknown policy should fail")
	}
	if len(AllPolicies()) != 4 {
		t.Error("expected 4 policies")
	}
}

func TestSleepStateFor(t *testing.T) {
	if SleepStateFor("zombiestack") != acpi.Sz {
		t.Error("zombiestack suspends to Sz")
	}
	if SleepStateFor("neat") != acpi.S3 || SleepStateFor("oasis") != acpi.S3 {
		t.Error("neat/oasis suspend to S3")
	}
}

func TestNoConsolidationKeepsEverythingOn(t *testing.T) {
	p := NoConsolidation{}
	plan := p.Plan(memoryHeavyFleet(40), DefaultServerSpec(), 100)
	if plan.ActiveHosts != 100 || plan.SleepHosts != 0 {
		t.Errorf("plan = %+v", plan)
	}
	if plan.ActiveCPUUtilization <= 0 || plan.ActiveCPUUtilization > 0.5 {
		t.Errorf("baseline utilization = %v, should be low", plan.ActiveCPUUtilization)
	}
	if plan.TotalHosts() != 100 {
		t.Error("total hosts wrong")
	}
}

func TestNeatMemoryBound(t *testing.T) {
	// 40 VMs x 4 GiB booked = 160 GiB; servers hold 16 GiB x 0.9 = 14.4 GiB
	// usable, so Neat needs ceil(160/14.4) = 12 hosts even though the CPU
	// demand (40 cores) would fit on 6.
	neat := NewNeat()
	plan := neat.Plan(memoryHeavyFleet(40), DefaultServerSpec(), 100)
	if plan.ActiveHosts != 12 {
		t.Errorf("neat active hosts = %d, want 12 (memory bound)", plan.ActiveHosts)
	}
	if plan.SleepHosts != 88 {
		t.Errorf("sleep hosts = %d", plan.SleepHosts)
	}
	if plan.ZombieHosts != 0 || plan.MemoryServers != 0 {
		t.Error("neat uses neither zombies nor memory servers")
	}
}

func TestZombieStackCPUBound(t *testing.T) {
	// With the 50% local rule the memory pinning halves: ceil(80/14.4) = 6
	// active hosts = the CPU-bound count, and the remaining memory demand is
	// served by zombies.
	z := NewZombieStack()
	plan := z.Plan(memoryHeavyFleet(40), DefaultServerSpec(), 100)
	neat := NewNeat().Plan(memoryHeavyFleet(40), DefaultServerSpec(), 100)
	if plan.ActiveHosts >= neat.ActiveHosts {
		t.Errorf("zombiestack active hosts (%d) should be below neat's (%d)", plan.ActiveHosts, neat.ActiveHosts)
	}
	if plan.ZombieHosts == 0 {
		t.Error("zombiestack should use zombie servers for the remote memory")
	}
	if plan.RemoteMemoryGiB <= 0 {
		t.Error("remote memory should be positive")
	}
	if plan.ActiveCPUUtilization <= neat.ActiveCPUUtilization {
		t.Error("packing onto fewer hosts should raise active utilization")
	}
	if plan.TotalHosts() != 100 {
		t.Errorf("plan does not cover the fleet: %+v", plan)
	}
}

func TestOasisBetweenNeatAndZombie(t *testing.T) {
	// A fleet with many idle VMs: Oasis moves their cold memory to memory
	// servers, so it needs fewer active hosts than Neat.
	vms := memoryHeavyFleet(20)
	for i := 20; i < 40; i++ {
		vms = append(vms, VMDemand{
			ID:           fmt.Sprintf("idle-%d", i),
			BookedCPU:    1,
			BookedMemGiB: 4,
			UsedCPU:      0.001,
			UsedMemGiB:   0.5,
		})
	}
	spec := DefaultServerSpec()
	neat := NewNeat().Plan(vms, spec, 100)
	oasis := NewOasis().Plan(vms, spec, 100)
	if oasis.ActiveHosts >= neat.ActiveHosts {
		t.Errorf("oasis active hosts (%d) should be below neat's (%d)", oasis.ActiveHosts, neat.ActiveHosts)
	}
	if oasis.MemoryServers == 0 {
		t.Error("oasis should provision memory servers for the idle VMs' cold memory")
	}
	if oasis.RemoteMemoryGiB <= 0 {
		t.Error("oasis should relocate memory")
	}
}

func TestPlansWithEmptyFleet(t *testing.T) {
	for _, p := range AllPolicies() {
		plan := p.Plan(nil, DefaultServerSpec(), 50)
		if plan.ActiveHosts != 0 && p.Name() != "none" {
			t.Errorf("%s: empty fleet should need no active hosts, got %d", p.Name(), plan.ActiveHosts)
		}
		if plan.TotalHosts() != 50 {
			t.Errorf("%s: plan must cover all servers", p.Name())
		}
	}
}

func TestPlanClampsToFleetSize(t *testing.T) {
	// Demand far beyond the fleet: the plans must not exceed the fleet size.
	vms := memoryHeavyFleet(1000)
	for _, p := range AllPolicies() {
		plan := p.Plan(vms, DefaultServerSpec(), 10)
		if plan.TotalHosts() != 10 {
			t.Errorf("%s: plan covers %d hosts, want 10", p.Name(), plan.TotalHosts())
		}
		if plan.ActiveHosts > 10 || plan.SleepHosts < 0 {
			t.Errorf("%s: inconsistent plan %+v", p.Name(), plan)
		}
	}
}

func TestDegenerateTargets(t *testing.T) {
	neat := &Neat{TargetUtilization: 0}
	if plan := neat.Plan(memoryHeavyFleet(10), DefaultServerSpec(), 50); plan.ActiveHosts == 0 {
		t.Error("degenerate target should fall back to a sane default")
	}
	z := &ZombieStack{TargetUtilization: 2, LocalMemoryFraction: -1}
	if plan := z.Plan(memoryHeavyFleet(10), DefaultServerSpec(), 50); plan.ActiveHosts == 0 {
		t.Error("degenerate zombie parameters should fall back to defaults")
	}
	o := &Oasis{TargetUtilization: -3}
	if plan := o.Plan(memoryHeavyFleet(10), DefaultServerSpec(), 50); plan.ActiveHosts == 0 {
		t.Error("degenerate oasis target should fall back to defaults")
	}
}

// Property: for any fleet, ZombieStack never uses more active (S0) hosts than
// Neat, and every plan covers exactly the fleet.
func TestPropertyZombieNeverWorseThanNeat(t *testing.T) {
	f := func(nVMs uint8, memPerVM, cpuPerVM uint8, servers uint8) bool {
		n := int(nVMs)%60 + 1
		total := int(servers)%200 + 10
		mem := 1 + float64(memPerVM%8)
		cpu := 0.5 + float64(cpuPerVM%4)
		vms := make([]VMDemand, n)
		for i := range vms {
			vms[i] = VMDemand{
				ID:           fmt.Sprintf("v%d", i),
				BookedCPU:    cpu,
				BookedMemGiB: mem,
				UsedCPU:      cpu * 0.3,
				UsedMemGiB:   mem * 0.6,
			}
		}
		spec := DefaultServerSpec()
		neat := NewNeat().Plan(vms, spec, total)
		zombie := NewZombieStack().Plan(vms, spec, total)
		if zombie.ActiveHosts > neat.ActiveHosts {
			return false
		}
		return neat.TotalHosts() == total && zombie.TotalHosts() == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestPlanStepsClassification(t *testing.T) {
	hosts := []HostLoad{
		{ID: "under", CPUUtilization: 0.05, FreeMemGiB: 10, VMs: []VMDemand{
			{ID: "a", BookedCPU: 1, BookedMemGiB: 2, UsedCPU: 0.1, UsedMemGiB: 1},
		}},
		{ID: "normal", CPUUtilization: 0.5, FreeMemGiB: 8},
		{ID: "over", CPUUtilization: 0.95, FreeMemGiB: 1, VMs: []VMDemand{
			{ID: "big", BookedCPU: 4, BookedMemGiB: 4, UsedCPU: 3.5, UsedMemGiB: 3},
			{ID: "small", BookedCPU: 1, BookedMemGiB: 1, UsedCPU: 0.2, UsedMemGiB: 0.5},
		}},
		{ID: "asleep", Suspended: true, FreeMemGiB: 16},
	}
	plan := PlanSteps(hosts, DefaultStepConfig(false))
	if names := plan.HostNames(plan.UnderloadedHosts); len(names) != 1 || names[0] != "under" {
		t.Errorf("underloaded = %v", names)
	}
	if names := plan.HostNames(plan.OverloadedHosts); len(names) != 1 || names[0] != "over" {
		t.Errorf("overloaded = %v", names)
	}
	// The underloaded host's VM and the overloaded host's biggest VM migrate.
	if dest, _ := plan.DestinationOf("a"); dest != "normal" {
		t.Errorf("vm a should move to the normal host, got %q", dest)
	}
	if dest, ok := plan.DestinationOf("big"); !ok || dest == "over" {
		t.Errorf("vm big should migrate away, got %q", dest)
	}
	if _, ok := plan.DestinationOf("small"); ok {
		t.Error("only the biggest VM of an overloaded host migrates per pass")
	}
	// The emptied underloaded host is suspended.
	if names := plan.HostNames(plan.Suspend); len(names) != 1 || names[0] != "under" {
		t.Errorf("suspend = %v", names)
	}
}

func TestPlanStepsWakesSuspendedHost(t *testing.T) {
	// No normal host has room: the planner must wake the suspended one.
	hosts := []HostLoad{
		{ID: "under", CPUUtilization: 0.1, FreeMemGiB: 0, VMs: []VMDemand{
			{ID: "a", BookedCPU: 1, BookedMemGiB: 8, UsedCPU: 0.1, UsedMemGiB: 6},
		}},
		{ID: "busy", CPUUtilization: 0.6, FreeMemGiB: 1},
		{ID: "zzz", Suspended: true, FreeMemGiB: 16},
	}
	plan := PlanSteps(hosts, DefaultStepConfig(false))
	if names := plan.HostNames(plan.Wake); len(names) != 1 || names[0] != "zzz" {
		t.Errorf("wake = %v", names)
	}
	if dest, _ := plan.DestinationOf("a"); dest != "zzz" {
		t.Errorf("vm a should land on the woken host, got %q", dest)
	}
}

func TestPlanStepsZombieAwareNeedsLessMemory(t *testing.T) {
	// The 30%-of-WSS rule lets a small host accept a VM that vanilla Neat
	// would reject, avoiding the wake-up.
	hosts := []HostLoad{
		{ID: "under", CPUUtilization: 0.1, FreeMemGiB: 0, VMs: []VMDemand{
			{ID: "a", BookedCPU: 1, BookedMemGiB: 8, UsedCPU: 0.1, UsedMemGiB: 4},
		}},
		{ID: "tight", CPUUtilization: 0.5, FreeMemGiB: 2},
		{ID: "zzz", Suspended: true, FreeMemGiB: 16},
	}
	vanilla := PlanSteps(hosts, DefaultStepConfig(false))
	if dest, _ := vanilla.DestinationOf("a"); dest != "zzz" {
		t.Errorf("vanilla should need the suspended host, got %q", dest)
	}
	zombie := PlanSteps(hosts, DefaultStepConfig(true))
	if dest, _ := zombie.DestinationOf("a"); dest != "tight" {
		t.Errorf("zombie-aware placement should fit on the tight host, got %q", dest)
	}
	if len(zombie.Wake) != 0 {
		t.Errorf("zombie-aware plan should not wake anyone, woke %v", zombie.Wake)
	}
}

func TestPlanStepsUnplaceableVMKeepsHostUp(t *testing.T) {
	hosts := []HostLoad{
		{ID: "under", CPUUtilization: 0.1, FreeMemGiB: 0, VMs: []VMDemand{
			{ID: "a", BookedCPU: 1, BookedMemGiB: 64, UsedCPU: 0.1, UsedMemGiB: 32},
		}},
		{ID: "small", CPUUtilization: 0.5, FreeMemGiB: 2},
	}
	plan := PlanSteps(hosts, DefaultStepConfig(false))
	if len(plan.Suspend) != 0 {
		t.Errorf("host with an unplaceable VM must stay up, suspend=%v", plan.Suspend)
	}
	if _, ok := plan.DestinationOf("a"); ok {
		t.Error("the unplaceable VM must not be migrated")
	}
}

func TestDefaultStepConfigDefaults(t *testing.T) {
	cfg := StepConfig{}
	plan := PlanSteps([]HostLoad{{ID: "h", CPUUtilization: 0.5}}, cfg)
	if plan.Names == nil {
		t.Error("plan should always carry its name registry")
	}
	if len(plan.Migrations) != 0 {
		t.Errorf("nothing to migrate, got %d moves", len(plan.Migrations))
	}
	got := DefaultStepConfig(true)
	if got.UnderloadThreshold != 0.2 || got.WSSFraction != 0.3 || !got.ZombieAware {
		t.Errorf("default config = %+v", got)
	}
}
