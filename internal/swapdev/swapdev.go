package swapdev

import (
	"errors"
	"fmt"
	"sync"
)

// PageSize is the swap granularity.
const PageSize = 4096

// Common errors.
var (
	ErrSlotOutOfRange = errors.New("swapdev: slot out of range")
	ErrEmptySlot      = errors.New("swapdev: slot holds no page")
	ErrDeviceFull     = errors.New("swapdev: device is full")
)

// Kind identifies a swap device technology.
type Kind int

// Swap device technologies of Table 2.
const (
	RemoteRAM  Kind = iota // Explicit SD backed by a zombie server's RAM
	LocalSSD               // local fast swap device (the paper's Samsung SSD)
	LocalHDD               // local slow swap device (the paper's Seagate HDD)
	NullDevice             // accepts pages and loses them (testing aid)
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case RemoteRAM:
		return "remote-ram"
	case LocalSSD:
		return "local-ssd"
	case LocalHDD:
		return "local-hdd"
	case NullDevice:
		return "null"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Latency describes a device's per-page swap-out (write) and swap-in (read)
// latencies in nanoseconds, including transfer of one 4 KiB page.
type Latency struct {
	WriteNs int64
	ReadNs  int64
}

// LatencyOf returns the canonical latency of a device kind:
//
//   - remote RAM over FDR Infiniband: a one-sided verb plus the page
//     serialization, a handful of microseconds;
//   - SSD: tens of microseconds for a 4 KiB random access;
//   - HDD: milliseconds (seek + rotation).
func LatencyOf(k Kind) Latency {
	switch k {
	case RemoteRAM:
		return Latency{WriteNs: 3_000, ReadNs: 3_500}
	case LocalSSD:
		return Latency{WriteNs: 60_000, ReadNs: 90_000}
	case LocalHDD:
		return Latency{WriteNs: 4_000_000, ReadNs: 8_000_000}
	default:
		return Latency{}
	}
}

// Device is a fixed-capacity page store with simulated latencies.
type Device interface {
	// Kind returns the device technology.
	Kind() Kind
	// Slots returns the device capacity in pages.
	Slots() int
	// SwapOut stores a page into the slot and returns the simulated latency.
	SwapOut(slot int, page []byte) (int64, error)
	// SwapIn loads the page stored in the slot into dst.
	SwapIn(slot int, dst []byte) (int64, error)
	// Free marks the slot empty.
	Free(slot int)
	// Stats returns the device counters.
	Stats() Stats
}

// Stats aggregates device activity.
type Stats struct {
	SwapOuts     uint64
	SwapIns      uint64
	BytesWritten uint64
	BytesRead    uint64
	TotalNs      int64
}

// memDevice is the common implementation: an in-memory page store with a
// latency profile. RemoteRAM, LocalSSD, LocalHDD and NullDevice all use it;
// only the latency (and whether data is retained) differ.
type memDevice struct {
	mu      sync.Mutex
	kind    Kind
	lat     Latency
	pages   [][]byte
	present []bool
	stats   Stats
	retain  bool
}

// New creates a swap device of the given kind with the given capacity in
// pages, using the canonical latency for the kind.
func New(kind Kind, slots int) (Device, error) {
	return NewWithLatency(kind, slots, LatencyOf(kind))
}

// NewWithLatency creates a swap device with an explicit latency profile
// (used by the ablation benches).
func NewWithLatency(kind Kind, slots int, lat Latency) (Device, error) {
	if slots <= 0 {
		return nil, fmt.Errorf("swapdev: capacity must be positive, got %d", slots)
	}
	return &memDevice{
		kind:    kind,
		lat:     lat,
		pages:   make([][]byte, slots),
		present: make([]bool, slots),
		retain:  kind != NullDevice,
	}, nil
}

func (d *memDevice) Kind() Kind { return d.kind }

func (d *memDevice) Slots() int { return len(d.pages) }

func (d *memDevice) SwapOut(slot int, page []byte) (int64, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if slot < 0 || slot >= len(d.pages) {
		return 0, ErrSlotOutOfRange
	}
	if len(page) > PageSize {
		return 0, fmt.Errorf("swapdev: page of %d bytes exceeds %d", len(page), PageSize)
	}
	if d.retain {
		buf := make([]byte, len(page))
		copy(buf, page)
		d.pages[slot] = buf
		d.present[slot] = true
	}
	d.stats.SwapOuts++
	d.stats.BytesWritten += uint64(len(page))
	d.stats.TotalNs += d.lat.WriteNs
	return d.lat.WriteNs, nil
}

func (d *memDevice) SwapIn(slot int, dst []byte) (int64, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if slot < 0 || slot >= len(d.pages) {
		return 0, ErrSlotOutOfRange
	}
	if !d.present[slot] {
		return 0, ErrEmptySlot
	}
	n := copy(dst, d.pages[slot])
	d.stats.SwapIns++
	d.stats.BytesRead += uint64(n)
	d.stats.TotalNs += d.lat.ReadNs
	return d.lat.ReadNs, nil
}

func (d *memDevice) Free(slot int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if slot >= 0 && slot < len(d.pages) {
		d.pages[slot] = nil
		d.present[slot] = false
	}
}

func (d *memDevice) Stats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}

// Mirror is the asynchronous local-storage mirror of Section 4.3 (footnote
// 3): every write to a remote buffer is also written to local storage so the
// data survives a remote server reclaim or crash. Because it is asynchronous
// it adds no latency to the foreground path; it only counts the background
// traffic it would generate.
type Mirror struct {
	mu      sync.Mutex
	backing Device
	writes  uint64
	dropped uint64
	next    int
	slotOf  map[uint64]int
}

// NewMirror creates a mirror on top of a backing (local) device.
func NewMirror(backing Device) *Mirror {
	return &Mirror{backing: backing, slotOf: make(map[uint64]int)}
}

// WriteAsync records a mirror write for the page key. It returns immediately;
// the simulated latency is not charged to the caller.
func (m *Mirror) WriteAsync(key uint64, page []byte) {
	m.mu.Lock()
	defer m.mu.Unlock()
	slot, ok := m.slotOf[key]
	if !ok {
		if m.next >= m.backing.Slots() {
			m.dropped++
			return
		}
		slot = m.next
		m.next++
		m.slotOf[key] = slot
	}
	if _, err := m.backing.SwapOut(slot, page); err != nil {
		m.dropped++
		return
	}
	m.writes++
}

// Recover reads a mirrored page back (the slow path used when the remote copy
// was reclaimed). It returns the simulated latency of the local read.
func (m *Mirror) Recover(key uint64, dst []byte) (int64, error) {
	m.mu.Lock()
	slot, ok := m.slotOf[key]
	m.mu.Unlock()
	if !ok {
		return 0, fmt.Errorf("swapdev: page %d was never mirrored", key)
	}
	return m.backing.SwapIn(slot, dst)
}

// Writes returns the number of successful mirror writes.
func (m *Mirror) Writes() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.writes
}

// Dropped returns the number of mirror writes that could not be stored.
func (m *Mirror) Dropped() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.dropped
}
