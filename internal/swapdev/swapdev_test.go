package swapdev

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func TestLatencyOrdering(t *testing.T) {
	// The whole point of Table 2: remote RAM < SSD < HDD.
	rram := LatencyOf(RemoteRAM)
	ssd := LatencyOf(LocalSSD)
	hdd := LatencyOf(LocalHDD)
	if !(rram.ReadNs < ssd.ReadNs && ssd.ReadNs < hdd.ReadNs) {
		t.Errorf("read latency ordering violated: %v %v %v", rram.ReadNs, ssd.ReadNs, hdd.ReadNs)
	}
	if !(rram.WriteNs < ssd.WriteNs && ssd.WriteNs < hdd.WriteNs) {
		t.Errorf("write latency ordering violated: %v %v %v", rram.WriteNs, ssd.WriteNs, hdd.WriteNs)
	}
	// Remote RAM should be at least an order of magnitude faster than SSD.
	if rram.ReadNs*10 > ssd.ReadNs {
		t.Error("remote RAM should be >= 10x faster than SSD")
	}
}

func TestKindString(t *testing.T) {
	for _, k := range []Kind{RemoteRAM, LocalSSD, LocalHDD, NullDevice} {
		if k.String() == "" {
			t.Errorf("kind %d has no name", int(k))
		}
	}
	if Kind(42).String() == "" {
		t.Error("unknown kind should render")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(RemoteRAM, 0); err == nil {
		t.Error("zero capacity should be rejected")
	}
	d, err := New(RemoteRAM, 8)
	if err != nil {
		t.Fatal(err)
	}
	if d.Slots() != 8 || d.Kind() != RemoteRAM {
		t.Errorf("device %v/%d", d.Kind(), d.Slots())
	}
}

func TestSwapOutInRoundTrip(t *testing.T) {
	for _, kind := range []Kind{RemoteRAM, LocalSSD, LocalHDD} {
		d, _ := New(kind, 4)
		page := bytes.Repeat([]byte{0x5A}, PageSize)
		wlat, err := d.SwapOut(2, page)
		if err != nil {
			t.Fatalf("%v SwapOut: %v", kind, err)
		}
		if wlat != LatencyOf(kind).WriteNs {
			t.Errorf("%v write latency = %d, want %d", kind, wlat, LatencyOf(kind).WriteNs)
		}
		dst := make([]byte, PageSize)
		rlat, err := d.SwapIn(2, dst)
		if err != nil {
			t.Fatalf("%v SwapIn: %v", kind, err)
		}
		if rlat != LatencyOf(kind).ReadNs {
			t.Errorf("%v read latency = %d", kind, rlat)
		}
		if !bytes.Equal(page, dst) {
			t.Fatalf("%v corrupted the page", kind)
		}
		st := d.Stats()
		if st.SwapOuts != 1 || st.SwapIns != 1 {
			t.Errorf("%v stats = %+v", kind, st)
		}
		if st.TotalNs != wlat+rlat {
			t.Errorf("%v total ns = %d, want %d", kind, st.TotalNs, wlat+rlat)
		}
	}
}

func TestSwapErrors(t *testing.T) {
	d, _ := New(LocalSSD, 2)
	if _, err := d.SwapOut(5, nil); !errors.Is(err, ErrSlotOutOfRange) {
		t.Errorf("out-of-range swap-out: %v", err)
	}
	if _, err := d.SwapIn(-1, nil); !errors.Is(err, ErrSlotOutOfRange) {
		t.Errorf("out-of-range swap-in: %v", err)
	}
	if _, err := d.SwapIn(0, make([]byte, PageSize)); !errors.Is(err, ErrEmptySlot) {
		t.Errorf("empty slot swap-in: %v", err)
	}
	if _, err := d.SwapOut(0, make([]byte, PageSize+1)); err == nil {
		t.Error("oversized page should be rejected")
	}
	// Free empties the slot.
	if _, err := d.SwapOut(0, []byte("data")); err != nil {
		t.Fatal(err)
	}
	d.Free(0)
	if _, err := d.SwapIn(0, make([]byte, PageSize)); !errors.Is(err, ErrEmptySlot) {
		t.Error("freed slot should be empty")
	}
	d.Free(99) // out of range: no-op
}

func TestNullDeviceLosesData(t *testing.T) {
	d, _ := New(NullDevice, 2)
	if _, err := d.SwapOut(0, []byte("gone")); err != nil {
		t.Fatal(err)
	}
	if _, err := d.SwapIn(0, make([]byte, 8)); !errors.Is(err, ErrEmptySlot) {
		t.Error("null device should not retain pages")
	}
}

func TestMirror(t *testing.T) {
	backing, _ := New(LocalSSD, 4)
	m := NewMirror(backing)
	page := bytes.Repeat([]byte{7}, PageSize)
	m.WriteAsync(42, page)
	m.WriteAsync(42, page) // update in place, same slot
	m.WriteAsync(43, page)
	if m.Writes() != 3 {
		t.Errorf("writes = %d, want 3", m.Writes())
	}
	dst := make([]byte, PageSize)
	lat, err := m.Recover(42, dst)
	if err != nil {
		t.Fatal(err)
	}
	if lat <= 0 {
		t.Error("recovery should report the local device latency")
	}
	if !bytes.Equal(dst, page) {
		t.Error("recovered page corrupted")
	}
	if _, err := m.Recover(99, dst); err == nil {
		t.Error("recovering a never-mirrored page should fail")
	}
}

func TestMirrorOverflow(t *testing.T) {
	backing, _ := New(LocalSSD, 2)
	m := NewMirror(backing)
	for k := uint64(0); k < 5; k++ {
		m.WriteAsync(k, []byte("x"))
	}
	if m.Dropped() != 3 {
		t.Errorf("dropped = %d, want 3", m.Dropped())
	}
	if m.Writes() != 2 {
		t.Errorf("writes = %d, want 2", m.Writes())
	}
}

// Property: whatever is swapped out is read back bit-identical on retaining
// devices, for any slot within range.
func TestPropertyRoundTrip(t *testing.T) {
	d, _ := New(RemoteRAM, 16)
	f := func(slot uint8, data []byte) bool {
		s := int(slot) % 16
		if len(data) > PageSize {
			data = data[:PageSize]
		}
		if _, err := d.SwapOut(s, data); err != nil {
			return false
		}
		dst := make([]byte, len(data))
		if _, err := d.SwapIn(s, dst); err != nil {
			return false
		}
		return bytes.Equal(data, dst)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
