// Package swapdev models the swap device technologies compared in the
// paper's Table 2: a remote-RAM swap device served over RDMA (the Explicit SD
// function), a local fast swap device (SSD), a local slow swap device (HDD),
// and the asynchronous local-storage mirror used for fault tolerance.
//
// A swap device stores 4 KiB pages identified by a slot number and reports
// the simulated latency of every operation. The latencies follow commonly
// reported device magnitudes; what matters to Table 2 is their ordering:
// remote RAM over Infiniband << local SSD << local HDD.
package swapdev
