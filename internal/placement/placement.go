package placement

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/vm"
)

// LocalMemoryRule is the minimum fraction of a VM's reserved memory that must
// be available locally on the chosen host (Section 5.1).
const LocalMemoryRule = 0.5

// HostID identifies a candidate host.
type HostID string

// Host is the scheduler's view of one candidate server.
type Host struct {
	ID HostID
	// TotalCPUs and UsedCPUs describe the vCPU capacity.
	TotalCPUs int
	UsedCPUs  int
	// TotalMemory and UsedMemory describe the local RAM, in bytes.
	TotalMemory int64
	UsedMemory  int64
	// PoweredOn reports whether the host is in S0 (a suspended host cannot
	// receive a VM without being woken first).
	PoweredOn bool
}

// FreeCPUs returns the available vCPUs.
func (h Host) FreeCPUs() int { return h.TotalCPUs - h.UsedCPUs }

// FreeMemory returns the available local memory.
func (h Host) FreeMemory() int64 { return h.TotalMemory - h.UsedMemory }

// CPUUtilization returns used/total vCPUs (0..1).
func (h Host) CPUUtilization() float64 {
	if h.TotalCPUs == 0 {
		return 0
	}
	return float64(h.UsedCPUs) / float64(h.TotalCPUs)
}

// MemoryUtilization returns used/total memory (0..1).
func (h Host) MemoryUtilization() float64 {
	if h.TotalMemory == 0 {
		return 0
	}
	return float64(h.UsedMemory) / float64(h.TotalMemory)
}

// Strategy selects how suitable hosts are ranked.
type Strategy int

// Placement strategies.
const (
	// Stacking packs VMs onto the fewest hosts (energy-oriented).
	Stacking Strategy = iota
	// Spreading balances load across hosts (performance-oriented).
	Spreading
)

// String names the strategy.
func (s Strategy) String() string {
	if s == Stacking {
		return "stacking"
	}
	return "spreading"
}

// Errors returned by the scheduler.
var (
	ErrNoSuitableHost = errors.New("placement: no suitable host")
)

// Request is one placement request.
type Request struct {
	VM vm.VM
	// RemoteMemoryAvailable is the remote memory the rack can currently
	// provide (from the global memory controller).
	RemoteMemoryAvailable int64
	// Strategy ranks the suitable hosts; Stacking by default.
	Strategy Strategy
}

// Decision is the scheduler's answer.
type Decision struct {
	Host HostID
	// LocalBytes is the VM memory to back with the host's local RAM.
	LocalBytes int64
	// RemoteBytes is the VM memory to back with remote buffers.
	RemoteBytes int64
}

// Scheduler filters and weighs hosts.
type Scheduler struct {
	// ZombieAware enables the relaxed memory filter (the ZombieStack
	// behaviour). When false the scheduler behaves like vanilla Nova: the
	// host must hold the VM's full reservation locally.
	ZombieAware bool
	// MinLocalFraction overrides LocalMemoryRule when positive.
	MinLocalFraction float64
}

// NewScheduler returns a zombie-aware scheduler using the 50% rule.
func NewScheduler() *Scheduler {
	return &Scheduler{ZombieAware: true, MinLocalFraction: LocalMemoryRule}
}

// NewVanillaScheduler returns a scheduler with the unmodified Nova behaviour.
func NewVanillaScheduler() *Scheduler {
	return &Scheduler{ZombieAware: false}
}

// minLocal returns the effective minimum local fraction.
func (s *Scheduler) minLocal() float64 {
	if !s.ZombieAware {
		return 1.0
	}
	if s.MinLocalFraction > 0 && s.MinLocalFraction <= 1 {
		return s.MinLocalFraction
	}
	return LocalMemoryRule
}

// Filter returns the hosts able to receive the VM, in input order.
func (s *Scheduler) Filter(hosts []Host, req Request) []Host {
	minLocalBytes := int64(float64(req.VM.ReservedBytes) * s.minLocal())
	var out []Host
	for _, h := range hosts {
		if !h.PoweredOn {
			continue
		}
		if h.FreeCPUs() < req.VM.VCPUs {
			continue
		}
		free := h.FreeMemory()
		if free < minLocalBytes {
			continue
		}
		if free < req.VM.ReservedBytes {
			// The remainder must be available as remote memory.
			if !s.ZombieAware || req.RemoteMemoryAvailable < req.VM.ReservedBytes-free {
				continue
			}
		}
		out = append(out, h)
	}
	return out
}

// Weigh sorts suitable hosts according to the strategy. Stacking prefers the
// most-utilized host that still fits (to concentrate load and free servers
// for Sz); spreading prefers the least-utilized. Ties break on host ID for
// determinism.
func (s *Scheduler) Weigh(hosts []Host, strategy Strategy) []Host {
	out := append([]Host(nil), hosts...)
	sort.SliceStable(out, func(i, j int) bool {
		ui := out[i].CPUUtilization() + out[i].MemoryUtilization()
		uj := out[j].CPUUtilization() + out[j].MemoryUtilization()
		if ui == uj {
			return out[i].ID < out[j].ID
		}
		if strategy == Stacking {
			return ui > uj
		}
		return ui < uj
	})
	return out
}

// Place runs filter + weigh and returns the placement decision for the best
// host, including how much of the VM's memory is local versus remote.
func (s *Scheduler) Place(hosts []Host, req Request) (Decision, error) {
	if err := req.VM.Validate(); err != nil {
		return Decision{}, fmt.Errorf("placement: %w", err)
	}
	suitable := s.Filter(hosts, req)
	if len(suitable) == 0 {
		return Decision{}, ErrNoSuitableHost
	}
	ranked := s.Weigh(suitable, req.Strategy)
	best := ranked[0]
	local := req.VM.ReservedBytes
	if best.FreeMemory() < local {
		local = best.FreeMemory()
	}
	return Decision{
		Host:        best.ID,
		LocalBytes:  local,
		RemoteBytes: req.VM.ReservedBytes - local,
	}, nil
}

// AdmissionController enforces the rack-level guarantee of Section 4.4: the
// sum of guaranteed (RAM Ext) remote allocations can never exceed the rack's
// delegatable memory, so GS_alloc_ext always succeeds for admitted VMs.
type AdmissionController struct {
	capacity  int64
	committed int64
}

// NewAdmissionController creates a controller for the given delegatable
// remote memory capacity.
func NewAdmissionController(capacityBytes int64) *AdmissionController {
	return &AdmissionController{capacity: capacityBytes}
}

// Admit reserves remoteBytes of guaranteed remote memory for a VM. It fails
// when the reservation would overcommit the rack.
func (a *AdmissionController) Admit(remoteBytes int64) error {
	if remoteBytes < 0 {
		return fmt.Errorf("placement: negative remote reservation")
	}
	if a.committed+remoteBytes > a.capacity {
		return fmt.Errorf("placement: admission control rejects %d bytes (committed %d of %d)",
			remoteBytes, a.committed, a.capacity)
	}
	a.committed += remoteBytes
	return nil
}

// Release returns a previously admitted reservation.
func (a *AdmissionController) Release(remoteBytes int64) {
	a.committed -= remoteBytes
	if a.committed < 0 {
		a.committed = 0
	}
}

// SetCapacity updates the delegatable capacity (servers joining/leaving Sz).
func (a *AdmissionController) SetCapacity(capacityBytes int64) {
	if capacityBytes >= 0 {
		a.capacity = capacityBytes
	}
}

// Committed returns the currently committed guaranteed remote memory.
func (a *AdmissionController) Committed() int64 { return a.committed }

// Available returns the remaining admittable remote memory.
func (a *AdmissionController) Available() int64 {
	v := a.capacity - a.committed
	if v < 0 {
		return 0
	}
	return v
}
