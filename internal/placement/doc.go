// Package placement implements the Nova-style VM scheduler of Section 5.1:
// a filter phase keeps the hosts able to run the VM, and a weigh phase ranks
// them according to the placement strategy (stacking or spreading).
//
// ZombieStack relaxes the vanilla memory filter: a host is suitable when at
// least LocalMemoryRule (50%) of the VM's reserved memory is available
// locally, provided the rack can supply the remainder as remote memory. The
// 50% figure comes from the paper's empirical study (Table 1): below it, even
// well-behaved workloads pay unacceptable penalties.
package placement
