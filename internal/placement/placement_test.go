package placement

import (
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/vm"
)

func sampleHosts() []Host {
	return []Host{
		{ID: "h1", TotalCPUs: 16, UsedCPUs: 8, TotalMemory: 16 << 30, UsedMemory: 12 << 30, PoweredOn: true},
		{ID: "h2", TotalCPUs: 16, UsedCPUs: 2, TotalMemory: 16 << 30, UsedMemory: 2 << 30, PoweredOn: true},
		{ID: "h3", TotalCPUs: 16, UsedCPUs: 0, TotalMemory: 16 << 30, UsedMemory: 0, PoweredOn: false},
	}
}

func TestHostAccounting(t *testing.T) {
	h := sampleHosts()[0]
	if h.FreeCPUs() != 8 || h.FreeMemory() != 4<<30 {
		t.Errorf("free cpu/mem = %d/%d", h.FreeCPUs(), h.FreeMemory())
	}
	if h.CPUUtilization() != 0.5 || h.MemoryUtilization() != 0.75 {
		t.Errorf("utilization = %v/%v", h.CPUUtilization(), h.MemoryUtilization())
	}
	var empty Host
	if empty.CPUUtilization() != 0 || empty.MemoryUtilization() != 0 {
		t.Error("empty host utilization should be zero")
	}
}

func TestStrategyString(t *testing.T) {
	if Stacking.String() != "stacking" || Spreading.String() != "spreading" {
		t.Error("strategy names wrong")
	}
}

func TestVanillaFilterRequiresFullMemory(t *testing.T) {
	s := NewVanillaScheduler()
	req := Request{VM: vm.New("v", 8<<30, 6<<30), RemoteMemoryAvailable: 64 << 30}
	suitable := s.Filter(sampleHosts(), req)
	// Only h2 has 14 GiB free; h1 has 4 GiB; h3 is off.
	if len(suitable) != 1 || suitable[0].ID != "h2" {
		t.Fatalf("vanilla filter = %+v", suitable)
	}
}

func TestZombieAwareFilterRelaxesMemory(t *testing.T) {
	s := NewScheduler()
	req := Request{VM: vm.New("v", 8<<30, 6<<30), RemoteMemoryAvailable: 64 << 30}
	suitable := s.Filter(sampleHosts(), req)
	// h1 has 4 GiB free = 50% of 8 GiB: suitable thanks to remote memory.
	if len(suitable) != 2 {
		t.Fatalf("zombie-aware filter should accept h1 and h2, got %+v", suitable)
	}
	// Without remote memory available, h1 drops out again.
	req.RemoteMemoryAvailable = 0
	suitable = s.Filter(sampleHosts(), req)
	if len(suitable) != 1 || suitable[0].ID != "h2" {
		t.Fatalf("without remote memory only h2 fits, got %+v", suitable)
	}
}

func TestFilterChecksCPUAndPower(t *testing.T) {
	s := NewScheduler()
	big := vm.New("big", 1<<30, 1<<30)
	big.VCPUs = 12
	req := Request{VM: big, RemoteMemoryAvailable: 1 << 40}
	suitable := s.Filter(sampleHosts(), req)
	// h1 has only 8 free vCPUs; h3 is powered off; h2 remains.
	if len(suitable) != 1 || suitable[0].ID != "h2" {
		t.Fatalf("filter = %+v", suitable)
	}
}

func TestWeighStackingAndSpreading(t *testing.T) {
	s := NewScheduler()
	hosts := sampleHosts()[:2]
	stacked := s.Weigh(hosts, Stacking)
	if stacked[0].ID != "h1" {
		t.Errorf("stacking should prefer the busiest host, got %s", stacked[0].ID)
	}
	spread := s.Weigh(hosts, Spreading)
	if spread[0].ID != "h2" {
		t.Errorf("spreading should prefer the least busy host, got %s", spread[0].ID)
	}
	// Ties break deterministically by ID.
	same := []Host{
		{ID: "b", TotalCPUs: 4, TotalMemory: 1 << 30, PoweredOn: true},
		{ID: "a", TotalCPUs: 4, TotalMemory: 1 << 30, PoweredOn: true},
	}
	if got := s.Weigh(same, Stacking); got[0].ID != "a" {
		t.Errorf("tie break should be by ID, got %s", got[0].ID)
	}
}

func TestPlaceSplitsLocalAndRemote(t *testing.T) {
	s := NewScheduler()
	req := Request{VM: vm.New("v", 8<<30, 6<<30), RemoteMemoryAvailable: 64 << 30, Strategy: Stacking}
	dec, err := s.Place(sampleHosts(), req)
	if err != nil {
		t.Fatal(err)
	}
	// Stacking prefers h1 (most utilized), which only has 4 GiB free, so the
	// other 4 GiB must be remote.
	if dec.Host != "h1" {
		t.Errorf("host = %s, want h1", dec.Host)
	}
	if dec.LocalBytes != 4<<30 || dec.RemoteBytes != 4<<30 {
		t.Errorf("split = %d local / %d remote", dec.LocalBytes, dec.RemoteBytes)
	}
	// A host with plenty of free memory keeps the VM fully local.
	req.Strategy = Spreading
	dec, err = s.Place(sampleHosts(), req)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Host != "h2" || dec.RemoteBytes != 0 {
		t.Errorf("spreading decision = %+v", dec)
	}
}

func TestPlaceErrors(t *testing.T) {
	s := NewScheduler()
	if _, err := s.Place(sampleHosts(), Request{VM: vm.VM{}}); err == nil {
		t.Error("invalid VM should fail")
	}
	huge := vm.New("huge", 128<<30, 64<<30)
	_, err := s.Place(sampleHosts(), Request{VM: huge, RemoteMemoryAvailable: 0})
	if !errors.Is(err, ErrNoSuitableHost) {
		t.Errorf("expected ErrNoSuitableHost, got %v", err)
	}
}

func TestMinLocalFractionOverride(t *testing.T) {
	s := NewScheduler()
	s.MinLocalFraction = 0.3
	if s.minLocal() != 0.3 {
		t.Errorf("minLocal = %v", s.minLocal())
	}
	s.MinLocalFraction = 0 // falls back to the 50% rule
	if s.minLocal() != LocalMemoryRule {
		t.Errorf("minLocal fallback = %v", s.minLocal())
	}
	s.MinLocalFraction = 2 // nonsense value ignored
	if s.minLocal() != LocalMemoryRule {
		t.Errorf("minLocal with bad override = %v", s.minLocal())
	}
	v := NewVanillaScheduler()
	if v.minLocal() != 1.0 {
		t.Errorf("vanilla minLocal = %v, want 1", v.minLocal())
	}
}

func TestAdmissionController(t *testing.T) {
	a := NewAdmissionController(10 << 30)
	if err := a.Admit(6 << 30); err != nil {
		t.Fatal(err)
	}
	if err := a.Admit(6 << 30); err == nil {
		t.Fatal("overcommit should be rejected")
	}
	if a.Committed() != 6<<30 || a.Available() != 4<<30 {
		t.Errorf("committed/available = %d/%d", a.Committed(), a.Available())
	}
	if err := a.Admit(-1); err == nil {
		t.Error("negative admission should fail")
	}
	a.Release(2 << 30)
	if a.Committed() != 4<<30 {
		t.Errorf("committed after release = %d", a.Committed())
	}
	a.Release(100 << 30)
	if a.Committed() != 0 {
		t.Error("committed should clamp at zero")
	}
	a.SetCapacity(1 << 30)
	if a.Available() != 1<<30 {
		t.Errorf("available after capacity change = %d", a.Available())
	}
	a.SetCapacity(-5) // ignored
	if a.Available() != 1<<30 {
		t.Error("negative capacity should be ignored")
	}
}

// Property: the placement decision never exceeds the host's free memory and
// always covers the VM's reservation between local and remote.
func TestPropertyPlacementCoversReservation(t *testing.T) {
	s := NewScheduler()
	f := func(freeMemGiB, vmGiB uint8, remoteGiB uint8) bool {
		free := int64(freeMemGiB%32) << 30
		res := int64(1+vmGiB%16) << 30
		remote := int64(remoteGiB%64) << 30
		hosts := []Host{{ID: "h", TotalCPUs: 64, TotalMemory: free, PoweredOn: true}}
		req := Request{VM: vm.New("v", res, res/2), RemoteMemoryAvailable: remote}
		dec, err := s.Place(hosts, req)
		if err != nil {
			return true // no suitable host is a valid outcome
		}
		if dec.LocalBytes > free {
			return false
		}
		return dec.LocalBytes+dec.RemoteBytes == res
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: admission control never lets committed memory exceed capacity.
func TestPropertyAdmissionNeverOvercommits(t *testing.T) {
	f := func(ops []int16) bool {
		a := NewAdmissionController(1 << 40)
		for _, op := range ops {
			amount := int64(op) << 20
			if amount >= 0 {
				_ = a.Admit(amount)
			} else {
				a.Release(-amount)
			}
			if a.Committed() > 1<<40 || a.Committed() < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
