package ident

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

// TestRegistryRoundTrip checks the basic name <-> ID contract: dense IDs in
// first-intern order, stable on re-intern, recoverable by Name.
func TestRegistryRoundTrip(t *testing.T) {
	r := NewRegistry()
	names := []string{"rack-00/server-00", "rack-00/server-01", "vm-7", ""}
	for i, name := range names {
		if id := r.Intern(name); id != ID(i) {
			t.Fatalf("Intern(%q) = %d, want dense %d", name, id, i)
		}
	}
	for i, name := range names {
		if id := r.Intern(name); id != ID(i) {
			t.Errorf("re-Intern(%q) = %d, want stable %d", name, id, i)
		}
		if got := r.Name(ID(i)); got != name {
			t.Errorf("Name(%d) = %q, want %q", i, got, name)
		}
		if id, ok := r.Lookup(name); !ok || id != ID(i) {
			t.Errorf("Lookup(%q) = (%d,%v), want (%d,true)", name, id, ok, i)
		}
	}
	if _, ok := r.Lookup("never-interned"); ok {
		t.Error("Lookup of an unknown name reported present")
	}
	if r.Len() != len(names) {
		t.Errorf("Len() = %d, want %d", r.Len(), len(names))
	}
}

// TestRegistryConcurrentIntern is the property test behind the hot-path
// claim: many goroutines interning overlapping name sets still agree on a
// single ID per name, every ID round-trips back to its name, and the ID
// space stays dense. Run with -race.
func TestRegistryConcurrentIntern(t *testing.T) {
	const goroutines = 8
	const namesPerG = 200
	r := NewRegistry()
	var wg sync.WaitGroup
	got := make([]map[string]ID, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			seen := make(map[string]ID, namesPerG)
			for i := 0; i < namesPerG; i++ {
				// Overlapping name space: every goroutine interns from the same
				// pool, so most interns race with another goroutine's.
				name := fmt.Sprintf("server-%03d", rng.Intn(100))
				id := r.Intern(name)
				if prev, ok := seen[name]; ok && prev != id {
					t.Errorf("goroutine %d: %q interned as %d then %d", g, name, prev, id)
					return
				}
				seen[name] = id
				if back := r.Name(id); back != name {
					t.Errorf("goroutine %d: Name(Intern(%q)) = %q", g, name, back)
					return
				}
			}
			got[g] = seen
		}(g)
	}
	wg.Wait()
	// Cross-goroutine agreement and a dense ID space.
	agreed := make(map[string]ID)
	for g, seen := range got {
		for name, id := range seen {
			if prev, ok := agreed[name]; ok && prev != id {
				t.Fatalf("goroutine %d disagrees on %q: %d vs %d", g, name, id, prev)
			}
			agreed[name] = id
		}
	}
	used := make(map[ID]bool)
	for name, id := range agreed {
		if id < 0 || int(id) >= r.Len() {
			t.Fatalf("%q has out-of-range ID %d (Len %d)", name, id, r.Len())
		}
		if used[id] {
			t.Fatalf("ID %d assigned to two names", id)
		}
		used[id] = true
	}
	if len(agreed) != r.Len() {
		t.Fatalf("registry holds %d names, goroutines saw %d", r.Len(), len(agreed))
	}
}

// TestSet exercises the bitset against a reference map across random
// operations, including IDs past the first word.
func TestSet(t *testing.T) {
	var s Set
	ref := make(map[ID]bool)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		id := ID(rng.Intn(300))
		switch rng.Intn(3) {
		case 0:
			s.Add(id)
			ref[id] = true
		case 1:
			s.Remove(id)
			delete(ref, id)
		default:
			if s.Has(id) != ref[id] {
				t.Fatalf("step %d: Has(%d) = %v, ref %v", i, id, s.Has(id), ref[id])
			}
		}
	}
	if s.Len() != len(ref) {
		t.Fatalf("Len() = %d, ref %d", s.Len(), len(ref))
	}
	if s.Has(None) {
		t.Error("Has(None) must be false")
	}
	clone := s.Clone()
	s.Clear()
	if !s.Empty() {
		t.Error("Clear left members behind")
	}
	if clone.Len() != len(ref) {
		t.Error("Clone shares storage with the original")
	}
	var members int
	clone.Each(func(id ID) {
		if !ref[id] {
			t.Fatalf("Each yielded non-member %d", id)
		}
		members++
	})
	if members != len(ref) {
		t.Fatalf("Each yielded %d members, want %d", members, len(ref))
	}
	var u Set
	u.Add(1)
	u.Union(clone)
	if u.Len() != clone.Len()+boolToInt(!clone.Has(1)) {
		t.Error("Union lost or invented members")
	}
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

// TestNameSet checks the name-addressed wrapper, including the nil-is-empty
// contract the exclusion paths rely on.
func TestNameSet(t *testing.T) {
	reg := NewRegistry()
	var nilSet *NameSet
	if nilSet.Has("anything") || nilSet.Len() != 0 || nilSet.Clone() != nil {
		t.Fatal("nil NameSet must behave as empty")
	}
	s := NewNameSet(reg)
	s.Add("b")
	s.Add("a")
	s.Add("b")
	if !s.Has("a") || !s.Has("b") || s.Has("c") || s.Len() != 2 {
		t.Fatalf("membership wrong: %v", s.Names())
	}
	if !s.HasID(reg.MustLookup(t, "b")) {
		t.Error("HasID misses an added name")
	}
	clone := s.Clone()
	s.Remove("a")
	s.Remove("never-seen")
	if s.Has("a") || !clone.Has("a") {
		t.Error("Remove leaked into the clone or failed")
	}
	// Names come back in first-intern order.
	if names := clone.Names(); len(names) != 2 || names[0] != "b" || names[1] != "a" {
		t.Errorf("Names() = %v, want [b a]", names)
	}
	if clone.Registry() != reg {
		t.Error("Clone must share the registry")
	}
}

// MustLookup is a test helper fetching an ID that must exist.
func (r *Registry) MustLookup(t *testing.T, name string) ID {
	t.Helper()
	id, ok := r.Lookup(name)
	if !ok {
		t.Fatalf("name %q not interned", name)
	}
	return id
}
