// Package ident provides the dense-ID registry behind the control plane's
// hot paths: string names (servers, VMs, racks) are interned once into small
// consecutive integers, and the structures that used to key on
// map[string]string / map[string]bool index slices and bitsets by those
// integers instead. Names survive only at the API and rendering edges; the
// per-epoch and per-batch loops never hash a string.
//
// A Registry is an append-only intern table: IDs are assigned in first-intern
// order, never reused, and remain valid for the registry's lifetime, so a
// dense slice indexed by ID stays valid as the registry grows. Interning and
// lookup are safe for concurrent use.
//
// Set is a bitset over IDs — the replacement for map[string]bool membership
// sets (wake sets, crash sets, host exclusion). NameSet pairs a Set with the
// Registry that scopes it, for call sites that still receive names.
package ident

import (
	"math/bits"
	"sync"
)

// ID is a dense registry-scoped identifier. IDs start at 0 and are assigned
// consecutively in intern order.
type ID int32

// None is the zero-value "no ID" sentinel for slices that need a hole marker.
const None ID = -1

// Registry interns names into dense IDs. The zero value is not usable; call
// NewRegistry. All methods are safe for concurrent use.
type Registry struct {
	mu    sync.RWMutex
	ids   map[string]ID
	names []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{ids: make(map[string]ID)}
}

// Intern returns the name's ID, assigning the next dense ID on first sight.
func (r *Registry) Intern(name string) ID {
	r.mu.RLock()
	id, ok := r.ids[name]
	r.mu.RUnlock()
	if ok {
		return id
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if id, ok := r.ids[name]; ok {
		return id
	}
	id = ID(len(r.names))
	r.ids[name] = id
	r.names = append(r.names, name)
	return id
}

// Lookup returns the name's ID without interning it.
func (r *Registry) Lookup(name string) (ID, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	id, ok := r.ids[name]
	return id, ok
}

// Name returns the name behind an ID; it panics on an ID the registry never
// assigned, exactly like an out-of-range slice index.
func (r *Registry) Name(id ID) string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.names[id]
}

// Len returns the number of interned names; IDs [0, Len) are valid.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.names)
}

// Set is a bitset over registry IDs. The zero value is an empty set. Set is
// NOT safe for concurrent mutation; clone per goroutine instead (the batch
// paths snapshot once and share read-only).
type Set struct {
	words []uint64
}

// Add inserts id into the set.
func (s *Set) Add(id ID) {
	w := int(id) >> 6
	for w >= len(s.words) {
		s.words = append(s.words, 0)
	}
	s.words[w] |= 1 << (uint(id) & 63)
}

// Remove deletes id from the set.
func (s *Set) Remove(id ID) {
	w := int(id) >> 6
	if w < len(s.words) {
		s.words[w] &^= 1 << (uint(id) & 63)
	}
}

// Has reports membership. IDs beyond the set's capacity are simply absent.
func (s *Set) Has(id ID) bool {
	if id < 0 {
		return false
	}
	w := int(id) >> 6
	return w < len(s.words) && s.words[w]&(1<<(uint(id)&63)) != 0
}

// Len counts the members.
func (s *Set) Len() int {
	n := 0
	for _, w := range s.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// Empty reports whether the set has no members.
func (s *Set) Empty() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Clear empties the set, keeping its capacity.
func (s *Set) Clear() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// Clone returns an independent copy.
func (s *Set) Clone() Set {
	return Set{words: append([]uint64(nil), s.words...)}
}

// Union adds every member of other to s.
func (s *Set) Union(other Set) {
	for w := len(s.words); w < len(other.words); w++ {
		s.words = append(s.words, 0)
	}
	for i, w := range other.words {
		s.words[i] |= w
	}
}

// Each calls fn for every member in ascending ID order.
func (s *Set) Each(fn func(ID)) {
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			fn(ID(wi<<6 + b))
			w &^= 1 << uint(b)
		}
	}
}

// NameSet is a membership set addressed by name: a bitset scoped by the
// registry that interned the names. It replaces map[string]bool in call
// chains that cross a name-typed API boundary (crashed servers, excluded
// hosts): Has costs one read-locked map probe and one bit test, and the set
// itself can be snapshot for a batch with Clone (the registry is shared).
type NameSet struct {
	reg *Registry
	set Set
}

// NewNameSet returns an empty name set over the registry.
func NewNameSet(reg *Registry) *NameSet {
	return &NameSet{reg: reg}
}

// Add inserts a name, interning it if needed.
func (n *NameSet) Add(name string) {
	n.set.Add(n.reg.Intern(name))
}

// Remove deletes a name; unknown names are a no-op.
func (n *NameSet) Remove(name string) {
	if id, ok := n.reg.Lookup(name); ok {
		n.set.Remove(id)
	}
}

// Has reports membership; names the registry never saw are absent. A nil
// NameSet is empty.
func (n *NameSet) Has(name string) bool {
	if n == nil {
		return false
	}
	id, ok := n.reg.Lookup(name)
	return ok && n.set.Has(id)
}

// HasID reports membership by interned ID. A nil NameSet is empty.
func (n *NameSet) HasID(id ID) bool {
	return n != nil && n.set.Has(id)
}

// Len counts the members; a nil NameSet has none.
func (n *NameSet) Len() int {
	if n == nil {
		return 0
	}
	return n.set.Len()
}

// Clone returns an independent membership copy sharing the registry. Cloning
// a nil NameSet returns nil (still an empty set).
func (n *NameSet) Clone() *NameSet {
	if n == nil {
		return nil
	}
	return &NameSet{reg: n.reg, set: n.set.Clone()}
}

// Registry returns the registry scoping this set.
func (n *NameSet) Registry() *Registry { return n.reg }

// Names returns the member names in ascending ID (first-intern) order.
func (n *NameSet) Names() []string {
	if n == nil {
		return nil
	}
	out := make([]string, 0, n.set.Len())
	n.set.Each(func(id ID) { out = append(out, n.reg.Name(id)) })
	return out
}
