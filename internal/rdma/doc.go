// Package rdma simulates a rack-scale RDMA fabric (Infiniband in the paper's
// prototype: ConnectX-3 adapters behind an SB7800 switch).
//
// The simulation is in-process and deterministic. It models the pieces the
// memory-disaggregation layer depends on:
//
//   - Device: an RDMA-capable NIC bound to a host, with registered memory
//     regions protected by local/remote keys;
//   - MemoryRegion: a registered buffer that one-sided verbs may target;
//   - QueuePair: a reliable-connected queue pair between two devices with send
//     and receive queues and an associated CompletionQueue;
//   - one-sided READ and WRITE verbs that access remote memory without any
//     involvement of the remote CPU — the property that makes zombie servers
//     possible — plus two-sided SEND/RECV used by the RPC layer;
//   - Fabric: the switch connecting devices, carrying a latency/bandwidth cost
//     model whose parameters follow FDR Infiniband magnitudes.
//
// The remote side of a one-sided verb only requires its Device to be
// "serving" (powered memory path), which the ACPI layer maps from the Sz
// state. A remote host whose device is not serving (e.g. S3) fails the verb.
package rdma
