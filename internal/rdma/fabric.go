package rdma

import (
	"errors"
	"fmt"
	"sync"
)

// Common errors returned by the fabric.
var (
	ErrDeviceDown       = errors.New("rdma: device is down")
	ErrRemoteNotServing = errors.New("rdma: remote memory path is not serving")
	ErrInvalidKey       = errors.New("rdma: invalid remote key")
	ErrOutOfBounds      = errors.New("rdma: access outside registered region")
	ErrQPNotConnected   = errors.New("rdma: queue pair is not connected")
	ErrNoReceivePosted  = errors.New("rdma: no receive work request posted")
	ErrRegionExists     = errors.New("rdma: memory region already registered")
)

// CostModel carries the latency and bandwidth parameters of the fabric. All
// latencies are in nanoseconds; bandwidth in bytes per second.
type CostModel struct {
	// OneSidedLatencyNs is the base latency of an RDMA READ or WRITE
	// (queue-pair processing + switch hop + PCIe/DMA on the target).
	OneSidedLatencyNs int64
	// TwoSidedLatencyNs is the base latency of a SEND/RECV pair, which
	// additionally involves the remote CPU posting and reaping work requests.
	TwoSidedLatencyNs int64
	// SwitchHopNs is added per switch traversal.
	SwitchHopNs int64
	// BandwidthBytesPerSec bounds the payload transfer rate.
	BandwidthBytesPerSec float64
	// PollCostNs is the CPU cost of one completion-queue poll on the
	// initiator (the paper's clients poll because inbound RDMA operations are
	// cheaper than outbound ones).
	PollCostNs int64
	// InterRackHopNs is the extra one-way latency of leaving the rack: the
	// ToR uplink, the spine switch and the longer cable run. It is charged —
	// on top of two extra SwitchHopNs traversals — to every operation that
	// involves an uplink device (see Fabric.AttachUplinkDevice), which is how
	// the fleet layer prices cross-rack remote memory borrows.
	InterRackHopNs int64
}

// DefaultCostModel returns FDR-Infiniband-like parameters: ~2 microseconds
// one-sided latency, ~5 microseconds for an RPC round involving the remote
// CPU, 56 Gb/s link bandwidth.
func DefaultCostModel() CostModel {
	return CostModel{
		OneSidedLatencyNs:    2_000,
		TwoSidedLatencyNs:    5_000,
		SwitchHopNs:          300,
		BandwidthBytesPerSec: 7e9, // 56 Gb/s
		PollCostNs:           150,
		InterRackHopNs:       1_500,
	}
}

// TransferNs returns the simulated time to move size bytes one way, including
// the base latency and a switch hop.
func (c CostModel) TransferNs(base int64, size int) int64 {
	t := base + c.SwitchHopNs
	if c.BandwidthBytesPerSec > 0 && size > 0 {
		t += int64(float64(size) / c.BandwidthBytesPerSec * 1e9)
	}
	return t
}

// CrossRackTransferNs prices the same transfer when it leaves the rack: the
// intra-rack cost plus two extra switch traversals (source ToR uplink and
// destination ToR downlink) and the inter-rack hop premium.
func (c CostModel) CrossRackTransferNs(base int64, size int) int64 {
	return c.TransferNs(base, size) + 2*c.SwitchHopNs + c.InterRackHopNs
}

// Stats aggregates fabric traffic counters.
type Stats struct {
	Reads          uint64
	Writes         uint64
	Sends          uint64
	BytesRead      uint64
	BytesWritten   uint64
	BytesSent      uint64
	SimulatedNs    int64
	FailedOps      uint64
	CompletedPolls uint64
	// InterRackOps, InterRackBytes and InterRackNs account the subset of the
	// traffic that crossed a rack boundary (operations involving an uplink
	// device), so a fleet can tell local disaggregation from borrowed memory.
	InterRackOps   uint64
	InterRackBytes uint64
	InterRackNs    int64
}

// Fabric is the rack switch: it connects devices and accounts traffic.
type Fabric struct {
	mu      sync.Mutex
	model   CostModel
	devices map[string]*Device
	stats   Stats
	nextKey uint32
	nextQPN uint32
}

// NewFabric creates a fabric with the given cost model.
func NewFabric(model CostModel) *Fabric {
	return &Fabric{model: model, devices: make(map[string]*Device), nextKey: 1, nextQPN: 1}
}

// Model returns the fabric cost model.
func (f *Fabric) Model() CostModel { return f.model }

// Stats returns a snapshot of the traffic counters.
func (f *Fabric) Stats() Stats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.stats
}

// Device returns the named device, or nil.
func (f *Fabric) Device(name string) *Device {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.devices[name]
}

// Devices returns the number of attached devices.
func (f *Fabric) Devices() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.devices)
}

// AttachDevice creates and registers a device (one per host NIC).
func (f *Fabric) AttachDevice(name string) (*Device, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, ok := f.devices[name]; ok {
		return nil, fmt.Errorf("rdma: device %q already attached", name)
	}
	d := &Device{
		name:    name,
		fabric:  f,
		serving: true,
		up:      true,
		regions: make(map[uint32]*MemoryRegion),
	}
	f.devices[name] = d
	return d, nil
}

// AttachUplinkDevice creates and registers a device that represents a NIC in
// ANOTHER rack reaching this fabric through the datacenter spine. Every
// operation it initiates (or terminates) is priced with the inter-rack hop
// premium of the cost model and accounted in the InterRack* stats. The fleet
// layer attaches one uplink device per borrower rack to a lender rack's
// fabric to model cross-rack remote memory.
func (f *Fabric) AttachUplinkDevice(name string) (*Device, error) {
	d, err := f.AttachDevice(name)
	if err != nil {
		return nil, err
	}
	f.mu.Lock()
	d.interRack = true
	f.mu.Unlock()
	return d, nil
}

// InterRack reports whether the device reaches this fabric from another rack.
func (d *Device) InterRack() bool {
	d.fabric.mu.Lock()
	defer d.fabric.mu.Unlock()
	return d.interRack
}

// DetachDevice removes a device from the fabric (host removed from rack).
func (f *Fabric) DetachDevice(name string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	delete(f.devices, name)
}

func (f *Fabric) allocKey() uint32 {
	f.nextKey++
	return f.nextKey
}

func (f *Fabric) allocQPN() uint32 {
	f.nextQPN++
	return f.nextQPN
}

func (f *Fabric) addTime(ns int64) {
	f.stats.SimulatedNs += ns
}

// Device is an RDMA NIC attached to the fabric.
type Device struct {
	name   string
	fabric *Fabric

	// up models the NIC function: posting new work requires an up device.
	up bool
	// serving models the memory path: DRAM + memory controller + PCIe to the
	// NIC. A zombie host has up=false (its driver is suspended with the CPU)
	// but serving=true, so it can be the TARGET of one-sided verbs while it
	// cannot INITIATE them.
	serving bool
	// interRack marks an uplink device: a NIC that belongs to another rack
	// and reaches this fabric through the spine (see AttachUplinkDevice).
	interRack bool

	regions map[uint32]*MemoryRegion
}

// Name returns the device name.
func (d *Device) Name() string { return d.name }

// SetUp marks the NIC able (or unable) to initiate work requests.
func (d *Device) SetUp(up bool) {
	d.fabric.mu.Lock()
	defer d.fabric.mu.Unlock()
	d.up = up
}

// Up reports whether the NIC can initiate work.
func (d *Device) Up() bool {
	d.fabric.mu.Lock()
	defer d.fabric.mu.Unlock()
	return d.up
}

// SetServing marks the device's memory path able (or unable) to serve
// one-sided operations. The rack manager calls this on Sz enter/exit and S3
// enter (Sz keeps serving true, S3 sets it false).
func (d *Device) SetServing(serving bool) {
	d.fabric.mu.Lock()
	defer d.fabric.mu.Unlock()
	d.serving = serving
}

// Serving reports whether the memory path serves one-sided operations.
func (d *Device) Serving() bool {
	d.fabric.mu.Lock()
	defer d.fabric.mu.Unlock()
	return d.serving
}

// MemoryRegion is a registered buffer addressable by remote keys.
type MemoryRegion struct {
	device *Device
	lkey   uint32
	rkey   uint32
	buf    []byte
	// remoteWritable / remoteReadable carry the access flags.
	remoteReadable bool
	remoteWritable bool
}

// LKey returns the local key of the region.
func (m *MemoryRegion) LKey() uint32 { return m.lkey }

// RKey returns the remote key of the region.
func (m *MemoryRegion) RKey() uint32 { return m.rkey }

// Len returns the region size in bytes.
func (m *MemoryRegion) Len() int { return len(m.buf) }

// Bytes exposes the underlying buffer for local access (the owning host reads
// and writes its own memory directly).
func (m *MemoryRegion) Bytes() []byte { return m.buf }

// AccessFlags describe the remote permissions of a memory region.
type AccessFlags struct {
	RemoteRead  bool
	RemoteWrite bool
}

// RegisterMemory registers size bytes with the device and returns the region.
func (d *Device) RegisterMemory(size int, access AccessFlags) (*MemoryRegion, error) {
	if size <= 0 {
		return nil, fmt.Errorf("rdma: memory region size must be positive, got %d", size)
	}
	d.fabric.mu.Lock()
	defer d.fabric.mu.Unlock()
	mr := &MemoryRegion{
		device:         d,
		lkey:           d.fabric.allocKey(),
		rkey:           d.fabric.allocKey(),
		buf:            make([]byte, size),
		remoteReadable: access.RemoteRead,
		remoteWritable: access.RemoteWrite,
	}
	d.regions[mr.rkey] = mr
	return mr, nil
}

// DeregisterMemory removes a region; subsequent remote access fails.
func (d *Device) DeregisterMemory(mr *MemoryRegion) {
	d.fabric.mu.Lock()
	defer d.fabric.mu.Unlock()
	delete(d.regions, mr.rkey)
}

// Regions returns the number of registered regions.
func (d *Device) Regions() int {
	d.fabric.mu.Lock()
	defer d.fabric.mu.Unlock()
	return len(d.regions)
}

// lookupRegion finds a region by remote key (fabric lock held).
func (d *Device) lookupRegion(rkey uint32) (*MemoryRegion, bool) {
	mr, ok := d.regions[rkey]
	return mr, ok
}

// WorkCompletion is the result of a posted work request, delivered through a
// CompletionQueue.
type WorkCompletion struct {
	// WRID is the caller-chosen work request identifier.
	WRID uint64
	// Op names the verb ("READ", "WRITE", "SEND", "RECV").
	Op string
	// Status is nil on success.
	Status error
	// ByteLen is the payload size.
	ByteLen int
	// LatencyNs is the simulated completion latency.
	LatencyNs int64
	// Payload carries received data for RECV completions.
	Payload []byte
}

// CompletionQueue collects work completions for polling.
type CompletionQueue struct {
	mu      sync.Mutex
	entries []WorkCompletion
	polls   uint64
}

// NewCompletionQueue returns an empty completion queue.
func NewCompletionQueue() *CompletionQueue { return &CompletionQueue{} }

func (cq *CompletionQueue) push(wc WorkCompletion) {
	cq.mu.Lock()
	defer cq.mu.Unlock()
	cq.entries = append(cq.entries, wc)
}

// Poll removes and returns up to max completions. It models the polling
// clients of the paper's RPC layer.
func (cq *CompletionQueue) Poll(max int) []WorkCompletion {
	cq.mu.Lock()
	defer cq.mu.Unlock()
	cq.polls++
	if max <= 0 || max > len(cq.entries) {
		max = len(cq.entries)
	}
	out := cq.entries[:max]
	cq.entries = append([]WorkCompletion(nil), cq.entries[max:]...)
	return out
}

// Polls returns how many times the queue was polled.
func (cq *CompletionQueue) Polls() uint64 {
	cq.mu.Lock()
	defer cq.mu.Unlock()
	return cq.polls
}

// Depth returns the number of pending completions.
func (cq *CompletionQueue) Depth() int {
	cq.mu.Lock()
	defer cq.mu.Unlock()
	return len(cq.entries)
}
