package rdma

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"testing/quick"
)

func newTestFabric(t *testing.T) (*Fabric, *Device, *Device) {
	t.Helper()
	f := NewFabric(DefaultCostModel())
	a, err := f.AttachDevice("host-a")
	if err != nil {
		t.Fatal(err)
	}
	b, err := f.AttachDevice("host-b")
	if err != nil {
		t.Fatal(err)
	}
	return f, a, b
}

func connectedQP(t *testing.T, a, b *Device) (*QueuePair, *QueuePair, *CompletionQueue, *CompletionQueue) {
	t.Helper()
	cqA := NewCompletionQueue()
	cqB := NewCompletionQueue()
	qpA := a.CreateQueuePair(cqA)
	qpB := b.CreateQueuePair(cqB)
	if err := Connect(qpA, qpB); err != nil {
		t.Fatal(err)
	}
	return qpA, qpB, cqA, cqB
}

func TestAttachDetachDevice(t *testing.T) {
	f := NewFabric(DefaultCostModel())
	if _, err := f.AttachDevice("x"); err != nil {
		t.Fatal(err)
	}
	if _, err := f.AttachDevice("x"); err == nil {
		t.Fatal("duplicate device name must be rejected")
	}
	if f.Devices() != 1 {
		t.Fatalf("devices = %d, want 1", f.Devices())
	}
	if f.Device("x") == nil {
		t.Fatal("Device(x) should exist")
	}
	f.DetachDevice("x")
	if f.Device("x") != nil {
		t.Fatal("device should be gone after detach")
	}
}

func TestRegisterMemoryValidation(t *testing.T) {
	_, a, _ := newTestFabric(t)
	if _, err := a.RegisterMemory(0, AccessFlags{}); err == nil {
		t.Fatal("zero-size region must be rejected")
	}
	mr, err := a.RegisterMemory(4096, AccessFlags{RemoteRead: true})
	if err != nil {
		t.Fatal(err)
	}
	if mr.Len() != 4096 {
		t.Errorf("region length = %d, want 4096", mr.Len())
	}
	if mr.LKey() == mr.RKey() {
		t.Error("local and remote keys should differ")
	}
	if a.Regions() != 1 {
		t.Errorf("regions = %d, want 1", a.Regions())
	}
	a.DeregisterMemory(mr)
	if a.Regions() != 0 {
		t.Errorf("regions after deregister = %d, want 0", a.Regions())
	}
}

func TestOneSidedWriteRead(t *testing.T) {
	f, a, b := newTestFabric(t)
	qpA, _, cqA, _ := connectedQP(t, a, b)
	mr, err := b.RegisterMemory(1<<20, AccessFlags{RemoteRead: true, RemoteWrite: true})
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("zombie memory page contents")
	lat, err := qpA.Write(1, payload, mr.RKey(), 128)
	if err != nil {
		t.Fatalf("Write: %v", err)
	}
	if lat <= 0 {
		t.Error("write latency should be positive")
	}
	// The data must have landed in the remote buffer without any action on b.
	if !bytes.Equal(mr.Bytes()[128:128+len(payload)], payload) {
		t.Fatal("remote buffer does not contain written payload")
	}
	dst := make([]byte, len(payload))
	if _, err := qpA.Read(2, dst, mr.RKey(), 128, len(payload)); err != nil {
		t.Fatalf("Read: %v", err)
	}
	if !bytes.Equal(dst, payload) {
		t.Fatal("read back different data")
	}
	st := f.Stats()
	if st.Reads != 1 || st.Writes != 1 {
		t.Errorf("stats reads/writes = %d/%d, want 1/1", st.Reads, st.Writes)
	}
	if st.BytesWritten != uint64(len(payload)) || st.BytesRead != uint64(len(payload)) {
		t.Errorf("byte counters wrong: %+v", st)
	}
	// Completions delivered to the initiator's CQ.
	wcs := cqA.Poll(10)
	if len(wcs) != 2 {
		t.Fatalf("expected 2 completions, got %d", len(wcs))
	}
	for _, wc := range wcs {
		if wc.Status != nil {
			t.Errorf("completion %s failed: %v", wc.Op, wc.Status)
		}
	}
}

func TestOneSidedVerbsAgainstZombieTarget(t *testing.T) {
	// The defining behaviour: a zombie host has its NIC initiator function
	// down (CPU suspended) but its memory path serving. One-sided verbs from
	// an active host still work; two-sided SENDs do not.
	_, a, b := newTestFabric(t)
	qpA, qpB, _, _ := connectedQP(t, a, b)
	mr, _ := b.RegisterMemory(4096, AccessFlags{RemoteRead: true, RemoteWrite: true})

	// Push b into "zombie": initiator down, memory path serving.
	b.SetUp(false)
	b.SetServing(true)

	if _, err := qpA.Write(1, []byte("x"), mr.RKey(), 0); err != nil {
		t.Fatalf("one-sided write to zombie must work: %v", err)
	}
	dst := make([]byte, 1)
	if _, err := qpA.Read(2, dst, mr.RKey(), 0, 1); err != nil {
		t.Fatalf("one-sided read from zombie must work: %v", err)
	}
	qpB.PostRecv(1, 64)
	if _, err := qpA.Send(3, []byte("hello")); !errors.Is(err, ErrDeviceDown) {
		t.Fatalf("two-sided send to zombie should fail with ErrDeviceDown, got %v", err)
	}
	// The zombie cannot initiate anything.
	if _, err := qpB.Write(4, []byte("y"), mr.RKey(), 0); !errors.Is(err, ErrDeviceDown) {
		t.Fatalf("zombie-initiated write should fail, got %v", err)
	}
}

func TestOneSidedVerbsAgainstS3Target(t *testing.T) {
	// An S3 host preserves memory but cannot serve it remotely.
	_, a, b := newTestFabric(t)
	qpA, _, _, _ := connectedQP(t, a, b)
	mr, _ := b.RegisterMemory(4096, AccessFlags{RemoteRead: true, RemoteWrite: true})
	b.SetUp(false)
	b.SetServing(false)
	if _, err := qpA.Write(1, []byte("x"), mr.RKey(), 0); !errors.Is(err, ErrRemoteNotServing) {
		t.Fatalf("write to S3 host should fail with ErrRemoteNotServing, got %v", err)
	}
	f := a.fabric.Stats()
	if f.FailedOps == 0 {
		t.Error("failed op should be counted")
	}
}

func TestAccessControl(t *testing.T) {
	_, a, b := newTestFabric(t)
	qpA, _, _, _ := connectedQP(t, a, b)
	roRegion, _ := b.RegisterMemory(4096, AccessFlags{RemoteRead: true})
	if _, err := qpA.Write(1, []byte("x"), roRegion.RKey(), 0); !errors.Is(err, ErrInvalidKey) {
		t.Fatalf("write to read-only region should fail, got %v", err)
	}
	dst := make([]byte, 8)
	if _, err := qpA.Read(2, dst, 0xdeadbeef, 0, 8); !errors.Is(err, ErrInvalidKey) {
		t.Fatalf("read with bogus rkey should fail, got %v", err)
	}
	rw, _ := b.RegisterMemory(64, AccessFlags{RemoteRead: true, RemoteWrite: true})
	if _, err := qpA.Read(3, make([]byte, 128), rw.RKey(), 32, 64); !errors.Is(err, ErrOutOfBounds) {
		t.Fatalf("out-of-bounds read should fail, got %v", err)
	}
	if _, err := qpA.Write(4, make([]byte, 65), rw.RKey(), 0); !errors.Is(err, ErrOutOfBounds) {
		t.Fatalf("out-of-bounds write should fail, got %v", err)
	}
	if _, err := qpA.Read(5, make([]byte, 4), rw.RKey(), 0, 8); err == nil {
		t.Fatal("read longer than destination must fail")
	}
}

func TestUnconnectedQueuePair(t *testing.T) {
	_, a, b := newTestFabric(t)
	cq := NewCompletionQueue()
	qp := a.CreateQueuePair(cq)
	mr, _ := b.RegisterMemory(64, AccessFlags{RemoteRead: true, RemoteWrite: true})
	if _, err := qp.Write(1, []byte("x"), mr.RKey(), 0); !errors.Is(err, ErrQPNotConnected) {
		t.Fatalf("unconnected QP write should fail, got %v", err)
	}
	if qp.Connected() {
		t.Error("QP should not report connected")
	}
}

func TestConnectValidation(t *testing.T) {
	_, a, b := newTestFabric(t)
	qpA, _, _, _ := connectedQP(t, a, b)
	other := a.CreateQueuePair(NewCompletionQueue())
	if err := Connect(qpA, other); err == nil {
		t.Fatal("reconnecting an already-connected QP must fail")
	}
	if err := Connect(nil, other); err == nil {
		t.Fatal("nil QP must be rejected")
	}
	f2 := NewFabric(DefaultCostModel())
	c, _ := f2.AttachDevice("other-fabric")
	qpC := c.CreateQueuePair(NewCompletionQueue())
	qpD := a.CreateQueuePair(NewCompletionQueue())
	if err := Connect(qpD, qpC); err == nil {
		t.Fatal("cross-fabric connect must fail")
	}
}

func TestSendRecv(t *testing.T) {
	_, a, b := newTestFabric(t)
	qpA, qpB, _, cqB := connectedQP(t, a, b)
	qpB.PostRecv(77, 128)
	lat, err := qpA.Send(1, []byte("control message"))
	if err != nil {
		t.Fatalf("Send: %v", err)
	}
	if lat <= 0 {
		t.Error("send latency should be positive")
	}
	wcs := cqB.Poll(10)
	if len(wcs) != 1 {
		t.Fatalf("receiver should have 1 completion, got %d", len(wcs))
	}
	if wcs[0].WRID != 77 || wcs[0].Op != "RECV" {
		t.Errorf("unexpected completion %+v", wcs[0])
	}
	if string(wcs[0].Payload) != "control message" {
		t.Errorf("payload = %q", wcs[0].Payload)
	}
	// Without a posted receive the send fails.
	if _, err := qpA.Send(2, []byte("again")); !errors.Is(err, ErrNoReceivePosted) {
		t.Fatalf("send without posted recv should fail, got %v", err)
	}
	// Oversized payload fails.
	qpB.PostRecv(78, 4)
	if _, err := qpA.Send(3, []byte("way too large for the posted buffer")); err == nil {
		t.Fatal("oversized send should fail")
	}
}

func TestCostModelScalesWithSize(t *testing.T) {
	m := DefaultCostModel()
	small := m.TransferNs(m.OneSidedLatencyNs, 64)
	large := m.TransferNs(m.OneSidedLatencyNs, 4<<20)
	if large <= small {
		t.Error("large transfers must take longer than small ones")
	}
	// A 4 KiB page over 56 Gb/s should take on the order of a microsecond of
	// serialization on top of the base latency.
	page := m.TransferNs(m.OneSidedLatencyNs, 4096)
	if page < m.OneSidedLatencyNs || page > m.OneSidedLatencyNs+100_000 {
		t.Errorf("4 KiB transfer latency %d ns looks wrong", page)
	}
	// Two-sided costs more than one-sided for the same size.
	if m.TransferNs(m.TwoSidedLatencyNs, 4096) <= m.TransferNs(m.OneSidedLatencyNs, 4096) {
		t.Error("two-sided ops must cost more than one-sided ops")
	}
}

func TestCompletionQueuePolling(t *testing.T) {
	cq := NewCompletionQueue()
	for i := 0; i < 5; i++ {
		cq.push(WorkCompletion{WRID: uint64(i)})
	}
	if cq.Depth() != 5 {
		t.Fatalf("depth = %d, want 5", cq.Depth())
	}
	first := cq.Poll(2)
	if len(first) != 2 || first[0].WRID != 0 || first[1].WRID != 1 {
		t.Fatalf("unexpected first poll %+v", first)
	}
	rest := cq.Poll(0) // 0 means "all"
	if len(rest) != 3 {
		t.Fatalf("unexpected rest %+v", rest)
	}
	if cq.Depth() != 0 {
		t.Error("queue should be drained")
	}
	if cq.Polls() != 2 {
		t.Errorf("polls = %d, want 2", cq.Polls())
	}
}

func TestRPCCall(t *testing.T) {
	f, a, b := newTestFabric(t)
	srv := NewRPCServer("global-mem-ctr", a)
	type allocReq struct {
		MemSize int `json:"memSize"`
	}
	type allocResp struct {
		Buffers []int `json:"buffers"`
	}
	srv.Handle("GS_alloc_ext", func(args []byte) ([]byte, error) {
		return []byte(`{"buffers":[1,2,3]}`), nil
	})
	srv.Handle("GS_fail", func(args []byte) ([]byte, error) {
		return nil, fmt.Errorf("no memory available")
	})

	cli, err := NewRPCClient("server-A", b, srv)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	var resp allocResp
	lat, err := cli.Call("GS_alloc_ext", allocReq{MemSize: 1 << 30}, &resp)
	if err != nil {
		t.Fatalf("Call: %v", err)
	}
	if lat <= 0 {
		t.Error("rpc latency should be positive")
	}
	if len(resp.Buffers) != 3 {
		t.Errorf("buffers = %v, want 3 entries", resp.Buffers)
	}
	if srv.Calls() != 1 || cli.Calls() != 1 {
		t.Errorf("call counters srv=%d cli=%d, want 1/1", srv.Calls(), cli.Calls())
	}
	if cli.MeanLatencyNs() <= 0 {
		t.Error("mean latency should be positive")
	}

	// Handler error propagates.
	if _, err := cli.Call("GS_fail", nil, nil); err == nil {
		t.Fatal("handler error should propagate")
	}
	// Unknown method.
	if _, err := cli.Call("GS_unknown", nil, nil); err == nil {
		t.Fatal("unknown method should fail")
	}
	// The RPC path uses one-sided writes under the hood.
	if f.Stats().Writes < 2 {
		t.Errorf("expected at least 2 one-sided writes, got %d", f.Stats().Writes)
	}
}

func TestRPCClientValidation(t *testing.T) {
	_, a, _ := newTestFabric(t)
	srv := NewRPCServer("ctr", a)
	if _, err := NewRPCClient("c", nil, srv); err == nil {
		t.Fatal("nil device must be rejected")
	}
	f2 := NewFabric(DefaultCostModel())
	other, _ := f2.AttachDevice("elsewhere")
	if _, err := NewRPCClient("c", other, srv); err == nil {
		t.Fatal("cross-fabric client must be rejected")
	}
}

func TestRPCToSuspendedServerFails(t *testing.T) {
	// If the controller host is fully suspended (not serving), clients cannot
	// even deliver requests; the secondary controller must take over.
	_, a, b := newTestFabric(t)
	srv := NewRPCServer("ctr", a)
	srv.Handle("ping", func([]byte) ([]byte, error) { return []byte(`"pong"`), nil })
	cli, err := NewRPCClient("c", b, srv)
	if err != nil {
		t.Fatal(err)
	}
	a.SetServing(false)
	a.SetUp(false)
	if _, err := cli.Call("ping", nil, nil); err == nil {
		t.Fatal("rpc to a dead controller should fail")
	}
}

// Property: data written through the fabric is always read back identically,
// for arbitrary payloads and offsets within bounds.
func TestPropertyWriteReadRoundTrip(t *testing.T) {
	f := NewFabric(DefaultCostModel())
	a, _ := f.AttachDevice("a")
	b, _ := f.AttachDevice("b")
	cq := NewCompletionQueue()
	qp := a.CreateQueuePair(cq)
	qpB := b.CreateQueuePair(NewCompletionQueue())
	if err := Connect(qp, qpB); err != nil {
		t.Fatal(err)
	}
	const regionSize = 1 << 16
	mr, _ := b.RegisterMemory(regionSize, AccessFlags{RemoteRead: true, RemoteWrite: true})

	prop := func(data []byte, off uint16) bool {
		if len(data) == 0 {
			return true
		}
		offset := int(off) % (regionSize - len(data))
		if offset < 0 {
			offset = 0
		}
		if _, err := qp.Write(1, data, mr.RKey(), offset); err != nil {
			return false
		}
		back := make([]byte, len(data))
		if _, err := qp.Read(2, back, mr.RKey(), offset, len(data)); err != nil {
			return false
		}
		return bytes.Equal(data, back)
	}
	cfg := &quick.Config{MaxCount: 50}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

// Property: the simulated transfer time is monotonically non-decreasing in
// payload size.
func TestPropertyTransferMonotonic(t *testing.T) {
	m := DefaultCostModel()
	f := func(a, b uint16) bool {
		x, y := int(a), int(b)
		if x > y {
			x, y = y, x
		}
		return m.TransferNs(m.OneSidedLatencyNs, x) <= m.TransferNs(m.OneSidedLatencyNs, y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
