package rdma

import (
	"fmt"
)

// QueuePair is a reliable-connected queue pair between two devices. Work is
// posted on the local side; completions are delivered to the associated
// CompletionQueue. One-sided verbs (Read, Write) never involve the remote
// CPU: they only require the remote device's memory path to be serving.
type QueuePair struct {
	qpn    uint32
	local  *Device
	remote *Device
	cq     *CompletionQueue

	// recvQueue holds posted receive work requests on THIS side, consumed by
	// SENDs from the peer.
	recvQueue []recvWR

	connected bool
	peer      *QueuePair
}

type recvWR struct {
	wrID uint64
	buf  []byte
}

// CreateQueuePair creates a queue pair on the device, bound to the completion
// queue. It must be connected with Connect before use.
func (d *Device) CreateQueuePair(cq *CompletionQueue) *QueuePair {
	d.fabric.mu.Lock()
	defer d.fabric.mu.Unlock()
	return &QueuePair{qpn: d.fabric.allocQPN(), local: d, cq: cq}
}

// QPN returns the queue pair number.
func (qp *QueuePair) QPN() uint32 { return qp.qpn }

// Connect pairs two queue pairs (the out-of-band connection establishment a
// real deployment does through a connection manager).
func Connect(a, b *QueuePair) error {
	if a == nil || b == nil {
		return fmt.Errorf("rdma: cannot connect nil queue pairs")
	}
	if a.connected || b.connected {
		return fmt.Errorf("rdma: queue pair already connected")
	}
	if a.local.fabric != b.local.fabric {
		return fmt.Errorf("rdma: queue pairs belong to different fabrics")
	}
	a.remote, b.remote = b.local, a.local
	a.peer, b.peer = b, a
	a.connected, b.connected = true, true
	return nil
}

// Connected reports whether the queue pair has a peer.
func (qp *QueuePair) Connected() bool { return qp.connected }

// LocalDevice returns the device the queue pair was created on.
func (qp *QueuePair) LocalDevice() *Device { return qp.local }

// RemoteDevice returns the peer device, or nil if not connected.
func (qp *QueuePair) RemoteDevice() *Device { return qp.remote }

// checkInitiator validates that this side may initiate a verb.
func (qp *QueuePair) checkInitiator() error {
	if !qp.connected {
		return ErrQPNotConnected
	}
	f := qp.local.fabric
	f.mu.Lock()
	up := qp.local.up
	f.mu.Unlock()
	if !up {
		return ErrDeviceDown
	}
	return nil
}

// Read performs a one-sided RDMA READ: copy length bytes starting at
// remoteOffset of the remote region identified by rkey into dst. The remote
// CPU is not involved; only the remote memory path must be serving. The
// returned latency is the simulated completion time, also pushed to the CQ.
func (qp *QueuePair) Read(wrID uint64, dst []byte, rkey uint32, remoteOffset, length int) (int64, error) {
	if length > len(dst) {
		return 0, fmt.Errorf("rdma: read length %d exceeds destination buffer %d", length, len(dst))
	}
	if err := qp.checkInitiator(); err != nil {
		return 0, qp.fail(wrID, "READ", err)
	}
	f := qp.local.fabric
	f.mu.Lock()
	defer f.mu.Unlock()
	if !qp.remote.serving {
		return 0, qp.failLocked(wrID, "READ", ErrRemoteNotServing)
	}
	mr, ok := qp.remote.lookupRegion(rkey)
	if !ok || !mr.remoteReadable {
		return 0, qp.failLocked(wrID, "READ", ErrInvalidKey)
	}
	if remoteOffset < 0 || remoteOffset+length > len(mr.buf) {
		return 0, qp.failLocked(wrID, "READ", ErrOutOfBounds)
	}
	copy(dst[:length], mr.buf[remoteOffset:remoteOffset+length])
	lat := qp.transferNsLocked(f.model.OneSidedLatencyNs, length)
	f.stats.Reads++
	f.stats.BytesRead += uint64(length)
	f.addTime(lat)
	qp.cq.push(WorkCompletion{WRID: wrID, Op: "READ", ByteLen: length, LatencyNs: lat})
	return lat, nil
}

// Write performs a one-sided RDMA WRITE: copy src into the remote region at
// remoteOffset. Like Read, it does not involve the remote CPU.
func (qp *QueuePair) Write(wrID uint64, src []byte, rkey uint32, remoteOffset int) (int64, error) {
	if err := qp.checkInitiator(); err != nil {
		return 0, qp.fail(wrID, "WRITE", err)
	}
	f := qp.local.fabric
	f.mu.Lock()
	defer f.mu.Unlock()
	if !qp.remote.serving {
		return 0, qp.failLocked(wrID, "WRITE", ErrRemoteNotServing)
	}
	mr, ok := qp.remote.lookupRegion(rkey)
	if !ok || !mr.remoteWritable {
		return 0, qp.failLocked(wrID, "WRITE", ErrInvalidKey)
	}
	if remoteOffset < 0 || remoteOffset+len(src) > len(mr.buf) {
		return 0, qp.failLocked(wrID, "WRITE", ErrOutOfBounds)
	}
	copy(mr.buf[remoteOffset:remoteOffset+len(src)], src)
	lat := qp.transferNsLocked(f.model.OneSidedLatencyNs, len(src))
	f.stats.Writes++
	f.stats.BytesWritten += uint64(len(src))
	f.addTime(lat)
	qp.cq.push(WorkCompletion{WRID: wrID, Op: "WRITE", ByteLen: len(src), LatencyNs: lat})
	return lat, nil
}

// PostRecv posts a receive work request that a peer SEND will consume. The
// buffer bounds the acceptable message size.
func (qp *QueuePair) PostRecv(wrID uint64, size int) {
	qp.recvQueue = append(qp.recvQueue, recvWR{wrID: wrID, buf: make([]byte, size)})
}

// Send performs a two-sided SEND to the peer, consuming one of its posted
// receives. Unlike the one-sided verbs it requires the remote NIC to be up
// (the remote CPU must eventually reap the completion), so it cannot target a
// zombie server.
func (qp *QueuePair) Send(wrID uint64, payload []byte) (int64, error) {
	if err := qp.checkInitiator(); err != nil {
		return 0, qp.fail(wrID, "SEND", err)
	}
	f := qp.local.fabric
	f.mu.Lock()
	defer f.mu.Unlock()
	if !qp.remote.up {
		return 0, qp.failLocked(wrID, "SEND", ErrDeviceDown)
	}
	peer := qp.peer
	if len(peer.recvQueue) == 0 {
		return 0, qp.failLocked(wrID, "SEND", ErrNoReceivePosted)
	}
	rwr := peer.recvQueue[0]
	peer.recvQueue = peer.recvQueue[1:]
	if len(payload) > len(rwr.buf) {
		return 0, qp.failLocked(wrID, "SEND", fmt.Errorf("rdma: payload %d exceeds posted receive %d", len(payload), len(rwr.buf)))
	}
	n := copy(rwr.buf, payload)
	lat := qp.transferNsLocked(f.model.TwoSidedLatencyNs, len(payload))
	f.stats.Sends++
	f.stats.BytesSent += uint64(len(payload))
	f.addTime(lat)
	qp.cq.push(WorkCompletion{WRID: wrID, Op: "SEND", ByteLen: len(payload), LatencyNs: lat})
	peer.cq.push(WorkCompletion{WRID: rwr.wrID, Op: "RECV", ByteLen: n, LatencyNs: lat, Payload: rwr.buf[:n]})
	return lat, nil
}

// transferNsLocked prices one transfer on this queue pair with the fabric
// lock held. A queue pair with an uplink endpoint crosses the rack boundary,
// so its operations pay the inter-rack premium and are accounted separately.
func (qp *QueuePair) transferNsLocked(base int64, size int) int64 {
	f := qp.local.fabric
	if !qp.local.interRack && !qp.remote.interRack {
		return f.model.TransferNs(base, size)
	}
	lat := f.model.CrossRackTransferNs(base, size)
	f.stats.InterRackOps++
	f.stats.InterRackBytes += uint64(size)
	f.stats.InterRackNs += lat
	return lat
}

// fail records a failed work request (taking the fabric lock).
func (qp *QueuePair) fail(wrID uint64, op string, err error) error {
	f := qp.local.fabric
	f.mu.Lock()
	defer f.mu.Unlock()
	return qp.failLocked(wrID, op, err)
}

// failLocked records a failed work request with the fabric lock held.
func (qp *QueuePair) failLocked(wrID uint64, op string, err error) error {
	qp.local.fabric.stats.FailedOps++
	qp.cq.push(WorkCompletion{WRID: wrID, Op: op, Status: err})
	return err
}
