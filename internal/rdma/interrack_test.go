package rdma

import "testing"

func TestCrossRackTransferPremium(t *testing.T) {
	m := DefaultCostModel()
	intra := m.TransferNs(m.OneSidedLatencyNs, 4096)
	cross := m.CrossRackTransferNs(m.OneSidedLatencyNs, 4096)
	if want := intra + 2*m.SwitchHopNs + m.InterRackHopNs; cross != want {
		t.Fatalf("cross-rack transfer = %d ns, want %d", cross, want)
	}
	if cross <= intra {
		t.Fatalf("cross-rack transfer %d must be dearer than intra-rack %d", cross, intra)
	}
}

func TestUplinkDevicePaysInterRackPremium(t *testing.T) {
	f := NewFabric(DefaultCostModel())
	host, err := f.AttachDevice("server-00")
	if err != nil {
		t.Fatal(err)
	}
	uplink, err := f.AttachUplinkDevice("uplink:rack-01")
	if err != nil {
		t.Fatal(err)
	}
	if !uplink.InterRack() || host.InterRack() {
		t.Fatal("uplink flag misplaced")
	}

	mr, err := host.RegisterMemory(1<<12, AccessFlags{RemoteRead: true, RemoteWrite: true})
	if err != nil {
		t.Fatal(err)
	}
	qpU := uplink.CreateQueuePair(NewCompletionQueue())
	qpH := host.CreateQueuePair(NewCompletionQueue())
	if err := Connect(qpU, qpH); err != nil {
		t.Fatal(err)
	}

	payload := make([]byte, 1024)
	m := f.Model()
	lat, err := qpU.Write(1, payload, mr.RKey(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if want := m.CrossRackTransferNs(m.OneSidedLatencyNs, len(payload)); lat != want {
		t.Fatalf("uplink write latency = %d, want cross-rack %d", lat, want)
	}
	if _, err := qpU.Read(2, payload, mr.RKey(), 0, len(payload)); err != nil {
		t.Fatal(err)
	}

	st := f.Stats()
	if st.InterRackOps != 2 {
		t.Fatalf("InterRackOps = %d, want 2", st.InterRackOps)
	}
	if st.InterRackBytes != 2048 {
		t.Fatalf("InterRackBytes = %d, want 2048", st.InterRackBytes)
	}
	if min := int64(st.InterRackOps) * m.InterRackHopNs; st.InterRackNs < min {
		t.Fatalf("InterRackNs = %d, want at least %d", st.InterRackNs, min)
	}

	// Intra-rack traffic between two ordinary devices stays premium-free.
	other, err := f.AttachDevice("server-01")
	if err != nil {
		t.Fatal(err)
	}
	qpO := other.CreateQueuePair(NewCompletionQueue())
	qpH2 := host.CreateQueuePair(NewCompletionQueue())
	if err := Connect(qpO, qpH2); err != nil {
		t.Fatal(err)
	}
	lat, err = qpO.Write(3, payload, mr.RKey(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if want := m.TransferNs(m.OneSidedLatencyNs, len(payload)); lat != want {
		t.Fatalf("intra-rack write latency = %d, want %d", lat, want)
	}
	if st := f.Stats(); st.InterRackOps != 2 {
		t.Fatalf("intra-rack op must not bump InterRackOps (got %d)", st.InterRackOps)
	}
}
