package rdma

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"sync"
)

// This file implements the paper's "RPC over RDMA" communication framework
// (Section 4.1). Requests are written into a request region on the server
// with a one-sided WRITE; the server daemon processes them and writes the
// response into a per-client response region; the client polls its response
// region for the result, because RDMA inbound operations are cheaper than
// outbound operations.

// HandlerFunc processes a decoded request payload and returns a response
// payload or an error.
type HandlerFunc func(args []byte) ([]byte, error)

// RPCServer is the daemon side of RPC over RDMA. It must run on an active
// (S0) host: it owns registered request slots, and its CPU executes handlers.
type RPCServer struct {
	mu       sync.Mutex
	name     string
	device   *Device
	handlers map[string]HandlerFunc

	calls     uint64
	callBytes uint64
}

// NewRPCServer creates an RPC server bound to the device.
func NewRPCServer(name string, device *Device) *RPCServer {
	return &RPCServer{name: name, device: device, handlers: make(map[string]HandlerFunc)}
}

// Handle registers a handler for the given method name.
func (s *RPCServer) Handle(method string, fn HandlerFunc) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.handlers[method] = fn
}

// Calls returns the number of requests served.
func (s *RPCServer) Calls() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.calls
}

// Device returns the NIC the server is bound to.
func (s *RPCServer) Device() *Device { return s.device }

// dispatch executes a method; used by RPCClient.Call after the request bytes
// have been "delivered" through the fabric.
func (s *RPCServer) dispatch(method string, args []byte) ([]byte, error) {
	s.mu.Lock()
	fn, ok := s.handlers[method]
	s.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("rdma: rpc server %q has no handler for %q", s.name, method)
	}
	s.mu.Lock()
	s.calls++
	s.callBytes += uint64(len(args))
	s.mu.Unlock()
	return fn(args)
}

// RPCClient is the agent side: it owns a request/response channel to one
// server over a connected queue pair.
type RPCClient struct {
	name   string
	device *Device
	server *RPCServer

	qp       *QueuePair
	cq       *CompletionQueue
	reqMR    *MemoryRegion // request slot registered on the server device
	respMR   *MemoryRegion // response slot registered on the client device
	serverQP *QueuePair

	nextWR   uint64
	totalLat int64
	calls    uint64
}

// requestSlotSize bounds a single RPC message (requests and responses are
// small control messages; bulk data moves through one-sided verbs directly).
const requestSlotSize = 64 << 10

// NewRPCClient wires a client on clientDev to the server: it registers the
// request slot on the server's device, the response slot on the client's
// device and connects a queue pair between the two.
func NewRPCClient(name string, clientDev *Device, server *RPCServer) (*RPCClient, error) {
	if clientDev == nil || server == nil || server.device == nil {
		return nil, fmt.Errorf("rdma: rpc client needs a device and a server")
	}
	if clientDev.fabric != server.device.fabric {
		return nil, fmt.Errorf("rdma: client and server are on different fabrics")
	}
	reqMR, err := server.device.RegisterMemory(requestSlotSize, AccessFlags{RemoteRead: true, RemoteWrite: true})
	if err != nil {
		return nil, err
	}
	respMR, err := clientDev.RegisterMemory(requestSlotSize, AccessFlags{RemoteRead: true, RemoteWrite: true})
	if err != nil {
		return nil, err
	}
	cq := NewCompletionQueue()
	qp := clientDev.CreateQueuePair(cq)
	serverCQ := NewCompletionQueue()
	serverQP := server.device.CreateQueuePair(serverCQ)
	if err := Connect(qp, serverQP); err != nil {
		return nil, err
	}
	return &RPCClient{
		name:     name,
		device:   clientDev,
		server:   server,
		qp:       qp,
		cq:       cq,
		reqMR:    reqMR,
		respMR:   respMR,
		serverQP: serverQP,
	}, nil
}

// envelope is the wire format of a request or response.
type envelope struct {
	Method string          `json:"method"`
	Error  string          `json:"error,omitempty"`
	Body   json.RawMessage `json:"body,omitempty"`
}

// Call invokes method on the server with args (JSON-encodable), decoding the
// response into reply (a pointer) when non-nil. It returns the simulated
// round-trip latency. The call path is: one-sided WRITE of the request into
// the server's request slot, server CPU dispatch, one-sided WRITE of the
// response into the client's response slot, client CQ poll.
func (c *RPCClient) Call(method string, args interface{}, reply interface{}) (int64, error) {
	body, err := json.Marshal(args)
	if err != nil {
		return 0, fmt.Errorf("rdma: marshal rpc args: %w", err)
	}
	req, err := json.Marshal(envelope{Method: method, Body: body})
	if err != nil {
		return 0, err
	}
	if len(req)+4 > requestSlotSize {
		return 0, fmt.Errorf("rdma: rpc request of %d bytes exceeds the %d-byte slot", len(req), requestSlotSize)
	}

	// 1. Write the request into the server's request slot (length-prefixed).
	framed := make([]byte, 4+len(req))
	binary.LittleEndian.PutUint32(framed, uint32(len(req)))
	copy(framed[4:], req)
	c.nextWR++
	lat1, err := c.qp.Write(c.nextWR, framed, c.reqMR.RKey(), 0)
	if err != nil {
		return 0, fmt.Errorf("rdma: rpc request write: %w", err)
	}

	// 2. The server daemon picks up the request and dispatches it.
	respBody, dispatchErr := c.server.dispatch(method, body)
	respEnv := envelope{Method: method}
	if dispatchErr != nil {
		respEnv.Error = dispatchErr.Error()
	} else {
		respEnv.Body = respBody
	}
	resp, err := json.Marshal(respEnv)
	if err != nil {
		return 0, err
	}

	// 3. The server writes the response into the client's response slot.
	//    (The server initiates this on its own QP end.)
	framedResp := make([]byte, 4+len(resp))
	binary.LittleEndian.PutUint32(framedResp, uint32(len(resp)))
	copy(framedResp[4:], resp)
	c.nextWR++
	lat2, err := c.serverQP.Write(c.nextWR, framedResp, c.respMR.RKey(), 0)
	if err != nil {
		return 0, fmt.Errorf("rdma: rpc response write: %w", err)
	}

	// 4. The client polls its completion queue / response slot.
	pollCost := c.device.fabric.Model().PollCostNs
	c.cq.Poll(16)
	c.device.fabric.mu.Lock()
	c.device.fabric.stats.CompletedPolls++
	c.device.fabric.mu.Unlock()

	total := lat1 + lat2 + pollCost
	c.totalLat += total
	c.calls++

	if dispatchErr != nil {
		return total, dispatchErr
	}
	if reply != nil && len(respEnv.Body) > 0 {
		if err := json.Unmarshal(respEnv.Body, reply); err != nil {
			return total, fmt.Errorf("rdma: unmarshal rpc reply: %w", err)
		}
	}
	return total, nil
}

// Calls returns the number of completed calls.
func (c *RPCClient) Calls() uint64 { return c.calls }

// MeanLatencyNs returns the mean simulated round-trip latency.
func (c *RPCClient) MeanLatencyNs() int64 {
	if c.calls == 0 {
		return 0
	}
	return c.totalLat / int64(c.calls)
}

// Close releases the client's registered regions.
func (c *RPCClient) Close() {
	c.server.device.DeregisterMemory(c.reqMR)
	c.device.DeregisterMemory(c.respMR)
}
