// Package metrics provides small statistics and table-rendering helpers shared
// by the benchmark harnesses, the cmd tools and the examples.
//
// Everything here is deterministic and allocation-light; the package exists so
// that experiment output (the rows and series the paper reports) is formatted
// uniformly across the repository.
package metrics
