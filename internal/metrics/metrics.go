package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Summary holds basic descriptive statistics for a sample.
type Summary struct {
	Count  int
	Mean   float64
	StdDev float64
	Min    float64
	Max    float64
	P50    float64
	P90    float64
	P99    float64
}

// Summarize computes descriptive statistics for the sample. A nil or empty
// sample yields a zero Summary.
func Summarize(sample []float64) Summary {
	if len(sample) == 0 {
		return Summary{}
	}
	s := Summary{Count: len(sample), Min: math.Inf(1), Max: math.Inf(-1)}
	var sum float64
	for _, v := range sample {
		sum += v
		if v < s.Min {
			s.Min = v
		}
		if v > s.Max {
			s.Max = v
		}
	}
	s.Mean = sum / float64(len(sample))
	var ss float64
	for _, v := range sample {
		d := v - s.Mean
		ss += d * d
	}
	if len(sample) > 1 {
		s.StdDev = math.Sqrt(ss / float64(len(sample)-1))
	}
	sorted := append([]float64(nil), sample...)
	sort.Float64s(sorted)
	s.P50 = Percentile(sorted, 0.50)
	s.P90 = Percentile(sorted, 0.90)
	s.P99 = Percentile(sorted, 0.99)
	return s
}

// Percentile returns the p-th percentile (0 <= p <= 1) of an already sorted
// sample using linear interpolation between closest ranks.
func Percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 1 {
		return sorted[len(sorted)-1]
	}
	rank := p * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// NearestRank returns the q-th percentile (q in percent; q=100 is the max)
// of an already sorted int64 series using the nearest-rank method: the
// smallest element with at least q% of the sample at or below it. Unlike
// Percentile it never interpolates, so the result is always an observed
// value — the convention the latency reports (membench, fleetload) share.
func NearestRank(sorted []int64, q int) int64 {
	if len(sorted) == 0 {
		return 0
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 100 {
		return sorted[len(sorted)-1]
	}
	idx := (len(sorted)*q+99)/100 - 1 // ceil(q/100 * n) - 1
	if idx < 0 {
		idx = 0
	}
	return sorted[idx]
}

// Mean returns the arithmetic mean of the sample (0 for an empty sample).
func Mean(sample []float64) float64 {
	if len(sample) == 0 {
		return 0
	}
	var sum float64
	for _, v := range sample {
		sum += v
	}
	return sum / float64(len(sample))
}

// GeoMean returns the geometric mean of the sample. Non-positive values are
// skipped; an empty (or all-skipped) sample yields 0.
func GeoMean(sample []float64) float64 {
	var logSum float64
	n := 0
	for _, v := range sample {
		if v <= 0 {
			continue
		}
		logSum += math.Log(v)
		n++
	}
	if n == 0 {
		return 0
	}
	return math.Exp(logSum / float64(n))
}

// RelativeChange returns (b-a)/a expressed as a percentage, i.e. how much
// larger b is than a. It returns +Inf when a is zero and b is positive.
func RelativeChange(a, b float64) float64 {
	if a == 0 {
		if b == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return (b - a) / a * 100
}

// Table renders aligned textual tables used by the cmd tools to print the
// paper's tables and figure series.
type Table struct {
	title   string
	headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{title: title, headers: headers}
}

// AddRow appends a row. Cells beyond the header count are kept; short rows are
// padded with empty cells when rendering.
func (t *Table) AddRow(cells ...string) {
	t.rows = append(t.rows, cells)
}

// AddRowf appends a row formatting every cell with fmt.Sprint.
func (t *Table) AddRowf(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = FormatFloat(v)
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	t.rows = append(t.rows, row)
}

// NumRows returns the number of data rows added so far.
func (t *Table) NumRows() int { return len(t.rows) }

// String renders the table with aligned columns.
func (t *Table) String() string {
	cols := len(t.headers)
	for _, r := range t.rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	widths := make([]int, cols)
	for i, h := range t.headers {
		if len(h) > widths[i] {
			widths[i] = len(h)
		}
	}
	for _, r := range t.rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.title != "" {
		b.WriteString(t.title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i := 0; i < cols; i++ {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			fmt.Fprintf(&b, "%-*s", widths[i]+2, c)
		}
		b.WriteByte('\n')
	}
	if len(t.headers) > 0 {
		writeRow(t.headers)
		sep := make([]string, len(t.headers))
		for i, w := range widths[:len(t.headers)] {
			sep[i] = strings.Repeat("-", w)
		}
		writeRow(sep)
	}
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

// FormatFloat renders a float compactly: integers without decimals, large
// values with one decimal, small values with three significant decimals, and
// infinities as the symbol the paper uses.
func FormatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "inf"
	case math.IsInf(v, -1):
		return "-inf"
	case math.IsNaN(v):
		return "NaN"
	case v == math.Trunc(v) && math.Abs(v) < 1e9:
		return fmt.Sprintf("%.0f", v)
	case math.Abs(v) >= 100:
		return fmt.Sprintf("%.1f", v)
	case math.Abs(v) >= 1:
		return fmt.Sprintf("%.2f", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

// FormatPercent renders v (already in percent units) with a trailing %.
func FormatPercent(v float64) string {
	if math.IsInf(v, 1) {
		return "inf"
	}
	return FormatFloat(v) + "%"
}

// Series is a named (x, y) series used when regenerating the paper's figures.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Add appends an (x, y) point to the series.
func (s *Series) Add(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// Len returns the number of points in the series.
func (s *Series) Len() int { return len(s.X) }

// RenderSeries renders one or more series that share an x axis as a table with
// an "x" column followed by one column per series.
func RenderSeries(title, xLabel string, series ...*Series) string {
	headers := append([]string{xLabel}, make([]string, len(series))...)
	for i, s := range series {
		headers[i+1] = s.Name
	}
	t := NewTable(title, headers...)
	n := 0
	for _, s := range series {
		if s.Len() > n {
			n = s.Len()
		}
	}
	for i := 0; i < n; i++ {
		row := make([]string, len(series)+1)
		for j, s := range series {
			if i < s.Len() {
				if j == 0 {
					row[0] = FormatFloat(s.X[i])
				}
				row[j+1] = FormatFloat(s.Y[i])
			}
		}
		t.AddRow(row...)
	}
	return t.String()
}

// Counter is a simple monotonic counter used for bookkeeping in simulators.
type Counter struct {
	n uint64
}

// Inc increments the counter by one and returns the new value.
func (c *Counter) Inc() uint64 {
	c.n++
	return c.n
}

// Add increments the counter by delta and returns the new value.
func (c *Counter) Add(delta uint64) uint64 {
	c.n += delta
	return c.n
}

// Value returns the current counter value.
func (c *Counter) Value() uint64 { return c.n }

// Histogram is a fixed-bucket histogram for latency-style values.
type Histogram struct {
	bounds []float64 // upper bound of each bucket, ascending
	counts []uint64
	total  uint64
	sum    float64
}

// NewHistogram builds a histogram with the provided ascending bucket upper
// bounds; values above the last bound land in an implicit overflow bucket.
func NewHistogram(bounds ...float64) *Histogram {
	sorted := append([]float64(nil), bounds...)
	sort.Float64s(sorted)
	return &Histogram{bounds: sorted, counts: make([]uint64, len(sorted)+1)}
}

// Observe records a value.
func (h *Histogram) Observe(v float64) {
	idx := sort.SearchFloat64s(h.bounds, v)
	h.counts[idx]++
	h.total++
	h.sum += v
}

// Count returns the number of observed values.
func (h *Histogram) Count() uint64 { return h.total }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return h.sum }

// Mean returns the mean of observed values (0 when empty).
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	return h.sum / float64(h.total)
}

// Buckets returns a copy of the bucket upper bounds and counts (the final
// count is the overflow bucket).
func (h *Histogram) Buckets() ([]float64, []uint64) {
	return append([]float64(nil), h.bounds...), append([]uint64(nil), h.counts...)
}
