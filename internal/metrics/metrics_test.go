package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.Count != 0 || s.Mean != 0 || s.StdDev != 0 {
		t.Fatalf("expected zero summary, got %+v", s)
	}
}

func TestSummarizeBasic(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.Count != 5 {
		t.Fatalf("count = %d, want 5", s.Count)
	}
	if s.Mean != 3 {
		t.Fatalf("mean = %v, want 3", s.Mean)
	}
	if s.Min != 1 || s.Max != 5 {
		t.Fatalf("min/max = %v/%v, want 1/5", s.Min, s.Max)
	}
	if math.Abs(s.StdDev-math.Sqrt(2.5)) > 1e-9 {
		t.Fatalf("stddev = %v, want %v", s.StdDev, math.Sqrt(2.5))
	}
	if s.P50 != 3 {
		t.Fatalf("p50 = %v, want 3", s.P50)
	}
}

func TestPercentileEdges(t *testing.T) {
	sorted := []float64{10, 20, 30, 40}
	if got := Percentile(sorted, 0); got != 10 {
		t.Errorf("p0 = %v, want 10", got)
	}
	if got := Percentile(sorted, 1); got != 40 {
		t.Errorf("p100 = %v, want 40", got)
	}
	if got := Percentile(sorted, 0.5); got != 25 {
		t.Errorf("p50 = %v, want 25", got)
	}
	if got := Percentile(nil, 0.5); got != 0 {
		t.Errorf("empty percentile = %v, want 0", got)
	}
}

func TestNearestRank(t *testing.T) {
	sorted := []int64{10, 20, 30, 40}
	cases := []struct {
		q    int
		want int64
	}{
		{0, 10}, {-5, 10}, // clamped to the minimum
		{25, 10},             // ceil(0.25*4)-1 = 0
		{50, 20},             // ceil(0.50*4)-1 = 1
		{51, 30},             // ceil(0.51*4)-1 = 2: the next observed value, no interpolation
		{99, 40},             // ceil(0.99*4)-1 = 3
		{100, 40}, {150, 40}, // clamped to the maximum
	}
	for _, tc := range cases {
		if got := NearestRank(sorted, tc.q); got != tc.want {
			t.Errorf("NearestRank(q=%d) = %d, want %d", tc.q, got, tc.want)
		}
	}
	if got := NearestRank(nil, 50); got != 0 {
		t.Errorf("empty NearestRank = %d, want 0", got)
	}
	if got := NearestRank([]int64{7}, 99); got != 7 {
		t.Errorf("singleton NearestRank = %d, want 7", got)
	}
}

func TestPercentileWithinRangeProperty(t *testing.T) {
	f := func(raw []float64, p float64) bool {
		sample := raw[:0]
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				sample = append(sample, v)
			}
		}
		if len(sample) == 0 {
			return true
		}
		s := Summarize(sample)
		pp := math.Abs(math.Mod(p, 1))
		sorted := append([]float64(nil), sample...)
		sortFloats(sorted)
		v := Percentile(sorted, pp)
		return v >= s.Min-1e-9 && v <= s.Max+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func sortFloats(v []float64) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j] < v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
}

func TestMeanAndGeoMean(t *testing.T) {
	if got := Mean([]float64{2, 4, 6}); got != 4 {
		t.Errorf("Mean = %v, want 4", got)
	}
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %v, want 0", got)
	}
	if got := GeoMean([]float64{1, 100}); math.Abs(got-10) > 1e-9 {
		t.Errorf("GeoMean = %v, want 10", got)
	}
	if got := GeoMean([]float64{-1, 0}); got != 0 {
		t.Errorf("GeoMean of non-positives = %v, want 0", got)
	}
}

func TestRelativeChange(t *testing.T) {
	if got := RelativeChange(100, 150); got != 50 {
		t.Errorf("RelativeChange = %v, want 50", got)
	}
	if got := RelativeChange(0, 5); !math.IsInf(got, 1) {
		t.Errorf("RelativeChange(0,5) = %v, want +Inf", got)
	}
	if got := RelativeChange(0, 0); got != 0 {
		t.Errorf("RelativeChange(0,0) = %v, want 0", got)
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("Title", "a", "bbbb")
	tb.AddRow("1", "2")
	tb.AddRowf(3.5, "x")
	out := tb.String()
	if !strings.Contains(out, "Title") {
		t.Errorf("missing title in %q", out)
	}
	if !strings.Contains(out, "bbbb") {
		t.Errorf("missing header in %q", out)
	}
	if !strings.Contains(out, "3.50") {
		t.Errorf("missing formatted float in %q", out)
	}
	if tb.NumRows() != 2 {
		t.Errorf("NumRows = %d, want 2", tb.NumRows())
	}
}

func TestFormatFloat(t *testing.T) {
	cases := map[float64]string{
		3:      "3",
		3.14:   "3.14",
		0.1234: "0.123",
		123.45: "123.5",
	}
	for in, want := range cases {
		if got := FormatFloat(in); got != want {
			t.Errorf("FormatFloat(%v) = %q, want %q", in, got, want)
		}
	}
	if got := FormatFloat(math.Inf(1)); got != "inf" {
		t.Errorf("FormatFloat(+Inf) = %q", got)
	}
	if got := FormatPercent(math.Inf(1)); got != "inf" {
		t.Errorf("FormatPercent(+Inf) = %q", got)
	}
	if got := FormatPercent(12.5); got != "12.50%" {
		t.Errorf("FormatPercent(12.5) = %q", got)
	}
}

func TestSeriesAndRender(t *testing.T) {
	s1 := &Series{Name: "native"}
	s2 := &Series{Name: "zombie"}
	for i := 0; i < 4; i++ {
		s1.Add(float64(i*20), float64(10+i))
		s2.Add(float64(i*20), float64(5+i))
	}
	if s1.Len() != 4 {
		t.Fatalf("series len = %d, want 4", s1.Len())
	}
	out := RenderSeries("fig", "wss", s1, s2)
	if !strings.Contains(out, "native") || !strings.Contains(out, "zombie") {
		t.Errorf("series names missing in %q", out)
	}
	lines := strings.Count(out, "\n")
	if lines < 6 {
		t.Errorf("expected at least 6 lines, got %d:\n%s", lines, out)
	}
}

func TestCounter(t *testing.T) {
	var c Counter
	if c.Inc() != 1 || c.Add(4) != 5 || c.Value() != 5 {
		t.Fatalf("counter sequence wrong: %v", c.Value())
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(10, 100, 1000)
	for _, v := range []float64{5, 50, 500, 5000} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Fatalf("count = %d, want 4", h.Count())
	}
	if h.Sum() != 5555 {
		t.Fatalf("sum = %v, want 5555", h.Sum())
	}
	if math.Abs(h.Mean()-1388.75) > 1e-9 {
		t.Fatalf("mean = %v", h.Mean())
	}
	bounds, counts := h.Buckets()
	if len(bounds) != 3 || len(counts) != 4 {
		t.Fatalf("buckets shape wrong: %v %v", bounds, counts)
	}
	for _, c := range counts {
		if c != 1 {
			t.Fatalf("each bucket should hold one observation: %v", counts)
		}
	}
}

func TestHistogramEmptyMean(t *testing.T) {
	h := NewHistogram(1)
	if h.Mean() != 0 {
		t.Fatalf("empty histogram mean = %v, want 0", h.Mean())
	}
}
