package vm

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestNewAndValidate(t *testing.T) {
	v := New("v1", 7<<30, 6<<30)
	if err := v.Validate(); err != nil {
		t.Fatal(err)
	}
	if v.VCPUs != 8 {
		t.Errorf("default vCPUs = %d, want 8 (the paper's configuration)", v.VCPUs)
	}
	if v.EffectivePageSize() != DefaultPageSize {
		t.Errorf("page size = %d, want %d", v.EffectivePageSize(), DefaultPageSize)
	}
}

func TestValidateRejectsBadVMs(t *testing.T) {
	bad := []VM{
		{},
		{ID: "x", ReservedBytes: 0},
		{ID: "x", ReservedBytes: 100, WSSBytes: 200, VCPUs: 1},
		{ID: "x", ReservedBytes: 100, WSSBytes: 50, VCPUs: 0},
		{ID: "x", ReservedBytes: 100, WSSBytes: 50, VCPUs: 1, PageSize: 3000},
	}
	for i, v := range bad {
		if err := v.Validate(); err == nil {
			t.Errorf("case %d should be invalid: %+v", i, v)
		}
	}
}

func TestPageMath(t *testing.T) {
	v := New("v", 7<<30, 6<<30)
	if got := v.ReservedPages(); got != (7<<30)/4096 {
		t.Errorf("ReservedPages = %d", got)
	}
	if got := v.WSSPages(); got != (6<<30)/4096 {
		t.Errorf("WSSPages = %d", got)
	}
	if got := v.WSSRatio(); got < 0.85 || got > 0.86 {
		t.Errorf("WSSRatio = %v, want ~6/7", got)
	}
	// Rounding up for non-multiple sizes.
	odd := New("odd", 4097, 4097)
	if odd.ReservedPages() != 2 {
		t.Errorf("ReservedPages(4097) = %d, want 2", odd.ReservedPages())
	}
}

func TestLocalPagesFor(t *testing.T) {
	v := New("v", 1<<20, 1<<20) // 256 pages
	if got := v.LocalPagesFor(0); got != 0 {
		t.Errorf("LocalPagesFor(0) = %d", got)
	}
	if got := v.LocalPagesFor(512 << 10); got != 128 {
		t.Errorf("LocalPagesFor(half) = %d, want 128", got)
	}
	if got := v.LocalPagesFor(8 << 20); got != 256 {
		t.Errorf("LocalPagesFor(more than reserved) = %d, want capped at 256", got)
	}
	if got := v.LocalPagesFor(-5); got != 0 {
		t.Errorf("LocalPagesFor(negative) = %d, want 0", got)
	}
}

func TestString(t *testing.T) {
	v := New("web", 2<<30, 1<<30)
	s := v.String()
	if !strings.Contains(s, "web") || !strings.Contains(s, "2048") {
		t.Errorf("String() = %q", s)
	}
}

// Property: local pages never exceed reserved pages and grow monotonically
// with the local byte budget.
func TestPropertyLocalPagesMonotonic(t *testing.T) {
	v := New("v", 64<<20, 32<<20)
	f := func(a, b uint32) bool {
		x, y := int64(a), int64(b)
		if x > y {
			x, y = y, x
		}
		px, py := v.LocalPagesFor(x), v.LocalPagesFor(y)
		return px <= py && py <= v.ReservedPages()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWSSRatioZeroReservation(t *testing.T) {
	var v VM
	if v.WSSRatio() != 0 {
		t.Error("zero reservation should yield zero ratio")
	}
}
