package vm

import "fmt"

// DefaultPageSize is the guest page size (4 KiB, as in the paper's
// micro-benchmark where each array entry represents a 4 KiB page).
const DefaultPageSize = 4096

// VM describes a virtual machine.
type VM struct {
	// ID is the VM's name.
	ID string
	// ReservedBytes is the memory reserved for the VM at creation
	// (VMMemSize in Section 4.5).
	ReservedBytes int64
	// WSSBytes is the VM's working set size.
	WSSBytes int64
	// VCPUs is the number of virtual processors (the paper's VMs use 8).
	VCPUs int
	// PageSize is the guest page size; DefaultPageSize when zero.
	PageSize int
}

// New returns a VM with the given reservation and working set, 8 vCPUs and
// the default page size.
func New(id string, reservedBytes, wssBytes int64) VM {
	return VM{ID: id, ReservedBytes: reservedBytes, WSSBytes: wssBytes, VCPUs: 8, PageSize: DefaultPageSize}
}

// Validate checks the descriptor for consistency.
func (v VM) Validate() error {
	if v.ID == "" {
		return fmt.Errorf("vm: needs an ID")
	}
	if v.ReservedBytes <= 0 {
		return fmt.Errorf("vm %s: reserved memory must be positive", v.ID)
	}
	if v.WSSBytes < 0 || v.WSSBytes > v.ReservedBytes {
		return fmt.Errorf("vm %s: working set %d outside [0,%d]", v.ID, v.WSSBytes, v.ReservedBytes)
	}
	if v.VCPUs <= 0 {
		return fmt.Errorf("vm %s: needs at least one vCPU", v.ID)
	}
	if v.PageSize != 0 && v.PageSize&(v.PageSize-1) != 0 {
		return fmt.Errorf("vm %s: page size %d is not a power of two", v.ID, v.PageSize)
	}
	return nil
}

// EffectivePageSize returns the page size, defaulting to DefaultPageSize.
func (v VM) EffectivePageSize() int {
	if v.PageSize > 0 {
		return v.PageSize
	}
	return DefaultPageSize
}

// ReservedPages returns the number of guest pages covering the reservation.
func (v VM) ReservedPages() int {
	ps := int64(v.EffectivePageSize())
	return int((v.ReservedBytes + ps - 1) / ps)
}

// WSSPages returns the number of guest pages covering the working set.
func (v VM) WSSPages() int {
	ps := int64(v.EffectivePageSize())
	return int((v.WSSBytes + ps - 1) / ps)
}

// WSSRatio returns WSS / reserved memory (0..1).
func (v VM) WSSRatio() float64 {
	if v.ReservedBytes == 0 {
		return 0
	}
	return float64(v.WSSBytes) / float64(v.ReservedBytes)
}

// LocalPagesFor returns how many of the VM's reserved pages fit in localBytes
// of host memory (capped at the reservation).
func (v VM) LocalPagesFor(localBytes int64) int {
	if localBytes <= 0 {
		return 0
	}
	ps := int64(v.EffectivePageSize())
	n := int(localBytes / ps)
	if max := v.ReservedPages(); n > max {
		n = max
	}
	return n
}

// String renders a compact description.
func (v VM) String() string {
	return fmt.Sprintf("%s(mem=%dMiB wss=%dMiB vcpus=%d)", v.ID, v.ReservedBytes>>20, v.WSSBytes>>20, v.VCPUs)
}
