// Package vm defines virtual machine descriptors: the reserved memory, the
// working set size, the vCPU count and the page-granularity helpers the
// hypervisor and the workload generators share.
package vm
