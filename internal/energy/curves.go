package energy

import (
	"fmt"
	"math"

	"repro/internal/acpi"
)

// UtilizationPoint is one point of the Figure 1 curve: the energy drawn by a
// server at the given utilization, as a fraction of Emax, for both the actual
// (non-proportional) server and the ideal energy-proportional server.
type UtilizationPoint struct {
	Utilization float64 // 0..1
	Actual      float64 // fraction of Emax, actual server
	Ideal       float64 // fraction of Emax, ideal energy-proportional server
}

// UtilizationCurve reproduces Figure 1 for a machine profile: the solid
// "actual" line with its high idle floor versus the dashed ideal
// energy-proportional line, sampled at the given number of points from 0 to
// 100% utilization.
func UtilizationCurve(m *MachineProfile, points int) []UtilizationPoint {
	if points < 2 {
		points = 2
	}
	out := make([]UtilizationPoint, points)
	for i := 0; i < points; i++ {
		u := float64(i) / float64(points-1)
		out[i] = UtilizationPoint{
			Utilization: u,
			Actual:      m.PowerFraction(acpi.S0, u),
			Ideal:       u,
		}
	}
	return out
}

// SleepStateLadder returns the Figure 1 annotations: the power floor of each
// sleep state (S0 idle, S3, S4, S5 and Sz) for a machine, as fractions of
// Emax, in descending power order.
func SleepStateLadder(m *MachineProfile) map[string]float64 {
	m.EstimateSz()
	return map[string]float64{
		"S0idle": m.Measured[S0WithIBOff],
		"Sz":     m.Measured[SzEstimated],
		"S3":     m.Measured[S3WithIB],
		"S4":     m.Measured[S4WithIB],
		"S5":     m.Measured[S4WithoutIB],
	}
}

// ProportionalityGap quantifies how far a machine is from ideal energy
// proportionality: the mean over utilization of (actual - ideal), in fractions
// of Emax. Zero means perfectly proportional.
func ProportionalityGap(m *MachineProfile, points int) float64 {
	curve := UtilizationCurve(m, points)
	var sum float64
	for _, p := range curve {
		sum += p.Actual - p.Ideal
	}
	return sum / float64(len(curve))
}

// RackArchitecture identifies one of the four rack organisations compared in
// Figure 4.
type RackArchitecture int

// The four architectures of Figure 4.
const (
	ServerCentric        RackArchitecture = iota // (a) classic servers, unused memory stranded
	IdealDisaggregation                          // (b) every resource on its own board
	MicroServers                                 // (c) many small {CPU,mem} nodes sharing net/disk
	ZombieDisaggregation                         // (d) the paper's proposal: Sz servers lend memory
)

// String names the architecture.
func (r RackArchitecture) String() string {
	switch r {
	case ServerCentric:
		return "server-centric"
	case IdealDisaggregation:
		return "ideal-disaggregation"
	case MicroServers:
		return "micro-servers"
	case ZombieDisaggregation:
		return "zombie"
	default:
		return fmt.Sprintf("RackArchitecture(%d)", int(r))
	}
}

// AllArchitectures lists the four architectures in the paper's order.
func AllArchitectures() []RackArchitecture {
	return []RackArchitecture{ServerCentric, IdealDisaggregation, MicroServers, ZombieDisaggregation}
}

// RackScenario is the Figure 4 thought experiment: a rack of three servers
// whose aggregate demand needs roughly one server's CPU and two servers'
// memory. The estimate returns the total rack energy in units of Emax.
type RackScenario struct {
	// Servers in the rack.
	Servers int
	// CPUDemandServers is the aggregate CPU demand expressed in whole servers.
	CPUDemandServers float64
	// MemDemandServers is the aggregate memory demand expressed in whole servers.
	MemDemandServers float64
	// Profile supplies the power fractions; Figure 4 uses rough approximations,
	// which DefaultRackScenario reproduces with a generic profile.
	Profile *MachineProfile
}

// DefaultRackScenario returns the paper's three-server scenario with the
// generic fractions the paper uses for its guidance figures.
func DefaultRackScenario() RackScenario {
	generic := &MachineProfile{
		Name:          "generic",
		MaxPowerWatts: 200,
		IdleFraction:  0.55,
		Measured: map[Config]float64{
			S0WithoutIB: 0.55,
			S0WithIBOff: 0.55,
			S0WithIBOn:  0.57,
			S3WithoutIB: 0.05,
			S3WithIB:    0.10,
			S4WithoutIB: 0.01,
			S4WithIB:    0.05,
		},
	}
	generic.EstimateSz()
	return RackScenario{
		Servers:          3,
		CPUDemandServers: 1.0,
		MemDemandServers: 2.0,
		Profile:          generic,
	}
}

// Energy estimates the total rack energy (in units of Emax) for the given
// architecture, reproducing the per-architecture reasoning of Figure 4:
//
//   - server-centric: memory demand forces ceil(MemDemand) servers to stay in
//     S0 even though their CPUs are mostly idle;
//   - ideal disaggregation: CPU boards sized to CPU demand, memory boards sized
//     to memory demand, idle boards off (memory boards cost a small fraction);
//   - micro-servers: same coupling problem as server-centric, slightly cheaper
//     nodes because network/storage are shared;
//   - zombie: ceil(CPUDemand) servers in S0, the servers holding the remaining
//     memory demand in Sz, the rest suspended to S3.
func (s RackScenario) Energy(arch RackArchitecture) float64 {
	p := s.Profile
	p.EstimateSz()
	cpuServers := math.Ceil(s.CPUDemandServers)
	memServers := math.Ceil(s.MemDemandServers)
	active := math.Max(cpuServers, memServers)
	if active > float64(s.Servers) {
		active = float64(s.Servers)
	}

	// The utilization of each active server when demand is spread across them.
	activeUtil := 0.0
	if active > 0 {
		activeUtil = s.CPUDemandServers / active
	}

	switch arch {
	case ServerCentric:
		// The multidimensional packing problem (memory saturates before CPU)
		// prevents consolidation below the full rack: every server stays in S0
		// at low CPU utilization. With three servers this reproduces the
		// paper's ~2.1 Emax guidance figure.
		rackUtil := s.CPUDemandServers / float64(s.Servers)
		return float64(s.Servers) * p.PowerFraction(acpi.S0, rackUtil)
	case IdealDisaggregation:
		// CPU boards sized to CPU demand (a CPU board draws ~85% of a full
		// server because it carries no DRAM), memory boards at ~15% of a
		// server's power per memory-server-equivalent; idle boards are off.
		const (
			cpuBoardFraction = 0.85
			memBoardFraction = 0.15
		)
		e := s.CPUDemandServers * cpuBoardFraction * p.PowerFraction(acpi.S0, 1.0)
		e += s.MemDemandServers * memBoardFraction
		return e
	case MicroServers:
		// Twice as many nodes, each half as big; memory demand still pins
		// 2*MemDemand micro-nodes on, each at ~45% of a full server's power.
		const microNodeFraction = 0.45
		nodes := float64(s.Servers) * 2
		neededNodes := math.Ceil(s.MemDemandServers * 2)
		if neededNodes > nodes {
			neededNodes = nodes
		}
		e := neededNodes * microNodeFraction * p.PowerFraction(acpi.S0, activeUtil) / p.PowerFraction(acpi.S0, 0.5)
		e += (nodes - neededNodes) * microNodeFraction * p.PowerFraction(acpi.S3, 0)
		return e
	case ZombieDisaggregation:
		// CPU demand pins ceil(CPUDemand) servers in S0 at high utilization;
		// the extra memory demand is served by zombie servers in Sz; any
		// remaining server sleeps in S3.
		s0Servers := cpuServers
		if s0Servers > float64(s.Servers) {
			s0Servers = float64(s.Servers)
		}
		extraMem := s.MemDemandServers - s0Servers
		if extraMem < 0 {
			extraMem = 0
		}
		szServers := math.Ceil(extraMem)
		if s0Servers+szServers > float64(s.Servers) {
			szServers = float64(s.Servers) - s0Servers
		}
		sleepServers := float64(s.Servers) - s0Servers - szServers
		util := s.CPUDemandServers / s0Servers
		e := s0Servers * p.PowerFraction(acpi.S0, util)
		e += szServers * p.PowerFraction(acpi.Sz, 0)
		e += sleepServers * p.PowerFraction(acpi.S3, 0)
		return e
	default:
		return 0
	}
}

// Figure4 returns the rack energy of every architecture for the scenario, in
// the paper's presentation order. The paper's rough guidance values are
// 2.1, 1.15, 1.8 and 1.2 Emax respectively; the model reproduces the ordering
// and approximate ratios.
func (s RackScenario) Figure4() map[RackArchitecture]float64 {
	out := make(map[RackArchitecture]float64, 4)
	for _, a := range AllArchitectures() {
		out[a] = s.Energy(a)
	}
	return out
}

// TrendPoint is one (year, ratio) sample of the motivation figures.
type TrendPoint struct {
	Year  int
	Ratio float64
}

// AWSDemandTrend reproduces Figure 2: the memory (GiB) : CPU (GHz) ratio of
// the AWS m<n>.<size> instance family over 2006-2016. The values trace the
// published instance specifications (m1 through m4 generations); the relevant
// property is the roughly 2x growth of memory demand relative to CPU demand.
func AWSDemandTrend() []TrendPoint {
	return []TrendPoint{
		{2006, 1.7}, // m1.small: 1.7 GiB / 1 ECU
		{2007, 1.9},
		{2008, 1.9}, // m1.large/xlarge keep the ratio
		{2009, 2.0},
		{2010, 2.2},
		{2011, 2.4}, // m2 high-memory generation pulls the family up
		{2012, 2.8}, // m3 generation
		{2013, 3.0},
		{2014, 3.4},
		{2015, 3.7}, // m4 generation
		{2016, 4.0},
	}
}

// ServerSupplyTrend reproduces Figure 3: the normalized memory : CPU capacity
// ratio of successive server generations 2005-2013, which declines as core
// counts outgrow DIMM capacity (roughly -30% every two years per the paper).
func ServerSupplyTrend() []TrendPoint {
	return []TrendPoint{
		{2005, 1.00},
		{2006, 0.95},
		{2007, 0.82},
		{2008, 0.70},
		{2009, 0.62},
		{2010, 0.52},
		{2011, 0.45},
		{2012, 0.38},
		{2013, 0.33},
	}
}

// TrendGrowthFactor returns last/first ratio of a trend, a convenience for
// tests and the motivation tooling ("memory demand grew ~2x faster than CPU").
func TrendGrowthFactor(trend []TrendPoint) float64 {
	if len(trend) < 2 || trend[0].Ratio == 0 {
		return 0
	}
	return trend[len(trend)-1].Ratio / trend[0].Ratio
}
