package energy

import (
	"sync"
	"testing"

	"repro/internal/acpi"
)

// TestPowerFractionConcurrentSz evaluates the lazily-estimated Sz state from
// many goroutines on a freshly built profile (no precomputed SzEstimated
// entry): PowerFraction must stay read-only, or -race fails this test. The
// parallel datacenter simulator relies on this.
func TestPowerFractionConcurrentSz(t *testing.T) {
	for _, m := range []*MachineProfile{HPProfile(), DellProfile()} {
		want := m.szEstimate()
		var wg sync.WaitGroup
		for i := 0; i < 8; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for j := 0; j < 100; j++ {
					if got := m.PowerFraction(acpi.Sz, 0); got != want {
						t.Errorf("%s: concurrent PowerFraction(Sz) = %v, want %v", m.Name, got, want)
						return
					}
				}
			}()
		}
		wg.Wait()
	}
}
