package energy

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/acpi"
)

func TestProfilesValidate(t *testing.T) {
	for _, p := range Profiles() {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
}

func TestTable3SzEstimate(t *testing.T) {
	// The paper's Table 3 reports Sz = 12.67% for HP and 11.15% for Dell.
	hp := HPProfile()
	dell := DellProfile()
	if got := hp.EstimateSz() * 100; math.Abs(got-12.67) > 0.05 {
		t.Errorf("HP Sz estimate = %.2f%%, paper reports 12.67%%", got)
	}
	if got := dell.EstimateSz() * 100; math.Abs(got-11.15) > 0.05 {
		t.Errorf("Dell Sz estimate = %.2f%%, paper reports 11.15%%", got)
	}
}

func TestSzBetweenS3AndS0(t *testing.T) {
	// Sz must cost more than S3 (it keeps DRAM+NIC in active idle) but far
	// less than an idle S0 server — that is the whole point of the state.
	for _, p := range Profiles() {
		sz := p.PowerFraction(acpi.Sz, 0)
		s3 := p.PowerFraction(acpi.S3, 0)
		s0idle := p.PowerFraction(acpi.S0, 0)
		if sz <= s3 {
			t.Errorf("%s: Sz (%.4f) should cost more than S3 (%.4f)", p.Name, sz, s3)
		}
		if sz >= s0idle/2 {
			t.Errorf("%s: Sz (%.4f) should be well below idle S0 (%.4f)", p.Name, sz, s0idle)
		}
	}
}

func TestTable3RowOrderAndValues(t *testing.T) {
	hp := HPProfile()
	row := hp.Table3Row()
	if len(row) != len(AllConfigs()) {
		t.Fatalf("row has %d entries, want %d", len(row), len(AllConfigs()))
	}
	// First column is S0WOIB = 46.16, last is the Sz estimate.
	if math.Abs(row[0]-46.16) > 0.01 {
		t.Errorf("row[0] = %.2f, want 46.16", row[0])
	}
	if math.Abs(row[len(row)-1]-12.67) > 0.05 {
		t.Errorf("Sz column = %.2f, want ~12.67", row[len(row)-1])
	}
}

func TestProfileByName(t *testing.T) {
	if _, err := ProfileByName("HP"); err != nil {
		t.Error(err)
	}
	if _, err := ProfileByName("Dell"); err != nil {
		t.Error(err)
	}
	if _, err := ProfileByName("IBM"); err == nil {
		t.Error("expected error for unknown profile")
	}
}

func TestPowerFractionMonotonicInUtilization(t *testing.T) {
	hp := HPProfile()
	prev := -1.0
	for u := 0.0; u <= 1.0; u += 0.05 {
		v := hp.PowerFraction(acpi.S0, u)
		if v < prev {
			t.Fatalf("power not monotonic at u=%.2f: %v < %v", u, v, prev)
		}
		prev = v
	}
	if got := hp.PowerFraction(acpi.S0, 1.0); math.Abs(got-1.0) > 1e-9 {
		t.Errorf("full utilization should draw Emax, got %v", got)
	}
	// Clamping.
	if hp.PowerFraction(acpi.S0, -0.5) != hp.PowerFraction(acpi.S0, 0) {
		t.Error("negative utilization should clamp to 0")
	}
	if hp.PowerFraction(acpi.S0, 1.5) != hp.PowerFraction(acpi.S0, 1) {
		t.Error("utilization > 1 should clamp to 1")
	}
}

func TestPowerWatts(t *testing.T) {
	hp := HPProfile()
	if got := hp.PowerWatts(acpi.S0, 1.0); math.Abs(got-hp.MaxPowerWatts) > 1e-9 {
		t.Errorf("PowerWatts at full load = %v, want %v", got, hp.MaxPowerWatts)
	}
}

func TestStateLadderOrdering(t *testing.T) {
	// S0idle > Sz > S3 > S4 > S5 for both machines (Table 3 + Figure 1).
	for _, p := range Profiles() {
		l := SleepStateLadder(p)
		if !(l["S0idle"] > l["Sz"] && l["Sz"] > l["S3"] && l["S3"] > l["S4"]) {
			t.Errorf("%s ladder out of order: %+v", p.Name, l)
		}
	}
}

func TestUtilizationCurveShape(t *testing.T) {
	hp := HPProfile()
	curve := UtilizationCurve(hp, 11)
	if len(curve) != 11 {
		t.Fatalf("curve has %d points, want 11", len(curve))
	}
	if curve[0].Utilization != 0 || curve[len(curve)-1].Utilization != 1 {
		t.Error("curve should span 0..1")
	}
	for _, pt := range curve {
		if pt.Actual < pt.Ideal-1e-9 {
			t.Errorf("actual power (%v) below ideal (%v) at u=%v — real servers are never better than proportional",
				pt.Actual, pt.Ideal, pt.Utilization)
		}
	}
	// The gap is biggest at low utilization (Figure 1's whole point).
	gapLow := curve[1].Actual - curve[1].Ideal
	gapHigh := curve[len(curve)-2].Actual - curve[len(curve)-2].Ideal
	if gapLow <= gapHigh {
		t.Errorf("proportionality gap should shrink with utilization: low=%v high=%v", gapLow, gapHigh)
	}
	if ProportionalityGap(hp, 50) <= 0 {
		t.Error("proportionality gap must be positive for a real server")
	}
	if got := UtilizationCurve(hp, 1); len(got) != 2 {
		t.Errorf("degenerate point count should clamp to 2, got %d", len(got))
	}
}

func TestFigure4Ordering(t *testing.T) {
	s := DefaultRackScenario()
	fig := s.Figure4()
	// Paper's guidance: server-centric 2.1, micro-servers 1.8, zombie 1.2,
	// ideal 1.15 (in Emax units). Check the ordering and rough magnitudes.
	if !(fig[ServerCentric] > fig[MicroServers]) {
		t.Errorf("server-centric (%v) should cost more than micro-servers (%v)", fig[ServerCentric], fig[MicroServers])
	}
	if !(fig[MicroServers] > fig[ZombieDisaggregation]) {
		t.Errorf("micro-servers (%v) should cost more than zombie (%v)", fig[MicroServers], fig[ZombieDisaggregation])
	}
	if !(fig[ZombieDisaggregation] >= fig[IdealDisaggregation]) {
		t.Errorf("zombie (%v) should not beat ideal disaggregation (%v)", fig[ZombieDisaggregation], fig[IdealDisaggregation])
	}
	// Zombie should be within ~15% of ideal (1.2 vs 1.15 in the paper).
	if fig[ZombieDisaggregation] > fig[IdealDisaggregation]*1.25 {
		t.Errorf("zombie (%v) should be close to ideal (%v)", fig[ZombieDisaggregation], fig[IdealDisaggregation])
	}
	// Rough absolute bands in Emax units.
	if fig[ServerCentric] < 1.6 || fig[ServerCentric] > 2.6 {
		t.Errorf("server-centric energy %v outside the expected ~2.1 Emax band", fig[ServerCentric])
	}
	if fig[ZombieDisaggregation] < 0.9 || fig[ZombieDisaggregation] > 1.6 {
		t.Errorf("zombie energy %v outside the expected ~1.2 Emax band", fig[ZombieDisaggregation])
	}
}

func TestArchitectureStrings(t *testing.T) {
	for _, a := range AllArchitectures() {
		if a.String() == "" {
			t.Errorf("architecture %d has no name", int(a))
		}
	}
	if RackArchitecture(99).String() == "" {
		t.Error("unknown architecture should still render")
	}
}

func TestTrends(t *testing.T) {
	demand := AWSDemandTrend()
	supply := ServerSupplyTrend()
	if len(demand) < 5 || len(supply) < 5 {
		t.Fatal("trends should have several points")
	}
	// Demand ratio grows (Figure 2), supply ratio declines (Figure 3).
	if TrendGrowthFactor(demand) <= 1.5 {
		t.Errorf("AWS memory:CPU demand should roughly double, factor=%v", TrendGrowthFactor(demand))
	}
	if TrendGrowthFactor(supply) >= 0.6 {
		t.Errorf("server memory:CPU supply should decline markedly, factor=%v", TrendGrowthFactor(supply))
	}
	// Years must be ascending.
	for i := 1; i < len(demand); i++ {
		if demand[i].Year <= demand[i-1].Year {
			t.Error("demand trend years must ascend")
		}
	}
	for i := 1; i < len(supply); i++ {
		if supply[i].Year <= supply[i-1].Year {
			t.Error("supply trend years must ascend")
		}
	}
	if TrendGrowthFactor(nil) != 0 {
		t.Error("empty trend growth factor should be 0")
	}
}

func TestAccumulatorIntegration(t *testing.T) {
	hp := HPProfile()
	acc := NewAccumulator(hp)
	// 10s at S0 full load, 10s in Sz.
	acc.SetUtilization(0, 1.0)
	acc.SetState(10e9, acpi.Sz)
	acc.AdvanceTo(20e9)

	wantS0 := hp.PowerWatts(acpi.S0, 1.0) * 10
	wantSz := hp.PowerWatts(acpi.Sz, 0) * 10 // utilization ignored in Sz? It keeps last utilization.
	_ = wantSz
	if got := acc.JoulesInState(acpi.S0); math.Abs(got-wantS0) > 1e-6 {
		t.Errorf("S0 joules = %v, want %v", got, wantS0)
	}
	if acc.JoulesInState(acpi.Sz) <= 0 {
		t.Error("Sz joules should be positive")
	}
	if acc.Joules() <= acc.JoulesInState(acpi.S0) {
		t.Error("total joules should exceed S0-only joules")
	}
	if got := acc.TimeInStateNs(acpi.S0); got != 10e9 {
		t.Errorf("time in S0 = %v, want 10e9", got)
	}
	if acc.State() != acpi.Sz {
		t.Errorf("accumulator state = %v, want Sz", acc.State())
	}
	if len(acc.StatesSeen()) != 2 {
		t.Errorf("states seen = %v, want 2 entries", acc.StatesSeen())
	}
	// Time going backwards is ignored.
	before := acc.Joules()
	acc.AdvanceTo(5e9)
	if acc.Joules() != before {
		t.Error("AdvanceTo in the past must be a no-op")
	}
}

func TestAccumulatorZombieVsIdle(t *testing.T) {
	// A server parked in Sz for an hour must consume far less than an idle S0
	// server over the same hour — the headline claim of the paper.
	hp := HPProfile()
	idle := NewAccumulator(hp)
	idle.SetUtilization(0, 0)
	idle.AdvanceTo(3600e9)

	zombie := NewAccumulator(hp)
	zombie.SetState(0, acpi.Sz)
	zombie.AdvanceTo(3600e9)

	if zombie.Joules() >= idle.Joules()*0.5 {
		t.Errorf("zombie hour (%v J) should be well below half an idle hour (%v J)", zombie.Joules(), idle.Joules())
	}
}

// Property: the Sz estimate is always between S3WIB and S0WIBOff for any
// profile whose measurements respect the physical ordering.
func TestPropertySzEstimateBounds(t *testing.T) {
	f := func(a, b, c, d uint8) bool {
		// Build a synthetic but physically ordered profile.
		s3woib := 0.01 + float64(int(a)%50)/1000     // 0.01..0.06
		wol := float64(int(b)%80) / 1000             // 0..0.08
		ibIdle := 0.3 + float64(int(c)%200)/1000     // 0.3..0.5
		ibActive := ibIdle + float64(int(d)%50)/1000 // >= ibIdle
		p := &MachineProfile{
			Name:          "synthetic",
			MaxPowerWatts: 100,
			IdleFraction:  ibIdle,
			Measured: map[Config]float64{
				S0WithoutIB: ibIdle - 0.01,
				S0WithIBOff: ibIdle,
				S0WithIBOn:  ibActive,
				S3WithoutIB: s3woib,
				S3WithIB:    s3woib + wol,
				S4WithoutIB: 0.001,
				S4WithIB:    0.001 + wol,
			},
		}
		sz := p.EstimateSz()
		return sz >= p.Measured[S3WithIB]-1e-12 && sz < p.Measured[S0WithIBOff]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestValidateRejectsBadProfiles(t *testing.T) {
	bad := HPProfile()
	bad.Name = ""
	if err := bad.Validate(); err == nil {
		t.Error("empty name should be rejected")
	}
	bad = HPProfile()
	bad.MaxPowerWatts = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero max power should be rejected")
	}
	bad = HPProfile()
	bad.Measured[S0WithIBOn] = 1.5
	if err := bad.Validate(); err == nil {
		t.Error("fraction > 1 should be rejected")
	}
	bad = HPProfile()
	bad.Measured[S3WithIB] = bad.Measured[S3WithoutIB] - 0.01
	if err := bad.Validate(); err == nil {
		t.Error("S3WIB below S3WOIB should be rejected")
	}
	bad = HPProfile()
	bad.Measured[S3WithoutIB] = bad.Measured[S0WithoutIB] + 0.1
	if err := bad.Validate(); err == nil {
		t.Error("S3 above S0 should be rejected")
	}
}
