package energy

import "repro/internal/acpi"

// Transition energy: during a suspend or resume the platform is neither doing
// useful work nor in its low-power destination state — the CPU runs the OSPM
// path, devices are sequenced through their D-states, and firmware re-inits
// the chipset on the way back up. The paper's S3/Sz transitions take seconds
// (Section 6.6), so at datacenter scale the consolidation loop pays a real
// energy bill every time it changes a server's state. The model here charges
// every transition at the machine's S0 idle power for the transition's
// latency (the platform is powered and busy with housekeeping, not with
// guest work), using the canonical latencies of acpi.TransitionNs.

// TransitionSeconds returns the wall-clock duration of one from -> to global
// state transition in seconds of simulated time.
func TransitionSeconds(from, to acpi.SleepState) float64 {
	return float64(acpi.TransitionNs(from, to)) / 1e9
}

// TransitionJoules returns the energy one from -> to transition costs on this
// machine: the S0 idle power drawn for the transition latency. Transitions
// between two sleep states pay the full wake-plus-resuspend path, matching
// acpi.TransitionNs.
func (m *MachineProfile) TransitionJoules(from, to acpi.SleepState) float64 {
	return m.PowerWatts(acpi.S0, 0) * TransitionSeconds(from, to)
}
