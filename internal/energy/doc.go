// Package energy models the power and energy behaviour of servers and racks
// as the paper does in its evaluation (Section 6.6) and motivation (Section 2).
//
// It provides:
//
//   - MachineProfile: per-machine power fractions measured in the paper's
//     Table 3 (HP Compaq Elite 8300 and Dell Precision Tower 5810) for S0/S3/S4
//     with and without the Infiniband card, plus the Sz estimate of Equation 1;
//   - the energy-vs-utilization curve of Figure 1 (actual vs ideal
//     energy-proportional behaviour);
//   - the rack-architecture comparison of Figure 4 (server-centric, ideal
//     disaggregation, micro-servers, zombie);
//   - the motivation trends of Figures 2 and 3 (AWS memory:CPU demand ratio and
//     server-generation memory:CPU supply ratio);
//   - an Accumulator that integrates power over simulated time per ACPI state,
//     used by the datacenter simulator to produce Figure 10.
//
// All power figures are expressed as fractions of Emax, the energy consumed by
// the machine at full utilization, exactly as the paper reports them.
package energy
