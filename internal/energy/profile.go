package energy

import (
	"fmt"
	"sort"

	"repro/internal/acpi"
)

// Config identifies one of the measured machine configurations of Table 3.
type Config string

// Measured configurations (Table 3 column headers).
const (
	S0WithoutIB Config = "S0WOIB"   // S0, Infiniband card removed
	S0WithIBOff Config = "S0WIBOff" // S0, Infiniband card present but idle
	S0WithIBOn  Config = "S0WIBOn"  // S0, Infiniband card in use
	S3WithoutIB Config = "S3WOIB"
	S3WithIB    Config = "S3WIB"
	S4WithoutIB Config = "S4WOIB"
	S4WithIB    Config = "S4WIB"
	SzEstimated Config = "Sz"
)

// AllConfigs returns the Table 3 configurations in presentation order.
func AllConfigs() []Config {
	return []Config{S0WithoutIB, S0WithIBOff, S0WithIBOn, S3WithoutIB, S3WithIB, S4WithoutIB, S4WithIB, SzEstimated}
}

// MachineProfile carries the measured power of one machine model in each
// configuration, as a fraction of its maximum power Emax (0..1), plus the
// idle and peak power needed for the utilization curve.
type MachineProfile struct {
	// Name of the machine model ("HP", "Dell", ...).
	Name string
	// MaxPowerWatts is Emax in watts; results are reported relative to it, so
	// the exact value only matters when converting to joules.
	MaxPowerWatts float64
	// IdleFraction is the fraction of Emax drawn at 0% utilization in S0
	// (typical servers idle at 50-60% of peak, per Figure 1).
	IdleFraction float64
	// Measured holds the Table 3 fractions keyed by configuration. The Sz
	// entry may be absent; EstimateSz fills it via Equation 1.
	Measured map[Config]float64
}

// HPProfile returns the paper's HP Compaq Elite 8300 measurements (Table 3).
func HPProfile() *MachineProfile {
	return &MachineProfile{
		Name:          "HP",
		MaxPowerWatts: 120,
		IdleFraction:  0.4616, // the paper's S0WOIB measurement is the idle machine
		Measured: map[Config]float64{
			S0WithoutIB: 0.4616,
			S0WithIBOff: 0.5220,
			S0WithIBOn:  0.5384,
			S3WithoutIB: 0.0423,
			S3WithIB:    0.1103,
			S4WithoutIB: 0.0019,
			S4WithIB:    0.0681,
		},
	}
}

// DellProfile returns the paper's Dell Precision Tower 5810 measurements.
func DellProfile() *MachineProfile {
	return &MachineProfile{
		Name:          "Dell",
		MaxPowerWatts: 180,
		IdleFraction:  0.3535,
		Measured: map[Config]float64{
			S0WithoutIB: 0.3535,
			S0WithIBOff: 0.4233,
			S0WithIBOn:  0.4477,
			S3WithoutIB: 0.0197,
			S3WithIB:    0.0871,
			S4WithoutIB: 0.0112,
			S4WithIB:    0.0831,
		},
	}
}

// Profiles returns both testbed machine profiles with their Sz estimate
// already computed.
func Profiles() []*MachineProfile {
	hp := HPProfile()
	dell := DellProfile()
	hp.EstimateSz()
	dell.EstimateSz()
	return []*MachineProfile{hp, dell}
}

// ProfileByName returns the named profile ("HP" or "Dell"), Sz filled in.
func ProfileByName(name string) (*MachineProfile, error) {
	for _, p := range Profiles() {
		if p.Name == name {
			return p, nil
		}
	}
	return nil, fmt.Errorf("energy: unknown machine profile %q", name)
}

// Fraction returns the measured (or estimated) fraction of Emax for the
// configuration, and whether it is known.
func (m *MachineProfile) Fraction(c Config) (float64, bool) {
	v, ok := m.Measured[c]
	return v, ok
}

// EstimateSz computes the Sz power fraction with the paper's Equation 1:
//
//	E(Sz) = (E(S0WIBOn) - E(S0WIBOff)) + (E(S3WIB) - E(S3WOIB)) + E(S3WOIB)
//
// i.e. the Infiniband activity cost, plus the wake-on-LAN circuitry cost, plus
// the S3 platform floor. The result is stored under SzEstimated and returned.
func (m *MachineProfile) EstimateSz() float64 {
	sz := m.szEstimate()
	m.Measured[SzEstimated] = sz
	return sz
}

// szEstimate computes Equation 1 without storing the result, so read paths
// (PowerFraction) stay free of side effects and safe for concurrent use.
func (m *MachineProfile) szEstimate() float64 {
	ibActivity := m.Measured[S0WithIBOn] - m.Measured[S0WithIBOff]
	wolCircuitry := m.Measured[S3WithIB] - m.Measured[S3WithoutIB]
	return ibActivity + wolCircuitry + m.Measured[S3WithoutIB]
}

// Validate checks that the profile is self-consistent: all fractions within
// [0,1], S0 configurations above the sleep configurations, and the
// with-Infiniband variants at least as expensive as without.
func (m *MachineProfile) Validate() error {
	if m.Name == "" {
		return fmt.Errorf("energy: profile needs a name")
	}
	if m.MaxPowerWatts <= 0 {
		return fmt.Errorf("energy: profile %q needs a positive MaxPowerWatts", m.Name)
	}
	for c, v := range m.Measured {
		if v < 0 || v > 1 {
			return fmt.Errorf("energy: profile %q config %s fraction %v outside [0,1]", m.Name, c, v)
		}
	}
	pairs := [][2]Config{
		{S0WithIBOff, S0WithoutIB},
		{S0WithIBOn, S0WithIBOff},
		{S3WithIB, S3WithoutIB},
		{S4WithIB, S4WithoutIB},
	}
	for _, p := range pairs {
		if m.Measured[p[0]] < m.Measured[p[1]] {
			return fmt.Errorf("energy: profile %q expects %s >= %s", m.Name, p[0], p[1])
		}
	}
	if m.Measured[S3WithoutIB] >= m.Measured[S0WithoutIB] {
		return fmt.Errorf("energy: profile %q expects S3 below S0", m.Name)
	}
	return nil
}

// PowerFraction returns the fraction of Emax drawn by a server in the given
// ACPI state at the given CPU utilization (0..1). Only S0 depends on
// utilization; sleeping states use the Table 3 / Equation 1 fractions. Servers
// in sleep states keep their wake NIC powered, hence the *WithIB variants.
// PowerFraction never mutates the profile, so it is safe for concurrent use
// (the parallel datacenter simulator evaluates it from many goroutines).
func (m *MachineProfile) PowerFraction(state acpi.SleepState, utilization float64) float64 {
	if utilization < 0 {
		utilization = 0
	}
	if utilization > 1 {
		utilization = 1
	}
	switch state {
	case acpi.S0:
		// Linear interpolation between the idle floor (IB card on, idle) and
		// Emax, the common first-order server power model behind Figure 1.
		idle := m.Measured[S0WithIBOff]
		return idle + (1-idle)*utilization
	case acpi.S1, acpi.S2:
		return m.Measured[S3WithIB] * 1.5 // shallower than S3; rarely used
	case acpi.S3:
		return m.Measured[S3WithIB]
	case acpi.Sz:
		if v, ok := m.Measured[SzEstimated]; ok {
			return v
		}
		return m.szEstimate()
	case acpi.S4:
		return m.Measured[S4WithIB]
	case acpi.S5:
		return m.Measured[S4WithoutIB] // soft-off ~ hibernate floor
	default:
		return 0
	}
}

// PowerWatts converts PowerFraction to watts using MaxPowerWatts.
func (m *MachineProfile) PowerWatts(state acpi.SleepState, utilization float64) float64 {
	return m.PowerFraction(state, utilization) * m.MaxPowerWatts
}

// Table3Row reproduces one machine row of Table 3: the percentage of maximum
// energy in each measured configuration plus the Sz estimate, in the paper's
// column order.
func (m *MachineProfile) Table3Row() []float64 {
	m.EstimateSz()
	row := make([]float64, 0, len(AllConfigs()))
	for _, c := range AllConfigs() {
		row = append(row, m.Measured[c]*100)
	}
	return row
}

// Accumulator integrates energy over simulated time for one machine. It is
// used by the datacenter simulator: every time a server changes state or
// utilization, the caller advances the accumulator.
type Accumulator struct {
	profile *MachineProfile

	state       acpi.SleepState
	utilization float64
	lastNs      int64

	joules        float64
	joulesByState map[acpi.SleepState]float64
	nsByState     map[acpi.SleepState]int64
}

// NewAccumulator starts accounting for a machine that begins in state S0 at
// zero utilization at simulated time 0.
func NewAccumulator(profile *MachineProfile) *Accumulator {
	return &Accumulator{
		profile:       profile,
		state:         acpi.S0,
		joulesByState: make(map[acpi.SleepState]float64),
		nsByState:     make(map[acpi.SleepState]int64),
	}
}

// AdvanceTo integrates power up to nowNs using the current state and
// utilization. Calls with a timestamp in the past are ignored.
func (a *Accumulator) AdvanceTo(nowNs int64) {
	if nowNs <= a.lastNs {
		return
	}
	dt := float64(nowNs-a.lastNs) / 1e9
	watts := a.profile.PowerWatts(a.state, a.utilization)
	a.joules += watts * dt
	a.joulesByState[a.state] += watts * dt
	a.nsByState[a.state] += nowNs - a.lastNs
	a.lastNs = nowNs
}

// SetState records a state change effective at nowNs.
func (a *Accumulator) SetState(nowNs int64, s acpi.SleepState) {
	a.AdvanceTo(nowNs)
	a.state = s
}

// SetUtilization records a utilization change effective at nowNs.
func (a *Accumulator) SetUtilization(nowNs int64, u float64) {
	a.AdvanceTo(nowNs)
	a.utilization = u
}

// State returns the current state being accounted.
func (a *Accumulator) State() acpi.SleepState { return a.state }

// Joules returns the total accumulated energy.
func (a *Accumulator) Joules() float64 { return a.joules }

// JoulesInState returns the energy accumulated while in the given state.
func (a *Accumulator) JoulesInState(s acpi.SleepState) float64 { return a.joulesByState[s] }

// TimeInStateNs returns the simulated time spent in the given state.
func (a *Accumulator) TimeInStateNs(s acpi.SleepState) int64 { return a.nsByState[s] }

// StatesSeen returns the states with non-zero accumulated time, sorted.
func (a *Accumulator) StatesSeen() []acpi.SleepState {
	var out []acpi.SleepState
	for s := range a.nsByState {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
