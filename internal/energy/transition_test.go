package energy

import (
	"testing"

	"repro/internal/acpi"
)

func TestTransitionJoules(t *testing.T) {
	for _, m := range Profiles() {
		idleWatts := m.PowerWatts(acpi.S0, 0)
		suspend := m.TransitionJoules(acpi.S0, acpi.S3)
		if want := idleWatts * TransitionSeconds(acpi.S0, acpi.S3); suspend != want {
			t.Errorf("%s: S0->S3 = %v J, want %v", m.Name, suspend, want)
		}
		if suspend <= 0 {
			t.Errorf("%s: suspend energy must be positive", m.Name)
		}
		if m.TransitionJoules(acpi.S0, acpi.S0) != 0 {
			t.Errorf("%s: S0->S0 should be free", m.Name)
		}
		// Sz resume is modelled marginally faster than S3 resume (no
		// memory-controller retraining), so its wake energy is no higher.
		if zs, s3 := m.TransitionJoules(acpi.Sz, acpi.S0), m.TransitionJoules(acpi.S3, acpi.S0); zs > s3 {
			t.Errorf("%s: Sz wake %v J exceeds S3 wake %v J", m.Name, zs, s3)
		}
	}
}

func TestTransitionSeconds(t *testing.T) {
	if got, want := TransitionSeconds(acpi.S0, acpi.S3), float64(acpi.Latency(acpi.S3).Enter)/1e9; got != want {
		t.Errorf("S0->S3 = %v s, want %v", got, want)
	}
}
