package migration

import (
	"testing"
	"testing/quick"

	"repro/internal/vm"
)

func testVM() vm.VM { return vm.New("mig-vm", 8<<30, 4<<30) }

func TestVanillaMigration(t *testing.T) {
	v := NewVanilla()
	res, err := v.Migrate(testVM(), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Protocol != "vanilla-precopy" {
		t.Errorf("protocol = %q", res.Protocol)
	}
	if res.BytesTransferred < testVM().ReservedBytes {
		t.Error("pre-copy must transfer at least the full reservation")
	}
	if res.DurationNs <= 0 || res.DowntimeNs <= 0 {
		t.Error("duration and downtime must be positive")
	}
	if res.DowntimeNs >= res.DurationNs {
		t.Error("pre-copy downtime must be far below the total duration")
	}
	if res.DurationSeconds() <= 0 {
		t.Error("seconds conversion broken")
	}
}

func TestVanillaValidation(t *testing.T) {
	v := NewVanilla()
	if _, err := v.Migrate(vm.VM{}, 0.5); err == nil {
		t.Error("invalid VM should fail")
	}
	if _, err := v.Migrate(testVM(), -0.1); err == nil {
		t.Error("negative wss ratio should fail")
	}
	if _, err := v.Migrate(testVM(), 1.1); err == nil {
		t.Error("wss ratio above 1 should fail")
	}
	// Degenerate round count clamps to 1.
	v.CopyRounds = 0
	if _, err := v.Migrate(testVM(), 0.5); err != nil {
		t.Error(err)
	}
}

func TestVanillaInsensitiveToWSS(t *testing.T) {
	// The paper: vanilla migration time is almost unaffected by the WSS.
	v := NewVanilla()
	low, _ := v.Migrate(testVM(), 0.2)
	high, _ := v.Migrate(testVM(), 0.8)
	ratio := high.DurationNs / low.DurationNs
	if ratio > 1.5 {
		t.Errorf("vanilla migration should be nearly flat in WSS, got ratio %.2f", ratio)
	}
}

func TestZombieStackMigration(t *testing.T) {
	z := NewZombieStack()
	res, err := z.Migrate(testVM(), 0.5, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Protocol != "zombiestack" {
		t.Errorf("protocol = %q", res.Protocol)
	}
	// Only the hot local part is copied: at most half the reservation here.
	if res.BytesTransferred > testVM().ReservedBytes/2 {
		t.Errorf("zombiestack copied %d bytes, should copy at most the local half", res.BytesTransferred)
	}
	if res.RemoteOwnershipUpdates == 0 {
		t.Error("remote buffers should be re-pointed, not copied")
	}
	if res.DowntimeNs != res.DurationNs {
		t.Error("the post-copy-style protocol pauses the VM for the whole transfer")
	}
}

func TestZombieStackValidation(t *testing.T) {
	z := NewZombieStack()
	if _, err := z.Migrate(vm.VM{}, 0.5, 0.5); err == nil {
		t.Error("invalid VM should fail")
	}
	if _, err := z.Migrate(testVM(), 2, 0.5); err == nil {
		t.Error("bad wss ratio should fail")
	}
	if _, err := z.Migrate(testVM(), 0.5, 0); err == nil {
		t.Error("zero local fraction should fail")
	}
	if _, err := z.Migrate(testVM(), 0.5, 1.2); err == nil {
		t.Error("local fraction above one should fail")
	}
}

func TestZombieStackGrowsWithWSS(t *testing.T) {
	// ZombieStack copies the hot set, so its time grows with the WSS until
	// the WSS exceeds the local fraction, after which it saturates.
	z := NewZombieStack()
	prev := -1.0
	for _, w := range []float64{0.2, 0.4, 0.6, 0.8} {
		r, err := z.Migrate(testVM(), w, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		if r.DurationNs < prev {
			t.Errorf("zombiestack time should not decrease with WSS")
		}
		prev = r.DurationNs
	}
	saturated, _ := z.Migrate(testVM(), 0.6, 0.5)
	more, _ := z.Migrate(testVM(), 0.9, 0.5)
	if more.BytesTransferred != saturated.BytesTransferred {
		t.Error("beyond the local fraction the copied bytes should saturate")
	}
}

func TestZombieBeatsVanilla(t *testing.T) {
	// Fig. 9's headline: ZombieStack is faster, dramatically so at small WSS.
	pts, err := Figure9(testVM(), []float64{0.2, 0.4, 0.6, 0.8}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 4 {
		t.Fatalf("points = %d", len(pts))
	}
	for _, p := range pts {
		if p.ZombieSec >= p.VanillaSec {
			t.Errorf("wss=%.0f%%: zombiestack (%.2fs) should beat vanilla (%.2fs)", p.WSSRatio*100, p.ZombieSec, p.VanillaSec)
		}
	}
	// The advantage is largest at the smallest WSS.
	gainLow := pts[0].VanillaSec / pts[0].ZombieSec
	gainHigh := pts[len(pts)-1].VanillaSec / pts[len(pts)-1].ZombieSec
	if gainLow <= gainHigh {
		t.Errorf("the speedup should shrink as the WSS grows (%.1fx vs %.1fx)", gainLow, gainHigh)
	}
}

func TestFigure9PropagatesErrors(t *testing.T) {
	if _, err := Figure9(testVM(), []float64{-1}, 0.5); err == nil {
		t.Error("invalid ratio should propagate")
	}
	if _, err := Figure9(testVM(), []float64{0.5}, 0); err == nil {
		t.Error("invalid local fraction should propagate")
	}
}

// Property: for any valid parameters the ZombieStack protocol never copies
// more than the vanilla one.
func TestPropertyZombieCopiesLess(t *testing.T) {
	v := NewVanilla()
	z := NewZombieStack()
	machine := testVM()
	f := func(wssRaw, localRaw uint8) bool {
		wss := float64(wssRaw%100) / 100
		local := 0.01 + float64(localRaw%99)/100
		rv, err := v.Migrate(machine, wss)
		if err != nil {
			return false
		}
		rz, err := z.Migrate(machine, wss, local)
		if err != nil {
			return false
		}
		return rz.BytesTransferred <= rv.BytesTransferred
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
