// Package migration models the two live-migration protocols compared in the
// paper's Section 6.5 (Figure 9):
//
//   - the vanilla pre-copy migration, which iteratively copies dirty pages
//     while the VM keeps running and whose duration is dominated by the fixed
//     number of copy rounds over the VM's full memory;
//   - the ZombieStack protocol, which stops the VM, copies only the hot pages
//     resident in the source host's local memory (about half of the working
//     set with the 50% placement rule), and leaves the remote part untouched:
//     only the ownership pointers of the remote buffers are updated.
package migration
