package migration

import (
	"fmt"

	"repro/internal/vm"
)

// Network carries the transfer characteristics of the migration path.
type Network struct {
	// BandwidthBytesPerSec is the sustained migration throughput.
	BandwidthBytesPerSec float64
	// PerPageOverheadNs is the per-page protocol overhead.
	PerPageOverheadNs float64
	// RTTNs is the control-message round-trip (start, handshakes, switchover).
	RTTNs float64
}

// DefaultNetwork returns 10 GbE-like migration characteristics (live
// migration traffic normally rides the datacenter network, not the RDMA
// fabric).
func DefaultNetwork() Network {
	return Network{
		BandwidthBytesPerSec: 1.1e9,
		PerPageOverheadNs:    200,
		RTTNs:                200_000,
	}
}

// Result describes one migration.
type Result struct {
	// Protocol is "vanilla-precopy" or "zombiestack".
	Protocol string
	// BytesTransferred is the memory actually copied to the destination.
	BytesTransferred int64
	// PagesTransferred is the page count copied.
	PagesTransferred int64
	// DurationNs is the total migration time.
	DurationNs float64
	// DowntimeNs is the time the VM was paused.
	DowntimeNs float64
	// RemoteOwnershipUpdates counts remote buffers whose ownership pointer
	// was switched instead of copying the data (ZombieStack only).
	RemoteOwnershipUpdates int
}

// DurationSeconds returns the migration time in seconds, the unit of Fig. 9.
func (r Result) DurationSeconds() float64 { return r.DurationNs / 1e9 }

// Vanilla models the unmodified pre-copy protocol.
type Vanilla struct {
	Network Network
	// CopyRounds is the fixed number of pre-copy iterations. The paper
	// observes that vanilla migration time barely depends on the WSS because
	// this iteration count is fixed.
	CopyRounds int
	// DirtyRate is the fraction of the WSS redirtied (and therefore
	// recopied) per round while the VM keeps running.
	DirtyRate float64
}

// NewVanilla returns the vanilla protocol with 3 copy rounds and a 12% per-
// round redirty rate.
func NewVanilla() *Vanilla {
	return &Vanilla{Network: DefaultNetwork(), CopyRounds: 3, DirtyRate: 0.12}
}

// Migrate estimates the migration of the VM. wssRatio is the fraction of the
// VM's reserved memory that is actively written (the x axis of Fig. 9).
func (v *Vanilla) Migrate(machine vm.VM, wssRatio float64) (Result, error) {
	if err := machine.Validate(); err != nil {
		return Result{}, err
	}
	if wssRatio < 0 || wssRatio > 1 {
		return Result{}, fmt.Errorf("migration: wss ratio %v outside [0,1]", wssRatio)
	}
	rounds := v.CopyRounds
	if rounds < 1 {
		rounds = 1
	}
	pageSize := int64(machine.EffectivePageSize())

	// Round 1 copies the whole reservation; each further round copies the
	// pages the running VM redirtied (a fraction of the WSS).
	bytes := machine.ReservedBytes
	wssBytes := int64(float64(machine.ReservedBytes) * wssRatio)
	for i := 1; i < rounds; i++ {
		bytes += int64(float64(wssBytes) * v.DirtyRate)
	}
	// The final stop-and-copy round transfers the last dirty set.
	finalDirty := int64(float64(wssBytes) * v.DirtyRate)
	bytes += finalDirty

	pages := bytes / pageSize
	transferNs := float64(bytes)/v.Network.BandwidthBytesPerSec*1e9 +
		float64(pages)*v.Network.PerPageOverheadNs + v.Network.RTTNs
	downtime := float64(finalDirty)/v.Network.BandwidthBytesPerSec*1e9 + v.Network.RTTNs
	return Result{
		Protocol:         "vanilla-precopy",
		BytesTransferred: bytes,
		PagesTransferred: pages,
		DurationNs:       transferNs,
		DowntimeNs:       downtime,
	}, nil
}

// ZombieStack models the paper's protocol: stop the VM, copy the local (hot)
// part, update ownership of the remote buffers, resume on the destination.
type ZombieStack struct {
	Network Network
	// OwnershipUpdateNs is the cost of re-pointing one remote buffer.
	OwnershipUpdateNs float64
	// BufferSize is the remote buffer granularity (for counting updates).
	BufferSize int64
}

// NewZombieStack returns the protocol with default parameters (64 MiB
// buffers, 20 microseconds per ownership update through the controller).
func NewZombieStack() *ZombieStack {
	return &ZombieStack{Network: DefaultNetwork(), OwnershipUpdateNs: 20_000, BufferSize: 64 << 20}
}

// Migrate estimates the migration of a VM whose localFraction of reserved
// memory is local to the source host (the rest lives in remote buffers).
// Only the local pages that belong to the working set are hot and need to be
// copied; the cold local pages are demoted to remote buffers as part of the
// switchover (ownership updates, no copy).
func (z *ZombieStack) Migrate(machine vm.VM, wssRatio, localFraction float64) (Result, error) {
	if err := machine.Validate(); err != nil {
		return Result{}, err
	}
	if wssRatio < 0 || wssRatio > 1 {
		return Result{}, fmt.Errorf("migration: wss ratio %v outside [0,1]", wssRatio)
	}
	if localFraction <= 0 || localFraction > 1 {
		return Result{}, fmt.Errorf("migration: local fraction %v outside (0,1]", localFraction)
	}
	pageSize := int64(machine.EffectivePageSize())

	// The replacement policy keeps hot pages local, so the memory to copy is
	// the intersection of the WSS and the local fraction.
	localBytes := int64(float64(machine.ReservedBytes) * localFraction)
	wssBytes := int64(float64(machine.ReservedBytes) * wssRatio)
	hotLocal := wssBytes
	if hotLocal > localBytes {
		hotLocal = localBytes
	}
	pages := hotLocal / pageSize

	remoteBytes := machine.ReservedBytes - localBytes
	updates := 0
	if remoteBytes > 0 && z.BufferSize > 0 {
		updates = int((remoteBytes + z.BufferSize - 1) / z.BufferSize)
	}

	transferNs := float64(hotLocal)/z.Network.BandwidthBytesPerSec*1e9 +
		float64(pages)*z.Network.PerPageOverheadNs +
		float64(updates)*z.OwnershipUpdateNs + z.Network.RTTNs
	// Post-copy style: the VM is stopped for the whole (short) transfer.
	return Result{
		Protocol:               "zombiestack",
		BytesTransferred:       hotLocal,
		PagesTransferred:       pages,
		DurationNs:             transferNs,
		DowntimeNs:             transferNs,
		RemoteOwnershipUpdates: updates,
	}, nil
}

// Figure9Point is one x position of Fig. 9: migration time of both protocols
// for a given WSS ratio.
type Figure9Point struct {
	WSSRatio   float64
	VanillaSec float64
	ZombieSec  float64
}

// Figure9 sweeps the WSS ratio (the paper uses 20..80% of the VM's memory)
// and returns both protocols' migration times. localFraction is the share of
// the VM's memory kept local under ZombieStack (50% per the placement rule).
func Figure9(machine vm.VM, wssRatios []float64, localFraction float64) ([]Figure9Point, error) {
	v := NewVanilla()
	z := NewZombieStack()
	out := make([]Figure9Point, 0, len(wssRatios))
	for _, w := range wssRatios {
		rv, err := v.Migrate(machine, w)
		if err != nil {
			return nil, err
		}
		rz, err := z.Migrate(machine, w, localFraction)
		if err != nil {
			return nil, err
		}
		out = append(out, Figure9Point{WSSRatio: w, VanillaSec: rv.DurationSeconds(), ZombieSec: rz.DurationSeconds()})
	}
	return out, nil
}
