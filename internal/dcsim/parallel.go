// The parallel engine: consolidation epochs are split into contiguous shards
// and simulated by a pool of workers, each with its own trace replayer. Every
// worker writes the per-epoch contributions of its shard into a disjoint part
// of a shared slice, and the caller merges the slice in epoch order, so the
// accumulation order — and therefore every floating-point result — matches
// the sequential engine exactly: independent workers, deterministic merge.

package dcsim

import (
	"sync"
)

// shard is a half-open range [lo, hi) of epoch indices.
type shard struct {
	lo, hi int
}

// shardEpochs splits n epochs into at most workers contiguous, near-equal
// shards covering [0, n) exactly.
func shardEpochs(n, workers int) []shard {
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	shards := make([]shard, 0, workers)
	base, rem := n/workers, n%workers
	lo := 0
	for w := 0; w < workers; w++ {
		size := base
		if w < rem {
			size++
		}
		shards = append(shards, shard{lo: lo, hi: lo + size})
		lo += size
	}
	return shards
}

// simulateShards fills stats[i] for every epoch i, one goroutine per shard.
// Each shard replays the trace from its own start — a fresh replayer
// converges to the same running-task set the sequential walk would hold at
// that epoch — so no cross-shard state is shared and no locks are needed:
// the start-ordered task slice is read-only and the goroutines write
// disjoint ranges of stats.
//
// With transition costs enabled, each epoch additionally depends on the
// PREVIOUS epoch's plan. That plan is itself a pure function of the previous
// epoch's population, so a shard that does not start at epoch 0 derives it
// with a one-epoch lookback: it replays the population of the epoch just
// before its range and evaluates the policy on it — exactly the evaluation
// the neighbouring shard performs for that epoch — and shard independence
// (and therefore bit-identity with the sequential engine) is preserved.
//
// Rack pricing keeps the same contract: every shard owns a private model
// rack, and the per-epoch ledger charge is a pure function of the epoch's
// plan, so where the shard starts does not matter.
func simulateShards(cfg *Config, byStart []replayTask, spans []epochSpan, stats []epochStats, workers int) error {
	shards := shardEpochs(len(spans), workers)
	errs := make([]error, len(shards))
	var wg sync.WaitGroup
	for si, sh := range shards {
		wg.Add(1)
		go func(si int, sh shard) {
			defer wg.Done()
			pricer, err := newPricer(cfg)
			if err != nil {
				errs[si] = err
				return
			}
			rep := newReplayer(byStart)
			prev := initialPlan(cfg)
			if (cfg.TransitionCosts || !cfg.Chaos.Empty()) && sh.lo > 0 {
				lookback := spans[sh.lo-1]
				prev = epochPlan(cfg, rep.population(lookback), lookback)
			}
			for i := sh.lo; i < sh.hi; i++ {
				stats[i], prev, err = simulateEpoch(cfg, pricer, rep.population(spans[i]), spans[i], prev)
				if err != nil {
					errs[si] = err
					return
				}
			}
		}(si, sh)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
