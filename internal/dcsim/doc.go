// Package dcsim is the large-scale datacenter simulator of Section 6.6.2: it
// replays a (Google-like) task trace against a server fleet, runs a
// consolidation policy at a fixed period, and integrates the fleet's energy
// using the per-state power model of internal/energy. The output is the
// energy saving relative to the no-consolidation baseline, which is what
// Figure 10 reports for Neat, Oasis and ZombieStack on HP and Dell servers.
//
// Two accounting models are available. The steady-state model integrates each
// epoch as if the fleet had always been in the epoch plan's posture — the
// optimistic bound. With Config.TransitionCosts the engine becomes
// event-driven: every epoch's change of plan is translated into transition
// events — ACPI suspends and wakes priced by the internal/acpi latency table
// through energy.TransitionJoules, VM migration drains priced by the
// internal/migration protocols, and remote-memory faults priced by the
// internal/rdma cost model — and those events are charged against the epoch
// energy ledger (see transitions.go). The baseline fleet never transitions,
// so enabling transition costs can only lower the reported saving.
//
// The simulation decomposes into independent consolidation epochs, so the
// engine can shard the per-epoch accounting (placement evaluation, energy
// integration and transition pricing) across a pool of workers: set
// Config.Workers above 1 and the epochs are split into contiguous shards,
// simulated concurrently, and merged back in epoch order. Transition events
// depend only on the previous and current epoch plans, both pure functions of
// their epoch populations, so a shard derives its predecessor plan with a
// one-epoch lookback and the merge performs exactly the same floating-point
// additions in exactly the same order as the sequential path: a parallel run
// is bit-identical to a sequential one (see parallel.go).
//
// On top of single runs, sweep.go provides a scenario-sweep harness that runs
// a grid of {policy, machine profile, trace, consolidation period,
// transition-cost on/off} scenarios concurrently and aggregates the results
// with internal/metrics.
//
// Because the engine plans each epoch with the epoch's whole population —
// knowledge no causal controller has — a run is also the offline upper bound
// for the online control plane: Oracle runs the engine with transition costs
// forced on, and internal/autopilot measures its regret against it using the
// same exported pricing rules (PosturePowerWatts, BaselinePowerWatts,
// TransitionModel.Cost).
//
// Config.Chaos re-runs any of the above under a deterministic fault schedule
// (internal/chaos): epochs plan against the then-surviving fleet, crashed
// servers burn wedged at S0 idle, the churn bill is scaled by the epoch's
// fabric degradation factor, and wasted wakes, re-homing transfers and
// controller rebuilds are charged per epoch (see chaos.go). Every chaos
// charge is a pure function of (plan, epoch span, posture), so the parallel
// engine stays bit-identical — and the oracle can be re-run under the same
// schedule the online loop suffered, giving the resilience regret.
package dcsim
