// Degraded-capacity chaos pricing: the offline engine re-run under a
// chaos.Plan, so the oracle bound can be computed under the same fault
// schedule the online control plane suffered — the apples-to-apples
// resilience regret. Every charge below is a pure function of (fault plan,
// epoch span, epoch posture pair, population): no state crosses epochs, so
// any parallel shard derives the identical bill and the engine stays
// bit-identical across worker counts.
//
// The accounting mirrors the online loop's penalties epoch by epoch:
//
//   - crashed servers burn S0 idle power for the server-seconds they spend
//     wedged inside the epoch, and the epoch's plan is sized against the
//     shrunken fleet (see epochPlan);
//   - a crash whose victims were serving remote memory (zombies or Oasis
//     memory servers, per the fault's role hint resolved against the epoch's
//     posture) bills the re-homing transfer of their remote-memory share and
//     a replacement wake; a crash of active servers bills replacement wakes;
//   - repairs bill the reboot back to S3 in the epoch they complete;
//   - failed wakes bill the wasted S3->S0 attempt, capped by both the
//     plan's budget for the epoch and the wakes the epoch actually performs;
//   - controller losses bill one machine's worth of S0 idle power for the
//     secondary's rebuild window;
//   - fabric degradation is priced in the transition bill itself
//     (CostWithFabric), not here.
//
// All penalties land on EnergyJoules and never on the baseline, so faults
// can only lower the reported saving.

package dcsim

import (
	"repro/internal/acpi"
	"repro/internal/chaos"
	"repro/internal/consolidation"
)

// chaosBill is one epoch's fault penalty.
type chaosBill struct {
	joules      float64
	transitions int
	wasted      int
	reHomedGiB  float64
}

// chaosFabricFactor returns the epoch's time-weighted remote-latency
// multiplier (exactly 1 without an intersecting degradation window).
func chaosFabricFactor(cfg *Config, span epochSpan) float64 {
	if cfg.Chaos.Empty() {
		return 1
	}
	return cfg.Chaos.FabricFactor(span.start, span.end)
}

// chaosAlignPrev makes the previous epoch's plan commensurate with this
// epoch's fleet size before the transition delta is taken: a crash (or
// repair) between the two epochs changes the total the planner covered, and
// without the adjustment that size change would surface in
// consolidation.Delta as phantom posture churn — S3->S0 wakes for servers
// that actually died, or a second S0->S3 bill for reboots RepairsIn already
// charges. The difference is absorbed into (taken from) the previous plan's
// sleep pool, exactly where an unchanged policy plan puts marginal capacity;
// if the pool cannot absorb a shrink the remainder is left to the delta (a
// crash striking a fully-awake fleet really does change the active count).
// Pure function of (prev, plan), so shard independence is preserved.
func chaosAlignPrev(cfg *Config, prev, plan consolidation.FleetPlan) consolidation.FleetPlan {
	if cfg.Chaos.Empty() {
		return prev
	}
	diff := plan.TotalHosts() - prev.TotalHosts()
	if diff == 0 {
		return prev
	}
	prev.SleepHosts += diff
	if prev.SleepHosts < 0 {
		prev.SleepHosts = 0
	}
	return prev
}

// chaosEpochCost prices the epoch's fault penalties.
func chaosEpochCost(cfg *Config, prev, plan consolidation.FleetPlan, vms []consolidation.VMDemand, span epochSpan) chaosBill {
	p := cfg.Chaos
	m := cfg.Machine
	var bill chaosBill

	// Crashed servers wedge at S0 idle for their in-epoch server-seconds.
	bill.joules += p.CrashedServerSeconds(span.start, span.end) * m.PowerWatts(acpi.S0, 0)

	// Crashes striking this epoch: replacement wakes plus re-homing for the
	// victims that were serving remote memory.
	for _, f := range p.FaultsIn(chaos.ServerCrash, span.start, span.end) {
		active, serving := crashVictims(f, plan)
		if active > 0 {
			bill.joules += float64(active) * m.TransitionJoules(acpi.S3, acpi.S0)
			bill.transitions += active
		}
		if serving > 0 {
			share := 0.0
			if pool := plan.ZombieHosts + plan.MemoryServers; pool > 0 {
				share = plan.RemoteMemoryGiB / float64(pool) * float64(serving)
			}
			bill.reHomedGiB += share
			bill.joules += reHomeJoules(cfg, share, plan, f.AtSec)
			// Replacement serving servers: wake from S3 and re-suspend to Sz.
			bill.joules += float64(serving) * (m.TransitionJoules(acpi.S3, acpi.S0) + m.TransitionJoules(acpi.S0, acpi.Sz))
			bill.transitions += 2 * serving
		}
	}

	// Repairs completing this epoch reboot the victims into S3.
	for _, f := range p.RepairsIn(span.start, span.end) {
		bill.joules += float64(f.Count) * m.TransitionJoules(acpi.S0, acpi.S3)
		bill.transitions += f.Count
	}

	// Failed wakes: the wasted S3->S0 attempt, bounded by the epoch's actual
	// wake count and the plan's budget for the span.
	if budget := p.WakeFailureBudget(span.start, span.end); budget > 0 {
		d := consolidation.Delta(prev, plan, len(vms))
		wakes := d.SleepExits + d.MemoryServerStarts
		if budget > wakes {
			budget = wakes
		}
		if budget > 0 {
			bill.joules += float64(budget) * m.TransitionJoules(acpi.S3, acpi.S0)
			bill.transitions += budget
			bill.wasted += budget
		}
	}

	// Controller losses: the secondary rebuilds for the fault's window,
	// burning one machine's worth of S0 idle power.
	for _, f := range p.FaultsIn(chaos.ControllerLoss, span.start, span.end) {
		bill.joules += float64(f.DurationSec) * m.PowerWatts(acpi.S0, 0)
	}
	return bill
}

// crashVictims resolves a crash fault's role hint against the epoch's
// posture: how many victims were active and how many were serving remote
// memory (zombies or memory servers). The preferred category is struck
// first; the spill-over falls through the remaining categories in the same
// order the online loop uses, with sleepers absorbing the rest (no extra
// bill — a dead sleeper costs only its wedged burn).
func crashVictims(f chaos.Fault, plan consolidation.FleetPlan) (active, serving int) {
	servingPool := plan.ZombieHosts + plan.MemoryServers
	take := func(n, pool int) int {
		if n > pool {
			n = pool
		}
		return n
	}
	left := f.Count
	switch f.Role {
	case chaos.RoleServing:
		serving = take(left, servingPool)
		left -= serving
		active = take(left, plan.ActiveHosts)
	case chaos.RoleSleep:
		left -= take(left, plan.SleepHosts)
		serving = take(left, servingPool)
		left -= serving
		active = take(left, plan.ActiveHosts)
	default: // RoleAny, RoleActive: active burns most, strike it first.
		active = take(left, plan.ActiveHosts)
		left -= active
		serving = take(left, servingPool)
	}
	return active, serving
}

// reHomeJoules prices moving share GiB of remote memory onto replacement
// servers: a one-sided transfer over the fabric at the instant's degradation
// factor, stalling one active host at the epoch's operating point.
func reHomeJoules(cfg *Config, shareGiB float64, plan consolidation.FleetPlan, atSec int64) float64 {
	if shareGiB <= 0 {
		return 0
	}
	tm := cfg.Transitions
	bytes := int(shareGiB * float64(1<<30))
	sec := float64(tm.Fabric.TransferNs(tm.Fabric.OneSidedLatencyNs, bytes)) / 1e9
	sec *= cfg.Chaos.FabricFactorAt(atSec)
	return sec * cfg.Machine.PowerWatts(acpi.S0, plan.ActiveCPUUtilization)
}
