package dcsim

import (
	"reflect"
	"testing"

	"repro/internal/consolidation"
	"repro/internal/energy"
	"repro/internal/trace"
)

// engineTestTrace generates a small but non-trivial trace (many epochs,
// overlapping tasks) for the engine tests.
func engineTestTrace(t testing.TB) *trace.Trace {
	t.Helper()
	tr, err := trace.Generate(trace.GeneratorConfig{
		Name: "engine-test", Machines: 60, HorizonSec: 6 * 3600, Tasks: 500,
		MemoryToCPURatio: 3, MeanUtilization: 0.35, IdleFraction: 0.25, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// TestParallelMatchesSequential is the bit-identity guarantee: sharding the
// per-epoch accounting across workers must not change a single output field,
// for every policy on every machine profile.
func TestParallelMatchesSequential(t *testing.T) {
	tr := engineTestTrace(t)
	for _, m := range energy.Profiles() {
		for _, pol := range consolidation.AllPolicies() {
			cfg := Config{
				Trace:      tr,
				Policy:     pol,
				Machine:    m,
				ServerSpec: consolidation.DefaultServerSpec(),
			}
			seq, err := Run(cfg)
			if err != nil {
				t.Fatalf("%s/%s sequential: %v", m.Name, pol.Name(), err)
			}
			for _, workers := range []int{2, 4, 7, 64} {
				cfg.Workers = workers
				par, err := Run(cfg)
				if err != nil {
					t.Fatalf("%s/%s workers=%d: %v", m.Name, pol.Name(), workers, err)
				}
				if !reflect.DeepEqual(seq, par) {
					t.Errorf("%s/%s workers=%d: parallel result diverges\nseq: %+v\npar: %+v",
						m.Name, pol.Name(), workers, seq, par)
				}
			}
		}
	}
}

// TestParallelEnergySavingExact pins the headline metric explicitly: the
// EnergySaving outputs of a workers=4 run and a sequential run are identical,
// not merely close.
func TestParallelEnergySavingExact(t *testing.T) {
	tr := engineTestTrace(t)
	cfg := Config{
		Trace:      tr,
		Policy:     consolidation.NewZombieStack(),
		Machine:    energy.HPProfile(),
		ServerSpec: consolidation.DefaultServerSpec(),
	}
	seq, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 4
	par, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if seq.SavingPercent != par.SavingPercent {
		t.Fatalf("SavingPercent diverges: sequential %v, parallel %v", seq.SavingPercent, par.SavingPercent)
	}
	if seq.EnergyJoules != par.EnergyJoules || seq.BaselineJoules != par.BaselineJoules {
		t.Fatalf("energy integrals diverge: sequential %+v, parallel %+v", seq, par)
	}
}

// TestShardEpochs checks the shard plan covers [0, n) exactly with balanced,
// contiguous ranges.
func TestShardEpochs(t *testing.T) {
	cases := []struct{ n, workers int }{
		{1, 1}, {1, 8}, {5, 2}, {7, 3}, {8, 8}, {100, 7}, {3, 0},
	}
	for _, c := range cases {
		shards := shardEpochs(c.n, c.workers)
		lo := 0
		for _, sh := range shards {
			if sh.lo != lo {
				t.Fatalf("n=%d workers=%d: gap or overlap at %d (shard starts at %d)", c.n, c.workers, lo, sh.lo)
			}
			if sh.hi <= sh.lo {
				t.Fatalf("n=%d workers=%d: empty shard %+v", c.n, c.workers, sh)
			}
			lo = sh.hi
		}
		if lo != c.n {
			t.Fatalf("n=%d workers=%d: shards end at %d, want %d", c.n, c.workers, lo, c.n)
		}
		for _, sh := range shards {
			if size := sh.hi - sh.lo; size > c.n/max(1, min(c.workers, c.n))+1 {
				t.Fatalf("n=%d workers=%d: unbalanced shard %+v", c.n, c.workers, sh)
			}
		}
	}
}

// TestReplayerMidStreamStart checks the property the parallel engine rests
// on: a replayer started at an arbitrary epoch derives the same population as
// one that walked every epoch before it.
func TestReplayerMidStreamStart(t *testing.T) {
	tr := engineTestTrace(t)
	spans := epochSpans(tr.HorizonSec, 300)
	byStart := sortedByStart(tr)
	walked := newReplayer(byStart)
	var full [][]consolidation.VMDemand
	for _, span := range spans {
		// population reuses its buffer across epochs; copy to keep a record.
		full = append(full, append([]consolidation.VMDemand(nil), walked.population(span)...))
	}
	for _, start := range []int{1, len(spans) / 2, len(spans) - 1} {
		fresh := newReplayer(byStart)
		got := append([]consolidation.VMDemand(nil), fresh.population(spans[start])...)
		if !reflect.DeepEqual(full[start], got) {
			t.Fatalf("epoch %d: fresh replayer sees %d VMs, sequential walk saw %d",
				start, len(got), len(full[start]))
		}
	}
}

// TestParallelFreshProfileRaceFree runs the parallel engine with a freshly
// constructed machine profile (no precomputed Sz entry): the shard goroutines
// all evaluate the Sz power fraction, which must not mutate the shared
// profile (caught by -race if it does).
func TestParallelFreshProfileRaceFree(t *testing.T) {
	cfg := Config{
		Trace:      engineTestTrace(t),
		Policy:     consolidation.NewZombieStack(),
		Machine:    energy.HPProfile(),
		ServerSpec: consolidation.DefaultServerSpec(),
		Workers:    8,
	}
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
}

// TestRunRejectsNegativeWorkers checks validation of the new knob.
func TestRunRejectsNegativeWorkers(t *testing.T) {
	cfg := Config{
		Trace:      engineTestTrace(t),
		Policy:     consolidation.NewNeat(),
		Machine:    energy.HPProfile(),
		ServerSpec: consolidation.DefaultServerSpec(),
		Workers:    -1,
	}
	if _, err := Run(cfg); err == nil {
		t.Fatal("expected an error for negative workers")
	}
}

// TestCompareWorkersMatchesCompare checks the comparison wrapper is engine
// agnostic too.
func TestCompareWorkersMatchesCompare(t *testing.T) {
	tr := engineTestTrace(t)
	spec := consolidation.DefaultServerSpec()
	seq, err := Compare(tr, energy.Profiles(), spec)
	if err != nil {
		t.Fatal(err)
	}
	par, err := CompareWorkers(tr, energy.Profiles(), spec, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("CompareWorkers diverges from Compare:\nseq: %+v\npar: %+v", seq, par)
	}
}
