package dcsim

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/consolidation"
	"repro/internal/energy"
	"repro/internal/trace"
)

// smallSweepConfig returns a fast grid covering every policy × machine
// combination on two traces and two consolidation periods.
func smallSweepConfig() SweepConfig {
	orig := trace.DefaultConfig()
	orig.Machines, orig.Tasks, orig.HorizonSec = 40, 300, 4*3600
	mod := trace.ModifiedConfig()
	mod.Machines, mod.Tasks, mod.HorizonSec = 40, 300, 4*3600
	return SweepConfig{
		Policies:     consolidation.AllPolicies(),
		Machines:     energy.Profiles(),
		TraceConfigs: []trace.GeneratorConfig{orig, mod},
		PeriodsSec:   []int64{300, 900},
		ServerSpec:   consolidation.DefaultServerSpec(),
		SweepWorkers: 4,
	}
}

// TestSweepCoversFullGrid runs the grid and checks every policy × machine ×
// trace × period combination is present exactly once, in grid order.
func TestSweepCoversFullGrid(t *testing.T) {
	cfg := smallSweepConfig()
	res, err := Sweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := len(cfg.Policies) * len(cfg.Machines) * len(cfg.TraceConfigs) * len(cfg.PeriodsSec)
	if len(res.Runs) != want {
		t.Fatalf("sweep produced %d runs, want %d", len(res.Runs), want)
	}
	i := 0
	for _, tc := range cfg.TraceConfigs {
		for _, m := range cfg.Machines {
			for _, pol := range cfg.Policies {
				for _, period := range cfg.PeriodsSec {
					run := res.Runs[i]
					if run.Trace != tc.Name || run.Machine != m.Name || run.Policy != pol.Name() || run.PeriodSec != period {
						t.Fatalf("run %d out of grid order: got {%s %s %s %d}, want {%s %s %s %d}",
							i, run.Trace, run.Machine, run.Policy, run.PeriodSec,
							tc.Name, m.Name, pol.Name(), period)
					}
					if s, ok := res.Saving(tc.Name, m.Name, pol.Name(), period); !ok || s != run.SavingPercent {
						t.Fatalf("Saving lookup failed for run %d", i)
					}
					i++
				}
			}
		}
	}
}

// TestSweepDeterministic checks two identical sweeps (with different worker
// counts) produce identical results.
func TestSweepDeterministic(t *testing.T) {
	cfg := smallSweepConfig()
	a, err := Sweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.SweepWorkers = 1
	cfg.EngineWorkers = 3
	b, err := Sweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("sweep results depend on worker scheduling")
	}
}

// TestSweepMatchesDirectRuns cross-checks a few grid cells against direct
// dcsim.Run invocations.
func TestSweepMatchesDirectRuns(t *testing.T) {
	cfg := smallSweepConfig()
	res, err := Sweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := trace.Generate(cfg.TraceConfigs[0])
	if err != nil {
		t.Fatal(err)
	}
	for _, pol := range cfg.Policies {
		direct, err := Run(Config{
			Trace: tr, Policy: pol, Machine: cfg.Machines[0],
			ServerSpec: cfg.ServerSpec, ConsolidationPeriodSec: cfg.PeriodsSec[0],
		})
		if err != nil {
			t.Fatal(err)
		}
		got, ok := res.Saving(tr.Name, cfg.Machines[0].Name, pol.Name(), cfg.PeriodsSec[0])
		if !ok {
			t.Fatalf("missing sweep cell for %s", pol.Name())
		}
		if got != direct.SavingPercent {
			t.Fatalf("%s: sweep cell %v != direct run %v", pol.Name(), got, direct.SavingPercent)
		}
	}
}

// TestSweepAggregation checks the metrics aggregation and rendering.
func TestSweepAggregation(t *testing.T) {
	cfg := smallSweepConfig()
	res, err := Sweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sums := res.SummaryByPolicy()
	perPolicy := len(cfg.Machines) * len(cfg.TraceConfigs) * len(cfg.PeriodsSec)
	for _, pol := range cfg.Policies {
		s, ok := sums[pol.Name()]
		if !ok {
			t.Fatalf("no summary for policy %s", pol.Name())
		}
		if s.Count != perPolicy {
			t.Fatalf("policy %s summarises %d runs, want %d", pol.Name(), s.Count, perPolicy)
		}
		if s.Min > s.Mean || s.Mean > s.Max {
			t.Fatalf("policy %s: inconsistent summary %+v", pol.Name(), s)
		}
	}
	grid := res.Render()
	if strings.Count(grid, "\n") < len(res.Runs) {
		t.Fatalf("grid render too short:\n%s", grid)
	}
	summary := res.RenderSummary()
	for _, pol := range cfg.Policies {
		if !strings.Contains(summary, pol.Name()) {
			t.Fatalf("summary render misses policy %s:\n%s", pol.Name(), summary)
		}
	}
}

// TestSweepValidation checks empty grid dimensions are rejected.
func TestSweepValidation(t *testing.T) {
	base := smallSweepConfig()
	mutations := []func(*SweepConfig){
		func(c *SweepConfig) { c.Policies = nil },
		func(c *SweepConfig) { c.Machines = nil },
		func(c *SweepConfig) { c.TraceConfigs = nil },
		func(c *SweepConfig) { c.PeriodsSec = nil },
		func(c *SweepConfig) { c.PeriodsSec = []int64{0} },
		// A partially-set server spec must be rejected, not silently replaced
		// with the default.
		func(c *SweepConfig) { c.ServerSpec = consolidation.ServerSpec{Cores: 128} },
	}
	for i, mutate := range mutations {
		cfg := base
		mutate(&cfg)
		if _, err := Sweep(cfg); err == nil {
			t.Fatalf("mutation %d: expected a validation error", i)
		}
	}
}

// TestSweepPreBuiltTraces runs the grid over scenario packs from the family
// engine: pre-built traces join the grid after the generated columns, in the
// order given, and a nil or invalid pack is rejected upfront.
func TestSweepPreBuiltTraces(t *testing.T) {
	packParams := trace.FamilyParams{Machines: 40, HorizonSec: 4 * 3600, Tasks: 300, Seed: 42}
	var packs []*trace.Trace
	for _, name := range []string{"diurnal", "serverless"} {
		tr, err := trace.GenerateFamily(name, packParams)
		if err != nil {
			t.Fatal(err)
		}
		packs = append(packs, tr)
	}
	cfg := smallSweepConfig()
	cfg.TraceConfigs = cfg.TraceConfigs[:1]
	cfg.Traces = packs
	res, err := Sweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	perTrace := len(cfg.Policies) * len(cfg.Machines) * len(cfg.PeriodsSec)
	if want := 3 * perTrace; len(res.Runs) != want {
		t.Fatalf("sweep produced %d runs, want %d", len(res.Runs), want)
	}
	// Generated columns first, then the packs in the order given.
	for i, name := range []string{cfg.TraceConfigs[0].Name, "diurnal", "serverless"} {
		for j := 0; j < perTrace; j++ {
			if run := res.Runs[i*perTrace+j]; run.Trace != name {
				t.Fatalf("run %d on trace %q, want %q", i*perTrace+j, run.Trace, name)
			}
		}
	}
	// Pack-only grids are valid; nil and invalid packs are not.
	cfg.TraceConfigs = nil
	if _, err := Sweep(cfg); err != nil {
		t.Fatalf("pack-only sweep: %v", err)
	}
	cfg.Traces = []*trace.Trace{nil}
	if _, err := Sweep(cfg); err == nil {
		t.Fatal("nil pack accepted")
	}
	cfg.Traces = []*trace.Trace{{Name: "broken", Machines: 0, HorizonSec: 100}}
	if _, err := Sweep(cfg); err == nil {
		t.Fatal("invalid pack accepted")
	}
}
