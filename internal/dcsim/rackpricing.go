// Rack-model-backed pricing: instead of multiplying abstract per-state power
// tables by host counts, each epoch's fleet posture is applied to a model
// core.Rack — real ACPI transitions through the platform state machine, Sz
// included — and the epoch energy is integrated through the same
// energy.Accumulator ledger the rack uses, one accumulator pass per server
// in a fixed order. The per-epoch charge is a pure function of the epoch's
// plan, so the sharded parallel engine stays bit-identical to the
// sequential one: each shard simply prices with its own model rack.

package dcsim

import (
	"fmt"

	"repro/internal/acpi"
	"repro/internal/consolidation"
	"repro/internal/core"
	"repro/internal/energy"
)

// rackPricer prices epochs against a model rack. Not safe for concurrent
// use; every engine worker owns one.
type rackPricer struct {
	cfg   *Config
	rack  *core.Rack
	names []string
}

// newRackPricer builds the model rack: one server per fleet machine, with
// tiny fully-reserved memory so zombie transitions delegate nothing (the
// pricer models power states, not the buffer pool).
func newRackPricer(cfg *Config) (*rackPricer, error) {
	board := acpi.DefaultBoardSpec()
	board.MemoryBytes = 1 << 20
	r, err := core.NewRack(core.Config{
		Servers:           cfg.Trace.Machines,
		Board:             board,
		MachineProfile:    cfg.Machine,
		HostReservedBytes: int64(board.MemoryBytes),
		NamePrefix:        "pricer/",
	})
	if err != nil {
		return nil, fmt.Errorf("dcsim: rack pricing model: %w", err)
	}
	return &rackPricer{cfg: cfg, rack: r, names: r.Servers()}, nil
}

// targetStates lays the plan's posture over the server list: active servers
// first, then zombies, then S3 sleepers; Oasis memory servers and anything
// beyond the plan's coverage stay powered on (they serve memory), but their
// energy is charged by the abstract Oasis term, not the ledger.
func (p *rackPricer) targetStates(plan consolidation.FleetPlan) []acpi.SleepState {
	states := make([]acpi.SleepState, len(p.names))
	idx := 0
	fill := func(state acpi.SleepState, n int) {
		for i := 0; i < n && idx < len(states); i++ {
			states[idx] = state
			idx++
		}
	}
	fill(acpi.S0, plan.ActiveHosts)
	fill(acpi.Sz, plan.ZombieHosts)
	fill(acpi.S3, plan.SleepHosts)
	for ; idx < len(states); idx++ {
		states[idx] = acpi.S0
	}
	return states
}

// apply drives the model rack to the epoch's posture with real ACPI
// transitions: a server changing state wakes to S0 first (reclaiming its
// delegation, if any), then suspends into the target.
func (p *rackPricer) apply(plan consolidation.FleetPlan) error {
	for i, target := range p.targetStates(plan) {
		name := p.names[i]
		s, err := p.rack.Server(name)
		if err != nil {
			return err
		}
		current := s.Platform.State()
		if current == target {
			continue
		}
		if current != acpi.S0 {
			if err := p.rack.Wake(name); err != nil {
				return fmt.Errorf("dcsim: rack pricing wake %s: %w", name, err)
			}
		}
		if target != acpi.S0 {
			if err := p.rack.Suspend(name, target); err != nil {
				return fmt.Errorf("dcsim: rack pricing suspend %s to %s: %w", name, target, err)
			}
		}
	}
	return nil
}

// ledgerJoules integrates one epoch through fresh accumulators, one per
// server in name order, reading each server's ACTUAL post-transition state
// back from the platform. Memory servers are charged with the abstract
// Oasis term on top (they have no rack analogue).
func (p *rackPricer) ledgerJoules(plan consolidation.FleetPlan, dtSec float64) (float64, error) {
	dtNs := int64(dtSec * 1e9)
	var joules float64
	memoryServers := plan.MemoryServers
	covered := plan.ActiveHosts + plan.ZombieHosts + plan.SleepHosts
	for i, name := range p.names {
		if i >= covered {
			// Uncovered slots are the plan's memory servers (and any
			// overflow); priced abstractly below.
			break
		}
		s, err := p.rack.Server(name)
		if err != nil {
			return 0, err
		}
		acc := energy.NewAccumulator(p.cfg.Machine)
		state := s.Platform.State()
		acc.SetState(0, state)
		if state == acpi.S0 {
			acc.SetUtilization(0, plan.ActiveCPUUtilization)
		}
		acc.AdvanceTo(dtNs)
		joules += acc.Joules()
	}
	joules += float64(memoryServers) * p.cfg.OasisMemoryServerFraction * p.cfg.Machine.MaxPowerWatts * dtSec
	return joules, nil
}

// baselineJoules prices the no-consolidation fleet through the same ledger:
// every server in S0 with the load spread across the whole fleet.
func (p *rackPricer) baselineJoules(vms []consolidation.VMDemand, dtSec float64) float64 {
	var usedCPU float64
	for _, v := range vms {
		usedCPU += v.UsedCPU
	}
	util := 0.0
	if n := len(p.names); n > 0 && p.cfg.ServerSpec.Cores > 0 {
		util = usedCPU / (float64(n) * p.cfg.ServerSpec.Cores)
		if util > 1 {
			util = 1
		}
	}
	dtNs := int64(dtSec * 1e9)
	var joules float64
	for range p.names {
		acc := energy.NewAccumulator(p.cfg.Machine)
		acc.SetUtilization(0, util)
		acc.AdvanceTo(dtNs)
		joules += acc.Joules()
	}
	return joules
}

// priceEpoch returns the epoch's consolidated and baseline energy.
func (p *rackPricer) priceEpoch(plan consolidation.FleetPlan, vms []consolidation.VMDemand, dtSec float64) (float64, float64, error) {
	if err := p.apply(plan); err != nil {
		return 0, 0, err
	}
	joules, err := p.ledgerJoules(plan, dtSec)
	if err != nil {
		return 0, 0, err
	}
	return joules, p.baselineJoules(vms, dtSec), nil
}
