package dcsim

import (
	"reflect"
	"testing"

	"repro/internal/consolidation"
	"repro/internal/energy"
	"repro/internal/trace"
)

// TestParallelMatchesSequentialWithTransitions extends the bit-identity
// guarantee to the event-driven engine: with transition costs enabled the
// per-epoch bill depends on the previous epoch's plan, which shards derive
// with a one-epoch lookback, and the parallel result must still not differ in
// a single output field.
func TestParallelMatchesSequentialWithTransitions(t *testing.T) {
	tr := engineTestTrace(t)
	for _, m := range energy.Profiles() {
		for _, pol := range consolidation.AllPolicies() {
			cfg := Config{
				Trace:           tr,
				Policy:          pol,
				Machine:         m,
				ServerSpec:      consolidation.DefaultServerSpec(),
				TransitionCosts: true,
			}
			seq, err := Run(cfg)
			if err != nil {
				t.Fatalf("%s/%s sequential: %v", m.Name, pol.Name(), err)
			}
			for _, workers := range []int{2, 4, 7, 64} {
				cfg.Workers = workers
				par, err := Run(cfg)
				if err != nil {
					t.Fatalf("%s/%s workers=%d: %v", m.Name, pol.Name(), workers, err)
				}
				if !reflect.DeepEqual(seq, par) {
					t.Errorf("%s/%s workers=%d: costed parallel result diverges\nseq: %+v\npar: %+v",
						m.Name, pol.Name(), workers, seq, par)
				}
			}
		}
	}
}

// TestTransitionCostsReduceSavings is the regression the event engine exists
// for: the steady-state integration is an optimistic bound, so charging the
// transitions of the same scenario must strictly lower the reported saving
// for every contender policy.
func TestTransitionCostsReduceSavings(t *testing.T) {
	tr := engineTestTrace(t)
	for _, m := range energy.Profiles() {
		for _, pol := range consolidation.Contenders() {
			cfg := Config{
				Trace:      tr,
				Policy:     pol,
				Machine:    m,
				ServerSpec: consolidation.DefaultServerSpec(),
			}
			steady, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			cfg.TransitionCosts = true
			costed, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !costed.TransitionCosts || steady.TransitionCosts {
				t.Errorf("%s/%s: TransitionCosts flags wrong: steady=%v costed=%v",
					m.Name, pol.Name(), steady.TransitionCosts, costed.TransitionCosts)
			}
			if costed.TransitionJoules <= 0 {
				t.Errorf("%s/%s: no transition energy charged", m.Name, pol.Name())
			}
			if costed.StateTransitions <= 0 {
				t.Errorf("%s/%s: no state transitions counted", m.Name, pol.Name())
			}
			if costed.SavingPercent >= steady.SavingPercent {
				t.Errorf("%s/%s: costed saving %.4f%% not below steady %.4f%%",
					m.Name, pol.Name(), costed.SavingPercent, steady.SavingPercent)
			}
			if costed.BaselineJoules != steady.BaselineJoules {
				t.Errorf("%s/%s: baseline must not pay transition costs (%.1f vs %.1f)",
					m.Name, pol.Name(), costed.BaselineJoules, steady.BaselineJoules)
			}
			if got, want := costed.EnergyJoules, steady.EnergyJoules+costed.TransitionJoules; !closeEnough(got, want) {
				t.Errorf("%s/%s: EnergyJoules %.3f should be steady %.3f + transitions %.3f",
					m.Name, pol.Name(), got, steady.EnergyJoules, costed.TransitionJoules)
			}
		}
	}
}

// closeEnough compares two accumulations of the same terms added in different
// groupings (steady+transitions summed per epoch versus across epochs).
func closeEnough(a, b float64) bool {
	diff := a - b
	if diff < 0 {
		diff = -diff
	}
	scale := a
	if scale < 0 {
		scale = -scale
	}
	if scale < 1 {
		scale = 1
	}
	return diff/scale < 1e-9
}

// TestFirstEpochPaysConsolidation pins the initial posture: the fleet starts
// with every server awake (the baseline posture), so even a single-epoch run
// pays the suspends that consolidate it.
func TestFirstEpochPaysConsolidation(t *testing.T) {
	// A single 300 s epoch with a lightly loaded fleet: the plan sleeps most
	// of the 60 hosts, and all of those suspends happen in epoch 0.
	tr, err := trace.Generate(trace.GeneratorConfig{
		Name: "first-epoch", Machines: 60, HorizonSec: 300, Tasks: 40,
		MemoryToCPURatio: 3, MeanUtilization: 0.35, IdleFraction: 0.25, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Trace:                  tr,
		Policy:                 consolidation.NewZombieStack(),
		Machine:                energy.HPProfile(),
		ServerSpec:             consolidation.DefaultServerSpec(),
		ConsolidationPeriodSec: tr.HorizonSec, // one epoch
		TransitionCosts:        true,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Epochs != 1 {
		t.Fatalf("epochs = %d, want 1", res.Epochs)
	}
	if res.MeanSleepHosts+res.MeanZombieHosts == 0 {
		t.Fatalf("scenario did not consolidate at all: %+v", res)
	}
	if res.StateTransitions == 0 || res.TransitionJoules <= 0 {
		t.Errorf("first epoch should pay the initial consolidation: %+v", res)
	}
}

// TestMigrationDrainCharged checks the drain accounting is populated when the
// plan releases hosts (the engine trace has enough churn for that to happen).
func TestMigrationDrainCharged(t *testing.T) {
	tr := engineTestTrace(t)
	cfg := Config{
		Trace:           tr,
		Policy:          consolidation.NewNeat(),
		Machine:         energy.HPProfile(),
		ServerSpec:      consolidation.DefaultServerSpec(),
		TransitionCosts: true,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Migrations == 0 || res.MigrationSeconds <= 0 {
		t.Errorf("expected migration drains over %d epochs: %+v", res.Epochs, res)
	}
}

// TestTransitionModelValidation rejects broken models.
func TestTransitionModelValidation(t *testing.T) {
	tr := engineTestTrace(t)
	base := Config{
		Trace:           tr,
		Policy:          consolidation.NewNeat(),
		Machine:         energy.HPProfile(),
		ServerSpec:      consolidation.DefaultServerSpec(),
		TransitionCosts: true,
	}
	bad := []*TransitionModel{
		{},
		func() *TransitionModel { m := DefaultTransitionModel(); m.LocalMemoryFraction = 1.5; return m }(),
		func() *TransitionModel { m := DefaultTransitionModel(); m.RemoteFaultsPerGiBPerSec = -1; return m }(),
		func() *TransitionModel { m := DefaultTransitionModel(); m.RemotePageBytes = 0; return m }(),
	}
	for i, tm := range bad {
		cfg := base
		cfg.Transitions = tm
		if _, err := Run(cfg); err == nil {
			t.Errorf("bad transition model %d accepted", i)
		}
	}
	cfg := base
	cfg.Transitions = DefaultTransitionModel()
	if _, err := Run(cfg); err != nil {
		t.Errorf("default transition model rejected: %v", err)
	}
}

// TestSweepTransitionAxis checks the sweep's transition-cost axis: the grid
// doubles, both branches are retrievable, and the costed branch saves less.
func TestSweepTransitionAxis(t *testing.T) {
	cfg := DefaultSweepConfig()
	for i := range cfg.TraceConfigs {
		cfg.TraceConfigs[i].Machines = 40
		cfg.TraceConfigs[i].Tasks = 300
		cfg.TraceConfigs[i].HorizonSec = 4 * 3600
	}
	cfg.SweepWorkers = 4
	res, err := Sweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantRuns := len(cfg.Policies) * len(cfg.Machines) * len(cfg.TraceConfigs) * len(cfg.PeriodsSec) * 2
	if len(res.Runs) != wantRuns {
		t.Fatalf("runs = %d, want %d", len(res.Runs), wantRuns)
	}
	steady, ok1 := res.Saving("google-like", "HP", "zombiestack", 300)
	costed, ok2 := res.SavingCosted("google-like", "HP", "zombiestack", 300)
	if !ok1 || !ok2 {
		t.Fatal("missing grid cells for the transition axis")
	}
	if costed >= steady {
		t.Errorf("costed saving %.4f%% not below steady %.4f%%", costed, steady)
	}

	// A mixed-axis sweep must keep the two accounting models apart in the
	// per-policy aggregation instead of blending them into one statistic.
	sums := res.SummaryByPolicy()
	if _, blended := sums["zombiestack"]; blended {
		t.Error("mixed-axis summary blends steady and costed runs under one key")
	}
	s, okS := sums["zombiestack (steady)"]
	c, okC := sums["zombiestack (costed)"]
	if !okS || !okC {
		t.Fatalf("mixed-axis summary keys missing: %v", sums)
	}
	if c.Mean >= s.Mean {
		t.Errorf("costed mean %.4f%% not below steady mean %.4f%%", c.Mean, s.Mean)
	}

	// A costed-only sweep still resolves Saving lookups (falling back to the
	// costed branch) and keeps unqualified policy keys.
	cfg.TransitionCosts = []bool{true}
	onlyCosted, err := Sweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := onlyCosted.Saving("google-like", "HP", "zombiestack", 300); !ok || got != costed {
		t.Errorf("costed-only Saving = (%v, %v), want (%v, true)", got, ok, costed)
	}
	if _, ok := onlyCosted.SummaryByPolicy()["zombiestack"]; !ok {
		t.Error("single-branch sweep should keep unqualified policy keys")
	}
}
