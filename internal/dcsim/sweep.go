// The scenario-sweep harness: a grid of {consolidation policy, machine power
// profile, trace, consolidation period} scenarios is executed concurrently by
// a pool of sweep workers (each scenario may itself shard its epochs, see
// parallel.go). Results land in grid order regardless of scheduling, so a
// sweep is deterministic, and the aggregation helpers summarise the grid with
// internal/metrics.

package dcsim

import (
	"fmt"
	"sync"

	"repro/internal/consolidation"
	"repro/internal/energy"
	"repro/internal/metrics"
	"repro/internal/trace"
)

// SweepConfig describes a scenario grid: the cross product of Policies,
// Machines, TraceConfigs and PeriodsSec.
type SweepConfig struct {
	// Policies are the consolidation policies to compare. Plan must be safe
	// for concurrent use (the bundled policies are stateless).
	Policies []consolidation.Policy
	// Machines are the per-machine power profiles to sweep.
	Machines []*energy.MachineProfile
	// TraceConfigs generate the workload of each scenario column (e.g. the
	// original and memory-heavy Google-like traces at several scales). Each
	// config is generated exactly once and shared read-only by the runs.
	TraceConfigs []trace.GeneratorConfig
	// Traces are pre-built workload columns appended after the generated ones
	// — scenario packs from the family engine (trace.GenerateFamily) or
	// imported cluster traces (trace.Import). Shared read-only by the runs;
	// at least one of TraceConfigs and Traces must be non-empty.
	Traces []*trace.Trace
	// PeriodsSec are the consolidation periods to sweep.
	PeriodsSec []int64
	// TransitionCosts is the transition-cost axis: each entry runs the grid
	// with the event-driven accounting on or off, so Figure 10 can be
	// reported as both the optimistic steady-state bound and the faithful
	// costed reproduction. Empty means {false} (steady state only).
	TransitionCosts []bool
	// ServerSpec is the capacity of every server in every scenario.
	ServerSpec consolidation.ServerSpec
	// RackPricing prices every scenario's steady-state epochs through the
	// rack model's energy ledger instead of the abstract power tables (see
	// Config.RackPricing).
	RackPricing bool
	// SweepWorkers bounds how many scenarios run concurrently; 1 by default.
	SweepWorkers int
	// EngineWorkers is the per-run epoch-shard worker count (Config.Workers).
	EngineWorkers int
}

// DefaultSweepConfig returns the Figure 10 grid: the three contender policies
// on both testbed machines, on the original and memory-heavy traces, at the
// paper's 300 s consolidation period, reported both without and with
// transition costs.
func DefaultSweepConfig() SweepConfig {
	return SweepConfig{
		Policies:        consolidation.Contenders(),
		Machines:        energy.Profiles(),
		TraceConfigs:    []trace.GeneratorConfig{trace.DefaultConfig(), trace.ModifiedConfig()},
		PeriodsSec:      []int64{300},
		TransitionCosts: []bool{false, true},
		ServerSpec:      consolidation.DefaultServerSpec(),
	}
}

// validate checks the grid is non-empty in every dimension.
func (c *SweepConfig) validate() error {
	switch {
	case len(c.Policies) == 0:
		return fmt.Errorf("dcsim: sweep needs at least one policy")
	case len(c.Machines) == 0:
		return fmt.Errorf("dcsim: sweep needs at least one machine profile")
	case len(c.TraceConfigs) == 0 && len(c.Traces) == 0:
		return fmt.Errorf("dcsim: sweep needs at least one trace config or pre-built trace")
	case len(c.PeriodsSec) == 0:
		return fmt.Errorf("dcsim: sweep needs at least one consolidation period")
	}
	for _, p := range c.PeriodsSec {
		if p <= 0 {
			return fmt.Errorf("dcsim: sweep period %d must be positive", p)
		}
	}
	return nil
}

// SweepResult holds every run of a sweep, in grid order (traces outermost,
// then machines, then policies, then periods, then the transition-cost axis
// innermost).
type SweepResult struct {
	Runs []Result
}

// Sweep generates each trace once, then runs the scenario grid concurrently
// on SweepWorkers goroutines. The returned runs are in grid order and
// independent of scheduling; with the same config a sweep is fully
// deterministic.
func Sweep(cfg SweepConfig) (*SweepResult, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	traces := make([]*trace.Trace, len(cfg.TraceConfigs), len(cfg.TraceConfigs)+len(cfg.Traces))
	for i, tc := range cfg.TraceConfigs {
		tr, err := trace.Generate(tc)
		if err != nil {
			return nil, fmt.Errorf("dcsim: sweep trace %q: %w", tc.Name, err)
		}
		traces[i] = tr
	}
	for _, tr := range cfg.Traces {
		if tr == nil {
			return nil, fmt.Errorf("dcsim: sweep given a nil pre-built trace")
		}
		if err := tr.Validate(); err != nil {
			return nil, fmt.Errorf("dcsim: sweep trace %q: %w", tr.Name, err)
		}
		traces = append(traces, tr)
	}

	// A zero-value spec gets the default; a partially-set spec is passed
	// through so Run's validation rejects it instead of silently simulating
	// different hardware than the caller asked for.
	spec := cfg.ServerSpec
	if spec == (consolidation.ServerSpec{}) {
		spec = consolidation.DefaultServerSpec()
	}
	transitionAxis := cfg.TransitionCosts
	if len(transitionAxis) == 0 {
		transitionAxis = []bool{false}
	}
	var cells []Config
	for _, tr := range traces {
		for _, m := range cfg.Machines {
			for _, pol := range cfg.Policies {
				for _, period := range cfg.PeriodsSec {
					for _, transitions := range transitionAxis {
						cells = append(cells, Config{
							Trace:                  tr,
							Policy:                 pol,
							Machine:                m,
							ServerSpec:             spec,
							ConsolidationPeriodSec: period,
							Workers:                cfg.EngineWorkers,
							TransitionCosts:        transitions,
							RackPricing:            cfg.RackPricing,
						})
					}
				}
			}
		}
	}

	workers := cfg.SweepWorkers
	if workers < 1 {
		workers = 1
	}
	if workers > len(cells) {
		workers = len(cells)
	}
	res := &SweepResult{Runs: make([]Result, len(cells))}
	errs := make([]error, len(cells))
	work := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				res.Runs[i], errs[i] = Run(cells[i])
			}
		}()
	}
	for i := range cells {
		work <- i
	}
	close(work)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return res, nil
}

// Saving returns the energy saving of one grid cell. When the sweep ran the
// transition-cost axis both ways, the steady-state (costs off) run wins — use
// SavingCosted for the other branch; a sweep that ran with transition costs
// only returns its costed cell.
func (r *SweepResult) Saving(traceName, machine, policy string, periodSec int64) (float64, bool) {
	if s, ok := r.savingWhere(traceName, machine, policy, periodSec, false); ok {
		return s, true
	}
	return r.savingWhere(traceName, machine, policy, periodSec, true)
}

// SavingCosted returns the energy saving of one grid cell simulated with
// transition costs enabled.
func (r *SweepResult) SavingCosted(traceName, machine, policy string, periodSec int64) (float64, bool) {
	return r.savingWhere(traceName, machine, policy, periodSec, true)
}

// savingWhere looks up one grid cell on every axis.
func (r *SweepResult) savingWhere(traceName, machine, policy string, periodSec int64, transitions bool) (float64, bool) {
	for _, run := range r.Runs {
		if run.Trace == traceName && run.Machine == machine && run.Policy == policy &&
			run.PeriodSec == periodSec && run.TransitionCosts == transitions {
			return run.SavingPercent, true
		}
	}
	return 0, false
}

// SavingsByPolicy groups the grid's energy savings per policy, in run order.
// When the sweep ran the transition-cost axis both ways, the two accounting
// models are kept apart ("neat (steady)" vs "neat (costed)") so a blended
// statistic — neither the optimistic bound nor the costed reproduction — is
// never reported.
func (r *SweepResult) SavingsByPolicy() map[string][]float64 {
	by := make(map[string][]float64)
	for _, run := range r.Runs {
		by[r.policyKey(run)] = append(by[r.policyKey(run)], run.SavingPercent)
	}
	return by
}

// policyKey labels a run's aggregation group: the policy name, qualified by
// the accounting model when the sweep contains both branches.
func (r *SweepResult) policyKey(run Result) string {
	if !r.mixedTransitionAxis() {
		return run.Policy
	}
	return run.Policy + " (" + transitionLabel(run.TransitionCosts) + ")"
}

// mixedTransitionAxis reports whether the sweep holds both steady-state and
// costed runs.
func (r *SweepResult) mixedTransitionAxis() bool {
	var steady, costed bool
	for _, run := range r.Runs {
		if run.TransitionCosts {
			costed = true
		} else {
			steady = true
		}
	}
	return steady && costed
}

// SummaryByPolicy reduces each policy's savings across the whole grid to
// descriptive statistics (metrics.Summarize).
func (r *SweepResult) SummaryByPolicy() map[string]metrics.Summary {
	sums := make(map[string]metrics.Summary)
	for pol, savings := range r.SavingsByPolicy() {
		sums[pol] = metrics.Summarize(savings)
	}
	return sums
}

// Render formats the full grid as an aligned table, one row per run.
func (r *SweepResult) Render() string {
	t := metrics.NewTable("Scenario sweep — % energy saving per run",
		"trace", "machine", "policy", "period-s", "transitions", "saving-%", "active", "zombie", "sleep")
	for _, run := range r.Runs {
		t.AddRow(run.Trace, run.Machine, run.Policy,
			metrics.FormatFloat(float64(run.PeriodSec)),
			transitionLabel(run.TransitionCosts),
			metrics.FormatFloat(run.SavingPercent),
			metrics.FormatFloat(run.MeanActiveHosts),
			metrics.FormatFloat(run.MeanZombieHosts),
			metrics.FormatFloat(run.MeanSleepHosts))
	}
	return t.String()
}

// transitionLabel names one branch of the transition-cost axis.
func transitionLabel(on bool) string {
	if on {
		return "costed"
	}
	return "steady"
}

// RenderSummary formats the per-policy aggregation of the grid. Policies
// appear in first-run order so the output is deterministic.
func (r *SweepResult) RenderSummary() string {
	sums := r.SummaryByPolicy()
	var order []string
	seen := make(map[string]bool)
	for _, run := range r.Runs {
		if key := r.policyKey(run); !seen[key] {
			seen[key] = true
			order = append(order, key)
		}
	}
	t := metrics.NewTable("Scenario sweep — % energy saving per policy across the grid",
		"policy", "runs", "mean", "min", "max", "p50")
	for _, pol := range order {
		s := sums[pol]
		t.AddRow(pol,
			metrics.FormatFloat(float64(s.Count)),
			metrics.FormatFloat(s.Mean),
			metrics.FormatFloat(s.Min),
			metrics.FormatFloat(s.Max),
			metrics.FormatFloat(s.P50))
	}
	return t.String()
}
