package dcsim

import (
	"runtime"
	"testing"

	"repro/internal/consolidation"
	"repro/internal/energy"
	"repro/internal/trace"
)

// benchConfig is the canonical engine benchmark scenario — the same trace
// and configuration cmd/benchfleet records in BENCH_fleet.json.
func benchConfig(b *testing.B, workers int, transitions bool) Config {
	b.Helper()
	tr, err := trace.Generate(trace.GeneratorConfig{
		Name: "bench", Machines: 200, HorizonSec: 24 * 3600, Tasks: 3000,
		MemoryToCPURatio: 3, MeanUtilization: 0.35, IdleFraction: 0.25, Seed: 42,
	})
	if err != nil {
		b.Fatal(err)
	}
	return Config{
		Trace:                  tr,
		Policy:                 consolidation.NewZombieStack(),
		Machine:                energy.HPProfile(),
		ServerSpec:             consolidation.DefaultServerSpec(),
		ConsolidationPeriodSec: 30,
		Workers:                workers,
		TransitionCosts:        transitions,
	}
}

func benchRun(b *testing.B, cfg Config) {
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDCSimSequential(b *testing.B) { benchRun(b, benchConfig(b, 0, false)) }

func BenchmarkDCSimParallel(b *testing.B) {
	benchRun(b, benchConfig(b, runtime.GOMAXPROCS(0), false))
}

func BenchmarkDCSimTransitions(b *testing.B) { benchRun(b, benchConfig(b, 0, true)) }

// countAllocs returns the number of heap allocations fn performs.
func countAllocs(fn func()) uint64 {
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	fn()
	runtime.ReadMemStats(&after)
	return after.Mallocs - before.Mallocs
}

// TestEpochLoopAllocationBudget pins the allocation-free epoch loop: a run's
// allocation count is dominated by per-run setup (the sorted task slice, the
// replayer and its buffers, the spans and stats slices) and must NOT scale
// with the number of epochs. Tripling the epoch count by shrinking the
// consolidation period may only add a fixed slack — if the per-epoch path
// (population, plan, pricing, stats) starts allocating, the growth is at
// least one allocation per extra epoch and the budget fails loudly.
func TestEpochLoopAllocationBudget(t *testing.T) {
	tr := engineTestTrace(t)
	cfg := Config{
		Trace:      tr,
		Policy:     consolidation.NewZombieStack(),
		Machine:    energy.HPProfile(),
		ServerSpec: consolidation.DefaultServerSpec(),
	}
	runOnce := func(periodSec int64) func() {
		c := cfg
		c.ConsolidationPeriodSec = periodSec
		return func() {
			if _, err := Run(c); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Warm up lazy runtime and profile state (the Sz power-fraction cache,
	// trace bookkeeping) so neither measurement pays first-use allocations.
	runOnce(300)()
	runOnce(100)()

	base := countAllocs(runOnce(300))
	tripled := countAllocs(runOnce(100))

	spansBase := len(epochSpans(tr.HorizonSec, 300))
	spansTripled := len(epochSpans(tr.HorizonSec, 100))
	extraEpochs := uint64(spansTripled - spansBase)
	// The budget is far below one allocation per extra epoch (the signature
	// of a per-epoch allocation creeping back in) but absorbs background
	// runtime noise between the two ReadMemStats windows.
	budget := base + extraEpochs/4
	if tripled > budget {
		t.Fatalf("epoch loop allocates per epoch: %d epochs cost %d allocs, %d epochs cost %d (budget %d)",
			spansBase, base, spansTripled, tripled, budget)
	}
}
