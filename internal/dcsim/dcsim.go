// Package dcsim is the large-scale datacenter simulator of Section 6.6.2: it
// replays a (Google-like) task trace against a server fleet, runs a
// consolidation policy at a fixed period, and integrates the fleet's energy
// using the per-state power model of internal/energy. The output is the
// energy saving relative to the no-consolidation baseline, which is what
// Figure 10 reports for Neat, Oasis and ZombieStack on HP and Dell servers.
package dcsim

import (
	"fmt"
	"sort"

	"repro/internal/acpi"
	"repro/internal/consolidation"
	"repro/internal/energy"
	"repro/internal/trace"
)

// Config parameterises one simulation run.
type Config struct {
	// Trace is the workload to replay.
	Trace *trace.Trace
	// Policy is the consolidation policy under test.
	Policy consolidation.Policy
	// Machine is the power profile of every server in the fleet.
	Machine *energy.MachineProfile
	// ServerSpec is the capacity of every server.
	ServerSpec consolidation.ServerSpec
	// ConsolidationPeriodSec is how often the policy re-plans (OpenStack Neat
	// style periodic consolidation); 300 s by default.
	ConsolidationPeriodSec int64
	// OasisMemoryServerFraction is the relative power of an Oasis memory
	// server (0.4 per the paper) — only used when the policy plans them.
	OasisMemoryServerFraction float64
}

// Validate checks the configuration.
func (c *Config) Validate() error {
	if c.Trace == nil {
		return fmt.Errorf("dcsim: a trace is required")
	}
	if err := c.Trace.Validate(); err != nil {
		return err
	}
	if c.Policy == nil {
		return fmt.Errorf("dcsim: a consolidation policy is required")
	}
	if c.Machine == nil {
		return fmt.Errorf("dcsim: a machine power profile is required")
	}
	if err := c.Machine.Validate(); err != nil {
		return err
	}
	if c.ServerSpec.Cores <= 0 || c.ServerSpec.MemGiB <= 0 {
		return fmt.Errorf("dcsim: server spec needs positive capacity")
	}
	return nil
}

// applyDefaults fills optional fields.
func (c *Config) applyDefaults() {
	if c.ConsolidationPeriodSec <= 0 {
		c.ConsolidationPeriodSec = 300
	}
	if c.OasisMemoryServerFraction <= 0 {
		c.OasisMemoryServerFraction = 0.4
	}
}

// Result summarises one simulation run.
type Result struct {
	Policy  string
	Machine string
	Trace   string
	// EnergyJoules is the fleet energy over the trace horizon.
	EnergyJoules float64
	// BaselineJoules is the no-consolidation fleet energy over the same
	// horizon (all servers in S0).
	BaselineJoules float64
	// SavingPercent is the Figure 10 metric: 100*(1 - Energy/Baseline).
	SavingPercent float64
	// MeanActiveHosts is the time-weighted mean number of S0 servers.
	MeanActiveHosts float64
	// MeanZombieHosts is the time-weighted mean number of Sz servers.
	MeanZombieHosts float64
	// MeanSleepHosts is the time-weighted mean number of S3 servers.
	MeanSleepHosts float64
	// MeanActiveUtilization is the time-weighted mean CPU utilization of the
	// active servers.
	MeanActiveUtilization float64
	// Epochs is the number of consolidation periods simulated.
	Epochs int
}

// Run executes the simulation.
func Run(cfg Config) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	cfg.applyDefaults()
	tr := cfg.Trace
	total := tr.Machines
	period := cfg.ConsolidationPeriodSec

	// Index task start/end events by epoch for efficient replay.
	running := make(map[int]trace.Task)
	byStart := append([]trace.Task(nil), tr.Tasks...)
	sort.Slice(byStart, func(i, j int) bool { return byStart[i].StartSec < byStart[j].StartSec })
	next := 0

	res := Result{Policy: cfg.Policy.Name(), Machine: cfg.Machine.Name, Trace: tr.Name}
	var horizonSec float64

	for epochStart := int64(0); epochStart < tr.HorizonSec; epochStart += period {
		epochEnd := epochStart + period
		if epochEnd > tr.HorizonSec {
			epochEnd = tr.HorizonSec
		}
		// Admit tasks starting before the epoch end, retire finished ones.
		for next < len(byStart) && byStart[next].StartSec < epochEnd {
			running[byStart[next].ID] = byStart[next]
			next++
		}
		for id, t := range running {
			if t.EndSec <= epochStart {
				delete(running, id)
			}
		}

		// Build the VM population of this epoch.
		vms := make([]consolidation.VMDemand, 0, len(running))
		for _, t := range running {
			vms = append(vms, consolidation.VMDemand{
				ID:           fmt.Sprintf("task-%d", t.ID),
				BookedCPU:    t.BookedCPU,
				BookedMemGiB: t.BookedMemGiB,
				UsedCPU:      t.UsedCPU,
				UsedMemGiB:   t.UsedMemGiB,
			})
		}
		sort.Slice(vms, func(i, j int) bool { return vms[i].ID < vms[j].ID })

		plan := cfg.Policy.Plan(vms, cfg.ServerSpec, total)
		dt := float64(epochEnd - epochStart)
		horizonSec += dt

		// Integrate the fleet power over the epoch.
		res.EnergyJoules += fleetPower(cfg, plan) * dt
		res.BaselineJoules += baselinePower(cfg, vms, total) * dt

		res.MeanActiveHosts += float64(plan.ActiveHosts) * dt
		res.MeanZombieHosts += float64(plan.ZombieHosts) * dt
		res.MeanSleepHosts += float64(plan.SleepHosts) * dt
		res.MeanActiveUtilization += plan.ActiveCPUUtilization * dt
		res.Epochs++
	}

	if horizonSec > 0 {
		res.MeanActiveHosts /= horizonSec
		res.MeanZombieHosts /= horizonSec
		res.MeanSleepHosts /= horizonSec
		res.MeanActiveUtilization /= horizonSec
	}
	if res.BaselineJoules > 0 {
		res.SavingPercent = 100 * (1 - res.EnergyJoules/res.BaselineJoules)
	}
	return res, nil
}

// fleetPower returns the fleet's power (watts) under a consolidation plan.
func fleetPower(cfg Config, plan consolidation.FleetPlan) float64 {
	m := cfg.Machine
	p := float64(plan.ActiveHosts) * m.PowerWatts(acpi.S0, plan.ActiveCPUUtilization)
	p += float64(plan.ZombieHosts) * m.PowerWatts(acpi.Sz, 0)
	p += float64(plan.MemoryServers) * cfg.OasisMemoryServerFraction * m.MaxPowerWatts
	p += float64(plan.SleepHosts) * m.PowerWatts(acpi.S3, 0)
	return p
}

// baselinePower returns the fleet's power without consolidation: every server
// stays in S0 and the load spreads across the whole fleet.
func baselinePower(cfg Config, vms []consolidation.VMDemand, totalServers int) float64 {
	var usedCPU float64
	for _, v := range vms {
		usedCPU += v.UsedCPU
	}
	util := 0.0
	if totalServers > 0 && cfg.ServerSpec.Cores > 0 {
		util = usedCPU / (float64(totalServers) * cfg.ServerSpec.Cores)
		if util > 1 {
			util = 1
		}
	}
	return float64(totalServers) * cfg.Machine.PowerWatts(acpi.S0, util)
}

// Comparison is the Figure 10 experiment: every policy on every machine
// profile for one trace.
type Comparison struct {
	Trace   string
	Results []Result
}

// Compare runs Neat, Oasis and ZombieStack (plus the baseline used for the
// saving computation) on the trace for each machine profile.
func Compare(tr *trace.Trace, machines []*energy.MachineProfile, spec consolidation.ServerSpec) (Comparison, error) {
	cmp := Comparison{Trace: tr.Name}
	for _, m := range machines {
		for _, pol := range []consolidation.Policy{consolidation.NewNeat(), consolidation.NewOasis(), consolidation.NewZombieStack()} {
			res, err := Run(Config{Trace: tr, Policy: pol, Machine: m, ServerSpec: spec})
			if err != nil {
				return Comparison{}, err
			}
			cmp.Results = append(cmp.Results, res)
		}
	}
	return cmp, nil
}

// Saving returns the saving of a given policy/machine pair from a comparison.
func (c Comparison) Saving(policy, machine string) (float64, bool) {
	for _, r := range c.Results {
		if r.Policy == policy && r.Machine == machine {
			return r.SavingPercent, true
		}
	}
	return 0, false
}
