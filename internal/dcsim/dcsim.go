package dcsim

import (
	"cmp"
	"fmt"
	"slices"
	"strings"

	"repro/internal/acpi"
	"repro/internal/chaos"
	"repro/internal/consolidation"
	"repro/internal/energy"
	"repro/internal/trace"
)

// Config parameterises one simulation run.
type Config struct {
	// Trace is the workload to replay.
	Trace *trace.Trace
	// Policy is the consolidation policy under test. Plan must be safe for
	// concurrent use (the bundled policies are stateless) when Workers > 1 or
	// when the config is part of a Sweep.
	Policy consolidation.Policy
	// Machine is the power profile of every server in the fleet.
	Machine *energy.MachineProfile
	// ServerSpec is the capacity of every server.
	ServerSpec consolidation.ServerSpec
	// ConsolidationPeriodSec is how often the policy re-plans (OpenStack Neat
	// style periodic consolidation); 300 s by default.
	ConsolidationPeriodSec int64
	// OasisMemoryServerFraction is the relative power of an Oasis memory
	// server (0.4 per the paper) — only used when the policy plans them.
	OasisMemoryServerFraction float64
	// Workers shards the per-epoch accounting across that many goroutines.
	// 0 or 1 selects the sequential engine. Results are identical either way.
	Workers int
	// TransitionCosts turns the steady-state integration into the
	// event-driven accounting: every epoch additionally charges the ACPI
	// suspend/wake transitions, migration drains and remote-memory churn
	// implied by the change of plan (see transitions.go). Off by default,
	// which reproduces the optimistic Figure 10 bound.
	TransitionCosts bool
	// Transitions overrides the transition cost parameters; nil selects
	// DefaultTransitionModel. Ignored unless TransitionCosts is set.
	Transitions *TransitionModel
	// RackPricing switches the steady-state epoch pricing from the abstract
	// per-state power tables to the rack model's energy ledger: every
	// epoch's posture is applied to a model core.Rack (real ACPI
	// transitions, Sz included) and integrated through energy.Accumulator,
	// one server at a time (see rackpricing.go). Oasis memory servers keep
	// the abstract fractional charge — they have no rack analogue. The
	// parallel engine remains bit-identical to the sequential one: each
	// shard prices with its own model rack and the per-epoch charge is a
	// pure function of the epoch's plan.
	RackPricing bool
	// Chaos replays the run under a deterministic fault schedule: crashed
	// servers shrink the capacity the policy plans against and burn S0 idle
	// power, fabric degradation windows scale the remote-memory churn, failed
	// wakes bill wasted transitions, and crashed serving servers bill
	// re-homing transfers (see chaos.go). Every chaos charge is a pure
	// function of (plan, epoch span, epoch posture), so the parallel engine
	// stays bit-identical — and an empty plan is bit-identical to no plan.
	Chaos *chaos.Plan
}

// Validate checks the configuration.
func (c *Config) Validate() error {
	if c.Trace == nil {
		return fmt.Errorf("dcsim: a trace is required")
	}
	if err := c.Trace.Validate(); err != nil {
		return err
	}
	if c.Policy == nil {
		return fmt.Errorf("dcsim: a consolidation policy is required")
	}
	if c.Machine == nil {
		return fmt.Errorf("dcsim: a machine power profile is required")
	}
	if err := c.Machine.Validate(); err != nil {
		return err
	}
	if c.ServerSpec.Cores <= 0 || c.ServerSpec.MemGiB <= 0 {
		return fmt.Errorf("dcsim: server spec needs positive capacity")
	}
	if c.Workers < 0 {
		return fmt.Errorf("dcsim: negative worker count %d", c.Workers)
	}
	if c.Transitions != nil {
		if err := c.Transitions.Validate(); err != nil {
			return err
		}
	}
	if err := c.Chaos.Validate(); err != nil {
		return err
	}
	return nil
}

// applyDefaults fills optional fields.
func (c *Config) applyDefaults() {
	if c.ConsolidationPeriodSec <= 0 {
		c.ConsolidationPeriodSec = 300
	}
	if c.OasisMemoryServerFraction <= 0 {
		c.OasisMemoryServerFraction = 0.4
	}
	// Chaos pricing needs the transition model even when the steady-state
	// run leaves TransitionCosts off (wasted wakes and re-homing are priced
	// through it).
	if (c.TransitionCosts || !c.Chaos.Empty()) && c.Transitions == nil {
		c.Transitions = DefaultTransitionModel()
	}
}

// Result summarises one simulation run.
type Result struct {
	Policy  string
	Machine string
	Trace   string
	// PeriodSec is the consolidation period the run used.
	PeriodSec int64
	// EnergyJoules is the fleet energy over the trace horizon.
	EnergyJoules float64
	// BaselineJoules is the no-consolidation fleet energy over the same
	// horizon (all servers in S0).
	BaselineJoules float64
	// SavingPercent is the Figure 10 metric: 100*(1 - Energy/Baseline).
	SavingPercent float64
	// MeanActiveHosts is the time-weighted mean number of S0 servers.
	MeanActiveHosts float64
	// MeanZombieHosts is the time-weighted mean number of Sz servers.
	MeanZombieHosts float64
	// MeanSleepHosts is the time-weighted mean number of S3 servers.
	MeanSleepHosts float64
	// MeanActiveUtilization is the time-weighted mean CPU utilization of the
	// active servers.
	MeanActiveUtilization float64
	// Epochs is the number of consolidation periods simulated.
	Epochs int
	// TransitionCosts reports whether the run charged transition events.
	TransitionCosts bool
	// TransitionJoules is the energy charged to transition events (ACPI
	// suspends/wakes, migration drains, remote-memory churn). It is included
	// in EnergyJoules but not in BaselineJoules — the baseline fleet never
	// transitions — so enabling transition costs can only lower the saving.
	TransitionJoules float64
	// StateTransitions is the number of ACPI state changes performed.
	StateTransitions int
	// Migrations is the number of VM migrations performed to drain freed
	// hosts.
	Migrations int
	// MigrationSeconds is the total host time spent draining VMs.
	MigrationSeconds float64
	// RackPriced reports whether the run integrated epoch energy through
	// the rack model's energy ledger instead of the abstract power tables.
	RackPriced bool
	// ChaosScenario names the fault plan the run was priced under ("" when
	// no faults were injected); ChaosJoules is the energy charged to fault
	// penalties (crashed-server burn, wasted wakes, re-homing transfers,
	// controller rebuilds), included in EnergyJoules but never in the
	// baseline. WastedTransitions counts failed wake attempts and
	// ReHomedGiB the remote memory re-homed off crashed serving servers.
	ChaosScenario     string
	ChaosJoules       float64
	WastedTransitions int
	ReHomedGiB        float64
}

// epochSpan bounds one consolidation period within the trace horizon.
type epochSpan struct {
	start, end int64
}

// epochSpans splits the horizon into consolidation periods.
func epochSpans(horizonSec, periodSec int64) []epochSpan {
	spans := make([]epochSpan, 0, int(horizonSec/periodSec)+1)
	for start := int64(0); start < horizonSec; start += periodSec {
		end := start + periodSec
		if end > horizonSec {
			end = horizonSec
		}
		spans = append(spans, epochSpan{start: start, end: end})
	}
	return spans
}

// epochStats is one epoch's contribution to the run integrals. Every field is
// the exact term the sequential loop would have added, so merging a slice of
// epochStats in epoch order reproduces the sequential accumulation bit for
// bit.
type epochStats struct {
	energyJ      float64
	baselineJ    float64
	activeDt     float64
	zombieDt     float64
	sleepDt      float64
	utilDt       float64
	dt           float64
	transitionJ  float64
	transitions  int
	migrations   int
	migrationSec float64
	chaosJ       float64
	wasted       int
	reHomedGiB   float64
}

// replayTask pairs a trace task with its consolidation-layer identity,
// formatted once per run instead of once per VM per epoch.
type replayTask struct {
	task trace.Task
	vmid string
}

// sortedByStart returns the trace tasks ordered by start time (task ID breaks
// ties, so the order is fully deterministic), each carrying its precomputed
// VM identity. The slice is shared read-only by every replayer of a run.
func sortedByStart(tr *trace.Trace) []replayTask {
	byStart := make([]replayTask, len(tr.Tasks))
	for i, t := range tr.Tasks {
		byStart[i] = replayTask{task: t, vmid: t.VMID()}
	}
	slices.SortFunc(byStart, func(a, b replayTask) int {
		if c := cmp.Compare(a.task.StartSec, b.task.StartSec); c != 0 {
			return c
		}
		return cmp.Compare(a.task.ID, b.task.ID)
	})
	return byStart
}

// replayer walks consolidation epochs in order, maintaining the set of tasks
// running in each epoch. A fresh replayer may start at any epoch: admission
// only depends on the epoch end and retirement only on the epoch start, so
// the population it derives for an epoch is independent of where the walk
// began.
//
// The running set is kept sorted by VM ID at admission time and the
// population is materialised into a buffer reused across epochs, so the
// steady-state epoch loop performs no allocation and no per-epoch sort. The
// sort key is the lexicographic VM ID — the exact order the per-epoch sort
// used to produce — so the policies and the energy integrals see populations
// in the same order and accumulate bit-identical floats.
type replayer struct {
	byStart []replayTask
	next    int
	running []replayTask
	buf     []consolidation.VMDemand
}

// newReplayer walks the shared start-ordered task slice from the beginning.
func newReplayer(byStart []replayTask) *replayer {
	return &replayer{byStart: byStart}
}

// population admits tasks starting before the epoch end, retires finished
// ones, and returns the epoch's VM population sorted by ID. The returned
// slice is valid until the next population call.
func (r *replayer) population(span epochSpan) []consolidation.VMDemand {
	for r.next < len(r.byStart) && r.byStart[r.next].task.StartSec < span.end {
		rt := r.byStart[r.next]
		i, _ := slices.BinarySearchFunc(r.running, rt, func(a, b replayTask) int {
			return strings.Compare(a.vmid, b.vmid)
		})
		r.running = slices.Insert(r.running, i, rt)
		r.next++
	}
	live := r.running[:0]
	for _, rt := range r.running {
		if rt.task.EndSec > span.start {
			live = append(live, rt)
		}
	}
	r.running = live
	if cap(r.buf) < len(r.running) {
		r.buf = make([]consolidation.VMDemand, 0, cap(r.running))
	}
	r.buf = r.buf[:0]
	for _, rt := range r.running {
		r.buf = append(r.buf, consolidation.VMDemand{
			ID:           rt.vmid,
			BookedCPU:    rt.task.BookedCPU,
			BookedMemGiB: rt.task.BookedMemGiB,
			UsedCPU:      rt.task.UsedCPU,
			UsedMemGiB:   rt.task.UsedMemGiB,
		})
	}
	return r.buf
}

// simulateEpoch evaluates the policy on one epoch's population, integrates
// the fleet power over the epoch — through the abstract tables, or through
// the caller's rack pricer when rack pricing is on — and, when transition
// costs are enabled, charges the events implied by moving from prev's
// posture to this epoch's. It returns the epoch's plan so the caller can
// thread it into the next epoch's delta.
func simulateEpoch(cfg *Config, pricer *rackPricer, vms []consolidation.VMDemand, span epochSpan, prev consolidation.FleetPlan) (epochStats, consolidation.FleetPlan, error) {
	plan := epochPlan(cfg, vms, span)
	dt := float64(span.end - span.start)
	stats := epochStats{
		activeDt: float64(plan.ActiveHosts) * dt,
		zombieDt: float64(plan.ZombieHosts) * dt,
		sleepDt:  float64(plan.SleepHosts) * dt,
		utilDt:   plan.ActiveCPUUtilization * dt,
		dt:       dt,
	}
	if pricer != nil {
		energyJ, baselineJ, err := pricer.priceEpoch(plan, vms, dt)
		if err != nil {
			return epochStats{}, plan, err
		}
		stats.energyJ, stats.baselineJ = energyJ, baselineJ
	} else {
		stats.energyJ = fleetPower(*cfg, plan) * dt
		stats.baselineJ = baselinePower(*cfg, vms, cfg.Trace.Machines) * dt
	}
	if cfg.TransitionCosts {
		c := cfg.Transitions.CostWithFabric(cfg.Machine, cfg.Policy.Name(), chaosAlignPrev(cfg, prev, plan), plan, vms, dt, chaosFabricFactor(cfg, span))
		stats.energyJ += c.Joules
		stats.transitionJ = c.Joules
		stats.transitions = c.Transitions
		stats.migrations = c.Migrations
		stats.migrationSec = c.MigrationSeconds
	}
	if !cfg.Chaos.Empty() {
		ch := chaosEpochCost(cfg, prev, plan, vms, span)
		stats.energyJ += ch.joules
		stats.chaosJ = ch.joules
		stats.transitions += ch.transitions
		stats.wasted = ch.wasted
		stats.reHomedGiB = ch.reHomedGiB
	}
	return stats, plan, nil
}

// epochPlan evaluates the policy on one epoch's population against the
// capacity actually available: the full fleet, minus any servers the chaos
// plan holds crashed at the epoch start. It is the single planning entry
// point shared by the sequential walk and the parallel shards' lookback, so
// both derive identical plans whatever the worker count.
func epochPlan(cfg *Config, vms []consolidation.VMDemand, span epochSpan) consolidation.FleetPlan {
	total := cfg.Trace.Machines
	if crashed := cfg.Chaos.CrashedAt(span.start); crashed > 0 {
		total -= crashed
		if total < 1 {
			total = 1
		}
	}
	return cfg.Policy.Plan(vms, cfg.ServerSpec, total)
}

// initialPlan is the fleet posture before the first epoch: all servers awake
// in S0, so the first epoch pays for consolidating the fleet out of the
// baseline posture.
func initialPlan(cfg *Config) consolidation.FleetPlan {
	return consolidation.InitialPlan(cfg.Trace.Machines)
}

// Run executes the simulation, sequentially or sharded across
// Config.Workers goroutines; the result is identical either way.
func Run(cfg Config) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	cfg.applyDefaults()
	spans := epochSpans(cfg.Trace.HorizonSec, cfg.ConsolidationPeriodSec)
	byStart := sortedByStart(cfg.Trace)

	stats := make([]epochStats, len(spans))
	if cfg.Workers > 1 && len(spans) > 1 {
		if err := simulateShards(&cfg, byStart, spans, stats, cfg.Workers); err != nil {
			return Result{}, err
		}
	} else {
		pricer, err := newPricer(&cfg)
		if err != nil {
			return Result{}, err
		}
		rep := newReplayer(byStart)
		prev := initialPlan(&cfg)
		for i, span := range spans {
			stats[i], prev, err = simulateEpoch(&cfg, pricer, rep.population(span), span, prev)
			if err != nil {
				return Result{}, err
			}
		}
	}
	return mergeEpochStats(cfg, stats), nil
}

// newPricer returns a rack pricer when rack pricing is enabled, nil for the
// abstract tables.
func newPricer(cfg *Config) (*rackPricer, error) {
	if !cfg.RackPricing {
		return nil, nil
	}
	return newRackPricer(cfg)
}

// mergeEpochStats folds per-epoch contributions into a Result in epoch order,
// performing the same additions in the same order as a sequential run.
func mergeEpochStats(cfg Config, stats []epochStats) Result {
	res := Result{
		Policy:          cfg.Policy.Name(),
		Machine:         cfg.Machine.Name,
		Trace:           cfg.Trace.Name,
		PeriodSec:       cfg.ConsolidationPeriodSec,
		TransitionCosts: cfg.TransitionCosts,
		RackPriced:      cfg.RackPricing,
	}
	if !cfg.Chaos.Empty() {
		res.ChaosScenario = cfg.Chaos.Name
	}
	var horizonSec float64
	for _, s := range stats {
		res.EnergyJoules += s.energyJ
		res.BaselineJoules += s.baselineJ
		res.MeanActiveHosts += s.activeDt
		res.MeanZombieHosts += s.zombieDt
		res.MeanSleepHosts += s.sleepDt
		res.MeanActiveUtilization += s.utilDt
		res.TransitionJoules += s.transitionJ
		res.StateTransitions += s.transitions
		res.Migrations += s.migrations
		res.MigrationSeconds += s.migrationSec
		res.ChaosJoules += s.chaosJ
		res.WastedTransitions += s.wasted
		res.ReHomedGiB += s.reHomedGiB
		horizonSec += s.dt
		res.Epochs++
	}
	if horizonSec > 0 {
		res.MeanActiveHosts /= horizonSec
		res.MeanZombieHosts /= horizonSec
		res.MeanSleepHosts /= horizonSec
		res.MeanActiveUtilization /= horizonSec
	}
	if res.BaselineJoules > 0 {
		res.SavingPercent = 100 * (1 - res.EnergyJoules/res.BaselineJoules)
	}
	return res
}

// fleetPower returns the fleet's power (watts) under a consolidation plan.
func fleetPower(cfg Config, plan consolidation.FleetPlan) float64 {
	return PosturePowerWatts(cfg.Machine, plan, cfg.OasisMemoryServerFraction)
}

// PosturePowerWatts returns the steady-state fleet power (watts) of one
// consolidation posture: active hosts at their operating point, zombies in
// Sz, Oasis memory servers at their fractional power, sleepers in S3. It is
// the single pricing rule shared by the offline engine and the online control
// plane, so the two sides of a regret comparison integrate identical power.
func PosturePowerWatts(m *energy.MachineProfile, plan consolidation.FleetPlan, oasisMemoryServerFraction float64) float64 {
	p := float64(plan.ActiveHosts) * m.PowerWatts(acpi.S0, plan.ActiveCPUUtilization)
	p += float64(plan.ZombieHosts) * m.PowerWatts(acpi.Sz, 0)
	p += float64(plan.MemoryServers) * oasisMemoryServerFraction * m.MaxPowerWatts
	p += float64(plan.SleepHosts) * m.PowerWatts(acpi.S3, 0)
	return p
}

// baselinePower returns the fleet's power without consolidation: every server
// stays in S0 and the load spreads across the whole fleet.
func baselinePower(cfg Config, vms []consolidation.VMDemand, totalServers int) float64 {
	var usedCPU float64
	for _, v := range vms {
		usedCPU += v.UsedCPU
	}
	return BaselinePowerWatts(cfg.Machine, cfg.ServerSpec, usedCPU, totalServers)
}

// BaselinePowerWatts returns the no-consolidation fleet power: every server
// in S0 with the aggregate used CPU (cores) spread across the whole fleet.
// Shared with the online control plane for the same reason as
// PosturePowerWatts.
func BaselinePowerWatts(m *energy.MachineProfile, spec consolidation.ServerSpec, usedCPU float64, totalServers int) float64 {
	util := 0.0
	if totalServers > 0 && spec.Cores > 0 {
		util = usedCPU / (float64(totalServers) * spec.Cores)
		if util > 1 {
			util = 1
		}
	}
	return float64(totalServers) * m.PowerWatts(acpi.S0, util)
}

// Oracle runs the offline simulation as the upper bound an online control
// plane is measured against: the same trace, planner, machine and
// consolidation period, with transition costs forced on so both sides pay
// for their posture changes. The result's SavingPercent is the costed oracle
// saving — optimistic only in its knowledge (each epoch is planned with the
// epoch's whole population, arrivals included), not in its accounting.
func Oracle(cfg Config) (Result, error) {
	cfg.TransitionCosts = true
	return Run(cfg)
}

// Comparison is the Figure 10 experiment: every policy on every machine
// profile for one trace.
type Comparison struct {
	Trace   string
	Results []Result
}

// Compare runs Neat, Oasis and ZombieStack (plus the baseline used for the
// saving computation) on the trace for each machine profile, sequentially.
func Compare(tr *trace.Trace, machines []*energy.MachineProfile, spec consolidation.ServerSpec) (Comparison, error) {
	return CompareWorkers(tr, machines, spec, 0)
}

// CompareWorkers is Compare with each run's per-epoch accounting sharded
// across the given number of workers (0 or 1 keeps the sequential engine).
func CompareWorkers(tr *trace.Trace, machines []*energy.MachineProfile, spec consolidation.ServerSpec, workers int) (Comparison, error) {
	return CompareOpts(tr, machines, spec, CompareOptions{Workers: workers})
}

// CompareOptions bundles the engine knobs of a comparison run.
type CompareOptions struct {
	// Workers shards each run's per-epoch accounting (Config.Workers).
	Workers int
	// TransitionCosts enables the event-driven transition accounting.
	TransitionCosts bool
	// RackPricing prices steady-state epochs through the rack model's
	// energy ledger (Config.RackPricing).
	RackPricing bool
}

// CompareOpts runs the Figure 10 contenders on the trace for each machine
// profile with the given engine options.
func CompareOpts(tr *trace.Trace, machines []*energy.MachineProfile, spec consolidation.ServerSpec, opts CompareOptions) (Comparison, error) {
	cmp := Comparison{Trace: tr.Name}
	for _, m := range machines {
		for _, pol := range consolidation.Contenders() {
			res, err := Run(Config{
				Trace: tr, Policy: pol, Machine: m, ServerSpec: spec,
				Workers: opts.Workers, TransitionCosts: opts.TransitionCosts,
				RackPricing: opts.RackPricing,
			})
			if err != nil {
				return Comparison{}, err
			}
			cmp.Results = append(cmp.Results, res)
		}
	}
	return cmp, nil
}

// Saving returns the saving of a given policy/machine pair from a comparison.
func (c Comparison) Saving(policy, machine string) (float64, bool) {
	for _, r := range c.Results {
		if r.Policy == policy && r.Machine == machine {
			return r.SavingPercent, true
		}
	}
	return 0, false
}
