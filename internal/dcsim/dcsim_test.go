package dcsim

import (
	"testing"

	"repro/internal/consolidation"
	"repro/internal/energy"
	"repro/internal/trace"
)

func testTrace(t *testing.T, modified bool) *trace.Trace {
	t.Helper()
	cfg := trace.DefaultConfig()
	if modified {
		cfg = trace.ModifiedConfig()
	}
	cfg.Tasks = 600
	cfg.Machines = 60
	cfg.HorizonSec = 6 * 3600
	tr, err := trace.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestConfigValidation(t *testing.T) {
	tr := testTrace(t, false)
	hp, _ := energy.ProfileByName("HP")
	good := Config{Trace: tr, Policy: consolidation.NewNeat(), Machine: hp, ServerSpec: consolidation.DefaultServerSpec()}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{},
		{Trace: tr},
		{Trace: tr, Policy: consolidation.NewNeat()},
		{Trace: tr, Policy: consolidation.NewNeat(), Machine: hp},
		{Trace: &trace.Trace{}, Policy: consolidation.NewNeat(), Machine: hp, ServerSpec: consolidation.DefaultServerSpec()},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d validated", i)
		}
	}
}

func TestRunProducesSavings(t *testing.T) {
	tr := testTrace(t, false)
	hp, _ := energy.ProfileByName("HP")
	res, err := Run(Config{Trace: tr, Policy: consolidation.NewNeat(), Machine: hp, ServerSpec: consolidation.DefaultServerSpec()})
	if err != nil {
		t.Fatal(err)
	}
	if res.EnergyJoules <= 0 || res.BaselineJoules <= 0 {
		t.Fatalf("energy should be positive: %+v", res)
	}
	if res.EnergyJoules >= res.BaselineJoules {
		t.Error("consolidation should use less energy than the baseline")
	}
	if res.SavingPercent <= 0 || res.SavingPercent >= 100 {
		t.Errorf("saving = %.1f%%, implausible", res.SavingPercent)
	}
	if res.Epochs == 0 {
		t.Error("epochs should be counted")
	}
	if res.MeanActiveHosts <= 0 || res.MeanActiveHosts > float64(tr.Machines) {
		t.Errorf("mean active hosts = %v", res.MeanActiveHosts)
	}
	if res.MeanActiveUtilization <= 0 {
		t.Error("active utilization should be positive")
	}
}

func TestFigure10Ordering(t *testing.T) {
	// The headline result: ZombieStack > Oasis > Neat in energy saving, on
	// both machine profiles and both trace variants, and ZombieStack's
	// relative advantage over Neat grows on the modified (memory-heavy)
	// traces — the paper reports it reaching about 86%.
	spec := consolidation.DefaultServerSpec()
	machines := energy.Profiles()
	var gapOriginal, gapModified float64
	for _, modified := range []bool{false, true} {
		tr := testTrace(t, modified)
		cmp, err := Compare(tr, machines, spec)
		if err != nil {
			t.Fatal(err)
		}
		if len(cmp.Results) != len(machines)*3 {
			t.Fatalf("results = %d", len(cmp.Results))
		}
		for _, m := range machines {
			neat, ok1 := cmp.Saving("neat", m.Name)
			oasis, ok2 := cmp.Saving("oasis", m.Name)
			zombie, ok3 := cmp.Saving("zombiestack", m.Name)
			if !ok1 || !ok2 || !ok3 {
				t.Fatalf("missing results for %s", m.Name)
			}
			if !(zombie > oasis && oasis > neat) {
				t.Errorf("modified=%v %s: ordering violated neat=%.1f oasis=%.1f zombie=%.1f",
					modified, m.Name, neat, oasis, zombie)
			}
			if neat <= 5 || zombie >= 95 {
				t.Errorf("savings out of plausible range: neat=%.1f zombie=%.1f", neat, zombie)
			}
			if m.Name == "HP" {
				gap := (zombie - neat) / neat
				if modified {
					gapModified = gap
				} else {
					gapOriginal = gap
				}
			}
		}
	}
	if gapModified <= gapOriginal {
		t.Errorf("zombiestack's relative advantage over neat should grow on the memory-heavy traces (%.2f vs %.2f)",
			gapModified, gapOriginal)
	}
}

func TestSavingLookupMiss(t *testing.T) {
	c := Comparison{}
	if _, ok := c.Saving("neat", "HP"); ok {
		t.Error("empty comparison should miss")
	}
}

func TestRunRejectsInvalidConfig(t *testing.T) {
	if _, err := Run(Config{}); err == nil {
		t.Error("invalid config should fail")
	}
}

func TestDefaultsApplied(t *testing.T) {
	cfg := Config{}
	cfg.applyDefaults()
	if cfg.ConsolidationPeriodSec != 300 || cfg.OasisMemoryServerFraction != 0.4 {
		t.Errorf("defaults = %+v", cfg)
	}
}
