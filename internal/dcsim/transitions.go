// The transition-cost model: the steady-state engine integrates each epoch as
// if the fleet had always been in the plan's posture, which is exactly the
// optimistic bound the paper's Figure 10 discussion warns about. This file
// charges the events that move the fleet between postures:
//
//   - ACPI transitions (S0 <-> S3, S0 <-> Sz, memory-server starts/stops)
//     derived from consecutive plans via consolidation.Delta, priced with the
//     acpi latency table through energy.TransitionJoules;
//   - migration drains: a host released by the new plan keeps burning S0 idle
//     power while its VMs migrate away, with per-VM durations from
//     internal/migration (the ZombieStack protocol for the zombiestack
//     policy, vanilla pre-copy otherwise — the Figure 9 comparison);
//   - remote-memory churn: active hosts fault on zombie-hosted pages; each
//     fault is a one-sided 4 KiB RDMA READ priced by the internal/rdma cost
//     model, and the faulting host stalls at its operating power.
//
// Every cost is a pure function of (previous plan, current plan, current VM
// population), all of which any epoch shard can derive independently, so the
// parallel engine stays bit-identical to the sequential one.

package dcsim

import (
	"fmt"

	"repro/internal/acpi"
	"repro/internal/consolidation"
	"repro/internal/energy"
	"repro/internal/migration"
	"repro/internal/rdma"
	"repro/internal/vm"
)

// TransitionModel parameterises the per-epoch transition costs.
type TransitionModel struct {
	// Vanilla is the pre-copy migration protocol used to drain hosts under
	// the neat and oasis policies.
	Vanilla *migration.Vanilla
	// Zombie is the ZombieStack migration protocol (hot local pages only,
	// remote buffers re-pointed) used under the zombiestack policy.
	Zombie *migration.ZombieStack
	// LocalMemoryFraction is the share of a VM's memory kept local under the
	// zombiestack policy (the 50% placement rule), fed to Zombie.Migrate.
	LocalMemoryFraction float64
	// Fabric prices the remote-memory page faults.
	Fabric rdma.CostModel
	// RemoteFaultsPerGiBPerSec is the rate at which active hosts fault on
	// remotely-served memory, per GiB of remote memory.
	RemoteFaultsPerGiBPerSec float64
	// RemotePageBytes is the payload of one remote fault (guest page size).
	RemotePageBytes int
}

// DefaultTransitionModel returns the model with the paper's parameters: the
// Figure 9 migration protocols, the FDR-Infiniband fabric constants, the 50%
// local-memory rule and a moderate remote-fault rate.
func DefaultTransitionModel() *TransitionModel {
	return &TransitionModel{
		Vanilla:                  migration.NewVanilla(),
		Zombie:                   migration.NewZombieStack(),
		LocalMemoryFraction:      0.5,
		Fabric:                   rdma.DefaultCostModel(),
		RemoteFaultsPerGiBPerSec: 50,
		RemotePageBytes:          vm.DefaultPageSize,
	}
}

// Validate checks the model's parameters.
func (tm *TransitionModel) Validate() error {
	switch {
	case tm.Vanilla == nil || tm.Zombie == nil:
		return fmt.Errorf("dcsim: transition model needs both migration protocols")
	case tm.LocalMemoryFraction <= 0 || tm.LocalMemoryFraction > 1:
		return fmt.Errorf("dcsim: transition model local memory fraction %v outside (0,1]", tm.LocalMemoryFraction)
	case tm.RemoteFaultsPerGiBPerSec < 0:
		return fmt.Errorf("dcsim: negative remote fault rate %v", tm.RemoteFaultsPerGiBPerSec)
	case tm.RemotePageBytes <= 0:
		return fmt.Errorf("dcsim: transition model needs a positive remote page size")
	}
	return nil
}

// TransitionBill is the priced outcome of one posture change. It is the
// exported face of the per-epoch transition accounting, shared with the
// online control plane (internal/autopilot), whose ticks and emergency wakes
// must be charged by exactly the rules the offline oracle pays under — the
// regret comparison is meaningless otherwise.
type TransitionBill struct {
	// Joules is the total energy charged to the posture change.
	Joules float64
	// Transitions is the number of ACPI state changes performed.
	Transitions int
	// Migrations is the number of VM moves draining the freed hosts.
	Migrations int
	// MigrationSeconds is the total host time spent draining.
	MigrationSeconds float64
}

// Cost prices moving the fleet from the prev posture to the next one, with
// the given VM population running: the ACPI suspend/wake events of the plan
// delta, the migration drains of the freed hosts (protocol selected by the
// policy name — the ZombieStack protocol for "zombiestack", vanilla pre-copy
// otherwise), and the remote-memory churn of the new posture over dt seconds.
// dt also caps each freed host's drain, so a host is never charged for
// draining longer than the interval it drains in.
func (tm *TransitionModel) Cost(m *energy.MachineProfile, policy string, prev, plan consolidation.FleetPlan, vms []consolidation.VMDemand, dt float64) TransitionBill {
	return tm.CostWithFabric(m, policy, prev, plan, vms, dt, 1)
}

// CostWithFabric is Cost with the remote-memory churn scaled by a fabric
// latency multiplier — the chaos layer's degraded-fabric pricing. A factor of
// exactly 1 reproduces Cost bit for bit (multiplying by 1.0 is exact in IEEE
// arithmetic), which is what keeps an empty fault plan indistinguishable from
// the no-chaos path.
func (tm *TransitionModel) CostWithFabric(m *energy.MachineProfile, policy string, prev, plan consolidation.FleetPlan, vms []consolidation.VMDemand, dt, fabricFactor float64) TransitionBill {
	d := consolidation.Delta(prev, plan, len(vms))
	var c TransitionBill
	c.Transitions = d.Transitions()

	// ACPI transitions. Memory servers are sleeping machines woken into the
	// Oasis low-power serving mode, so a start prices as an S3 wake and a
	// stop as a suspend back to S3.
	c.Joules += float64(d.SleepEnters) * m.TransitionJoules(acpi.S0, acpi.S3)
	c.Joules += float64(d.SleepExits) * m.TransitionJoules(acpi.S3, acpi.S0)
	c.Joules += float64(d.ZombieEnters) * m.TransitionJoules(acpi.S0, acpi.Sz)
	c.Joules += float64(d.ZombieExits) * m.TransitionJoules(acpi.Sz, acpi.S0)
	c.Joules += float64(d.MemoryServerStarts) * m.TransitionJoules(acpi.S3, acpi.S0)
	c.Joules += float64(d.MemoryServerStops) * m.TransitionJoules(acpi.S0, acpi.S3)

	// Migration drain: the freed hosts stay in S0 at idle power while their
	// VMs leave, in parallel across hosts, serially within a host.
	if d.Migrations > 0 && d.FreedHosts > 0 {
		if perMigSec := tm.migrationSeconds(policy, vms); perMigSec > 0 {
			perHost := perMigSec * float64(d.Migrations) / float64(d.FreedHosts)
			if perHost > dt {
				perHost = dt
			}
			c.Migrations = d.Migrations
			c.MigrationSeconds = perHost * float64(d.FreedHosts)
			c.Joules += c.MigrationSeconds * m.PowerWatts(acpi.S0, 0)
		}
	}

	// Remote-memory churn: faults on zombie- or memory-server-hosted pages
	// stall the faulting active host at its operating power for the fabric
	// round trip of one page.
	if plan.RemoteMemoryGiB > 0 && tm.RemoteFaultsPerGiBPerSec > 0 {
		faults := tm.RemoteFaultsPerGiBPerSec * plan.RemoteMemoryGiB * dt
		perFaultSec := float64(tm.Fabric.TransferNs(tm.Fabric.OneSidedLatencyNs, tm.RemotePageBytes)) / 1e9 * fabricFactor
		c.Joules += faults * perFaultSec * m.PowerWatts(acpi.S0, plan.ActiveCPUUtilization)
	}
	return c
}

// migrationSeconds returns the duration of migrating the epoch's mean VM
// under the policy's protocol, or 0 when the population is empty.
func (tm *TransitionModel) migrationSeconds(policy string, vms []consolidation.VMDemand) float64 {
	var bookedGiB, usedGiB float64
	for _, v := range vms {
		bookedGiB += v.BookedMemGiB
		usedGiB += v.UsedMemGiB
	}
	if len(vms) == 0 || bookedGiB <= 0 {
		return 0
	}
	wssRatio := usedGiB / bookedGiB
	if wssRatio > 1 {
		wssRatio = 1
	}
	meanVM := vm.New("epoch-mean", int64(bookedGiB/float64(len(vms))*float64(1<<30)), 0)
	if meanVM.ReservedBytes <= 0 {
		return 0
	}
	var res migration.Result
	var err error
	if policy == "zombiestack" {
		res, err = tm.Zombie.Migrate(meanVM, wssRatio, tm.LocalMemoryFraction)
	} else {
		res, err = tm.Vanilla.Migrate(meanVM, wssRatio)
	}
	if err != nil {
		return 0
	}
	return res.DurationSeconds()
}
