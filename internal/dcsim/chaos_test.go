package dcsim

import (
	"reflect"
	"testing"

	"repro/internal/chaos"
	"repro/internal/consolidation"
	"repro/internal/energy"
	"repro/internal/trace"
)

func chaosTestConfig(t testing.TB) (Config, *chaos.Plan) {
	t.Helper()
	gc := trace.DefaultConfig()
	gc.Machines = 80
	gc.Tasks = 900
	gc.HorizonSec = 8 * 3600
	tr, err := trace.Generate(gc)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := chaos.Scenario("heavy", tr.HorizonSec, tr.Machines, 7)
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Trace:      tr,
		Policy:     consolidation.NewZombieStack(),
		Machine:    energy.HPProfile(),
		ServerSpec: consolidation.DefaultServerSpec(),
	}, plan
}

// TestDCSimChaosParallelMatchesSequential extends the engine's bit-identity
// guarantee to the degraded-capacity pricing mode: every chaos charge is a
// pure function of (plan, span, posture), so sharding cannot change a bit.
func TestDCSimChaosParallelMatchesSequential(t *testing.T) {
	cfg, plan := chaosTestConfig(t)
	cfg.TransitionCosts = true
	cfg.Chaos = plan
	seq, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if seq.ChaosJoules <= 0 || seq.ChaosScenario != "heavy" {
		t.Fatalf("chaos pricing did not charge: %+v", seq)
	}
	for _, workers := range []int{2, 4, 7} {
		par := cfg
		par.Workers = workers
		got, err := Run(par)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, seq) {
			t.Fatalf("chaos run diverged at Workers=%d:\n got %+v\nwant %+v", workers, got, seq)
		}
	}
}

// TestDCSimChaosEmptyPlanBitIdentical pins the empty-plan contract on the
// offline engine: a present-but-empty plan must reproduce the no-chaos run
// bit for bit, transition costs on and off.
func TestDCSimChaosEmptyPlanBitIdentical(t *testing.T) {
	cfg, _ := chaosTestConfig(t)
	empty := &chaos.Plan{Name: "off", HorizonSec: cfg.Trace.HorizonSec}
	for _, costed := range []bool{false, true} {
		plain := cfg
		plain.TransitionCosts = costed
		want, err := Run(plain)
		if err != nil {
			t.Fatal(err)
		}
		withEmpty := plain
		withEmpty.Chaos = empty
		got, err := Run(withEmpty)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("empty plan diverged (transitions=%v):\n got %+v\nwant %+v", costed, got, want)
		}
	}
}

// TestDCSimChaosLowersSaving pins the oracle-side resilience bound: the same
// oracle run under faults saves strictly less than fault-free — penalties
// land on EnergyJoules only, never on the baseline.
func TestDCSimChaosLowersSaving(t *testing.T) {
	cfg, plan := chaosTestConfig(t)
	faultFree, err := Oracle(cfg)
	if err != nil {
		t.Fatal(err)
	}
	faulted := cfg
	faulted.Chaos = plan
	under, err := Oracle(faulted)
	if err != nil {
		t.Fatal(err)
	}
	if under.SavingPercent >= faultFree.SavingPercent {
		t.Fatalf("faulted oracle saving %.4f%% not below fault-free %.4f%%",
			under.SavingPercent, faultFree.SavingPercent)
	}
	if under.BaselineJoules != faultFree.BaselineJoules {
		t.Fatalf("faults leaked into the baseline: %.1f J vs %.1f J",
			under.BaselineJoules, faultFree.BaselineJoules)
	}
	if under.ChaosJoules <= 0 {
		t.Fatal("no chaos penalty charged")
	}
	if under.EnergyJoules <= faultFree.EnergyJoules {
		t.Fatalf("faulted energy %.1f J not above fault-free %.1f J",
			under.EnergyJoules, faultFree.EnergyJoules)
	}
}

// TestDCSimChaosDegradedCapacity checks that crashes actually shrink the
// fleet the planner sizes against: with most of the fleet crashed over the
// whole horizon, the plan's total posture drops accordingly.
func TestDCSimChaosDegradedCapacity(t *testing.T) {
	cfg, _ := chaosTestConfig(t)
	crashed := 20
	cfg.Chaos = &chaos.Plan{
		Name: "crashed", HorizonSec: cfg.Trace.HorizonSec,
		Faults: []chaos.Fault{{
			Kind: chaos.ServerCrash, AtSec: 0, DurationSec: cfg.Trace.HorizonSec,
			Count: crashed, Role: chaos.RoleSleep,
		}},
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Mean posture categories cover only the surviving servers.
	total := res.MeanActiveHosts + res.MeanZombieHosts + res.MeanSleepHosts
	if total > float64(cfg.Trace.Machines-crashed)+1e-9 {
		t.Fatalf("posture covers %.2f servers, only %d survive", total, cfg.Trace.Machines-crashed)
	}
}
