package dcsim

import (
	"math"
	"testing"

	"repro/internal/consolidation"
	"repro/internal/energy"
	"repro/internal/trace"
)

func rackPricingConfig(t *testing.T, pol consolidation.Policy, workers int) Config {
	t.Helper()
	tc := trace.DefaultConfig()
	tc.Name = "rackpricing"
	tc.Machines = 24
	tc.Tasks = 160
	tc.HorizonSec = 4 * 3600
	tc.Seed = 7
	tr, err := trace.Generate(tc)
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Trace:       tr,
		Policy:      pol,
		Machine:     energy.HPProfile(),
		ServerSpec:  consolidation.DefaultServerSpec(),
		Workers:     workers,
		RackPricing: true,
	}
}

// TestRackPricingMatchesAbstractTables cross-validates the two pricing
// models: integrating each epoch through the rack ledger (per-server
// accumulators fed by real ACPI platform states) must agree with the
// abstract host-count × power-table formula to float tolerance, for every
// contender policy.
func TestRackPricingMatchesAbstractTables(t *testing.T) {
	for _, pol := range consolidation.Contenders() {
		cfg := rackPricingConfig(t, pol, 0)
		priced, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s rack-priced: %v", pol.Name(), err)
		}
		if !priced.RackPriced {
			t.Fatal("result should be flagged rack-priced")
		}
		cfg.RackPricing = false
		abstract, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s abstract: %v", pol.Name(), err)
		}
		relDiff := math.Abs(priced.EnergyJoules-abstract.EnergyJoules) / abstract.EnergyJoules
		if relDiff > 1e-9 {
			t.Errorf("%s: ledger %v J vs tables %v J (rel diff %v)",
				pol.Name(), priced.EnergyJoules, abstract.EnergyJoules, relDiff)
		}
		if math.Abs(priced.SavingPercent-abstract.SavingPercent) > 1e-6 {
			t.Errorf("%s: saving %v%% vs %v%%", pol.Name(), priced.SavingPercent, abstract.SavingPercent)
		}
	}
}

// TestRackPricingPropagates pins the plumbing the -rackmodel flag rides on:
// both CompareOpts and Sweep must forward RackPricing into every run they
// build. (The pricing models agree to float tolerance, so a dropped flag is
// invisible in the output — only the RackPriced marker betrays it.)
func TestRackPricingPropagates(t *testing.T) {
	tc := trace.DefaultConfig()
	tc.Name = "rackpricing-propagation"
	tc.Machines = 12
	tc.Tasks = 40
	tc.HorizonSec = 2 * 3600
	tc.Seed = 3
	tr, err := trace.Generate(tc)
	if err != nil {
		t.Fatal(err)
	}
	cmp, err := CompareOpts(tr, []*energy.MachineProfile{energy.HPProfile()},
		consolidation.DefaultServerSpec(), CompareOptions{RackPricing: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(cmp.Results) == 0 {
		t.Fatal("comparison produced no results")
	}
	for _, r := range cmp.Results {
		if !r.RackPriced {
			t.Errorf("CompareOpts dropped RackPricing for %s/%s", r.Policy, r.Machine)
		}
	}

	sc := DefaultSweepConfig()
	sc.TraceConfigs = []trace.GeneratorConfig{tc}
	sc.Machines = []*energy.MachineProfile{energy.HPProfile()}
	sc.TransitionCosts = []bool{false}
	sc.RackPricing = true
	res, err := Sweep(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Runs) == 0 {
		t.Fatal("sweep produced no runs")
	}
	for _, r := range res.Runs {
		if !r.RackPriced {
			t.Errorf("Sweep dropped RackPricing for %s/%s", r.Policy, r.Machine)
		}
	}
}

// TestRackPricingParallelMatchesSequential extends the engine's bit-identity
// contract to the rack-priced mode: every shard prices with its own model
// rack and lands on exactly the sequential result.
func TestRackPricingParallelMatchesSequential(t *testing.T) {
	for _, pol := range consolidation.Contenders() {
		seq, err := Run(rackPricingConfig(t, pol, 0))
		if err != nil {
			t.Fatal(err)
		}
		par, err := Run(rackPricingConfig(t, pol, 4))
		if err != nil {
			t.Fatal(err)
		}
		if seq != par {
			t.Errorf("%s: rack-priced parallel diverges:\nseq: %+v\npar: %+v", pol.Name(), seq, par)
		}
	}
}

// TestRackPricingWithTransitionCosts checks the two accounting extensions
// compose: the ledger prices the steady state, the transition model prices
// the events, and the costed saving stays below the steady-state one.
func TestRackPricingWithTransitionCosts(t *testing.T) {
	cfg := rackPricingConfig(t, consolidation.NewZombieStack(), 0)
	steady, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.TransitionCosts = true
	costed, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if costed.TransitionJoules <= 0 {
		t.Fatal("transition events should be charged")
	}
	if costed.SavingPercent >= steady.SavingPercent {
		t.Errorf("costed saving %v%% should be below steady %v%%", costed.SavingPercent, steady.SavingPercent)
	}
	// The parallel engine agrees in the combined mode, too.
	cfg.Workers = 3
	par, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if par != costed {
		t.Errorf("combined mode parallel diverges:\nseq: %+v\npar: %+v", costed, par)
	}
}
