package obs

import (
	"strings"
	"testing"
)

// TestPrometheusExposition pins the text format end to end: HELP/TYPE
// lines, sorted families, labelled series, cumulative sparse histogram
// buckets with a mandatory +Inf, and _sum/_count.
func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total", "second family").Add(2)
	v := r.CounterVec2("a_requests_total", "requests by route and status", "route", "status")
	v.With("GET /healthz", "200").Add(7)
	v.With("POST /v1/fleets", "201").Add(3)
	h := r.Histogram("a_latency_ns", "request latency")
	h.Observe(0)
	h.Observe(3) // bucket 2, le="3"
	h.Observe(900)
	r.Gauge("c_depth", "a gauge").Set(-4)
	r.GaugeFunc("c_fn", "a callback gauge", func() float64 { return 2.5 })

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	want := `# HELP a_latency_ns request latency
# TYPE a_latency_ns histogram
a_latency_ns_bucket{le="0"} 1
a_latency_ns_bucket{le="3"} 2
a_latency_ns_bucket{le="1023"} 3
a_latency_ns_bucket{le="+Inf"} 3
a_latency_ns_sum 903
a_latency_ns_count 3
# HELP a_requests_total requests by route and status
# TYPE a_requests_total counter
a_requests_total{route="GET /healthz",status="200"} 7
a_requests_total{route="POST /v1/fleets",status="201"} 3
# HELP b_total second family
# TYPE b_total counter
b_total 2
# HELP c_depth a gauge
# TYPE c_depth gauge
c_depth -4
# HELP c_fn a callback gauge
# TYPE c_fn gauge
c_fn 2.5
`
	if got != want {
		t.Errorf("exposition drifted:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestLabelledHistogramExposition checks the label-merge path: a
// HistogramVec series folds le into the existing label set and suffixes
// the family part of the name.
func TestLabelledHistogramExposition(t *testing.T) {
	r := NewRegistry()
	hv := r.HistogramVec("lat_ns", "latency by route", "route")
	hv.With("GET /x").Observe(5)
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	for _, wantLine := range []string{
		`lat_ns_bucket{route="GET /x",le="7"} 1`,
		`lat_ns_bucket{route="GET /x",le="+Inf"} 1`,
		`lat_ns_sum{route="GET /x"} 5`,
		`lat_ns_count{route="GET /x"} 1`,
		"# TYPE lat_ns histogram",
	} {
		if !strings.Contains(got, wantLine+"\n") {
			t.Errorf("missing line %q in:\n%s", wantLine, got)
		}
	}
}

// TestLabelEscaping checks backslash/quote/newline escaping in label
// values.
func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("c_total", "", "k").With("a\"b\\c\nd").Inc()
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if want := `c_total{k="a\"b\\c\nd"} 1`; !strings.Contains(sb.String(), want) {
		t.Errorf("escaped series missing; got:\n%s", sb.String())
	}
}

// TestWriteText pins the -obs snapshot dump format.
func TestWriteText(t *testing.T) {
	r := NewRegistry()
	r.Counter("ops", "").Add(9)
	r.Gauge("depth", "").Set(3)
	h := r.Histogram("lat", "")
	h.Observe(4)
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	want := "lat_count 1\nops 9\ndepth 3\nlat_sum 4\n"
	if sb.String() != want {
		t.Errorf("text dump = %q, want %q", sb.String(), want)
	}
}
