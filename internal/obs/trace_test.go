package obs

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files with the current output")

// emitScenario drives a fixed sequence of events through a trace: the same
// mix of Emit (fake clock) and EmitAt (explicit sim time) the runtime
// layers use.
func emitScenario(tr *Trace) {
	tr.Emit("fleet", "place.batch", F("vms", 6), F("placed", 5), F("failed", 1))
	tr.Emit("fleet", "place.shard", F("rack", 0), F("placed", 3))
	tr.Emit("fleet", "place.shard", F("rack", 1), F("placed", 2))
	tr.EmitAt(30, "autopilot", "tick", F("tick", 1), F("active", 12))
	tr.EmitAt(30, "autopilot", "replan", F("active", 10), F("zombie", 2))
	tr.EmitAt(30, "autopilot", "transition", F("count", 2), F("joules_milli", 151000))
	tr.EmitAt(42, "chaos", "fault.crash", FS("server", "r0-s3"))
	tr.EmitAt(57, "chaos", "repair", FS("server", "r0-s3"))
	tr.EmitAt(7, "memplane", "write", F("addr", 4096), F("n", 512), F("ns", 2100))
	tr.EmitAt(7, "memplane", "hop", F("page", 1), F("ns", 1800))
	tr.Emit("gateway", "evict", FS("session", "f-1"))
}

// TestGoldenNDJSON pins the byte-exact NDJSON export of a fixed scenario
// under a fake stepping clock. The golden file is the determinism contract:
// manual field-order marshalling, quoting, and ring order must never drift.
func TestGoldenNDJSON(t *testing.T) {
	tr := NewTrace(64, StepClock())
	emitScenario(tr)
	var buf bytes.Buffer
	if err := tr.WriteNDJSON(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "trace.golden")
	if *update {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (bless with: go test ./internal/obs -run Golden -update)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("NDJSON drifted from golden:\n--- got ---\n%s", buf.Bytes())
	}
}

// TestNDJSONByteStable runs the identical scenario twice with fresh fake
// clocks and demands byte-identical exports — the acceptance criterion for
// every -obs trace dump.
func TestNDJSONByteStable(t *testing.T) {
	render := func() []byte {
		tr := NewTrace(64, StepClock())
		emitScenario(tr)
		var buf bytes.Buffer
		if err := tr.WriteNDJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if a, b := render(), render(); !bytes.Equal(a, b) {
		t.Errorf("two identical runs diverged:\n--- a ---\n%s--- b ---\n%s", a, b)
	}
}

// TestRingWrap checks the overwrite semantics: a capacity-4 ring keeps the
// newest 4 events oldest-first and counts the rest as dropped.
func TestRingWrap(t *testing.T) {
	tr := NewTrace(4, nil)
	for i := 0; i < 10; i++ {
		tr.EmitAt(int64(i), "l", "e")
	}
	ev := tr.Events()
	if len(ev) != 4 {
		t.Fatalf("len = %d, want 4", len(ev))
	}
	for i, e := range ev {
		if want := int64(6 + i); e.At != want || e.Seq != want+1 {
			t.Fatalf("event %d = seq %d at %d, want seq %d at %d", i, e.Seq, e.At, want+1, want)
		}
	}
	if got := tr.Dropped(); got != 6 {
		t.Fatalf("dropped = %d, want 6", got)
	}
}

// TestNilTrace proves the disabled trace no-ops everything, including the
// writer.
func TestNilTrace(t *testing.T) {
	var tr *Trace
	tr.Emit("a", "b")
	tr.EmitAt(1, "a", "b", F("k", 1))
	if tr.Len() != 0 || tr.Events() != nil || tr.Dropped() != 0 {
		t.Fatal("nil trace must stay empty")
	}
	var buf bytes.Buffer
	if err := tr.WriteNDJSON(&buf); err != nil || buf.Len() != 0 {
		t.Fatalf("nil trace wrote %q, err %v", buf.String(), err)
	}
	if NewTrace(0, nil) != nil || NewTrace(-1, nil) != nil {
		t.Fatal("non-positive capacity must return a nil trace")
	}
}

// TestConcurrentEmit hammers the ring from several goroutines while a
// reader snapshots it; under -race this is the trace's data-race proof,
// and the sequence numbers prove no emission was lost.
func TestConcurrentEmit(t *testing.T) {
	tr := NewTrace(128, StepClock())
	const workers = 4
	const perWorker = 1000
	stop := make(chan struct{})
	var readWG sync.WaitGroup
	readWG.Add(1)
	go func() {
		defer readWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			tr.Events()
			var buf bytes.Buffer
			if err := tr.WriteNDJSON(&buf); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				tr.Emit("w", "op", F("i", int64(i)))
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	readWG.Wait()
	if got := tr.Len() + int(tr.Dropped()); got != workers*perWorker {
		t.Fatalf("kept+dropped = %d, want %d", got, workers*perWorker)
	}
	seen := make(map[int64]bool)
	for _, e := range tr.Events() {
		if seen[e.Seq] {
			t.Fatalf("duplicate seq %d", e.Seq)
		}
		seen[e.Seq] = true
	}
}

// TestStepClock pins the fake clock: strictly increasing from 1.
func TestStepClock(t *testing.T) {
	c := StepClock()
	for want := int64(1); want <= 5; want++ {
		if got := c(); got != want {
			t.Fatalf("step %d = %d", want, got)
		}
	}
}
