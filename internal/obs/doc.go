// Package obs is the observability layer threaded through every runtime
// layer of the repo: the fleet federation, the autopilot control loop, the
// memplane data plane, the chaos injector and the gateway serving stack.
//
// It has two halves:
//
//   - A metrics registry ([Registry]) of atomic counters, gauges and
//     fixed log-bucket latency histograms. Every constructor and method is
//     nil-safe: a nil *Registry hands out nil metrics, and operations on nil
//     metrics are no-ops that perform zero allocations, so instrumented hot
//     paths cost nothing when observability is disabled. When enabled, the
//     hot-path cost is one atomic add per counter touch and two per
//     histogram observation — never a lock, never an allocation.
//
//   - A deterministic trace ring ([Trace]) of structured span events. Events
//     are stamped with an injectable clock — simulation time or a fake
//     stepping clock, never bare wall-time — so an NDJSON export
//     ([Trace.WriteNDJSON]) is byte-stable across runs with the same seed
//     and clock, and therefore golden-testable. The ring is fixed-capacity:
//     under sustained load the oldest events are overwritten and counted in
//     the dropped tally rather than growing memory without bound.
//
// The two halves are bundled by [Obs]; a nil *Obs means "observability off"
// everywhere. One sharp edge is deliberate: emitting a trace event with
// fields builds a variadic []Field slice at the call site, which the
// compiler heap-allocates regardless of whether the receiver is nil (escape
// analysis is static). Hot loops must therefore guard emission sites with an
// explicit nil check —
//
//	if o != nil {
//		o.Trace.EmitAt(now, "autopilot", "tick", obs.F("active", n))
//	}
//
// — which is the pattern used by the fleet, autopilot and memplane
// instrumentation so the allocation budgets pinned by cmd/benchfleet and the
// epoch-loop tests hold with observability disabled.
//
// Surfacing: the gateway serves the registry as Prometheus text exposition
// on GET /metrics ([Registry.WritePrometheus]), session reports embed a
// [Snapshot], and the fleetsim, onlinesim and membench CLIs dump a text
// snapshot plus the NDJSON trace under their -obs flag.
package obs
