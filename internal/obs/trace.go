package obs

import (
	"bufio"
	"io"
	"strconv"
	"sync"
	"sync/atomic"
)

// Clock supplies the timestamp for trace events emitted through
// [Trace.Emit]. It is always injectable — simulation seconds, an operation
// index, or a fake stepping clock — never bare wall time, which is what
// keeps trace exports byte-stable across runs.
type Clock func() int64

// StepClock returns a clock that yields 1, 2, 3, ... — the fake clock used
// by CLIs that have no simulation time of their own. It is safe for
// concurrent use.
func StepClock() Clock {
	var n atomic.Int64
	return func() int64 { return n.Add(1) }
}

// Field is one structured key/value attached to a trace event: either an
// int64 (F) or a string (FS).
type Field struct {
	Key   string
	Val   int64
	Str   string
	isStr bool
}

// F builds an integer field.
func F(key string, val int64) Field { return Field{Key: key, Val: val} }

// FS builds a string field.
func FS(key, val string) Field { return Field{Key: key, Str: val, isStr: true} }

// Event is one structured span event: a monotonic sequence number, the
// injected timestamp, the emitting layer ("fleet", "autopilot", "memplane",
// "chaos", ...), the event name within that layer ("place.batch", "tick",
// "write", ...) and the structured fields.
type Event struct {
	Seq    int64
	At     int64
	Layer  string
	Event  string
	Fields []Field
}

// Trace is a fixed-capacity ring of events. Under sustained emission the
// oldest events are overwritten (and tallied in Dropped) rather than
// growing memory without bound. A nil *Trace no-ops every method, but note
// that a call site passing fields still allocates the variadic slice —
// hot loops must guard emission with an explicit nil check (see the package
// comment).
type Trace struct {
	mu      sync.Mutex
	clock   Clock
	seq     int64
	buf     []Event
	next    int
	full    bool
	dropped uint64
}

// NewTrace returns a ring holding up to capacity events, stamping Emit
// calls with clock (a nil clock stamps 0; EmitAt callers supply their own
// time). A non-positive capacity returns a nil (disabled) trace.
func NewTrace(capacity int, clock Clock) *Trace {
	if capacity <= 0 {
		return nil
	}
	return &Trace{clock: clock, buf: make([]Event, 0, capacity)}
}

// Emit records an event stamped with the trace's clock.
func (t *Trace) Emit(layer, event string, fields ...Field) {
	if t == nil {
		return
	}
	var at int64
	if t.clock != nil {
		at = t.clock()
	}
	t.EmitAt(at, layer, event, fields...)
}

// EmitAt records an event with an explicit timestamp, for layers that carry
// their own simulation time (autopilot's simulated seconds, membench's
// operation index).
func (t *Trace) EmitAt(at int64, layer, event string, fields ...Field) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.seq++
	e := Event{Seq: t.seq, At: at, Layer: layer, Event: event, Fields: fields}
	if !t.full && len(t.buf) < cap(t.buf) {
		t.buf = append(t.buf, e)
		if len(t.buf) == cap(t.buf) {
			t.full = true
			t.next = 0
		}
	} else {
		t.buf[t.next] = e
		t.next++
		t.dropped++
		if t.next == len(t.buf) {
			t.next = 0
		}
	}
	t.mu.Unlock()
}

// Events returns a copy of the buffered events, oldest first.
func (t *Trace) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, 0, len(t.buf))
	if t.full {
		out = append(out, t.buf[t.next:]...)
		out = append(out, t.buf[:t.next]...)
	} else {
		out = append(out, t.buf...)
	}
	return out
}

// Len returns the number of buffered events.
func (t *Trace) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.buf)
}

// Dropped returns how many events were overwritten because the ring was
// full.
func (t *Trace) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// WriteNDJSON writes every buffered event as one JSON object per line. The
// fields are marshalled by hand in a fixed order (seq, at, layer, event,
// then the emitted fields in emission order), so the export is byte-stable:
// two runs with the same seed and clock produce identical bytes.
func (t *Trace) WriteNDJSON(w io.Writer) error {
	if t == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	var line []byte
	for _, e := range t.Events() {
		line = line[:0]
		line = append(line, `{"seq":`...)
		line = strconv.AppendInt(line, e.Seq, 10)
		line = append(line, `,"at":`...)
		line = strconv.AppendInt(line, e.At, 10)
		line = append(line, `,"layer":`...)
		line = strconv.AppendQuote(line, e.Layer)
		line = append(line, `,"event":`...)
		line = strconv.AppendQuote(line, e.Event)
		for _, f := range e.Fields {
			line = append(line, ',')
			line = strconv.AppendQuote(line, f.Key)
			line = append(line, ':')
			if f.isStr {
				line = strconv.AppendQuote(line, f.Str)
			} else {
				line = strconv.AppendInt(line, f.Val, 10)
			}
		}
		line = append(line, '}', '\n')
		if _, err := bw.Write(line); err != nil {
			return err
		}
	}
	return bw.Flush()
}
