package obs

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// typeString renders the Prometheus TYPE keyword for a family.
func (k metricKind) typeString() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// promSeries is one exposition sample collected under the registry lock.
type promSeries struct {
	fam  string
	line string
}

// histLe renders the inclusive upper bound of log-2 bucket i: bucket 0
// holds zeros (le="0"), bucket i holds values below 1<<i (le="2^i - 1").
// The top slot has no finite bound; it is folded into +Inf by the caller.
func histLe(i int) string {
	if i == 0 {
		return "0"
	}
	if i >= 64 {
		return "+Inf"
	}
	bound := (uint64(1) << uint(i)) - 1
	return strconv.FormatUint(bound, 10)
}

// withLabel merges an extra label pair into a series name that may already
// carry labels: name{a="b"} + le=7 -> name{a="b",le="7"}, and a bare
// name + le=7 -> name{le="7"}. The suffix is appended to the family part
// of the name (before the brace).
func withLabel(series, suffix, key, val string) string {
	fam := familyName(series)
	if fam == series {
		return fam + suffix + "{" + key + "=\"" + val + "\"}"
	}
	labels := series[len(fam):]        // "{...}"
	inner := labels[1 : len(labels)-1] // "..."
	return fam + suffix + "{" + inner + "," + key + "=\"" + val + "\"}"
}

// suffixed appends a suffix to the family part of a series name:
// name{a="b"} + _count -> name_count{a="b"}.
func suffixed(series, suffix string) string {
	fam := familyName(series)
	if fam == series {
		return fam + suffix
	}
	return fam + suffix + series[len(fam):]
}

// WritePrometheus writes the registry in Prometheus text exposition format
// (version 0.0.4). Families and series are sorted, so the output for a
// deterministic workload is deterministic. Histograms expose cumulative
// _bucket series for every non-empty log-2 bucket plus the mandatory +Inf
// bucket, then _sum and _count. A nil registry writes nothing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	series := make([]promSeries, 0, len(r.counters)+len(r.gauges)+len(r.gaugeFns)+len(r.hists))
	fams := make(map[string]*family, len(r.families))
	for name, f := range r.families {
		fams[name] = f
	}
	for _, name := range sortedKeys(r.counters) {
		series = append(series, promSeries{familyName(name),
			name + " " + strconv.FormatUint(r.counters[name].Value(), 10)})
	}
	for _, name := range sortedKeys(r.gauges) {
		series = append(series, promSeries{familyName(name),
			name + " " + strconv.FormatInt(r.gauges[name].Value(), 10)})
	}
	gaugeFns := make(map[string]func() float64, len(r.gaugeFns))
	for name, fn := range r.gaugeFns {
		gaugeFns[name] = fn
	}
	type histSample struct {
		name    string
		buckets [histSlots]uint64
		sum     int64
	}
	histSamples := make([]histSample, 0, len(r.hists))
	for _, name := range sortedKeys(r.hists) {
		h := r.hists[name]
		histSamples = append(histSamples, histSample{name, h.buckets(), h.Sum()})
	}
	r.mu.Unlock()

	// Gauge callbacks run outside the registry lock: they reach into other
	// subsystems (the session manager, the fleet) that may themselves take
	// locks and register metrics.
	for _, name := range sortedKeys(gaugeFns) {
		series = append(series, promSeries{familyName(name),
			name + " " + formatPromFloat(gaugeFns[name]())})
	}
	for _, hs := range histSamples {
		var cum uint64
		for i, n := range hs.buckets {
			if n == 0 {
				continue
			}
			cum += n
			if i >= 64 {
				continue // folded into +Inf below
			}
			series = append(series, promSeries{familyName(hs.name) + "_bucket",
				withLabel(hs.name, "_bucket", "le", histLe(i)) + " " + strconv.FormatUint(cum, 10)})
		}
		series = append(series, promSeries{familyName(hs.name) + "_bucket",
			withLabel(hs.name, "_bucket", "le", "+Inf") + " " + strconv.FormatUint(cum, 10)})
		series = append(series, promSeries{familyName(hs.name) + "_sum",
			suffixed(hs.name, "_sum") + " " + strconv.FormatInt(hs.sum, 10)})
		series = append(series, promSeries{familyName(hs.name) + "_count",
			suffixed(hs.name, "_count") + " " + strconv.FormatUint(cum, 10)})
	}

	// Group by the declared family (histogram sub-series map back to their
	// base family for HELP/TYPE) and emit. Series keep their collection
	// order — sorted names, then ascending histogram buckets — which is
	// already deterministic.
	byFam := make(map[string][]string)
	for _, s := range series {
		fam := s.fam
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if base, ok := strings.CutSuffix(fam, suffix); ok {
				if f, ok := fams[base]; ok && f.kind == kindHistogram {
					fam = base
				}
				break
			}
		}
		byFam[fam] = append(byFam[fam], s.line)
	}
	bw := bufio.NewWriter(w)
	for _, fam := range sortedKeys(byFam) {
		if f, ok := fams[fam]; ok {
			if f.help != "" {
				fmt.Fprintf(bw, "# HELP %s %s\n", fam, f.help)
			}
			fmt.Fprintf(bw, "# TYPE %s %s\n", fam, f.kind.typeString())
		}
		for _, line := range byFam[fam] {
			bw.WriteString(line)
			bw.WriteByte('\n')
		}
	}
	return bw.Flush()
}

// formatPromFloat renders a gauge value compactly: integral values without
// a decimal point, others with full precision.
func formatPromFloat(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteText writes a plain sorted "name value" dump of the registry — the
// human-readable snapshot printed by the CLIs' -obs flag. Histograms appear
// as their <name>_count and <name>_sum entries. A nil registry writes
// nothing.
func (r *Registry) WriteText(w io.Writer) error {
	if r == nil {
		return nil
	}
	snap := r.Snapshot()
	bw := bufio.NewWriter(w)
	for _, name := range sortedKeys(snap.Counters) {
		fmt.Fprintf(bw, "%s %d\n", name, snap.Counters[name])
	}
	for _, name := range sortedKeys(snap.Gauges) {
		fmt.Fprintf(bw, "%s %s\n", name, formatPromFloat(snap.Gauges[name]))
	}
	return bw.Flush()
}
