package obs

import (
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter. All methods are
// nil-safe no-ops so call sites never branch on whether metrics are enabled.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one to the counter.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add adds n to the counter.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 on a nil counter).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value (an int64: a count of sessions, a
// number of bytes). Like Counter it is nil-safe.
type Gauge struct {
	v atomic.Int64
}

// Set stores v as the gauge's current value.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adjusts the gauge by delta (which may be negative).
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value returns the gauge's current value (0 on a nil gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// histSlots is the number of log-2 buckets: bits.Len64 maps a non-negative
// value v to [0, 64], so 65 slots cover the full int64 range with no bound
// checks on the hot path.
const histSlots = 65

// Histogram is a fixed log-2-bucket histogram for latency-style int64
// values (nanoseconds). Bucket i counts values v with bits.Len64(v) == i,
// i.e. (1<<(i-1)) <= v < (1<<i); bucket 0 counts zeros. Observing costs two
// atomic adds and never allocates.
type Histogram struct {
	counts [histSlots]atomic.Uint64
	sum    atomic.Int64
}

// bucketIndex maps a value to its log-2 bucket. Negative values clamp to
// bucket 0 so a broken clock cannot index out of range.
func bucketIndex(v int64) int {
	if v <= 0 {
		return 0
	}
	return bits.Len64(uint64(v))
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	h.counts[bucketIndex(v)].Add(1)
	h.sum.Add(v)
}

// Count returns the number of observed values.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	var n uint64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the sum of observed values.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// buckets returns a snapshot of the per-bucket counts.
func (h *Histogram) buckets() [histSlots]uint64 {
	var out [histSlots]uint64
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	return out
}

// metricKind tags a registered family for the Prometheus TYPE line.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

// family is the exposition metadata shared by every series of one metric
// name (help text and type).
type family struct {
	help string
	kind metricKind
}

// Registry holds named metrics. Registration takes a lock; the returned
// metric objects are lock-free afterwards. A nil *Registry hands out nil
// metrics from every constructor, so a disabled stack needs no branches.
//
// Series names may carry Prometheus-style labels inline —
// `requests_total{route="GET /healthz"}` — in which case the family is the
// portion before the brace. Registration is idempotent: asking for an
// existing name returns the existing metric.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	counters map[string]*Counter
	gauges   map[string]*Gauge
	gaugeFns map[string]func() float64
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		families: make(map[string]*family),
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		gaugeFns: make(map[string]func() float64),
		hists:    make(map[string]*Histogram),
	}
}

// familyName strips an inline label set from a series name.
func familyName(name string) string {
	for i := 0; i < len(name); i++ {
		if name[i] == '{' {
			return name[:i]
		}
	}
	return name
}

// register records family metadata for a series (first registration of a
// family wins). Callers hold r.mu.
func (r *Registry) register(name, help string, kind metricKind) {
	fam := familyName(name)
	if _, ok := r.families[fam]; !ok {
		r.families[fam] = &family{help: help, kind: kind}
	}
}

// Counter returns the named counter, creating it on first use. A nil
// registry returns a nil (no-op) counter.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[name]; ok {
		return c
	}
	r.register(name, help, kindCounter)
	c := &Counter{}
	r.counters[name] = c
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[name]; ok {
		return g
	}
	r.register(name, help, kindGauge)
	g := &Gauge{}
	r.gauges[name] = g
	return g
}

// GaugeFunc registers a gauge whose value is computed at scrape time by fn
// (used for values owned by another subsystem, like the gateway's live
// session count). Re-registering a name replaces the callback.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.register(name, help, kindGauge)
	r.gaugeFns[name] = fn
}

// Histogram returns the named log-bucket histogram, creating it on first
// use.
func (r *Registry) Histogram(name, help string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.hists[name]; ok {
		return h
	}
	r.register(name, help, kindHistogram)
	h := &Histogram{}
	r.hists[name] = h
	return h
}

// maxVecSeries bounds the number of distinct label values one vec will
// create. Unauthenticated tenants are keyed by remote address, which an
// adversary (or just a NAT) can make unbounded; past the cap all new values
// collapse into the "overflow" series instead of growing the registry
// without limit.
const maxVecSeries = 64

// overflowLabel is the series label used once a vec hits maxVecSeries.
const overflowLabel = "overflow"

// escapeLabel writes a label value with Prometheus escaping (backslash,
// quote and newline).
func escapeLabel(v string) string {
	clean := true
	for i := 0; i < len(v); i++ {
		if v[i] == '\\' || v[i] == '"' || v[i] == '\n' {
			clean = false
			break
		}
	}
	if clean {
		return v
	}
	out := make([]byte, 0, len(v)+8)
	for i := 0; i < len(v); i++ {
		switch v[i] {
		case '\\':
			out = append(out, '\\', '\\')
		case '"':
			out = append(out, '\\', '"')
		case '\n':
			out = append(out, '\\', 'n')
		default:
			out = append(out, v[i])
		}
	}
	return string(out)
}

// seriesName renders name{k1="v1",k2="v2"} for up to two label pairs.
func seriesName(name, k1, v1, k2, v2 string) string {
	s := name + "{" + k1 + "=\"" + escapeLabel(v1) + "\""
	if k2 != "" {
		s += "," + k2 + "=\"" + escapeLabel(v2) + "\""
	}
	return s + "}"
}

// CounterVec is a family of counters keyed by one label value. The fast
// path (an existing label value) is one RLock'd map hit with no
// allocations.
type CounterVec struct {
	r          *Registry
	name, help string
	key        string
	mu         sync.RWMutex
	m          map[string]*Counter
}

// CounterVec returns a one-label counter family.
func (r *Registry) CounterVec(name, help, labelKey string) *CounterVec {
	if r == nil {
		return nil
	}
	return &CounterVec{r: r, name: name, help: help, key: labelKey, m: make(map[string]*Counter)}
}

// With returns the counter for one label value, creating (and registering)
// it on first use. Past maxVecSeries distinct values it returns the shared
// overflow counter.
func (v *CounterVec) With(val string) *Counter {
	if v == nil {
		return nil
	}
	v.mu.RLock()
	c := v.m[val]
	v.mu.RUnlock()
	if c != nil {
		return c
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if c := v.m[val]; c != nil {
		return c
	}
	if len(v.m) >= maxVecSeries {
		val = overflowLabel
		if c := v.m[val]; c != nil {
			return c
		}
	}
	c = v.r.Counter(seriesName(v.name, v.key, val, "", ""), v.help)
	v.m[val] = c
	return c
}

// vecKey2 is the comparable composite key of a two-label vec; using an
// array key keeps the enabled fast path allocation-free.
type vecKey2 [2]string

// CounterVec2 is a family of counters keyed by two label values.
type CounterVec2 struct {
	r          *Registry
	name, help string
	k1, k2     string
	mu         sync.RWMutex
	m          map[vecKey2]*Counter
}

// CounterVec2 returns a two-label counter family.
func (r *Registry) CounterVec2(name, help, key1, key2 string) *CounterVec2 {
	if r == nil {
		return nil
	}
	return &CounterVec2{r: r, name: name, help: help, k1: key1, k2: key2, m: make(map[vecKey2]*Counter)}
}

// With returns the counter for one (v1, v2) label pair.
func (v *CounterVec2) With(v1, v2 string) *Counter {
	if v == nil {
		return nil
	}
	k := vecKey2{v1, v2}
	v.mu.RLock()
	c := v.m[k]
	v.mu.RUnlock()
	if c != nil {
		return c
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if c := v.m[k]; c != nil {
		return c
	}
	if len(v.m) >= maxVecSeries {
		k = vecKey2{overflowLabel, overflowLabel}
		if c := v.m[k]; c != nil {
			return c
		}
	}
	c = v.r.Counter(seriesName(v.name, v.k1, k[0], v.k2, k[1]), v.help)
	v.m[k] = c
	return c
}

// HistogramVec is a family of histograms keyed by one label value.
type HistogramVec struct {
	r          *Registry
	name, help string
	key        string
	mu         sync.RWMutex
	m          map[string]*Histogram
}

// HistogramVec returns a one-label histogram family.
func (r *Registry) HistogramVec(name, help, labelKey string) *HistogramVec {
	if r == nil {
		return nil
	}
	return &HistogramVec{r: r, name: name, help: help, key: labelKey, m: make(map[string]*Histogram)}
}

// With returns the histogram for one label value.
func (v *HistogramVec) With(val string) *Histogram {
	if v == nil {
		return nil
	}
	v.mu.RLock()
	h := v.m[val]
	v.mu.RUnlock()
	if h != nil {
		return h
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if h := v.m[val]; h != nil {
		return h
	}
	if len(v.m) >= maxVecSeries {
		val = overflowLabel
		if h := v.m[val]; h != nil {
			return h
		}
	}
	h = v.r.Histogram(seriesName(v.name, v.key, val, "", ""), v.help)
	v.m[val] = h
	return h
}

// Snapshot is a point-in-time copy of every registered value, embedded into
// session reports and dumped by the CLIs' -obs flag. Histograms contribute
// a <name>_count counter and a <name>_sum gauge entry. JSON encoding of the
// maps is key-sorted, so a marshalled snapshot of deterministic values is
// byte-stable.
type Snapshot struct {
	Counters map[string]uint64  `json:"counters"`
	Gauges   map[string]float64 `json:"gauges,omitempty"`
}

// Snapshot captures the current value of every metric. A nil registry
// yields a zero snapshot.
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	snap := Snapshot{Counters: make(map[string]uint64)}
	for name, c := range r.counters {
		snap.Counters[name] = c.Value()
	}
	for name, h := range r.hists {
		snap.Counters[name+"_count"] = h.Count()
		if snap.Gauges == nil {
			snap.Gauges = make(map[string]float64)
		}
		snap.Gauges[name+"_sum"] = float64(h.Sum())
	}
	if len(r.gauges) > 0 || len(r.gaugeFns) > 0 {
		if snap.Gauges == nil {
			snap.Gauges = make(map[string]float64)
		}
	}
	for name, g := range r.gauges {
		snap.Gauges[name] = float64(g.Value())
	}
	for name, fn := range r.gaugeFns {
		snap.Gauges[name] = fn()
	}
	return snap
}

// sortedKeys returns map keys in sorted order (the exposition and dump
// order, so output is deterministic).
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
