package obs

import (
	"strings"
	"sync"
	"testing"
)

// TestCounterGaugeBasics pins the elementary semantics.
func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("ops_total", "ops")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if again := r.Counter("ops_total", "ops"); again != c {
		t.Fatal("re-registering a counter must return the same instance")
	}
	g := r.Gauge("depth", "queue depth")
	g.Set(7)
	g.Add(-2)
	if got := g.Value(); got != 5 {
		t.Fatalf("gauge = %d, want 5", got)
	}
}

// TestHistogramBuckets pins the log-2 bucketing: zeros in bucket 0, powers
// of two on their boundary, sums exact.
func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_ns", "latency")
	for _, v := range []int64{0, 1, 2, 3, 4, 1024, -5} {
		h.Observe(v)
	}
	if got := h.Count(); got != 7 {
		t.Fatalf("count = %d, want 7", got)
	}
	if got := h.Sum(); got != 0+1+2+3+4+1024-5 {
		t.Fatalf("sum = %d", got)
	}
	b := h.buckets()
	// 0 and -5 -> bucket 0; 1 -> bucket 1; 2,3 -> bucket 2; 4 -> bucket 3;
	// 1024 -> bucket 11.
	want := map[int]uint64{0: 2, 1: 1, 2: 2, 3: 1, 11: 1}
	for i, n := range b {
		if n != want[i] {
			t.Fatalf("bucket %d = %d, want %d", i, n, want[i])
		}
	}
}

// TestNilRegistryIsDisabled checks the whole nil chain: a nil registry
// hands out nil metrics and every operation on them is a no-op.
func TestNilRegistryIsDisabled(t *testing.T) {
	var r *Registry
	c := r.Counter("x", "")
	g := r.Gauge("y", "")
	h := r.Histogram("z", "")
	v := r.CounterVec("v", "", "k")
	v2 := r.CounterVec2("w", "", "a", "b")
	hv := r.HistogramVec("hv", "", "k")
	r.GaugeFunc("f", "", func() float64 { return 1 })
	c.Inc()
	c.Add(3)
	g.Set(9)
	h.Observe(5)
	v.With("a").Inc()
	v2.With("a", "b").Inc()
	hv.With("a").Observe(1)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Fatal("nil metrics must stay zero")
	}
	if err := r.WritePrometheus(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}
	snap := r.Snapshot()
	if len(snap.Counters) != 0 {
		t.Fatal("nil registry snapshot must be empty")
	}
}

// TestDisabledPathAllocs pins the zero-allocation contract of the disabled
// path: operating on nil metrics (what every subsystem does when obs is
// off) must not allocate, preserving the repo's existing alloc budgets.
func TestDisabledPathAllocs(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	var tr *Trace
	var cv *CounterVec
	if n := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(2)
		g.Set(1)
		g.Add(-1)
		h.Observe(42)
		cv.With("x").Inc()
		tr.Emit("layer", "event") // no fields: no variadic slice
	}); n != 0 {
		t.Fatalf("disabled path allocates %v allocs/op, want 0", n)
	}
}

// TestEnabledHotPathAllocs pins the enabled hot path: counter increments
// and histogram observations are allocation-free, and a vec hit on an
// existing label value is too.
func TestEnabledHotPathAllocs(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c", "")
	h := r.Histogram("h", "")
	cv := r.CounterVec2("v", "", "route", "status")
	cv.With("GET /x", "200") // pre-create the series
	if n := testing.AllocsPerRun(1000, func() {
		c.Inc()
		h.Observe(123456)
		cv.With("GET /x", "200").Inc()
	}); n != 0 {
		t.Fatalf("enabled hot path allocates %v allocs/op, want 0", n)
	}
}

// TestConcurrentIncrements hammers one counter, one histogram and one vec
// from many goroutines while snapshots are taken mid-write; run under
// -race this doubles as the data-race proof, and the final totals prove no
// increment was lost.
func TestConcurrentIncrements(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c", "")
	h := r.Histogram("h", "")
	cv := r.CounterVec("v", "", "worker")
	const workers = 8
	const perWorker = 2000
	stop := make(chan struct{})
	var snapWG sync.WaitGroup
	snapWG.Add(1)
	go func() { // snapshot-during-write
		defer snapWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			r.Snapshot()
			var sb strings.Builder
			if err := r.WritePrometheus(&sb); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	var writeWG sync.WaitGroup
	for w := 0; w < workers; w++ {
		writeWG.Add(1)
		go func(w int) {
			defer writeWG.Done()
			label := string(rune('a' + w))
			for i := 0; i < perWorker; i++ {
				c.Inc()
				h.Observe(int64(i))
				cv.With(label).Inc()
			}
		}(w)
	}
	writeWG.Wait()
	close(stop)
	snapWG.Wait()
	if got := c.Value(); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := h.Count(); got != workers*perWorker {
		t.Fatalf("histogram count = %d, want %d", got, workers*perWorker)
	}
	var sum uint64
	for w := 0; w < workers; w++ {
		sum += cv.With(string(rune('a' + w))).Value()
	}
	if sum != workers*perWorker {
		t.Fatalf("vec sum = %d, want %d", sum, workers*perWorker)
	}
}

// TestVecOverflowCap proves a label-cardinality attack cannot grow the
// registry without bound: past maxVecSeries distinct values everything
// lands in the shared overflow series.
func TestVecOverflowCap(t *testing.T) {
	r := NewRegistry()
	cv := r.CounterVec("denials", "", "tenant")
	for i := 0; i < maxVecSeries*3; i++ {
		cv.With("tenant-" + string(rune('0'+i%10)) + string(rune('a'+i/10))).Inc()
	}
	snap := r.Snapshot()
	if len(snap.Counters) > maxVecSeries+1 {
		t.Fatalf("vec grew to %d series, cap is %d + overflow", len(snap.Counters), maxVecSeries)
	}
	over := cv.With(overflowLabel).Value()
	if over == 0 {
		t.Fatal("overflow series never used despite exceeding the cap")
	}
}

// TestSnapshotContents checks the report-embedding shape: counters by
// value, histograms as _count/_sum entries, gauges (including callbacks)
// as floats.
func TestSnapshotContents(t *testing.T) {
	r := NewRegistry()
	r.Counter("reqs", "").Add(3)
	r.Gauge("depth", "").Set(2)
	r.GaugeFunc("sessions", "", func() float64 { return 4.5 })
	h := r.Histogram("lat", "")
	h.Observe(10)
	h.Observe(20)
	snap := r.Snapshot()
	if snap.Counters["reqs"] != 3 {
		t.Fatalf("reqs = %d", snap.Counters["reqs"])
	}
	if snap.Counters["lat_count"] != 2 {
		t.Fatalf("lat_count = %d", snap.Counters["lat_count"])
	}
	if snap.Gauges["lat_sum"] != 30 {
		t.Fatalf("lat_sum = %v", snap.Gauges["lat_sum"])
	}
	if snap.Gauges["depth"] != 2 || snap.Gauges["sessions"] != 4.5 {
		t.Fatalf("gauges = %v", snap.Gauges)
	}
}
