package obs

import (
	"fmt"
	"io"
)

// Obs bundles the two halves of the observability layer. A nil *Obs means
// observability is off: every subsystem accepts a nil handle and runs its
// hot paths with zero overhead.
type Obs struct {
	Metrics *Registry
	Trace   *Trace
}

// Options configures New.
type Options struct {
	// TraceCapacity is the trace ring size; 0 means the default (2048),
	// negative disables tracing entirely (metrics only).
	TraceCapacity int
	// Clock stamps events emitted through Trace.Emit. Layers with their own
	// simulation time bypass it via EmitAt. Nil stamps 0.
	Clock Clock
}

// defaultTraceCapacity bounds the ring when the caller does not choose: big
// enough to hold a full CLI scenario, small enough that an -obs dump stays
// readable.
const defaultTraceCapacity = 2048

// New builds an enabled Obs with a fresh registry and trace ring.
func New(opts Options) *Obs {
	capacity := opts.TraceCapacity
	if capacity == 0 {
		capacity = defaultTraceCapacity
	}
	return &Obs{
		Metrics: NewRegistry(),
		Trace:   NewTrace(capacity, opts.Clock),
	}
}

// Registry returns the metrics registry (nil when o is nil), so callers can
// chain o.Registry().Counter(...) without a guard.
func (o *Obs) Registry() *Registry {
	if o == nil {
		return nil
	}
	return o.Metrics
}

// Tracer returns the trace ring (nil when o is nil).
func (o *Obs) Tracer() *Trace {
	if o == nil {
		return nil
	}
	return o.Trace
}

// Dump writes the -obs report consumed by the CLIs: a sorted metrics
// snapshot followed by the NDJSON trace, each under a stable header. A nil
// Obs writes nothing.
func (o *Obs) Dump(w io.Writer) error {
	if o == nil {
		return nil
	}
	if _, err := fmt.Fprintln(w, "--- obs metrics ---"); err != nil {
		return err
	}
	if err := o.Metrics.WriteText(w); err != nil {
		return err
	}
	if o.Trace.Len() == 0 && o.Trace.Dropped() == 0 {
		return nil
	}
	if _, err := fmt.Fprintf(w, "--- obs trace (%d events, %d dropped) ---\n",
		o.Trace.Len(), o.Trace.Dropped()); err != nil {
		return err
	}
	return o.Trace.WriteNDJSON(w)
}
