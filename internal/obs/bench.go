package obs

// Bench exposes the instrumented hot path to the repo's benchmark harness
// (cmd/benchfleet): a registry holding the shapes the runtime layers use —
// a plain counter, a per-label counter and a latency histogram — is
// pre-warmed, and the returned op performs one increment of each plus one
// histogram observation, i.e. the metrics work of accounting one request.
// The op must stay allocation-free: BENCH_fleet.json records its
// allocs_per_op and the CI diff gate fails on any growth. That is the
// enabled-path half of the overhead budget; the disabled path (nil
// receivers, nil handles) is pinned to zero allocations by the layer tests.
func Bench() func() {
	r := NewRegistry()
	total := r.Counter("bench_ops_total", "benchmark op counter")
	byRoute := r.CounterVec("bench_route_ops_total", "benchmark labelled counter", "route")
	lat := r.Histogram("bench_op_ns", "benchmark op latency")
	route := byRoute.With("bench-route") // warmed: the only allocation the vec path makes
	var tick int64
	return func() {
		tick++
		total.Inc()
		route.Inc()
		lat.Observe(tick)
	}
}
