package obs

import "testing"

// TestBenchOpAllocs pins the enabled-path overhead budget: the instrumented
// hot path (counter + labelled counter + histogram per op) must not allocate.
// cmd/benchfleet records the same op in BENCH_fleet.json, so a regression
// fails both here and at the benchdiff gate.
func TestBenchOpAllocs(t *testing.T) {
	op := Bench()
	if n := testing.AllocsPerRun(1000, op); n != 0 {
		t.Fatalf("instrumented hot path allocates %v per op, want 0", n)
	}
}
