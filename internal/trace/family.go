package trace

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"
)

// The workload-family engine: the paper's evaluation rests on exactly two
// synthetic "google-like" mixes, which is far too narrow a scenario space for
// the online policies to differentiate on. A Family is a seeded,
// deterministic generator with a recognizable statistical shape — diurnal
// sinusoid arrivals, flash-crowd bursts, serverless-style short tasks,
// long-running ML gangs, heavy-tail (Pareto) task sizes — all emitting the
// same Trace the simulators already replay. Compose and Overlay merge
// families into mixed scenarios with disjoint task-ID namespaces, so the
// task-%d VMIDs of the merged parts can never collide and silently merge VMs
// at the consolidation layer.

// FamilyParams is the common envelope every family generates into: the fleet
// the trace targets, its duration, the task budget and the seed. The same
// params with the same family always produce a byte-identical trace.
type FamilyParams struct {
	// Machines is the fleet size the trace targets.
	Machines int
	// HorizonSec is the trace duration.
	HorizonSec int64
	// Tasks is the number of tasks to generate.
	Tasks int
	// Seed makes generation deterministic.
	Seed int64
}

// Validate rejects non-positive envelope values upfront with the valid range.
func (p FamilyParams) Validate() error {
	if p.Machines < 1 {
		return fmt.Errorf("trace: family Machines %d out of range (need >= 1)", p.Machines)
	}
	if p.HorizonSec < 1 {
		return fmt.Errorf("trace: family HorizonSec %d out of range (need >= 1)", p.HorizonSec)
	}
	if p.Tasks < 1 {
		return fmt.Errorf("trace: family Tasks %d out of range (need >= 1)", p.Tasks)
	}
	return nil
}

// DefaultFamilyParams mirrors DefaultConfig's envelope: one simulated day on
// a 200-machine fleet, 3000 tasks, seed 42.
func DefaultFamilyParams() FamilyParams {
	return FamilyParams{Machines: 200, HorizonSec: 24 * 3600, Tasks: 3000, Seed: 42}
}

// Family is one seeded, deterministic workload generator. Implementations
// are stateless value types: Generate is a pure function of the receiver's
// tuning fields and the params, so a family value is safe to share and reuse.
type Family interface {
	// Name is the family's registry key ("diurnal", "serverless", ...).
	Name() string
	// Describe is a one-line summary of the family's statistical shape.
	Describe() string
	// Generate builds the family's trace for the envelope. Fixed params give
	// a byte-identical trace, and the result always passes Trace.Validate.
	Generate(p FamilyParams) (*Trace, error)
}

// Families returns the bundled generator families in registry order.
func Families() []Family {
	return []Family{NewDiurnal(), NewFlashCrowd(), NewServerless(), NewMLBatch(), NewHeavyTail()}
}

// FamilyNames lists the registry keys in Families order, plus the built-in
// "mix" composite (all five families overlaid).
func FamilyNames() []string {
	names := make([]string, 0, 6)
	for _, f := range Families() {
		names = append(names, f.Name())
	}
	return append(names, "mix")
}

// FamilyByName resolves a registry key, including the "mix" composite. An
// unknown name errors with the valid list.
func FamilyByName(name string) (Family, error) {
	for _, f := range Families() {
		if f.Name() == name {
			return f, nil
		}
	}
	if name == "mix" {
		return Compose("mix", Families()...), nil
	}
	return nil, fmt.Errorf("trace: unknown family %q (valid: %s)", name, strings.Join(FamilyNames(), ", "))
}

// GenerateFamily resolves a family by name and generates its trace — the
// one-call form the CLIs and the facade use.
func GenerateFamily(name string, p FamilyParams) (*Trace, error) {
	f, err := FamilyByName(name)
	if err != nil {
		return nil, err
	}
	return f.Generate(p)
}

// finalizeTasks sorts the tasks by (StartSec, ID) and clamps memory overuse,
// the invariants every family's output shares with Generate's.
func finalizeTasks(tasks []Task) {
	sort.Slice(tasks, func(i, j int) bool {
		if tasks[i].StartSec != tasks[j].StartSec {
			return tasks[i].StartSec < tasks[j].StartSec
		}
		return tasks[i].ID < tasks[j].ID
	})
	for i := range tasks {
		if tasks[i].UsedMemGiB > tasks[i].BookedMemGiB {
			tasks[i].UsedMemGiB = tasks[i].BookedMemGiB
		}
		if tasks[i].UsedCPU > tasks[i].BookedCPU {
			tasks[i].UsedCPU = tasks[i].BookedCPU
		}
	}
}

// clampSpan truncates a (start, duration) pair to [0, horizon] while keeping
// the task at least minDur seconds long.
func clampSpan(start, dur, horizon, minDur int64) (int64, int64) {
	if dur < minDur {
		dur = minDur
	}
	if start < 0 {
		start = 0
	}
	end := start + dur
	if end > horizon {
		end = horizon
		start = end - dur
		if start < 0 {
			start = 0
		}
	}
	if end-start < minDur {
		end = start + minDur
		if end > horizon {
			end = horizon
			start = end - minDur
			if start < 0 {
				start = 0
				end = minDur
				if end > horizon {
					end = horizon
				}
			}
		}
	}
	if end <= start { // horizon shorter than minDur: take everything there is
		start, end = 0, horizon
	}
	return start, end - start
}

// Diurnal generates a sinusoidal day/night arrival pattern: the arrival rate
// follows 1 + Amplitude*sin over Peaks cycles of the horizon, so the fleet
// sees a deep night trough and a midday crest — the regime where hysteresis
// and EWMA forecasting pay off against a purely reactive policy.
type Diurnal struct {
	// Amplitude in [0, 1] scales the day/night swing (0.8 by default: the
	// trough runs at 1/9 of the crest's arrival rate).
	Amplitude float64
	// Peaks is the number of sinusoid cycles across the horizon (1: a single
	// day in a one-day trace).
	Peaks int
}

// NewDiurnal returns the diurnal family with the default swing.
func NewDiurnal() Diurnal { return Diurnal{Amplitude: 0.8, Peaks: 1} }

// Name implements Family.
func (Diurnal) Name() string { return "diurnal" }

// Describe implements Family.
func (Diurnal) Describe() string {
	return "sinusoidal day/night arrival rate with a deep night trough"
}

// Generate implements Family.
func (d Diurnal) Generate(p FamilyParams) (*Trace, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if d.Amplitude < 0 || d.Amplitude > 1 {
		return nil, fmt.Errorf("trace: diurnal Amplitude %g out of range (need 0 <= a <= 1)", d.Amplitude)
	}
	peaks := d.Peaks
	if peaks < 1 {
		peaks = 1
	}
	rng := rand.New(rand.NewSource(p.Seed))
	tasks := make([]Task, 0, p.Tasks)
	for i := 0; i < p.Tasks; i++ {
		// Rejection-sample the start against the sinusoid density: trough at
		// t=0 (midnight), crest mid-cycle.
		var start int64
		for {
			u := rng.Float64()
			density := 1 + d.Amplitude*math.Sin(2*math.Pi*float64(peaks)*u-math.Pi/2)
			if rng.Float64()*(1+d.Amplitude) <= density {
				start = int64(u * float64(p.HorizonSec))
				break
			}
		}
		dur := int64(rng.ExpFloat64() * float64(p.HorizonSec) / 16)
		start, dur = clampSpan(start, dur, p.HorizonSec, 60)
		bookedCPU := 0.5 + rng.Float64()*3.5
		bookedMem := bookedCPU * 3 * (0.8 + rng.Float64()*0.4)
		util := 0.3 + rng.Float64()*0.3
		tasks = append(tasks, Task{
			ID: i, JobID: i/4 + 1, StartSec: start, EndSec: start + dur,
			BookedCPU: bookedCPU, BookedMemGiB: bookedMem,
			UsedCPU: bookedCPU * util, UsedMemGiB: bookedMem * util * 1.1,
		})
	}
	finalizeTasks(tasks)
	return &Trace{Name: d.Name(), Machines: p.Machines, HorizonSec: p.HorizonSec, Tasks: tasks}, nil
}

// FlashCrowd generates a low background arrival rate punctuated by a few
// tightly clustered bursts of short, hot tasks — the pattern that punishes a
// consolidated fleet with emergency wakes and rewards standing headroom.
type FlashCrowd struct {
	// Bursts is the number of flash crowds across the horizon (3 by default).
	Bursts int
	// BurstFraction in [0, 1) is the share of tasks arriving inside bursts
	// (0.6 by default); the rest trickle uniformly.
	BurstFraction float64
	// WidthFraction is each burst's width as a fraction of the horizon
	// (0.02 by default — a half-hour spike in a one-day trace).
	WidthFraction float64
}

// NewFlashCrowd returns the flash-crowd family with the default burst shape.
func NewFlashCrowd() FlashCrowd {
	return FlashCrowd{Bursts: 3, BurstFraction: 0.6, WidthFraction: 0.02}
}

// Name implements Family.
func (FlashCrowd) Name() string { return "flashcrowd" }

// Describe implements Family.
func (FlashCrowd) Describe() string {
	return "quiet background load punctuated by tight bursts of short hot tasks"
}

// Generate implements Family.
func (fc FlashCrowd) Generate(p FamilyParams) (*Trace, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if fc.Bursts < 1 {
		return nil, fmt.Errorf("trace: flashcrowd Bursts %d out of range (need >= 1)", fc.Bursts)
	}
	if fc.BurstFraction < 0 || fc.BurstFraction >= 1 {
		return nil, fmt.Errorf("trace: flashcrowd BurstFraction %g out of range (need 0 <= f < 1)", fc.BurstFraction)
	}
	if fc.WidthFraction <= 0 || fc.WidthFraction > 0.25 {
		return nil, fmt.Errorf("trace: flashcrowd WidthFraction %g out of range (need 0 < w <= 0.25)", fc.WidthFraction)
	}
	rng := rand.New(rand.NewSource(p.Seed))
	centers := make([]float64, fc.Bursts)
	for i := range centers {
		centers[i] = (0.1 + 0.8*rng.Float64()) * float64(p.HorizonSec)
	}
	width := fc.WidthFraction * float64(p.HorizonSec)
	tasks := make([]Task, 0, p.Tasks)
	for i := 0; i < p.Tasks; i++ {
		var start, dur int64
		var bookedCPU float64
		if rng.Float64() < fc.BurstFraction {
			// Burst task: clustered start, short and hot.
			c := centers[rng.Intn(len(centers))]
			start = int64(c + rng.NormFloat64()*width/2)
			dur = int64(rng.ExpFloat64() * float64(p.HorizonSec) / 64)
			bookedCPU = 1 + rng.Float64()*3
		} else {
			// Background trickle.
			start = int64(rng.Float64() * float64(p.HorizonSec))
			dur = int64(rng.ExpFloat64() * float64(p.HorizonSec) / 12)
			bookedCPU = 0.5 + rng.Float64()*2
		}
		start, dur = clampSpan(start, dur, p.HorizonSec, 60)
		bookedMem := bookedCPU * 2.5 * (0.8 + rng.Float64()*0.4)
		util := 0.4 + rng.Float64()*0.4
		tasks = append(tasks, Task{
			ID: i, JobID: i/8 + 1, StartSec: start, EndSec: start + dur,
			BookedCPU: bookedCPU, BookedMemGiB: bookedMem,
			UsedCPU: bookedCPU * util, UsedMemGiB: bookedMem * util,
		})
	}
	finalizeTasks(tasks)
	return &Trace{Name: fc.Name(), Machines: p.Machines, HorizonSec: p.HorizonSec, Tasks: tasks}, nil
}

// Serverless generates function-style invocations: many tiny tasks whose
// durations are dominated by execution times of seconds to minutes, with a
// fraction paying a cold-start penalty on top — the churn-heavy regime where
// per-transition ACPI costs matter most.
type Serverless struct {
	// ColdFraction in [0, 1] is the share of invocations paying a cold
	// start (0.3 by default).
	ColdFraction float64
	// ColdStartSec is the cold-start penalty added to a cold invocation's
	// duration (30 s by default).
	ColdStartSec int64
	// MeanExecSec is the mean warm execution time (120 s by default).
	MeanExecSec float64
}

// NewServerless returns the serverless family with the default invocation
// shape.
func NewServerless() Serverless {
	return Serverless{ColdFraction: 0.3, ColdStartSec: 30, MeanExecSec: 120}
}

// Name implements Family.
func (Serverless) Name() string { return "serverless" }

// Describe implements Family.
func (Serverless) Describe() string {
	return "many tiny short tasks, a fraction paying a cold-start penalty"
}

// Generate implements Family.
func (s Serverless) Generate(p FamilyParams) (*Trace, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if s.ColdFraction < 0 || s.ColdFraction > 1 {
		return nil, fmt.Errorf("trace: serverless ColdFraction %g out of range (need 0 <= f <= 1)", s.ColdFraction)
	}
	if s.ColdStartSec < 0 {
		return nil, fmt.Errorf("trace: serverless ColdStartSec %d out of range (need >= 0)", s.ColdStartSec)
	}
	if s.MeanExecSec <= 0 {
		return nil, fmt.Errorf("trace: serverless MeanExecSec %g out of range (need > 0)", s.MeanExecSec)
	}
	rng := rand.New(rand.NewSource(p.Seed))
	tasks := make([]Task, 0, p.Tasks)
	for i := 0; i < p.Tasks; i++ {
		start := int64(rng.Float64() * float64(p.HorizonSec))
		dur := int64(rng.ExpFloat64() * s.MeanExecSec)
		if rng.Float64() < s.ColdFraction {
			dur += s.ColdStartSec
		}
		start, dur = clampSpan(start, dur, p.HorizonSec, 10)
		bookedCPU := 0.1 + rng.Float64()*0.9
		bookedMem := bookedCPU * 2 * (0.8 + rng.Float64()*0.4)
		util := 0.5 + rng.Float64()*0.4
		tasks = append(tasks, Task{
			ID: i, JobID: i/16 + 1, StartSec: start, EndSec: start + dur,
			BookedCPU: bookedCPU, BookedMemGiB: bookedMem,
			UsedCPU: bookedCPU * util, UsedMemGiB: bookedMem * util,
		})
	}
	finalizeTasks(tasks)
	return &Trace{Name: s.Name(), Machines: p.Machines, HorizonSec: p.HorizonSec, Tasks: tasks}, nil
}

// MLBatch generates long-running training jobs: gangs of tasks submitted
// together, each holding large CPU and memory bookings at high utilization
// for a large fraction of the horizon — the stable, dense regime where
// consolidation has little slack to harvest.
type MLBatch struct {
	// GangSize is the number of tasks per job arriving together (4 by
	// default).
	GangSize int
	// MinDurationFrac and MaxDurationFrac bound job durations as fractions
	// of the horizon (0.25 and 0.9 by default).
	MinDurationFrac float64
	MaxDurationFrac float64
}

// NewMLBatch returns the ML-batch family with the default gang shape.
func NewMLBatch() MLBatch {
	return MLBatch{GangSize: 4, MinDurationFrac: 0.25, MaxDurationFrac: 0.9}
}

// Name implements Family.
func (MLBatch) Name() string { return "mlbatch" }

// Describe implements Family.
func (MLBatch) Describe() string {
	return "long-running high-utilization training gangs submitted together"
}

// Generate implements Family.
func (m MLBatch) Generate(p FamilyParams) (*Trace, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if m.GangSize < 1 {
		return nil, fmt.Errorf("trace: mlbatch GangSize %d out of range (need >= 1)", m.GangSize)
	}
	if m.MinDurationFrac <= 0 || m.MaxDurationFrac > 1 || m.MinDurationFrac > m.MaxDurationFrac {
		return nil, fmt.Errorf("trace: mlbatch duration fractions (%g, %g) out of range (need 0 < min <= max <= 1)",
			m.MinDurationFrac, m.MaxDurationFrac)
	}
	rng := rand.New(rand.NewSource(p.Seed))
	tasks := make([]Task, 0, p.Tasks)
	var gangStart int64
	var gangDur int64
	for i := 0; i < p.Tasks; i++ {
		if i%m.GangSize == 0 {
			// A new gang: submitted in the first 60% of the horizon, running
			// for a large fraction of it.
			gangStart = int64(rng.Float64() * 0.6 * float64(p.HorizonSec))
			frac := m.MinDurationFrac + rng.Float64()*(m.MaxDurationFrac-m.MinDurationFrac)
			gangDur = int64(frac * float64(p.HorizonSec))
		}
		start, dur := clampSpan(gangStart, gangDur, p.HorizonSec, 600)
		bookedCPU := 2 + rng.Float64()*6
		bookedMem := bookedCPU * 4 * (0.9 + rng.Float64()*0.2)
		util := 0.6 + rng.Float64()*0.3
		tasks = append(tasks, Task{
			ID: i, JobID: i/m.GangSize + 1, StartSec: start, EndSec: start + dur,
			BookedCPU: bookedCPU, BookedMemGiB: bookedMem,
			UsedCPU: bookedCPU * util, UsedMemGiB: bookedMem * util,
		})
	}
	finalizeTasks(tasks)
	return &Trace{Name: m.Name(), Machines: p.Machines, HorizonSec: p.HorizonSec, Tasks: tasks}, nil
}

// HeavyTail generates Pareto-distributed task sizes: most tasks are small,
// but a heavy tail of elephants books an outsized share of the fleet — the
// regime that stresses bin-packing quality and remote-memory placement.
type HeavyTail struct {
	// Alpha is the Pareto shape (1.5 by default; smaller is heavier).
	Alpha float64
	// MinCPU and MaxCPU bound the booked-CPU distribution (0.25 and 16 by
	// default).
	MinCPU float64
	MaxCPU float64
}

// NewHeavyTail returns the heavy-tail family with the default Pareto shape.
func NewHeavyTail() HeavyTail { return HeavyTail{Alpha: 1.5, MinCPU: 0.25, MaxCPU: 16} }

// Name implements Family.
func (HeavyTail) Name() string { return "heavytail" }

// Describe implements Family.
func (HeavyTail) Describe() string {
	return "Pareto task sizes: mostly mice, a heavy tail of elephants"
}

// Generate implements Family.
func (h HeavyTail) Generate(p FamilyParams) (*Trace, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if h.Alpha <= 0 {
		return nil, fmt.Errorf("trace: heavytail Alpha %g out of range (need > 0)", h.Alpha)
	}
	if h.MinCPU <= 0 || h.MaxCPU < h.MinCPU {
		return nil, fmt.Errorf("trace: heavytail CPU bounds (%g, %g) out of range (need 0 < min <= max)",
			h.MinCPU, h.MaxCPU)
	}
	rng := rand.New(rand.NewSource(p.Seed))
	tasks := make([]Task, 0, p.Tasks)
	for i := 0; i < p.Tasks; i++ {
		start := int64(rng.Float64() * float64(p.HorizonSec))
		// Bounded Pareto via inverse transform, clamped to [MinCPU, MaxCPU].
		bookedCPU := h.MinCPU / math.Pow(1-rng.Float64(), 1/h.Alpha)
		if bookedCPU > h.MaxCPU {
			bookedCPU = h.MaxCPU
		}
		// Duration follows the size: elephants run longer.
		dur := int64(rng.ExpFloat64() * float64(p.HorizonSec) / 24 * (1 + bookedCPU/4))
		start, dur = clampSpan(start, dur, p.HorizonSec, 60)
		bookedMem := bookedCPU * 3 * (0.8 + rng.Float64()*0.4)
		util := 0.3 + rng.Float64()*0.4
		tasks = append(tasks, Task{
			ID: i, JobID: i/4 + 1, StartSec: start, EndSec: start + dur,
			BookedCPU: bookedCPU, BookedMemGiB: bookedMem,
			UsedCPU: bookedCPU * util, UsedMemGiB: bookedMem * util,
		})
	}
	finalizeTasks(tasks)
	return &Trace{Name: h.Name(), Machines: p.Machines, HorizonSec: p.HorizonSec, Tasks: tasks}, nil
}

// composite is the Family returned by Compose.
type composite struct {
	name  string
	parts []Family
}

// Compose returns a family that splits the task budget across the parts
// (earlier parts absorb the remainder), generates each part with a seed
// derived from the envelope's, and overlays the results with disjoint ID
// namespaces. The composite is as deterministic as its parts.
func Compose(name string, parts ...Family) Family {
	return composite{name: name, parts: parts}
}

// Name implements Family.
func (c composite) Name() string { return c.name }

// Describe implements Family.
func (c composite) Describe() string {
	names := make([]string, len(c.parts))
	for i, f := range c.parts {
		names[i] = f.Name()
	}
	return "overlay of " + strings.Join(names, "+")
}

// Generate implements Family.
func (c composite) Generate(p FamilyParams) (*Trace, error) {
	if len(c.parts) == 0 {
		return nil, fmt.Errorf("trace: composite family %q has no parts", c.name)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if p.Tasks < len(c.parts) {
		return nil, fmt.Errorf("trace: composite family %q needs at least %d tasks (one per part), got %d",
			c.name, len(c.parts), p.Tasks)
	}
	share := p.Tasks / len(c.parts)
	rem := p.Tasks % len(c.parts)
	traces := make([]*Trace, len(c.parts))
	for i, f := range c.parts {
		pp := p
		pp.Tasks = share
		if i < rem {
			pp.Tasks++
		}
		// Distinct but derived seeds: the composite is reproducible from the
		// envelope seed alone, and the parts never share an RNG stream.
		pp.Seed = p.Seed + int64(i+1)*1_000_003
		tr, err := f.Generate(pp)
		if err != nil {
			return nil, fmt.Errorf("trace: composite part %q: %w", f.Name(), err)
		}
		traces[i] = tr
	}
	tr, err := Overlay(c.name, traces...)
	if err != nil {
		return nil, err
	}
	return tr, nil
}

// Overlay merges already-generated traces into one scenario: the fleet is
// the largest part's, the horizon the longest, and every part's task and job
// IDs are renumbered into disjoint dense blocks in part order — two parts
// that happen to reuse the same task ID can therefore never collide on the
// consolidation layer's task-%d VMIDs and silently merge distinct VMs.
func Overlay(name string, parts ...*Trace) (*Trace, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("trace: overlay %q needs at least one part", name)
	}
	out := &Trace{Name: name}
	taskBase, jobBase := 0, 0
	for i, part := range parts {
		if part == nil {
			return nil, fmt.Errorf("trace: overlay %q part %d is nil", name, i)
		}
		if err := part.Validate(); err != nil {
			return nil, fmt.Errorf("trace: overlay %q part %d (%s): %w", name, i, part.Name, err)
		}
		if part.Machines > out.Machines {
			out.Machines = part.Machines
		}
		if part.HorizonSec > out.HorizonSec {
			out.HorizonSec = part.HorizonSec
		}
		maxJob := 0
		for j, t := range part.Tasks {
			t.ID = taskBase + j
			if t.JobID > maxJob {
				maxJob = t.JobID
			}
			t.JobID += jobBase
			out.Tasks = append(out.Tasks, t)
		}
		taskBase += len(part.Tasks)
		jobBase += maxJob + 1
	}
	finalizeTasks(out.Tasks)
	return out, nil
}
