package trace

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func TestCodecGzipRoundTrip(t *testing.T) {
	tr, err := Generate(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}

	var plain, compressed bytes.Buffer
	if err := tr.EncodeCSV(&plain, false); err != nil {
		t.Fatal(err)
	}
	if err := tr.EncodeCSV(&compressed, true); err != nil {
		t.Fatal(err)
	}
	if got := compressed.Bytes(); len(got) < 2 || got[0] != 0x1f || got[1] != 0x8b {
		t.Fatal("compressed stream does not start with the gzip magic bytes")
	}
	if compressed.Len() >= plain.Len() {
		t.Fatalf("gzip made the trace bigger: %d vs %d bytes plain", compressed.Len(), plain.Len())
	}

	// Both forms decode through the one sniffing entry point.
	fromPlain, err := DecodeCSV(bytes.NewReader(plain.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	fromGzip, err := DecodeCSV(bytes.NewReader(compressed.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fromPlain, tr.Tasks) {
		t.Fatal("plain round trip lost tasks")
	}
	if !reflect.DeepEqual(fromGzip, tr.Tasks) {
		t.Fatal("gzip round trip lost tasks")
	}
}

func TestDecodeCSVPlainCompatibility(t *testing.T) {
	// DecodeCSV must accept output of the pre-existing WriteCSV unchanged.
	tr, err := Generate(GeneratorConfig{
		Name: "small", Machines: 10, HorizonSec: 3600, Tasks: 25, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	tasks, err := DecodeCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tasks, tr.Tasks) {
		t.Fatal("DecodeCSV disagrees with ReadCSV on plain WriteCSV output")
	}
}

func TestDecodeCSVShortInputs(t *testing.T) {
	// Streams shorter than the two magic bytes cannot be gzip and must fall
	// through to the CSV reader instead of erroring on the sniff.
	if tasks, err := DecodeCSV(strings.NewReader("")); err != nil || len(tasks) != 0 {
		t.Fatalf("empty input: tasks=%d err=%v, want none", len(tasks), err)
	}
	// A one-byte stream reaches the CSV reader, whose column check rejects
	// it — the error proves the sniff fell through rather than failing as a
	// truncated gzip header.
	if _, err := DecodeCSV(strings.NewReader("x")); err == nil || !strings.Contains(err.Error(), "columns") {
		t.Fatalf("one-byte input: err=%v, want the CSV column error", err)
	}
}
