package trace

import (
	"compress/gzip"
	"io"
)

// Gzip-aware CSV codec: real-trace conversions are written once and replayed
// many times, and the flat CSV of a month-scale trace balloons on disk.
// EncodeCSV optionally wraps the CSV stream in gzip and DecodeCSV sniffs the
// gzip magic bytes, so callers handle .csv and .csv.gz files through one
// pair of functions.

// gzipMagic opens every gzip stream (RFC 1952).
var gzipMagic = [2]byte{0x1f, 0x8b}

// EncodeCSV writes the trace tasks as CSV to w. With compress set the
// payload is wrapped in a gzip stream — the .csv.gz form DecodeCSV (and any
// standard tooling) inflates transparently.
func (tr *Trace) EncodeCSV(w io.Writer, compress bool) error {
	if !compress {
		return tr.WriteCSV(w)
	}
	zw := gzip.NewWriter(w)
	if err := tr.WriteCSV(zw); err != nil {
		zw.Close()
		return err
	}
	return zw.Close()
}

// DecodeCSV decodes tasks from CSV produced by EncodeCSV/WriteCSV,
// transparently inflating gzip input by sniffing the magic bytes; plain CSV
// passes straight through. Machines and HorizonSec must be set by the caller,
// as with ReadCSV — which this delegates to, sharing the streaming Reader
// (validation and duplicate-ID rejection included).
func DecodeCSV(r io.Reader) ([]Task, error) {
	return ReadCSV(r)
}
