package trace

import (
	"bytes"
	"sort"
	"testing"
)

// Fuzz hardening for the two trace surfaces that consume untrusted input or
// uphold an ordering contract: the CSV codec (real-trace conversions arrive
// from disk) and the streaming arrival feed (the online control plane's
// event order must match the slice-based replay exactly). Seed corpora are
// checked in under testdata/fuzz/, and CI runs each target for a short
// -fuzztime on top of the always-on seed replay.

// encodeTasks renders a task list through the CSV encoder (plain form).
func encodeTasks(t *testing.T, tasks []Task) []byte {
	t.Helper()
	tr := &Trace{Name: "fuzz", Machines: 1, HorizonSec: 1, Tasks: tasks}
	var buf bytes.Buffer
	if err := tr.EncodeCSV(&buf, false); err != nil {
		t.Fatalf("encoding decoded tasks: %v", err)
	}
	return buf.Bytes()
}

// FuzzDecodeCSV feeds arbitrary bytes to the gzip-sniffing CSV decoder: it
// must never panic, and anything it accepts must survive an
// encode -> decode -> encode round trip byte-identically, through both the
// plain and the gzip path. (Byte equality of the re-encoded form sidesteps
// NaN's self-inequality while still pinning every field.)
func FuzzDecodeCSV(f *testing.F) {
	tr, err := Generate(GeneratorConfig{
		Name: "seed", Machines: 4, HorizonSec: 3600, Tasks: 8,
		MemoryToCPURatio: 3, MeanUtilization: 0.35, Seed: 1,
	})
	if err != nil {
		f.Fatal(err)
	}
	var plain, gz bytes.Buffer
	if err := tr.EncodeCSV(&plain, false); err != nil {
		f.Fatal(err)
	}
	if err := tr.EncodeCSV(&gz, true); err != nil {
		f.Fatal(err)
	}
	f.Add(plain.Bytes())
	f.Add(gz.Bytes())
	f.Add([]byte("id,job,start_sec,end_sec,booked_cpu,booked_mem_gib,used_cpu,used_mem_gib\n"))
	f.Add([]byte("1,1,0,60,1,2,0.5,1\n"))
	f.Add([]byte{0x1f, 0x8b, 0xff, 0x00}) // gzip magic, corrupt stream
	f.Add([]byte("1,2,3\n"))              // ragged row
	f.Add([]byte("0,0,0,60,NaN,+Inf,-0,1e309\n"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		tasks, err := DecodeCSV(bytes.NewReader(data))
		if err != nil {
			return // rejected input is fine; panics are not
		}
		first := encodeTasks(t, tasks)
		again, err := DecodeCSV(bytes.NewReader(first))
		if err != nil {
			t.Fatalf("decoder rejected its own encoder's output: %v\n%s", err, first)
		}
		if second := encodeTasks(t, again); !bytes.Equal(first, second) {
			t.Fatalf("plain round trip not stable:\n first %q\nsecond %q", first, second)
		}
		var zipped bytes.Buffer
		if err := (&Trace{Name: "fuzz", Machines: 1, HorizonSec: 1, Tasks: tasks}).EncodeCSV(&zipped, true); err != nil {
			t.Fatalf("gzip encode: %v", err)
		}
		unzipped, err := DecodeCSV(&zipped)
		if err != nil {
			t.Fatalf("decoder rejected its own gzip output: %v", err)
		}
		if third := encodeTasks(t, unzipped); !bytes.Equal(first, third) {
			t.Fatalf("gzip round trip not stable:\n first %q\n third %q", first, third)
		}
	})
}

// FuzzImport feeds arbitrary bytes to the streaming importer under both
// bundled schemas: it must never panic, anything it accepts must pass
// Trace.Validate (Import's contract), and an accepted trace must survive a
// re-encode -> re-import round trip byte-identically — the derived fleet
// size and horizon included, since the matrix artifacts hash on them.
func FuzzImport(f *testing.F) {
	small, err := GenerateFamily("flashcrowd", FamilyParams{Machines: 4, HorizonSec: 3600, Tasks: 6, Seed: 3})
	if err != nil {
		f.Fatal(err)
	}
	var plain, gz bytes.Buffer
	if err := small.EncodeCSV(&plain, false); err != nil {
		f.Fatal(err)
	}
	if err := small.EncodeCSV(&gz, true); err != nil {
		f.Fatal(err)
	}
	f.Add(plain.Bytes())
	f.Add(gz.Bytes())
	f.Add([]byte("vm_id,tenant_id,created_sec,deleted_sec,core_count,memory_gb,avg_cpu_pct,avg_mem_pct\n7,1,0,3600,4,16,25,50\n"))
	f.Add([]byte("1,1,0,60,1,2,0.5,1\n2,1,30,90,2,4,1,2\n"))
	f.Add([]byte("1,1,0,60,1,2,0.5,1\n1,2,0,60,1,2,0.5,1\n")) // duplicate ID
	f.Add([]byte("1,1,60,0,1,2,0.5,1\n"))                     // ends before it starts
	f.Add([]byte{0x1f, 0x8b, 0x08, 0x00})                     // truncated gzip
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		for _, schema := range []Schema{nil, ClusterSchema()} {
			tr, err := Import(bytes.NewReader(data), ImportOptions{Schema: schema})
			if err != nil {
				continue // rejected input is fine; panics are not
			}
			if err := tr.Validate(); err != nil {
				t.Fatalf("import accepted an invalid trace: %v", err)
			}
			var first bytes.Buffer
			if err := tr.EncodeCSV(&first, false); err != nil {
				t.Fatalf("re-encode: %v", err)
			}
			again, err := Import(bytes.NewReader(first.Bytes()), ImportOptions{})
			if err != nil {
				t.Fatalf("importer rejected its own encoder's output: %v\n%s", err, first.Bytes())
			}
			if again.Machines != tr.Machines || again.HorizonSec != tr.HorizonSec {
				t.Fatalf("derived metadata not stable: %d/%d then %d/%d",
					tr.Machines, tr.HorizonSec, again.Machines, again.HorizonSec)
			}
			var second bytes.Buffer
			if err := again.EncodeCSV(&second, false); err != nil {
				t.Fatalf("second encode: %v", err)
			}
			if !bytes.Equal(first.Bytes(), second.Bytes()) {
				t.Fatalf("import round trip not stable:\n first %q\nsecond %q", first.Bytes(), second.Bytes())
			}
		}
	})
}

// fuzzTasks derives a small, always-valid task set from raw fuzz bytes:
// three bytes drive each task's start and duration, IDs are sequential.
func fuzzTasks(data []byte) []Task {
	var tasks []Task
	for i := 0; i+2 < len(data) && len(tasks) < 200; i += 3 {
		start := (int64(data[i])<<3 | int64(data[i+1])&7) % 977
		dur := int64(data[i+2])%120 + 1
		tasks = append(tasks, Task{
			ID:           len(tasks),
			JobID:        int(data[i+1]) % 16,
			StartSec:     start,
			EndSec:       start + dur,
			BookedCPU:    1,
			BookedMemGiB: 1,
			UsedCPU:      0.5,
			UsedMemGiB:   0.5,
		})
	}
	return tasks
}

// FuzzStreamVsSlurp pins the streaming arrival feed against the slice-based
// replay: for any task set, Stream must yield exactly the events obtained by
// materializing every (arrive, depart) pair and sorting by (time,
// departs-before-arrives, task ID) — the causal order the online control
// plane and the offline engine both assume — while its Running() counter
// tracks the population without ever going negative.
func FuzzStreamVsSlurp(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0})
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9})
	f.Add([]byte{255, 255, 255, 0, 0, 255, 7, 7, 7, 200, 100, 50})
	f.Add(bytes.Repeat([]byte{42}, 60)) // many identical tasks: pure tie-breaking

	f.Fuzz(func(t *testing.T, data []byte) {
		tasks := fuzzTasks(data)
		tr := &Trace{Name: "fuzz", Machines: 1, HorizonSec: 1 << 20, Tasks: tasks}

		type ev struct {
			at   int64
			kind EventKind
			id   int
		}
		want := make([]ev, 0, 2*len(tasks))
		for _, task := range tasks {
			want = append(want,
				ev{at: task.StartSec, kind: Arrive, id: task.ID},
				ev{at: task.EndSec, kind: Depart, id: task.ID})
		}
		sort.Slice(want, func(i, j int) bool {
			if want[i].at != want[j].at {
				return want[i].at < want[j].at
			}
			if want[i].kind != want[j].kind {
				return want[i].kind < want[j].kind // Depart sorts before Arrive
			}
			return want[i].id < want[j].id
		})

		s := NewStream(tr)
		running := 0
		for i := 0; ; i++ {
			e, ok := s.Next()
			if !ok {
				if i != len(want) {
					t.Fatalf("stream ended after %d events, want %d", i, len(want))
				}
				break
			}
			if i >= len(want) {
				t.Fatalf("stream yielded more than %d events", len(want))
			}
			w := want[i]
			if e.AtSec != w.at || e.Kind != w.kind || e.Task.ID != w.id {
				t.Fatalf("event %d = (%d,%v,task-%d), slice replay has (%d,%v,task-%d)",
					i, e.AtSec, e.Kind, e.Task.ID, w.at, w.kind, w.id)
			}
			if e.Kind == Arrive {
				running++
			} else {
				running--
			}
			if running < 0 {
				t.Fatalf("population went negative at event %d", i)
			}
			if got := s.Running(); got != running {
				t.Fatalf("Running() = %d after event %d, want %d", got, i, running)
			}
		}
		if got := s.Running(); got != 0 {
			t.Fatalf("Running() = %d after exhaustion, want 0", got)
		}
	})
}
