package trace

import (
	"container/heap"
	"sort"
)

// The streaming arrival feed: the offline simulator replays a trace by
// materializing each epoch's whole VM population, which is exactly the oracle
// knowledge an online control plane must not have. Stream instead yields one
// event at a time — a task arriving or departing — in causal order, so a
// consumer only ever sees the past. The stream sorts an index permutation of
// the tasks once (no Task copies) and keeps a min-heap of the end times of
// the tasks currently running; memory beyond the trace itself is O(running
// tasks).

// EventKind distinguishes the two stream events.
type EventKind uint8

// The stream events. Depart sorts before Arrive: a task ending at instant T
// has already released its resources when another task arrives at T, matching
// the offline replayer's retirement rule (EndSec <= epoch start).
const (
	Depart EventKind = iota
	Arrive
)

// String names the kind.
func (k EventKind) String() string {
	if k == Depart {
		return "depart"
	}
	return "arrive"
}

// Event is one element of the arrival feed.
type Event struct {
	// AtSec is the simulated time of the event: StartSec for an arrival,
	// EndSec for a departure.
	AtSec int64
	// Kind says whether the task arrives or departs.
	Kind EventKind
	// Task is the task arriving or departing.
	Task Task
}

// Stream is an incremental iterator over a trace's arrival and departure
// events in time order. It never materializes the full event list: arrivals
// are walked through a pre-sorted index permutation and departures through a
// heap of the currently running tasks.
type Stream struct {
	tasks   []Task
	arrival []int // indices into tasks, sorted by (StartSec, ID)
	next    int
	ends    endHeap
}

// NewStream builds the arrival feed of a trace. The trace is shared
// read-only; a Stream is single-consumer.
func NewStream(tr *Trace) *Stream {
	s := &Stream{tasks: tr.Tasks, arrival: make([]int, len(tr.Tasks))}
	for i := range s.arrival {
		s.arrival[i] = i
	}
	sort.Slice(s.arrival, func(a, b int) bool {
		ta, tb := tr.Tasks[s.arrival[a]], tr.Tasks[s.arrival[b]]
		if ta.StartSec != tb.StartSec {
			return ta.StartSec < tb.StartSec
		}
		return ta.ID < tb.ID
	})
	return s
}

// Next returns the next event in time order, or ok=false when the stream is
// exhausted. At equal timestamps departures precede arrivals, and events of
// the same kind are ordered by task ID, so the feed is fully deterministic.
func (s *Stream) Next() (Event, bool) {
	var haveArr bool
	var arr Task
	if s.next < len(s.arrival) {
		haveArr, arr = true, s.tasks[s.arrival[s.next]]
	}
	if len(s.ends) > 0 {
		dep := s.ends[0]
		if !haveArr || dep.EndSec <= arr.StartSec {
			heap.Pop(&s.ends)
			return Event{AtSec: dep.EndSec, Kind: Depart, Task: dep}, true
		}
	}
	if !haveArr {
		return Event{}, false
	}
	s.next++
	heap.Push(&s.ends, arr)
	return Event{AtSec: arr.StartSec, Kind: Arrive, Task: arr}, true
}

// Running returns the number of tasks currently running (arrived, not yet
// departed).
func (s *Stream) Running() int { return len(s.ends) }

// endHeap is a min-heap of running tasks ordered by (EndSec, ID).
type endHeap []Task

func (h endHeap) Len() int { return len(h) }
func (h endHeap) Less(i, j int) bool {
	if h[i].EndSec != h[j].EndSec {
		return h[i].EndSec < h[j].EndSec
	}
	return h[i].ID < h[j].ID
}
func (h endHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *endHeap) Push(x any)   { *h = append(*h, x.(Task)) }
func (h *endHeap) Pop() any {
	old := *h
	n := len(old)
	t := old[n-1]
	*h = old[:n-1]
	return t
}
