package trace

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"testing"
)

func writeTestFile(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644)
}

func TestImportRoundTrip(t *testing.T) {
	tr, err := Generate(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Import tie-breaks equal start times by ID; mirror that on the source
	// before comparing (Generate's own sort leaves ties in arbitrary order).
	want := make([]Task, len(tr.Tasks))
	copy(want, tr.Tasks)
	sort.Slice(want, func(i, j int) bool {
		if want[i].StartSec != want[j].StartSec {
			return want[i].StartSec < want[j].StartSec
		}
		return want[i].ID < want[j].ID
	})
	for _, compress := range []bool{false, true} {
		var buf bytes.Buffer
		if err := tr.EncodeCSV(&buf, compress); err != nil {
			t.Fatal(err)
		}
		got, err := Import(&buf, ImportOptions{
			Name: tr.Name, Machines: tr.Machines, HorizonSec: tr.HorizonSec,
		})
		if err != nil {
			t.Fatalf("compress=%v: %v", compress, err)
		}
		if got.Machines != tr.Machines || got.HorizonSec != tr.HorizonSec || got.Name != tr.Name {
			t.Fatalf("compress=%v: metadata %d/%d/%q, want %d/%d/%q", compress,
				got.Machines, got.HorizonSec, got.Name, tr.Machines, tr.HorizonSec, tr.Name)
		}
		if len(got.Tasks) != len(want) {
			t.Fatalf("compress=%v: %d tasks, want %d", compress, len(got.Tasks), len(want))
		}
		for i := range got.Tasks {
			if got.Tasks[i] != want[i] {
				t.Fatalf("compress=%v: task %d = %+v, want %+v", compress, i, got.Tasks[i], want[i])
			}
		}
	}
}

func TestImportDerivesFleetAndHorizon(t *testing.T) {
	// Three 4-core tasks overlap in [100, 200): peak booked CPU 12 needs two
	// 8-core servers; the horizon is the latest end.
	var buf bytes.Buffer
	src := &Trace{Name: "derive", Machines: 1, HorizonSec: 500}
	for i := 0; i < 3; i++ {
		src.Tasks = append(src.Tasks, Task{
			ID: i, JobID: 1, StartSec: int64(i * 50), EndSec: int64(200 + i*25),
			BookedCPU: 4, BookedMemGiB: 8, UsedCPU: 1, UsedMemGiB: 2,
		})
	}
	if err := src.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Import(&buf, ImportOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got.Machines != 2 {
		t.Errorf("derived machines = %d, want 2 (peak 12 cores / 8 per server)", got.Machines)
	}
	if got.HorizonSec != 250 {
		t.Errorf("derived horizon = %d, want 250 (latest end)", got.HorizonSec)
	}
	if got.Name != "imported" {
		t.Errorf("default name = %q, want %q", got.Name, "imported")
	}
}

func TestImportClusterSchema(t *testing.T) {
	in := strings.Join([]string{
		"vm_id,tenant_id,created_sec,deleted_sec,core_count,memory_gb,avg_cpu_pct,avg_mem_pct",
		"7,1,0,3600,4,16,25,50",
		"8,2,100,7200,2,8,50,75",
	}, "\n")
	got, err := Import(strings.NewReader(in), ImportOptions{Schema: ClusterSchema()})
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Tasks) != 2 {
		t.Fatalf("%d tasks, want 2", len(got.Tasks))
	}
	first := got.Tasks[0]
	if first.ID != 7 || first.JobID != 1 || first.EndSec != 3600 {
		t.Errorf("task = %+v, want vm 7 of tenant 1 ending at 3600", first)
	}
	// Percent utilizations are relative to the VM's own size.
	if first.UsedCPU != 1 || first.UsedMemGiB != 8 {
		t.Errorf("used = %v cores / %v GiB, want 1 / 8 (25%% of 4, 50%% of 16)",
			first.UsedCPU, first.UsedMemGiB)
	}
	if got.HorizonSec != 7200 {
		t.Errorf("horizon = %d, want 7200", got.HorizonSec)
	}
}

func TestReadCSVRejectsInvalidTasks(t *testing.T) {
	// Regression: these rows used to be accepted wholesale; now each is
	// rejected with its 1-based physical row number (header is row 1).
	for _, tc := range []struct {
		name, row, want string
	}{
		{"end before start", "1,1,100,50,1,2,0.5,1", "row 2"},
		{"non-positive booking", "1,1,0,100,0,2,0,1", "row 2"},
		{"implausible usage", "1,1,0,100,1,2,9,1", "row 2"},
	} {
		in := "id,job,start_sec,end_sec,booked_cpu,booked_mem_gib,used_cpu,used_mem_gib\n" + tc.row + "\n"
		_, err := ReadCSV(strings.NewReader(in))
		if err == nil {
			t.Errorf("%s: invalid task accepted", tc.name)
		} else if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not carry the row number %q", tc.name, err, tc.want)
		}
	}
}

func TestReadCSVRejectsDuplicateIDs(t *testing.T) {
	// Regression: two rows with the same ID produce colliding task-%d VMIDs
	// that silently merge distinct VMs in both planners; the error must name
	// both rows involved.
	in := strings.Join([]string{
		"id,job,start_sec,end_sec,booked_cpu,booked_mem_gib,used_cpu,used_mem_gib",
		"5,1,0,100,1,2,0.5,1",
		"6,1,0,100,1,2,0.5,1",
		"5,2,50,200,2,4,1,2",
	}, "\n")
	_, err := ReadCSV(strings.NewReader(in))
	if err == nil {
		t.Fatal("duplicate task ID accepted")
	}
	for _, want := range []string{"row 4", "task ID 5", "row 2"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q missing %q", err, want)
		}
	}
	// DecodeCSV shares the same reader, so the same input fails identically.
	if _, err := DecodeCSV(strings.NewReader(in)); err == nil {
		t.Error("DecodeCSV accepted the duplicate")
	}
}

func TestImportErrors(t *testing.T) {
	if _, err := Import(strings.NewReader(""), ImportOptions{}); err == nil {
		t.Error("empty input should fail (no tasks)")
	}
	header := "id,job,start_sec,end_sec,booked_cpu,booked_mem_gib,used_cpu,used_mem_gib\n"
	if _, err := Import(strings.NewReader(header), ImportOptions{}); err == nil {
		t.Error("header-only input should fail (no tasks)")
	}
	_, err := Import(strings.NewReader(header+"1,1,0,100,1,2,0.5,1\n"), ImportOptions{HorizonSec: 50})
	if err == nil {
		t.Error("task beyond the forced horizon should fail trace validation")
	}
	if _, err := Import(strings.NewReader("not,a,trace\nx,y,z\n"), ImportOptions{}); err == nil {
		t.Error("garbage input should fail")
	}
}

func TestImportFile(t *testing.T) {
	tr, err := GenerateFamily("serverless", FamilyParams{Machines: 50, HorizonSec: 3600, Tasks: 500, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "trace.csv.gz")
	var buf bytes.Buffer
	if err := tr.EncodeCSV(&buf, true); err != nil {
		t.Fatal(err)
	}
	if err := writeTestFile(path, buf.Bytes()); err != nil {
		t.Fatal(err)
	}
	got, err := ImportFile(path, ImportOptions{Machines: tr.Machines, HorizonSec: tr.HorizonSec})
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Tasks) != len(tr.Tasks) {
		t.Fatalf("%d tasks, want %d", len(got.Tasks), len(tr.Tasks))
	}
	if _, err := ImportFile(filepath.Join(t.TempDir(), "missing.csv"), ImportOptions{}); err == nil {
		t.Error("missing file should fail")
	}
}

// eofProbe snapshots the live heap at the moment the decode loop drains the
// input: a slurping decoder still holds every raw record live right then,
// a streaming one holds only the tasks it has built.
type eofProbe struct {
	r         io.Reader
	liveAtEOF uint64
	captured  bool
}

func (p *eofProbe) Read(b []byte) (int, error) {
	n, err := p.r.Read(b)
	if err == io.EOF && !p.captured {
		p.captured = true
		runtime.GC()
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		p.liveAtEOF = ms.HeapAlloc
	}
	return n, err
}

// TestImportStreamsWithoutMaterializing pins the importer's memory contract:
// decoding a 100k-task .csv.gz must never hold the raw records in bulk. The
// live heap at EOF is bounded per task by the Task struct (64 B), the
// duplicate-ID index and append slack — a csv.ReadAll-style slurp keeps
// ~350-450 B of raw strings per row live at that point and blows the bound.
func TestImportStreamsWithoutMaterializing(t *testing.T) {
	if testing.Short() {
		t.Skip("100k-task import in -short mode")
	}
	const tasks = 100_000
	tr, err := GenerateFamily("serverless", FamilyParams{
		Machines: 500, HorizonSec: 24 * 3600, Tasks: tasks, Seed: 42,
	})
	if err != nil {
		t.Fatal(err)
	}
	var encoded bytes.Buffer
	if err := tr.EncodeCSV(&encoded, true); err != nil {
		t.Fatal(err)
	}
	t.Logf("input: %d tasks, %d gzip bytes", tasks, encoded.Len())

	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)
	probe := &eofProbe{r: bytes.NewReader(encoded.Bytes())}
	got, err := Import(probe, ImportOptions{Machines: tr.Machines, HorizonSec: tr.HorizonSec})
	if err != nil {
		t.Fatal(err)
	}
	if !probe.captured {
		t.Fatal("probe never saw EOF")
	}
	if len(got.Tasks) != tasks {
		t.Fatalf("%d tasks, want %d", len(got.Tasks), tasks)
	}
	live := int64(probe.liveAtEOF) - int64(before.HeapAlloc)
	perTask := float64(live) / tasks
	t.Logf("live heap at EOF: %d B (%.0f B/task)", live, perTask)
	// 224 B/task = 3.5x the Task struct: room for the tasks slice's append
	// slack and the duplicate-ID map, none for slurped records.
	if perTask > 224 {
		t.Errorf("live heap at EOF is %.0f B/task (> 224): importer is materializing raw records", perTask)
	}
	// The baseline heap (source trace + encoded bytes) must itself stay live
	// through the probe's snapshot, or its collection masks the importer's own
	// footprint in the delta.
	runtime.KeepAlive(tr)
	runtime.KeepAlive(&encoded)
}
