// Package trace provides datacenter workload traces for the large-scale
// evaluation of Section 6.6.2 (Figure 10).
//
// The paper replays the public Google cluster traces (12,583 machines, 29
// days of jobs/tasks with booked and used CPU and memory). Those traces are
// hundreds of gigabytes and are not redistributable with this repository, so
// the package provides:
//
//   - a deterministic synthetic generator that reproduces the statistical
//     properties the consolidation results depend on: thousands of tasks with
//     exponential-ish durations, diurnal arrival rates, booked resources well
//     above used resources, and an overall average utilization well below 50%;
//   - the paper's "modified" variant, in which the memory demand is twice the
//     CPU demand, matching the demand trend of Figure 2;
//   - CSV encoding/decoding in a compact schema so that users who do have the
//     real traces can convert and replay them — gzip-aware on both sides
//     (EncodeCSV writes .csv.gz on request, DecodeCSV sniffs the magic
//     bytes), since month-scale conversions balloon on disk as flat CSV;
//   - a streaming arrival feed (Stream) that yields arrivals and departures
//     one event at a time in causal order, the input of the online control
//     plane (internal/autopilot), which must never see the future or the
//     materialized population;
//   - a scenario engine of seeded workload families (Family, GenerateFamily):
//     diurnal sinusoid, flash-crowd bursts, serverless short tasks,
//     gang-scheduled ML batches and heavy-tail Pareto sizes, composable via
//     Compose/Overlay into mixed workloads with disjoint ID namespaces;
//   - a record-at-a-time importer (Import, ImportFile, Reader) for .csv and
//     .csv.gz traces bigger than RAM, with pluggable column schemas (Schema;
//     ClusterSchema adapts the public cluster-trace layout) and row-numbered
//     rejection of malformed tasks and duplicate IDs.
package trace
