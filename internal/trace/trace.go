package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"strconv"
)

// Task is one unit of work (the paper treats each task's container as a VM).
type Task struct {
	// ID is unique within a trace.
	ID int
	// JobID groups tasks submitted together.
	JobID int
	// StartSec and EndSec bound the task's execution, in seconds from the
	// trace origin.
	StartSec int64
	EndSec   int64
	// BookedCPU is the requested CPU in cores.
	BookedCPU float64
	// BookedMemGiB is the requested memory in GiB.
	BookedMemGiB float64
	// UsedCPU is the average CPU actually consumed, in cores.
	UsedCPU float64
	// UsedMemGiB is the average memory actually consumed, in GiB.
	UsedMemGiB float64
}

// Duration returns the task duration in seconds.
func (t Task) Duration() int64 { return t.EndSec - t.StartSec }

// VMID is the task's identity at the consolidation layer, shared by the
// offline replayer and the online control plane. Both sides sort their VM
// populations lexicographically by this ID before planning, so the format is
// load-bearing: diverging copies would feed the planners differently ordered
// populations and silently skew every regret comparison.
func (t Task) VMID() string { return fmt.Sprintf("task-%d", t.ID) }

// Validate checks the task for consistency.
func (t Task) Validate() error {
	if t.EndSec <= t.StartSec {
		return fmt.Errorf("trace: task %d ends (%d) before it starts (%d)", t.ID, t.EndSec, t.StartSec)
	}
	if t.BookedCPU <= 0 || t.BookedMemGiB <= 0 {
		return fmt.Errorf("trace: task %d books non-positive resources", t.ID)
	}
	if t.UsedCPU < 0 || t.UsedCPU > t.BookedCPU*1.5 {
		return fmt.Errorf("trace: task %d uses implausible CPU %v (booked %v)", t.ID, t.UsedCPU, t.BookedCPU)
	}
	if t.UsedMemGiB < 0 || t.UsedMemGiB > t.BookedMemGiB*1.5 {
		return fmt.Errorf("trace: task %d uses implausible memory %v (booked %v)", t.ID, t.UsedMemGiB, t.BookedMemGiB)
	}
	return nil
}

// Trace is a set of tasks plus the fleet size they were scheduled on.
type Trace struct {
	// Name labels the trace ("google-like", "google-like-modified", ...).
	Name string
	// Machines is the number of servers in the original cluster.
	Machines int
	// HorizonSec is the trace duration.
	HorizonSec int64
	// Tasks are sorted by StartSec.
	Tasks []Task
}

// Validate checks every task and the trace metadata.
func (tr *Trace) Validate() error {
	if tr.Machines <= 0 {
		return fmt.Errorf("trace: needs a positive machine count")
	}
	if tr.HorizonSec <= 0 {
		return fmt.Errorf("trace: needs a positive horizon")
	}
	for _, t := range tr.Tasks {
		if err := t.Validate(); err != nil {
			return err
		}
		if t.StartSec < 0 || t.EndSec > tr.HorizonSec {
			return fmt.Errorf("trace: task %d outside the horizon", t.ID)
		}
	}
	return nil
}

// Stats summarises a trace.
type Stats struct {
	Tasks            int
	MeanDurationSec  float64
	MeanBookedCPU    float64
	MeanBookedMemGiB float64
	MeanUsedCPU      float64
	MeanUsedMemGiB   float64
	// MemToCPURatio is mean booked memory (GiB) / mean booked CPU (cores).
	MemToCPURatio float64
	// PeakConcurrentTasks is the maximum number of tasks running at once.
	PeakConcurrentTasks int
}

// ComputeStats summarises the trace.
func (tr *Trace) ComputeStats() Stats {
	s := Stats{Tasks: len(tr.Tasks)}
	if len(tr.Tasks) == 0 {
		return s
	}
	type event struct {
		at    int64
		delta int
	}
	events := make([]event, 0, 2*len(tr.Tasks))
	for _, t := range tr.Tasks {
		s.MeanDurationSec += float64(t.Duration())
		s.MeanBookedCPU += t.BookedCPU
		s.MeanBookedMemGiB += t.BookedMemGiB
		s.MeanUsedCPU += t.UsedCPU
		s.MeanUsedMemGiB += t.UsedMemGiB
		events = append(events, event{t.StartSec, 1}, event{t.EndSec, -1})
	}
	n := float64(len(tr.Tasks))
	s.MeanDurationSec /= n
	s.MeanBookedCPU /= n
	s.MeanBookedMemGiB /= n
	s.MeanUsedCPU /= n
	s.MeanUsedMemGiB /= n
	if s.MeanBookedCPU > 0 {
		s.MemToCPURatio = s.MeanBookedMemGiB / s.MeanBookedCPU
	}
	sort.Slice(events, func(i, j int) bool {
		if events[i].at == events[j].at {
			return events[i].delta < events[j].delta
		}
		return events[i].at < events[j].at
	})
	cur := 0
	for _, e := range events {
		cur += e.delta
		if cur > s.PeakConcurrentTasks {
			s.PeakConcurrentTasks = cur
		}
	}
	return s
}

// GeneratorConfig parameterises the synthetic trace generator.
type GeneratorConfig struct {
	// Name labels the generated trace.
	Name string
	// Machines is the fleet size the trace targets.
	Machines int
	// HorizonSec is the trace duration (the paper's traces span 29 days; the
	// default here is one simulated day, which the simulator can loop).
	HorizonSec int64
	// Tasks is the number of tasks to generate.
	Tasks int
	// MemoryToCPURatio is the booked memory (GiB) per booked CPU core. In the
	// Google traces memory demand saturates before CPU relative to the
	// servers' capacity (the paper's premise); the default reproduces that.
	// The paper's modified set doubles the memory demand. Zero selects the
	// default (3.0); negative values are rejected.
	MemoryToCPURatio float64
	// MeanUtilization is the ratio of used to booked resources (DC tasks
	// typically use well under half of what they book). Zero selects the
	// default (0.35); values outside (0, 1] are rejected.
	MeanUtilization float64
	// IdleFraction is the fraction of tasks that are practically idle (CPU
	// utilization below 1%) but still hold their memory — the population
	// Oasis's partial migration targets.
	IdleFraction float64
	// Seed makes generation deterministic.
	Seed int64
}

// DefaultConfig returns a one-day, 200-machine, 3000-task configuration with
// the original (already memory-leaning) demand mix.
func DefaultConfig() GeneratorConfig {
	return GeneratorConfig{
		Name:             "google-like",
		Machines:         200,
		HorizonSec:       24 * 3600,
		Tasks:            3000,
		MemoryToCPURatio: 3.0,
		MeanUtilization:  0.35,
		IdleFraction:     0.25,
		Seed:             42,
	}
}

// ModifiedConfig returns the same configuration with the memory demand
// doubled relative to CPU, the paper's "modified traces".
func ModifiedConfig() GeneratorConfig {
	cfg := DefaultConfig()
	cfg.Name = "google-like-modified"
	cfg.MemoryToCPURatio = 2 * cfg.MemoryToCPURatio
	return cfg
}

// Generate builds a synthetic trace. Zero-valued MemoryToCPURatio and
// MeanUtilization take the DefaultConfig values; explicitly out-of-range
// tuning is rejected upfront with the valid range (the cliflag idiom) rather
// than silently rewritten, so a typo'd experiment config fails loudly instead
// of producing a subtly different workload.
func Generate(cfg GeneratorConfig) (*Trace, error) {
	if cfg.Machines <= 0 || cfg.Tasks <= 0 || cfg.HorizonSec <= 0 {
		return nil, fmt.Errorf("trace: generator needs positive machines, tasks and horizon")
	}
	if cfg.MemoryToCPURatio == 0 {
		cfg.MemoryToCPURatio = 3.0
	}
	if cfg.MeanUtilization == 0 {
		cfg.MeanUtilization = 0.35
	}
	if cfg.MemoryToCPURatio < 0 {
		return nil, fmt.Errorf("trace: generator MemoryToCPURatio %g out of range (need > 0)", cfg.MemoryToCPURatio)
	}
	if cfg.MeanUtilization < 0 || cfg.MeanUtilization > 1 {
		return nil, fmt.Errorf("trace: generator MeanUtilization %g out of range (need 0 < u <= 1)", cfg.MeanUtilization)
	}
	if cfg.IdleFraction < 0 || cfg.IdleFraction >= 1 {
		return nil, fmt.Errorf("trace: generator IdleFraction %g out of range (need 0 <= f < 1)", cfg.IdleFraction)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	tr := &Trace{Name: cfg.Name, Machines: cfg.Machines, HorizonSec: cfg.HorizonSec}

	jobID := 0
	for i := 0; i < cfg.Tasks; i++ {
		if i%4 == 0 {
			jobID++
		}
		// Diurnal arrival: more tasks start during the "day" half of the
		// horizon.
		var start int64
		if rng.Float64() < 0.7 {
			start = int64(rng.Float64() * float64(cfg.HorizonSec) / 2)
		} else {
			start = cfg.HorizonSec/2 + int64(rng.Float64()*float64(cfg.HorizonSec)/2)
		}
		// Exponential-ish duration with a mean of ~1/12 of the horizon,
		// truncated to the horizon.
		dur := int64(rng.ExpFloat64() * float64(cfg.HorizonSec) / 12)
		if dur < 60 {
			dur = 60
		}
		end := start + dur
		if end > cfg.HorizonSec {
			end = cfg.HorizonSec
		}
		if end <= start {
			start = end - 60
			if start < 0 {
				start = 0
				end = 60
			}
		}
		bookedCPU := 0.5 + rng.Float64()*3.5 // 0.5 .. 4 cores
		bookedMem := bookedCPU * cfg.MemoryToCPURatio * (0.8 + rng.Float64()*0.4)
		util := cfg.MeanUtilization * (0.5 + rng.Float64())
		if util > 1 {
			util = 1
		}
		usedCPU := bookedCPU * util
		usedMem := bookedMem * util * 1.1 // memory usage tracks booking more closely
		if rng.Float64() < cfg.IdleFraction {
			// Idle task: almost no CPU, but its memory stays allocated.
			usedCPU = 0.005
			usedMem = bookedMem * 0.4
		}
		tr.Tasks = append(tr.Tasks, Task{
			ID:           i,
			JobID:        jobID,
			StartSec:     start,
			EndSec:       end,
			BookedCPU:    bookedCPU,
			BookedMemGiB: bookedMem,
			UsedCPU:      usedCPU,
			UsedMemGiB:   usedMem,
		})
	}
	sort.Slice(tr.Tasks, func(i, j int) bool { return tr.Tasks[i].StartSec < tr.Tasks[j].StartSec })
	// Clamp any memory overuse introduced by the 1.1 factor.
	for i := range tr.Tasks {
		if tr.Tasks[i].UsedMemGiB > tr.Tasks[i].BookedMemGiB {
			tr.Tasks[i].UsedMemGiB = tr.Tasks[i].BookedMemGiB
		}
	}
	return tr, nil
}

// csvHeader is the column layout of the CSV codec.
var csvHeader = []string{"id", "job", "start_sec", "end_sec", "booked_cpu", "booked_mem_gib", "used_cpu", "used_mem_gib"}

// WriteCSV encodes the trace tasks as CSV (with a header row).
func (tr *Trace) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return err
	}
	for _, t := range tr.Tasks {
		rec := []string{
			strconv.Itoa(t.ID),
			strconv.Itoa(t.JobID),
			strconv.FormatInt(t.StartSec, 10),
			strconv.FormatInt(t.EndSec, 10),
			strconv.FormatFloat(t.BookedCPU, 'g', -1, 64),
			strconv.FormatFloat(t.BookedMemGiB, 'g', -1, 64),
			strconv.FormatFloat(t.UsedCPU, 'g', -1, 64),
			strconv.FormatFloat(t.UsedMemGiB, 'g', -1, 64),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV decodes tasks from CSV produced by WriteCSV (or converted from the
// real Google traces), record-at-a-time through Reader: raw records are never
// materialized in bulk, every task must pass Task.Validate, and duplicate
// task IDs — whose task-%d VMIDs would silently merge distinct VMs in both
// the offline replayer and the online admitted set — are rejected with the
// offending row numbers. Machines and HorizonSec must be set by the caller.
func ReadCSV(r io.Reader) ([]Task, error) {
	rd, err := NewReader(r, nil)
	if err != nil {
		return nil, err
	}
	var tasks []Task
	for {
		t, err := rd.Read()
		if err == io.EOF {
			return tasks, nil
		}
		if err != nil {
			return nil, err
		}
		tasks = append(tasks, t)
	}
}
