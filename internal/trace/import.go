package trace

import (
	"bufio"
	"compress/gzip"
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strconv"
)

// The streaming importer: real cluster traces run to millions of tasks, and
// the original ReadCSV slurped every raw record through csv.ReadAll before
// decoding — holding the whole file's strings and the whole task list in
// memory at once, and happily accepting invalid tasks and duplicate IDs
// (whose task-%d VMIDs silently merge distinct VMs in both planners). The
// Reader here decodes one record at a time straight into validated Tasks,
// rejects duplicates with row-numbered errors, sniffs gzip transparently,
// and adapts external column layouts through a Schema — so a million-task
// .csv.gz replays with nothing but the Task structs resident.

// Schema adapts one CSV column layout onto Task fields. The bundled schemas
// are NativeSchema (the WriteCSV layout) and ClusterSchema (a public
// cluster-trace VM layout in the style of the Azure/Google releases).
type Schema interface {
	// Name labels the schema in errors and tooling.
	Name() string
	// Columns is the number of columns every record must have.
	Columns() int
	// Header reports whether a record is the layout's header row.
	Header(rec []string) bool
	// Decode parses one record into a task. Field errors name the column
	// ("id: ..."); the Reader prefixes the row number.
	Decode(rec []string) (Task, error)
}

// nativeSchema is the WriteCSV column layout.
type nativeSchema struct{}

// NativeSchema returns the repository's own CSV layout:
//
//	id,job,start_sec,end_sec,booked_cpu,booked_mem_gib,used_cpu,used_mem_gib
func NativeSchema() Schema { return nativeSchema{} }

func (nativeSchema) Name() string             { return "native" }
func (nativeSchema) Columns() int             { return len(csvHeader) }
func (nativeSchema) Header(rec []string) bool { return len(rec) > 0 && rec[0] == csvHeader[0] }

func (nativeSchema) Decode(rec []string) (Task, error) {
	var t Task
	var err error
	if t.ID, err = strconv.Atoi(rec[0]); err != nil {
		return Task{}, fmt.Errorf("id: %w", err)
	}
	if t.JobID, err = strconv.Atoi(rec[1]); err != nil {
		return Task{}, fmt.Errorf("job: %w", err)
	}
	if t.StartSec, err = strconv.ParseInt(rec[2], 10, 64); err != nil {
		return Task{}, fmt.Errorf("start: %w", err)
	}
	if t.EndSec, err = strconv.ParseInt(rec[3], 10, 64); err != nil {
		return Task{}, fmt.Errorf("end: %w", err)
	}
	if t.BookedCPU, err = strconv.ParseFloat(rec[4], 64); err != nil {
		return Task{}, fmt.Errorf("booked cpu: %w", err)
	}
	if t.BookedMemGiB, err = strconv.ParseFloat(rec[5], 64); err != nil {
		return Task{}, fmt.Errorf("booked mem: %w", err)
	}
	if t.UsedCPU, err = strconv.ParseFloat(rec[6], 64); err != nil {
		return Task{}, fmt.Errorf("used cpu: %w", err)
	}
	if t.UsedMemGiB, err = strconv.ParseFloat(rec[7], 64); err != nil {
		return Task{}, fmt.Errorf("used mem: %w", err)
	}
	return t, nil
}

// clusterHeader is the public cluster-trace VM layout ClusterSchema adapts:
// one row per VM with its lifetime, size and average utilization, the shape
// the Azure and Google VM trace releases flatten to.
var clusterHeader = []string{
	"vm_id", "tenant_id", "created_sec", "deleted_sec",
	"core_count", "memory_gb", "avg_cpu_pct", "avg_mem_pct",
}

// clusterSchema adapts the public cluster-trace VM layout.
type clusterSchema struct{}

// ClusterSchema returns the adapter for the public cluster-trace VM layout:
//
//	vm_id,tenant_id,created_sec,deleted_sec,core_count,memory_gb,avg_cpu_pct,avg_mem_pct
//
// Utilization percentages are relative to the VM's own size, so a row maps
// onto a Task as used = booked * pct/100.
func ClusterSchema() Schema { return clusterSchema{} }

func (clusterSchema) Name() string             { return "cluster" }
func (clusterSchema) Columns() int             { return len(clusterHeader) }
func (clusterSchema) Header(rec []string) bool { return len(rec) > 0 && rec[0] == clusterHeader[0] }

func (clusterSchema) Decode(rec []string) (Task, error) {
	var t Task
	var err error
	if t.ID, err = strconv.Atoi(rec[0]); err != nil {
		return Task{}, fmt.Errorf("vm_id: %w", err)
	}
	if t.JobID, err = strconv.Atoi(rec[1]); err != nil {
		return Task{}, fmt.Errorf("tenant_id: %w", err)
	}
	if t.StartSec, err = strconv.ParseInt(rec[2], 10, 64); err != nil {
		return Task{}, fmt.Errorf("created_sec: %w", err)
	}
	if t.EndSec, err = strconv.ParseInt(rec[3], 10, 64); err != nil {
		return Task{}, fmt.Errorf("deleted_sec: %w", err)
	}
	if t.BookedCPU, err = strconv.ParseFloat(rec[4], 64); err != nil {
		return Task{}, fmt.Errorf("core_count: %w", err)
	}
	if t.BookedMemGiB, err = strconv.ParseFloat(rec[5], 64); err != nil {
		return Task{}, fmt.Errorf("memory_gb: %w", err)
	}
	cpuPct, err := strconv.ParseFloat(rec[6], 64)
	if err != nil {
		return Task{}, fmt.Errorf("avg_cpu_pct: %w", err)
	}
	memPct, err := strconv.ParseFloat(rec[7], 64)
	if err != nil {
		return Task{}, fmt.Errorf("avg_mem_pct: %w", err)
	}
	t.UsedCPU = t.BookedCPU * cpuPct / 100
	t.UsedMemGiB = t.BookedMemGiB * memPct / 100
	return t, nil
}

// Reader decodes tasks record-at-a-time from plain or gzip CSV. Nothing but
// the csv.Reader's reused record buffer and the duplicate-ID index is held
// between calls, so the peak footprint of a full read is the tasks the
// caller keeps — never the raw records. A Reader is single-consumer.
type Reader struct {
	cr     *csv.Reader
	schema Schema
	row    int         // 1-based physical row of the last record read
	seen   map[int]int // task ID -> first row it appeared on
}

// NewReader wraps r in a streaming task decoder for the schema (nil selects
// NativeSchema). Gzip input is sniffed by its magic bytes and inflated
// transparently, as with DecodeCSV.
func NewReader(r io.Reader, schema Schema) (*Reader, error) {
	if schema == nil {
		schema = NativeSchema()
	}
	br := bufio.NewReader(r)
	if magic, err := br.Peek(2); err == nil && magic[0] == gzipMagic[0] && magic[1] == gzipMagic[1] {
		zr, err := gzip.NewReader(br)
		if err != nil {
			return nil, err
		}
		cr := csv.NewReader(zr)
		cr.ReuseRecord = true
		return &Reader{cr: cr, schema: schema, seen: make(map[int]int)}, nil
	}
	cr := csv.NewReader(br)
	cr.ReuseRecord = true
	return &Reader{cr: cr, schema: schema, seen: make(map[int]int)}, nil
}

// Read returns the next task, or io.EOF when the input is exhausted. A
// leading header row is skipped; every decoded task must pass Task.Validate
// and carry a previously unseen ID — violations error with the 1-based row
// number, because a duplicate ID would silently merge two distinct VMs under
// one task-%d VMID in both the offline replayer and the online admitted set.
func (r *Reader) Read() (Task, error) {
	for {
		rec, err := r.cr.Read()
		if err != nil {
			return Task{}, err
		}
		r.row++
		if r.row == 1 && r.schema.Header(rec) {
			continue
		}
		if len(rec) != r.schema.Columns() {
			return Task{}, fmt.Errorf("trace: row %d has %d columns, want %d", r.row, len(rec), r.schema.Columns())
		}
		t, err := r.schema.Decode(rec)
		if err != nil {
			return Task{}, fmt.Errorf("trace: row %d %v", r.row, err)
		}
		if err := t.Validate(); err != nil {
			return Task{}, fmt.Errorf("trace: row %d: %w", r.row, err)
		}
		if first, dup := r.seen[t.ID]; dup {
			return Task{}, fmt.Errorf("trace: row %d duplicates task ID %d (first seen on row %d)", r.row, t.ID, first)
		}
		r.seen[t.ID] = r.row
		return t, nil
	}
}

// Row returns the 1-based physical row of the last record read (the header
// counts), for callers reporting progress or errors of their own.
func (r *Reader) Row() int { return r.row }

// importCoresPerServer sizes the derived fleet when ImportOptions.Machines
// is left zero: 8 cores per server, consolidation.DefaultServerSpec's shape.
const importCoresPerServer = 8.0

// ImportOptions parameterises Import. The zero value imports the native
// schema and derives the fleet size and horizon from the tasks themselves.
type ImportOptions struct {
	// Schema adapts the column layout; nil selects NativeSchema.
	Schema Schema
	// Name labels the imported trace ("imported" by default).
	Name string
	// Machines is the fleet size the trace targets. Zero derives it from the
	// peak concurrently booked CPU at 8 cores per server (the default server
	// spec), so the replayed fleet is busy without being overcommitted.
	Machines int
	// HorizonSec is the trace duration. Zero derives the latest task end.
	HorizonSec int64
}

// Import streams a .csv/.csv.gz trace into a replayable Trace: records are
// decoded and validated one at a time through Reader (raw records are never
// materialized in bulk), tasks land sorted by (StartSec, ID), and the fleet
// size and horizon are derived when not given. The result always passes
// Trace.Validate. Feed it to NewStream for the online control plane or to
// the offline engines directly.
func Import(r io.Reader, opts ImportOptions) (*Trace, error) {
	rd, err := NewReader(r, opts.Schema)
	if err != nil {
		return nil, err
	}
	tr := &Trace{Name: opts.Name, Machines: opts.Machines, HorizonSec: opts.HorizonSec}
	if tr.Name == "" {
		tr.Name = "imported"
	}
	for {
		t, err := rd.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		tr.Tasks = append(tr.Tasks, t)
	}
	if len(tr.Tasks) == 0 {
		return nil, fmt.Errorf("trace: import: no tasks in input")
	}
	finalizeImported(tr)
	if err := tr.Validate(); err != nil {
		return nil, fmt.Errorf("trace: import: %w", err)
	}
	return tr, nil
}

// finalizeImported sorts the tasks and derives the missing fleet metadata.
func finalizeImported(tr *Trace) {
	sort.Slice(tr.Tasks, func(i, j int) bool {
		if tr.Tasks[i].StartSec != tr.Tasks[j].StartSec {
			return tr.Tasks[i].StartSec < tr.Tasks[j].StartSec
		}
		return tr.Tasks[i].ID < tr.Tasks[j].ID
	})
	if tr.HorizonSec == 0 {
		for _, t := range tr.Tasks {
			if t.EndSec > tr.HorizonSec {
				tr.HorizonSec = t.EndSec
			}
		}
	}
	if tr.Machines == 0 {
		tr.Machines = derivedMachines(tr.Tasks)
	}
}

// derivedMachines sizes a fleet for the tasks: the peak concurrently booked
// CPU divided across importCoresPerServer-core servers, at least 1.
func derivedMachines(tasks []Task) int {
	type event struct {
		at     int64
		depart bool
		cpu    float64
	}
	events := make([]event, 0, 2*len(tasks))
	for _, t := range tasks {
		events = append(events, event{t.StartSec, false, t.BookedCPU}, event{t.EndSec, true, t.BookedCPU})
	}
	sort.Slice(events, func(i, j int) bool {
		if events[i].at != events[j].at {
			return events[i].at < events[j].at
		}
		return events[i].depart && !events[j].depart // departs release first
	})
	var cur, peak float64
	for _, e := range events {
		if e.depart {
			cur -= e.cpu
		} else {
			cur += e.cpu
		}
		if cur > peak {
			peak = cur
		}
	}
	m := int(math.Ceil(peak / importCoresPerServer))
	if m < 1 {
		m = 1
	}
	return m
}

// ImportFile opens and imports a .csv or .csv.gz trace from disk.
func ImportFile(path string, opts ImportOptions) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Import(f, opts)
}
