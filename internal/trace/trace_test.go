package trace

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func TestGenerateDefault(t *testing.T) {
	tr, err := Generate(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(tr.Tasks) != DefaultConfig().Tasks {
		t.Errorf("tasks = %d, want %d", len(tr.Tasks), DefaultConfig().Tasks)
	}
	// Tasks are sorted by start time.
	for i := 1; i < len(tr.Tasks); i++ {
		if tr.Tasks[i].StartSec < tr.Tasks[i-1].StartSec {
			t.Fatal("tasks not sorted by start time")
		}
	}
	st := tr.ComputeStats()
	// The generator reproduces the "notoriously low utilization": used
	// resources well below booked.
	if st.MeanUsedCPU >= st.MeanBookedCPU*0.7 {
		t.Errorf("used CPU (%.2f) should be well below booked (%.2f)", st.MeanUsedCPU, st.MeanBookedCPU)
	}
	if st.PeakConcurrentTasks == 0 {
		t.Error("there should be concurrent tasks")
	}
	if st.MemToCPURatio < 2.4 || st.MemToCPURatio > 3.6 {
		t.Errorf("original trace memory:CPU ratio = %.2f, want ~3 (memory-leaning demand)", st.MemToCPURatio)
	}
	// A meaningful share of tasks should be idle (CPU below 1%) so that the
	// Oasis comparison has the population it targets.
	idle := 0
	for _, task := range tr.Tasks {
		if task.UsedCPU < 0.01 {
			idle++
		}
	}
	frac := float64(idle) / float64(len(tr.Tasks))
	if frac < 0.15 || frac > 0.35 {
		t.Errorf("idle task fraction = %.2f, want ~0.25", frac)
	}
}

func TestGenerateModifiedDoublesMemory(t *testing.T) {
	orig, err := Generate(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	mod, err := Generate(ModifiedConfig())
	if err != nil {
		t.Fatal(err)
	}
	ro := orig.ComputeStats().MemToCPURatio
	rm := mod.ComputeStats().MemToCPURatio
	if rm < ro*1.7 || rm > ro*2.3 {
		t.Errorf("modified trace should have ~2x the memory:CPU ratio (%.2f vs %.2f)", rm, ro)
	}
	if mod.Name == orig.Name {
		t.Error("modified trace should be labelled differently")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, _ := Generate(DefaultConfig())
	b, _ := Generate(DefaultConfig())
	if len(a.Tasks) != len(b.Tasks) {
		t.Fatal("lengths differ")
	}
	for i := range a.Tasks {
		if a.Tasks[i] != b.Tasks[i] {
			t.Fatalf("task %d differs between identical configs", i)
		}
	}
	c := DefaultConfig()
	c.Seed = 43
	d, _ := Generate(c)
	same := true
	for i := range a.Tasks {
		if a.Tasks[i] != d.Tasks[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds should differ")
	}
}

func TestGenerateValidation(t *testing.T) {
	bad := DefaultConfig()
	bad.Machines = 0
	if _, err := Generate(bad); err == nil {
		t.Error("zero machines should fail")
	}
	bad = DefaultConfig()
	bad.Tasks = 0
	if _, err := Generate(bad); err == nil {
		t.Error("zero tasks should fail")
	}
	bad = DefaultConfig()
	bad.HorizonSec = 0
	if _, err := Generate(bad); err == nil {
		t.Error("zero horizon should fail")
	}
	// Out-of-range tuning is rejected upfront with the valid range — no more
	// silent rewrites to defaults.
	for _, tc := range []struct {
		name string
		mut  func(*GeneratorConfig)
		want string
	}{
		{"negative ratio", func(c *GeneratorConfig) { c.MemoryToCPURatio = -1 }, "MemoryToCPURatio -1 out of range"},
		{"utilization above 1", func(c *GeneratorConfig) { c.MeanUtilization = 5 }, "MeanUtilization 5 out of range"},
		{"negative utilization", func(c *GeneratorConfig) { c.MeanUtilization = -0.5 }, "MeanUtilization -0.5 out of range"},
		{"negative idle fraction", func(c *GeneratorConfig) { c.IdleFraction = -0.1 }, "IdleFraction -0.1 out of range"},
		{"idle fraction of 1", func(c *GeneratorConfig) { c.IdleFraction = 1 }, "IdleFraction 1 out of range"},
	} {
		cfg := DefaultConfig()
		tc.mut(&cfg)
		_, err := Generate(cfg)
		if err == nil {
			t.Errorf("%s: want error, got none", tc.name)
		} else if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not name the range (want %q)", tc.name, err, tc.want)
		}
	}
	// The zero value still means "use the default", so round-tripped configs
	// that never set the tuning fields keep working.
	zero := DefaultConfig()
	zero.MemoryToCPURatio = 0
	zero.MeanUtilization = 0
	zero.IdleFraction = 0
	if _, err := Generate(zero); err != nil {
		t.Errorf("zero-valued tuning should take defaults, got %v", err)
	}
}

func TestTaskValidate(t *testing.T) {
	good := Task{ID: 1, StartSec: 0, EndSec: 100, BookedCPU: 2, BookedMemGiB: 4, UsedCPU: 1, UsedMemGiB: 2}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Task{
		{ID: 1, StartSec: 100, EndSec: 100, BookedCPU: 1, BookedMemGiB: 1},
		{ID: 1, StartSec: 0, EndSec: 100, BookedCPU: 0, BookedMemGiB: 1},
		{ID: 1, StartSec: 0, EndSec: 100, BookedCPU: 1, BookedMemGiB: 1, UsedCPU: 5},
		{ID: 1, StartSec: 0, EndSec: 100, BookedCPU: 1, BookedMemGiB: 1, UsedMemGiB: 5},
	}
	for i, task := range bad {
		if err := task.Validate(); err == nil {
			t.Errorf("bad task %d validated", i)
		}
	}
	if good.Duration() != 100 {
		t.Error("duration wrong")
	}
}

func TestTraceValidate(t *testing.T) {
	tr := &Trace{Name: "x", Machines: 0, HorizonSec: 100}
	if err := tr.Validate(); err == nil {
		t.Error("zero machines should fail")
	}
	tr = &Trace{Name: "x", Machines: 1, HorizonSec: 0}
	if err := tr.Validate(); err == nil {
		t.Error("zero horizon should fail")
	}
	tr = &Trace{Name: "x", Machines: 1, HorizonSec: 100, Tasks: []Task{
		{ID: 1, StartSec: 0, EndSec: 500, BookedCPU: 1, BookedMemGiB: 1},
	}}
	if err := tr.Validate(); err == nil {
		t.Error("task beyond horizon should fail")
	}
}

func TestComputeStatsEmpty(t *testing.T) {
	tr := &Trace{Name: "empty", Machines: 1, HorizonSec: 10}
	st := tr.ComputeStats()
	if st.Tasks != 0 || st.MeanBookedCPU != 0 {
		t.Error("empty trace stats should be zero")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	tr, _ := Generate(DefaultConfig())
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "id,job,start_sec") {
		t.Error("CSV should start with the header")
	}
	tasks, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(tasks) != len(tr.Tasks) {
		t.Fatalf("round trip lost tasks: %d vs %d", len(tasks), len(tr.Tasks))
	}
	for i := range tasks {
		if tasks[i] != tr.Tasks[i] {
			t.Fatalf("task %d differs after round trip", i)
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("")); err != nil {
		t.Errorf("empty input should not error: %v", err)
	}
	// Wrong column count (csv reader catches ragged rows itself).
	if _, err := ReadCSV(strings.NewReader("1,2,3\n")); err == nil {
		t.Error("short row should fail")
	}
	// Bad numbers.
	badRows := []string{
		"x,1,0,10,1,1,0.5,0.5",
		"1,x,0,10,1,1,0.5,0.5",
		"1,1,x,10,1,1,0.5,0.5",
		"1,1,0,x,1,1,0.5,0.5",
		"1,1,0,10,x,1,0.5,0.5",
		"1,1,0,10,1,x,0.5,0.5",
		"1,1,0,10,1,1,x,0.5",
		"1,1,0,10,1,1,0.5,x",
	}
	for i, row := range badRows {
		if _, err := ReadCSV(strings.NewReader(row + "\n")); err == nil {
			t.Errorf("bad row %d should fail", i)
		}
	}
	// Without a header row the first line is data.
	tasks, err := ReadCSV(strings.NewReader("1,1,0,10,1,1,0.5,0.5\n"))
	if err != nil || len(tasks) != 1 {
		t.Errorf("headerless parse: %v %d", err, len(tasks))
	}
}

// Property: generated traces always validate and never book zero resources,
// across a range of configurations.
func TestPropertyGeneratedTracesValid(t *testing.T) {
	f := func(tasks uint8, seed int64, modified bool) bool {
		cfg := DefaultConfig()
		if modified {
			cfg = ModifiedConfig()
		}
		cfg.Tasks = 1 + int(tasks)%200
		cfg.Seed = seed
		tr, err := Generate(cfg)
		if err != nil {
			return false
		}
		return tr.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
