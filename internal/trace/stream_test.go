package trace

import "testing"

func TestStreamOrdering(t *testing.T) {
	tr, err := Generate(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	s := NewStream(tr)
	arrivals, departures, peak := 0, 0, 0
	var prev Event
	first := true
	for {
		ev, ok := s.Next()
		if !ok {
			break
		}
		if !first {
			if ev.AtSec < prev.AtSec {
				t.Fatalf("event at %d after event at %d: stream out of order", ev.AtSec, prev.AtSec)
			}
			if ev.AtSec == prev.AtSec && prev.Kind == Arrive && ev.Kind == Depart {
				t.Fatalf("at t=%d a departure followed an arrival: departures must come first", ev.AtSec)
			}
			if ev.AtSec == prev.AtSec && ev.Kind == prev.Kind && ev.Task.ID <= prev.Task.ID {
				t.Fatalf("at t=%d equal-kind events out of ID order (%d after %d)", ev.AtSec, ev.Task.ID, prev.Task.ID)
			}
		}
		switch ev.Kind {
		case Arrive:
			arrivals++
		case Depart:
			departures++
		}
		if s.Running() > peak {
			peak = s.Running()
		}
		prev, first = ev, false
	}
	if arrivals != len(tr.Tasks) || departures != len(tr.Tasks) {
		t.Fatalf("stream yielded %d arrivals / %d departures, trace has %d tasks", arrivals, departures, len(tr.Tasks))
	}
	if s.Running() != 0 {
		t.Fatalf("%d tasks still running after the stream drained", s.Running())
	}
	// The stream's peak concurrency must agree with the offline statistics
	// over the materialized trace.
	if want := tr.ComputeStats().PeakConcurrentTasks; peak != want {
		t.Fatalf("stream peak concurrency %d, offline stats say %d", peak, want)
	}
}

func TestStreamDeterministic(t *testing.T) {
	tr, err := Generate(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	a, b := NewStream(tr), NewStream(tr)
	for {
		ea, oka := a.Next()
		eb, okb := b.Next()
		if oka != okb {
			t.Fatal("streams exhausted at different points")
		}
		if !oka {
			return
		}
		if ea != eb {
			t.Fatalf("streams diverged: %+v vs %+v", ea, eb)
		}
	}
}

func TestStreamDepartBeforeArriveAtSameInstant(t *testing.T) {
	tr := &Trace{
		Name:       "handoff",
		Machines:   1,
		HorizonSec: 100,
		Tasks: []Task{
			{ID: 0, StartSec: 0, EndSec: 50, BookedCPU: 1, BookedMemGiB: 1},
			{ID: 1, StartSec: 50, EndSec: 100, BookedCPU: 1, BookedMemGiB: 1},
		},
	}
	s := NewStream(tr)
	var kinds []EventKind
	for ev, ok := s.Next(); ok; ev, ok = s.Next() {
		kinds = append(kinds, ev.Kind)
	}
	want := []EventKind{Arrive, Depart, Arrive, Depart}
	if len(kinds) != len(want) {
		t.Fatalf("got %d events, want %d", len(kinds), len(want))
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("event %d is %v, want %v (task 0 must release before task 1 arrives at t=50)", i, kinds[i], want[i])
		}
	}
}

func TestStreamEmptyTrace(t *testing.T) {
	s := NewStream(&Trace{Name: "empty", Machines: 1, HorizonSec: 10})
	if ev, ok := s.Next(); ok {
		t.Fatalf("empty trace yielded %+v", ev)
	}
	if s.Running() != 0 {
		t.Fatal("empty trace has running tasks")
	}
}
