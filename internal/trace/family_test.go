package trace

import (
	"bytes"
	"sort"
	"strings"
	"testing"
)

// familyUnderTest runs one family through the shared property gauntlet and
// returns the trace for family-specific shape checks.
func familyUnderTest(t *testing.T, f Family, p FamilyParams) *Trace {
	t.Helper()
	tr, err := f.Generate(p)
	if err != nil {
		t.Fatalf("%s: %v", f.Name(), err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("%s: generated trace invalid: %v", f.Name(), err)
	}
	if len(tr.Tasks) != p.Tasks {
		t.Fatalf("%s: %d tasks, want %d", f.Name(), len(tr.Tasks), p.Tasks)
	}
	// IDs must be dense and unique: the online admitted-set bitset and the
	// task-%d VMIDs both assume it.
	seen := make(map[int]bool, len(tr.Tasks))
	for _, task := range tr.Tasks {
		if task.ID < 0 || task.ID >= len(tr.Tasks) || seen[task.ID] {
			t.Fatalf("%s: task ID %d not dense/unique in 0..%d", f.Name(), task.ID, len(tr.Tasks)-1)
		}
		seen[task.ID] = true
	}
	// Tasks arrive sorted, the order every replayer assumes.
	if !sort.SliceIsSorted(tr.Tasks, func(i, j int) bool {
		return tr.Tasks[i].StartSec < tr.Tasks[j].StartSec
	}) {
		t.Fatalf("%s: tasks not sorted by StartSec", f.Name())
	}
	// Fixed seed means a byte-identical trace, asserted on the encoded form.
	again, err := f.Generate(p)
	if err != nil {
		t.Fatalf("%s: second generate: %v", f.Name(), err)
	}
	var a, b bytes.Buffer
	if err := tr.WriteCSV(&a); err != nil {
		t.Fatal(err)
	}
	if err := again.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("%s: same seed produced different traces", f.Name())
	}
	// A different seed must actually change the workload.
	other := p
	other.Seed++
	reseeded, err := f.Generate(other)
	if err != nil {
		t.Fatalf("%s: reseeded generate: %v", f.Name(), err)
	}
	b.Reset()
	if err := reseeded.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("%s: different seeds produced identical traces", f.Name())
	}
	return tr
}

func TestFamilyProperties(t *testing.T) {
	p := DefaultFamilyParams()
	for _, f := range Families() {
		familyUnderTest(t, f, p)
		if f.Describe() == "" {
			t.Errorf("%s: empty description", f.Name())
		}
	}
	// The mix composite obeys the same contract.
	mix, err := FamilyByName("mix")
	if err != nil {
		t.Fatal(err)
	}
	familyUnderTest(t, mix, p)
}

func TestDiurnalShape(t *testing.T) {
	tr := familyUnderTest(t, NewDiurnal(), DefaultFamilyParams())
	// The sinusoid troughs at the horizon's edges and crests mid-cycle:
	// ~75% of arrivals belong in the middle half.
	mid := 0
	for _, task := range tr.Tasks {
		if task.StartSec >= tr.HorizonSec/4 && task.StartSec < 3*tr.HorizonSec/4 {
			mid++
		}
	}
	if frac := float64(mid) / float64(len(tr.Tasks)); frac < 0.65 {
		t.Errorf("middle-half arrival fraction %.2f, want >= 0.65 for a diurnal crest", frac)
	}
}

func TestFlashCrowdShape(t *testing.T) {
	tr := familyUnderTest(t, NewFlashCrowd(), DefaultFamilyParams())
	// Bucket arrivals; the burst bins must tower over the background.
	const bins = 50
	counts := make([]int, bins)
	for _, task := range tr.Tasks {
		b := int(task.StartSec * bins / tr.HorizonSec)
		if b >= bins {
			b = bins - 1
		}
		counts[b]++
	}
	max, mean := 0, float64(len(tr.Tasks))/bins
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if float64(max) < 2.5*mean {
		t.Errorf("peak arrival bin %d vs mean %.1f: no flash crowd visible", max, mean)
	}
}

func TestServerlessShape(t *testing.T) {
	tr := familyUnderTest(t, NewServerless(), DefaultFamilyParams())
	s := tr.ComputeStats()
	// Function invocations are seconds-to-minutes, tiny bookings.
	if s.MeanDurationSec > 600 {
		t.Errorf("mean duration %.0fs, want short serverless tasks (<= 600s)", s.MeanDurationSec)
	}
	if s.MeanBookedCPU > 1.5 {
		t.Errorf("mean booked CPU %.2f, want tiny serverless bookings (<= 1.5)", s.MeanBookedCPU)
	}
}

func TestMLBatchShape(t *testing.T) {
	p := DefaultFamilyParams()
	tr := familyUnderTest(t, NewMLBatch(), p)
	s := tr.ComputeStats()
	if s.MeanDurationSec < float64(p.HorizonSec)/5 {
		t.Errorf("mean duration %.0fs, want long-running jobs (>= horizon/5)", s.MeanDurationSec)
	}
	if s.MeanUsedCPU/s.MeanBookedCPU < 0.5 {
		t.Errorf("utilization %.2f, want dense high-utilization gangs (>= 0.5)",
			s.MeanUsedCPU/s.MeanBookedCPU)
	}
	// Gang scheduling: every task of a job shares the job's span.
	spans := make(map[int][2]int64)
	for _, task := range tr.Tasks {
		if span, ok := spans[task.JobID]; ok {
			if span[0] != task.StartSec || span[1] != task.EndSec {
				t.Fatalf("job %d tasks disagree on span", task.JobID)
			}
			continue
		}
		spans[task.JobID] = [2]int64{task.StartSec, task.EndSec}
	}
}

func TestHeavyTailShape(t *testing.T) {
	tr := familyUnderTest(t, NewHeavyTail(), DefaultFamilyParams())
	cpus := make([]float64, len(tr.Tasks))
	for i, task := range tr.Tasks {
		cpus[i] = task.BookedCPU
	}
	sort.Float64s(cpus)
	median, max := cpus[len(cpus)/2], cpus[len(cpus)-1]
	// Pareto(α=1.5, min=0.25): the median sits under one core while the tail
	// reaches the elephants.
	if median > 1 {
		t.Errorf("median booked CPU %.2f, want mostly mice (<= 1)", median)
	}
	if max < 8 {
		t.Errorf("max booked CPU %.2f, want elephants in the tail (>= 8)", max)
	}
}

func TestComposeOverlayNamespaces(t *testing.T) {
	// Two parts that deliberately reuse the same task and job IDs must come
	// out of Overlay with disjoint dense blocks — ID collisions would merge
	// distinct VMs under one task-%d VMID at the consolidation layer.
	mk := func(name string) *Trace {
		tr := &Trace{Name: name, Machines: 10, HorizonSec: 1000}
		for i := 0; i < 10; i++ {
			tr.Tasks = append(tr.Tasks, Task{
				ID: i, JobID: i / 2, StartSec: int64(i * 10), EndSec: int64(i*10 + 100),
				BookedCPU: 1, BookedMemGiB: 2, UsedCPU: 0.5, UsedMemGiB: 1,
			})
		}
		return tr
	}
	merged, err := Overlay("merged", mk("a"), mk("b"))
	if err != nil {
		t.Fatal(err)
	}
	if len(merged.Tasks) != 20 {
		t.Fatalf("merged %d tasks, want 20", len(merged.Tasks))
	}
	ids := make(map[int]bool)
	for _, task := range merged.Tasks {
		if task.ID < 0 || task.ID >= 20 || ids[task.ID] {
			t.Fatalf("task ID %d not dense/unique after overlay", task.ID)
		}
		ids[task.ID] = true
	}
	if err := merged.Validate(); err != nil {
		t.Fatal(err)
	}

	if _, err := Overlay("empty"); err == nil {
		t.Error("overlay of nothing should fail")
	}
	if _, err := Overlay("nil-part", nil); err == nil {
		t.Error("nil part should fail")
	}
	bad := mk("bad")
	bad.Tasks[0].BookedCPU = -1
	if _, err := Overlay("invalid-part", bad); err == nil {
		t.Error("invalid part should fail")
	}
}

func TestComposeBudgetAndErrors(t *testing.T) {
	p := DefaultFamilyParams()
	p.Tasks = 7 // does not divide evenly across 5 parts
	tr, err := Compose("mix", Families()...).Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Tasks) != 7 {
		t.Fatalf("composite %d tasks, want the full budget of 7", len(tr.Tasks))
	}
	if _, err := Compose("none").Generate(p); err == nil {
		t.Error("composite with no parts should fail")
	}
	p.Tasks = 2
	if _, err := Compose("mix", Families()...).Generate(p); err == nil {
		t.Error("budget below one task per part should fail")
	}
}

func TestFamilyByName(t *testing.T) {
	for _, name := range FamilyNames() {
		f, err := FamilyByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if name != "mix" && f.Name() != name {
			t.Errorf("FamilyByName(%q).Name() = %q", name, f.Name())
		}
	}
	_, err := FamilyByName("nope")
	if err == nil {
		t.Fatal("unknown family should fail")
	}
	if !strings.Contains(err.Error(), "valid:") {
		t.Errorf("error %q should list the valid families", err)
	}
	if _, err := GenerateFamily("nope", DefaultFamilyParams()); err == nil {
		t.Error("GenerateFamily with unknown name should fail")
	}
}

func TestFamilyParamsValidate(t *testing.T) {
	for _, tc := range []struct {
		name string
		mut  func(*FamilyParams)
	}{
		{"zero machines", func(p *FamilyParams) { p.Machines = 0 }},
		{"zero horizon", func(p *FamilyParams) { p.HorizonSec = 0 }},
		{"zero tasks", func(p *FamilyParams) { p.Tasks = 0 }},
	} {
		p := DefaultFamilyParams()
		tc.mut(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("%s: want error", tc.name)
		}
		if _, err := NewDiurnal().Generate(p); err == nil {
			t.Errorf("%s: family should reject the params", tc.name)
		}
	}
	for _, tc := range []struct {
		name string
		f    Family
	}{
		{"diurnal amplitude", Diurnal{Amplitude: 2}},
		{"flashcrowd bursts", FlashCrowd{Bursts: 0, BurstFraction: 0.5, WidthFraction: 0.02}},
		{"flashcrowd width", FlashCrowd{Bursts: 1, BurstFraction: 0.5, WidthFraction: 0.5}},
		{"serverless cold fraction", Serverless{ColdFraction: 2, MeanExecSec: 100}},
		{"serverless exec", Serverless{MeanExecSec: 0}},
		{"mlbatch gang", MLBatch{GangSize: 0, MinDurationFrac: 0.2, MaxDurationFrac: 0.8}},
		{"mlbatch fractions", MLBatch{GangSize: 2, MinDurationFrac: 0.9, MaxDurationFrac: 0.2}},
		{"heavytail alpha", HeavyTail{Alpha: 0, MinCPU: 1, MaxCPU: 2}},
		{"heavytail bounds", HeavyTail{Alpha: 1, MinCPU: 4, MaxCPU: 2}},
	} {
		if _, err := tc.f.Generate(DefaultFamilyParams()); err == nil {
			t.Errorf("%s: want a tuning-range error", tc.name)
		}
	}
}
