package hypervisor

import (
	"fmt"
	"sync"
)

// LatencyStore is a RemoteStore backed by plain host memory with a fixed
// latency model. It is used by tests and by the large parameter sweeps where
// running every page through the full RDMA fabric simulation would be
// needlessly slow; the RDMA-backed store in internal/core is used when the
// experiment exercises the real protocol path.
type LatencyStore struct {
	mu      sync.Mutex
	slots   [][]byte
	writeNs int64
	readNs  int64

	writes uint64
	reads  uint64
}

// NewLatencyStore creates a store with the given capacity and per-page
// latencies.
func NewLatencyStore(slots int, writeNs, readNs int64) (*LatencyStore, error) {
	if slots <= 0 {
		return nil, fmt.Errorf("hypervisor: latency store needs positive capacity")
	}
	return &LatencyStore{slots: make([][]byte, slots), writeNs: writeNs, readNs: readNs}, nil
}

// NewInfinibandStore returns a LatencyStore with FDR-Infiniband-like per-page
// latencies (matching the RDMA fabric's default cost model for a 4 KiB page).
func NewInfinibandStore(slots int) *LatencyStore {
	s, _ := NewLatencyStore(slots, 2900, 2900)
	return s
}

// Slots implements RemoteStore.
func (l *LatencyStore) Slots() int { return len(l.slots) }

// WritePage implements RemoteStore.
func (l *LatencyStore) WritePage(slot int, page []byte) (int64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if slot < 0 || slot >= len(l.slots) {
		return 0, fmt.Errorf("hypervisor: slot %d out of range", slot)
	}
	buf := make([]byte, len(page))
	copy(buf, page)
	l.slots[slot] = buf
	l.writes++
	return l.writeNs, nil
}

// ReadPage implements RemoteStore.
func (l *LatencyStore) ReadPage(slot int, dst []byte) (int64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if slot < 0 || slot >= len(l.slots) {
		return 0, fmt.Errorf("hypervisor: slot %d out of range", slot)
	}
	if l.slots[slot] == nil {
		return 0, fmt.Errorf("hypervisor: slot %d is empty", slot)
	}
	copy(dst, l.slots[slot])
	l.reads++
	return l.readNs, nil
}

// Writes returns the number of pages written to the store.
func (l *LatencyStore) Writes() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.writes
}

// Reads returns the number of pages read from the store.
func (l *LatencyStore) Reads() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.reads
}
