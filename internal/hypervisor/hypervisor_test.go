package hypervisor

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/pagepolicy"
	"repro/internal/swapdev"
)

func newRAMExt(t *testing.T, pages, localFrames int) (*RAMExt, *LatencyStore) {
	t.Helper()
	store := NewInfinibandStore(pages)
	r, err := NewRAMExt(Config{
		Pages:       pages,
		LocalFrames: localFrames,
		Policy:      pagepolicy.NewMixed(pagepolicy.DefaultCost(), pagepolicy.DefaultMixedWindow),
		Remote:      store,
	})
	if err != nil {
		t.Fatal(err)
	}
	return r, store
}

func TestNewRAMExtValidation(t *testing.T) {
	store := NewInfinibandStore(10)
	pol := pagepolicy.NewFIFO(pagepolicy.DefaultCost())
	cases := []struct {
		name string
		cfg  Config
	}{
		{"zero pages", Config{Pages: 0, LocalFrames: 1}},
		{"negative frames", Config{Pages: 10, LocalFrames: -1}},
		{"missing policy", Config{Pages: 10, LocalFrames: 5, Remote: store}},
		{"missing remote", Config{Pages: 10, LocalFrames: 5, Policy: pol}},
		{"remote too small", Config{Pages: 100, LocalFrames: 5, Policy: pol, Remote: store}},
	}
	for _, c := range cases {
		if _, err := NewRAMExt(c.cfg); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
	// All-local VM needs neither policy nor remote store.
	if _, err := NewRAMExt(Config{Pages: 10, LocalFrames: 10}); err != nil {
		t.Errorf("all-local VM should be valid: %v", err)
	}
	// LocalFrames above Pages is clamped.
	r, err := NewRAMExt(Config{Pages: 10, LocalFrames: 100})
	if err != nil {
		t.Fatal(err)
	}
	if r.LocalFrames() != 10 {
		t.Errorf("local frames = %d, want clamped to 10", r.LocalFrames())
	}
}

func TestAllLocalNoFaultsBeyondFirstTouch(t *testing.T) {
	r, _ := newRAMExt(t, 64, 64)
	for pass := 0; pass < 3; pass++ {
		for p := 0; p < 64; p++ {
			if _, err := r.Access(p, pass == 0); err != nil {
				t.Fatal(err)
			}
		}
	}
	st := r.Stats()
	if st.MinorFaults != 64 {
		t.Errorf("minor faults = %d, want 64 (one per first touch)", st.MinorFaults)
	}
	if st.MajorFaults != 0 || st.Demotions != 0 {
		t.Errorf("all-local VM must not page: %+v", st)
	}
	if st.Accesses != 3*64 {
		t.Errorf("accesses = %d", st.Accesses)
	}
	if r.ResidentPages() != 64 {
		t.Errorf("resident = %d", r.ResidentPages())
	}
}

func TestDemotionAndPromotion(t *testing.T) {
	// 8 pages, 4 local frames: a sequential sweep must demote and promote.
	r, store := newRAMExt(t, 8, 4)
	for pass := 0; pass < 2; pass++ {
		for p := 0; p < 8; p++ {
			if _, err := r.Access(p, true); err != nil {
				t.Fatal(err)
			}
		}
	}
	st := r.Stats()
	if st.Demotions == 0 || st.Promotions == 0 {
		t.Fatalf("expected paging activity, got %+v", st)
	}
	if st.MajorFaults == 0 {
		t.Error("major faults should be counted")
	}
	if store.Writes() != st.Demotions || store.Reads() != st.Promotions {
		t.Errorf("store traffic (%d/%d) disagrees with stats (%d/%d)",
			store.Writes(), store.Reads(), st.Demotions, st.Promotions)
	}
	if st.PolicyCycles == 0 || st.PolicyNs == 0 {
		t.Error("policy cost should be accounted")
	}
	if st.RemoteNs <= 0 {
		t.Error("remote time should be accounted")
	}
	if st.TotalNs() <= st.LocalNs {
		t.Error("total time should exceed pure local time when paging")
	}
	if r.ResidentPages() != 4 {
		t.Errorf("resident pages = %d, want 4 (frame budget)", r.ResidentPages())
	}
	if r.RemotePages() != 4 {
		t.Errorf("remote pages = %d, want 4", r.RemotePages())
	}
	if err := r.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestAccessOutOfRange(t *testing.T) {
	r, _ := newRAMExt(t, 8, 4)
	if _, err := r.Access(-1, false); err == nil {
		t.Error("negative page should fail")
	}
	if _, err := r.Access(8, false); err == nil {
		t.Error("page beyond the space should fail")
	}
}

func TestHotPagesStayLocal(t *testing.T) {
	// With a policy that honours accessed bits, a hot set smaller than local
	// memory should stop faulting once it is resident (the paper's paging
	// policy "keeps hot pages closer in local memory").
	r, _ := newRAMExt(t, 100, 50)
	// Touch everything once to populate.
	for p := 0; p < 100; p++ {
		if _, err := r.Access(p, true); err != nil {
			t.Fatal(err)
		}
	}
	faultsAfterWarmup := r.Stats().MajorFaults
	// Now hammer a 20-page hot set repeatedly.
	for pass := 0; pass < 50; pass++ {
		for p := 0; p < 20; p++ {
			if _, err := r.Access(p, false); err != nil {
				t.Fatal(err)
			}
		}
	}
	extraFaults := r.Stats().MajorFaults - faultsAfterWarmup
	// The hot set (20 pages) fits comfortably in 50 local frames: after at
	// most one refault per hot page, the steady state must be fault-free.
	if extraFaults > 20 {
		t.Errorf("hot set kept faulting: %d extra major faults", extraFaults)
	}
	if err := r.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestMoreLocalMemoryMeansFewerFaults(t *testing.T) {
	run := func(localFrames int) uint64 {
		r, _ := newRAMExt(t, 200, localFrames)
		for pass := 0; pass < 3; pass++ {
			for p := 0; p < 200; p++ {
				if _, err := r.Access(p, true); err != nil {
					t.Fatal(err)
				}
			}
		}
		return r.Stats().MajorFaults
	}
	f20 := run(40)  // 20% local
	f50 := run(100) // 50% local
	f80 := run(160) // 80% local
	if !(f20 > f50 && f50 > f80) {
		t.Errorf("faults should decrease with local memory: 20%%=%d 50%%=%d 80%%=%d", f20, f50, f80)
	}
}

func TestDataIntegrityThroughDemotions(t *testing.T) {
	// The seal byte written on writes must survive demote/promote cycles; the
	// Access path itself verifies it and errors on corruption.
	r, _ := newRAMExt(t, 16, 4)
	for pass := 0; pass < 5; pass++ {
		for p := 0; p < 16; p++ {
			if _, err := r.Access(p, true); err != nil {
				t.Fatalf("pass %d page %d: %v", pass, p, err)
			}
		}
	}
}

func TestLocalPagesAndRemoteSlots(t *testing.T) {
	r, _ := newRAMExt(t, 8, 4)
	for p := 0; p < 8; p++ {
		if _, err := r.Access(p, true); err != nil {
			t.Fatal(err)
		}
	}
	local := r.LocalPages()
	remote := r.RemotePageSlots()
	if len(local) != 4 {
		t.Errorf("local pages = %v", local)
	}
	if len(remote) != 4 {
		t.Errorf("remote mapping = %v", remote)
	}
	for p := range remote {
		for _, lp := range local {
			if p == lp {
				t.Errorf("page %d is both local and remote", p)
			}
		}
	}
}

func TestPolicyComparisonMixedBeatsClockOnCost(t *testing.T) {
	// Reproduce the Figure 8 bottom-panel trend at small scale: for the same
	// access stream, Mixed spends fewer policy cycles per fault than Clock.
	run := func(pol pagepolicy.Policy) Stats {
		store := NewInfinibandStore(400)
		r, err := NewRAMExt(Config{Pages: 400, LocalFrames: 100, Policy: pol, Remote: store})
		if err != nil {
			t.Fatal(err)
		}
		// Interleave a 50-page hot set with a cold sweep so that accessed
		// bits matter: Clock scans past the hot pages on every eviction,
		// Mixed bounds that scan to its window.
		for pass := 0; pass < 3; pass++ {
			for p := 0; p < 400; p++ {
				if _, err := r.Access(p%50, false); err != nil {
					t.Fatal(err)
				}
				if _, err := r.Access(p, true); err != nil {
					t.Fatal(err)
				}
			}
		}
		return r.Stats()
	}
	clock := run(pagepolicy.NewClock(pagepolicy.DefaultCost()))
	mixed := run(pagepolicy.NewMixed(pagepolicy.DefaultCost(), pagepolicy.DefaultMixedWindow))
	if mixed.PolicyCyclesPerFault() >= clock.PolicyCyclesPerFault() {
		t.Errorf("mixed policy cost per fault (%.0f) should be below clock (%.0f)",
			mixed.PolicyCyclesPerFault(), clock.PolicyCyclesPerFault())
	}
}

// Property: after any access sequence the paging invariants hold and resident
// pages never exceed the local frame budget.
func TestPropertyPagingInvariants(t *testing.T) {
	prop := func(accesses []uint16, localFrac uint8) bool {
		pages := 64
		localFrames := 1 + int(localFrac)%pages
		store := NewInfinibandStore(pages)
		r, err := NewRAMExt(Config{
			Pages:       pages,
			LocalFrames: localFrames,
			Policy:      pagepolicy.NewMixed(pagepolicy.DefaultCost(), 5),
			Remote:      store,
		})
		if err != nil {
			return false
		}
		for i, a := range accesses {
			if _, err := r.Access(int(a)%pages, i%2 == 0); err != nil {
				return false
			}
		}
		if r.ResidentPages() > localFrames {
			return false
		}
		return r.CheckInvariants() == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestExplicitSDValidation(t *testing.T) {
	dev, _ := swapdev.New(swapdev.RemoteRAM, 10)
	if _, err := NewExplicitSD(ExplicitConfig{Pages: 0}); err == nil {
		t.Error("zero pages should fail")
	}
	if _, err := NewExplicitSD(ExplicitConfig{Pages: 10, LocalFrames: -1}); err == nil {
		t.Error("negative RAM should fail")
	}
	if _, err := NewExplicitSD(ExplicitConfig{Pages: 10, LocalFrames: 5}); err == nil {
		t.Error("missing device should fail")
	}
	if _, err := NewExplicitSD(ExplicitConfig{Pages: 100, LocalFrames: 5, Device: dev}); err == nil {
		t.Error("undersized device should fail")
	}
	e, err := NewExplicitSD(ExplicitConfig{Pages: 10, LocalFrames: 5, Device: dev})
	if err != nil {
		t.Fatal(err)
	}
	if e.Aggressiveness() != DefaultAggressiveness {
		t.Errorf("aggressiveness = %v", e.Aggressiveness())
	}
}

func TestExplicitSDSwapsThroughDevice(t *testing.T) {
	dev, _ := swapdev.New(swapdev.RemoteRAM, 64)
	e, err := NewExplicitSD(ExplicitConfig{Pages: 64, LocalFrames: 16, Device: dev})
	if err != nil {
		t.Fatal(err)
	}
	for pass := 0; pass < 3; pass++ {
		for p := 0; p < 64; p++ {
			if _, err := e.Access(p, true); err != nil {
				t.Fatal(err)
			}
		}
	}
	if e.SwapTraffic() == 0 {
		t.Fatal("expected swap traffic")
	}
	if dev.Stats().SwapOuts == 0 || dev.Stats().SwapIns == 0 {
		t.Error("device should have seen traffic")
	}
	if e.Stats().RemoteNs <= 0 {
		t.Error("swap latency should be accounted")
	}
	if _, err := e.Access(999, false); err == nil {
		t.Error("out-of-range access should fail")
	}
}

func TestExplicitSDSlowerThanRAMExtSameDevice(t *testing.T) {
	// The Table 2 observation: for the same local fraction, the guest-visible
	// swap device performs worse than hypervisor-managed RAM Ext, because the
	// guest generates more swap traffic.
	const pages, local = 256, 128
	store := NewInfinibandStore(pages)
	ram, err := NewRAMExt(Config{
		Pages: pages, LocalFrames: local,
		Policy: pagepolicy.NewMixed(pagepolicy.DefaultCost(), 5),
		Remote: store,
	})
	if err != nil {
		t.Fatal(err)
	}
	dev, _ := swapdev.New(swapdev.RemoteRAM, pages)
	esd, err := NewExplicitSD(ExplicitConfig{Pages: pages, LocalFrames: local, Device: dev})
	if err != nil {
		t.Fatal(err)
	}
	for pass := 0; pass < 4; pass++ {
		for p := 0; p < pages; p++ {
			if _, err := ram.Access(p, true); err != nil {
				t.Fatal(err)
			}
			if _, err := esd.Access(p, true); err != nil {
				t.Fatal(err)
			}
		}
	}
	if esd.Stats().TotalNs() <= ram.Stats().TotalNs() {
		t.Errorf("explicit SD (%.0f ns) should be slower than RAM Ext (%.0f ns)",
			esd.Stats().TotalNs(), ram.Stats().TotalNs())
	}
}

func TestExplicitSDHDDSlowerThanRemoteRAM(t *testing.T) {
	run := func(kind swapdev.Kind) float64 {
		dev, _ := swapdev.New(kind, 128)
		e, err := NewExplicitSD(ExplicitConfig{Pages: 128, LocalFrames: 64, Device: dev})
		if err != nil {
			t.Fatal(err)
		}
		for pass := 0; pass < 3; pass++ {
			for p := 0; p < 128; p++ {
				if _, err := e.Access(p, true); err != nil {
					t.Fatal(err)
				}
			}
		}
		return e.Stats().TotalNs()
	}
	rram := run(swapdev.RemoteRAM)
	ssd := run(swapdev.LocalSSD)
	hdd := run(swapdev.LocalHDD)
	if !(rram < ssd && ssd < hdd) {
		t.Errorf("swap technology ordering violated: remote=%.0f ssd=%.0f hdd=%.0f", rram, ssd, hdd)
	}
}

func TestLatencyStoreValidation(t *testing.T) {
	if _, err := NewLatencyStore(0, 1, 1); err == nil {
		t.Error("zero slots should fail")
	}
	s, _ := NewLatencyStore(2, 10, 20)
	if _, err := s.WritePage(5, nil); err == nil {
		t.Error("out-of-range write should fail")
	}
	if _, err := s.ReadPage(0, nil); err == nil {
		t.Error("reading an empty slot should fail")
	}
	if _, err := s.WritePage(0, []byte("x")); err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, 1)
	lat, err := s.ReadPage(0, dst)
	if err != nil || lat != 20 {
		t.Errorf("read lat=%d err=%v", lat, err)
	}
	if string(dst) != "x" {
		t.Error("data corrupted")
	}
	if _, err := s.ReadPage(9, dst); err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Errorf("expected out-of-range error, got %v", err)
	}
}

func TestStatsHelpers(t *testing.T) {
	var s Stats
	if s.PolicyCyclesPerFault() != 0 {
		t.Error("zero faults should give zero policy cost")
	}
	s.MajorFaults = 4
	s.PolicyCycles = 400
	if s.PolicyCyclesPerFault() != 100 {
		t.Error("policy cycles per fault wrong")
	}
}
