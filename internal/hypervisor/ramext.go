package hypervisor

import (
	"errors"
	"fmt"

	"repro/internal/pagepolicy"
)

// Errors returned by the paging layer.
var (
	ErrNoRemoteCapacity = errors.New("hypervisor: out of remote memory capacity")
	ErrBadPage          = errors.New("hypervisor: page outside the VM's pseudo-physical space")
)

// RemoteStore is the hypervisor's view of remote memory: a page-granular
// store addressed by slot index. internal/core provides an implementation
// backed by memctl remote buffers and the RDMA fabric; tests and large sweeps
// use latency-model implementations.
type RemoteStore interface {
	// Slots returns the store capacity in pages.
	Slots() int
	// WritePage stores a page and returns the simulated latency.
	WritePage(slot int, page []byte) (int64, error)
	// ReadPage fetches a page and returns the simulated latency.
	ReadPage(slot int, dst []byte) (int64, error)
}

// CostModel carries the CPU-side costs of the paging machinery.
type CostModel struct {
	// LocalAccessNs is the guest-visible cost of one benchmark operation on a
	// resident page (the micro-benchmark's read/write of a 4 KiB entry).
	LocalAccessNs float64
	// FaultTrapNs is the VM-exit + handler entry cost of a page fault.
	FaultTrapNs float64
	// CyclesPerNs converts policy cycles to time (CPU frequency in GHz).
	CyclesPerNs float64
	// PageSize is the page size in bytes.
	PageSize int
}

// DefaultCostModel returns the cost parameters used across the repository:
// ~3.5 GHz cores, 1 microsecond of useful work per touched page (the
// micro-benchmark iterates and performs read/write operations on each 4 KiB
// entry), 2 microseconds of trap overhead per fault.
func DefaultCostModel() CostModel {
	return CostModel{
		LocalAccessNs: 1000,
		FaultTrapNs:   2000,
		CyclesPerNs:   3.5,
		PageSize:      4096,
	}
}

// pageLocation describes where a pseudo-physical page currently lives.
type pageLocation int

const (
	locUnallocated pageLocation = iota // never touched: allocated on first fault
	locLocal                           // resident in a local machine frame
	locRemote                          // demoted to a remote slot
)

// Stats aggregates the paging activity of one VM.
type Stats struct {
	// Accesses is the number of guest page accesses simulated.
	Accesses uint64
	// MinorFaults are first-touch faults satisfied from free local frames.
	MinorFaults uint64
	// MajorFaults are faults that required demoting a page to remote memory
	// and/or fetching one back (the "# page faults" series of Figure 8).
	MajorFaults uint64
	// Demotions counts pages pushed to remote memory.
	Demotions uint64
	// Promotions counts pages fetched back from remote memory.
	Promotions uint64
	// PolicyCycles is the total CPU cycles spent inside the replacement
	// policy (the bottom series of Figure 8).
	PolicyCycles uint64
	// PolicyNs is PolicyCycles converted to time.
	PolicyNs float64
	// RemoteNs is the simulated time spent waiting for remote transfers.
	RemoteNs float64
	// LocalNs is the simulated time spent in useful guest work.
	LocalNs float64
	// FaultNs is the simulated trap/handler overhead.
	FaultNs float64
}

// TotalNs returns the simulated execution time.
func (s Stats) TotalNs() float64 { return s.LocalNs + s.RemoteNs + s.FaultNs + s.PolicyNs }

// PolicyCyclesPerFault returns the mean policy cost per major fault.
func (s Stats) PolicyCyclesPerFault() float64 {
	if s.MajorFaults == 0 {
		return 0
	}
	return float64(s.PolicyCycles) / float64(s.MajorFaults)
}

// RAMExt is the hypervisor paging context of one VM using the RAM Extension
// function: LocalFrames of the VM's pseudo-physical space are backed by local
// machine memory; the remainder lives in remote buffers. The VM is oblivious
// to the split.
type RAMExt struct {
	pages       int
	localFrames int
	policy      pagepolicy.Policy
	remote      RemoteStore
	cost        CostModel

	loc        []pageLocation
	remoteSlot []int // page -> remote slot (when locRemote)
	slotOfPage []int // remote slot -> page (-1 when free)
	freeSlots  []int
	freeLocal  int

	// pageData holds the synthetic contents of every page so that data
	// integrity through demote/promote cycles is testable. One byte per page
	// is enough to detect corruption without inflating memory.
	pageSeal []byte
	buf      []byte

	stats Stats
}

// Config configures a RAMExt context.
type Config struct {
	// Pages is the VM's pseudo-physical size in pages.
	Pages int
	// LocalFrames is the number of local machine frames granted to the VM.
	LocalFrames int
	// Policy selects demotion victims; required when LocalFrames < Pages.
	Policy pagepolicy.Policy
	// Remote backs the demoted pages; required when LocalFrames < Pages.
	Remote RemoteStore
	// Cost is the CPU cost model; DefaultCostModel when zero.
	Cost CostModel
}

// NewRAMExt validates the configuration and builds the paging context.
func NewRAMExt(cfg Config) (*RAMExt, error) {
	if cfg.Pages <= 0 {
		return nil, fmt.Errorf("hypervisor: VM needs at least one page, got %d", cfg.Pages)
	}
	if cfg.LocalFrames < 0 {
		return nil, fmt.Errorf("hypervisor: negative local frames")
	}
	if cfg.LocalFrames > cfg.Pages {
		cfg.LocalFrames = cfg.Pages
	}
	if cfg.Cost == (CostModel{}) {
		cfg.Cost = DefaultCostModel()
	}
	needRemote := cfg.Pages - cfg.LocalFrames
	if needRemote == 0 && cfg.Policy == nil {
		// An all-local VM never evicts; a FIFO policy provides the (cheap)
		// residency bookkeeping.
		cfg.Policy = pagepolicy.NewFIFO(pagepolicy.DefaultCost())
	}
	if needRemote > 0 {
		if cfg.Policy == nil {
			return nil, fmt.Errorf("hypervisor: a replacement policy is required when %d pages are remote", needRemote)
		}
		if cfg.Remote == nil {
			return nil, fmt.Errorf("hypervisor: a remote store is required when %d pages are remote", needRemote)
		}
		if cfg.Remote.Slots() < needRemote {
			return nil, fmt.Errorf("hypervisor: remote store has %d slots, need %d: %w", cfg.Remote.Slots(), needRemote, ErrNoRemoteCapacity)
		}
	}
	r := &RAMExt{
		pages:       cfg.Pages,
		localFrames: cfg.LocalFrames,
		policy:      cfg.Policy,
		remote:      cfg.Remote,
		cost:        cfg.Cost,
		loc:         make([]pageLocation, cfg.Pages),
		remoteSlot:  make([]int, cfg.Pages),
		pageSeal:    make([]byte, cfg.Pages),
		buf:         make([]byte, cfg.Cost.PageSize),
		freeLocal:   cfg.LocalFrames,
	}
	if cfg.Remote != nil {
		r.slotOfPage = make([]int, cfg.Remote.Slots())
		r.freeSlots = make([]int, 0, cfg.Remote.Slots())
		for i := cfg.Remote.Slots() - 1; i >= 0; i-- {
			r.slotOfPage[i] = -1
			r.freeSlots = append(r.freeSlots, i)
		}
	}
	return r, nil
}

// Pages returns the VM's pseudo-physical size in pages.
func (r *RAMExt) Pages() int { return r.pages }

// LocalFrames returns the local frame budget.
func (r *RAMExt) LocalFrames() int { return r.localFrames }

// Stats returns a snapshot of the paging statistics.
func (r *RAMExt) Stats() Stats { return r.stats }

// ResidentPages returns the number of pages currently in local memory.
func (r *RAMExt) ResidentPages() int { return r.localFrames - r.freeLocal }

// RemotePages returns the number of pages currently demoted to remote memory.
func (r *RAMExt) RemotePages() int {
	n := 0
	for _, l := range r.loc {
		if l == locRemote {
			n++
		}
	}
	return n
}

// IsLocal reports whether the page is resident in local memory.
func (r *RAMExt) IsLocal(page int) bool {
	return page >= 0 && page < r.pages && r.loc[page] == locLocal
}

// Access simulates one guest access (read or write) to the page and returns
// the simulated latency in nanoseconds. It reproduces the modified KVM page
// fault handler: resident pages are accessed directly; non-present pages
// trigger a fault that allocates a free local frame or demotes a victim
// chosen by the replacement policy, then (if the page had been demoted
// earlier) reloads its contents from remote memory.
func (r *RAMExt) Access(page int, write bool) (float64, error) {
	if page < 0 || page >= r.pages {
		return 0, ErrBadPage
	}
	r.stats.Accesses++
	ns := r.cost.LocalAccessNs
	r.stats.LocalNs += r.cost.LocalAccessNs

	switch r.loc[page] {
	case locLocal:
		r.policy.Access(pagepolicy.PageID(page))
		if write {
			r.pageSeal[page]++
		}
		return ns, nil
	case locUnallocated:
		fault, err := r.faultIn(page, false)
		if err != nil {
			return ns, err
		}
		ns += fault
		if write {
			r.pageSeal[page]++
		}
		return ns, nil
	case locRemote:
		fault, err := r.faultIn(page, true)
		if err != nil {
			return ns, err
		}
		ns += fault
		if write {
			r.pageSeal[page]++
		}
		return ns, nil
	default:
		return ns, fmt.Errorf("hypervisor: page %d in impossible state", page)
	}
}

// faultIn makes the page resident, returning the simulated fault latency.
// fetchRemote indicates the page has contents to reload from remote memory.
func (r *RAMExt) faultIn(page int, fetchRemote bool) (float64, error) {
	ns := r.cost.FaultTrapNs
	r.stats.FaultNs += r.cost.FaultTrapNs

	if r.freeLocal == 0 {
		// Demote a victim to free a frame.
		victim, cycles, ok := r.policy.Evict()
		policyNs := float64(cycles) / r.cost.CyclesPerNs
		r.stats.PolicyCycles += cycles
		r.stats.PolicyNs += policyNs
		ns += policyNs
		if !ok {
			return ns, fmt.Errorf("hypervisor: no victim available for page %d", page)
		}
		demoteNs, err := r.demote(int(victim))
		if err != nil {
			return ns, err
		}
		ns += demoteNs
		r.stats.MajorFaults++
	} else {
		r.stats.MinorFaults++
	}

	if fetchRemote {
		slot := r.remoteSlot[page]
		lat, err := r.remote.ReadPage(slot, r.buf)
		if err != nil {
			return ns, fmt.Errorf("hypervisor: promote page %d: %w", page, err)
		}
		if len(r.buf) > 0 && r.buf[0] != r.pageSeal[page] {
			return ns, fmt.Errorf("hypervisor: page %d corrupted through remote memory (seal %d != %d)", page, r.buf[0], r.pageSeal[page])
		}
		r.stats.Promotions++
		r.stats.RemoteNs += float64(lat)
		ns += float64(lat)
		// Release the remote slot.
		r.freeSlots = append(r.freeSlots, slot)
		r.slotOfPage[slot] = -1
	}

	r.freeLocal--
	r.loc[page] = locLocal
	r.policy.Fault(pagepolicy.PageID(page))
	return ns, nil
}

// demote pushes a resident victim page to a free remote slot.
func (r *RAMExt) demote(victim int) (float64, error) {
	if len(r.freeSlots) == 0 {
		return 0, ErrNoRemoteCapacity
	}
	slot := r.freeSlots[len(r.freeSlots)-1]
	r.freeSlots = r.freeSlots[:len(r.freeSlots)-1]
	if len(r.buf) > 0 {
		r.buf[0] = r.pageSeal[victim]
	}
	lat, err := r.remote.WritePage(slot, r.buf)
	if err != nil {
		return 0, fmt.Errorf("hypervisor: demote page %d: %w", victim, err)
	}
	r.loc[victim] = locRemote
	r.remoteSlot[victim] = slot
	r.slotOfPage[slot] = victim
	r.freeLocal++
	r.stats.Demotions++
	r.stats.RemoteNs += float64(lat)
	return float64(lat), nil
}

// LocalPages returns the pseudo-physical page numbers currently resident in
// local memory, in ascending order. The migration protocol uses this to
// transfer only the hot/local part of a VM.
func (r *RAMExt) LocalPages() []int {
	out := make([]int, 0, r.ResidentPages())
	for p, l := range r.loc {
		if l == locLocal {
			out = append(out, p)
		}
	}
	return out
}

// RemotePageSlots returns the mapping of demoted pages to remote slots. After
// a migration, ownership of these slots moves to the destination host without
// copying the data.
func (r *RAMExt) RemotePageSlots() map[int]int {
	out := make(map[int]int)
	for p, l := range r.loc {
		if l == locRemote {
			out[p] = r.remoteSlot[p]
		}
	}
	return out
}

// CheckInvariants validates the page-table bookkeeping: every local page is
// counted against the frame budget, every remote page has a distinct slot,
// and free-slot accounting is consistent. Property tests call it after random
// access sequences.
func (r *RAMExt) CheckInvariants() error {
	local, remote := 0, 0
	slotSeen := make(map[int]int)
	for p, l := range r.loc {
		switch l {
		case locLocal:
			local++
		case locRemote:
			remote++
			s := r.remoteSlot[p]
			if s < 0 || (r.remote != nil && s >= r.remote.Slots()) {
				return fmt.Errorf("hypervisor: page %d maps to invalid slot %d", p, s)
			}
			if other, dup := slotSeen[s]; dup {
				return fmt.Errorf("hypervisor: pages %d and %d share remote slot %d", other, p, s)
			}
			slotSeen[s] = p
			if r.slotOfPage[s] != p {
				return fmt.Errorf("hypervisor: slot %d back-pointer is %d, want %d", s, r.slotOfPage[s], p)
			}
		}
	}
	if local != r.localFrames-r.freeLocal {
		return fmt.Errorf("hypervisor: %d local pages but %d frames in use", local, r.localFrames-r.freeLocal)
	}
	if local > r.localFrames {
		return fmt.Errorf("hypervisor: %d local pages exceed the %d-frame budget", local, r.localFrames)
	}
	if r.remote != nil {
		if remote+len(r.freeSlots) > r.remote.Slots() {
			return fmt.Errorf("hypervisor: %d remote pages + %d free slots exceed %d slots", remote, len(r.freeSlots), r.remote.Slots())
		}
	}
	return nil
}
