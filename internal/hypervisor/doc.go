// Package hypervisor models the modified KVM memory virtualization of
// Section 4.5: VMs are given pseudo-physical frames, the hypervisor manages
// their association with machine frames, and when local machine memory is
// scarce it demotes cold pages to remote memory buffers (the RAM Ext
// function). The package also models the Explicit SD alternative, where the
// guest itself swaps to a memory-backed swap device.
//
// The simulation is page-accurate: every guest access goes through the page
// tables, page faults run the replacement policy, and demoted pages move
// through a RemoteStore whose latency model is provided by the caller
// (normally the RDMA-backed store in internal/core, or a pure latency model
// for large parameter sweeps).
package hypervisor
